// Package fastintersect computes intersections of preprocessed in-memory
// sets, implementing "Fast Set Intersection in Memory" (Bolin Ding and
// Arnd Christian König, PVLDB 4(4), 2011).
//
// The paper's idea: partition each set into small groups of ≈√w elements
// (w = machine word width), map every group into [w] with a universal hash
// function, and store the image as a single machine word. Intersecting two
// groups then starts with one bitwise-AND; empty group intersections — the
// overwhelming majority when the final intersection is small, as in search
// workloads — are skipped without touching the elements. The paper's
// algorithms and their guarantees:
//
//	IntGroup      O((n1+n2)/√w + r)      fixed-width partitions, 2 sets
//	RanGroup      O(n/√w + k·r)          randomized partitions, k sets
//	RanGroupScan  (Theorem 3.9)          simple variant, fastest in practice
//	HashBin       O(n1·log(n2/n1))       skewed set sizes
//
// Basic usage:
//
//	l1, _ := fastintersect.Preprocess(ids1)
//	l2, _ := fastintersect.Preprocess(ids2)
//	res, _ := fastintersect.Intersect(l1, l2)       // auto-picks an algorithm
//
// Intersect returns results in an algorithm-dependent order; use
// IntersectSorted for ascending document IDs. IntersectWith selects a
// specific algorithm, including the nine baselines the paper evaluates
// against (Merge, Hash, SkipList, SvS, Adaptive, BaezaYates, SmallAdaptive,
// Lookup, BPP), which makes head-to-head comparisons on your own workload a
// one-line change.
//
// All lists preprocessed with the same seed (see WithSeed) share the random
// permutation g and hash functions h1..hm and can be intersected together.
// A List lazily materializes the per-algorithm structures on first use, so
// you pay only for the algorithms you run.
//
// Algorithm names round-trip through ParseAlgorithm and Algorithm.String,
// which is how the CLI tools (cmd/fsi, cmd/fsibench, cmd/fsiserve) select
// algorithms.
//
// High-QPS callers can eliminate per-query allocations entirely: acquire a
// pooled ExecContext with GetExecContext and use IntersectInto (append into
// a caller buffer) or IntersectWithBuf (reuse the context's buffer). With
// warm structures the core kernels run at 0 allocs/op; IntersectWith is a
// thin wrapper that borrows a context per call and returns a fresh slice.
// See ARCHITECTURE.md's "Query execution and memory discipline" for the
// ownership rules.
//
// Above the library sits a query-serving subsystem (internal/engine,
// served by cmd/fsiserve): an inverted index hash-partitioned across
// shards, a cost-based query planner (internal/plan) that lowers a small
// AND/OR/NOT language to physical plans — kernel choice, operand order and
// decode decisions priced by coefficients calibrated against the real
// kernels at startup, inspectable via Engine.Explain / the HTTP explain=1
// parameter — an LRU result cache keyed by the normalized (canonical)
// query, batch execution (Engine.QueryBatch) that plans once per canonical
// form and shares decode memos across a batch, and an HTTP JSON API with a
// built-in load generator — the search-engine setting that motivates the
// paper, end to end. The corpus stays live: each shard pairs
// its frozen base segment with a small delta segment and a tombstone set,
// so documents added or deleted at serving time (Engine.AddDocument /
// DeleteDocument, or POST /index/doc over HTTP) are queryable immediately,
// and a background compaction folds the deltas back into preprocessed base
// segments. See ARCHITECTURE.md's mutable-tier section for the design.
//
// The serving tier's posting storage is pluggable (§4.1 and Appendix B of
// the paper): besides raw slices, internal/invindex can hold each posting
// list compressed — Elias γ/δ gap codes behind a bucket directory, or the
// paper's Lowbits grouping whose decode is a single bit concatenation —
// with the encoding chosen per list from its length and density (short
// lists stay raw, γ wins on dense lists, δ on sparse ones, and long
// mid-density lists take Lowbits, trading ≤2× the best gap-coded size for
// the fastest compressed intersections). Queries intersect directly over
// the compressed representations, and engine.Stats reports the exact
// bytes-per-posting footprint per encoding. See ARCHITECTURE.md for the
// full map from packages to paper sections.
package fastintersect
