// Analytics: evaluating conjunctive predicates over a fact table — the
// database-side application from the paper's introduction ("evaluation of
// conjunctive predicates", data mining). Each predicate's matching row IDs
// form a set; a WHERE clause ANDing predicates is a set intersection.
// Bag semantics (the §3 extension) is shown with purchase multiplicities.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"time"

	"fastintersect"
	"fastintersect/internal/xhash"
)

const numRows = 500_000

func main() {
	rng := xhash.NewRNG(99)

	// Simulated order-fact table: per row a region, a tier, and a flag.
	// Predicate index: matching row IDs per predicate value.
	regionRows := map[string][]uint32{}
	tierRows := map[string][]uint32{}
	expressRows := []uint32{}
	regions := []string{"emea", "amer", "apac"}
	tiers := []string{"free", "pro", "enterprise"}
	for row := uint32(0); row < numRows; row++ {
		rg := regions[rng.Intn(len(regions))]
		tr := tiers[rng.Intn(len(tiers))]
		regionRows[rg] = append(regionRows[rg], row)
		tierRows[tr] = append(tierRows[tr], row)
		if rng.Intn(10) == 0 {
			expressRows = append(expressRows, row)
		}
	}

	prep := func(rows []uint32) *fastintersect.List {
		l, err := fastintersect.Preprocess(rows)
		if err != nil {
			log.Fatal(err)
		}
		return l
	}
	emea := prep(regionRows["emea"])
	pro := prep(tierRows["pro"])
	express := prep(expressRows)

	// SELECT count(*) WHERE region='emea' AND tier='pro' AND express
	if _, err := fastintersect.Intersect(emea, pro, express); err != nil {
		log.Fatal(err) // warm run: builds the lazy per-list structures
	}
	start := time.Now()
	rows, err := fastintersect.IntersectSorted(emea, pro, express)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WHERE region=emea AND tier=pro AND express: %d rows (of %d) in %v\n",
		len(rows), numRows, time.Since(start).Round(time.Microsecond))
	fmt.Printf("selectivities: emea=%d pro=%d express=%d\n\n", emea.Len(), pro.Len(), express.Len())

	// Market-basket flavour with bag semantics: customers buying both
	// products, with the multiplicity = min purchases of either.
	basketA := make([]uint32, 0, 40_000)
	basketB := make([]uint32, 0, 40_000)
	for i := 0; i < 40_000; i++ {
		// Repeated customer IDs model repeat purchases.
		basketA = append(basketA, uint32(rng.Intn(20_000)))
		basketB = append(basketB, uint32(rng.Intn(20_000)))
	}
	bagA, err := fastintersect.PreprocessBag(basketA)
	if err != nil {
		log.Fatal(err)
	}
	bagB, err := fastintersect.PreprocessBag(basketB)
	if err != nil {
		log.Fatal(err)
	}
	ids, counts, err := fastintersect.IntersectBag(bagA, bagB)
	if err != nil {
		log.Fatal(err)
	}
	both := 0
	multi := 0
	for _, c := range counts {
		both++
		if c >= 2 {
			multi++
		}
	}
	fmt.Printf("customers who bought product A and B: %d (repeat buyers of both: %d)\n", both, multi)
	fmt.Printf("example: customer %d bought both at least %d times\n", ids[0], counts[0])
}
