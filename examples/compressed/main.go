// Compressed: the §4.1 / Appendix B trade-off in action. The same posting
// lists are stored four ways — uncompressed, γ/δ gap-coded, and the paper's
// Lowbits scheme — and intersected, printing the space/time trade-off that
// Figure 8 charts: Lowbits spends a little more memory than the δ-coded
// index but intersects several times faster, because filtered groups are
// skipped without decoding.
//
//	go run ./examples/compressed
package main

import (
	"fmt"
	"time"

	"fastintersect/internal/baseline"
	"fastintersect/internal/compress"
	"fastintersect/internal/core"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func main() {
	const n = 1_000_000
	rng := xhash.NewRNG(3)
	a, b := workload.PairWithIntersection(workload.DefaultUniverse, n, n, n/100, rng)
	fam := core.NewFamily(42, 1)

	fmt.Printf("two sets of %d postings, 1%% intersection\n\n", n)
	fmt.Println("variant                 size (KiB)   vs raw   intersect      result")

	report := func(name string, words int, f func() int) {
		start := time.Now()
		got := f()
		elapsed := time.Since(start).Round(time.Microsecond)
		raw := 2 * n * 4 / 1024
		fmt.Printf("%-22s  %9d   %5.2fx   %-12v  %d\n", name, words*8/1024, float64(words*8/1024)/float64(raw), elapsed, got)
	}

	// Uncompressed merge for reference.
	report("raw + Merge", 2*n/2, func() int { return len(baseline.Merge2(nil, a, b)) })

	mgA, _ := compress.NewMergeList(a, compress.Gamma)
	mgB, _ := compress.NewMergeList(b, compress.Gamma)
	report("Merge_Gamma", mgA.SizeWords()+mgB.SizeWords(), func() int { return len(compress.IntersectMerge(mgA, mgB)) })

	mdA, _ := compress.NewMergeList(a, compress.Delta)
	mdB, _ := compress.NewMergeList(b, compress.Delta)
	report("Merge_Delta", mdA.SizeWords()+mdB.SizeWords(), func() int { return len(compress.IntersectMerge(mdA, mdB)) })

	ldA, _ := compress.NewLookupListAuto(a, compress.Delta, 32)
	ldB, _ := compress.NewLookupListAuto(b, compress.Delta, 32)
	report("Lookup_Delta", ldA.SizeWords()+ldB.SizeWords(), func() int { return len(compress.IntersectLookup(ldA, ldB)) })

	rdA, _ := compress.NewRGSList(fam, a, 1, compress.RGSDelta)
	rdB, _ := compress.NewRGSList(fam, b, 1, compress.RGSDelta)
	report("RanGroupScan_Delta", rdA.SizeWords()+rdB.SizeWords(), func() int { return len(compress.IntersectRGS(rdA, rdB)) })

	rlA, _ := compress.NewRGSList(fam, a, 1, compress.RGSLowbits)
	rlB, _ := compress.NewRGSList(fam, b, 1, compress.RGSLowbits)
	report("RanGroupScan_Lowbits", rlA.SizeWords()+rlB.SizeWords(), func() int { return len(compress.IntersectRGS(rlA, rlB)) })

	fmt.Println("\nexpected shape (paper Figure 8): Lowbits fastest among compressed,")
	fmt.Println("at 1.3-1.9x the space of the delta-coded inverted index.")
}
