// Quickstart: preprocess two sets and intersect them with the default
// (Auto) algorithm, then compare every algorithm on the same input.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"fastintersect"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func main() {
	// Two synthetic "posting lists": 200K IDs each from a 100M universe,
	// sharing exactly 2,000 documents.
	rng := xhash.NewRNG(1)
	a, b := workload.PairWithIntersection(100_000_000, 200_000, 200_000, 2_000, rng)

	l1, err := fastintersect.Preprocess(a)
	if err != nil {
		log.Fatal(err)
	}
	l2, err := fastintersect.Preprocess(b)
	if err != nil {
		log.Fatal(err)
	}

	res, err := fastintersect.IntersectSorted(l1, l2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|L1| = %d, |L2| = %d, |L1 ∩ L2| = %d\n", l1.Len(), l2.Len(), len(res))
	fmt.Printf("first matches: %v\n\n", res[:5])

	// The same intersection under every algorithm the library implements —
	// the paper's algorithms first, then the baselines it compares against.
	fmt.Println("algorithm       time        result")
	for _, algo := range fastintersect.Algorithms() {
		if _, err := fastintersect.IntersectWith(algo, l1, l2); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		out, _ := fastintersect.IntersectWith(algo, l1, l2)
		fmt.Printf("%-14s  %-10v  %d elements\n", algo, time.Since(start).Round(time.Microsecond), len(out))
	}
}
