// Websearch: conjunctive keyword queries over an inverted index — the
// paper's motivating application. A synthetic corpus of documents is
// indexed; multi-keyword queries are answered by intersecting posting
// lists, with the Auto policy switching between RanGroupScan and HashBin
// depending on how skewed the posting sizes are.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"
	"time"

	"fastintersect"
	"fastintersect/internal/invindex"
	"fastintersect/internal/xhash"
)

// vocabulary with Zipf-ish popularity: earlier words appear in more docs.
var vocabulary = []string{
	"data", "system", "query", "index", "search", "memory", "fast",
	"intersection", "set", "algorithm", "cache", "latency", "ranking",
	"shard", "compression", "posting", "hash", "partition", "group", "scan",
}

func main() {
	const numDocs = 120_000
	rng := xhash.NewRNG(7)
	ix := invindex.New()
	for doc := uint32(0); doc < numDocs; doc++ {
		var terms []string
		for rank, w := range vocabulary {
			// P(word in doc) ∝ 1/(rank+2): frequent head, long tail.
			if rng.Intn(rank+2) == 0 {
				terms = append(terms, w)
			}
		}
		if err := ix.Add(doc, terms); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Build(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("document frequencies:")
	for _, w := range []string{"data", "search", "intersection", "scan"} {
		fmt.Printf("  %-14s %6d docs\n", w, ix.DocFreq(w))
	}
	fmt.Println()

	queries := [][]string{
		{"data", "system"},
		{"fast", "set", "intersection"},
		{"search", "latency", "ranking"},
		{"scan", "data"}, // rare ∧ frequent: skewed sizes, Auto → HashBin
	}
	for _, q := range queries {
		if _, err := ix.Query(q...); err != nil { // warm: builds lazy structures
			log.Fatal(err)
		}
		start := time.Now()
		hits, err := ix.Query(q...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-35s %6d hits in %v\n", fmt.Sprintf("%v", q), len(hits), time.Since(start).Round(time.Microsecond))
	}

	// Any specific algorithm can be forced, e.g. for benchmarking:
	hits, err := ix.QueryWith(fastintersect.Merge, "fast", "set", "intersection")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame query via Merge baseline: %d hits\n", len(hits))
}
