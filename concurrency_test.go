package fastintersect

import (
	"sync"
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// TestConcurrentIntersections exercises the lazy structure builders from
// many goroutines at once: a List is advertised as safe for concurrent
// queries, so the first-use builds behind List.mu must not race.
func TestConcurrentIntersections(t *testing.T) {
	rng := xhash.NewRNG(0xCC)
	raw := workload.RandomSets(1<<18, []int{3000, 5000, 8000}, rng)
	lists := make([]*List, len(raw))
	for i, s := range raw {
		lists[i], _ = Preprocess(s)
	}
	want := sets.IntersectReference(raw...)
	algos := Algorithms()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			algo := algos[g%len(algos)]
			if mx := algo.MaxSets(); mx > 0 && len(lists) > mx {
				algo = RanGroupScan
			}
			got, err := IntersectWith(algo, lists...)
			if err != nil {
				errs <- err.Error()
				return
			}
			if !algo.Sorted() {
				sets.SortU32(got)
			}
			if !sets.Equal(got, want) {
				errs <- algo.String() + ": wrong result under concurrency"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
