module fastintersect

go 1.24
