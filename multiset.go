package fastintersect

import (
	"fmt"
	"sort"

	"fastintersect/internal/sets"
)

// MultiSet extends List with bag semantics: each element carries a
// multiplicity, as the paper's §3 notes ("Our approach can be extended to
// bag semantics by additionally storing element frequency"). Intersection
// under bag semantics takes the minimum multiplicity of each common
// element.
type MultiSet struct {
	list   *List
	counts []uint32 // parallel to list.set
}

// PreprocessBag builds a MultiSet from an arbitrary (unsorted, repeating)
// stream of IDs; the multiplicity of each ID is its number of occurrences.
func PreprocessBag(ids []uint32, opts ...Option) (*MultiSet, error) {
	sorted := append([]uint32(nil), ids...)
	sets.SortU32(sorted)
	var uniq, counts []uint32
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		uniq = append(uniq, sorted[i])
		counts = append(counts, uint32(j-i))
		i = j
	}
	l, err := Preprocess(uniq, opts...)
	if err != nil {
		return nil, err
	}
	return &MultiSet{list: l, counts: counts}, nil
}

// PreprocessBagCounts builds a MultiSet from parallel (sorted unique ID,
// count) slices. Counts must be positive.
func PreprocessBagCounts(ids, counts []uint32, opts ...Option) (*MultiSet, error) {
	if len(ids) != len(counts) {
		return nil, fmt.Errorf("fastintersect: %d ids but %d counts", len(ids), len(counts))
	}
	for i, c := range counts {
		if c == 0 {
			return nil, fmt.Errorf("fastintersect: zero count at index %d", i)
		}
	}
	l, err := Preprocess(ids, opts...)
	if err != nil {
		return nil, err
	}
	return &MultiSet{list: l, counts: append([]uint32(nil), counts...)}, nil
}

// Len returns the number of distinct elements.
func (m *MultiSet) Len() int { return m.list.Len() }

// List returns the underlying set-semantics list.
func (m *MultiSet) List() *List { return m.list }

// Count returns the multiplicity of id (0 if absent).
func (m *MultiSet) Count(id uint32) uint32 {
	s := m.list.set
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return m.counts[i]
	}
	return 0
}

// IntersectBag intersects multisets: the result contains each common ID
// with the minimum of its multiplicities, sorted ascending.
func IntersectBag(mss ...*MultiSet) (ids, counts []uint32, err error) {
	if len(mss) == 0 {
		return nil, nil, ErrNoLists
	}
	lists := make([]*List, len(mss))
	for i, m := range mss {
		lists[i] = m.list
	}
	common, err := IntersectSorted(lists...)
	if err != nil {
		return nil, nil, err
	}
	counts = make([]uint32, len(common))
	for i, id := range common {
		c := mss[0].Count(id)
		for _, m := range mss[1:] {
			if mc := m.Count(id); mc < c {
				c = mc
			}
		}
		counts[i] = c
	}
	return common, counts, nil
}
