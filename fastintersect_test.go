package fastintersect

import (
	"fmt"
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func mustPreprocess(t *testing.T, set []uint32, opts ...Option) *List {
	t.Helper()
	l, err := Preprocess(set, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPreprocessValidation(t *testing.T) {
	if _, err := Preprocess([]uint32{2, 1}); err == nil {
		t.Fatal("unsorted accepted")
	}
	if _, err := Preprocess([]uint32{1, 1}); err == nil {
		t.Fatal("duplicates accepted")
	}
	if _, err := Preprocess([]uint32{1}, WithHashImages(0)); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Preprocess([]uint32{1}, WithHashImages(99)); err == nil {
		t.Fatal("m=99 accepted")
	}
	l := mustPreprocess(t, []uint32{1, 5, 9})
	if l.Len() != 3 || l.Seed() != DefaultSeed {
		t.Fatal("accessors wrong")
	}
}

func TestPreprocessUnsorted(t *testing.T) {
	l, err := PreprocessUnsorted([]uint32{5, 1, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(l.Set(), []uint32{1, 3, 5}) {
		t.Fatalf("Set = %v", l.Set())
	}
}

// Algorithm-parity coverage (every Algorithm vs the scalar reference over
// pair, k-way, adversarial and randomized shapes) lives in the shared
// cross-kernel harness: internal/kerneltest.TestListKernelParity.

func TestAutoPolicy(t *testing.T) {
	rng := xhash.NewRNG(0xC33)
	small, big := workload.PairWithIntersection(1<<22, 50, 50*AutoSkewThreshold, 10, rng)
	ls, lbg := mustPreprocess(t, small), mustPreprocess(t, big)
	if got := autoPick([]*List{ls, lbg}); got != HashBin {
		t.Fatalf("skewed auto = %v, want HashBin", got)
	}
	even1, even2 := workload.PairWithIntersection(1<<22, 5000, 5000, 100, rng)
	le1, le2 := mustPreprocess(t, even1), mustPreprocess(t, even2)
	if got := autoPick([]*List{le1, le2}); got != RanGroupScan {
		t.Fatalf("even auto = %v, want RanGroupScan", got)
	}
	// Auto must still be correct.
	got, err := IntersectSorted(ls, lbg)
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(got, sets.IntersectReference(small, big)) {
		t.Fatal("auto result wrong")
	}
}

func TestSeedMismatchRejected(t *testing.T) {
	a := mustPreprocess(t, []uint32{1, 2, 3})
	b, err := Preprocess([]uint32{2, 3, 4}, WithSeed(12345))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Intersect(a, b); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestIntersectEdgeCases(t *testing.T) {
	if _, err := Intersect(); err != ErrNoLists {
		t.Fatalf("no lists error = %v", err)
	}
	a := mustPreprocess(t, []uint32{7, 8})
	got, err := Intersect(a)
	if err != nil || !sets.Equal(got, []uint32{7, 8}) {
		t.Fatalf("single list = %v, %v", got, err)
	}
	empty := mustPreprocess(t, nil)
	got, err = Intersect(a, empty)
	if err != nil || len(got) != 0 {
		t.Fatalf("with empty = %v, %v", got, err)
	}
}

func TestIntersectParallelMatches(t *testing.T) {
	rng := xhash.NewRNG(0xD44)
	raw := workload.RandomSets(1<<18, []int{4000, 9000}, rng)
	a, b := mustPreprocess(t, raw[0]), mustPreprocess(t, raw[1])
	serial, err := IntersectWith(RanGroupScan, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		par, err := IntersectParallel(workers, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !sets.Equal(sortedU32(par), sortedU32(serial)) {
			t.Fatalf("workers=%d mismatch", workers)
		}
	}
}

func sortedU32(s []uint32) []uint32 {
	out := append([]uint32(nil), s...)
	sets.SortU32(out)
	return out
}

func TestAlgorithmStringers(t *testing.T) {
	if Auto.String() != "Auto" || RanGroupScan.String() != "RanGroupScan" || Bitseg.String() != "Bitseg" {
		t.Fatal("String() wrong")
	}
	if Algorithm(99).String() != "Algorithm(?)" {
		t.Fatal("unknown String() wrong")
	}
	if len(Algorithms()) != 15 {
		t.Fatalf("Algorithms() has %d entries", len(Algorithms()))
	}
}

func TestMultiSetBasics(t *testing.T) {
	m, err := PreprocessBag([]uint32{5, 1, 5, 5, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	for id, want := range map[uint32]uint32{1: 2, 2: 1, 5: 3, 9: 0} {
		if got := m.Count(id); got != want {
			t.Fatalf("Count(%d) = %d, want %d", id, got, want)
		}
	}
}

func TestMultiSetCountsValidation(t *testing.T) {
	if _, err := PreprocessBagCounts([]uint32{1, 2}, []uint32{1}, WithSeed(DefaultSeed)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := PreprocessBagCounts([]uint32{1}, []uint32{0}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestIntersectBag(t *testing.T) {
	m1, _ := PreprocessBag([]uint32{1, 1, 2, 3, 3, 3})
	m2, _ := PreprocessBag([]uint32{1, 3, 3, 4})
	ids, counts, err := IntersectBag(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(ids, []uint32{1, 3}) {
		t.Fatalf("ids = %v", ids)
	}
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if _, _, err := IntersectBag(); err != ErrNoLists {
		t.Fatal("empty bag intersection accepted")
	}
}

func TestListsShareFamilyAcrossCalls(t *testing.T) {
	// Two independently preprocessed lists (same seed) must be compatible.
	a := mustPreprocess(t, []uint32{1, 2, 3, 10, 20})
	b := mustPreprocess(t, []uint32{2, 10, 30})
	got, err := IntersectWith(RanGroup, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(sortedU32(got), []uint32{2, 10}) {
		t.Fatalf("got %v", got)
	}
}

func seqSet(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

// TestAutoSkewThresholdBoundary pins the exact size ratio at which Auto
// switches from RanGroupScan to HashBin.
func TestAutoSkewThresholdBoundary(t *testing.T) {
	const minN = 10
	small := mustPreprocess(t, seqSet(minN))
	atThreshold := mustPreprocess(t, seqSet(minN*AutoSkewThreshold))
	belowThreshold := mustPreprocess(t, seqSet(minN*AutoSkewThreshold-1))
	if got := autoPick([]*List{small, atThreshold}); got != HashBin {
		t.Fatalf("ratio = threshold: auto = %v, want HashBin", got)
	}
	if got := autoPick([]*List{atThreshold, small}); got != HashBin {
		t.Fatalf("order must not matter: auto = %v, want HashBin", got)
	}
	if got := autoPick([]*List{small, belowThreshold}); got != RanGroupScan {
		t.Fatalf("ratio just below threshold: auto = %v, want RanGroupScan", got)
	}
	empty := mustPreprocess(t, nil)
	if got := autoPick([]*List{empty, atThreshold}); got != Merge {
		t.Fatalf("empty operand: auto = %v, want Merge", got)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range append([]Algorithm{Auto}, Algorithms()...) {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %v", a, got)
		}
	}
	if a, err := ParseAlgorithm("rangroupscan"); err != nil || a != RanGroupScan {
		t.Fatalf("case-insensitive parse = %v, %v", a, err)
	}
	if _, err := ParseAlgorithm("NoSuchAlgo"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := ParseAlgorithm(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func ExampleIntersectSorted() {
	l1, _ := Preprocess([]uint32{1, 3, 5, 7, 9})
	l2, _ := Preprocess([]uint32{3, 4, 5, 6, 7})
	res, _ := IntersectSorted(l1, l2)
	fmt.Println(res)
	// Output: [3 5 7]
}
