package bitword

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromElements(t *testing.T) {
	a := FromElements(0, 3, 63)
	if !a.Contains(0) || !a.Contains(3) || !a.Contains(63) {
		t.Fatalf("missing elements in %b", a)
	}
	if a.Contains(1) || a.Contains(62) {
		t.Fatalf("spurious elements in %b", a)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}

func TestFromElementsIgnoresOutOfRange(t *testing.T) {
	a := FromElements(64, 100, 5)
	if a != FromElements(5) {
		t.Fatalf("out-of-range elements not ignored: %b", a)
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(64) did not panic")
		}
	}()
	Word(0).Add(64)
}

func TestAndIsIntersection(t *testing.T) {
	a := FromElements(1, 2, 4, 9)
	b := FromElements(1, 3, 5, 9)
	got := a.And(b).Elements(nil)
	want := []uint{1, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("And = %v, want %v", got, want)
	}
}

func TestEmptyAndMin(t *testing.T) {
	var a Word
	if !a.Empty() {
		t.Fatal("zero Word not empty")
	}
	if a.Len() != 0 {
		t.Fatal("zero Word has nonzero Len")
	}
	a = a.Add(17)
	if a.Empty() {
		t.Fatal("non-empty Word reported empty")
	}
	if a.Min() != 17 {
		t.Fatalf("Min = %d, want 17", a.Min())
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty set did not panic")
		}
	}()
	Word(0).Min()
}

func TestElementsRoundTrip(t *testing.T) {
	// The enumeration of FromElements(S) must equal sorted unique S.
	f := func(raw []uint8) bool {
		seen := map[uint]bool{}
		var in []uint
		var a Word
		for _, r := range raw {
			y := uint(r % W)
			if !seen[y] {
				seen[y] = true
				in = append(in, y)
			}
			a = a.Add(y)
		}
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
		got := a.Elements(nil)
		if len(got) != len(in) {
			return false
		}
		for i := range got {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElementsXOREquivalence(t *testing.T) {
	// The paper's footnote-1 enumeration must agree with the
	// TrailingZeros-based one on arbitrary words.
	f := func(x uint64) bool {
		a := Word(x)
		return reflect.DeepEqual(a.Elements(nil), a.ElementsXOR(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Explicit edge words.
	for _, x := range []uint64{0, 1, 1 << 63, ^uint64(0), 0xAAAAAAAAAAAAAAAA} {
		a := Word(x)
		if !reflect.DeepEqual(a.Elements(nil), a.ElementsXOR(nil)) {
			t.Fatalf("mismatch for %x", x)
		}
	}
}

func TestLogLookupAllBits(t *testing.T) {
	for k := uint(0); k < 64; k++ {
		if got := logLookup(1 << k); got != k {
			t.Fatalf("logLookup(1<<%d) = %d", k, got)
		}
	}
}

func TestElementsAppendsToDst(t *testing.T) {
	dst := []uint{99}
	got := FromElements(2, 5).Elements(dst)
	want := []uint{99, 2, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Elements append = %v, want %v", got, want)
	}
}

func BenchmarkElements(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	words := make([]Word, 1024)
	for i := range words {
		words[i] = Word(r.Uint64()) & Word(r.Uint64()) & Word(r.Uint64()) // ~8 bits set
	}
	var buf []uint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = words[i&1023].Elements(buf[:0])
	}
	_ = buf
}

func BenchmarkElementsXOR(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	words := make([]Word, 1024)
	for i := range words {
		words[i] = Word(r.Uint64()) & Word(r.Uint64()) & Word(r.Uint64())
	}
	var buf []uint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = words[i&1023].ElementsXOR(buf[:0])
	}
	_ = buf
}
