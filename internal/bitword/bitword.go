// Package bitword implements the single-word set representation of
// Section 3.1 of "Fast Set Intersection in Memory" (Ding & König, VLDB 2011).
//
// A set A ⊆ [w] = {0, 1, ..., w-1} with w = 64 is stored in one machine word
// by setting bit y iff y ∈ A. Intersection of two such sets is a single
// bitwise-AND, and the elements of a word can be enumerated in O(|A|) time
// using the lowbit technique from footnote 1 of the paper.
package bitword

import "math/bits"

// W is the machine word width in bits. The paper calls this w; all group
// hash images map into [W].
const W = 64

// SqrtW is √w, the "magical" fixed group width of Section 3.1.
const SqrtW = 8

// Word is the single-word representation w(A) of a set A ⊆ [W].
type Word uint64

// FromElements builds the word representation of the given elements.
// Elements outside [0, W) are ignored.
func FromElements(ys ...uint) Word {
	var a Word
	for _, y := range ys {
		if y < W {
			a |= 1 << y
		}
	}
	return a
}

// Add returns a with element y added. Add panics if y ≥ W.
func (a Word) Add(y uint) Word {
	if y >= W {
		panic("bitword: element out of range")
	}
	return a | 1<<y
}

// Contains reports whether y ∈ a.
func (a Word) Contains(y uint) bool {
	return y < W && a&(1<<y) != 0
}

// And returns the word representation of the intersection a ∩ b.
// This is the O(1) intersection primitive the paper's framework builds on.
func (a Word) And(b Word) Word { return a & b }

// Len returns |A|, the number of elements in the set.
func (a Word) Len() int { return bits.OnesCount64(uint64(a)) }

// Empty reports whether the set is empty.
func (a Word) Empty() bool { return a == 0 }

// Min returns the smallest element of a. It panics on the empty set.
func (a Word) Min() uint {
	if a == 0 {
		panic("bitword: Min of empty set")
	}
	return uint(bits.TrailingZeros64(uint64(a)))
}

// Elements appends the elements of a to dst in increasing order and returns
// the extended slice. It uses the hardware count-trailing-zeros instruction,
// the modern equivalent of the paper's NLZ technique.
func (a Word) Elements(dst []uint) []uint {
	for a != 0 {
		dst = append(dst, uint(bits.TrailingZeros64(uint64(a))))
		a &= a - 1
	}
	return dst
}

// ElementsXOR enumerates the elements of a using the exact technique from
// footnote 1 of the paper:
//
//	lowbit = ((w(A)−1) ⊕ w(A)) ∧ w(A)   — the lowest 1-bit of w(A)
//	y      = log2(lowbit)               — via a precomputed lookup table
//	w(A)   = w(A) ⊕ lowbit              — clear and repeat
//
// It is retained (and tested equivalent to Elements) for faithfulness to the
// paper; Elements is what the hot paths use.
func (a Word) ElementsXOR(dst []uint) []uint {
	for a != 0 {
		lowbit := ((a - 1) ^ a) & a
		dst = append(dst, logLookup(uint64(lowbit)))
		a ^= lowbit
	}
	return dst
}

// log16 maps a 16-bit power of two to its exponent; log16[1<<k] == k.
// Built once at package init, mirroring the paper's "pre-computed lookup
// tables" alternative to the NLZ instruction.
var log16 [1 << 16]uint8

func init() {
	for k := uint(0); k < 16; k++ {
		log16[1<<k] = uint8(k)
	}
}

// logLookup returns log2(p) for a 64-bit power of two p using 16-bit table
// lookups.
func logLookup(p uint64) uint {
	switch {
	case p&0xffff != 0:
		return uint(log16[p&0xffff])
	case p&0xffff0000 != 0:
		return 16 + uint(log16[(p>>16)&0xffff])
	case p&0xffff00000000 != 0:
		return 32 + uint(log16[(p>>32)&0xffff])
	default:
		return 48 + uint(log16[(p>>48)&0xffff])
	}
}
