package core

import "fastintersect/internal/bitword"

// Scratch owns the reusable per-call workspace of the intersection kernels:
// operand orderings, memoized prefix ANDs, group cursors and merge buffers.
// The *Into kernel variants take a Scratch so a serving layer can hold one
// per query context (pooled) and run steady-state intersections with zero
// allocations; passing nil makes the kernel allocate a private one, which
// is what the convenience wrappers without a Scratch parameter do.
//
// A Scratch is not safe for concurrent use; concurrent intersections need
// one each. Kernels nil out the operand-pointer fields before returning so
// a pooled Scratch never pins preprocessed structures (e.g. an index
// generation that has since been swapped out) in memory.
type Scratch struct {
	rgs     []*RanGroupScanList
	rg      []*RanGroupList
	hb      []*HashBinList
	datas   []*setData
	layers  []*layer
	ts      []uint
	partial []bitword.Word
	prevZ   []int32
	zs      []int32
	los     []int
	his     []int
	groups  [][]uint32
	bufA    []uint32
	bufB    []uint32
}

// scratchSlice returns s resized to k reusing its capacity, allocating only
// on growth. The caller stores the result back into the Scratch field.
func scratchSlice[T any](s []T, k int) []T {
	if cap(s) < k {
		return make([]T, k)
	}
	return s[:k]
}
