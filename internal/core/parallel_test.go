package core

import (
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func TestIntersectRangeCoversAll(t *testing.T) {
	rng := xhash.NewRNG(0x4A4E)
	fam := NewFamily(testSeed, 2)
	aSet, bSet := workload.PairWithIntersection(1<<20, 3000, 9000, 500, rng)
	a, _ := NewRanGroupScanList(fam, aSet, 2)
	b, _ := NewRanGroupScanList(fam, bSet, 2)
	want := sets.IntersectReference(aSet, bSet)
	// Split the zk space at several points; the union must equal the whole.
	tk := b.T()
	if a.T() > tk {
		tk = a.T()
	}
	zkMax := int32(1) << tk
	for _, cuts := range []int32{1, 2, 3, 7} {
		var got []uint32
		chunk := (zkMax + cuts - 1) / cuts
		for lo := int32(0); lo < zkMax; lo += chunk {
			hi := lo + chunk
			if hi > zkMax {
				hi = zkMax
			}
			got = append(got, IntersectRanGroupScanRange([]*RanGroupScanList{a, b}, lo, hi)...)
		}
		if !sets.Equal(sortedCopy(got), want) {
			t.Fatalf("cuts=%d: got %d, want %d", cuts, len(got), len(want))
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := xhash.NewRNG(0x9A3A)
	fam := NewFamily(testSeed, 2)
	lists := workload.RandomSets(1<<18, []int{5000, 8000, 12000}, rng)
	rgs := make([]*RanGroupScanList, len(lists))
	for i, l := range lists {
		rgs[i], _ = NewRanGroupScanList(fam, l, 2)
	}
	serial := IntersectRanGroupScan(rgs...)
	for _, workers := range []int{1, 2, 4, 16} {
		par := IntersectRanGroupScanParallel(workers, rgs...)
		if !sets.Equal(par, serial) {
			t.Fatalf("workers=%d: parallel differs from serial (%d vs %d)", workers, len(par), len(serial))
		}
	}
}

func TestParallelEdges(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	a, _ := NewRanGroupScanList(fam, []uint32{1, 2, 3}, 2)
	empty, _ := NewRanGroupScanList(fam, nil, 2)
	if got := IntersectRanGroupScanParallel(4, a, empty); len(got) != 0 {
		t.Fatalf("parallel with empty list = %v", got)
	}
	if got := IntersectRanGroupScanParallel(4, a); !sets.Equal(sortedCopy(got), []uint32{1, 2, 3}) {
		t.Fatalf("parallel single list = %v", got)
	}
	// More workers than groups.
	if got := IntersectRanGroupScanParallel(1000, a, a); !sets.Equal(sortedCopy(got), []uint32{1, 2, 3}) {
		t.Fatalf("parallel self-intersection = %v", got)
	}
}
