package core

import (
	"fmt"

	"fastintersect/internal/bitword"
	"fastintersect/internal/sets"
	"fastintersect/internal/xhash"
)

// RanGroupList is the preprocessed form of a set for the randomized
// partition algorithm of §3.2 (the paper's RanGroup): elements are ordered
// by g(x) and partitioned into 2^t prefix buckets L^z = {x : gt(x) = z}
// with t = ⌈log(n/√w)⌉ (Algorithm 4's choice, which depends only on n, so a
// single resolution suffices — §3.2.1's closing remark). Each group carries
// its word image h(L^z) and packed first(y, L^z) table; next(x) chains are
// global. Theorem 3.8: O(n) space, O(n log n) preprocessing.
type RanGroupList struct {
	fam   *Family
	data  setData // keys = g(x), elements ordered by g(x)
	t     uint
	layer *layer
}

// TForSize is the paper's t_i = ⌈log(n_i/√w)⌉ (never negative).
func TForSize(n int) uint {
	if n <= bitword.SqrtW {
		return 0
	}
	return xhash.CeilLog2((n + bitword.SqrtW - 1) / bitword.SqrtW)
}

// NewRanGroupList preprocesses a sorted set.
func NewRanGroupList(fam *Family, set []uint32) (*RanGroupList, error) {
	if err := sets.Validate(set); err != nil {
		return nil, fmt.Errorf("core: RanGroup preprocessing: %w", err)
	}
	l := &RanGroupList{fam: fam, t: TForSize(len(set))}
	l.data = buildPermData(fam, set)
	l.layer = newBoundedLayer(&l.data, prefixBounds(l.data.keys, l.t))
	return l, nil
}

// buildPermData computes g(x) for every element, sorts by g (radix sort, so
// preprocessing stays O(n) beyond the caller's initial sort), and fills
// hash values and next chains.
func buildPermData(fam *Family, set []uint32) setData {
	n := len(set)
	var d setData
	d.elems = make([]uint32, n)
	d.keys = make([]uint32, n)
	copy(d.elems, set)
	for i, x := range d.elems {
		d.keys[i] = fam.Perm.Apply(x)
	}
	RadixSortPairs(d.keys, d.elems)
	d.hvals = make([]uint8, n)
	for i, x := range d.elems {
		d.hvals[i] = fam.H.Hash(x)
	}
	d.buildNext()
	return d
}

// RadixSortPairs sorts keys ascending, permuting vals alongside, with a
// 4-pass LSD byte radix sort.
func RadixSortPairs(keys, vals []uint32) {
	n := len(keys)
	tmpK := make([]uint32, n)
	tmpV := make([]uint32, n)
	var count [256]int
	for pass := uint(0); pass < 4; pass++ {
		shift := pass * 8
		for i := range count {
			count[i] = 0
		}
		for _, k := range keys {
			count[(k>>shift)&0xff]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			b := (keys[i] >> shift) & 0xff
			tmpK[count[b]] = keys[i]
			tmpV[count[b]] = vals[i]
			count[b]++
		}
		keys, tmpK = tmpK, keys
		vals, tmpV = tmpV, vals
	}
	// After an even number of passes the data is back in the caller's
	// slices; 4 passes is even, so nothing to copy.
}

// prefixBounds returns the dense group boundary array over 2^t buckets:
// bounds[z] is the index of the first element whose t-bit prefix is ≥ z.
func prefixBounds(keys []uint32, t uint) []int32 {
	groups := int32(1) << t
	bounds := make([]int32, groups+1)
	z := int32(0)
	for i, k := range keys {
		kz := int32(xhash.PrefixOf(k, t))
		for z <= kz {
			bounds[z] = int32(i)
			z++
		}
	}
	for ; z <= groups; z++ {
		bounds[z] = int32(len(keys))
	}
	return bounds
}

// Len returns the number of elements.
func (l *RanGroupList) Len() int { return len(l.data.elems) }

// Family returns the list's hash family.
func (l *RanGroupList) Family() *Family { return l.fam }

// T returns the partition resolution t.
func (l *RanGroupList) T() uint { return l.t }

// SizeWords returns the structure's footprint in 64-bit machine words.
func (l *RanGroupList) SizeWords() int {
	n := len(l.data.elems)
	// elems + keys (uint32), hvals (uint8), next (int32), plus the layer.
	return n/2 + n/2 + n/8 + n/2 + l.layer.sizeWords64()
}

// IntersectRanGroup computes the intersection of k ≥ 1 lists with
// Algorithm 4: iterate the groups z_k of the largest set; for each, the
// group identifiers of the other sets are the t_i-prefixes of z_k; the
// word images are ANDed with memoized prefixes (§A.3), empty prefixes skip
// whole subtrees of z_k values, and surviving combinations run the
// k-group IntersectSmall. The result is in permutation order, not sorted.
func IntersectRanGroup(lists ...*RanGroupList) []uint32 {
	return IntersectRanGroupInto(nil, nil, lists...)
}

// IntersectRanGroupInto is IntersectRanGroup appending into dst, with all
// per-call workspace drawn from sc (nil for a private one).
func IntersectRanGroupInto(dst []uint32, sc *Scratch, lists ...*RanGroupList) []uint32 {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0].data.elems...)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	// Order by size ascending; t is monotone in n so t_k is the maximum.
	sc.rg = scratchSlice(sc.rg, len(lists))
	ordered := sc.rg
	copy(ordered, lists)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Len() < ordered[j-1].Len(); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	defer clear(ordered) // do not retain operands in the pooled Scratch
	k := len(ordered)
	for _, l := range ordered {
		if !SameFamily(l.fam, ordered[0].fam) {
			panic("core: intersecting lists from different families")
		}
		if l.Len() == 0 {
			return dst
		}
	}
	sc.datas = scratchSlice(sc.datas, k)
	sc.layers = scratchSlice(sc.layers, k)
	sc.ts = scratchSlice(sc.ts, k)
	datas, layers, ts := sc.datas, sc.layers, sc.ts
	defer clear(datas)
	defer clear(layers)
	for i, l := range ordered {
		datas[i] = &l.data
		layers[i] = l.layer
		ts[i] = l.t
	}
	tk := ts[k-1]
	sc.partial = scratchSlice(sc.partial, k)
	sc.prevZ = scratchSlice(sc.prevZ, k)
	sc.zs = scratchSlice(sc.zs, k)
	partial, prevZ, zs := sc.partial, sc.prevZ, sc.zs
	for i := range prevZ {
		prevZ[i] = -1
	}
	zkMax := int32(1) << tk
zkLoop:
	for zk := int32(0); zk < zkMax; zk++ {
		// Find the first level whose group identifier changed.
		rebuild := -1
		for i := 0; i < k; i++ {
			zi := zk >> (tk - ts[i])
			if zi != prevZ[i] {
				rebuild = i
				break
			}
		}
		if rebuild < 0 {
			// Only possible if all t_i == t_k and zk repeated — cannot
			// happen; defensive skip.
			continue
		}
		for i := rebuild; i < k; i++ {
			zi := zk >> (tk - ts[i])
			prevZ[i] = zi
			zs[i] = zi
			w := layers[i].word(zi)
			if i > 0 {
				w = w.And(partial[i-1])
			}
			partial[i] = w
			if w.Empty() {
				// Every zk sharing this t_i-prefix yields an empty AND:
				// jump to the next prefix (the loop's zk++ lands there).
				zk = (zi+1)<<(tk-ts[i]) - 1
				// Invalidate deeper levels so they rebuild after the jump.
				for j := i + 1; j < k; j++ {
					prevZ[j] = -1
				}
				continue zkLoop
			}
		}
		dst = intersectSmallK(dst, datas, layers, zs, partial[k-1])
	}
	return dst
}
