package core

import (
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

const testSeed = 0xD1D5

// sortedCopy sorts a result (the randomized algorithms emit permutation
// order) for comparison against the reference.
func sortedCopy(s []uint32) []uint32 {
	out := append([]uint32(nil), s...)
	sets.SortU32(out)
	return out
}

// paperExampleSets are L1 and L2 from Example 3.1.
func paperExampleSets() ([]uint32, []uint32) {
	l1 := []uint32{1001, 1002, 1004, 1009, 1016, 1027, 1043}
	l2 := []uint32{1001, 1003, 1005, 1009, 1011, 1016, 1022, 1032, 1034, 1049}
	return l1, l2
}

func TestIntGroupPaperExample(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	l1, l2 := paperExampleSets()
	a, err := NewIntGroupList(fam, l1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIntGroupList(fam, l2, false)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedCopy(IntersectIntGroup(a, b))
	want := []uint32{1001, 1009, 1016}
	if !sets.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestPreprocessRejectsInvalidInput(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	bad := []uint32{3, 1, 2}
	if _, err := NewIntGroupList(fam, bad, false); err == nil {
		t.Fatal("IntGroup accepted unsorted input")
	}
	if _, err := NewRanGroupList(fam, bad); err == nil {
		t.Fatal("RanGroup accepted unsorted input")
	}
	if _, err := NewRanGroupScanList(fam, bad, 2); err == nil {
		t.Fatal("RanGroupScan accepted unsorted input")
	}
	if _, err := NewHashBinList(fam, bad); err == nil {
		t.Fatal("HashBin accepted unsorted input")
	}
	dup := []uint32{1, 1}
	if _, err := NewIntGroupList(fam, dup, false); err == nil {
		t.Fatal("IntGroup accepted duplicates")
	}
}

func TestRanGroupScanRejectsBadM(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	if _, err := NewRanGroupScanList(fam, []uint32{1}, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := NewRanGroupScanList(fam, []uint32{1}, 3); err == nil {
		t.Fatal("m beyond family accepted")
	}
}

func TestTForSize(t *testing.T) {
	cases := map[int]uint{0: 0, 1: 0, 8: 0, 9: 1, 16: 1, 17: 2, 64: 3, 1024: 7}
	for n, want := range cases {
		if got := TForSize(n); got != want {
			t.Fatalf("TForSize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestOptimalWidth(t *testing.T) {
	// Equal sizes: s* = √w = 8.
	if got := optimalWidth(1000, 1000); got != 8 {
		t.Fatalf("equal sizes: width %d, want 8", got)
	}
	// n1 ≪ n2: narrow groups for the small set.
	if got := optimalWidth(100, 100_000); got > 2 {
		t.Fatalf("skewed small: width %d, want ≤ 2", got)
	}
	// n1 ≫ n2: wide groups, clamped to the set size scale.
	if got := optimalWidth(100_000, 100); got < 64 {
		t.Fatalf("skewed large: width %d, want ≥ 64", got)
	}
}

// buildAll preprocesses one sorted set for every core algorithm.
type allLists struct {
	ig  *IntGroupList
	rg  *RanGroupList
	rgs *RanGroupScanList
	hb  *HashBinList
}

func buildAll(t *testing.T, fam *Family, set []uint32, m int) allLists {
	t.Helper()
	ig, err := NewIntGroupList(fam, set, false)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewRanGroupList(fam, set)
	if err != nil {
		t.Fatal(err)
	}
	rgs, err := NewRanGroupScanList(fam, set, m)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHashBinList(fam, set)
	if err != nil {
		t.Fatal(err)
	}
	return allLists{ig: ig, rg: rg, rgs: rgs, hb: hb}
}

func TestCoreAlgorithmsFixedCases(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	cases := [][2][]uint32{
		{{}, {}},
		{{1}, {}},
		{{}, {1}},
		{{1}, {1}},
		{{1}, {2}},
		{{1, 2, 3}, {1, 2, 3}},
		{{1, 2, 3}, {4, 5, 6}},
		{{0, 4294967295}, {0, 4294967295}},
		{{1, 3, 5, 7, 9, 11, 13, 15, 17}, {2, 3, 6, 7, 10, 11, 14, 15, 18}},
	}
	for ci, c := range cases {
		a := buildAll(t, fam, c[0], 2)
		b := buildAll(t, fam, c[1], 2)
		want := sets.IntersectReference(c[0], c[1])
		check := func(name string, got []uint32) {
			if !sets.Equal(sortedCopy(got), want) {
				t.Fatalf("case %d %s: got %v, want %v", ci, name, got, want)
			}
		}
		check("IntGroup", IntersectIntGroup(a.ig, b.ig))
		check("RanGroup", IntersectRanGroup(a.rg, b.rg))
		check("RanGroupScan", IntersectRanGroupScan(a.rgs, b.rgs))
		check("HashBin", IntersectHashBin(a.hb, b.hb))
	}
}

func TestCoreAlgorithmsRandomizedPairs(t *testing.T) {
	rng := xhash.NewRNG(0xC04E)
	fam := NewFamily(testSeed, 2)
	for trial := 0; trial < 40; trial++ {
		universe := uint32(1 << (6 + rng.Intn(14)))
		n1 := rng.Intn(800) + 1
		n2 := rng.Intn(3000) + 1
		if uint32(n1) > universe/3 {
			n1 = int(universe / 3)
		}
		if uint32(n2) > universe/3 {
			n2 = int(universe / 3)
		}
		maxR := min(n1, n2)
		r := rng.Intn(maxR + 1)
		aSet, bSet := workload.PairWithIntersection(universe, n1, n2, r, rng)
		want := sets.IntersectReference(aSet, bSet)
		a := buildAll(t, fam, aSet, 2)
		b := buildAll(t, fam, bSet, 2)
		check := func(name string, got []uint32) {
			if !sets.Equal(sortedCopy(got), want) {
				t.Fatalf("trial %d %s (n1=%d n2=%d r=%d U=%d): got %d, want %d",
					trial, name, n1, n2, r, universe, len(got), len(want))
			}
		}
		check("IntGroup", IntersectIntGroup(a.ig, b.ig))
		check("RanGroup", IntersectRanGroup(a.rg, b.rg))
		check("RanGroupScan", IntersectRanGroupScan(a.rgs, b.rgs))
		check("HashBin", IntersectHashBin(a.hb, b.hb))
	}
}

func TestCoreAlgorithmsRandomizedKSets(t *testing.T) {
	rng := xhash.NewRNG(0xCAFE)
	fam := NewFamily(testSeed, 2)
	for trial := 0; trial < 25; trial++ {
		k := 2 + rng.Intn(4)
		ns := make([]int, k)
		for i := range ns {
			ns[i] = 1 + rng.Intn(700)
		}
		lists := workload.RandomSets(1<<14, ns, rng)
		want := sets.IntersectReference(lists...)
		rgs := make([]*RanGroupScanList, k)
		rg := make([]*RanGroupList, k)
		hb := make([]*HashBinList, k)
		for i, l := range lists {
			all := buildAll(t, fam, l, 2)
			rgs[i] = all.rgs
			rg[i] = all.rg
			hb[i] = all.hb
		}
		if got := sortedCopy(IntersectRanGroup(rg...)); !sets.Equal(got, want) {
			t.Fatalf("trial %d RanGroup k=%d: got %d, want %d", trial, k, len(got), len(want))
		}
		if got := sortedCopy(IntersectRanGroupScan(rgs...)); !sets.Equal(got, want) {
			t.Fatalf("trial %d RanGroupScan k=%d: got %d, want %d", trial, k, len(got), len(want))
		}
		if got := sortedCopy(IntersectHashBin(hb...)); !sets.Equal(got, want) {
			t.Fatalf("trial %d HashBin k=%d: got %d, want %d", trial, k, len(got), len(want))
		}
	}
}

func TestIntGroupOptimalWidths(t *testing.T) {
	rng := xhash.NewRNG(0xF00D)
	fam := NewFamily(testSeed, 2)
	for trial := 0; trial < 10; trial++ {
		n1 := 50 + rng.Intn(200)
		n2 := 2000 + rng.Intn(4000)
		r := rng.Intn(n1)
		aSet, bSet := workload.PairWithIntersection(1<<20, n1, n2, r, rng)
		a, err := NewIntGroupList(fam, aSet, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewIntGroupList(fam, bSet, true)
		if err != nil {
			t.Fatal(err)
		}
		want := sets.IntersectReference(aSet, bSet)
		if got := sortedCopy(IntersectIntGroupOptimal(a, b)); !sets.Equal(got, want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		// Symmetric call must agree.
		if got := sortedCopy(IntersectIntGroupOptimal(b, a)); !sets.Equal(got, want) {
			t.Fatalf("trial %d (swapped): got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestSingleListIntersections(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	set := []uint32{5, 10, 20}
	all := buildAll(t, fam, set, 2)
	if got := sortedCopy(IntersectRanGroup(all.rg)); !sets.Equal(got, set) {
		t.Fatalf("RanGroup single = %v", got)
	}
	if got := sortedCopy(IntersectRanGroupScan(all.rgs)); !sets.Equal(got, set) {
		t.Fatalf("RanGroupScan single = %v", got)
	}
	if got := sortedCopy(IntersectHashBin(all.hb)); !sets.Equal(got, set) {
		t.Fatalf("HashBin single = %v", got)
	}
	if got := IntersectRanGroup(); got != nil {
		t.Fatalf("no lists = %v", got)
	}
}

func TestFamilyMismatchPanics(t *testing.T) {
	f1 := NewFamily(1, 2)
	f2 := NewFamily(2, 2)
	a, _ := NewRanGroupScanList(f1, []uint32{1, 2, 3}, 2)
	b, _ := NewRanGroupScanList(f2, []uint32{2, 3, 4}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("family mismatch did not panic")
		}
	}()
	IntersectRanGroupScan(a, b)
}

func TestSameFamilyBySeed(t *testing.T) {
	f1 := NewFamily(7, 2)
	f2 := NewFamily(7, 4)
	if !SameFamily(f1, f2) {
		t.Fatal("families with same seed not recognized")
	}
	if f1.M() != 2 || f2.M() != 4 {
		t.Fatal("M() wrong")
	}
	if f1.Seed() != 7 {
		t.Fatal("Seed() wrong")
	}
}

func TestFilterStatsSanity(t *testing.T) {
	rng := xhash.NewRNG(0xF117E4)
	fam4 := NewFamily(testSeed, 4)
	aSet, bSet := workload.PairWithIntersection(1<<22, 20_000, 20_000, 200, rng)
	want := sets.IntersectReference(aSet, bSet)
	for _, m := range []int{1, 2, 4} {
		a, err := NewRanGroupScanList(fam4, aSet, m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewRanGroupScanList(fam4, bSet, m)
		if err != nil {
			t.Fatal(err)
		}
		got, st := IntersectRanGroupScanStats(a, b)
		if !sets.Equal(sortedCopy(got), want) {
			t.Fatalf("m=%d: stats-mode result wrong: %d vs %d", m, len(got), len(want))
		}
		if st.EmptyCombos == 0 {
			t.Fatalf("m=%d: no empty combos measured", m)
		}
		p := st.SuccessProbability()
		if p <= 0 || p > 1 {
			t.Fatalf("m=%d: probability %v out of range", m, p)
		}
		// Lemma A.1 gives ≈0.34 as a floor for m=1 on √w groups; in
		// practice it is much higher. Be lenient but meaningful.
		if p < 0.3 {
			t.Fatalf("m=%d: filtering probability %v implausibly low", m, p)
		}
	}
}

func TestFilterProbabilityIncreasesWithM(t *testing.T) {
	rng := xhash.NewRNG(0xF117E5)
	fam := NewFamily(testSeed, 8)
	aSet, bSet := workload.PairWithIntersection(1<<22, 30_000, 30_000, 300, rng)
	prev := 0.0
	for _, m := range []int{1, 2, 4, 8} {
		a, _ := NewRanGroupScanList(fam, aSet, m)
		b, _ := NewRanGroupScanList(fam, bSet, m)
		_, st := IntersectRanGroupScanStats(a, b)
		p := st.SuccessProbability()
		if p+0.02 < prev { // small tolerance: measured probabilities
			t.Fatalf("probability decreased from %v to %v at m=%d", prev, p, m)
		}
		prev = p
	}
	if prev < 0.9 {
		t.Fatalf("m=8 probability %v, want near 1", prev)
	}
}

func TestSizeAccountingMonotone(t *testing.T) {
	fam := NewFamily(testSeed, 4)
	rng := xhash.NewRNG(0x512E)
	set := workload.RandomSets(1<<22, []int{50_000}, rng)[0]
	n64 := len(set) / 2 // the raw posting list in 64-bit words
	ig, _ := NewIntGroupList(fam, set, false)
	rg, _ := NewRanGroupList(fam, set)
	hb, _ := NewHashBinList(fam, set)
	rgs2, _ := NewRanGroupScanList(fam, set, 2)
	rgs4, _ := NewRanGroupScanList(fam, set, 4)
	for name, sz := range map[string]int{
		"IntGroup": ig.SizeWords(), "RanGroup": rg.SizeWords(),
		"HashBin": hb.SizeWords(), "RGS2": rgs2.SizeWords(), "RGS4": rgs4.SizeWords(),
	} {
		if sz <= 0 {
			t.Fatalf("%s: non-positive size", name)
		}
		if sz < n64 {
			t.Fatalf("%s: size %d below raw posting size %d", name, sz, n64)
		}
	}
	if rgs4.SizeWords() <= rgs2.SizeWords() {
		t.Fatal("m=4 structure not larger than m=2")
	}
	// RanGroupScan stays within a small constant of the raw postings
	// (paper: +37% for m=2 counting postings as full words).
	if rgs2.SizeWords() > 3*n64 {
		t.Fatalf("RGS m=2 size %d too large vs %d", rgs2.SizeWords(), n64)
	}
}

func TestRadixSortPairs(t *testing.T) {
	rng := xhash.NewRNG(0x5047)
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(2000)
		keys := make([]uint32, n)
		vals := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32()
			vals[i] = keys[i] ^ 0xDEADBEEF // recoverable pairing
		}
		RadixSortPairs(keys, vals)
		for i := 1; i < n; i++ {
			if keys[i-1] > keys[i] {
				t.Fatalf("keys not sorted at %d", i)
			}
		}
		for i := range keys {
			if vals[i] != keys[i]^0xDEADBEEF {
				t.Fatalf("pairing broken at %d", i)
			}
		}
	}
}

func TestPrefixBounds(t *testing.T) {
	keys := []uint32{0x00000001, 0x3FFFFFFF, 0x40000000, 0x80000000, 0xC0000001, 0xFFFFFFFF}
	b := prefixBounds(keys, 2)
	want := []int32{0, 2, 3, 4, 6}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds[%d] = %d, want %d (all %v)", i, b[i], want[i], b)
		}
	}
	// t = 0: single group covering everything.
	b0 := prefixBounds(keys, 0)
	if b0[0] != 0 || b0[1] != 6 {
		t.Fatalf("t=0 bounds = %v", b0)
	}
	// Empty input.
	be := prefixBounds(nil, 3)
	for _, v := range be {
		if v != 0 {
			t.Fatalf("empty bounds = %v", be)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkCorePair1M(b *testing.B) {
	rng := xhash.NewRNG(0xBE4C)
	fam := NewFamily(testSeed, 2)
	aSet, bSet := workload.PairWithIntersection(workload.DefaultUniverse, 1_000_000, 1_000_000, 10_000, rng)
	ig1, _ := NewIntGroupList(fam, aSet, false)
	ig2, _ := NewIntGroupList(fam, bSet, false)
	rg1, _ := NewRanGroupList(fam, aSet)
	rg2, _ := NewRanGroupList(fam, bSet)
	rgs1, _ := NewRanGroupScanList(fam, aSet, 2)
	rgs2, _ := NewRanGroupScanList(fam, bSet, 2)
	hb1, _ := NewHashBinList(fam, aSet)
	hb2, _ := NewHashBinList(fam, bSet)
	b.Run("IntGroup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectIntGroup(ig1, ig2)
		}
	})
	b.Run("RanGroup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectRanGroup(rg1, rg2)
		}
	})
	b.Run("RanGroupScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectRanGroupScan(rgs1, rgs2)
		}
	})
	b.Run("HashBin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectHashBin(hb1, hb2)
		}
	})
}
