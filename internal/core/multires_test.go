package core

import (
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func TestRanGroupPairOptimalCorrect(t *testing.T) {
	rng := xhash.NewRNG(0x3535)
	fam := NewFamily(testSeed, 2)
	for trial := 0; trial < 15; trial++ {
		n1 := 1 + rng.Intn(500)
		n2 := 1 + rng.Intn(5000)
		maxR := min(n1, n2)
		aSet, bSet := workload.PairWithIntersection(1<<20, n1, n2, rng.Intn(maxR+1), rng)
		a, err := NewRanGroupMulti(fam, aSet)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewRanGroupMulti(fam, bSet)
		if err != nil {
			t.Fatal(err)
		}
		want := sets.IntersectReference(aSet, bSet)
		got := sortedCopy(IntersectRanGroupPairOptimal(a, b))
		if !sets.Equal(got, want) {
			t.Fatalf("trial %d (n1=%d n2=%d): got %d, want %d", trial, n1, n2, len(got), len(want))
		}
		// Symmetry.
		got = sortedCopy(IntersectRanGroupPairOptimal(b, a))
		if !sets.Equal(got, want) {
			t.Fatalf("trial %d swapped: got %d, want %d", trial, n1, n2)
		}
	}
}

func TestRanGroupMultiRejectsInvalid(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	if _, err := NewRanGroupMulti(fam, []uint32{2, 1}); err == nil {
		t.Fatal("unsorted accepted")
	}
	if _, err := NewRanGroupMulti(fam, []uint32{1, 1}); err == nil {
		t.Fatal("duplicates accepted")
	}
}

func TestOptimalPairT(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	rng := xhash.NewRNG(0x3536)
	// Equal 4096-element sets: √(n²/w) = n/8 = 512 groups → t = 9.
	aSet, bSet := workload.PairWithIntersection(1<<22, 4096, 4096, 64, rng)
	a, _ := NewRanGroupMulti(fam, aSet)
	b, _ := NewRanGroupMulti(fam, bSet)
	if got := optimalPairT(a, b); got != 9 {
		t.Fatalf("equal-size t = %d, want 9", got)
	}
	// Strongly skewed: Theorem 3.5 asks for √(64·65536/64) = 256 groups
	// (t = 8), but the multi-resolution structure only stores resolutions
	// up to ⌈log n⌉ per set (its O(n)-space guarantee), so t clamps to the
	// smaller set's ⌈log 64⌉ = 6.
	cSet, dSet := workload.PairWithIntersection(1<<22, 64, 65536, 16, rng)
	c, _ := NewRanGroupMulti(fam, cSet)
	d, _ := NewRanGroupMulti(fam, dSet)
	if tc := optimalPairT(c, d); tc != 6 {
		t.Fatalf("skewed t = %d, want 6 (clamped)", tc)
	}
}

func TestRanGroupMultiLayerCount(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	rng := xhash.NewRNG(0x3537)
	set := workload.RandomSets(1<<20, []int{1000}, rng)[0]
	l, _ := NewRanGroupMulti(fam, set)
	if l.MaxT() != 10 { // ceil(log2(1000)) = 10
		t.Fatalf("MaxT = %d, want 10", l.MaxT())
	}
	if l.SizeWords() <= 0 {
		t.Fatal("non-positive size")
	}
	// Every layer must cover the whole set.
	for ti, ly := range l.layers {
		covered := int32(0)
		for z := int32(0); z < ly.groups; z++ {
			lo, hi := ly.groupRange(z)
			covered += hi - lo
		}
		if covered != int32(l.Len()) {
			t.Fatalf("resolution %d covers %d of %d", ti, covered, l.Len())
		}
	}
}

func TestRanGroupMultiEmpty(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	e, err := NewRanGroupMulti(fam, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := NewRanGroupMulti(fam, []uint32{1})
	if got := IntersectRanGroupPairOptimal(e, o); len(got) != 0 {
		t.Fatalf("empty intersection = %v", got)
	}
}
