package core

import (
	"math/bits"

	"fastintersect/internal/bitword"
	"fastintersect/internal/xhash"
)

// Cost hooks for the query planner's micro-calibration (internal/plan).
//
// The planner's cost model prices each kernel as coefficient × work, where
// the coefficients are the per-element ns of the primitive operations the
// kernels are built from: a sequential scan step (Merge and the grouped
// scans), a binary-search probe step (SvS galloping, HashBin's per-bin
// search), a hash application (HashBin's permutation, RanGroupScan's image
// hashes) and a word-image filter test (Algorithm 5's group rejection).
// These functions expose exactly those inner loops so the calibration times
// the real operations rather than guesses; each returns a value derived
// from its inputs so the loops cannot be optimized away.

// ScanStep runs one linear pass over data — the inner loop of Merge and of
// the grouped scans — and returns the running XOR.
func ScanStep(data []uint32) uint32 {
	var acc uint32
	for _, x := range data {
		acc ^= x
	}
	return acc
}

// ProbeStep binary-searches hay (sorted ascending) for every needle — the
// inner loop of SvS galloping and of HashBin's per-bin search — and returns
// the number found.
func ProbeStep(hay, needles []uint32) int {
	found := 0
	for _, x := range needles {
		lo, hi := 0, len(hay)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if hay[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(hay) && hay[lo] == x {
			found++
		}
	}
	return found
}

// HashStep applies the family's permutation and first image hash to every
// element — the per-element hashing of HashBin and RanGroupScan — and
// returns the running XOR of the images.
func (f *Family) HashStep(data []uint32) uint32 {
	h := f.Images[0]
	var acc uint32
	for _, x := range data {
		acc ^= f.Perm.Apply(x) ^ uint32(h.Hash(x))
	}
	return acc
}

// FilterStep runs the word-image containment test of Algorithm 5 over every
// element — the group-rejection filter of RanGroupScan and the stored
// Lowbits probes — and returns how many pass.
func (f *Family) FilterStep(img bitword.Word, data []uint32) int {
	h := f.Images[0]
	pass := 0
	for _, x := range data {
		if img.Contains(uint(h.Hash(x))) {
			pass++
		}
	}
	return pass
}

// GapStep mimics one gap-code bucket decode per element — a leading-bit
// scan, two shifts and the running prefix sum that rebuilds absolute IDs
// from gaps (the inner loop of the γ/δ stored-list decoders) — and returns
// the running XOR.
func GapStep(gaps []uint32) uint32 {
	var acc, x uint32
	for _, g := range gaps {
		n := uint32(bits.Len32(g | 1))
		x += (g << 1 >> 1) + n
		acc ^= x
	}
	return acc
}

// CalibrationImage builds a half-full word image over a sample of data's
// hashes — the filter word FilterStep tests against, at a density where
// both branch outcomes occur.
func CalibrationImage(f *Family, data []uint32) bitword.Word {
	var img bitword.Word
	h := f.Images[0]
	for i := 0; i < len(data) && i < bitword.W/2; i++ {
		img = img.Add(uint(h.Hash(data[i])))
	}
	return img
}

// CalibrationSet returns n distinct ascending values spread over a sparse
// range — the shape the kernels see in posting lists.
func CalibrationSet(n int) []uint32 {
	return CalibrationSetSeeded(0xCA11_DA7A, n)
}

// CalibrationSetSeeded is CalibrationSet with a caller-chosen seed, so a
// calibration pass can derive several overlapping-but-distinct sets.
func CalibrationSetSeeded(seed uint64, n int) []uint32 {
	dst := make([]uint32, n)
	x := uint32(0)
	rng := xhash.NewRNG(seed)
	for i := range dst {
		x += 1 + rng.Uint32()%16
		dst[i] = x
	}
	return dst
}
