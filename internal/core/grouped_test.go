package core

import (
	"testing"
	"testing/quick"

	"fastintersect/internal/bitword"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// TestPackedBitsRoundtrip covers the packed first-table primitives.
func TestPackedBitsRoundtrip(t *testing.T) {
	f := func(vals []uint16, width8 uint8) bool {
		width := width8%16 + 1
		a := make([]uint64, (len(vals)*int(width)+127)/64)
		var want []uint32
		for i, v := range vals {
			val := uint32(v) & (1<<width - 1)
			writePacked(a, uint64(i)*uint64(width), width, val)
			want = append(want, val)
		}
		for i, w := range want {
			if readPacked(a, uint64(i)*uint64(width), width) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClearPacked(t *testing.T) {
	a := make([]uint64, 4)
	// Straddle a word boundary: offset 60, width 9.
	writePacked(a, 60, 9, 0x1FF)
	if got := readPacked(a, 60, 9); got != 0x1FF {
		t.Fatalf("cross-word write = %x", got)
	}
	clearPacked(a, 60, 9)
	if got := readPacked(a, 60, 9); got != 0 {
		t.Fatalf("cross-word clear = %x", got)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int32]uint8{0: 1, 1: 2, 2: 2, 3: 3, 7: 4, 8: 4, 255: 9}
	for v, want := range cases {
		if got := bitsFor(v); got != want {
			t.Fatalf("bitsFor(%d) = %d, want %d", v, got, want)
		}
		// The sentinel must be distinguishable from every storable value.
		if uint32(v) >= sentinel(bitsFor(v)) {
			t.Fatalf("sentinel collision for %d", v)
		}
	}
}

// TestLayerInvariants checks the paper's structural invariants on the
// fixed-width and randomized layers: groups cover the set disjointly, every
// group's word image is exactly the hash image of its elements, and the
// first/next chains enumerate exactly h⁻¹(y, L^z) in stored order.
func TestLayerInvariants(t *testing.T) {
	rng := xhash.NewRNG(0x14E4)
	fam := NewFamily(testSeed, 2)
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(3000)
		set := workload.RandomSets(1<<20, []int{n}, rng)[0]

		// Fixed-width layers (IntGroup).
		ig, err := NewIntGroupList(fam, set, true)
		if err != nil {
			t.Fatal(err)
		}
		for width, ly := range ig.layers {
			checkLayer(t, &ig.data, ly, int(width))
		}

		// Randomized layer (RanGroup).
		rg, err := NewRanGroupList(fam, set)
		if err != nil {
			t.Fatal(err)
		}
		checkLayer(t, &rg.data, rg.layer, 0)
	}
}

func checkLayer(t *testing.T, d *setData, ly *layer, width int) {
	t.Helper()
	n := int32(len(d.elems))
	covered := int32(0)
	for z := int32(0); z < ly.groups; z++ {
		lo, hi := ly.groupRange(z)
		if lo > hi || lo < 0 || hi > n {
			t.Fatalf("width %d group %d: bad range [%d,%d)", width, z, lo, hi)
		}
		if ly.bounds == nil && z < ly.groups-1 && hi-lo != int32(width) {
			t.Fatalf("width %d: interior group %d has size %d", width, z, hi-lo)
		}
		covered += hi - lo
		// Word image = exact hash image.
		var want bitword.Word
		for i := lo; i < hi; i++ {
			want = want.Add(uint(d.hvals[i]))
		}
		if ly.word(z) != want {
			t.Fatalf("width %d group %d: word image mismatch", width, z)
		}
		// Chains: for every y, walking first/next enumerates exactly the
		// group's elements with h = y, in order.
		for y := uint(0); y < bitword.W; y++ {
			var want []int32
			for i := lo; i < hi; i++ {
				if uint(d.hvals[i]) == y {
					want = append(want, i)
				}
			}
			i := ly.firstIdx(z, y)
			var got []int32
			for i >= 0 && i < hi {
				got = append(got, i)
				i = d.next[i]
			}
			if len(got) != len(want) {
				t.Fatalf("width %d group %d y=%d: chain %v want %v", width, z, y, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("width %d group %d y=%d: chain %v want %v", width, z, y, got, want)
				}
			}
		}
	}
	if covered != n {
		t.Fatalf("width %d: groups cover %d of %d elements", width, covered, n)
	}
}

// TestNextChains verifies the global next(x) definition: the next position
// to the right with the same hash value.
func TestNextChains(t *testing.T) {
	rng := xhash.NewRNG(0x4E37)
	fam := NewFamily(testSeed, 2)
	set := workload.RandomSets(1<<18, []int{2000}, rng)[0]
	rg, _ := NewRanGroupList(fam, set)
	d := &rg.data
	for i := range d.elems {
		nx := d.next[i]
		for j := i + 1; j < len(d.elems); j++ {
			if d.hvals[j] == d.hvals[i] {
				if nx != int32(j) {
					t.Fatalf("next[%d] = %d, want %d", i, nx, j)
				}
				break
			}
			if int32(j) == nx {
				t.Fatalf("next[%d] = %d but hvals differ", i, nx)
			}
		}
	}
}

// TestRanGroupScanGroupsValueSorted checks the within-group ordering the
// fallback merge depends on.
func TestRanGroupScanGroupsValueSorted(t *testing.T) {
	rng := xhash.NewRNG(0x9051)
	fam := NewFamily(testSeed, 2)
	set := workload.RandomSets(1<<20, []int{5000}, rng)[0]
	l, _ := NewRanGroupScanList(fam, set, 2)
	total := 0
	for z := int32(0); z < int32(1)<<l.t; z++ {
		grp := l.group(z)
		total += len(grp)
		for i := 1; i < len(grp); i++ {
			if grp[i-1] >= grp[i] {
				t.Fatalf("group %d not strictly increasing", z)
			}
		}
	}
	if total != len(set) {
		t.Fatalf("groups cover %d of %d", total, len(set))
	}
}

// TestRanGroupScanWordsMatchGroups checks every stored image word against a
// recomputation from the group's elements.
func TestRanGroupScanWordsMatchGroups(t *testing.T) {
	rng := xhash.NewRNG(0x9052)
	fam := NewFamily(testSeed, 4)
	set := workload.RandomSets(1<<20, []int{3000}, rng)[0]
	l, _ := NewRanGroupScanList(fam, set, 4)
	for z := int32(0); z < int32(1)<<l.t; z++ {
		grp := l.group(z)
		for j := 0; j < 4; j++ {
			var want bitword.Word
			for _, x := range grp {
				want = want.Add(uint(fam.Images[j].Hash(x)))
			}
			if l.word(int32(j), z) != want {
				t.Fatalf("group %d image %d mismatch", z, j)
			}
		}
	}
}
