package core

import (
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// TestIntoVariantsMatchWithSharedScratch runs every kernel's Into form over
// varied shapes through ONE reused Scratch — the pooled-context usage
// pattern — and checks parity with the allocating form plus dst-prefix
// preservation. Reuse across k-widths and kernels is the interesting part:
// a Scratch sized by a 4-way intersection must still be correct for a
// 2-way one (stale state from the previous call must not leak).
func TestIntoVariantsMatchWithSharedScratch(t *testing.T) {
	fam := NewFamily(testSeed, 4)
	rng := xhash.NewRNG(0x5C4A7C4)
	sc := &Scratch{}
	shapes := [][]int{{300, 400}, {100, 200, 300, 5000}, {50, 6000}, {700, 700, 700}}
	for trial := 0; trial < 3; trial++ {
		for _, ns := range shapes {
			raw := workload.KWithIntersection(1<<20, ns, 10, rng)
			prefix := []uint32{1<<32 - 1, 0}

			var rgs []*RanGroupScanList
			for _, s := range raw {
				l, err := NewRanGroupScanList(fam, s, 3)
				if err != nil {
					t.Fatal(err)
				}
				rgs = append(rgs, l)
			}
			want := IntersectRanGroupScan(rgs...)
			got := IntersectRanGroupScanInto(sets.Clone(prefix), sc, rgs...)
			if !sets.Equal(got[:2], prefix) || !sets.Equal(got[2:], want) {
				t.Fatalf("RanGroupScanInto mismatch on %v", ns)
			}

			var rg []*RanGroupList
			for _, s := range raw {
				l, err := NewRanGroupList(fam, s)
				if err != nil {
					t.Fatal(err)
				}
				rg = append(rg, l)
			}
			want = IntersectRanGroup(rg...)
			got = IntersectRanGroupInto(sets.Clone(prefix), sc, rg...)
			if !sets.Equal(got[:2], prefix) || !sets.Equal(got[2:], want) {
				t.Fatalf("RanGroupInto mismatch on %v", ns)
			}

			var hb []*HashBinList
			for _, s := range raw {
				l, err := NewHashBinList(fam, s)
				if err != nil {
					t.Fatal(err)
				}
				hb = append(hb, l)
			}
			want = IntersectHashBin(hb...)
			got = IntersectHashBinInto(sets.Clone(prefix), sc, hb...)
			if !sets.Equal(got[:2], prefix) || !sets.Equal(got[2:], want) {
				t.Fatalf("HashBinInto mismatch on %v", ns)
			}
		}
	}
}

// TestKernelIntoAllocs pins the kernel-layer zero-allocation guarantee
// directly (no pools involved): with a warm Scratch and sufficient dst
// capacity, every grouped kernel's Into form allocates nothing.
func TestKernelIntoAllocs(t *testing.T) {
	fam := NewFamily(testSeed, 4)
	rng := xhash.NewRNG(0xA110C3)
	raw := workload.KWithIntersection(1<<20, []int{2000, 3000, 4000}, 50, rng)
	sc := &Scratch{}
	dst := make([]uint32, 0, 4096)

	var rgs []*RanGroupScanList
	var rg []*RanGroupList
	var hb []*HashBinList
	for _, s := range raw {
		l1, err := NewRanGroupScanList(fam, s, 3)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := NewRanGroupList(fam, s)
		if err != nil {
			t.Fatal(err)
		}
		l3, err := NewHashBinList(fam, s)
		if err != nil {
			t.Fatal(err)
		}
		rgs, rg, hb = append(rgs, l1), append(rg, l2), append(hb, l3)
	}
	warm := func(f func()) float64 {
		for i := 0; i < 3; i++ {
			f()
		}
		return testing.AllocsPerRun(100, f)
	}
	if n := warm(func() { IntersectRanGroupScanInto(dst[:0], sc, rgs...) }); n != 0 {
		t.Fatalf("IntersectRanGroupScanInto allocates %.1f times per op, want 0", n)
	}
	if n := warm(func() { IntersectRanGroupInto(dst[:0], sc, rg...) }); n != 0 {
		t.Fatalf("IntersectRanGroupInto allocates %.1f times per op, want 0", n)
	}
	if n := warm(func() { IntersectHashBinInto(dst[:0], sc, hb...) }); n != 0 {
		t.Fatalf("IntersectHashBinInto allocates %.1f times per op, want 0", n)
	}
}

// TestIntoVariantsReleaseOperands checks that the kernels nil out the
// operand pointers they copied into the Scratch, so a pooled context never
// pins a dead index generation.
func TestIntoVariantsReleaseOperands(t *testing.T) {
	fam := NewFamily(testSeed, 2)
	rng := xhash.NewRNG(9)
	raw := workload.KWithIntersection(1<<16, []int{200, 300, 400}, 5, rng)
	sc := &Scratch{}
	var rgs []*RanGroupScanList
	for _, s := range raw {
		l, err := NewRanGroupScanList(fam, s, 2)
		if err != nil {
			t.Fatal(err)
		}
		rgs = append(rgs, l)
	}
	IntersectRanGroupScanInto(nil, sc, rgs...)
	for i, p := range sc.rgs {
		if p != nil {
			t.Fatalf("Scratch retains RanGroupScan operand %d after the call", i)
		}
	}
}
