package core

import (
	"fastintersect/internal/bitword"
)

// setData is the per-set element storage shared by IntGroup and RanGroup:
// the elements in their stored order (by value for fixed-width partitions,
// by g(x) for randomized ones), the merge keys in the same order, the hash
// values h(x), and the paper's next(x) pointers — for each position i, the
// next position j > i with h equal to h(x_i), or len(elems) if none. The
// chains realize the inverted mappings h⁻¹(y, L^z) of §3.1/§3.2.1: start at
// first(y, L^z) and follow next until leaving the group.
type setData struct {
	elems []uint32
	keys  []uint32 // == elems for value order; g(x) for permutation order
	hvals []uint8
	next  []int32
}

// buildNext fills d.next by a right-to-left scan with a last-seen table.
func (d *setData) buildNext() {
	n := len(d.elems)
	d.next = make([]int32, n)
	var last [bitword.W]int32
	for y := range last {
		last[y] = int32(n)
	}
	for i := n - 1; i >= 0; i-- {
		y := d.hvals[i]
		d.next[i] = last[y]
		last[y] = int32(i)
	}
}

// layer is one partitioning resolution over a setData: the group boundaries,
// the single-word hash image w(h(L^z)) per group, and the packed
// first(y, L^z) table. Fixed-width layers use an implicit uniform width;
// randomized layers carry an explicit dense bounds array indexed by the
// group identifier z.
type layer struct {
	width  int32   // > 0 for fixed-width layers
	bounds []int32 // len = numGroups+1 for randomized layers; nil otherwise
	n      int32   // number of elements
	groups int32
	words  []bitword.Word
	// first is the packed first(y, L^z) table: for each group z and each
	// y ∈ [w], fbits bits storing the offset of the first element of the
	// group with h = y relative to the group start; the all-ones value is
	// the "absent" sentinel. Total size O(groups · w · fbits) bits = O(n)
	// words across resolutions, as in Theorem 3.8.
	first []uint64
	fbits uint8
}

// groupRange returns the element index range [lo, hi) of group z.
func (l *layer) groupRange(z int32) (lo, hi int32) {
	if l.bounds != nil {
		return l.bounds[z], l.bounds[z+1]
	}
	lo = z * l.width
	hi = lo + l.width
	if hi > l.n {
		hi = l.n
	}
	return lo, hi
}

// word returns the group's hash image.
func (l *layer) word(z int32) bitword.Word { return l.words[z] }

// firstIdx returns the absolute index of the first element of group z with
// h = y, or -1 if the group has none.
func (l *layer) firstIdx(z int32, y uint) int32 {
	bitOff := (uint64(z)*bitword.W + uint64(y)) * uint64(l.fbits)
	rel := readPacked(l.first, bitOff, l.fbits)
	if rel == sentinel(l.fbits) {
		return -1
	}
	lo, _ := l.groupRange(z)
	return lo + int32(rel)
}

// sentinel is the packed "no element" marker: all fbits ones.
func sentinel(fbits uint8) uint32 { return 1<<fbits - 1 }

// readPacked extracts width bits at bit offset off from a packed array.
func readPacked(a []uint64, off uint64, width uint8) uint32 {
	wi := off >> 6
	sh := off & 63
	v := a[wi] >> sh
	if sh+uint64(width) > 64 {
		v |= a[wi+1] << (64 - sh)
	}
	return uint32(v) & (1<<width - 1)
}

// writePacked stores width bits of v at bit offset off.
func writePacked(a []uint64, off uint64, width uint8, v uint32) {
	wi := off >> 6
	sh := off & 63
	a[wi] |= uint64(v) << sh
	if sh+uint64(width) > 64 {
		a[wi+1] |= uint64(v) >> (64 - sh)
	}
}

// bitsFor returns the number of bits needed to store values 0..maxVal plus
// the all-ones sentinel.
func bitsFor(maxVal int32) uint8 {
	b := uint8(1)
	for int64(1)<<b-1 <= int64(maxVal) {
		b++
	}
	return b
}

// newFixedLayer builds a fixed-width layer of the given width over d.
func newFixedLayer(d *setData, width int32) *layer {
	n := int32(len(d.elems))
	groups := (n + width - 1) / width
	if n == 0 {
		groups = 0
	}
	l := &layer{width: width, n: n, groups: groups}
	l.build(d)
	return l
}

// newBoundedLayer builds a randomized layer from a dense bounds array
// (bounds[z]..bounds[z+1] delimit group z).
func newBoundedLayer(d *setData, bounds []int32) *layer {
	l := &layer{bounds: bounds, n: int32(len(d.elems)), groups: int32(len(bounds) - 1)}
	l.build(d)
	return l
}

// build fills the hash images and the packed first tables.
func (l *layer) build(d *setData) {
	l.words = make([]bitword.Word, l.groups)
	maxLen := int32(0)
	for z := int32(0); z < l.groups; z++ {
		lo, hi := l.groupRange(z)
		if hi-lo > maxLen {
			maxLen = hi - lo
		}
	}
	l.fbits = bitsFor(maxLen)
	totalBits := uint64(l.groups) * bitword.W * uint64(l.fbits)
	l.first = make([]uint64, (totalBits+127)/64) // +1 word of slack for cross-word writes
	sent := sentinel(l.fbits)
	for z := int32(0); z < l.groups; z++ {
		lo, hi := l.groupRange(z)
		var w bitword.Word
		base := uint64(z) * bitword.W * uint64(l.fbits)
		// Pre-mark all 64 slots absent.
		for y := uint64(0); y < bitword.W; y++ {
			writePacked(l.first, base+y*uint64(l.fbits), l.fbits, sent)
		}
		for i := hi - 1; i >= lo; i-- { // right-to-left so the first write wins
			y := d.hvals[i]
			w = w.Add(uint(y))
			off := base + uint64(y)*uint64(l.fbits)
			clearPacked(l.first, off, l.fbits)
			writePacked(l.first, off, l.fbits, uint32(i-lo))
		}
		l.words[z] = w
	}
}

// clearPacked zeroes width bits at bit offset off.
func clearPacked(a []uint64, off uint64, width uint8) {
	wi := off >> 6
	sh := off & 63
	mask := uint64(1<<width - 1)
	a[wi] &^= mask << sh
	if sh+uint64(width) > 64 {
		a[wi+1] &^= mask >> (64 - sh)
	}
}

// sizeWords64 returns the layer's footprint in 64-bit words.
func (l *layer) sizeWords64() int {
	s := len(l.words) + len(l.first)
	if l.bounds != nil {
		s += (len(l.bounds) + 1) / 2
	}
	return s
}

// intersectSmallPair is IntersectSmall (Algorithm 2) for two groups: AND the
// hash images, and for every surviving y merge the two h⁻¹(y, ·) chains in
// key order, appending common elements to dst.
func intersectSmallPair(dst []uint32, da *setData, la *layer, za int32, db *setData, lb *layer, zb int32) []uint32 {
	h := la.word(za).And(lb.word(zb))
	if h.Empty() {
		return dst
	}
	_, hiA := la.groupRange(za)
	_, hiB := lb.groupRange(zb)
	for h != 0 {
		y := h.Min()
		h &= h - 1
		ia := la.firstIdx(za, y)
		ib := lb.firstIdx(zb, y)
		for ia >= 0 && ia < hiA && ib >= 0 && ib < hiB {
			ka, kb := da.keys[ia], db.keys[ib]
			switch {
			case ka < kb:
				ia = da.next[ia]
			case ka > kb:
				ib = db.next[ib]
			default:
				dst = append(dst, da.elems[ia])
				ia = da.next[ia]
				ib = db.next[ib]
			}
		}
	}
	return dst
}

// intersectSmallK extends IntersectSmall to k groups, as Algorithm 4
// requires: h is the pre-computed AND of all k hash images; for every
// y ∈ h, the k chains are merged with an eliminator walk.
func intersectSmallK(dst []uint32, ds []*setData, ls []*layer, zs []int32, h bitword.Word) []uint32 {
	k := len(ds)
	var pos [16]int32 // k ≤ 16 in practice; fall back to heap allocation above
	var his [16]int32
	cur := pos[:k]
	hi := his[:k]
	for i := 0; i < k; i++ {
		_, hi[i] = ls[i].groupRange(zs[i])
	}
	for h != 0 {
		y := h.Min()
		h &= h - 1
		dead := false
		for i := 0; i < k; i++ {
			cur[i] = ls[i].firstIdx(zs[i], y)
			if cur[i] < 0 || cur[i] >= hi[i] {
				dead = true
				break
			}
		}
		if dead {
			continue
		}
	chain:
		for {
			// Eliminator: the maximum key among current chain heads.
			maxKey := ds[0].keys[cur[0]]
			for i := 1; i < k; i++ {
				if key := ds[i].keys[cur[i]]; key > maxKey {
					maxKey = key
				}
			}
			agreed := true
			for i := 0; i < k; i++ {
				for ds[i].keys[cur[i]] < maxKey {
					cur[i] = ds[i].next[cur[i]]
					if cur[i] >= hi[i] {
						break chain
					}
				}
				if ds[i].keys[cur[i]] != maxKey {
					agreed = false
				}
			}
			if agreed {
				dst = append(dst, ds[0].elems[cur[0]])
				for i := 0; i < k; i++ {
					cur[i] = ds[i].next[cur[i]]
					if cur[i] >= hi[i] {
						break chain
					}
				}
			}
		}
	}
	return dst
}
