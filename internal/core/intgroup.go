package core

import (
	"fmt"

	"fastintersect/internal/bitword"
	"fastintersect/internal/sets"
	"fastintersect/internal/xhash"
)

// IntGroupList is the preprocessed form of a set for the fixed-width
// partition algorithm of §3.1 (the paper's IntGroup): the value-sorted
// elements are cut into groups of √w = 8 consecutive elements; each group
// carries the single-word image of h(L^j) and the packed inverted mapping
// first(y, L^j), with global next(x) chains (Theorem 3.4: O(n) space,
// O(n log n) preprocessing).
//
// When built with all widths (WithAllWidths), layers for every power-of-two
// group size 2, 4, ..., 2^⌈log n⌉ are kept — the multi-resolution structure
// that lets IntersectIntGroupOptimal pick s* = √(w·n1/n2) per §A.1.1.
type IntGroupList struct {
	fam    *Family
	data   setData
	layers map[int32]*layer // group width → layer
}

// NewIntGroupList preprocesses a sorted set. allWidths additionally builds
// the power-of-two multi-resolution layers for the optimal variant.
func NewIntGroupList(fam *Family, set []uint32, allWidths bool) (*IntGroupList, error) {
	if err := sets.Validate(set); err != nil {
		return nil, fmt.Errorf("core: IntGroup preprocessing: %w", err)
	}
	l := &IntGroupList{fam: fam, layers: make(map[int32]*layer)}
	l.data.elems = append([]uint32(nil), set...)
	l.data.keys = l.data.elems // value order: keys are the elements themselves
	l.data.hvals = make([]uint8, len(set))
	for i, x := range l.data.elems {
		l.data.hvals[i] = fam.H.Hash(x)
	}
	l.data.buildNext()
	l.layers[bitword.SqrtW] = newFixedLayer(&l.data, bitword.SqrtW)
	if allWidths {
		maxT := xhash.CeilLog2(len(set))
		for t := uint(0); t <= maxT; t++ {
			w := int32(1) << t
			if _, ok := l.layers[w]; !ok {
				l.layers[w] = newFixedLayer(&l.data, w)
			}
		}
	}
	return l, nil
}

// Len returns the number of elements.
func (l *IntGroupList) Len() int { return len(l.data.elems) }

// Family returns the list's hash family.
func (l *IntGroupList) Family() *Family { return l.fam }

// SizeWords returns the structure's footprint in 64-bit machine words
// (elements, hash values, next pointers and all layers), for the §4 space
// experiment.
func (l *IntGroupList) SizeWords() int {
	n := len(l.data.elems)
	s := n/2 + n/8 + n/2 // elems (uint32), hvals (uint8), next (int32)
	for _, ly := range l.layers {
		s += ly.sizeWords64()
	}
	return s
}

// IntersectIntGroup computes a ∩ b with Algorithm 1 over the default √w
// fixed-width partitions. Group pairs are visited in value order but
// elements inside a group pair are emitted in hash-value order, so the
// result is NOT globally sorted (the paper's ∆ is a set union; sort the
// result if order matters). Lists must share a Family.
func IntersectIntGroup(a, b *IntGroupList) []uint32 {
	return intersectFixed(a, b, bitword.SqrtW, bitword.SqrtW)
}

// IntersectIntGroupOptimal computes a ∩ b with the optimal group widths of
// §A.1.1: s1* = √(w·n1/n2) and s2* = √(w·n2/n1), each rounded up to a power
// of two (s* ≤ s** ≤ 2s*), yielding the O(√(n1·n2/w) + r) bound of
// Theorem 3.3's refinement. Both lists must have been built with allWidths.
func IntersectIntGroupOptimal(a, b *IntGroupList) []uint32 {
	n1, n2 := a.Len(), b.Len()
	if n1 == 0 || n2 == 0 {
		return nil
	}
	s1 := optimalWidth(n1, n2)
	s2 := optimalWidth(n2, n1)
	if _, ok := a.layers[s1]; !ok {
		panic("core: IntersectIntGroupOptimal requires allWidths preprocessing")
	}
	if _, ok := b.layers[s2]; !ok {
		panic("core: IntersectIntGroupOptimal requires allWidths preprocessing")
	}
	return intersectFixed(a, b, s1, s2)
}

// IntersectIntGroupWidth runs Algorithm 1 with an explicit group width on
// both sides (a power of two present in the preprocessed layers). It backs
// the §A.1.1 group-size ablation: widths away from √w trade scan iterations
// against hash collisions inside IntersectSmall.
func IntersectIntGroupWidth(a, b *IntGroupList, width int32) []uint32 {
	if _, ok := a.layers[width]; !ok {
		panic("core: width not preprocessed (use allWidths)")
	}
	if _, ok := b.layers[width]; !ok {
		panic("core: width not preprocessed (use allWidths)")
	}
	return intersectFixed(a, b, width, width)
}

// optimalWidth returns the power of two s** with s* ≤ s** ≤ 2s* for
// s* = √(w·n1/n2), clamped to [1, 2^⌈log n1⌉].
func optimalWidth(n1, n2 int) int32 {
	s := 1.0
	ratio := float64(bitword.W) * float64(n1) / float64(n2)
	for s*s < ratio {
		s *= 2
	}
	maxW := int32(1) << xhash.CeilLog2(n1)
	w := int32(s)
	if w < 1 {
		w = 1
	}
	if w > maxW {
		w = maxW
	}
	return w
}

// intersectFixed is Algorithm 1: scan the two group sequences in value
// order, intersecting every pair with overlapping ranges via IntersectSmall.
func intersectFixed(a, b *IntGroupList, wa, wb int32) []uint32 {
	if !SameFamily(a.fam, b.fam) {
		panic("core: intersecting lists from different families")
	}
	la, lb := a.layers[wa], b.layers[wb]
	ea, eb := a.data.elems, b.data.elems
	var dst []uint32
	p, q := int32(0), int32(0)
	for p < la.groups && q < lb.groups {
		loA, hiA := la.groupRange(p)
		loB, hiB := lb.groupRange(q)
		infA, supA := ea[loA], ea[hiA-1]
		infB, supB := eb[loB], eb[hiB-1]
		switch {
		case infB > supA: // line 3-4: A's group is strictly below
			p++
		case infA > supB: // line 5-6: B's group is strictly below
			q++
		default: // line 7-10: ranges overlap
			dst = intersectSmallPair(dst, &a.data, la, p, &b.data, lb, q)
			if supA < supB {
				p++
			} else {
				q++
			}
		}
	}
	return dst
}
