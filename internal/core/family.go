// Package core implements the paper's contribution: the four set
// intersection algorithms of "Fast Set Intersection in Memory"
// (Ding & König, VLDB 2011) together with their pre-processed data
// structures.
//
//   - IntGroup (§3.1, Algorithms 1–2): fixed-width √w partitions of
//     value-sorted lists, per-group single-word hash images and inverted
//     mappings; expected O((n1+n2)/√w + r) two-set intersection, with an
//     optimal-group-size variant achieving O(√(n1·n2/w) + r).
//   - RanGroup (§3.2, Algorithms 3–4): randomized partitions by hash-prefix
//     buckets; expected O(n/√w + k·r) k-set intersection.
//   - RanGroupScan (§3.3, Algorithm 5): the simple, practical variant — one
//     partition per set, m word images per group for filtering, linear-merge
//     fallback; the paper's overall best performer.
//   - HashBin (§3.4): per-bucket binary search in permutation order for
//     strongly skewed set sizes; expected O(n1·log(n2/n1)).
//
// Sets to be intersected together must be preprocessed with the same Family
// (the shared random permutation g and hash functions h, h1..hm).
package core

import "fastintersect/internal/xhash"

// Family bundles the shared randomness of a collection of preprocessed
// sets: the random permutation g : Σ → Σ used for partitioning and ordering
// (§3.2.1), the 2-universal h : Σ → [w] behind the inverted mappings of
// IntGroup/RanGroup, and the m independent h1..hm used by RanGroupScan's
// filters. Two lists can only be intersected if they share a Family.
type Family struct {
	Perm   xhash.Perm       // g
	H      xhash.WordHash   // h
	Images []xhash.WordHash // h1..hm for RanGroupScan
	seed   uint64
}

// DefaultImageCount is the default number m of hash images for RanGroupScan.
// The paper uses m = 4 for the uncompressed experiments and m = 2 for the
// multi-keyword and compressed ones.
const DefaultImageCount = 2

// MaxImageCount bounds m; the paper evaluates up to m = 8 (Figure 9).
const MaxImageCount = 16

// NewFamily derives a family deterministically from a seed. m is the number
// of RanGroupScan hash images to provision (clamped to [1, MaxImageCount]).
func NewFamily(seed uint64, m int) *Family {
	if m < 1 {
		m = 1
	}
	if m > MaxImageCount {
		m = MaxImageCount
	}
	rng := xhash.NewRNG(seed)
	return &Family{
		Perm:   xhash.NewPerm(rng),
		H:      xhash.NewWordHash(rng),
		Images: xhash.NewWordHashes(rng, m),
		seed:   seed,
	}
}

// Seed returns the seed the family was derived from.
func (f *Family) Seed() uint64 { return f.seed }

// M returns the number of provisioned hash images.
func (f *Family) M() int { return len(f.Images) }

// SameFamily reports whether two lists' families share the same seed (and
// therefore identical g and h functions).
func SameFamily(a, b *Family) bool { return a == b || a.seed == b.seed }
