package core

import (
	"fmt"

	"fastintersect/internal/bitword"
	"fastintersect/internal/sets"
)

// RanGroupScanList is the preprocessed form of a set for the "simple"
// randomized-partition algorithm of §3.3 (the paper's RanGroupScan, the
// overall winner of its evaluation). Each set keeps a single partition into
// 2^t prefix buckets with t = ⌈log(n/√w)⌉; each group stores m word images
// h1(L^z)..hm(L^z) and its elements — no inverted mappings (Figure 3's
// block structure). Intersection ANDs the word images; only groups that
// survive all m filters are merged linearly (Algorithm 5).
//
// Layout note: the paper packs each group into one contiguous block
// (z, len, m words, elements). We keep the same information in parallel
// arrays — group offsets, per-image word planes, and a single element
// array — which preserves the size accounting of Theorem 3.10, keeps
// element runs contiguous for the merge, and lets the first-image filter
// (which inspects every group pair) stream one word per group instead of
// m.
type RanGroupScanList struct {
	fam    *Family
	m      int
	t      uint
	bounds []int32        // per group z: element offset; len 2^t+1
	words  []bitword.Word // plane-major: words[j<<t + z] is image j of group z
	elems  []uint32       // grouped by z, value-sorted within each group
}

// NewRanGroupScanList preprocesses a sorted set with m hash images
// (1 ≤ m ≤ fam.M()).
func NewRanGroupScanList(fam *Family, set []uint32, m int) (*RanGroupScanList, error) {
	if err := sets.Validate(set); err != nil {
		return nil, fmt.Errorf("core: RanGroupScan preprocessing: %w", err)
	}
	if m < 1 || m > fam.M() {
		return nil, fmt.Errorf("core: m = %d out of range [1, %d]", m, fam.M())
	}
	l := &RanGroupScanList{fam: fam, m: m, t: TForSize(len(set))}
	n := len(set)
	keys := make([]uint32, n)
	l.elems = make([]uint32, n)
	copy(l.elems, set)
	for i, x := range l.elems {
		keys[i] = fam.Perm.Apply(x)
	}
	RadixSortPairs(keys, l.elems)
	l.bounds = prefixBounds(keys, l.t)
	groups := int32(1) << l.t
	l.words = make([]bitword.Word, int(groups)*m)
	for z := int32(0); z < groups; z++ {
		lo, hi := l.bounds[z], l.bounds[z+1]
		// Value-sort within the group so the k-way fallback merge compares
		// document IDs directly (insertion sort: groups hold ~√w elements).
		grp := l.elems[lo:hi]
		for i := 1; i < len(grp); i++ {
			for j := i; j > 0 && grp[j] < grp[j-1]; j-- {
				grp[j], grp[j-1] = grp[j-1], grp[j]
			}
		}
		for j := 0; j < m; j++ {
			var w bitword.Word
			for _, x := range grp {
				w = w.Add(uint(fam.Images[j].Hash(x)))
			}
			l.words[int32(j)<<l.t+z] = w
		}
	}
	return l, nil
}

// word returns image j of group z.
func (l *RanGroupScanList) word(j, z int32) bitword.Word {
	return l.words[j<<l.t+z]
}

// Len returns the number of elements.
func (l *RanGroupScanList) Len() int { return len(l.elems) }

// Family returns the list's hash family.
func (l *RanGroupScanList) Family() *Family { return l.fam }

// M returns the number of hash images stored per group.
func (l *RanGroupScanList) M() int { return l.m }

// T returns the partition resolution t.
func (l *RanGroupScanList) T() uint { return l.t }

// SizeWords returns the structure's footprint in 64-bit machine words:
// Theorem 3.10's n(1 + (m+1)/√w) words, with elements counted at 32 bits.
func (l *RanGroupScanList) SizeWords() int {
	return len(l.elems)/2 + len(l.words) + (len(l.bounds)+1)/2
}

// group returns the value-sorted elements of group z.
func (l *RanGroupScanList) group(z int32) []uint32 {
	return l.elems[l.bounds[z]:l.bounds[z+1]]
}

// IntersectRanGroupScan computes the intersection of k ≥ 1 lists with
// Algorithm 5. The result is ordered by (group prefix, document ID) — not
// globally sorted.
func IntersectRanGroupScan(lists ...*RanGroupScanList) []uint32 {
	return IntersectRanGroupScanInto(nil, nil, lists...)
}

// IntersectRanGroupScanInto is IntersectRanGroupScan appending into dst,
// with all per-call workspace drawn from sc (nil for a private one). With a
// warm Scratch and sufficient dst capacity it performs zero allocations —
// the contract the serving tier's pooled ExecContext builds on.
func IntersectRanGroupScanInto(dst []uint32, sc *Scratch, lists ...*RanGroupScanList) []uint32 {
	if sc == nil {
		sc = &Scratch{}
	}
	out, _ := intersectRGS(dst, sc, lists, false, 0, -1)
	return out
}

// IntersectRanGroupScanRange restricts Algorithm 5 to the groups z_k of the
// largest list in [zkLo, zkHi). It underpins the multi-core extension
// (IntersectRanGroupScanParallel): disjoint ranges partition the work with
// no shared state.
func IntersectRanGroupScanRange(lists []*RanGroupScanList, zkLo, zkHi int32) []uint32 {
	return IntersectRanGroupScanRangeInto(nil, nil, lists, zkLo, zkHi)
}

// IntersectRanGroupScanRangeInto is IntersectRanGroupScanRange appending
// into dst with workspace drawn from sc (nil for a private one).
func IntersectRanGroupScanRangeInto(dst []uint32, sc *Scratch, lists []*RanGroupScanList, zkLo, zkHi int32) []uint32 {
	if sc == nil {
		sc = &Scratch{}
	}
	out, _ := intersectRGS(dst, sc, lists, false, zkLo, zkHi)
	return out
}

// FilterStats instruments Algorithm 5's line-3 test for Figure 9 (§A.5.2):
// of the group combinations whose true intersection is empty, how many were
// filtered by some hash image ANDing to zero?
type FilterStats struct {
	EmptyCombos    int // combinations with ∩ L^z = ∅ (and every group non-empty)
	Filtered       int // of those, skipped by the m-image test
	NonEmptyCombos int // combinations with ∩ L^z ≠ ∅
}

// SuccessProbability is the measured Pr[successful filtering].
func (s FilterStats) SuccessProbability() float64 {
	if s.EmptyCombos == 0 {
		return 1
	}
	return float64(s.Filtered) / float64(s.EmptyCombos)
}

// IntersectRanGroupScanStats runs the intersection while measuring filter
// effectiveness. Group combinations that the filter skips are still merged
// (outside the algorithm's accounting) to learn the ground truth, so this
// is for analysis, not benchmarking.
func IntersectRanGroupScanStats(lists ...*RanGroupScanList) ([]uint32, FilterStats) {
	return intersectRGS(nil, &Scratch{}, lists, true, 0, -1)
}

// intersectRGS is Algorithm 5 with memoized prefix ANDs per hash image.
// zkHi < 0 means the full group range; a restricted range always takes the
// general path. All workspace comes from sc.
func intersectRGS(dst []uint32, sc *Scratch, lists []*RanGroupScanList, withStats bool, zkLo, zkHi int32) ([]uint32, FilterStats) {
	var stats FilterStats
	fullRange := zkHi < 0
	switch len(lists) {
	case 0:
		return dst, stats
	case 1:
		if fullRange {
			return append(dst, lists[0].elems...), stats
		}
		lo, hi := lists[0].bounds[zkLo], lists[0].bounds[zkHi]
		return append(dst, lists[0].elems[lo:hi]...), stats
	case 2:
		if !withStats && fullRange {
			a, b := lists[0], lists[1]
			if a.Len() > b.Len() {
				a, b = b, a
			}
			if !SameFamily(a.fam, b.fam) {
				panic("core: intersecting lists from different families")
			}
			return intersectRGS2(dst, a, b), stats
		}
	}
	sc.rgs = scratchSlice(sc.rgs, len(lists))
	ordered := sc.rgs
	copy(ordered, lists)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Len() < ordered[j-1].Len(); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	defer clear(ordered) // do not retain operands in the pooled Scratch
	k := len(ordered)
	m := ordered[0].m
	for _, l := range ordered {
		if !SameFamily(l.fam, ordered[0].fam) {
			panic("core: intersecting lists from different families")
		}
		if l.m < m {
			m = l.m // use the images available everywhere
		}
		if l.Len() == 0 {
			return dst, stats
		}
	}
	sc.ts = scratchSlice(sc.ts, k)
	ts := sc.ts
	for i, l := range ordered {
		ts[i] = l.t
	}
	tk := ts[k-1]
	// partial[i*m+j] = AND over sets 0..i of image j for the current prefix.
	sc.partial = scratchSlice(sc.partial, k*m)
	partial := sc.partial
	sc.prevZ = scratchSlice(sc.prevZ, k)
	sc.zs = scratchSlice(sc.zs, k)
	prevZ, zs := sc.prevZ, sc.zs
	for i := range prevZ {
		prevZ[i] = -1
	}
	sc.groups = scratchSlice(sc.groups, k)
	groups := sc.groups
	defer clear(groups) // group views alias operand element arrays
	if sc.bufA == nil {
		sc.bufA = make([]uint32, 0, 4*bitword.SqrtW)
		sc.bufB = make([]uint32, 0, 4*bitword.SqrtW)
	}
	bufA, bufB := sc.bufA, sc.bufB
	zkMax := int32(1) << tk
	if !fullRange && zkHi < zkMax {
		zkMax = zkHi
	}
zkLoop:
	for zk := zkLo; zk < zkMax; zk++ {
		rebuild := -1
		for i := 0; i < k; i++ {
			if zk>>(tk-ts[i]) != prevZ[i] {
				rebuild = i
				break
			}
		}
		if rebuild < 0 {
			continue
		}
		filteredAt := -1
		for i := rebuild; i < k; i++ {
			zi := zk >> (tk - ts[i])
			prevZ[i] = zi
			zs[i] = zi
			l := ordered[i]
			if l.bounds[zi] == l.bounds[zi+1] {
				// Empty group: nothing below this prefix can intersect.
				zk = (zi+1)<<(tk-ts[i]) - 1
				for j := i + 1; j < k; j++ {
					prevZ[j] = -1
				}
				continue zkLoop
			}
			// Line 3 of Algorithm 5: the combination survives only if the
			// AND is non-empty under EVERY hash image h1..hm.
			alive := true
			for j := 0; j < m; j++ {
				w := l.word(int32(j), zi)
				if i > 0 {
					w = w.And(partial[(i-1)*m+j])
				}
				partial[i*m+j] = w
				if w.Empty() {
					alive = false
				}
			}
			if !alive {
				if !withStats {
					// All m images died: skip the whole prefix subtree.
					zk = (zi+1)<<(tk-ts[i]) - 1
					for j := i + 1; j < k; j++ {
						prevZ[j] = -1
					}
					continue zkLoop
				}
				if filteredAt < 0 {
					filteredAt = i
				}
			}
		}
		if !withStats {
			dst = mergeGroups(dst, ordered, zs, groups, &bufA, &bufB)
			continue
		}
		// Stats mode: learn the truth for this combination.
		before := len(dst)
		dst = mergeGroups(dst, ordered, zs, groups, &bufA, &bufB)
		produced := len(dst) - before
		if produced > 0 {
			stats.NonEmptyCombos++
		} else {
			stats.EmptyCombos++
			if filteredAt >= 0 {
				stats.Filtered++
			}
		}
		if filteredAt >= 0 {
			// The real algorithm would have skipped; drop the merged output.
			dst = dst[:before]
			zi := zs[filteredAt]
			zk = (zi+1)<<(tk-ts[filteredAt]) - 1
			for j := filteredAt + 1; j < k; j++ {
				prevZ[j] = -1
			}
		}
	}
	sc.bufA, sc.bufB = bufA, bufB // keep any merge-buffer growth for reuse
	return dst, stats
}

// intersectRGS2 is the two-list fast path, structured like Algorithm 3:
// iterate the groups z1 of the smaller set; the matching groups of the
// larger set are exactly those z2 having z1 as their t1-prefix, a
// contiguous range of 2^(t2-t1) identifiers.
func intersectRGS2(dst []uint32, a, b *RanGroupScanList) []uint32 {
	if a.Len() == 0 || b.Len() == 0 {
		return dst
	}
	m := a.m
	if b.m < m {
		m = b.m
	}
	d := b.t - a.t
	g1 := int32(1) << a.t
	bPlane0 := b.words[:int32(1)<<b.t] // first-image plane, scanned densely
	bBounds := b.bounds
	for z1 := int32(0); z1 < g1; z1++ {
		lo1, hi1 := a.bounds[z1], a.bounds[z1+1]
		if lo1 == hi1 {
			continue
		}
		grpA := a.elems[lo1:hi1]
		wA0 := a.word(0, z1)
		z2 := z1 << d
		z2end := (z1 + 1) << d
		lo2 := bBounds[z2]
		for ; z2 < z2end; z2++ {
			hi2 := bBounds[z2+1]
			// First-image test inline: most empty pairs die here.
			if lo2 == hi2 || wA0.And(bPlane0[z2]).Empty() {
				lo2 = hi2
				continue
			}
			alive := true
			for j := int32(1); j < int32(m); j++ {
				if a.word(j, z1).And(b.word(j, z2)).Empty() {
					alive = false
					break
				}
			}
			if alive {
				dst = mergeInto(dst, grpA, b.elems[lo2:hi2])
			}
			lo2 = hi2
		}
	}
	return dst
}

// mergeGroups linear-merges the k groups (line 4 of Algorithm 5). Groups
// are value-sorted, so a pairwise cascade through two scratch buffers
// suffices; group sizes concentrate around √w (Proposition A.2).
func mergeGroups(dst []uint32, ordered []*RanGroupScanList, zs []int32, groups [][]uint32, bufA, bufB *[]uint32) []uint32 {
	k := len(ordered)
	for i := 0; i < k; i++ {
		groups[i] = ordered[i].group(zs[i])
	}
	if k == 2 {
		return mergeInto(dst, groups[0], groups[1])
	}
	cur := (*bufA)[:0]
	other := (*bufB)[:0]
	cur = mergeInto(cur, groups[0], groups[1])
	for i := 2; i < k && len(cur) > 0; i++ {
		other = mergeInto(other[:0], cur, groups[i])
		cur, other = other, cur
	}
	dst = append(dst, cur...)
	*bufA, *bufB = cur[:0], other[:0]
	return dst
}

// mergeInto appends the sorted-merge intersection of a and b to dst.
func mergeInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		va, vb := a[i], b[j]
		if va == vb {
			dst = append(dst, va)
			i++
			j++
			continue
		}
		if va < vb {
			i++
		} else {
			j++
		}
	}
	return dst
}
