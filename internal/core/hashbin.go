package core

import (
	"fmt"
	"sort"

	"fastintersect/internal/sets"
	"fastintersect/internal/xhash"
)

// HashBinList is the preprocessed form of a set for the HashBin algorithm
// of §3.4: the elements ordered by the random permutation g. Because every
// prefix bucket L^z = {x : gt(x) = z} is a contiguous interval of this
// order for ANY resolution t (§A.6.1), the structure is the simplified
// multi-resolution structure — the g-sorted array itself, with group
// boundaries recovered by binary search on the stored g values. Theorem
// 3.11: O(n) space, O(n log n) preprocessing, and two-set intersection in
// expected O(n1·log(n2/n1)).
type HashBinList struct {
	fam   *Family
	elems []uint32 // ordered by g(x)
	gvals []uint32 // g(x), ascending
}

// NewHashBinList preprocesses a sorted set.
func NewHashBinList(fam *Family, set []uint32) (*HashBinList, error) {
	if err := sets.Validate(set); err != nil {
		return nil, fmt.Errorf("core: HashBin preprocessing: %w", err)
	}
	l := &HashBinList{fam: fam}
	n := len(set)
	l.elems = make([]uint32, n)
	l.gvals = make([]uint32, n)
	copy(l.elems, set)
	for i, x := range l.elems {
		l.gvals[i] = fam.Perm.Apply(x)
	}
	RadixSortPairs(l.gvals, l.elems)
	return l, nil
}

// Len returns the number of elements.
func (l *HashBinList) Len() int { return len(l.elems) }

// Family returns the list's hash family.
func (l *HashBinList) Family() *Family { return l.fam }

// SizeWords returns the structure's footprint in 64-bit machine words.
func (l *HashBinList) SizeWords() int { return len(l.elems)/2 + len(l.gvals)/2 }

// bucketBounds returns the index range [lo, hi) of the prefix bucket z at
// resolution t, by binary search on the g values.
func (l *HashBinList) bucketBounds(z uint32, t uint) (lo, hi int) {
	if t == 0 {
		return 0, len(l.gvals)
	}
	loKey := z << (32 - t)
	lo = sort.Search(len(l.gvals), func(i int) bool { return l.gvals[i] >= loKey })
	if z == 1<<t-1 {
		return lo, len(l.gvals)
	}
	hiKey := (z + 1) << (32 - t)
	hi = lo + sort.Search(len(l.gvals)-lo, func(i int) bool { return l.gvals[lo+i] >= hiKey })
	return lo, hi
}

// searchG reports whether gv occurs in gvals[lo:hi], by binary search.
// Elements in a bucket are ordered by g, and g is injective, so finding
// g(x) is equivalent to finding x (§A.6.1).
func (l *HashBinList) searchG(gv uint32, lo, hi int) bool {
	i := lo + sort.Search(hi-lo, func(i int) bool { return l.gvals[lo+i] >= gv })
	return i < hi && l.gvals[i] == gv
}

// IntersectHashBin computes the intersection of k ≥ 1 lists with HashBin:
// partition every set at t = ⌈log n1⌉ (n1 = smallest size), and for each
// bucket check every x ∈ L1^z against L2^z, ..., Lk^z by binary search in
// g-space, stopping at the first miss. The result is in permutation order.
func IntersectHashBin(lists ...*HashBinList) []uint32 {
	return IntersectHashBinInto(nil, nil, lists...)
}

// IntersectHashBinInto is IntersectHashBin appending into dst, with all
// per-call workspace drawn from sc (nil for a private one).
func IntersectHashBinInto(dst []uint32, sc *Scratch, lists ...*HashBinList) []uint32 {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0].elems...)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.hb = scratchSlice(sc.hb, len(lists))
	ordered := sc.hb
	copy(ordered, lists)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Len() < ordered[j-1].Len(); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	defer clear(ordered) // do not retain operands in the pooled Scratch
	for _, l := range ordered {
		if !SameFamily(l.fam, ordered[0].fam) {
			panic("core: intersecting lists from different families")
		}
		if l.Len() == 0 {
			return dst
		}
	}
	small := ordered[0]
	t := xhash.CeilLog2(small.Len())
	if t > 32 {
		t = 32
	}
	k := len(ordered)
	sc.los = scratchSlice(sc.los, k)
	sc.his = scratchSlice(sc.his, k)
	los, his := sc.los, sc.his
	i := 0
	for i < len(small.gvals) {
		z := xhash.PrefixOf(small.gvals[i], t)
		lo1, hi1 := small.bucketBounds(z, t)
		// Locate the matching bucket in every other list once per bucket.
		live := true
		for s := 1; s < k; s++ {
			los[s], his[s] = ordered[s].bucketBounds(z, t)
			if los[s] == his[s] {
				live = false
				break
			}
		}
		if live {
			for j := lo1; j < hi1; j++ {
				gv := small.gvals[j]
				ok := true
				for s := 1; s < k; s++ {
					if !ordered[s].searchG(gv, los[s], his[s]) {
						ok = false
						break
					}
				}
				if ok {
					dst = append(dst, small.elems[j])
				}
			}
		}
		i = hi1
	}
	return dst
}
