package core

import "sync"

// IntersectRanGroupScanParallel is the multi-core extension the paper's §2
// calls orthogonal to its contribution: the group identifier space of the
// largest list is split into `workers` contiguous ranges, each intersected
// independently with Algorithm 5, and the per-range outputs concatenated.
// Because groups partition the sets, ranges share no state and the
// concatenated result equals the serial result (same order).
func IntersectRanGroupScanParallel(workers int, lists ...*RanGroupScanList) []uint32 {
	if len(lists) < 2 || workers <= 1 {
		return IntersectRanGroupScan(lists...)
	}
	tk := uint(0)
	for _, l := range lists {
		if l.Len() == 0 {
			return nil
		}
		if l.t > tk {
			tk = l.t
		}
	}
	zkMax := int32(1) << tk
	if int32(workers) > zkMax {
		workers = int(zkMax)
	}
	results := make([][]uint32, workers)
	var wg sync.WaitGroup
	chunk := (zkMax + int32(workers) - 1) / int32(workers)
	for w := 0; w < workers; w++ {
		lo := int32(w) * chunk
		hi := lo + chunk
		if hi > zkMax {
			hi = zkMax
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, lo, hi int32) {
			defer wg.Done()
			results[w] = IntersectRanGroupScanRange(lists, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]uint32, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}
