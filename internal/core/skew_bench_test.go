package core

import (
	"testing"

	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func BenchmarkSkewQuery(b *testing.B) {
	rng := xhash.NewRNG(0x5EED)
	fam := NewFamily(testSeed, 4)
	// Representative simulated-real 2-keyword query: sr≈5, r = 0.14·|L1|.
	aSet, bSet := workload.PairWithIntersection(1_000_000, 30_000, 150_000, 4_200, rng)
	ra, _ := NewRanGroupScanList(fam, aSet, 4)
	rb, _ := NewRanGroupScanList(fam, bSet, 4)
	ra1, _ := NewRanGroupScanList(fam, aSet, 1)
	rb1, _ := NewRanGroupScanList(fam, bSet, 1)
	b.Run("RGS_m4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectRanGroupScan(ra, rb)
		}
	})
	b.Run("RGS_m1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectRanGroupScan(ra1, rb1)
		}
	})
	b.Run("Merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			merge2(aSet, bSet)
		}
	})
}

func merge2(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		va, vb := a[i], b[j]
		if va == vb {
			n++
			i++
			j++
			continue
		}
		if va < vb {
			i++
		}
		if vb < va {
			j++
		}
	}
	return n
}
