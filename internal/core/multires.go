package core

import (
	"fmt"

	"fastintersect/internal/bitword"
	"fastintersect/internal/xhash"
)

// RanGroupMulti is the full multi-resolution structure of §3.2.1 (Figure 2):
// the g-ordered elements of a set together with a layer (group boundaries,
// word images, packed inverted mappings) for EVERY resolution
// t = 0, 1, ..., ⌈log n⌉. It exists for the algorithms whose group count
// depends on the partner set — Theorem 3.5's two-set intersection with
// t1 = t2 = ⌈log √(n1·n2/w)⌉ — where the single-resolution RanGroupList
// cannot be used. Total space stays O(n) words (Theorem 3.8): resolution t
// contributes 2^t groups and the per-resolution group counts sum to ≤ 2n.
type RanGroupMulti struct {
	fam    *Family
	data   setData
	layers []*layer // layers[t] is the resolution-t partition
}

// NewRanGroupMulti preprocesses a sorted set at every resolution.
func NewRanGroupMulti(fam *Family, set []uint32) (*RanGroupMulti, error) {
	if err := validateForCore(set); err != nil {
		return nil, fmt.Errorf("core: RanGroupMulti preprocessing: %w", err)
	}
	l := &RanGroupMulti{fam: fam}
	l.data = buildPermData(fam, set)
	maxT := xhash.CeilLog2(len(set))
	l.layers = make([]*layer, maxT+1)
	for t := uint(0); t <= maxT; t++ {
		l.layers[t] = newBoundedLayer(&l.data, prefixBounds(l.data.keys, t))
	}
	return l, nil
}

// Len returns the number of elements.
func (l *RanGroupMulti) Len() int { return len(l.data.elems) }

// MaxT returns the finest available resolution.
func (l *RanGroupMulti) MaxT() uint { return uint(len(l.layers) - 1) }

// SizeWords returns the structure's footprint in 64-bit machine words.
func (l *RanGroupMulti) SizeWords() int {
	n := len(l.data.elems)
	s := n/2 + n/2 + n/8 + n/2 // elems, keys, hvals, next
	for _, ly := range l.layers {
		s += ly.sizeWords64()
	}
	return s
}

// optimalPairT is Theorem 3.5's resolution: t1 = t2 = ⌈log √(n1·n2/w)⌉,
// clamped to the resolutions both structures carry.
func optimalPairT(a, b *RanGroupMulti) uint {
	prod := float64(a.Len()) * float64(b.Len()) / float64(bitword.W)
	t := uint(0)
	for g := 1.0; g*g < prod; g *= 2 {
		t++
	}
	if mt := a.MaxT(); t > mt {
		t = mt
	}
	if mt := b.MaxT(); t > mt {
		t = mt
	}
	return t
}

// IntersectRanGroupPairOptimal computes a ∩ b with Algorithm 3 at the
// Theorem 3.5 resolution, achieving expected O(√(n1·n2)/√w + r) — better
// than the Theorem 3.6/3.7 bound when the sizes are skewed. Both sets use
// the same t, so groups pair one-to-one by identifier. The result is in
// permutation order.
func IntersectRanGroupPairOptimal(a, b *RanGroupMulti) []uint32 {
	if !SameFamily(a.fam, b.fam) {
		panic("core: intersecting lists from different families")
	}
	if a.Len() == 0 || b.Len() == 0 {
		return nil
	}
	t := optimalPairT(a, b)
	la, lb := a.layers[t], b.layers[t]
	var dst []uint32
	for z := int32(0); z < int32(1)<<t; z++ {
		loA, hiA := la.groupRange(z)
		if loA == hiA {
			continue
		}
		loB, hiB := lb.groupRange(z)
		if loB == hiB {
			continue
		}
		dst = intersectSmallPair(dst, &a.data, la, z, &b.data, lb, z)
	}
	return dst
}

// validateForCore mirrors sets.Validate without importing it twice in this
// file's callers; kept tiny and local.
func validateForCore(s []uint32) error {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return fmt.Errorf("not strictly increasing at index %d", i)
		}
	}
	return nil
}
