package workload

import (
	"strings"
	"testing"
)

func churnCorpus(t *testing.T) *Real {
	t.Helper()
	return NewReal(RealConfig{
		NumDocs: 5_000, NumTerms: 500, NumQueries: 100,
		ZipfS: 0.7, TopDFFrac: 0.2, HotFrac: 0.08, HotWeight: 8, Seed: 42,
	})
}

func TestChurnStreamMixAndDeterminism(t *testing.T) {
	r := churnCorpus(t)
	cfg := ChurnConfig{AddFrac: 0.3, DeleteFrac: 0.2, MaxDocID: 8_000, Seed: 7}
	ops := r.ChurnStream(4_000, cfg)
	if len(ops) != 4_000 {
		t.Fatalf("stream length %d", len(ops))
	}
	counts := map[ChurnKind]int{}
	for _, op := range ops {
		counts[op.Kind]++
		switch op.Kind {
		case ChurnAdd:
			if len(op.Terms) == 0 {
				t.Fatal("add op with no terms")
			}
			seen := map[string]bool{}
			for _, term := range op.Terms {
				if !strings.HasPrefix(term, "t") {
					t.Fatalf("term %q not from the corpus vocabulary", term)
				}
				if seen[term] {
					t.Fatalf("duplicate term %q in add op", term)
				}
				seen[term] = true
			}
			if op.DocID >= 8_000 {
				t.Fatalf("add docID %d out of MaxDocID range", op.DocID)
			}
		case ChurnDelete:
			if op.DocID >= 8_000 {
				t.Fatalf("delete docID %d out of range", op.DocID)
			}
		case ChurnQuery:
			if op.Query == "" {
				t.Fatal("empty query op")
			}
		}
	}
	// The mix must be within loose tolerance of the configured fractions.
	if got := float64(counts[ChurnAdd]) / 4000; got < 0.25 || got > 0.35 {
		t.Fatalf("add fraction = %.3f, want ≈0.3", got)
	}
	if got := float64(counts[ChurnDelete]) / 4000; got < 0.15 || got > 0.25 {
		t.Fatalf("delete fraction = %.3f, want ≈0.2", got)
	}
	// Adds must introduce brand-new documents (IDs ≥ NumDocs).
	fresh := 0
	for _, op := range ops {
		if op.Kind == ChurnAdd && op.DocID >= r.Config.NumDocs {
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("no brand-new documents in the stream")
	}

	// Deterministic in the seed.
	again := r.ChurnStream(4_000, cfg)
	for i := range ops {
		a, b := ops[i], again[i]
		if a.Kind != b.Kind || a.DocID != b.DocID || a.Query != b.Query || len(a.Terms) != len(b.Terms) {
			t.Fatalf("op %d differs between identical-seed streams: %+v vs %+v", i, a, b)
		}
	}
	// And different under a different seed.
	cfg.Seed = 8
	other := r.ChurnStream(4_000, cfg)
	same := 0
	for i := range ops {
		if ops[i].Kind == other[i].Kind && ops[i].DocID == other[i].DocID {
			same++
		}
	}
	if same == len(ops) {
		t.Fatal("streams identical across different seeds")
	}
}

func TestChurnStreamEdgeCases(t *testing.T) {
	r := churnCorpus(t)
	if ops := r.ChurnStream(0, DefaultChurnConfig()); ops != nil {
		t.Fatalf("n=0 returned %d ops", len(ops))
	}
	// A zero-value config is all queries.
	ops := r.ChurnStream(50, ChurnConfig{})
	for _, op := range ops {
		if op.Kind != ChurnQuery {
			t.Fatalf("zero config produced a %v op", op.Kind)
		}
	}
}
