package workload

import (
	"strconv"
	"strings"

	"fastintersect/internal/xhash"
)

// TermName renders term rank t as the engine-facing token used when a Real
// corpus is loaded into the query engine ("t0" is the most frequent term).
func TermName(t int) string { return "t" + strconv.Itoa(t) }

// StreamConfig controls the operator mix of a generated query stream.
type StreamConfig struct {
	// OrFrac is the fraction of queries extended with an OR branch
	// ("(a AND b) OR c").
	OrFrac float64
	// NotFrac is the fraction of queries extended with a negated term
	// ("a AND b AND NOT c").
	NotFrac float64
	Seed    uint64
}

// DefaultStreamConfig mirrors observed web-query operator rates: boolean
// operators are rare relative to bare conjunctions.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{OrFrac: 0.10, NotFrac: 0.05, Seed: 0xD15C0}
}

// QueryStream renders n query-language strings for the engine by replaying
// the workload's conjunctive queries round-robin and extending a
// cfg-controlled fraction with OR and NOT operators. Deterministic in
// cfg.Seed; the stream repeats (with different operator decorations) once
// n exceeds len(r.Queries), which is exactly what gives a result cache
// something to do.
func (r *Real) QueryStream(n int, cfg StreamConfig) []string {
	if n <= 0 || len(r.Queries) == 0 {
		return nil
	}
	rng := xhash.NewRNG(cfg.Seed)
	terms := len(r.Postings)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		q := r.Queries[i%len(r.Queries)]
		parts := make([]string, len(q.Terms))
		for j, t := range q.Terms {
			parts[j] = TermName(t)
		}
		s := strings.Join(parts, " AND ")
		if rng.Float64() < cfg.NotFrac {
			// Negate a tail (low-df) term so the difference rarely wipes
			// out the whole result.
			t := terms/2 + rng.Intn(terms-terms/2)
			s += " AND NOT " + TermName(t)
		}
		if terms >= 2 && rng.Float64() < cfg.OrFrac {
			// Union in a mid-rank term.
			t := rng.Intn(terms / 2)
			s = "(" + s + ") OR " + TermName(t)
		}
		out = append(out, s)
	}
	return out
}
