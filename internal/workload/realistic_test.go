package workload

import (
	"testing"

	"fastintersect/internal/sets"
)

// tinyRealConfig keeps the corpus small enough for fast unit tests while
// preserving the generator's structure.
func tinyRealConfig() RealConfig {
	return RealConfig{
		NumDocs:    20_000,
		NumTerms:   2_000,
		NumQueries: 200,
		ZipfS:      1.0,
		TopDFFrac:  0.2,
		HotFrac:    0.2,
		HotWeight:  4,
		Seed:       1,
	}
}

func TestRealPostingsValid(t *testing.T) {
	r := NewReal(tinyRealConfig())
	if len(r.Postings) != 2000 {
		t.Fatalf("got %d terms", len(r.Postings))
	}
	prev := int(^uint(0) >> 1)
	for tid, p := range r.Postings {
		if err := sets.Validate(p); err != nil {
			t.Fatalf("posting %d invalid: %v", tid, err)
		}
		if len(p) > prev {
			t.Fatalf("df not non-increasing at term %d: %d > %d", tid, len(p), prev)
		}
		prev = len(p)
		for _, d := range p {
			if d >= r.Config.NumDocs {
				t.Fatalf("doc %d outside corpus", d)
			}
		}
	}
	// Zipf head: the most frequent term should be close to TopDFFrac·N.
	if head := len(r.Postings[0]); head < 3000 || head > 4100 {
		t.Fatalf("head df %d, want ≈4000", head)
	}
}

func TestRealQueriesShape(t *testing.T) {
	r := NewReal(tinyRealConfig())
	if len(r.Queries) != 200 {
		t.Fatalf("got %d queries", len(r.Queries))
	}
	for _, q := range r.Queries {
		if len(q.Terms) < 2 || len(q.Terms) > 5 {
			t.Fatalf("query with %d terms", len(q.Terms))
		}
		seen := map[int]bool{}
		for i, tid := range q.Terms {
			if tid < 0 || tid >= len(r.Postings) {
				t.Fatalf("term id %d out of range", tid)
			}
			if seen[tid] {
				t.Fatalf("duplicate term in query %v", q.Terms)
			}
			seen[tid] = true
			if i > 0 && len(r.Postings[q.Terms[i-1]]) > len(r.Postings[tid]) {
				t.Fatalf("query terms not ordered by df: %v", q.Terms)
			}
		}
	}
}

func TestRealKDistribution(t *testing.T) {
	cfg := tinyRealConfig()
	cfg.NumQueries = 2000
	r := NewReal(cfg)
	counts := map[int]int{}
	for _, q := range r.Queries {
		counts[len(q.Terms)]++
	}
	// Paper: 68 / 23 / 6 / 3 percent. Allow generous tolerance.
	checks := []struct {
		k      int
		lo, hi float64
	}{
		{2, 0.60, 0.76}, {3, 0.16, 0.30}, {4, 0.03, 0.10}, {5, 0.01, 0.06},
	}
	for _, c := range checks {
		frac := float64(counts[c.k]) / float64(len(r.Queries))
		if frac < c.lo || frac > c.hi {
			t.Fatalf("k=%d fraction %.3f outside [%v,%v]", c.k, frac, c.lo, c.hi)
		}
	}
}

func TestRealStatsMatchPaperShape(t *testing.T) {
	cfg := tinyRealConfig()
	cfg.NumQueries = 500
	r := NewReal(cfg)
	st := r.ComputeStats()
	// The paper reports |L1|/|L2| ≈ 0.21 for 2-word queries; the simulator
	// aims for that neighbourhood.
	if v := st.AvgRatioL1L2[2]; v < 0.10 || v > 0.40 {
		t.Fatalf("avg |L1|/|L2| for k=2 is %.3f, want ≈0.21", v)
	}
	// Intersections must be substantially smaller than the smallest list on
	// average (paper: r/|L1| ≈ 0.19), but not degenerate.
	if st.AvgInterOverL1 <= 0 || st.AvgInterOverL1 > 0.6 {
		t.Fatalf("avg r/|L1| = %.3f, want small positive", st.AvgInterOverL1)
	}
	// Most queries should have intersections an order of magnitude smaller
	// than the rarest keyword (intro statistic: 94% at 10x).
	if st.Frac10xSmaller < 0.4 {
		t.Fatalf("only %.2f of queries are 10x smaller", st.Frac10xSmaller)
	}
	if st.Frac100xSmaller > st.Frac10xSmaller {
		t.Fatal("100x fraction exceeds 10x fraction")
	}
}

func TestRealDeterminism(t *testing.T) {
	a := NewReal(tinyRealConfig())
	b := NewReal(tinyRealConfig())
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query counts differ")
	}
	for i := range a.Queries {
		if len(a.Queries[i].Terms) != len(b.Queries[i].Terms) {
			t.Fatal("queries differ across identical seeds")
		}
		for j := range a.Queries[i].Terms {
			if a.Queries[i].Terms[j] != b.Queries[i].Terms[j] {
				t.Fatal("queries differ across identical seeds")
			}
		}
	}
	if !sets.Equal(a.Postings[7], b.Postings[7]) {
		t.Fatal("postings differ across identical seeds")
	}
}

func TestFindTermByDF(t *testing.T) {
	dfs := []int{100, 50, 25, 12, 6}
	cases := map[float64]int{200: 0, 100: 0, 70: 1, 50: 1, 24: 2, 5: 4, 1: 4}
	for want, idx := range cases {
		if got := findTermByDF(dfs, want); got != idx {
			t.Fatalf("findTermByDF(%v) = %d, want %d", want, got, idx)
		}
	}
}

func TestConfigPresets(t *testing.T) {
	s, f := SmallRealConfig(), FullRealConfig()
	if s.NumDocs >= f.NumDocs || s.NumQueries >= f.NumQueries {
		t.Fatal("full preset not larger than small preset")
	}
}
