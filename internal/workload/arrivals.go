package workload

import (
	"math"
	"time"

	"fastintersect/internal/xhash"
)

// Arrivals returns n absolute arrival offsets (measured from the start of
// the load window) of an open-loop Poisson process with mean rate qps:
// inter-arrival gaps are exponentially distributed, so the stream has the
// bursty moments a constant-gap generator hides. Open-loop is the point —
// the saturation experiment offers load on this schedule regardless of how
// the server is coping, which is what exposes queue collapse. Deterministic
// in seed.
func Arrivals(n int, qps float64, seed uint64) []time.Duration {
	if n <= 0 || qps <= 0 {
		return nil
	}
	rng := xhash.NewRNG(seed)
	out := make([]time.Duration, n)
	t := 0.0
	for i := range out {
		u := rng.Float64()
		for u <= 0 { // Float64 is [0,1); Log(0) would be -Inf
			u = rng.Float64()
		}
		t += -math.Log(u) / qps
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}
