package workload

import (
	"fastintersect/internal/xhash"
)

// ChurnKind discriminates the operations of a churn stream.
type ChurnKind int

const (
	// ChurnQuery runs a boolean query (the Query field).
	ChurnQuery ChurnKind = iota
	// ChurnAdd adds or updates a document (DocID, Terms).
	ChurnAdd
	// ChurnDelete deletes a document (DocID).
	ChurnDelete
)

// ChurnOp is one operation of an interleaved mutation/query stream — the
// workload shape of the paper's motivating search engine once the corpus is
// live: fresh documents arriving, stale ones retired, queries throughout.
type ChurnOp struct {
	Kind  ChurnKind
	DocID uint32   // ChurnAdd / ChurnDelete
	Terms []string // ChurnAdd
	Query string   // ChurnQuery
}

// ChurnConfig controls the operation mix of a churn stream.
type ChurnConfig struct {
	// AddFrac is the fraction of operations that add or update a document;
	// DeleteFrac the fraction that delete one. The remainder are queries.
	AddFrac    float64
	DeleteFrac float64
	// MaxDocID bounds the docID space new documents are drawn from
	// (0 = 2 × the corpus's NumDocs). IDs at or above NumDocs are brand-new
	// documents; adds occasionally hit existing IDs, exercising updates.
	MaxDocID uint32
	// MaxTermsPerDoc caps the terms of an added document (0 = 6). Terms are
	// sampled head-biased from the corpus vocabulary so added documents are
	// actually reachable by the query stream.
	MaxTermsPerDoc int
	// Stream sets the operator mix of the query operations.
	Stream StreamConfig
	Seed   uint64
}

// DefaultChurnConfig is a read-mostly mix: ~20% adds, ~10% deletes, 70%
// queries with the default web-query operator rates.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{AddFrac: 0.20, DeleteFrac: 0.10, Stream: DefaultStreamConfig(), Seed: 0xC4024}
}

// ChurnStream renders n interleaved add/delete/query operations against the
// workload's corpus, deterministic in cfg.Seed. Deletes prefer documents the
// stream itself added (so they usually hit live delta documents) but also
// target original corpus IDs, exercising base-segment tombstones; adds reuse
// a previously added ID ~¼ of the time, exercising updates and
// re-add-after-delete.
func (r *Real) ChurnStream(n int, cfg ChurnConfig) []ChurnOp {
	if n <= 0 || len(r.Queries) == 0 {
		return nil
	}
	if cfg.MaxDocID == 0 {
		cfg.MaxDocID = 2 * r.Config.NumDocs
	}
	if cfg.MaxDocID <= r.Config.NumDocs {
		cfg.MaxDocID = r.Config.NumDocs + 1
	}
	if cfg.MaxTermsPerDoc <= 0 {
		cfg.MaxTermsPerDoc = 6
	}
	rng := xhash.NewRNG(cfg.Seed)
	queries := r.QueryStream(n, cfg.Stream)
	qi := 0
	var touched []uint32 // IDs added by the stream, candidates for delete/update
	out := make([]ChurnOp, 0, n)
	for i := 0; i < n; i++ {
		switch f := rng.Float64(); {
		case f < cfg.AddFrac:
			var id uint32
			if len(touched) > 0 && rng.Float64() < 0.25 {
				id = touched[rng.Intn(len(touched))] // update / re-add
			} else {
				id = r.Config.NumDocs + uint32(rng.Intn(int(cfg.MaxDocID-r.Config.NumDocs)))
				touched = append(touched, id)
			}
			out = append(out, ChurnOp{Kind: ChurnAdd, DocID: id, Terms: r.sampleDocTerms(rng, cfg.MaxTermsPerDoc)})
		case f < cfg.AddFrac+cfg.DeleteFrac:
			var id uint32
			if len(touched) > 0 && rng.Float64() < 0.5 {
				id = touched[rng.Intn(len(touched))]
			} else {
				id = uint32(rng.Intn(int(cfg.MaxDocID)))
			}
			out = append(out, ChurnOp{Kind: ChurnDelete, DocID: id})
		default:
			out = append(out, ChurnOp{Kind: ChurnQuery, Query: queries[qi%len(queries)]})
			qi++
		}
	}
	return out
}

// sampleDocTerms draws 1..max distinct head-biased term names — the same
// skew the corpus itself has, so churned documents join real posting lists.
func (r *Real) sampleDocTerms(rng *xhash.RNG, max int) []string {
	k := 1 + int(rng.Intn(max))
	seen := map[int]bool{}
	out := make([]string, 0, k)
	for len(out) < k {
		// Quadratic bias towards low ranks (frequent terms).
		t := int(rng.Float64() * rng.Float64() * float64(len(r.Postings)))
		if t >= len(r.Postings) {
			t = len(r.Postings) - 1
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, TermName(t))
	}
	return out
}
