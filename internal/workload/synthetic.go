// Package workload generates the inputs behind every experiment in the
// paper's evaluation (Section 4):
//
//   - synthetic sets drawn uniformly from a universe Σ, with either a fixed
//     intersection size (Figures 4, 5, 8, the size-ratio sweep) or fully
//     independent draws (Figure 6), and
//   - a simulated "real" corpus + query workload standing in for the paper's
//     8M Wikipedia pages and 10⁴ Bing queries (Figures 7, 9, 12 and the
//     §4.1 real-data numbers). See realistic.go and DESIGN.md §2.5 for the
//     substitution rationale.
//
// All generators are deterministic given a seed.
package workload

import (
	"fmt"

	"fastintersect/internal/sets"
	"fastintersect/internal/xhash"
)

// DefaultUniverse matches the paper's synthetic universe [0, 2×10⁸].
const DefaultUniverse uint32 = 200_000_000

// Sampler draws distinct uniform elements from [0, universe) using a bitmap
// for rejection, so that sampling n elements costs O(n) expected time and
// universe/8 bytes which are reused across calls.
type Sampler struct {
	universe uint32
	used     *sets.Bitset
	rng      *xhash.RNG
}

// NewSampler creates a sampler over [0, universe).
func NewSampler(universe uint32, rng *xhash.RNG) *Sampler {
	if universe == 0 {
		panic("workload: empty universe")
	}
	return &Sampler{universe: universe, used: sets.NewBitset(universe), rng: rng}
}

// Reset forgets all previously drawn elements.
func (s *Sampler) Reset() { s.used.Reset() }

// Exclude marks the elements of set as already used, so subsequent Draw
// calls avoid them.
func (s *Sampler) Exclude(set []uint32) {
	for _, x := range set {
		s.used.Set(x)
	}
}

// Draw appends n fresh distinct elements (not drawn or excluded before) to
// dst and returns it. The result is NOT sorted. Draw panics if the universe
// is exhausted.
func (s *Sampler) Draw(dst []uint32, n int) []uint32 {
	for i := 0; i < n; i++ {
		for attempts := 0; ; attempts++ {
			if attempts > 1_000_000 {
				panic("workload: universe exhausted")
			}
			x := s.rng.Uint32() % s.universe
			if !s.used.Get(x) {
				s.used.Set(x)
				dst = append(dst, x)
				break
			}
		}
	}
	return dst
}

// PairWithIntersection generates two sorted sets with |a| = n1, |b| = n2 and
// |a ∩ b| exactly r, all elements uniform over [0, universe). This is the
// workload of Figures 4, 5 and 8 ("the size of the intersection is fixed at
// 1% of the list size") and of the size-ratio sweep.
func PairWithIntersection(universe uint32, n1, n2, r int, rng *xhash.RNG) (a, b []uint32) {
	if r > n1 || r > n2 {
		panic(fmt.Sprintf("workload: intersection %d larger than set sizes %d/%d", r, n1, n2))
	}
	if uint64(n1)+uint64(n2)-uint64(r) > uint64(universe) {
		panic("workload: universe too small for requested sizes")
	}
	s := NewSampler(universe, rng)
	core := s.Draw(make([]uint32, 0, r), r)
	a = append(make([]uint32, 0, n1), core...)
	a = s.Draw(a, n1-r) // fillers of a: distinct from core
	b = append(make([]uint32, 0, n2), core...)
	b = s.Draw(b, n2-r) // fillers of b: distinct from core AND from a's fillers
	sets.SortU32(a)
	sets.SortU32(b)
	return a, b
}

// KWithIntersection generates k sorted sets of the given sizes whose full
// intersection is exactly r and whose pairwise filler overlaps are empty
// (so each pairwise intersection is also exactly r). Used by the k-set
// variants of the controlled-intersection experiments.
func KWithIntersection(universe uint32, ns []int, r int, rng *xhash.RNG) [][]uint32 {
	total := uint64(r)
	for _, n := range ns {
		if r > n {
			panic("workload: intersection larger than a set")
		}
		total += uint64(n - r)
	}
	if total > uint64(universe) {
		panic("workload: universe too small")
	}
	s := NewSampler(universe, rng)
	core := s.Draw(make([]uint32, 0, r), r)
	out := make([][]uint32, len(ns))
	for i, n := range ns {
		set := append(make([]uint32, 0, n), core...)
		set = s.Draw(set, n-r)
		sets.SortU32(set)
		out[i] = set
	}
	return out
}

// RandomSets generates k independent sorted sets drawn uniformly from
// [0, universe) with no intersection control: the workload of Figure 6
// ("IDs in the sets being randomly generated using a uniform distribution
// over [0, 2×10⁸]").
func RandomSets(universe uint32, ns []int, rng *xhash.RNG) [][]uint32 {
	out := make([][]uint32, len(ns))
	s := NewSampler(universe, rng)
	for i, n := range ns {
		if uint64(n) > uint64(universe) {
			panic("workload: set larger than universe")
		}
		s.Reset()
		set := s.Draw(make([]uint32, 0, n), n)
		sets.SortU32(set)
		out[i] = set
	}
	return out
}
