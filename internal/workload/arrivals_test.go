package workload

import (
	"testing"
	"time"
)

func TestArrivalsRate(t *testing.T) {
	const n, qps = 10_000, 500.0
	a := Arrivals(n, qps, 42)
	if len(a) != n {
		t.Fatalf("len = %d, want %d", len(a), n)
	}
	for i := 1; i < n; i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, a[i], a[i-1])
		}
	}
	// The n-th arrival of a Poisson process at rate qps lands near n/qps;
	// with n=10k the relative error should be well inside 10%.
	want := time.Duration(float64(n) / qps * float64(time.Second))
	got := a[n-1]
	if got < want*9/10 || got > want*11/10 {
		t.Fatalf("last arrival %v, want %v ±10%%", got, want)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	a := Arrivals(100, 1000, 7)
	b := Arrivals(100, 1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := Arrivals(100, 1000, 8)
	if a[0] == c[0] && a[50] == c[50] && a[99] == c[99] {
		t.Fatal("different seeds produced an identical schedule")
	}
}

func TestArrivalsEmpty(t *testing.T) {
	if Arrivals(0, 100, 1) != nil || Arrivals(10, 0, 1) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}
