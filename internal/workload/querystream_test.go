package workload

import (
	"strings"
	"testing"
)

func TestQueryStreamDeterministicAndShaped(t *testing.T) {
	r := NewReal(RealConfig{
		NumDocs: 5_000, NumTerms: 500, NumQueries: 50,
		ZipfS: 0.7, TopDFFrac: 0.2, HotFrac: 0.08, HotWeight: 8, Seed: 1,
	})
	cfg := StreamConfig{OrFrac: 0.5, NotFrac: 0.5, Seed: 99}
	a := r.QueryStream(200, cfg)
	b := r.QueryStream(200, cfg)
	if len(a) != 200 {
		t.Fatalf("len = %d", len(a))
	}
	var ors, nots int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
		if strings.Contains(a[i], " OR ") {
			ors++
		}
		if strings.Contains(a[i], "NOT ") {
			nots++
		}
		if !strings.Contains(a[i], "AND") {
			t.Fatalf("query %q has no conjunction", a[i])
		}
	}
	// With 50% rates over 200 queries, both operators must show up often.
	if ors < 50 || nots < 50 {
		t.Fatalf("operator mix off: %d OR, %d NOT of 200", ors, nots)
	}
	// And a pure-conjunctive stream has neither.
	plain := r.QueryStream(50, StreamConfig{Seed: 3})
	for _, q := range plain {
		if strings.Contains(q, " OR ") || strings.Contains(q, "NOT ") {
			t.Fatalf("plain stream contains operator: %q", q)
		}
	}
}

func TestTermName(t *testing.T) {
	if TermName(0) != "t0" || TermName(123) != "t123" {
		t.Fatalf("TermName = %q, %q", TermName(0), TermName(123))
	}
}
