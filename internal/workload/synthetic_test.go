package workload

import (
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/xhash"
)

func TestSamplerDrawDistinct(t *testing.T) {
	rng := xhash.NewRNG(1)
	s := NewSampler(1000, rng)
	got := s.Draw(nil, 500)
	seen := map[uint32]bool{}
	for _, x := range got {
		if x >= 1000 {
			t.Fatalf("element %d outside universe", x)
		}
		if seen[x] {
			t.Fatalf("duplicate element %d", x)
		}
		seen[x] = true
	}
	more := s.Draw(nil, 400)
	for _, x := range more {
		if seen[x] {
			t.Fatalf("Draw repeated %d across calls", x)
		}
	}
}

func TestSamplerExclude(t *testing.T) {
	rng := xhash.NewRNG(2)
	s := NewSampler(64, rng)
	var excl []uint32
	for i := uint32(0); i < 32; i++ {
		excl = append(excl, i)
	}
	s.Exclude(excl)
	got := s.Draw(nil, 32)
	for _, x := range got {
		if x < 32 {
			t.Fatalf("drew excluded element %d", x)
		}
	}
}

func TestSamplerReset(t *testing.T) {
	rng := xhash.NewRNG(3)
	s := NewSampler(10, rng)
	s.Draw(nil, 10)
	s.Reset()
	got := s.Draw(nil, 10) // would panic without Reset
	if len(got) != 10 {
		t.Fatalf("drew %d elements after reset", len(got))
	}
}

func TestPairWithIntersectionExact(t *testing.T) {
	rng := xhash.NewRNG(4)
	for _, tc := range []struct{ n1, n2, r int }{
		{100, 100, 0},
		{100, 100, 1},
		{1000, 1000, 10},
		{50, 5000, 50},
		{1, 1, 1},
		{300, 300, 300},
	} {
		a, b := PairWithIntersection(100_000, tc.n1, tc.n2, tc.r, rng)
		if len(a) != tc.n1 || len(b) != tc.n2 {
			t.Fatalf("sizes %d/%d, want %d/%d", len(a), len(b), tc.n1, tc.n2)
		}
		if err := sets.Validate(a); err != nil {
			t.Fatalf("a invalid: %v", err)
		}
		if err := sets.Validate(b); err != nil {
			t.Fatalf("b invalid: %v", err)
		}
		if got := len(sets.IntersectReference(a, b)); got != tc.r {
			t.Fatalf("intersection %d, want %d (n1=%d n2=%d)", got, tc.r, tc.n1, tc.n2)
		}
	}
}

func TestPairWithIntersectionPanics(t *testing.T) {
	rng := xhash.NewRNG(5)
	defer func() {
		if recover() == nil {
			t.Fatal("r > n1 did not panic")
		}
	}()
	PairWithIntersection(1000, 5, 10, 6, rng)
}

func TestKWithIntersectionExact(t *testing.T) {
	rng := xhash.NewRNG(6)
	ls := KWithIntersection(1_000_000, []int{500, 700, 900, 1100}, 37, rng)
	if len(ls) != 4 {
		t.Fatalf("got %d sets", len(ls))
	}
	for i, l := range ls {
		if err := sets.Validate(l); err != nil {
			t.Fatalf("set %d invalid: %v", i, err)
		}
	}
	if got := len(sets.IntersectReference(ls...)); got != 37 {
		t.Fatalf("full intersection %d, want 37", got)
	}
	// Disjoint fillers ⇒ every pairwise intersection is exactly r too.
	if got := len(sets.IntersectReference(ls[0], ls[2])); got != 37 {
		t.Fatalf("pairwise intersection %d, want 37", got)
	}
}

func TestRandomSets(t *testing.T) {
	rng := xhash.NewRNG(7)
	ls := RandomSets(10_000, []int{100, 200, 300}, rng)
	for i, l := range ls {
		if len(l) != (i+1)*100 {
			t.Fatalf("set %d has size %d", i, len(l))
		}
		if err := sets.Validate(l); err != nil {
			t.Fatalf("set %d invalid: %v", i, err)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a1, b1 := PairWithIntersection(10_000, 100, 100, 5, xhash.NewRNG(42))
	a2, b2 := PairWithIntersection(10_000, 100, 100, 5, xhash.NewRNG(42))
	if !sets.Equal(a1, a2) || !sets.Equal(b1, b2) {
		t.Fatal("same seed produced different workloads")
	}
}
