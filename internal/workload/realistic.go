package workload

import (
	"math"
	"slices"
	"sort"

	"fastintersect/internal/sets"
	"fastintersect/internal/xhash"
)

// RealConfig parameterizes the simulated real-data workload that stands in
// for the paper's 8M-page Wikipedia corpus and 10⁴ most frequent Bing
// queries. The defaults of SmallRealConfig keep the full experiment suite
// fast; FullRealConfig approaches paper scale.
type RealConfig struct {
	NumDocs    uint32  // corpus size (paper: 8M)
	NumTerms   int     // vocabulary size
	NumQueries int     // workload size (paper: 10⁴)
	ZipfS      float64 // document-frequency skew: df(rank) ∝ rank^-s
	TopDFFrac  float64 // df of the most frequent term as a fraction of NumDocs
	HotFrac    float64 // fraction of "hot" documents (topicality proxy)
	HotWeight  int     // sampling weight of hot documents (≥1)
	Seed       uint64
}

// SmallRealConfig is the scaled-down default used by the default harness
// runs. The document-frequency tail is deliberately heavy (ZipfS < 1) so
// that query-head posting lists reach the cache-exceeding sizes that give
// the paper's real workload its character.
func SmallRealConfig() RealConfig {
	return RealConfig{
		NumDocs:    1_000_000,
		NumTerms:   50_000,
		NumQueries: 1_000,
		ZipfS:      0.7,
		TopDFFrac:  0.2,
		HotFrac:    0.08,
		HotWeight:  24,
		Seed:       0xC0FFEE,
	}
}

// FullRealConfig approaches the paper's scale (8M documents, 10⁴ queries).
func FullRealConfig() RealConfig {
	c := SmallRealConfig()
	c.NumDocs = 8_000_000
	c.NumTerms = 200_000
	c.NumQueries = 10_000
	c.ZipfS = 0.85 // keeps total posting volume within a few hundred MB
	return c
}

// Query is a list of term IDs, ordered by ascending document frequency
// (so Terms[0] is the rarest keyword, L1 in the paper's notation).
type Query struct {
	Terms []int
}

// Real is a simulated corpus plus query workload. Postings[t] is the sorted
// posting list of term t; terms are numbered by descending document
// frequency (term 0 is the most frequent).
type Real struct {
	Config   RealConfig
	Postings [][]uint32
	Queries  []Query
}

// NewReal builds the workload. Generation is deterministic in cfg.Seed.
func NewReal(cfg RealConfig) *Real {
	if cfg.HotWeight < 1 {
		cfg.HotWeight = 1
	}
	rng := xhash.NewRNG(cfg.Seed)
	r := &Real{Config: cfg}
	r.buildPostings(rng)
	r.buildQueries(rng)
	return r
}

// buildPostings creates Zipf-distributed posting lists with topical
// correlation: a fixed "hot" subset of documents is HotWeight times more
// likely to appear in any posting list, so frequent terms co-occur more
// than independence would predict — the property (small r relative to the
// smallest list, but far from zero) that the paper's real data exhibits.
func (r *Real) buildPostings(rng *xhash.RNG) {
	cfg := r.Config
	n := cfg.NumDocs
	// Weighted document pool: hot documents appear HotWeight times.
	hotCut := uint64(float64(n) * cfg.HotFrac)
	poolLen := 0
	for d := uint32(0); d < n; d++ {
		if isHot(d, n, hotCut) {
			poolLen += cfg.HotWeight
		} else {
			poolLen++
		}
	}
	pool := make([]uint32, 0, poolLen)
	for d := uint32(0); d < n; d++ {
		reps := 1
		if isHot(d, n, hotCut) {
			reps = cfg.HotWeight
		}
		for i := 0; i < reps; i++ {
			pool = append(pool, d)
		}
	}

	topDF := int(float64(n) * cfg.TopDFFrac)
	if topDF < 1 {
		topDF = 1
	}
	r.Postings = make([][]uint32, cfg.NumTerms)
	used := sets.NewBitset(n)
	for t := 0; t < cfg.NumTerms; t++ {
		df := int(float64(topDF) / math.Pow(float64(t+1), cfg.ZipfS))
		if df < 4 {
			df = 4
		}
		used.Reset()
		list := make([]uint32, 0, df)
		for len(list) < df {
			d := pool[rng.Intn(len(pool))]
			if !used.Get(d) {
				used.Set(d)
				list = append(list, d)
			}
		}
		sets.SortU32(list)
		r.Postings[t] = list
	}
}

// isHot reports whether document d belongs to the pseudo-random hot subset.
func isHot(d, n uint32, hotCut uint64) bool {
	return uint64(d)*2654435761%uint64(n) < hotCut
}

// kDistribution mirrors the paper's query-length mix: 68% 2-keyword,
// 23% 3-keyword, 6% 4-keyword, and the remaining 3% 5-keyword.
var kDistribution = []struct {
	k    int
	frac float64
}{
	{2, 0.68}, {3, 0.23}, {4, 0.06}, {5, 0.03},
}

// ratioTargets encode the paper's measured set-size ratios: for k-keyword
// queries, the df of the i-th rarest term relative to the most frequent
// term of the query. Derived from §4 "Query characteristics":
// k=2: |L1|/|L2| ≈ 0.21; k=3: |L1|/|L3| ≈ 0.09, |L1|/|L2| ≈ 0.31;
// k=4: |L1|/|L4| ≈ 0.06, |L1|/|L2| ≈ 0.36. k=5 extrapolates the pattern.
var ratioTargets = map[int][]float64{
	2: {0.21, 1},
	3: {0.09, 0.29, 1}, // 0.29 = 0.09/0.31
	4: {0.06, 0.167, 0.41, 1},
	5: {0.05, 0.12, 0.3, 0.6, 1},
}

func (r *Real) buildQueries(rng *xhash.RNG) {
	cfg := r.Config
	// dfs[t] = |posting list of t|; descending in t by construction.
	dfs := make([]int, len(r.Postings))
	for t, p := range r.Postings {
		dfs[t] = len(p)
	}
	// Band of "head" terms usable as the most frequent keyword of a query.
	headBand := len(r.Postings) / 50
	if headBand < 4 {
		headBand = 4
	}
	r.Queries = make([]Query, 0, cfg.NumQueries)
	for len(r.Queries) < cfg.NumQueries {
		k := pickK(rng)
		// Real query terms are heavily biased towards frequent words:
		// sample the head rank log-uniformly so low ranks (big posting
		// lists) dominate, which drives the paper's r/|L1| ≈ 0.19.
		top := int(math.Exp(rng.Float64() * math.Log(float64(headBand))))
		if top >= headBand {
			top = headBand - 1
		}
		top-- // exp(0) = 1 → rank 0
		if top < 0 {
			top = 0
		}
		targets := ratioTargets[k]
		terms := make([]int, 0, k)
		seen := map[int]bool{top: true}
		ok := true
		for i := 0; i < k-1; i++ {
			want := float64(dfs[top]) * targets[i] * jitter(rng)
			t := findTermByDF(dfs, want)
			// Resolve collisions by nudging towards rarer terms.
			for seen[t] && t < len(dfs)-1 {
				t++
			}
			if seen[t] {
				ok = false
				break
			}
			seen[t] = true
			terms = append(terms, t)
		}
		if !ok {
			continue
		}
		terms = append(terms, top)
		slices.SortFunc(terms, func(a, b int) int { return dfs[a] - dfs[b] })
		r.Queries = append(r.Queries, Query{Terms: terms})
	}
}

// pickK draws a query length from kDistribution.
func pickK(rng *xhash.RNG) int {
	f := rng.Float64()
	acc := 0.0
	for _, e := range kDistribution {
		acc += e.frac
		if f < acc {
			return e.k
		}
	}
	return kDistribution[len(kDistribution)-1].k
}

// jitter returns a lognormal-ish multiplicative noise term around 1.
func jitter(rng *xhash.RNG) float64 {
	return math.Exp(0.3 * (rng.Float64()*2 - 1))
}

// findTermByDF returns the term whose df is closest to want; dfs must be
// non-increasing.
func findTermByDF(dfs []int, want float64) int {
	i := sort.Search(len(dfs), func(i int) bool { return float64(dfs[i]) <= want })
	if i == 0 {
		return 0
	}
	if i >= len(dfs) {
		return len(dfs) - 1
	}
	// dfs[i-1] > want ≥ dfs[i]: pick the closer.
	if float64(dfs[i-1])-want < want-float64(dfs[i]) {
		return i - 1
	}
	return i
}

// Lists returns the posting lists of q, smallest first.
func (r *Real) Lists(q Query) [][]uint32 {
	out := make([][]uint32, len(q.Terms))
	for i, t := range q.Terms {
		out[i] = r.Postings[t]
	}
	return out
}

// Stats summarizes the workload the way §4 "Query characteristics" does,
// so EXPERIMENTS.md can compare simulated against reported statistics.
type Stats struct {
	QueriesByK      map[int]int
	AvgRatioL1L2    map[int]float64 // per k: avg |L1|/|L2|
	AvgRatioL1Lk    map[int]float64 // per k: avg |L1|/|Lk|
	AvgInterOverL1  float64         // avg r/|L1|
	Frac10xSmaller  float64         // fraction of queries with r ≤ min df / 10  (intro: 94%)
	Frac100xSmaller float64         // fraction of queries with r ≤ min df / 100 (intro: 76%)
}

// ComputeStats measures the workload. It runs full intersections for every
// query, so it is O(total posting volume) — fine at the small scale, a few
// seconds at full scale.
func (r *Real) ComputeStats() Stats {
	st := Stats{
		QueriesByK:   map[int]int{},
		AvgRatioL1L2: map[int]float64{},
		AvgRatioL1Lk: map[int]float64{},
	}
	sum12 := map[int]float64{}
	sum1k := map[int]float64{}
	var sumROverL1 float64
	var n10, n100 int
	for _, q := range r.Queries {
		lists := r.Lists(q)
		k := len(lists)
		st.QueriesByK[k]++
		n1 := float64(len(lists[0]))
		sum12[k] += n1 / float64(len(lists[1]))
		sum1k[k] += n1 / float64(len(lists[k-1]))
		inter := sets.IntersectReference(lists...)
		rsz := float64(len(inter))
		sumROverL1 += rsz / n1
		if rsz*10 <= n1 {
			n10++
		}
		if rsz*100 <= n1 {
			n100++
		}
	}
	for k, c := range st.QueriesByK {
		st.AvgRatioL1L2[k] = sum12[k] / float64(c)
		st.AvgRatioL1Lk[k] = sum1k[k] / float64(c)
	}
	total := float64(len(r.Queries))
	st.AvgInterOverL1 = sumROverL1 / total
	st.Frac10xSmaller = float64(n10) / total
	st.Frac100xSmaller = float64(n100) / total
	return st
}
