// Package race exposes whether the race detector is compiled in. The
// allocation-regression tests consult it: under -race, sync.Pool
// deliberately drops a fraction of Puts to widen the interleaving space,
// so pool-backed zero-allocation guarantees cannot hold and the
// assertions are skipped (CI runs the alloc tests in a separate non-race
// step to keep them enforced).
package race

// Enabled reports whether the binary was built with -race.
const Enabled = enabled
