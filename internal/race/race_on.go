//go:build race

package race

const enabled = true
