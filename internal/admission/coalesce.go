package admission

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"fastintersect/internal/obs"
)

// Singleflight coalescing of identical in-flight queries: under a hot-key
// burst (a trending query hitting every frontend at once) the engine should
// run the query once and every concurrent duplicate should share that
// execution's result. The key is (canonical query form, index generation) —
// canonicalization makes syntactic variants of one query collapse, and the
// generation component keeps a coalesced result from leaking across a
// mutation boundary: a query admitted after a delta publish never attaches
// to an execution planned against the previous index state.

// Key identifies one coalescable execution.
type Key struct {
	Canon string // canonical (normalized) query text
	Gen   uint64 // index generation the execution is planned against
}

// Coalescer deduplicates concurrent executions by Key. The zero value is
// not usable; NewCoalescer wires the shared-execution counter into an obs
// registry.
type Coalescer[V any] struct {
	mu        sync.Mutex
	inflight  map[Key]*call[V]
	coalesced atomic.Uint64
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCoalescer builds a Coalescer and registers fsi_coalesced_queries_total
// (executions avoided by attaching to an in-flight duplicate) in reg; nil
// reg registers into a private registry.
func NewCoalescer[V any](reg *obs.Registry) *Coalescer[V] {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coalescer[V]{inflight: map[Key]*call[V]{}}
	reg.CounterFunc("fsi_coalesced_queries_total",
		"Queries that shared an identical in-flight execution instead of running.",
		c.coalesced.Load)
	return c
}

// Do executes fn under singleflight semantics: the first caller for k (the
// leader) runs fn and every concurrent caller with the same k (a follower)
// blocks until the leader finishes, then receives the same value and error.
// shared reports whether this caller was a follower. A follower whose ctx
// expires first returns ctx.Err() without disturbing the leader.
//
// A panic in fn is converted into an error delivered to leader and
// followers alike — a poisoned query must not wedge its waiters.
func (c *Coalescer[V]) Do(ctx context.Context, k Key, fn func() (V, error)) (v V, shared bool, err error) {
	c.mu.Lock()
	if cl, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-cl.done:
			return cl.val, true, cl.err
		case <-ctx.Done():
			return v, true, ctx.Err()
		}
	}
	cl := &call[V]{done: make(chan struct{})}
	c.inflight[k] = cl
	c.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			cl.err = fmt.Errorf("admission: coalesced execution panicked: %v", r)
			err = cl.err
		}
		// Remove the entry before waking followers so a caller arriving
		// after completion starts a fresh execution rather than reading a
		// stale result.
		c.mu.Lock()
		delete(c.inflight, k)
		c.mu.Unlock()
		close(cl.done)
	}()
	cl.val, cl.err = fn()
	return cl.val, false, cl.err
}
