package admission

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastintersect/internal/obs"
	"fastintersect/internal/race"
)

func TestGateFastPath(t *testing.T) {
	g := NewGate(Config{MaxInflight: 2}, nil)
	tk, err := g.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if st := g.Stats(); st.Accepted != 1 || st.Inflight != 1 {
		t.Fatalf("stats = %+v, want accepted=1 inflight=1", st)
	}
	g.Release(tk)
	if st := g.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight after release = %d, want 0", st.Inflight)
	}
}

func TestGateQueueFull(t *testing.T) {
	g := NewGate(Config{MaxInflight: 1, QueueDepth: -1}, nil) // negative = no queue
	tk, err := g.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if _, err := g.Acquire(context.Background(), ""); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second Acquire err = %v, want ErrQueueFull", err)
	}
	if st := g.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	g.Release(tk)
}

func TestGateQueueTimeout(t *testing.T) {
	g := NewGate(Config{MaxInflight: 1, QueueDepth: 4}, nil)
	// Crush the service-time estimate so deadline feasibility passes and the
	// request really queues.
	g.srvNs.Store(1)
	tk, err := g.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx, ""); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued Acquire err = %v, want ErrQueueTimeout", err)
	}
	g.Release(tk)
}

func TestGateDeadlineInfeasible(t *testing.T) {
	g := NewGate(Config{MaxInflight: 1, QueueDepth: 4}, nil)
	g.srvNs.Store(int64(time.Second)) // queue wait estimate: ~1s per queued slot
	tk, err := g.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx, ""); !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("Acquire err = %v, want ErrDeadlineInfeasible", err)
	}
	if st := g.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	g.Release(tk)
}

func TestGateQuota(t *testing.T) {
	g := NewGate(Config{MaxInflight: 8, ClientQPS: 1, ClientBurst: 2}, nil)
	for i := 0; i < 2; i++ {
		tk, err := g.Acquire(context.Background(), "10.0.0.1")
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		g.Release(tk)
	}
	if _, err := g.Acquire(context.Background(), "10.0.0.1"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota Acquire err = %v, want ErrQuotaExceeded", err)
	}
	// A different client has its own bucket.
	tk, err := g.Acquire(context.Background(), "10.0.0.2")
	if err != nil {
		t.Fatalf("other-client Acquire: %v", err)
	}
	g.Release(tk)
	// The empty client key is unmetered.
	tk, err = g.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("unmetered Acquire: %v", err)
	}
	g.Release(tk)
}

func TestGateQuotaRefill(t *testing.T) {
	g := NewGate(Config{MaxInflight: 8, ClientQPS: 1000, ClientBurst: 1}, nil)
	tk, err := g.Acquire(context.Background(), "c")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	g.Release(tk)
	if _, err := g.Acquire(context.Background(), "c"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want immediate ErrQuotaExceeded, got %v", err)
	}
	time.Sleep(5 * time.Millisecond) // 1000 qps refills a token in 1ms
	tk, err = g.Acquire(context.Background(), "c")
	if err != nil {
		t.Fatalf("post-refill Acquire: %v", err)
	}
	g.Release(tk)
}

func TestGateDrain(t *testing.T) {
	g := NewGate(Config{MaxInflight: 2, QueueDepth: 4}, nil)
	tk, err := g.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		done <- g.Drain(ctx)
	}()
	// New work is shed once draining starts. The flag is set by the drain
	// goroutine, so acquisitions racing ahead of it may still succeed —
	// release those and retry until the flag lands.
	deadline := time.Now().Add(time.Second)
	for {
		tk2, err := g.Acquire(context.Background(), "")
		if errors.Is(err, ErrDraining) {
			break
		}
		if err == nil {
			g.Release(tk2)
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain flag never observed; last err %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	g.Release(tk)
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := g.Stats(); st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("post-drain stats = %+v", st)
	}
}

// TestGateAccounting hammers the gate concurrently and checks the invariant
// the saturation harness relies on: every Acquire outcome is counted, so
// accepted + rejected + shed = offered.
func TestGateAccounting(t *testing.T) {
	g := NewGate(Config{MaxInflight: 2, QueueDepth: 2}, nil)
	const workers, per = 8, 200
	var offered atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				offered.Add(1)
				tk, err := g.Acquire(ctx, "")
				if err == nil {
					time.Sleep(50 * time.Microsecond)
					g.Release(tk)
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	if got := st.Accepted + st.Rejected + st.Shed; got != offered.Load() {
		t.Fatalf("accepted(%d)+rejected(%d)+shed(%d) = %d, want offered %d",
			st.Accepted, st.Rejected, st.Shed, got, offered.Load())
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
}

func TestGateMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(Config{MaxInflight: 1}, reg)
	tk, _ := g.Acquire(context.Background(), "")
	g.Release(tk)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"fsi_admission_accepted_total 1",
		`fsi_admission_rejected_total{reason="quota"} 0`,
		`fsi_admission_shed_total{reason="queue_full"} 0`,
		"fsi_inflight 0",
		"fsi_queue_wait_seconds_count 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}

// TestGateAcquireAllocs guards the acceptance criterion that the admission
// fast path adds zero steady-state allocations.
func TestGateAcquireAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation bounds are not meaningful under -race")
	}
	g := NewGate(Config{MaxInflight: 4}, nil)
	ctx := context.Background()
	avg := testing.AllocsPerRun(1000, func() {
		tk, err := g.Acquire(ctx, "")
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		g.Release(tk)
	})
	if avg != 0 {
		t.Fatalf("Acquire/Release allocs = %.1f, want 0", avg)
	}
}

func TestCoalescerSharesResult(t *testing.T) {
	c := NewCoalescer[int](nil)
	release := make(chan struct{})
	started := make(chan struct{})
	var execs atomic.Int32
	var wg sync.WaitGroup
	results := make([]int, 8)
	sharedN := atomic.Int32{}

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := c.Do(context.Background(), Key{"a AND b", 1}, func() (int, error) {
			close(started)
			<-release
			execs.Add(1)
			return 42, nil
		})
		if err != nil || shared {
			t.Errorf("leader: v=%d shared=%v err=%v", v, shared, err)
		}
		results[0] = v
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := c.Do(context.Background(), Key{"a AND b", 1}, func() (int, error) {
				execs.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			if shared {
				sharedN.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Give followers a moment to attach, then let the leader finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %d, want 42", i, v)
		}
	}
	if execs.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", execs.Load())
	}
	if sharedN.Load() == 0 {
		t.Fatal("no follower reported shared=true")
	}
}

func TestCoalescerSharesError(t *testing.T) {
	c := NewCoalescer[int](nil)
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errs[0] = c.Do(context.Background(), Key{"q", 7}, func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
	}()
	<-started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(context.Background(), Key{"q", 7}, func() (int, error) { return 0, boom })
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("errs[%d] = %v, want boom", i, err)
		}
	}
}

func TestCoalescerFollowerCancel(t *testing.T) {
	c := NewCoalescer[int](nil)
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), Key{"q", 1}, func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, shared, err := c.Do(ctx, Key{"q", 1}, func() (int, error) { return 1, nil })
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower: shared=%v err=%v, want shared cancel", shared, err)
	}
	close(release)
}

func TestCoalescerPanic(t *testing.T) {
	c := NewCoalescer[int](nil)
	_, _, err := c.Do(context.Background(), Key{"q", 1}, func() (int, error) { panic("kernel bug") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic conversion", err)
	}
	// The entry must be gone: a fresh Do runs fn again.
	v, shared, err := c.Do(context.Background(), Key{"q", 1}, func() (int, error) { return 5, nil })
	if v != 5 || shared || err != nil {
		t.Fatalf("post-panic Do = (%d, %v, %v), want fresh execution", v, shared, err)
	}
}

func TestCoalescerGenerationsDistinct(t *testing.T) {
	c := NewCoalescer[int](nil)
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), Key{"q", 1}, func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	// Same canonical text, newer generation: must NOT coalesce.
	v, shared, err := c.Do(context.Background(), Key{"q", 2}, func() (int, error) { return 2, nil })
	if v != 2 || shared || err != nil {
		t.Fatalf("cross-generation Do = (%d, %v, %v), want independent execution", v, shared, err)
	}
	close(release)
}
