// Package admission is the serving tier's overload-control layer: a bounded
// inflight gate with a deadline-aware wait queue, per-client token-bucket
// quotas, and singleflight coalescing of identical in-flight queries
// (coalesce.go). It sits between the HTTP handlers and the engine so that
// under saturation the process sheds excess load with cheap 429/503
// responses instead of queueing unboundedly and collapsing: the queries it
// does accept keep their latency budget, and everything it turns away is
// counted per reason in the obs registry.
//
// The pipeline for one request is
//
//	quota (per-client token bucket) → deadline feasibility → inflight gate
//
// and every exit is classified as accepted, rejected (the client's fault:
// over quota, or a deadline too short to ever be met) or shed (the server's
// fault: queue full, queue timeout, draining). Rejected work should be
// retried after backoff; shed work signals the server is at capacity.
//
// The uncontended fast path — tokens available, no queue — is a handful of
// atomic operations and zero allocations; Ticket is a plain value and the
// gate never allocates per request.
package admission

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fastintersect/internal/obs"
)

// Sentinel errors returned by Gate.Acquire, each mapped to one reason label
// on the admission counters. Quota and deadline failures are rejections
// (HTTP 429 / 503 with Retry-After); queue and drain failures are sheds
// (503 with Retry-After).
var (
	// ErrQuotaExceeded: the per-client token bucket is empty.
	ErrQuotaExceeded = errors.New("admission: client quota exceeded")
	// ErrDeadlineInfeasible: the estimated queue wait already exceeds the
	// request's remaining deadline budget, so queueing it would only burn a
	// queue slot to produce a timeout.
	ErrDeadlineInfeasible = errors.New("admission: deadline shorter than estimated queue wait")
	// ErrQueueFull: the wait queue is at -queue-depth capacity.
	ErrQueueFull = errors.New("admission: queue full")
	// ErrQueueTimeout: the request's context expired while queued.
	ErrQueueTimeout = errors.New("admission: deadline expired while queued")
	// ErrDraining: the gate is shutting down and admits no new work.
	ErrDraining = errors.New("admission: draining")
)

// Config sizes a Gate. The zero value is usable: every field has a
// CPU-derived or permissive default.
type Config struct {
	// MaxInflight bounds concurrently executing requests (0 = 2×GOMAXPROCS).
	MaxInflight int
	// QueueDepth bounds requests waiting for an inflight slot
	// (0 = 4×MaxInflight, negative = no queue: shed immediately when full).
	QueueDepth int
	// ClientQPS is the per-client token-bucket refill rate (0 = no quotas).
	ClientQPS float64
	// ClientBurst is the bucket capacity (0 = max(1, 2×ClientQPS)).
	ClientBurst float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxInflight <= 0 {
		out.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	switch {
	case out.QueueDepth == 0:
		out.QueueDepth = 4 * out.MaxInflight
	case out.QueueDepth < 0:
		out.QueueDepth = 0
	}
	if out.ClientQPS > 0 && out.ClientBurst <= 0 {
		out.ClientBurst = max(1, 2*out.ClientQPS)
	}
	return out
}

// Ticket is the proof of admission returned by Acquire. It is a plain value
// (no allocation); pass it back to Release exactly once when the request
// finishes.
type Ticket struct {
	start int64 // admission time, ns (monotonic base via time.Since at Release)
}

// Gate is the bounded-inflight admission gate. One Gate serves one engine;
// all methods are safe for concurrent use.
type Gate struct {
	cfg Config

	sem    chan struct{} // inflight slots; len(sem) = current inflight
	queued atomic.Int64  // requests blocked in Acquire waiting for a slot

	// srvNs is an EWMA of observed service time (Acquire→Release), the basis
	// of the queue-wait estimate deadline feasibility uses. Seeded at 1ms so
	// the first requests have a sane estimate.
	srvNs atomic.Int64

	draining atomic.Bool

	epoch time.Time // base for Ticket.start (avoids storing a time.Time per ticket)

	accepted       atomic.Uint64
	rejectQuota    atomic.Uint64
	rejectDeadline atomic.Uint64
	shedQueueFull  atomic.Uint64
	shedTimeout    atomic.Uint64
	shedDraining   atomic.Uint64

	queueWait *obs.Histogram

	quota quotaTable
}

// NewGate builds a Gate and registers its metrics — the
// fsi_admission_{accepted,rejected,shed}_total counters (reason-labelled),
// the fsi_inflight gauge and the fsi_queue_wait_seconds histogram — in reg.
// A nil reg registers into a private registry (tests, harness runs that
// only read Stats).
func NewGate(cfg Config, reg *obs.Registry) *Gate {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := cfg.withDefaults()
	g := &Gate{
		cfg:   c,
		sem:   make(chan struct{}, c.MaxInflight),
		epoch: time.Now(),
	}
	g.srvNs.Store(int64(time.Millisecond))
	g.quota.init(c.ClientQPS, c.ClientBurst)

	reg.CounterFunc(`fsi_admission_accepted_total`,
		"Requests admitted past the gate.", g.accepted.Load)
	reg.CounterFunc(`fsi_admission_rejected_total{reason="quota"}`,
		"Requests rejected by admission control, by reason.", g.rejectQuota.Load)
	reg.CounterFunc(`fsi_admission_rejected_total{reason="deadline"}`, "", g.rejectDeadline.Load)
	reg.CounterFunc(`fsi_admission_shed_total{reason="queue_full"}`,
		"Requests shed under overload, by reason.", g.shedQueueFull.Load)
	reg.CounterFunc(`fsi_admission_shed_total{reason="queue_timeout"}`, "", g.shedTimeout.Load)
	reg.CounterFunc(`fsi_admission_shed_total{reason="draining"}`, "", g.shedDraining.Load)
	reg.GaugeFunc("fsi_inflight", "Requests currently executing past the admission gate.",
		func() float64 { return float64(len(g.sem)) })
	g.queueWait = reg.Histogram("fsi_queue_wait_seconds",
		"Time requests spent queued for an inflight slot (queued acquisitions only).")
	return g
}

// Acquire runs the admission pipeline for one request. client is the quota
// key ("" = unmetered). On success the returned Ticket must be Released;
// on error the request was not admitted and the error identifies the
// counter it was charged to (see the sentinel errors above).
//
// The fast path — quota ok, a free inflight slot — takes no locks beyond
// the quota shard and performs zero allocations.
func (g *Gate) Acquire(ctx context.Context, client string) (Ticket, error) {
	if g.draining.Load() {
		g.shedDraining.Add(1)
		return Ticket{}, ErrDraining
	}
	if !g.quota.allow(client) {
		g.rejectQuota.Add(1)
		return Ticket{}, ErrQuotaExceeded
	}

	// Fast path: a slot is free right now.
	select {
	case g.sem <- struct{}{}:
		g.accepted.Add(1)
		return Ticket{start: int64(time.Since(g.epoch))}, nil
	default:
	}

	// Slow path: we would have to queue. Check feasibility first — if the
	// expected wait already exceeds the remaining budget, failing now is
	// strictly better than timing out in the queue later.
	if dl, ok := ctx.Deadline(); ok {
		if est := g.estimateWait(); est > time.Until(dl) {
			g.rejectDeadline.Add(1)
			return Ticket{}, ErrDeadlineInfeasible
		}
	}
	if g.queued.Add(1) > int64(g.cfg.QueueDepth) {
		g.queued.Add(-1)
		g.shedQueueFull.Add(1)
		return Ticket{}, ErrQueueFull
	}
	enq := time.Now()
	select {
	case g.sem <- struct{}{}:
		g.queued.Add(-1)
		g.queueWait.Observe(time.Since(enq))
		if g.draining.Load() {
			// Drain raced with our dequeue: give the slot back.
			<-g.sem
			g.shedDraining.Add(1)
			return Ticket{}, ErrDraining
		}
		g.accepted.Add(1)
		return Ticket{start: int64(time.Since(g.epoch))}, nil
	case <-ctx.Done():
		g.queued.Add(-1)
		g.queueWait.Observe(time.Since(enq))
		g.shedTimeout.Add(1)
		return Ticket{}, ErrQueueTimeout
	}
}

// Release returns t's inflight slot and folds its service time into the
// queue-wait estimator. Call exactly once per successful Acquire.
func (g *Gate) Release(t Ticket) {
	dur := int64(time.Since(g.epoch)) - t.start
	if dur > 0 {
		// EWMA with α = 1/8, lock-free.
		for {
			old := g.srvNs.Load()
			nw := old + (dur-old)/8
			if g.srvNs.CompareAndSwap(old, nw) {
				break
			}
		}
	}
	<-g.sem
}

// estimateWait predicts how long a request enqueued now would wait for a
// slot: its queue position divided by the gate's drain rate
// (MaxInflight slots each turning over every srvNs).
func (g *Gate) estimateWait() time.Duration {
	pos := g.queued.Load() + 1 // this request would queue behind the current queue
	srv := g.srvNs.Load()
	return time.Duration(pos * srv / int64(g.cfg.MaxInflight))
}

// Drain flips the gate into shutdown mode — new Acquires shed with
// ErrDraining — and waits until every admitted request has Released (or ctx
// expires). Queued requests are shed as they surface. Used by fsiserve's
// graceful shutdown before the HTTP server itself stops.
func (g *Gate) Drain(ctx context.Context) error {
	g.draining.Store(true)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if g.queued.Load() == 0 && len(g.sem) == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Stats is a point-in-time snapshot of the gate's accounting, used by the
// harness to verify accepted + rejected + shed = offered.
type Stats struct {
	Accepted uint64
	Rejected uint64 // quota + deadline
	Shed     uint64 // queue_full + queue_timeout + draining
	Inflight int
	Queued   int64
}

// Stats returns the gate's current accounting snapshot.
func (g *Gate) Stats() Stats {
	return Stats{
		Accepted: g.accepted.Load(),
		Rejected: g.rejectQuota.Load() + g.rejectDeadline.Load(),
		Shed:     g.shedQueueFull.Load() + g.shedTimeout.Load() + g.shedDraining.Load(),
		Inflight: len(g.sem),
		Queued:   g.queued.Load(),
	}
}

// quotaTable is the per-client token-bucket map. A plain mutex-guarded map:
// quota checks are one lock + a few float ops, and the serving tier's client
// cardinality is modest. The table resets itself when it outgrows
// quotaMaxClients so an address-churning client population cannot grow it
// without bound.
type quotaTable struct {
	qps, burst float64
	mu         sync.Mutex
	m          map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

const quotaMaxClients = 1 << 16

func (q *quotaTable) init(qps, burst float64) {
	q.qps, q.burst = qps, burst
	if qps > 0 {
		q.m = make(map[string]*bucket)
	}
}

// allow takes one token from client's bucket, refilling it for elapsed time
// first. Unmetered gates (qps == 0) and the empty client key always pass.
func (q *quotaTable) allow(client string) bool {
	if q.qps <= 0 || client == "" {
		return true
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.m[client]
	if b == nil {
		if len(q.m) >= quotaMaxClients {
			q.m = make(map[string]*bucket)
		}
		b = &bucket{tokens: q.burst, last: now}
		q.m[client] = b
	} else {
		b.tokens = min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.qps)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
