package engine

import (
	"fmt"
	"sync"
	"testing"

	"fastintersect/internal/compress"
	"fastintersect/internal/invindex"
	"fastintersect/internal/race"
	"fastintersect/internal/sets"
)

// TestOrTenWay verifies the k-way union satellite at the engine level: a
// 10-operand OR must equal the reference union of its posting lists, under
// both storage modes and both shard shapes.
func TestOrTenWay(t *testing.T) {
	const numDocs = 5000
	q := "m2 OR m3 OR m4 OR m5 OR m6 OR m7 OR m8 OR m9 OR m10 OR m11"
	want := refEval(numDocs, func(d uint32) bool {
		for k := uint32(2); k <= 11; k++ {
			if d%k == 0 {
				return true
			}
		}
		return false
	})
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, shards := range []int{1, 4} {
			e := buildTestEngine(t, Config{Shards: shards, Storage: st}, numDocs)
			res, err := e.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sets.Equal(res.Docs, want) {
				t.Fatalf("storage=%v shards=%d: 10-way OR returned %d docs, want %d",
					st, shards, len(res.Docs), len(want))
			}
		}
	}
}

// TestEmptyConjunctionWithCompositeKid pins the fix for a planner bug: a
// conjunction whose term operands intersect to empty must stay empty, not
// adopt a composite kid's result as if no term base existed. (The empty
// base used to be returned as nil, which the kid-adoption test mistook for
// "no base operands" — and whether the kernel returned nil or a non-nil
// empty slice depended on pool warmth, so results flipped with traffic.)
func TestEmptyConjunctionWithCompositeKid(t *testing.T) {
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(st.String(), func(t *testing.T) {
			e := New(Config{Shards: 1, Storage: st})
			b := e.NewBuilder()
			for term, docs := range map[string][]uint32{
				"a": {1, 3, 5}, // disjoint from b
				"b": {2, 4, 6},
				"c": {1, 2},
				"d": {3, 4},
			} {
				if err := b.AddPosting(term, docs); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Install(b); err != nil {
				t.Fatal(err)
			}
			for q, want := range map[string][]uint32{
				"a AND b AND (c OR d)":  nil, // empty base ∧ composite kid
				"a AND c AND (c OR d)":  {1}, // non-empty base ∧ composite kid
				"(a OR b) AND (c OR d)": {1, 2, 3, 4},
			} {
				res, err := e.Query(q)
				if err != nil {
					t.Fatalf("Query(%q): %v", q, err)
				}
				if !sets.Equal(res.Docs, want) {
					t.Fatalf("Query(%q) = %v, want %v", q, res.Docs, want)
				}
			}
		})
	}
}

// TestQueryAllocs pins the engine's per-query allocation budget so pooling
// regressions surface as test failures. The bounds are deliberately above
// the measured steady state (roughly 2× headroom) — parsing, the goroutine
// fan-out and the fresh result slice legitimately allocate — but far below
// the pre-ExecContext numbers (≈70 allocs/op on the mixed workload), so a
// layer that starts allocating per operand or per group again will trip
// them. (CHANGES.md/CI: this is the engine layer's AllocsPerRun guard; the
// core, compress and API layers have their own.)
func TestQueryAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; the allocation bounds cannot hold")
	}
	const numDocs = 20_000
	cases := []struct {
		name    string
		storage invindex.Storage
		shards  int
		query   string
		count   bool // QueryCount instead of Query
		max     float64
	}{
		{"raw-and-1shard", invindex.StorageRaw, 1, "m2 AND m3", false, 30},
		{"raw-mixed-1shard", invindex.StorageRaw, 1, "(m2 AND m3) OR m11 AND NOT m13", false, 60},
		{"raw-and-4shard", invindex.StorageRaw, 4, "m2 AND m3", false, 70},
		{"compressed-and-1shard", invindex.StorageCompressed, 1, "m2 AND m3", false, 30},
		{"compressed-mixed-1shard", invindex.StorageCompressed, 1, "(m2 AND m3) OR m11 AND NOT m13", false, 60},
		{"compressed-and-4shard", invindex.StorageCompressed, 4, "m2 AND m3", false, 70},
		// The m2/m3/m4 lists are dense enough to store as bitseg, so this
		// pins the word-parallel k-way kernel end to end: stored bitmaps in,
		// zero kernel-side allocations, same budget as the scalar paths.
		{"bitseg-kway-1shard", invindex.StorageCompressed, 1, "m2 AND m3 AND m4", false, 30},
		// Count-only fast path: skips the merged-result copy entirely, so it
		// must fit the same budget as (in the multi-shard case: a tighter
		// budget than) the materializing query.
		{"count-raw-and-1shard", invindex.StorageRaw, 1, "m2 AND m3", true, 30},
		{"count-raw-and-4shard", invindex.StorageRaw, 4, "m2 AND m3", true, 60},
		{"count-compressed-and-1shard", invindex.StorageCompressed, 1, "m2 AND m3", true, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := buildTestEngine(t, Config{Shards: tc.shards, Storage: tc.storage}, numDocs)
			if tc.name == "bitseg-kway-1shard" {
				if enc, ok := e.snapshot()[0].base.Encoding("m2"); !ok || enc != compress.EncBitseg {
					t.Fatalf("m2 encoding = %v, %v; the bitseg case needs bitseg-backed lists", enc, ok)
				}
			}
			run := e.Query
			if tc.count {
				run = e.QueryCount
			}
			for i := 0; i < 5; i++ { // warm pools
				if _, err := run(tc.query); err != nil {
					t.Fatal(err)
				}
			}
			var err error
			n := testing.AllocsPerRun(50, func() {
				_, err = run(tc.query)
			})
			if err != nil {
				t.Fatal(err)
			}
			if n > tc.max {
				t.Fatalf("Query(%q) allocates %.1f times per op, want ≤ %v", tc.query, n, tc.max)
			}
		})
	}
}

// TestQueryCachedAllocs pins the cache-hit path: a repeated query touches
// only the parser and the LRU.
func TestQueryCachedAllocs(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 64}, 10_000)
	const q = "m2 AND m3 AND NOT m5"
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	var err error
	n := testing.AllocsPerRun(50, func() {
		_, err = e.Query(q)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n > 35 {
		t.Fatalf("cached Query allocates %.1f times per op, want ≤ 35", n)
	}
}

// TestConcurrentQueryPoolingIntegrity is the result-cache safety check
// under pooling: many goroutines hammer the same engine with overlapping
// queries (cache enabled, so returned slices are shared between queries
// and with the LRU) while another goroutine repeatedly rebuilds the index
// with identical data. If any returned or cached slice aliased a pooled
// buffer that got recycled into a concurrent query, results would corrupt;
// every result is checked against the independently derived expectation.
// Run under -race in CI.
func TestConcurrentQueryPoolingIntegrity(t *testing.T) {
	const numDocs = 8000
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(st.String(), func(t *testing.T) {
			e := buildTestEngine(t, Config{Shards: 4, CacheSize: 8, Storage: st}, numDocs)
			type expectation struct {
				q    string
				want []uint32
			}
			var exps []expectation
			for _, tq := range testQueries {
				if tq.pred == nil {
					continue
				}
				exps = append(exps, expectation{tq.q, refEval(numDocs, tq.pred)})
			}
			stop := make(chan struct{})
			var rebuildWG sync.WaitGroup
			rebuildWG.Add(1)
			go func() {
				defer rebuildWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					b := e.NewBuilder()
					for d := uint32(0); d < numDocs; d++ {
						terms := []string{"all"}
						for k := uint32(2); k <= 13; k++ {
							if d%k == 0 {
								terms = append(terms, fmt.Sprintf("m%d", k))
							}
						}
						if d%97 == 0 {
							terms = append(terms, "rare")
						}
						if err := b.Add(d, terms); err != nil {
							t.Error(err)
							return
						}
					}
					if err := e.Install(b); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						exp := exps[(g+i)%len(exps)]
						res, err := e.Query(exp.q)
						if err != nil {
							t.Errorf("Query(%q): %v", exp.q, err)
							return
						}
						if !sets.Equal(res.Docs, exp.want) {
							t.Errorf("goroutine %d iter %d: Query(%q) returned %d docs, want %d — pooled buffer corruption?",
								g, i, exp.q, len(res.Docs), len(exp.want))
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			rebuildWG.Wait()
		})
	}
}
