package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

// The planner property test: random AND/OR/NOT trees over random corpora,
// driven through the physical planner under every storage mode, shard
// shape, order/kernel policy and with/without delta-segment churn, checked
// against a naive per-document reference evaluator. This is the
// end-to-end guard that cost-based planning is a pure optimization: no
// choice of kernel, operand order or stored strategy may change results.

// propCorpus is a randomized corpus with an independent membership oracle.
type propCorpus struct {
	numDocs uint32
	terms   []string
	has     map[uint32]map[string]bool // doc → term set (live docs only)
}

// genPropCorpus draws term probabilities spanning four orders of magnitude
// so the planner sees dense, sparse and empty-ish lists (hitting every
// stored encoding and both sides of every kernel crossover).
func genPropCorpus(rng *rand.Rand, numDocs uint32, numTerms int) *propCorpus {
	c := &propCorpus{numDocs: numDocs, has: map[uint32]map[string]bool{}}
	probs := make([]float64, numTerms)
	for i := range probs {
		c.terms = append(c.terms, fmt.Sprintf("t%d", i))
		probs[i] = []float64{0.9, 0.3, 0.05, 0.005}[i%4] * (0.5 + rng.Float64())
	}
	for d := uint32(0); d < numDocs; d++ {
		doc := map[string]bool{}
		for i, term := range c.terms {
			if rng.Float64() < probs[i] {
				doc[term] = true
			}
		}
		if len(doc) == 0 {
			doc[c.terms[rng.Intn(len(c.terms))]] = true
		}
		c.has[d] = doc
	}
	return c
}

// genTree produces a random bounded query: NOT only ever appears as a
// direct operand of a conjunction that has a positive operand.
func genTree(rng *rand.Rand, c *propCorpus, depth int) string {
	term := func() string { return c.terms[rng.Intn(len(c.terms))] }
	if depth <= 0 || rng.Float64() < 0.35 {
		return term()
	}
	kids := make([]string, 2+rng.Intn(2))
	for i := range kids {
		kids[i] = genTree(rng, c, depth-1)
	}
	if rng.Float64() < 0.55 {
		q := strings.Join(kids, " AND ")
		for rng.Float64() < 0.3 {
			q += " AND NOT " + term()
		}
		return "(" + q + ")"
	}
	return "(" + strings.Join(kids, " OR ") + ")"
}

// refQuery evaluates q per document against the oracle.
func (c *propCorpus) refQuery(t *testing.T, q string) []uint32 {
	t.Helper()
	n, err := plan.Parse(q)
	if err != nil {
		t.Fatalf("reference Parse(%q): %v", q, err)
	}
	var eval func(n plan.Node, doc map[string]bool) bool
	eval = func(n plan.Node, doc map[string]bool) bool {
		switch n := n.(type) {
		case plan.Term:
			return doc[string(n)]
		case plan.Not:
			return !eval(n.Kid, doc)
		case plan.And:
			for _, k := range n.Kids {
				if !eval(k, doc) {
					return false
				}
			}
			return true
		case plan.Or:
			for _, k := range n.Kids {
				if eval(k, doc) {
					return true
				}
			}
			return false
		}
		return false
	}
	var out []uint32
	for d := uint32(0); d < c.numDocs; d++ {
		if doc, live := c.has[d]; live && eval(n, doc) {
			out = append(out, d)
		}
	}
	return out
}

// install builds an engine over the corpus.
func (c *propCorpus) install(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	b := e.NewBuilder()
	for d := uint32(0); d < c.numDocs; d++ {
		var terms []string
		for term := range c.has[d] {
			terms = append(terms, term)
		}
		if err := b.Add(d, terms); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	return e
}

// churn mutates both the engine and the oracle: some documents get fresh
// term sets (delta wins over the base copy), some die (tombstones), some
// brand-new ones appear — so queries traverse base, delta and tombstone
// paths at once.
func (c *propCorpus) churn(t *testing.T, rng *rand.Rand, e *Engine) {
	t.Helper()
	for i := 0; i < 60; i++ {
		d := uint32(rng.Intn(int(c.numDocs) + 40))
		switch {
		case rng.Float64() < 0.3:
			if _, err := e.DeleteDocument(d); err != nil {
				t.Fatal(err)
			}
			delete(c.has, d)
		default:
			doc := map[string]bool{}
			for len(doc) == 0 {
				for _, term := range c.terms {
					if rng.Float64() < 0.2 {
						doc[term] = true
					}
				}
			}
			terms := make([]string, 0, len(doc))
			for term := range doc {
				terms = append(terms, term)
			}
			if err := e.AddDocument(d, terms); err != nil {
				t.Fatal(err)
			}
			c.has[d] = doc
			if d >= c.numDocs {
				c.numDocs = d + 1
			}
		}
	}
}

func TestPlanPropertyRandomTrees(t *testing.T) {
	policies := []plan.Policy{
		{}, // cost-based default
		{Order: plan.OrderDF, Kernels: plan.KernelsHeuristic},
		{Order: plan.OrderWorst, Kernels: plan.KernelsHeuristic},
	}
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		corpus := genPropCorpus(rng, 1500+uint32(rng.Intn(1500)), 12)
		queries := make([]string, 24)
		for i := range queries {
			queries[i] = genTree(rng, corpus, 3)
		}
		for _, storage := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
			for _, shards := range []int{1, 3} {
				for pi, pol := range policies {
					for _, withDelta := range []bool{false, true} {
						// The oracle mutates with the engine, so each
						// (engine, delta) pair gets its own corpus copy.
						cc := corpus.clone()
						e := cc.install(t, Config{Shards: shards, Storage: storage, PlanPolicy: pol})
						if withDelta {
							cc.churn(t, rng, e)
						}
						for _, q := range queries {
							want := cc.refQuery(t, q)
							res, err := e.Query(q)
							if err != nil {
								t.Fatalf("trial=%d storage=%v shards=%d policy=%d delta=%v: Query(%q): %v",
									trial, storage, shards, pi, withDelta, q, err)
							}
							if !sets.Equal(res.Docs, want) {
								t.Fatalf("trial=%d storage=%v shards=%d policy=%d delta=%v: Query(%q) = %d docs, want %d",
									trial, storage, shards, pi, withDelta, q, len(res.Docs), len(want))
							}
						}
					}
				}
			}
		}
	}
}

func (c *propCorpus) clone() *propCorpus {
	cc := &propCorpus{numDocs: c.numDocs, terms: c.terms, has: make(map[uint32]map[string]bool, len(c.has))}
	for d, doc := range c.has {
		nd := make(map[string]bool, len(doc))
		for term := range doc {
			nd[term] = true
		}
		cc.has[d] = nd
	}
	return cc
}

// TestQueryBatch checks batch execution against individual queries: shared
// canonical forms collapse to one result, parse errors stay positional, and
// every batch result matches its Query twin.
func TestQueryBatch(t *testing.T) {
	const numDocs = 10_000
	for _, storage := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(storage.String(), func(t *testing.T) {
			e := buildTestEngine(t, Config{Shards: 3, Storage: storage, CacheSize: 64}, numDocs)
			queries := []string{
				"m2 AND m3",
				"m3 AND m2", // same canonical form as above
				"m5 OR (m2 AND m7)",
				"NOT m2", // parse error: unbounded
				"all AND NOT m2",
				"m2 AND m3", // literal duplicate
			}
			batch := e.QueryBatch(queries)
			if len(batch) != len(queries) {
				t.Fatalf("QueryBatch returned %d results for %d queries", len(batch), len(queries))
			}
			for i, q := range queries {
				want, wantErr := e.Query(q)
				got := batch[i]
				if (wantErr == nil) != (got.Err == nil) {
					t.Fatalf("query %d %q: batch err %v, Query err %v", i, q, got.Err, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if !sets.Equal(got.Result.Docs, want.Docs) {
					t.Errorf("query %d %q: batch %d docs, Query %d docs", i, q, len(got.Result.Docs), len(want.Docs))
				}
			}
			// Commuted conjunctions share one canonical form — and one result.
			if batch[0].Result != batch[1].Result || batch[0].Result != batch[5].Result {
				t.Error("queries sharing a canonical form did not share one batch result")
			}
		})
	}
}

// TestQueryBatchLargeMemo crosses the decode memo's linear-scan threshold:
// a single-shard compressed batch touching 3× memoScanLimit distinct
// encoded terms must keep returning correct results once lookups go
// through the map index.
func TestQueryBatchLargeMemo(t *testing.T) {
	const terms = 3 * memoScanLimit
	e := New(Config{Shards: 1, Storage: invindex.StorageCompressed})
	b := e.NewBuilder()
	want := make(map[string][]uint32, terms)
	for ti := 0; ti < terms; ti++ {
		term := fmt.Sprintf("w%03d", ti)
		docs := make([]uint32, 0, 100+ti)
		for d := uint32(0); d < uint32(100+ti); d++ {
			docs = append(docs, d*uint32(ti+2))
		}
		want[term] = docs
		if err := b.AddPosting(term, docs); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	queries := make([]string, 0, terms)
	for ti := 0; ti < terms; ti++ {
		// OR of a term with itself under different spellings forces the
		// memoized decode path (a term outside a kernel pushdown).
		queries = append(queries, fmt.Sprintf("w%03d OR (w%03d AND w%03d)", ti, ti, ti))
	}
	for _, br := range e.QueryBatch(queries) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		term := br.Result.Normalized
		if !sets.Equal(br.Result.Docs, want[term]) {
			t.Fatalf("term %s: %d docs, want %d", term, len(br.Result.Docs), len(want[term]))
		}
	}
}

// TestQueryBatchNotBuilt pins the per-query error shape before Install.
func TestQueryBatchNotBuilt(t *testing.T) {
	e := New(Config{})
	batch := e.QueryBatch([]string{"a", "bad ) query"})
	if batch[0].Err != ErrNotBuilt {
		t.Errorf("batch[0].Err = %v, want ErrNotBuilt", batch[0].Err)
	}
	if batch[1].Err == nil {
		t.Error("batch[1] parse error lost")
	}
}

// TestExplainEngine checks the engine surface: the rendering names the
// executed kernel, reflects the df-ordered operands, and cache hits still
// explain (rebuilt against current statistics).
func TestExplainEngine(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 16}, 10_000)
	res, expl, err := e.Explain("m2 AND rare AND NOT m3")
	if err != nil {
		t.Fatal(err)
	}
	want := refEval(10_000, func(d uint32) bool { return d%2 == 0 && d%97 == 0 && d%3 != 0 })
	if !sets.Equal(res.Docs, want) {
		t.Fatalf("Explain result %d docs, want %d", len(res.Docs), len(want))
	}
	for _, frag := range []string{"AND kernel=", "term rare", "term m2", "NOT term m3"} {
		if !strings.Contains(expl, frag) {
			t.Errorf("explain missing %q:\n%s", frag, expl)
		}
	}
	// rare (df≈103) must be ordered before m2 (df=5000).
	if strings.Index(expl, "term rare") > strings.Index(expl, "term m2") {
		t.Errorf("operands not cost-ordered:\n%s", expl)
	}
	res2, expl2, err := e.Explain("m2 AND rare AND NOT m3")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("second Explain not served from cache")
	}
	if expl2 == "" {
		t.Error("cache hit suppressed the plan rendering")
	}
}
