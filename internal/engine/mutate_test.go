package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// refModel is the first-principles mutable corpus the segmented engine is
// checked against: a plain map of live documents evaluated by scanning.
type refModel struct {
	docs map[uint32]map[string]bool
}

func newRefModel() *refModel { return &refModel{docs: map[uint32]map[string]bool{}} }

func (m *refModel) add(id uint32, terms []string) {
	set := map[string]bool{}
	for _, t := range terms {
		if t != "" {
			set[t] = true
		}
	}
	m.docs[id] = set
}

func (m *refModel) del(id uint32) { delete(m.docs, id) }

// eval answers a conjunction of positive terms with optional negated ones.
func (m *refModel) eval(pos, neg []string) []uint32 {
	var out []uint32
	for id, terms := range m.docs {
		ok := true
		for _, t := range pos {
			if !terms[t] {
				ok = false
				break
			}
		}
		for _, t := range neg {
			if terms[t] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	sets.SortU32(out)
	return out
}

func installRef(t *testing.T, e *Engine, m *refModel) {
	t.Helper()
	b := e.NewBuilder()
	for id, terms := range m.docs {
		list := make([]string, 0, len(terms))
		for term := range terms {
			list = append(list, term)
		}
		if err := b.Add(id, list); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
}

// TestAddDocumentVisibleWithoutRebuild is the headline acceptance test: a
// document added via AddDocument answers queries immediately; a deleted one
// disappears, including from previously cached results; re-adding a deleted
// document resurrects it; updating a document drops its stale terms.
func TestAddDocumentVisibleWithoutRebuild(t *testing.T) {
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v-%dshard", st, shards), func(t *testing.T) {
				e := New(Config{Shards: shards, CacheSize: 32, Storage: st})
				m := newRefModel()
				for d := uint32(0); d < 500; d++ {
					terms := []string{"all"}
					if d%2 == 0 {
						terms = append(terms, "even")
					}
					m.add(d, terms)
				}
				installRef(t, e, m)

				// Warm the cache with the queries we will re-check.
				for _, q := range []string{"even", "all AND even", "all AND NOT even", "fresh"} {
					if _, err := e.Query(q); err != nil {
						t.Fatal(err)
					}
				}

				check := func(q string, pos, neg []string) {
					t.Helper()
					res, err := e.Query(q)
					if err != nil {
						t.Fatalf("Query(%q): %v", q, err)
					}
					if want := m.eval(pos, neg); !sets.Equal(res.Docs, want) {
						t.Fatalf("Query(%q) = %d docs %v, want %d docs %v",
							q, len(res.Docs), head(res.Docs), len(want), head(want))
					}
				}

				// Add a brand-new document: visible without a rebuild, and
				// the warmed cache entries must not be served stale.
				if err := e.AddDocument(1000, []string{"all", "even", "fresh"}); err != nil {
					t.Fatal(err)
				}
				m.add(1000, []string{"all", "even", "fresh"})
				check("fresh", []string{"fresh"}, nil)
				check("even", []string{"even"}, nil)
				check("all AND even", []string{"all", "even"}, nil)

				// Delete a base document: it disappears, including from the
				// cached "even" result.
				if was, err := e.DeleteDocument(42); err != nil || !was {
					t.Fatalf("DeleteDocument(42) = %v, %v", was, err)
				}
				m.del(42)
				check("even", []string{"even"}, nil)
				check("all AND NOT even", []string{"all"}, []string{"even"})

				// Delete the delta document too.
				if was, err := e.DeleteDocument(1000); err != nil || !was {
					t.Fatalf("DeleteDocument(1000) = %v, %v", was, err)
				}
				m.del(1000)
				check("fresh", []string{"fresh"}, nil)

				// Re-add a deleted base document with DIFFERENT terms: the
				// stale term must not match, the new one must.
				if err := e.AddDocument(42, []string{"all", "odd-now"}); err != nil {
					t.Fatal(err)
				}
				m.add(42, []string{"all", "odd-now"})
				check("even", []string{"even"}, nil)
				check("odd-now", []string{"odd-now"}, nil)
				check("all", []string{"all"}, nil)

				// Deleting a never-indexed document reports false.
				if was, err := e.DeleteDocument(99999); err != nil || was {
					t.Fatalf("DeleteDocument(unknown) = %v, %v", was, err)
				}
			})
		}
	}
}

// TestAddDocumentNoTerms pins ErrNoTerms: a term list that is empty after
// dedup must be rejected rather than create an unreachable "live" document
// (which would silently drop out of the doc count at the next compaction).
func TestAddDocumentNoTerms(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2}, 100)
	before := e.Stats()
	for _, terms := range [][]string{nil, {}, {""}, {"", ""}} {
		if err := e.AddDocument(7, terms); err != ErrNoTerms {
			t.Fatalf("AddDocument(%q) err = %v, want ErrNoTerms", terms, err)
		}
	}
	after := e.Stats()
	if after.Docs != before.Docs || after.Mutations != 0 || after.Generation != before.Generation {
		t.Fatalf("rejected adds changed state: %+v → %+v", before, after)
	}
}

// TestMutateBeforeInstall pins the ErrNotBuilt contract of the mutation API.
func TestMutateBeforeInstall(t *testing.T) {
	e := New(Config{Shards: 2})
	if err := e.AddDocument(1, []string{"a"}); err != ErrNotBuilt {
		t.Fatalf("AddDocument err = %v", err)
	}
	if _, err := e.DeleteDocument(1); err != ErrNotBuilt {
		t.Fatalf("DeleteDocument err = %v", err)
	}
	if err := e.Compact(); err != ErrNotBuilt {
		t.Fatalf("Compact err = %v", err)
	}
}

// TestChurnMatchesReference interleaves adds, deletes and queries over both
// storage modes and checks every query against the scan-based reference —
// with a compaction forced mid-stream so results are validated across the
// base swap as well (raw and compressed storage must agree with the
// reference under identical churn).
func TestChurnMatchesReference(t *testing.T) {
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(st.String(), func(t *testing.T) {
			e := New(Config{Shards: 3, CacheSize: 64, Storage: st})
			m := newRefModel()
			rng := xhash.NewRNG(0xC0DE)
			vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
			sampleTerms := func() []string {
				n := 1 + int(rng.Intn(4))
				out := make([]string, 0, n)
				for len(out) < n {
					out = append(out, vocab[rng.Intn(len(vocab))])
				}
				return out
			}
			for d := uint32(0); d < 800; d++ {
				m.add(d, sampleTerms())
			}
			installRef(t, e, m)

			queries := []struct {
				q        string
				pos, neg []string
			}{
				{"a", []string{"a"}, nil},
				{"a AND b", []string{"a", "b"}, nil},
				{"c AND d AND e", []string{"c", "d", "e"}, nil},
				{"a AND NOT b", []string{"a"}, []string{"b"}},
				{"f AND NOT g AND NOT h", []string{"f"}, []string{"g", "h"}},
			}
			checkAll := func(step string) {
				t.Helper()
				for _, tc := range queries {
					res, err := e.Query(tc.q)
					if err != nil {
						t.Fatalf("%s: Query(%q): %v", step, tc.q, err)
					}
					if want := m.eval(tc.pos, tc.neg); !sets.Equal(res.Docs, want) {
						t.Fatalf("%s: Query(%q) = %d docs, want %d", step, tc.q, len(res.Docs), len(want))
					}
				}
			}

			nextID := uint32(800)
			for step := 0; step < 600; step++ {
				switch r := rng.Float64(); {
				case r < 0.40: // add a new document
					terms := sampleTerms()
					if err := e.AddDocument(nextID, terms); err != nil {
						t.Fatal(err)
					}
					m.add(nextID, terms)
					nextID++
				case r < 0.55: // update an existing document
					id := uint32(rng.Intn(int(nextID)))
					terms := sampleTerms()
					if err := e.AddDocument(id, terms); err != nil {
						t.Fatal(err)
					}
					m.add(id, terms)
				case r < 0.75: // delete (possibly already gone)
					id := uint32(rng.Intn(int(nextID)))
					_, inRef := m.docs[id]
					was, err := e.DeleteDocument(id)
					if err != nil {
						t.Fatal(err)
					}
					if was != inRef {
						t.Fatalf("DeleteDocument(%d) visible=%v, reference says %v", id, was, inRef)
					}
					m.del(id)
				default:
					checkAll(fmt.Sprintf("step %d", step))
				}
				if step == 300 {
					if err := e.Compact(); err != nil {
						t.Fatalf("mid-stream Compact: %v", err)
					}
					checkAll("post-compaction")
					st := e.Stats()
					if st.Compactions == 0 {
						t.Fatal("Compact did not run")
					}
				}
			}
			checkAll("final")

			// Compact everything away and re-check: the folded base must
			// answer identically with empty deltas and no tombstones.
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			if st.Delta.Docs != 0 || st.Delta.Postings != 0 || st.Delta.Tombstones != 0 {
				t.Fatalf("after full compaction: delta = %+v", st.Delta)
			}
			if int(st.Docs) != len(m.docs) {
				t.Fatalf("Docs = %d, reference holds %d live docs", st.Docs, len(m.docs))
			}
			checkAll("post-final-compaction")
		})
	}
}

// TestAutoCompaction checks the CompactThreshold trigger: enough mutations
// must eventually fold the deltas into the base in the background, without
// changing any result.
func TestAutoCompaction(t *testing.T) {
	e := New(Config{Shards: 2, CompactThreshold: 64})
	m := newRefModel()
	for d := uint32(0); d < 200; d++ {
		m.add(d, []string{"all"})
	}
	installRef(t, e, m)
	for d := uint32(200); d < 1200; d++ {
		if err := e.AddDocument(d, []string{"all", "new"}); err != nil {
			t.Fatal(err)
		}
		m.add(d, []string{"all", "new"})
	}
	// Background compactions are asynchronous; drain them, then fold any
	// remaining tail synchronously.
	waitForIdleCompaction(t, e)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran despite threshold: %+v", st)
	}
	if st.Delta.Docs != 0 || st.Delta.Tombstones != 0 {
		t.Fatalf("deltas not drained: %+v", st.Delta)
	}
	res, err := e.Query("new")
	if err != nil {
		t.Fatal(err)
	}
	if want := m.eval([]string{"new"}, nil); !sets.Equal(res.Docs, want) {
		t.Fatalf("post-compaction result wrong: %d docs, want %d", len(res.Docs), len(want))
	}
	if int(st.Docs) != len(m.docs) {
		t.Fatalf("Docs = %d, want %d", st.Docs, len(m.docs))
	}
}

// waitForIdleCompaction blocks until no shard has an in-flight compaction.
func waitForIdleCompaction(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e.Stats().Delta.CompactingShards == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("compactions did not drain")
}

// TestStatsDocsDistinct is the regression test for the doc over-count bug:
// a document added twice through the builder (e.g. re-fed by a loader) must
// be counted once, through both the Add and AddPosting ingest paths.
func TestStatsDocsDistinct(t *testing.T) {
	e := New(Config{Shards: 2})
	b := e.NewBuilder()
	for _, add := range []struct {
		id    uint32
		terms []string
	}{
		{1, []string{"x"}},
		{2, []string{"x", "y"}},
		{2, []string{"y", "z"}}, // duplicate add of doc 2
		{3, []string{"z"}},
	} {
		if err := b.Add(add.id, add.terms); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Docs != 3 {
		t.Fatalf("Docs = %d, want 3 (distinct)", st.Docs)
	}

	// Term-major ingest: the same three documents via posting lists.
	e2 := New(Config{Shards: 2})
	b2 := e2.NewBuilder()
	for term, ids := range map[string][]uint32{
		"x": {1, 2}, "y": {2}, "z": {2, 3},
	} {
		if err := b2.AddPosting(term, ids); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Install(b2); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.Docs != 3 {
		t.Fatalf("AddPosting Docs = %d, want 3 (distinct)", st.Docs)
	}
}

// TestInstallShardCountMismatch is the regression test for the silent
// cross-engine install: a builder with a different shard count (or storage)
// must be rejected, since shardOf routing depends on the installed count.
func TestInstallShardCountMismatch(t *testing.T) {
	e2 := New(Config{Shards: 2})
	e4 := New(Config{Shards: 4})
	b := e2.NewBuilder()
	if err := b.Add(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := e4.Install(b); err == nil || !strings.Contains(err.Error(), "2-shard builder") {
		t.Fatalf("Install accepted a mismatched builder: err = %v", err)
	}
	if _, err := e4.Query("a"); err != ErrNotBuilt {
		t.Fatalf("mismatched Install left an index behind: %v", err)
	}

	eraw := New(Config{Shards: 2})
	ecomp := New(Config{Shards: 2, Storage: invindex.StorageCompressed})
	bc := ecomp.NewBuilder()
	if err := bc.Add(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := eraw.Install(bc); err == nil {
		t.Fatal("Install accepted a mismatched-storage builder")
	}
}

// TestDeltaTermConcurrentWithAdds is the regression test for a data race:
// a query answered purely from the delta segment used to return an alias of
// the live delta posting list past the shard lock, which a concurrent
// AddDocument could shift in place mid-copy. Queries hammer a delta-only
// term while adds keep inserting smaller docIDs into that same term; run
// under -race (CI churn smoke), and every result must be a valid set.
func TestDeltaTermConcurrentWithAdds(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 1, CacheSize: 0}, 100)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Insert descending docIDs so every add copy-shifts the whole
		// delta-only posting list.
		for id := uint32(100_000); id > 90_000; id-- {
			select {
			case <-done:
				return
			default:
			}
			if err := e.AddDocument(id, []string{"deltaonly"}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		res, err := e.Query("deltaonly")
		if err != nil {
			t.Fatal(err)
		}
		if err := sets.Validate(res.Docs); err != nil {
			t.Fatalf("iter %d: corrupted delta result: %v", i, err)
		}
	}
	close(done)
	wg.Wait()
}

// TestMergeKeepsMidMergeMutationsExact pins the merge-swap tombstone
// handoff: the merge reads its victims off-lock against tombstone SNAPSHOTS,
// so a delete or overwrite landing between the snapshot and the swap only
// tombstones the victim — the swap must re-apply exactly those post-snapshot
// tombstones to the merged segment, or the merge would resurrect the
// documents.
func TestMergeKeepsMidMergeMutationsExact(t *testing.T) {
	e := New(Config{Shards: 1})
	b := e.NewBuilder()
	if err := b.Add(0, []string{"base"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	// Two frozen segments holding docs 1 and 2.
	for _, id := range []uint32{1, 2} {
		if err := e.AddDocument(id, []string{"a"}); err != nil {
			t.Fatal(err)
		}
		if err := e.FreezeActive(); err != nil {
			t.Fatal(err)
		}
	}
	s := e.snapshot()[0]
	s.mu.Lock()
	s.compacting = true
	victims, snaps := s.pickMergeLocked(1)
	s.mu.Unlock()
	if len(victims) != 2 {
		t.Fatalf("pickMergeLocked chose %d victims, want 2", len(victims))
	}
	// Mid-merge: delete doc 1 and overwrite doc 2 (both live in victims).
	if ok, err := e.DeleteDocument(1); err != nil || !ok {
		t.Fatalf("DeleteDocument(1) = %v, %v", ok, err)
	}
	if err := e.AddDocument(2, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	e.mergeSegments(s, victims, snaps)

	s.mu.RLock()
	frozen, live := len(s.frozen), s.liveLocked()
	s.mu.RUnlock()
	if frozen != 1 {
		t.Fatalf("frozen tier has %d segments after merge, want 1", frozen)
	}
	if live != 2 { // base doc 0 + rewritten doc 2
		t.Fatalf("live = %d after merge, want 2", live)
	}
	res, err := e.Query("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 0 {
		t.Fatalf(`Query("a") = %v, want empty (1 deleted, 2 rewritten mid-merge)`, res.Docs)
	}
	res, err = e.Query("c")
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(res.Docs, []uint32{2}) {
		t.Fatalf(`Query("c") = %v, want [2]`, res.Docs)
	}
}

// TestCompactSkipsNoopShards pins the no-op compaction guard: with an empty
// active segment, an empty frozen tier and no tombstones, Compact must not
// rebuild anything (no compaction counted, no stats-epoch bump — a bump
// would needlessly invalidate every memoized plan).
func TestCompactSkipsNoopShards(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2}, 500)
	before := e.Stats()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Compactions != before.Compactions {
		t.Fatalf("Compact on a clean engine ran %d compactions, want 0",
			after.Compactions-before.Compactions)
	}
	if after.StatsEpoch != before.StatsEpoch {
		t.Fatalf("Compact on a clean engine bumped the stats epoch %d → %d",
			before.StatsEpoch, after.StatsEpoch)
	}
	if after.CompactionBytes != before.CompactionBytes {
		t.Fatalf("Compact on a clean engine wrote %d bytes, want 0",
			after.CompactionBytes-before.CompactionBytes)
	}
	// And once there is real work, Compact does run.
	if err := e.AddDocument(1_000_000, []string{"fresh"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Compactions; got != before.Compactions+1 {
		t.Fatalf("Compactions = %d after one real compaction, want %d", got, before.Compactions+1)
	}
}

// TestMutationAfterInstallLandsInNewShards pins the retired-shard
// handshake: a mutation routed through a shard-set snapshot taken before an
// Install must not land in the discarded shards — Install marks them
// retired before the swap, and lockShard re-snapshots. (A mutation that
// fully applies before the swap is legitimately superseded by the install;
// the bug this guards against is acknowledging one into a shard set that
// will never serve another query.)
func TestMutationAfterInstallLandsInNewShards(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2}, 50)
	old := e.snapshot()
	b := e.NewBuilder()
	for d := uint32(0); d < 50; d++ {
		if err := b.Add(d, []string{"all"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	for i, s := range old {
		s.mu.RLock()
		retired := s.retired
		s.mu.RUnlock()
		if !retired {
			t.Fatalf("old shard %d not retired by Install", i)
		}
	}
	// The mutation path must resolve to the freshly installed shard.
	const id = 4242
	s, err := e.lockShard(id)
	if err != nil {
		t.Fatal(err)
	}
	cur := e.snapshot()
	if s != cur[shardOf(id, len(cur))] {
		t.Fatal("lockShard returned a shard outside the current set")
	}
	s.mu.Unlock()
	if err := e.AddDocument(id, []string{"fresh"}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Contains(res.Docs, id) {
		t.Fatalf("post-install add not visible: %v", res.Docs)
	}
}

// TestEngineConcurrentChurn is the race acceptance test for the mutable
// tier: queries, adds, deletes and compactions all run concurrently against
// one engine. Results are checked for internal sanity (sorted, within the
// docID space); exact result checking under concurrent mutation is
// inherently racy, so full equivalence is covered by the serialized
// TestChurnMatchesReference. Run under -race in CI ("churn smoke").
func TestEngineConcurrentChurn(t *testing.T) {
	const maxDoc = 4000
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(st.String(), func(t *testing.T) {
			e := New(Config{Shards: 4, CacheSize: 32, Storage: st, CompactThreshold: 256})
			b := e.NewBuilder()
			for d := uint32(0); d < maxDoc/2; d++ {
				terms := []string{"all"}
				if d%2 == 0 {
					terms = append(terms, "even")
				}
				if d%3 == 0 {
					terms = append(terms, "third")
				}
				if err := b.Add(d, terms); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Install(b); err != nil {
				t.Fatal(err)
			}
			stream := workload.NewReal(workload.RealConfig{
				NumDocs: maxDoc / 2, NumTerms: 64, NumQueries: 32,
				ZipfS: 0.7, TopDFFrac: 0.5, HotFrac: 0.1, HotWeight: 4, Seed: 0xBEEF,
			}).ChurnStream(2000, workload.ChurnConfig{
				AddFrac: 0.3, DeleteFrac: 0.15, MaxDocID: maxDoc, Seed: 0xBEEF,
			})
			var next atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(stream) {
							return
						}
						op := stream[i]
						switch op.Kind {
						case workload.ChurnAdd:
							if err := e.AddDocument(op.DocID, op.Terms); err != nil {
								t.Errorf("AddDocument: %v", err)
								return
							}
						case workload.ChurnDelete:
							if _, err := e.DeleteDocument(op.DocID); err != nil {
								t.Errorf("DeleteDocument: %v", err)
								return
							}
						default:
							res, err := e.Query(op.Query)
							if err != nil {
								t.Errorf("Query(%q): %v", op.Query, err)
								return
							}
							if err := sets.Validate(res.Docs); err != nil {
								t.Errorf("Query(%q) returned a non-set: %v", op.Query, err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			waitForIdleCompaction(t, e)
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			if st.Mutations == 0 {
				t.Fatal("no mutations recorded")
			}
			if st.Delta.Docs != 0 || st.Delta.Tombstones != 0 {
				t.Fatalf("deltas not drained: %+v", st.Delta)
			}
		})
	}
}
