package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"fastintersect/internal/compress"
	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
)

// TestPlansRepriceAfterCompaction is the regression test for the stats-epoch
// bug: compaction can re-encode a shard's lists (a sparse term going dense
// flips from a gap code to bitseg), but before the epoch existed nothing
// invalidated memoized plans, so a hot query kept its stale shapes and
// decode decisions forever. The sequence below drives exactly that
// transition and pins that the swap forces a re-plan.
func TestPlansRepriceAfterCompaction(t *testing.T) {
	const numDocs = 8192
	e := New(Config{Shards: 1, Storage: invindex.StorageCompressed}) // CacheSize 0: every query reaches the planner
	b := e.NewBuilder()
	// Sparse phase: "hot"/"warm" on every 64th doc — a density the encoder
	// gives a gap code.
	for d := uint32(0); d < numDocs; d += 64 {
		if err := b.Add(d, []string{"hot", "warm"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	base := func() *invindex.Index { return e.snapshot()[0].base }
	if enc, ok := base().Encoding("hot"); !ok || enc == compress.EncBitseg {
		t.Fatalf("sparse phase encoding = %v, %v; want a non-bitseg encoding", enc, ok)
	}

	const q = "hot AND warm"
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if h, m := e.met.planHits.Value(), e.met.planMisses.Value(); h != 1 || m != 1 {
		t.Fatalf("after two queries: plan hits=%d misses=%d, want 1/1", h, m)
	}

	// Dense phase: fill in every remaining doc, then compact so the delta
	// folds into a fresh base and the lists re-encode.
	for d := uint32(0); d < numDocs; d++ {
		if d%64 == 0 {
			continue
		}
		if err := e.AddDocument(d, []string{"hot", "warm"}); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := e.Stats().StatsEpoch
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.StatsEpoch <= epochBefore {
		t.Fatalf("stats epoch did not advance across compaction: %d -> %d", epochBefore, st.StatsEpoch)
	}
	if enc, ok := base().Encoding("hot"); !ok || enc != compress.EncBitseg {
		t.Fatalf("dense phase encoding = %v, %v; want EncBitseg (compaction re-encoded the list)", enc, ok)
	}

	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.met.planMisses.Value() != 2 {
		t.Fatalf("plan misses = %d after the swap, want 2 (stale plan must be rebuilt)", e.met.planMisses.Value())
	}
	if len(res.Docs) != numDocs {
		t.Fatalf("post-compaction result has %d docs, want %d", len(res.Docs), numDocs)
	}
	// The rebuilt plan is memoized against the new epoch like any other.
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if e.met.planHits.Value() != 2 {
		t.Fatalf("plan hits = %d, want 2 (rebuilt plan re-memoized)", e.met.planHits.Value())
	}
}

// TestPlanCacheInvalidatedByInstall pins the other representation-change
// path: installing a rebuilt index must also force re-planning.
func TestPlanCacheInvalidatedByInstall(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2}, 4000)
	const q = "m2 AND m3"
	for i := 0; i < 2; i++ {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	misses := e.met.planMisses.Value()
	b := e.NewBuilder()
	if err := b.Add(1, []string{"m2", "m3"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := e.met.planMisses.Value(); got != misses+1 {
		t.Fatalf("plan misses = %d after Install, want %d", got, misses+1)
	}
}

// TestChurnBitsegCompaction races queries against mutations and compaction
// swaps on shards whose lists are dense enough to live in the bitseg
// encoding, so the word-parallel kernels run concurrently with base swaps
// that rebuild the very bitmaps they read. Documents are added over
// contiguous IDs to keep the density up; every returned result must be a
// strictly sorted set. Run under -race in CI ("churn smoke").
func TestChurnBitsegCompaction(t *testing.T) {
	const maxDoc = 6000
	e := New(Config{Shards: 2, CacheSize: 16, Storage: invindex.StorageCompressed, CompactThreshold: 128})
	b := e.NewBuilder()
	docTerms := func(d uint32) []string {
		terms := []string{"all"}
		if d%2 == 0 {
			terms = append(terms, "even")
		}
		if d%3 == 0 {
			terms = append(terms, "third")
		}
		return terms
	}
	for d := uint32(0); d < maxDoc/2; d++ {
		if err := b.Add(d, docTerms(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Stats().Postings.Encodings[compress.EncBitseg.String()]; !ok {
		t.Fatal("seed corpus produced no bitseg-encoded lists; the churn would not cover the bitmap path")
	}
	queries := []string{"all AND even", "even AND third", "all AND even AND NOT third", "all AND even AND third"}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := uint32(next.Add(1)) - 1
				if i >= 3000 {
					return
				}
				switch {
				case i%4 == 0: // grow the dense prefix
					d := maxDoc/2 + i/4
					if err := e.AddDocument(d, docTerms(d)); err != nil {
						t.Errorf("AddDocument(%d): %v", d, err)
						return
					}
				case i%16 == 1: // punch holes that compaction folds back out
					if _, err := e.DeleteDocument(i % (maxDoc / 2)); err != nil {
						t.Errorf("DeleteDocument: %v", err)
						return
					}
				default:
					res, err := e.Query(queries[i%uint32(len(queries))])
					if err != nil {
						t.Errorf("Query: %v", err)
						return
					}
					if err := sets.Validate(res.Docs); err != nil {
						t.Errorf("Query returned a non-set: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	waitForIdleCompaction(t, e)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction ran despite threshold")
	}
	if _, ok := st.Postings.Encodings[compress.EncBitseg.String()]; !ok {
		t.Fatalf("post-churn bases hold no bitseg lists: %+v", st.Postings.Encodings)
	}
	// Quiesced: results must now match first principles exactly. The churn
	// deleted exactly the seed docs ≡ 1 (mod 16) and added docs 3000..3749.
	deleted := func(d uint32) bool { return d < maxDoc/2 && d%16 == 1 }
	for _, tc := range []struct {
		q    string
		pred func(d uint32) bool
	}{
		{"all AND even", func(d uint32) bool { return d%2 == 0 }},
		{"even AND third AND NOT all", func(d uint32) bool { return false }},
		{"all AND even AND third", func(d uint32) bool { return d%6 == 0 }},
	} {
		want := refEval(maxDoc/2+3000/4, func(d uint32) bool { return tc.pred(d) && !deleted(d) })
		res, err := e.Query(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !sets.Equal(res.Docs, want) {
			t.Fatalf("quiesced Query(%q) = %d docs, want %d", tc.q, len(res.Docs), len(want))
		}
	}
}
