// Package engine is the query-serving subsystem built on top of the
// fastintersect library: the layer between the paper's intersection
// algorithms and a search service.
//
// Documents are hash-partitioned across S shards. Each shard is a tiered
// segmented index: a frozen base segment (an invindex.Index, raw or
// compressed), k frozen in-memory segments and one active mutable segment
// (internal/segment), each segment carrying its own tombstone filter, so the
// corpus stays mutable (AddDocument / DeleteDocument) without giving up the
// preprocessed read path — every document is visible in exactly one segment,
// so each shard evaluates a query f as the k-way union of
// (f(segment) − segment tombstones) across its tier, with conjunctions
// still pushed down to the fastintersect / compressed kernels on the base.
// Background compaction (see mutable.go) is incremental: the active segment
// freezes into the tier by a map move, a size-tiered merge coalesces only
// the smallest frozen segments, and a full rebuild through the parallel
// build path Install uses runs only on demand (Compact) or when base
// tombstones accumulate.
//
// A query is parsed and normalized by internal/plan (the canonical form is
// the cache key), looked up in an LRU result cache, and on a miss lowered
// to one physical plan against engine-aggregate statistics and fanned out
// to every shard through a bounded worker pool; each shard executes the
// plan (see exec.go), re-pricing kernels on its actual operand sizes
// through the planner's calibrated cost model, and the per-shard sorted
// results are merged. Cache entries are stamped with the engine's index
// generation — every mutation and rebuild bumps it — so a cached result
// can never resurrect a deleted document. Explain returns the executed
// plan; QueryBatch amortizes planning and decode memos across many
// queries.
//
// The posting storage is pluggable (Config.Storage): under
// invindex.StorageCompressed each shard's base stores every posting list
// under the encoding compress.ChooseEncoding picks from its density,
// conjunctions run compress.IntersectStored directly over the compressed
// representations, and Stats reports the exact per-encoding
// bytes-per-posting footprint.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastintersect"
	"fastintersect/internal/invindex"
	"fastintersect/internal/obs"
	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of hash partitions (default 1).
	Shards int
	// Workers bounds the pool evaluating shard sub-queries across ALL
	// in-flight queries (default GOMAXPROCS).
	Workers int
	// CacheSize is the result-cache capacity in entries (0 disables it).
	CacheSize int
	// Algorithm intersects term conjunctions (default Auto). Algorithms
	// with a set-count limit fall back to Auto for wider conjunctions.
	// Ignored under StorageCompressed, which intersects directly over the
	// compressed representations.
	Algorithm fastintersect.Algorithm
	// Storage selects the posting-list representation of every shard
	// (default StorageRaw). StorageCompressed stores each list under the
	// encoding compress.ChooseEncoding picks from its length and density;
	// Stats then reports the per-encoding footprint.
	Storage invindex.Storage
	// CompactThreshold triggers a background compaction of a shard once its
	// active segment holds that many postings — or, under CompactRebuild,
	// its base tombstone filter that many docIDs (under the default tiered
	// policy base tombstones escalate to a rebuild at a multiple of the
	// threshold; see mutable.go). 0 disables automatic compaction; Compact,
	// FreezeActive and MergeSegments remain available.
	CompactThreshold int
	// MaxSegments bounds the frozen in-memory segments a shard's tier may
	// hold before a background size-tiered merge coalesces the smallest
	// ones (0 = default of 4). Smaller values favor query latency (fewer
	// segments per query), larger values favor write amplification.
	MaxSegments int
	// CompactPolicy selects what a background compaction does when the
	// threshold is crossed: CompactTiered (default) freezes the active
	// segment and size-tiered-merges the frozen tier; CompactRebuild folds
	// the whole tier into a fresh base every time — the pre-tier behavior,
	// kept for the harness's write-amplification comparison.
	CompactPolicy CompactPolicy
	// PlanCosts overrides the cost-model coefficients the query planner
	// prices kernels with. Nil runs the startup micro-calibration
	// (plan.Calibrated) once per process.
	PlanCosts *plan.Costs
	// PlanPolicy tunes the physical planner's operand ordering and kernel
	// choice. The zero value is the cost-based default; the other
	// combinations exist for the harness's plan-quality experiment.
	PlanPolicy plan.Policy
	// PlanFeedback turns on the adaptive planning loop: sampled per-operator
	// actuals are harvested into a plan.Feedback store whose periodic re-fit
	// derives per-kernel correction factors on top of the calibrated
	// coefficients, re-pricing future plans (and invalidating cached ones
	// through the feedback epoch). Purely a performance feature — kernel
	// choice never changes results — and off by default.
	PlanFeedback bool
	// IndexOptions are forwarded to fastintersect.Preprocess for every
	// posting list.
	IndexOptions []fastintersect.Option
	// TraceSample traces 1 in N queries with per-stage and per-operator
	// timing (0 = the package default of 64). Sampled traces feed the stage
	// histograms and per-kernel counters on Metrics(); unsampled queries
	// pay one atomic add and a nil check per operator.
	TraceSample int
	// NoMetrics disables the latency/stage histograms and trace sampling
	// (the plain operation counters stay on — they are one sharded atomic
	// add each). Exists for the CI overhead guard and for embedders that
	// bring their own instrumentation.
	NoMetrics bool
	// Faults, when non-nil, enables deterministic fault injection on the
	// shard-evaluation path (added latency, forced errors, forced panics)
	// for the overload experiments and the cancellation/panic-barrier
	// tests. Nil — the production default — costs one pointer check per
	// shard evaluation. See faults.go.
	Faults *FaultPlan
}

// CompactPolicy selects the background compaction strategy (Config).
type CompactPolicy uint8

const (
	// CompactTiered freezes the active segment into the frozen tier and
	// coalesces only the smallest frozen segments (size-tiered merge),
	// escalating to a full rebuild only when base tombstones accumulate.
	CompactTiered CompactPolicy = iota
	// CompactRebuild folds the whole tier into a fresh base on every
	// trigger — maximal write amplification, minimal segment count.
	CompactRebuild
)

func (p CompactPolicy) String() string {
	if p == CompactRebuild {
		return "rebuild"
	}
	return "tiered"
}

// Engine serves queries against a sharded inverted index. All methods are
// safe for concurrent use; Query may run while Install swaps in a rebuilt
// index, while AddDocument/DeleteDocument mutate shards, and while a
// compaction swaps a shard's base segment.
type Engine struct {
	cfg     Config
	costs   *plan.Costs    // cost-model coefficients (configured or calibrated)
	fb      *plan.Feedback // adaptive-planning store, nil unless Config.PlanFeedback
	workers chan struct{}
	cache   *cache
	plans   *planCache

	mu     sync.RWMutex
	shards []*shard

	// gen is the index generation: bumped after every Install and every
	// document mutation. Query snapshots it BEFORE reading shard state and
	// stamps cache entries with it, so entries computed against superseded
	// state are never served (see cache.go). Compactions do not bump it —
	// they change the representation, not the visible document set.
	gen atomic.Uint64

	// statsEpoch tracks representation changes: bumped by every Install and
	// every successful compaction swap, the two events that can re-encode
	// posting lists and so change the statistics a physical plan was priced
	// against. The plan cache stamps entries with it (see plancache.go);
	// document mutations deliberately leave it alone — they bump gen, and a
	// slightly stale plan is correctness-safe because shards re-price
	// kernels on actual sizes at execution.
	statsEpoch atomic.Uint64

	// met is the observability surface: operation counters, latency and
	// stage histograms, per-kernel counters and the trace sampler, all on a
	// per-engine obs.Registry (see metrics.go and Metrics).
	met *engineMetrics

	// faultCtr sequences Config.Faults.{ErrEvery,PanicEvery} injections so
	// "every Nth evaluation" is exact across concurrent shard workers.
	faultCtr atomic.Uint64
}

// ErrNotBuilt is returned by Query and the mutation methods before any index
// has been installed. To start from an empty corpus, Install an empty
// Builder first.
var ErrNotBuilt = errors.New("engine: no index installed; Install a Builder first")

// New creates an engine with no index installed.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	costs := cfg.PlanCosts
	if costs == nil {
		costs = plan.Calibrated()
	}
	e := &Engine{
		cfg:     cfg,
		costs:   costs,
		workers: make(chan struct{}, cfg.Workers),
		cache:   newCache(cfg.CacheSize),
		plans:   newPlanCache(),
	}
	if cfg.PlanFeedback {
		e.fb = plan.NewFeedback(costs)
	}
	e.met = newEngineMetrics(e, cfg)
	return e
}

// planCosts returns the coefficients queries price kernels with: the
// feedback store's corrected snapshot when the adaptive loop is on, the
// configured/calibrated base otherwise. The snapshot is immutable; both
// plan building and per-shard re-pricing read through here so a published
// correction reaches every chooser.
func (e *Engine) planCosts() *plan.Costs {
	if e.fb != nil {
		return e.fb.Costs()
	}
	return e.costs
}

// Metrics returns the engine's metric registry — operation counters, the
// query-latency and per-stage histograms, per-kernel counters and the
// cache/generation callback series — for rendering via
// obs.Registry.WritePrometheus (fsiserve mounts it at GET /metrics).
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// shardOf routes a document to its partition (Fibonacci hashing on the
// docID so consecutive IDs spread evenly).
func shardOf(docID uint32, shards int) int {
	return int((uint64(docID) * 0x9E3779B97F4A7C15 >> 33) % uint64(shards))
}

// Builder accumulates documents for one build. It is not safe for
// concurrent use; Build (via Engine.Install) parallelizes internally.
type Builder struct {
	cfg    Config
	shards []*invindex.Index
}

// NewBuilder returns an empty builder with the engine's sharding and
// preprocessing configuration.
func (e *Engine) NewBuilder() *Builder {
	b := &Builder{cfg: e.cfg, shards: make([]*invindex.Index, e.cfg.Shards)}
	for i := range b.shards {
		b.shards[i] = invindex.NewWithStorage(e.cfg.Storage, e.cfg.IndexOptions...)
	}
	return b
}

// Add records a document in its home shard. Adding the same docID more than
// once unions its terms; it is still counted as one document.
func (b *Builder) Add(docID uint32, terms []string) error {
	return b.shards[shardOf(docID, len(b.shards))].Add(docID, terms)
}

// AddPosting records a whole term → docIDs posting list, partitioning it
// across shards (builder-style input for corpora that arrive term-major).
func (b *Builder) AddPosting(term string, docIDs []uint32) error {
	if len(b.shards) == 1 {
		return b.shards[0].AddPosting(term, docIDs)
	}
	parts := make([][]uint32, len(b.shards))
	for _, d := range docIDs {
		s := shardOf(d, len(b.shards))
		parts[s] = append(parts[s], d)
	}
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := b.shards[s].AddPosting(term, part); err != nil {
			return err
		}
	}
	return nil
}

// Install builds every shard concurrently (each shard additionally
// parallelizes over its terms, so total build goroutines ≈ max(Workers,
// Shards) — one per shard at minimum), swaps the new shard set in, and
// bumps the index generation so cached results from the previous index are
// never served. The builder must not be reused afterwards.
//
// The builder must come from an engine with the same shard count: installing
// a mismatched builder would mis-route both queries and the mutation API,
// since shardOf partitions by the installed shard count.
func (e *Engine) Install(b *Builder) error {
	if len(b.shards) != e.cfg.Shards {
		return fmt.Errorf("engine: cannot install a %d-shard builder into a %d-shard engine (builders are engine-specific; use NewBuilder on this engine)",
			len(b.shards), e.cfg.Shards)
	}
	if b.cfg.Storage != e.cfg.Storage {
		return fmt.Errorf("engine: cannot install a %v-storage builder into a %v-storage engine",
			b.cfg.Storage, e.cfg.Storage)
	}
	perShard := e.cfg.Workers / len(b.shards)
	if perShard < 1 {
		perShard = 1
	}
	errs := make([]error, len(b.shards))
	var wg sync.WaitGroup
	for i, ix := range b.shards {
		wg.Add(1)
		go func(i int, ix *invindex.Index) {
			defer wg.Done()
			errs[i] = ix.BuildParallel(perShard)
		}(i, ix)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
	}
	shards := make([]*shard, len(b.shards))
	for i, ix := range b.shards {
		shards[i] = newShard(ix)
	}
	e.mu.Lock()
	old := e.shards
	// Retire the outgoing shards BEFORE they become unreachable: a mutation
	// that snapshotted the old set re-checks the flag after locking its
	// shard (see lockShard) and retries against the new set, so an
	// acknowledged AddDocument/DeleteDocument can never land in a shard
	// this swap discards.
	for _, s := range old {
		s.mu.Lock()
		s.retired = true
		s.mu.Unlock()
	}
	e.shards = shards
	e.mu.Unlock()
	e.gen.Add(1)
	e.statsEpoch.Add(1) // new bases may store terms under new encodings
	e.met.rebuilds.Inc()
	return nil
}

// snapshot returns the current shard set, or nil before Install.
func (e *Engine) snapshot() []*shard {
	e.mu.RLock()
	shards := e.shards
	e.mu.RUnlock()
	return shards
}

// Result is one query's outcome.
type Result struct {
	// Docs are the matching document IDs, ascending. The slice is shared
	// with the cache; callers must not modify it. Nil for count-only
	// queries (QueryCount), which never materialize the merged result.
	Docs []uint32
	// Count is the number of matching documents — len(Docs) for
	// materializing queries, and the only output of count-only ones.
	Count int
	// Normalized is the canonical form of the query (the cache key).
	Normalized string
	// Cached reports whether the result came from the LRU.
	Cached bool
}

// Query parses, plans and executes a query across all shards: the logical
// tree is normalized (the canonical form keys the result cache), lowered
// to one physical plan against engine-aggregate statistics, and the plan is
// executed per shard inside a pooled execution context (see execctx.go).
// The merged result is always a fresh slice — never aliasing a posting list
// or a pooled buffer — so it is safe to cache and to hand to the caller
// while the contexts are recycled into concurrent queries.
func (e *Engine) Query(q string) (*Result, error) {
	return e.QueryContext(context.Background(), q)
}

// QueryContext is Query bounded by a context: when ctx carries a deadline
// or is cancelled, the evaluation aborts mid-shard (the exec loops poll the
// context between operators) and the context's error is returned. The
// abort is clean — bounded worker slots are released, pooled execution
// contexts are recycled, and nothing partial lands in the result cache. A
// non-cancellable context (context.Background) costs one nil check per
// operator, keeping the uncontended fast path allocation-identical to
// Query.
func (e *Engine) QueryContext(ctx context.Context, q string) (*Result, error) {
	res, _, err := e.execute(ctx, q, modeQuery)
	return res, err
}

// Explain is Query plus the executed physical plan rendered as an operator
// tree (kernel per conjunction, operand order, storage shapes, cardinality
// and cost estimates). The plan is rebuilt even on a cache hit, so the
// rendering always reflects current index statistics.
func (e *Engine) Explain(q string) (*Result, string, error) {
	return e.execute(context.Background(), q, modeExplain)
}

// ExplainContext is Explain bounded by a context (see QueryContext).
func (e *Engine) ExplainContext(ctx context.Context, q string) (*Result, string, error) {
	return e.execute(ctx, q, modeExplain)
}

// ExplainAnalyze executes the query with a full per-operator trace —
// bypassing the result cache, so the plan really runs — and renders the
// executed plan with measured rows and time next to each operator's
// estimates, followed by the stage and per-shard timing breakdown. This is
// the planner feedback surface: est_rows vs act_rows per operator is
// exactly the signal the ROADMAP's self-tuning planner consumes. The
// result is still written to the cache, so an analyzed query warms it like
// any other.
func (e *Engine) ExplainAnalyze(q string) (*Result, string, error) {
	return e.execute(context.Background(), q, modeAnalyze)
}

// ExplainAnalyzeContext is ExplainAnalyze bounded by a context (see
// QueryContext).
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, q string) (*Result, string, error) {
	return e.execute(ctx, q, modeAnalyze)
}

// QueryCount executes q and returns only the number of matching documents:
// Result.Count is set and Result.Docs stays nil. The count path skips
// result materialization entirely — per-shard result lengths are summed
// (shards partition the docID space, so the per-shard results are
// disjoint) without building or copying a merged slice. Planning, caching
// of plans, and kernel execution are identical to Query; only the final
// merge/copy is elided, so a count costs strictly less than the query it
// counts. A cached materialized result is still served (as its length).
func (e *Engine) QueryCount(q string) (*Result, error) {
	return e.QueryCountContext(context.Background(), q)
}

// QueryCountContext is QueryCount bounded by a context (see QueryContext).
func (e *Engine) QueryCountContext(ctx context.Context, q string) (*Result, error) {
	res, _, err := e.execute(ctx, q, modeCount)
	return res, err
}

// Canonicalize parses q and returns its canonical (normalized) form — the
// key the result cache and the admission tier's request coalescer share.
// Two spellings with the same canonical form are the same query: they hit
// the same cache entry, and an admission layer may safely have them share
// one in-flight execution.
func (e *Engine) Canonicalize(q string) (string, error) {
	ast, err := plan.Parse(q)
	if err != nil {
		return "", err
	}
	return ast.String(), nil
}

// execMode selects what execute returns beyond the result.
type execMode uint8

const (
	modeQuery   execMode = iota // result only
	modeExplain                 // result + estimated plan (cache may serve the result)
	modeAnalyze                 // result + executed plan with actuals (cache bypassed)
	modeCount                   // count only: per-shard counts merged, no result materialized
)

// execute wraps executeQuery with the per-query observability: the query
// counter, the latency histogram, the sampling decision and the trace
// lifecycle. Timing is skipped entirely when neither the histograms nor a
// trace want it.
func (e *Engine) execute(ctx context.Context, q string, mode execMode) (*Result, string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m := e.met
	m.queries.Inc()
	var tr *obs.Trace
	if mode == modeAnalyze || m.sampleTrace() {
		tr = obs.GetTrace()
		tr.Query = q
	}
	var start time.Time
	timed := m.enabled || tr != nil
	if timed {
		start = time.Now()
	}
	res, expl, err := e.executeQuery(ctx, q, mode, tr)
	if err != nil {
		m.queryErrors.Inc()
	}
	if timed {
		total := time.Since(start)
		if m.enabled {
			m.latency.Observe(total)
		}
		if tr != nil {
			tr.TotalNs = total.Nanoseconds()
			tr.Err = err != nil
			if m.enabled {
				for s, ns := range tr.Stages {
					if ns > 0 {
						m.stages[s].Observe(time.Duration(ns))
					}
				}
			}
			obs.PutTrace(tr)
		}
	}
	return res, expl, err
}

// stamp records the time since *t0 into tr's stage s and advances *t0.
// No-op without a trace, so call sites need no guards.
func stamp(tr *obs.Trace, s obs.Stage, t0 *time.Time) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.Stages[s] = now.Sub(*t0).Nanoseconds()
	*t0 = now
}

func (e *Engine) executeQuery(ctx context.Context, q string, mode execMode, tr *obs.Trace) (*Result, string, error) {
	if ctx.Done() != nil {
		// One up-front check so a request whose deadline expired while it
		// queued upstream never starts planning at all.
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	ast, err := plan.Parse(q)
	if err != nil {
		return nil, "", err
	}
	stamp(tr, obs.StageParse, &t0)
	key := ast.String()
	stamp(tr, obs.StageNormalize, &t0)
	// Snapshot the index generation BEFORE the shard state: if a mutation or
	// Install lands while we evaluate, the entry we put below is stamped with
	// a superseded generation and can never be served.
	gen := e.gen.Load()
	var docs []uint32
	hit := false
	if mode != modeAnalyze {
		// Analyze mode bypasses the probe: its whole point is to measure a
		// real execution, and serving the cached docs would render every
		// operator "(not executed)".
		docs, hit = e.cache.get(key, gen)
		stamp(tr, obs.StageCache, &t0)
	}
	if hit && tr != nil {
		tr.Cached = true
	}
	if hit && mode == modeCount {
		return &Result{Count: len(docs), Normalized: key, Cached: true}, "", nil
	}
	if hit && mode == modeQuery {
		return &Result{Docs: docs, Count: len(docs), Normalized: key, Cached: true}, "", nil
	}
	shards := e.snapshot()
	if shards == nil {
		return nil, "", ErrNotBuilt
	}
	// The stats epoch is loaded BEFORE the statistics are read: if an
	// Install or compaction swaps bases in between, the plan built below is
	// stamped with the superseded epoch and rebuilt on its next lookup
	// instead of lingering with stale shapes. The feedback epoch is folded
	// in the same way: both counters only ever increase, so their sum
	// strictly increases whenever either bumps, and a published correction
	// snapshot re-prices every cached plan without plancache changes.
	epoch := e.statsEpoch.Load()
	if e.fb != nil {
		epoch += e.fb.Epoch()
	}
	cacheablePlan := mode == modeQuery || mode == modeCount
	var pp *plan.Plan
	var pc *planCtx
	if cacheablePlan {
		pp = e.plans.get(key, epoch)
	}
	if pp != nil {
		e.met.planHits.Inc()
	} else {
		pc = getPlanCtx()
		pc.stats.fill(shards)
		stored := e.cfg.Storage == invindex.StorageCompressed
		if cacheablePlan {
			// Build into a cache-owned plan (shared read-only by later
			// queries); Explain/Analyze rebuild into the pooled arena so
			// their rendering always reflects current statistics.
			e.met.planMisses.Inc()
			pp = plan.Build(new(plan.Plan), ast, key, &pc.stats, e.planCosts(), e.cfg.PlanPolicy, stored)
			e.plans.put(key, pp, epoch)
		} else {
			pp = plan.Build(&pc.plan, ast, key, &pc.stats, e.planCosts(), e.cfg.PlanPolicy, stored)
		}
	}
	stamp(tr, obs.StagePlan, &t0)
	expl := ""
	if mode == modeExplain {
		expl = pp.Explain() + e.algorithmNote()
	}
	if hit {
		putPlanCtx(pc)
		return &Result{Docs: docs, Count: len(docs), Normalized: key, Cached: true}, expl, nil
	}
	var agg *traceRec
	if tr != nil {
		agg = getTraceRec(len(pp.Ops))
	}
	merged, count, err := e.executePlan(ctx, shards, pp, tr, agg, mode == modeCount)
	if err != nil {
		putTraceRec(agg)
		putPlanCtx(pc)
		return nil, "", err
	}
	if tr != nil {
		e.met.recordKernels(pp, agg)
		if e.fb != nil {
			harvestFeedback(e.fb, pp, agg)
		}
	}
	if mode == modeAnalyze {
		expl = renderAnalyze(pc, pp, agg, tr) + e.algorithmNote()
	}
	putTraceRec(agg)
	putPlanCtx(pc)
	if mode == modeCount {
		// Nothing was materialized, so there is nothing to cache; a later
		// materializing query for the same canonical form will populate the
		// LRU and counts will hit it from then on.
		return &Result{Count: count, Normalized: key}, expl, nil
	}
	e.cache.put(key, merged, gen)
	return &Result{Docs: merged, Count: count, Normalized: key}, expl, nil
}

// algorithmNote flags a configured intersection algorithm on explain
// output: the plan renders the cost model's choices, but a configured
// algorithm overrides them at execution (see listAlgorithm), so say so
// rather than show a kernel that never ran.
func (e *Engine) algorithmNote() string {
	if e.cfg.Algorithm == fastintersect.Auto {
		return ""
	}
	return fmt.Sprintf("note: Config.Algorithm=%v overrides the list-kernel choices above\n", e.cfg.Algorithm)
}

// renderAnalyze renders the executed plan with actuals plus the stage and
// per-shard breakdown of the trace. The OpActual arena rides on the plan
// context so steady-state analyze calls reuse it.
func renderAnalyze(pc *planCtx, pp *plan.Plan, agg *traceRec, tr *obs.Trace) string {
	if cap(pc.actuals) < len(agg.ops) {
		pc.actuals = make([]plan.OpActual, len(agg.ops))
	}
	pc.actuals = pc.actuals[:len(agg.ops)]
	for i, a := range agg.ops {
		pc.actuals[i] = plan.OpActual{Execs: a.execs, Rows: a.rows, Ns: a.ns}
	}
	var sb strings.Builder
	sb.WriteString(pp.ExplainAnalyze(pc.actuals))
	sb.WriteString("stages:")
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if ns := tr.Stages[s]; ns > 0 {
			fmt.Fprintf(&sb, " %s=%s", s, fmtNs(ns))
		}
	}
	sb.WriteString("\n")
	for _, sp := range tr.Shards {
		fmt.Fprintf(&sb, "shard %d: rows=%d time=%s\n", sp.Shard, sp.Rows, fmtNs(sp.Ns))
	}
	return sb.String()
}

// fmtNs matches the plan package's cost rendering (ns/µs/ms).
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// acquireWorker takes one bounded worker slot, or gives up when ctx is
// cancelled first — a query whose deadline expires while it waits for a
// slot must not start evaluating. The caller releases the slot with
// <-e.workers only after a nil return. Non-cancellable contexts take the
// plain channel send (no select overhead).
func (e *Engine) acquireWorker(ctx context.Context) error {
	done := ctx.Done()
	if done == nil {
		e.workers <- struct{}{}
		return nil
	}
	select {
	case e.workers <- struct{}{}:
		return nil
	case <-done:
		return ctx.Err()
	}
}

// executePlan runs one physical plan over the shard set and merges the
// per-shard sorted results into a fresh slice, returning the merged docs
// and their count. Under countOnly the merge is elided entirely: the
// per-shard result lengths are summed (shards partition the docID space,
// so the sorted per-shard results are disjoint) and the docs return is
// nil — no merged slice is built or copied. When the query is traced
// (tr and agg non-nil, always together), each shard evaluation records its
// per-operator actuals into a context-local traceRec, and the recordings
// are merged into agg — the per-shard spans and the exec/merge stage
// timings land on tr.
//
// Abort discipline: a cancelled context or a failing/panicking shard never
// leaks resources. Worker slots are released by deferred receives, every
// execCtx drawn here is returned through putQueryCtx/putExecCtx on all
// paths, and the fan-out always rejoins (wg.Wait) before returning — a
// worker observing the cancellation aborts at its next poll, so no
// goroutine outlives the call.
func (e *Engine) executePlan(ctx context.Context, shards []*shard, pp *plan.Plan, tr *obs.Trace, agg *traceRec, countOnly bool) ([]uint32, int, error) {
	if len(shards) == 1 {
		// Single shard: evaluate inline, skipping the fan-out goroutine but
		// still holding a bounded worker slot — Config.Workers caps shard
		// evaluations across ALL in-flight queries regardless of shape.
		if err := e.acquireWorker(ctx); err != nil {
			return nil, 0, err
		}
		defer func() { <-e.workers }()
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		c := getExecCtx()
		c.attachCtx(ctx)
		c.rec = agg // nil for untraced queries
		docs, owned, err := e.evalShard(c, shards[0], 0, pp)
		// agg is owned by the caller: detach it before the context returns
		// to the pool on every path, or putExecCtx would recycle it.
		c.rec = nil
		if err != nil {
			putExecCtx(c)
			return nil, 0, err
		}
		if tr != nil {
			stamp(tr, obs.StageExec, &t0)
			tr.Shards = append(tr.Shards, obs.ShardSpan{Shard: 0, Rows: len(docs), Ns: tr.Stages[obs.StageExec]})
		}
		count := len(docs)
		var merged []uint32
		if !countOnly {
			merged = make([]uint32, count)
			copy(merged, docs)
		}
		if owned {
			c.putBuf(docs)
		}
		putExecCtx(c)
		stamp(tr, obs.StageMerge, &t0)
		return merged, count, nil
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	qc := getQueryCtx(len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			if err := e.acquireWorker(ctx); err != nil {
				qc.errs[i] = err // no slot held, no context drawn
				return
			}
			defer func() { <-e.workers }()
			c := getExecCtx()
			c.attachCtx(ctx)
			qc.ctxs[i] = c
			if agg != nil {
				c.rec = getTraceRec(len(pp.Ops))
				shardStart := time.Now()
				qc.results[i], qc.owned[i], qc.errs[i] = e.evalShard(c, s, i, pp)
				c.rec.shardNs = time.Since(shardStart).Nanoseconds()
				return
			}
			qc.results[i], qc.owned[i], qc.errs[i] = e.evalShard(c, s, i, pp)
		}(i, s)
	}
	wg.Wait()
	if agg != nil {
		// Harvest the per-shard recordings before the contexts are pooled:
		// putQueryCtx → putExecCtx would recycle them unread (that fallback
		// is the cleanup for the error return below).
		for i, c := range qc.ctxs {
			if c == nil || c.rec == nil {
				continue
			}
			agg.merge(c.rec)
			tr.Shards = append(tr.Shards, obs.ShardSpan{Shard: i, Rows: len(qc.results[i]), Ns: c.rec.shardNs})
			putTraceRec(c.rec)
			c.rec = nil
		}
	}
	for _, err := range qc.errs {
		if err != nil {
			putQueryCtx(qc)
			return nil, 0, err
		}
	}
	stamp(tr, obs.StageExec, &t0)
	// Shards partition the document space, so the per-shard sorted results
	// are disjoint and merging is a pure interleave; the k-way union writes
	// into a fresh exactly-sized slice, so the merged result never aliases
	// a posting list or a pooled buffer. Disjointness also means a count
	// needs no merge at all — the lengths simply add.
	total := 0
	for _, r := range qc.results {
		total += len(r)
	}
	if countOnly {
		putQueryCtx(qc)
		stamp(tr, obs.StageMerge, &t0)
		return nil, total, nil
	}
	merged := sets.UnionKInto(make([]uint32, 0, total), qc.results...)
	putQueryCtx(qc)
	stamp(tr, obs.StageMerge, &t0)
	return merged, total, nil
}

// EncodingStat aggregates the posting lists stored under one encoding
// across all shards.
type EncodingStat struct {
	Lists           int     `json:"lists"`
	Postings        uint64  `json:"postings"`
	Bytes           uint64  `json:"bytes"`
	BytesPerPosting float64 `json:"bytes_per_posting"`
}

// PostingStats is the engine-wide posting-payload accounting for the base
// segments: how many bytes the frozen indexes actually hold versus the
// 4-byte-per-posting raw footprint, broken down per encoding. Delta-segment
// postings are accounted separately in DeltaStats.
type PostingStats struct {
	Total           uint64                  `json:"total"`
	RawBytes        uint64                  `json:"raw_bytes"`
	StoredBytes     uint64                  `json:"stored_bytes"`
	BytesPerPosting float64                 `json:"bytes_per_posting"`
	Encodings       map[string]EncodingStat `json:"encodings"`
}

// DeltaStats is the point-in-time accounting of the mutable tier across all
// shards: the in-memory segments above the base (frozen tier plus the
// active segment) and the tombstone filters.
type DeltaStats struct {
	// Docs is the number of documents currently held by in-memory segments
	// (frozen tier + active, including tombstoned frozen documents).
	Docs int `json:"docs"`
	// Postings is the total posting count across in-memory segments.
	Postings int `json:"postings"`
	// Tombstones is the total tombstoned docID count across every segment's
	// filter (including the suppression tombstones that shadow older copies
	// of rewritten documents).
	Tombstones int `json:"tombstones"`
	// Segments is the total frozen in-memory segment count across shards.
	Segments int `json:"segments"`
	// CompactingShards is the number of shards with a claimed (possibly not
	// yet started) background compaction.
	CompactingShards int `json:"compacting_shards"`
}

// Generation returns the current index generation — bumped by every
// Install and every effective document mutation. Unlike Stats, it is a
// single atomic load, cheap enough for per-request use.
func (e *Engine) Generation() uint64 { return e.gen.Load() }

// Stats is a point-in-time snapshot of the engine.
type Stats struct {
	Shards      int          `json:"shards"`
	Storage     string       `json:"storage"`
	Docs        uint64       `json:"docs"`
	Terms       int          `json:"terms"`
	ShardTerms  []int        `json:"shard_terms,omitempty"`
	Postings    PostingStats `json:"postings"`
	Queries     uint64       `json:"queries"`
	QueryErrors uint64       `json:"query_errors"`
	Rebuilds    uint64       `json:"rebuilds"`
	Mutations   uint64       `json:"mutations"`
	Compactions uint64       `json:"compactions"`
	// SegmentFreezes / SegmentMerges / CompactionBytes are the tiered
	// lifecycle counters: active-segment freezes, size-tiered merges, and
	// the bytes written by merges and rebuilds (the write-amplification
	// numerator; 4 bytes per posting written).
	SegmentFreezes  uint64 `json:"segment_freezes"`
	SegmentMerges   uint64 `json:"segment_merges"`
	CompactionBytes uint64 `json:"compaction_bytes"`
	// ShardSegments is the per-shard segment count (1 base + frozen tier).
	ShardSegments []int  `json:"shard_segments,omitempty"`
	Generation    uint64 `json:"generation"`
	// StatsEpoch counts representation changes (installs + compaction
	// swaps); PlanCacheEntries is the number of physical plans memoized
	// against the current epoch's statistics.
	StatsEpoch       uint64     `json:"stats_epoch"`
	PlanCacheEntries int        `json:"plan_cache_entries"`
	Delta            DeltaStats `json:"delta"`
	Workers          int        `json:"workers"`
	Cache            CacheStats `json:"cache"`
	// PlanFeedback reports whether the adaptive planning loop is on; the
	// fields below it are zero when it is off. FeedbackEpoch counts
	// published correction snapshots (each invalidates the plan cache),
	// FeedbackRefits the re-fit passes run, FeedbackObservations the
	// harvested operator samples, EstRowsError the last window's relative
	// cardinality-estimate error, and KernelCorrections the current
	// non-unit multiplicative corrections by kernel name.
	PlanFeedback         bool               `json:"plan_feedback"`
	FeedbackEpoch        uint64             `json:"feedback_epoch,omitempty"`
	FeedbackRefits       uint64             `json:"feedback_refits,omitempty"`
	FeedbackObservations uint64             `json:"feedback_observations,omitempty"`
	EstRowsError         float64            `json:"est_rows_error,omitempty"`
	KernelCorrections    map[string]float64 `json:"kernel_corrections,omitempty"`
	// KernelExecs counts conjunction-kernel executions observed in sampled
	// traces, by the kernel that actually ran (the shard-level re-pricing,
	// not the logical plan's pick). Only non-zero kernels appear; nil when
	// metrics are disabled.
	KernelExecs map[string]uint64 `json:"kernel_execs,omitempty"`
}

// Stats returns current counters. Docs counts distinct live documents:
// distinct docIDs indexed by the base segments, plus documents added through
// AddDocument, minus deleted ones. Terms counts distinct (term, shard) pairs
// over the base segments: a term whose postings span k shards contributes k.
func (e *Engine) Stats() Stats {
	shards := e.snapshot()
	st := Stats{
		Shards:          e.cfg.Shards,
		Storage:         e.cfg.Storage.String(),
		Postings:        PostingStats{Encodings: map[string]EncodingStat{}},
		Queries:         e.met.queries.Value(),
		QueryErrors:     e.met.queryErrors.Value(),
		Rebuilds:        e.met.rebuilds.Value(),
		Mutations:       e.met.mutations.Value(),
		Compactions:     e.met.compactions.Value(),
		SegmentFreezes:  e.met.segmentFreezes.Value(),
		SegmentMerges:   e.met.segmentMerges.Value(),
		CompactionBytes: e.met.compactionBytes.Value(),
		Generation:      e.gen.Load(),
		StatsEpoch:      e.statsEpoch.Load(),
		Workers:         e.cfg.Workers,
		Cache:           e.cache.stats(),
	}
	st.PlanCacheEntries = e.plans.entries()
	if e.met.enabled {
		for k := plan.Kernel(1); int(k) < plan.KernelCount; k++ {
			if n := e.met.kernelExecs[k].Value(); n > 0 {
				if st.KernelExecs == nil {
					st.KernelExecs = map[string]uint64{}
				}
				st.KernelExecs[k.String()] = n
			}
		}
	}
	if e.fb != nil {
		st.PlanFeedback = true
		st.FeedbackEpoch = e.fb.Epoch()
		st.FeedbackRefits = e.fb.Refits()
		st.FeedbackObservations = e.fb.Observations()
		st.EstRowsError = e.fb.RowsError()
		for k := plan.Kernel(1); int(k) < plan.KernelCount; k++ {
			if c := e.fb.Correction(k); c != 1 {
				if st.KernelCorrections == nil {
					st.KernelCorrections = map[string]float64{}
				}
				st.KernelCorrections[k.String()] = c
			}
		}
	}
	for _, s := range shards {
		s.mu.RLock()
		ix := s.base
		st.Docs += uint64(s.liveLocked())
		st.Delta.Docs += s.active.NumDocs()
		st.Delta.Postings += s.active.NumPostings()
		for _, f := range s.frozen {
			st.Delta.Docs += f.NumDocs()
			st.Delta.Postings += f.NumPostings()
			st.Delta.Tombstones += len(f.Tombs())
		}
		st.Delta.Segments += len(s.frozen)
		st.ShardSegments = append(st.ShardSegments, 1+len(s.frozen))
		if s.compacting {
			st.Delta.CompactingShards++
		}
		st.Delta.Tombstones += len(s.baseTombs)
		s.mu.RUnlock()
		st.Terms += ix.TermCount()
		st.ShardTerms = append(st.ShardTerms, ix.TermCount())
		ms := ix.MemStats()
		st.Postings.Total += ms.Postings
		st.Postings.RawBytes += ms.RawBytes
		st.Postings.StoredBytes += ms.StoredBytes
		for enc, es := range ms.Encodings {
			agg := st.Postings.Encodings[enc]
			agg.Lists += es.Lists
			agg.Postings += es.Postings
			agg.Bytes += es.Bytes
			st.Postings.Encodings[enc] = agg
		}
	}
	if st.Postings.Total > 0 {
		st.Postings.BytesPerPosting = float64(st.Postings.StoredBytes) / float64(st.Postings.Total)
	}
	for enc, agg := range st.Postings.Encodings {
		if agg.Postings > 0 {
			agg.BytesPerPosting = float64(agg.Bytes) / float64(agg.Postings)
			st.Postings.Encodings[enc] = agg
		}
	}
	return st
}
