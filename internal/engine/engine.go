// Package engine is the query-serving subsystem built on top of the
// fastintersect library: the layer between the paper's intersection
// algorithms and a search service.
//
// Documents are hash-partitioned across S shards, each an independent
// invindex.Index built concurrently. A query is parsed from a small
// AND/OR/NOT language (see planner.go), normalized into a canonical form,
// looked up in an LRU result cache, and on a miss fanned out to every
// shard through a bounded worker pool; conjunctions of terms are pushed
// down to fastintersect with operands cost-ordered by document frequency,
// and the per-shard sorted results are merged. Rebuilding the index swaps
// the shard set atomically and invalidates the cache.
//
// The posting storage is pluggable (Config.Storage): under
// invindex.StorageCompressed each shard stores every posting list under
// the encoding compress.ChooseEncoding picks from its density, conjunctions
// run compress.IntersectStored directly over the compressed
// representations, and Stats reports the exact per-encoding
// bytes-per-posting footprint.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fastintersect"
	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
)

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of hash partitions (default 1).
	Shards int
	// Workers bounds the pool evaluating shard sub-queries across ALL
	// in-flight queries (default GOMAXPROCS).
	Workers int
	// CacheSize is the result-cache capacity in entries (0 disables it).
	CacheSize int
	// Algorithm intersects term conjunctions (default Auto). Algorithms
	// with a set-count limit fall back to Auto for wider conjunctions.
	// Ignored under StorageCompressed, which intersects directly over the
	// compressed representations.
	Algorithm fastintersect.Algorithm
	// Storage selects the posting-list representation of every shard
	// (default StorageRaw). StorageCompressed stores each list under the
	// encoding compress.ChooseEncoding picks from its length and density;
	// Stats then reports the per-encoding footprint.
	Storage invindex.Storage
	// IndexOptions are forwarded to fastintersect.Preprocess for every
	// posting list.
	IndexOptions []fastintersect.Option
}

// Engine serves queries against a sharded inverted index. All methods are
// safe for concurrent use; Query may run while Install swaps in a rebuilt
// index.
type Engine struct {
	cfg     Config
	workers chan struct{}
	cache   *cache

	mu     sync.RWMutex
	shards []*invindex.Index
	docs   uint64

	queries  atomic.Uint64
	errors   atomic.Uint64
	rebuilds atomic.Uint64
}

// ErrNotBuilt is returned by Query before any index has been installed.
var ErrNotBuilt = errors.New("engine: no index installed; Install a Builder first")

// New creates an engine with no index installed.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		cfg:     cfg,
		workers: make(chan struct{}, cfg.Workers),
		cache:   newCache(cfg.CacheSize),
	}
}

// shardOf routes a document to its partition (Fibonacci hashing on the
// docID so consecutive IDs spread evenly).
func shardOf(docID uint32, shards int) int {
	return int((uint64(docID) * 0x9E3779B97F4A7C15 >> 33) % uint64(shards))
}

// Builder accumulates documents for one build. It is not safe for
// concurrent use; Build (via Engine.Install) parallelizes internally.
type Builder struct {
	cfg    Config
	shards []*invindex.Index
	docs   uint64
}

// NewBuilder returns an empty builder with the engine's sharding and
// preprocessing configuration.
func (e *Engine) NewBuilder() *Builder {
	b := &Builder{cfg: e.cfg, shards: make([]*invindex.Index, e.cfg.Shards)}
	for i := range b.shards {
		b.shards[i] = invindex.NewWithStorage(e.cfg.Storage, e.cfg.IndexOptions...)
	}
	return b
}

// Add records a document in its home shard.
func (b *Builder) Add(docID uint32, terms []string) error {
	b.docs++
	return b.shards[shardOf(docID, len(b.shards))].Add(docID, terms)
}

// AddPosting records a whole term → docIDs posting list, partitioning it
// across shards (builder-style input for corpora that arrive term-major).
func (b *Builder) AddPosting(term string, docIDs []uint32) error {
	if len(b.shards) == 1 {
		return b.shards[0].AddPosting(term, docIDs)
	}
	parts := make([][]uint32, len(b.shards))
	for _, d := range docIDs {
		s := shardOf(d, len(b.shards))
		parts[s] = append(parts[s], d)
	}
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := b.shards[s].AddPosting(term, part); err != nil {
			return err
		}
	}
	return nil
}

// SetDocCount records the corpus size reported by Stats when documents are
// loaded term-major via AddPosting (which cannot count distinct documents).
func (b *Builder) SetDocCount(n uint64) { b.docs = n }

// Install builds every shard concurrently (each shard additionally
// parallelizes over its terms, so total build goroutines ≈ max(Workers,
// Shards) — one per shard at minimum), swaps the new shard set in, and
// invalidates the result cache. The builder must not be reused afterwards.
func (e *Engine) Install(b *Builder) error {
	perShard := e.cfg.Workers / len(b.shards)
	if perShard < 1 {
		perShard = 1
	}
	errs := make([]error, len(b.shards))
	var wg sync.WaitGroup
	for i, ix := range b.shards {
		wg.Add(1)
		go func(i int, ix *invindex.Index) {
			defer wg.Done()
			errs[i] = ix.BuildParallel(perShard)
		}(i, ix)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
	}
	e.mu.Lock()
	e.shards = b.shards
	e.docs = b.docs
	e.mu.Unlock()
	e.cache.purge()
	e.rebuilds.Add(1)
	return nil
}

// Result is one query's outcome.
type Result struct {
	// Docs are the matching document IDs, ascending. The slice is shared
	// with the cache; callers must not modify it.
	Docs []uint32
	// Normalized is the canonical form of the query (the cache key).
	Normalized string
	// Cached reports whether the result came from the LRU.
	Cached bool
}

// Query parses, plans and executes a query across all shards. Every shard
// evaluation runs inside a pooled execution context (see execctx.go); the
// merged result is always a fresh slice — never aliasing a posting list or
// a pooled buffer — so it is safe to cache and to hand to the caller while
// the contexts are recycled into concurrent queries.
func (e *Engine) Query(q string) (*Result, error) {
	e.queries.Add(1)
	ast, err := Parse(q)
	if err != nil {
		e.errors.Add(1)
		return nil, err
	}
	key := ast.String()
	if docs, ok := e.cache.get(key); ok {
		return &Result{Docs: docs, Normalized: key, Cached: true}, nil
	}
	// Snapshot the purge generation BEFORE the shard set: if Install swaps
	// and purges while we evaluate, our put below is recognized as stale
	// and dropped instead of resurrecting pre-rebuild results.
	gen := e.cache.generation()
	e.mu.RLock()
	shards := e.shards
	e.mu.RUnlock()
	if shards == nil {
		e.errors.Add(1)
		return nil, ErrNotBuilt
	}
	if len(shards) == 1 {
		// Single shard: evaluate inline, skipping the fan-out goroutine but
		// still holding a bounded worker slot — Config.Workers caps shard
		// evaluations across ALL in-flight queries regardless of shape.
		e.workers <- struct{}{}
		defer func() { <-e.workers }()
		c := getExecCtx()
		docs, owned, err := evalShard(c, shards[0], ast, e.cfg.Algorithm)
		if err != nil {
			putExecCtx(c)
			e.errors.Add(1)
			return nil, err
		}
		merged := make([]uint32, len(docs))
		copy(merged, docs)
		if owned {
			c.putBuf(docs)
		}
		putExecCtx(c)
		e.cache.put(key, merged, gen)
		return &Result{Docs: merged, Normalized: key}, nil
	}
	qc := getQueryCtx(len(shards))
	var wg sync.WaitGroup
	for i, ix := range shards {
		wg.Add(1)
		go func(i int, ix *invindex.Index) {
			defer wg.Done()
			e.workers <- struct{}{} // acquire a bounded worker slot
			defer func() { <-e.workers }()
			c := getExecCtx()
			qc.ctxs[i] = c
			qc.results[i], qc.owned[i], qc.errs[i] = evalShard(c, ix, ast, e.cfg.Algorithm)
		}(i, ix)
	}
	wg.Wait()
	for _, err := range qc.errs {
		if err != nil {
			putQueryCtx(qc)
			e.errors.Add(1)
			return nil, err
		}
	}
	// Shards partition the document space, so the per-shard sorted results
	// are disjoint and merging is a pure interleave; the k-way union writes
	// into a fresh exactly-sized slice, so the merged result never aliases
	// a posting list or a pooled buffer.
	total := 0
	for _, r := range qc.results {
		total += len(r)
	}
	merged := sets.UnionKInto(make([]uint32, 0, total), qc.results...)
	putQueryCtx(qc)
	e.cache.put(key, merged, gen)
	return &Result{Docs: merged, Normalized: key}, nil
}

// EncodingStat aggregates the posting lists stored under one encoding
// across all shards.
type EncodingStat struct {
	Lists           int     `json:"lists"`
	Postings        uint64  `json:"postings"`
	Bytes           uint64  `json:"bytes"`
	BytesPerPosting float64 `json:"bytes_per_posting"`
}

// PostingStats is the engine-wide posting-payload accounting: how many
// bytes the index actually holds versus the 4-byte-per-posting raw
// footprint, broken down per encoding.
type PostingStats struct {
	Total           uint64                  `json:"total"`
	RawBytes        uint64                  `json:"raw_bytes"`
	StoredBytes     uint64                  `json:"stored_bytes"`
	BytesPerPosting float64                 `json:"bytes_per_posting"`
	Encodings       map[string]EncodingStat `json:"encodings"`
}

// Stats is a point-in-time snapshot of the engine.
type Stats struct {
	Shards      int          `json:"shards"`
	Storage     string       `json:"storage"`
	Docs        uint64       `json:"docs"`
	Terms       int          `json:"terms"`
	ShardTerms  []int        `json:"shard_terms,omitempty"`
	Postings    PostingStats `json:"postings"`
	Queries     uint64       `json:"queries"`
	QueryErrors uint64       `json:"query_errors"`
	Rebuilds    uint64       `json:"rebuilds"`
	Workers     int          `json:"workers"`
	Cache       CacheStats   `json:"cache"`
}

// Stats returns current counters. Terms counts distinct (term, shard)
// pairs: a term whose postings span k shards contributes k.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	shards := e.shards
	docs := e.docs
	e.mu.RUnlock()
	st := Stats{
		Shards:      e.cfg.Shards,
		Storage:     e.cfg.Storage.String(),
		Docs:        docs,
		Postings:    PostingStats{Encodings: map[string]EncodingStat{}},
		Queries:     e.queries.Load(),
		QueryErrors: e.errors.Load(),
		Rebuilds:    e.rebuilds.Load(),
		Workers:     e.cfg.Workers,
		Cache:       e.cache.stats(),
	}
	for _, ix := range shards {
		st.Terms += ix.TermCount()
		st.ShardTerms = append(st.ShardTerms, ix.TermCount())
		ms := ix.MemStats()
		st.Postings.Total += ms.Postings
		st.Postings.RawBytes += ms.RawBytes
		st.Postings.StoredBytes += ms.StoredBytes
		for enc, es := range ms.Encodings {
			agg := st.Postings.Encodings[enc]
			agg.Lists += es.Lists
			agg.Postings += es.Postings
			agg.Bytes += es.Bytes
			st.Postings.Encodings[enc] = agg
		}
	}
	if st.Postings.Total > 0 {
		st.Postings.BytesPerPosting = float64(st.Postings.StoredBytes) / float64(st.Postings.Total)
	}
	for enc, agg := range st.Postings.Encodings {
		if agg.Postings > 0 {
			agg.BytesPerPosting = float64(agg.Bytes) / float64(agg.Postings)
			st.Postings.Encodings[enc] = agg
		}
	}
	return st
}
