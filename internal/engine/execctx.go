package engine

import (
	"context"
	"sync"

	"fastintersect"
	"fastintersect/internal/compress"
	"fastintersect/internal/plan"
)

// execCtx is the engine's per-shard-evaluation execution context: it owns
// every piece of transient memory evalShard needs — the fastintersect
// kernel context, a free list of result buffers, the decoded-term memo for
// compressed storage, and a free list of evaluation frames. One context
// serves one evalShard call at a time; Query draws one per shard from the
// package pool so concurrent shard evaluations never share scratch.
//
// Ownership rules (the "memory discipline" ARCHITECTURE.md documents):
//
//   - evalShard returns (docs, owned): owned=true means docs is backed by a
//     buffer of this context, which the caller recycles with putBuf once
//     the docs are consumed; owned=false means docs aliases index memory
//     (a posting list) or the context's decode memo and must be treated as
//     read-only — it is never recycled directly.
//   - Every buffer handed out by getBuf returns to the free list exactly
//     once: through putBuf when its consumer is done, through releaseFrame
//     for results parked in a frame, or through putExecCtx for memo
//     entries. Buffers never escape the context: Query copies the final
//     docs into a fresh slice before caching or returning them.
type execCtx struct {
	fi    fastintersect.ExecContext
	free  [][]uint32
	memoK []*compress.Stored
	memoV [][]uint32
	memoM map[*compress.Stored][]uint32 // index over memoK once it outgrows linear scans
	pool  []*evalFrame
	lens  []int          // scratch for per-shard list-kernel pricing
	ops   []plan.Operand // scratch for per-shard stored-strategy pricing

	// rec, when non-nil, makes evalOp record per-operator actuals (execs,
	// rows, inclusive ns) into it — set by executePlan for traced queries,
	// indexed parallel to the executing plan's Ops. Untraced queries pay
	// one nil check per operator.
	rec *traceRec

	// ctx, when non-nil, is a cancellable request context: the exec loops
	// poll it (pollCancel) so an expired deadline aborts the evaluation
	// mid-shard. attachCtx leaves it nil for non-cancellable contexts, so
	// the fast path pays a single nil check per operator. Cleared by
	// putExecCtx — a pooled context must never pin a request's ctx tree.
	ctx   context.Context
	polls uint32 // pollCancel call counter (amortizes ctx.Err)
}

// attachCtx arms cancellation polling for one evaluation. Non-cancellable
// contexts (context.Background — the Query fast path) are dropped so every
// later poll is a nil check.
func (c *execCtx) attachCtx(ctx context.Context) {
	if ctx != nil && ctx.Done() != nil {
		c.ctx = ctx
	}
}

// pollCancel is the periodic cancellation check of the exec loops: called
// once per operator evaluation, it consults ctx.Err() only every 8th poll
// so deep plans pay almost nothing for cancellability. evalShard checks the
// context directly at shard entry, so every shard observes an expired
// deadline at least once regardless of plan size.
func (c *execCtx) pollCancel() error {
	if c.ctx == nil {
		return nil
	}
	c.polls++
	if c.polls&7 != 0 {
		return nil
	}
	return c.ctx.Err()
}

// cancelled reports the context error immediately (unamortized) — the
// per-shard entry check.
func (c *execCtx) cancelled() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// evalFrame holds one AND/OR operator's operand collections, recycled
// across evaluations so nested expressions allocate nothing steady-state.
type evalFrame struct {
	lists     []*fastintersect.List
	stored    []*compress.Stored
	kids      [][]uint32
	kidsOwned []bool
}

var execCtxPool = sync.Pool{New: func() any { return new(execCtx) }}

func getExecCtx() *execCtx { return execCtxPool.Get().(*execCtx) }

// putExecCtx reclaims the memo buffers, drops every reference into index
// memory (so a pooled context never pins a swapped-out shard set), and
// returns the context to the pool.
func putExecCtx(c *execCtx) {
	for _, b := range c.memoV {
		c.free = append(c.free, b)
	}
	clear(c.memoK)
	clear(c.memoV)
	// Drop the map index outright rather than clear it: one wide batch can
	// grow it to thousands of buckets, and a cleared-but-retained map would
	// (a) pin that memory for the lifetime of the pooled context and
	// (b) make every future put pay an O(buckets) clear walk — so the
	// context resets to the allocation-free linear-scan mode and rebuilds
	// the index only if another wide evaluation crosses memoScanLimit.
	c.memoM = nil
	c.memoK = c.memoK[:0]
	c.memoV = c.memoV[:0]
	c.fi.Reset()
	c.ctx = nil
	c.polls = 0
	if c.rec != nil {
		// Error-path cleanup: executePlan harvests (and detaches) recordings
		// on success, so one still attached here was abandoned mid-query.
		putTraceRec(c.rec)
		c.rec = nil
	}
	execCtxPool.Put(c)
}

// getBuf returns an empty result buffer, reusing a recycled one when
// available. The zero-capacity result of a cold context is fine: appends
// grow it once and putBuf keeps the grown array.
func (c *execCtx) getBuf() []uint32 {
	if n := len(c.free); n > 0 {
		b := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return b[:0]
	}
	return nil
}

// putBuf recycles a buffer previously handed out by getBuf.
func (c *execCtx) putBuf(b []uint32) {
	if cap(b) > 0 {
		c.free = append(c.free, b)
	}
}

// memoScanLimit is where the memo trades its allocation-free linear scan
// for a map index: single-query evaluations stay under it, but a context
// serving a whole QueryBatch can accumulate thousands of decoded terms,
// and scanning those per lookup would be quadratic in the batch's
// distinct-term count.
const memoScanLimit = 32

// decodeStored returns the decoded posting list of s, decoding at most once
// per context lifetime (one shard evaluation — or, in a batch, one shard's
// whole batch): a compressed term referenced twice pays a single decode.
// The returned slice is owned by the memo — valid until putExecCtx, never
// recycled by callers.
func (c *execCtx) decodeStored(s *compress.Stored) []uint32 {
	if len(c.memoK) > memoScanLimit {
		if b, ok := c.memoM[s]; ok {
			return b
		}
	} else {
		for i, k := range c.memoK {
			if k == s {
				return c.memoV[i]
			}
		}
	}
	b := s.DecodeInto(c.getBuf())
	c.memoK = append(c.memoK, s)
	c.memoV = append(c.memoV, b)
	if len(c.memoK) == memoScanLimit+1 {
		// Crossing the threshold: index everything accumulated so far.
		if c.memoM == nil {
			c.memoM = make(map[*compress.Stored][]uint32, 2*memoScanLimit)
		}
		for i, k := range c.memoK {
			c.memoM[k] = c.memoV[i]
		}
	} else if len(c.memoK) > memoScanLimit {
		c.memoM[s] = b
	}
	return b
}

// frame returns a cleared evaluation frame from the free list.
func (c *execCtx) frame() *evalFrame {
	if n := len(c.pool); n > 0 {
		f := c.pool[n-1]
		c.pool[n-1] = nil
		c.pool = c.pool[:n-1]
		return f
	}
	return &evalFrame{}
}

// releaseFrame recycles every result buffer still owned by the frame,
// drops its operand references and returns it to the free list. It is the
// single cleanup path for success, empty-result shortcuts and errors alike.
func (c *execCtx) releaseFrame(f *evalFrame) {
	for i, b := range f.kids {
		if f.kidsOwned[i] {
			c.putBuf(b)
		}
	}
	clear(f.kids)
	clear(f.lists)
	clear(f.stored)
	f.lists = f.lists[:0]
	f.stored = f.stored[:0]
	f.kids = f.kids[:0]
	f.kidsOwned = f.kidsOwned[:0]
	c.pool = append(c.pool, f)
}

// queryCtx is the per-query fan-out state: one slot per shard for the
// result, error and execution context of that shard's evaluation. Pooled so
// steady-state queries reuse the slot arrays.
type queryCtx struct {
	results [][]uint32
	owned   []bool
	errs    []error
	ctxs    []*execCtx
}

var queryCtxPool = sync.Pool{New: func() any { return new(queryCtx) }}

func getQueryCtx(shards int) *queryCtx {
	q := queryCtxPool.Get().(*queryCtx)
	if cap(q.results) < shards {
		q.results = make([][]uint32, shards)
		q.owned = make([]bool, shards)
		q.errs = make([]error, shards)
		q.ctxs = make([]*execCtx, shards)
	}
	q.results = q.results[:shards]
	q.owned = q.owned[:shards]
	q.errs = q.errs[:shards]
	q.ctxs = q.ctxs[:shards]
	return q
}

// putQueryCtx recycles every shard's result buffer into its own context,
// releases the contexts and returns the slot arrays to the pool.
func putQueryCtx(q *queryCtx) {
	for i := range q.results {
		if q.ctxs[i] != nil {
			if q.owned[i] {
				q.ctxs[i].putBuf(q.results[i])
			}
			putExecCtx(q.ctxs[i])
		}
		q.results[i] = nil
		q.owned[i] = false
		q.errs[i] = nil
		q.ctxs[i] = nil
	}
	queryCtxPool.Put(q)
}
