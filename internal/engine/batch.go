package engine

import (
	"context"
	"sync"

	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

// BatchResult pairs one query of a QueryBatch call with its outcome.
// Exactly one of Result and Err is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// QueryBatch executes many queries as one unit, amortizing what a loop of
// Query calls would repeat:
//
//   - queries that normalize to the same canonical form are parsed, planned
//     and executed once (they share one *Result);
//   - all cache misses of the batch are planned against one statistics
//     snapshot and evaluated per shard by ONE pooled execution context, so
//     the decoded-term memo of compressed storage is shared across the
//     whole batch — a compressed term appearing in ten queries is decoded
//     once per shard, not ten times;
//   - each shard is visited once for the whole batch instead of once per
//     query, halving fan-out scheduling overhead for small queries.
//
// Results are positionally aligned with queries. Parse failures are
// reported per query; an evaluation error fails only the queries sharing
// that canonical form. Like Query, every returned Docs slice is fresh or
// cache-shared and safe to retain.
func (e *Engine) QueryBatch(queries []string) []BatchResult {
	return e.QueryBatchContext(context.Background(), queries)
}

// QueryBatchCount is QueryBatch in count-only mode: every result carries
// only Result.Count (Docs stays nil), and the batch skips result
// materialization the same way QueryCount does — per-shard result lengths
// are summed without building merged slices. Deduplication, shared
// planning and the per-shard execution-context sharing are identical to
// QueryBatch.
func (e *Engine) QueryBatchCount(queries []string) []BatchResult {
	return e.QueryBatchCountContext(context.Background(), queries)
}

// QueryBatchCountContext is QueryBatchCount under a request context (see
// QueryBatchContext).
func (e *Engine) QueryBatchCountContext(ctx context.Context, queries []string) []BatchResult {
	return e.queryBatch(ctx, queries, true)
}

// QueryBatchContext is QueryBatch under a request context: a cancelled or
// expired ctx aborts the remaining evaluations, and every query that did not
// complete before the abort reports ctx's error. Shard workers observe the
// context between queries and inside the exec loops (the same polling Query
// uses), so a batch never outlives its deadline by more than one poll
// interval per worker.
func (e *Engine) QueryBatchContext(ctx context.Context, queries []string) []BatchResult {
	return e.queryBatch(ctx, queries, false)
}

func (e *Engine) queryBatch(ctx context.Context, queries []string, countOnly bool) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	e.met.batches.Inc()
	e.met.queries.Add(uint64(len(queries)))

	// Parse and deduplicate by canonical form, preserving first-seen order.
	byKey := map[string]*batchPending{}
	var uniq []*batchPending
	for i, q := range queries {
		ast, err := plan.Parse(q)
		if err != nil {
			e.met.queryErrors.Inc()
			out[i] = BatchResult{Err: err}
			continue
		}
		key := ast.String()
		u, ok := byKey[key]
		if !ok {
			u = &batchPending{key: key, ast: ast}
			byKey[key] = u
			uniq = append(uniq, u)
		}
		u.idxs = append(u.idxs, i)
	}

	gen := e.gen.Load()
	var pending []*batchPending
	for _, u := range uniq {
		if docs, ok := e.cache.get(u.key, gen); ok {
			if countOnly {
				u.res = &Result{Count: len(docs), Normalized: u.key, Cached: true}
			} else {
				u.res = &Result{Docs: docs, Count: len(docs), Normalized: u.key, Cached: true}
			}
			continue
		}
		pending = append(pending, u)
	}

	if len(pending) > 0 {
		shards := e.snapshot()
		if shards == nil {
			for _, u := range pending {
				e.met.queryErrors.Add(uint64(len(u.idxs)))
				u.err = ErrNotBuilt
			}
		} else {
			e.runBatch(ctx, shards, pending, gen, countOnly)
		}
	}

	for _, u := range uniq {
		for _, i := range u.idxs {
			out[i] = BatchResult{Result: u.res, Err: u.err}
		}
	}
	return out
}

// batchPending is one canonical form of a batch: the queries that share it,
// its plan context while executing, and its outcome.
type batchPending struct {
	key  string
	ast  plan.Node
	pc   *planCtx
	res  *Result
	err  error
	idxs []int // positions in the caller-aligned result slice
}

// runBatch plans every pending canonical form once and evaluates all plans
// shard by shard: one execution context per shard runs the whole batch, so
// its decoded-term memo and buffers are shared across queries.
func (e *Engine) runBatch(ctx context.Context, shards []*shard, pending []*batchPending, gen uint64, countOnly bool) {
	stored := e.cfg.Storage == invindex.StorageCompressed
	var stats *planStats
	for _, u := range pending {
		u.pc = getPlanCtx()
		if stats == nil {
			u.pc.stats.fill(shards)
			stats = &u.pc.stats
		}
		plan.Build(&u.pc.plan, u.ast, u.key, stats, e.planCosts(), e.cfg.PlanPolicy, stored)
	}

	nS := len(shards)
	docsM := make([][]uint32, len(pending)*nS)
	ownedM := make([]bool, len(pending)*nS)
	errsM := make([]error, len(pending)*nS)
	ctxs := make([]*execCtx, nS)
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			// One bounded worker slot per shard, for the whole batch. A
			// cancelled context skips the shard entirely; evalShard's entry
			// check then fails each query with the context error below.
			acquireErr := e.acquireWorker(ctx)
			if acquireErr == nil {
				defer func() { <-e.workers }()
			}
			c := getExecCtx()
			c.attachCtx(ctx)
			ctxs[i] = c
			for j, u := range pending {
				cell := j*nS + i
				if acquireErr != nil {
					errsM[cell] = acquireErr
					continue
				}
				docsM[cell], ownedM[cell], errsM[cell] = e.evalShard(c, s, i, &u.pc.plan)
			}
		}(i, s)
	}
	wg.Wait()

	for j, u := range pending {
		row := docsM[j*nS : (j+1)*nS]
		var evalErr error
		for _, err := range errsM[j*nS : (j+1)*nS] {
			if err != nil {
				evalErr = err
				break
			}
		}
		if evalErr != nil {
			e.met.queryErrors.Add(uint64(len(u.idxs)))
			u.err = evalErr
		} else if countOnly {
			// Shards partition the docID space: disjoint results, so the
			// count is the plain sum and no merged slice is built (or
			// cached — nothing was materialized).
			total := 0
			for _, r := range row {
				total += len(r)
			}
			u.res = &Result{Count: total, Normalized: u.key}
		} else {
			total := 0
			for _, r := range row {
				total += len(r)
			}
			merged := sets.UnionKInto(make([]uint32, 0, total), row...)
			e.cache.put(u.key, merged, gen)
			u.res = &Result{Docs: merged, Count: len(merged), Normalized: u.key}
		}
	}

	for i, c := range ctxs {
		if c == nil {
			continue
		}
		for j := range pending {
			cell := j*nS + i
			if ownedM[cell] {
				c.putBuf(docsM[cell])
			}
		}
		putExecCtx(c)
	}
	for _, u := range pending {
		putPlanCtx(u.pc)
		u.pc = nil
	}
}
