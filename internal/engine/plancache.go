package engine

import (
	"sync"

	"fastintersect/internal/plan"
)

// planCache memoizes built physical plans by their canonical query form,
// stamped with the statistics epoch they were priced against. It exists for
// engines whose result cache is disabled or cold: the repeated cost of a hot
// query then is planning (statistics aggregation + Build), not execution
// setup, and the plan for a given canonical form only goes stale when the
// underlying statistics change shape.
//
// Staleness is tracked by Engine.statsEpoch, NOT the index generation:
// document mutations bump the generation every time (they must — cached
// *results* would otherwise resurrect deleted documents), but a plan is
// only estimates, and serving one a few mutations old is correctness-safe
// because every shard re-prices kernels on its actual operand sizes and
// encodings at execution (see exec.go). What a plan must not survive is a
// representation change: an Install or a compaction can re-encode lists
// (e.g. a dense delta folding into the base flips a term to EncBitseg),
// and before the epoch existed a cached plan would keep its stale shapes
// and decode decisions forever. Install and every successful compaction
// swap bump the epoch; entries stamped with an older epoch are rebuilt.
//
// Cached plans are shared read-only across concurrent queries: execution
// never writes to a plan (per-query state lives on the exec contexts), and
// Explain/Analyze always rebuild into a pooled plan instead.
type planCache struct {
	mu sync.RWMutex
	m  map[string]planEntry
}

type planEntry struct {
	p     *plan.Plan
	epoch uint64
}

// planCacheCap bounds resident entries. Distinct canonical forms in a real
// workload are few; hitting the cap means something is generating unbounded
// query shapes, so dropping the whole map (and re-planning a few queries)
// is cheaper than tracking recency per entry.
const planCacheCap = 4096

func newPlanCache() *planCache {
	return &planCache{m: make(map[string]planEntry)}
}

// get returns the cached plan for key if it was built at the given epoch.
func (pc *planCache) get(key string, epoch uint64) *plan.Plan {
	pc.mu.RLock()
	e, ok := pc.m[key]
	pc.mu.RUnlock()
	if !ok || e.epoch != epoch {
		return nil
	}
	return e.p
}

// put stores a freshly built plan. A concurrent put for the same key wins
// arbitrarily — both plans were built from the same epoch's statistics.
func (pc *planCache) put(key string, p *plan.Plan, epoch uint64) {
	pc.mu.Lock()
	if len(pc.m) >= planCacheCap {
		clear(pc.m)
	}
	pc.m[key] = planEntry{p: p, epoch: epoch}
	pc.mu.Unlock()
}

// entries reports the resident entry count (for Stats and /metrics).
func (pc *planCache) entries() int {
	pc.mu.RLock()
	n := len(pc.m)
	pc.mu.RUnlock()
	return n
}
