package engine

import (
	"fmt"
	"time"

	"fastintersect"
	"fastintersect/internal/compress"
	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

// Physical-plan execution against one shard's base segment. The logical
// language, normalizer and cost model live in internal/plan; this file is
// the interpreter that runs a plan.Plan over an invindex.Index inside a
// pooled execCtx.
//
// Kernel selection is delegated to the plan package everywhere: the plan
// fixes the operand order (built once per query from engine-aggregate
// statistics), and each shard re-prices the kernel on its actual operand
// sizes and encodings through the same cost model — plan.ChooseListKernel
// for preprocessed lists, plan.ChooseStored for compressed lists,
// plan.ChoosePair for the pairwise composite/delta merges. No execution
// path picks a kernel inline.

// listAlgorithm resolves the algorithm for a conjunction over f.lists: the
// configured override when set (and applicable), otherwise the cost model
// over the shard's actual list sizes.
// It also reports the chosen kernel and the span it was priced at, so a
// traced query can attribute the execution to the kernel that actually ran
// (KernelNone when a fixed Config.Algorithm bypasses the cost model).
func (e *Engine) listAlgorithm(c *execCtx, p *plan.Plan, lists []*fastintersect.List) (fastintersect.Algorithm, plan.Kernel, int) {
	a := e.cfg.Algorithm
	if mx := a.MaxSets(); mx > 0 && len(lists) > mx {
		a = fastintersect.Auto
	}
	if a != fastintersect.Auto {
		return a, plan.KernelNone, 0
	}
	c.lens = c.lens[:0]
	span := 0
	for _, l := range lists {
		c.lens = append(c.lens, l.Len())
		if sp := l.Span(); sp > 0 && (span == 0 || sp < span) {
			span = sp
		}
	}
	k := plan.ChooseListKernel(e.planCosts(), p.Policy.Kernels, c.lens, span)
	return fastintersect.KernelAlgorithm(k), k, span
}

// intersectPair intersects two sorted sets into a context buffer with the
// kernel the cost model picks for their sizes.
func (e *Engine) intersectPair(c *execCtx, pol plan.KernelPolicy, a, b []uint32) []uint32 {
	if plan.ChoosePair(e.planCosts(), pol, len(a), len(b)) == plan.KernelGallop {
		return sets.IntersectGallopInto(c.getBuf(), a, b)
	}
	return sets.IntersectInto(c.getBuf(), a, b)
}

// evalOp evaluates physical operator i of p against one shard's base index,
// returning sorted docIDs. All transient memory comes from c; the returned
// slice either aliases index memory or the context's memo (owned = false;
// read-only) or is backed by a context buffer (owned = true; the caller
// recycles it with c.putBuf once consumed). Either way it is only valid
// until the context is released.
//
// When the query is traced (c.rec non-nil) each evaluation also records
// the operator's execution count, output rows and inclusive wall time;
// ExplainAnalyze derives exclusive times by subtracting children at render
// time. Untraced queries take the first branch — a nil check per operator.
//
// Each evaluation also polls the request context (pollCancel): operators
// are the engine's unit of work between kernel/decode runs, so a deadline
// that expires mid-shard aborts before the next kernel starts rather than
// after the whole shard finishes.
func (e *Engine) evalOp(c *execCtx, ix *invindex.Index, p *plan.Plan, i int32) ([]uint32, bool, error) {
	if err := c.pollCancel(); err != nil {
		return nil, false, err
	}
	if c.rec == nil {
		return e.evalOpInner(c, ix, p, i)
	}
	start := time.Now()
	docs, owned, err := e.evalOpInner(c, ix, p, i)
	a := &c.rec.ops[i]
	a.execs++
	a.rows += int64(len(docs))
	a.ns += time.Since(start).Nanoseconds()
	return docs, owned, err
}

func (e *Engine) evalOpInner(c *execCtx, ix *invindex.Index, p *plan.Plan, i int32) (docs []uint32, owned bool, err error) {
	op := &p.Ops[i]
	switch op.Kind {
	case plan.OpTerm:
		if ix.Storage() == invindex.StorageCompressed {
			s := ix.Stored(op.Term)
			if s == nil {
				return nil, false, nil
			}
			if s.Encoding() == compress.EncRaw {
				return s.Decode(), false, nil // aliases the stored slice, no copy
			}
			return c.decodeStored(s), false, nil
		}
		l := ix.Postings(op.Term)
		if l == nil {
			return nil, false, nil
		}
		return l.Set(), false, nil

	case plan.OpOr:
		f := c.frame()
		for _, ki := range p.KidOps(op) {
			s, kidOwned, err := e.evalOp(c, ix, p, ki)
			if err != nil {
				c.releaseFrame(f)
				return nil, false, err
			}
			f.kids = append(f.kids, s)
			f.kidsOwned = append(f.kidsOwned, kidOwned)
		}
		out := sets.UnionKInto(c.getBuf(), f.kids...)
		c.releaseFrame(f)
		return out, true, nil

	case plan.OpAnd:
		return e.evalAndOp(c, ix, p, i)
	}
	return nil, false, fmt.Errorf("engine: unknown plan op kind %d", op.Kind)
}

// recTerm records a term operand fetched inside a conjunction pushdown:
// the kernel consumes the list without materializing per-term output, so
// the recorded rows are the operand's input length and its time (one map
// lookup) is accounted to the parent (ns stays 0).
func recTerm(c *execCtx, ti int32, n int) {
	if c.rec == nil {
		return
	}
	a := &c.rec.ops[ti]
	a.execs++
	a.rows += int64(n)
}

// evalAndOp evaluates one conjunction operator under evalOp's ownership
// rules. The plan supplies the operand order; the kernel is re-priced on
// the shard's actual sizes.
func (e *Engine) evalAndOp(c *execCtx, ix *invindex.Index, p *plan.Plan, i int32) ([]uint32, bool, error) {
	op := &p.Ops[i]
	f := c.frame()
	compressed := ix.Storage() == invindex.StorageCompressed
	for _, ti := range p.TermOps(op) {
		// A wide conjunction fetches (and under compressed storage decodes)
		// many operands inside one operator — poll between them too.
		if err := c.pollCancel(); err != nil {
			c.releaseFrame(f)
			return nil, false, err
		}
		term := p.Ops[ti].Term
		var n int
		if compressed {
			s := ix.Stored(term)
			if s != nil {
				n = s.Len()
			}
			if n == 0 {
				recTerm(c, ti, 0)
				c.releaseFrame(f)
				return nil, false, nil // empty operand: whole conjunction is empty
			}
			recTerm(c, ti, n)
			f.stored = append(f.stored, s)
			continue
		}
		l := ix.Postings(term)
		if l != nil {
			n = l.Len()
		}
		if n == 0 {
			recTerm(c, ti, 0)
			c.releaseFrame(f)
			return nil, false, nil // empty operand: whole conjunction is empty
		}
		recTerm(c, ti, n)
		f.lists = append(f.lists, l)
	}
	var cur []uint32
	curOwned := false
	haveBase := false // distinguishes "no term operands" from an empty base intersection
	switch {
	case len(f.stored) >= 2:
		// The plan fixed the operand order; re-price the strategy on this
		// shard's actual lengths and encodings.
		c.ops = c.ops[:0]
		for _, s := range f.stored {
			c.ops = append(c.ops, plan.Operand{Len: s.Len(), Shape: s.Shape(), Span: s.Span()})
		}
		strat := plan.ChooseStored(e.planCosts(), p.Policy.Kernels, c.ops)
		if c.rec != nil {
			rec := &c.rec.ops[i]
			rec.kernel = strat
			rec.estNs += plan.PriceStored(e.planCosts(), strat, c.ops)
		}
		cur = compress.IntersectStoredStrategy(c.getBuf(), strat, f.stored...)
		curOwned = true
		haveBase = true
	case len(f.stored) == 1:
		s := f.stored[0]
		if s.Encoding() == compress.EncRaw {
			cur = s.Decode() // aliases the stored slice
		} else {
			cur = c.decodeStored(s)
		}
		haveBase = true
	case len(f.lists) >= 2:
		a, k, span := e.listAlgorithm(c, p, f.lists)
		if c.rec != nil && k != plan.KernelNone {
			rec := &c.rec.ops[i]
			rec.kernel = k
			rec.estNs += plan.PriceListKernel(e.planCosts(), k, c.lens, span)
		}
		out, err := fastintersect.IntersectInto(&c.fi, c.getBuf(), a, f.lists...)
		if err != nil {
			c.releaseFrame(f)
			return nil, false, err
		}
		if !a.Sorted() {
			sets.SortU32(out)
		}
		cur = out
		curOwned = true
		haveBase = true
	case len(f.lists) == 1:
		cur = f.lists[0].Set()
		haveBase = true
	}
	if haveBase && len(cur) == 0 {
		// The term conjunction is already empty; ANDing anything else in
		// cannot resurrect it — the composite kids are never evaluated.
		if curOwned {
			c.putBuf(cur)
		}
		c.releaseFrame(f)
		return nil, false, nil
	}
	for _, ki := range p.KidOps(op) {
		s, owned, err := e.evalOp(c, ix, p, ki)
		if err != nil {
			if curOwned {
				c.putBuf(cur)
			}
			c.releaseFrame(f)
			return nil, false, err
		}
		if len(s) == 0 {
			if owned {
				c.putBuf(s)
			}
			if curOwned {
				c.putBuf(cur)
			}
			c.releaseFrame(f)
			return nil, false, nil
		}
		if !haveBase {
			cur, curOwned, haveBase = s, owned, true
			continue
		}
		out := e.intersectPair(c, p.Policy.Kernels, cur, s)
		if curOwned {
			c.putBuf(cur)
		}
		if owned {
			c.putBuf(s)
		}
		cur = out
		curOwned = true
		if len(cur) == 0 {
			c.putBuf(cur)
			c.releaseFrame(f)
			return nil, false, nil
		}
	}
	// cur is non-nil here: plan.Bounded guarantees at least one positive
	// operand, and empty positives short-circuited above.
	for _, ni := range p.NegOps(op) {
		if len(cur) == 0 {
			break
		}
		s, owned, err := e.evalOp(c, ix, p, ni)
		if err != nil {
			if curOwned {
				c.putBuf(cur)
			}
			c.releaseFrame(f)
			return nil, false, err
		}
		if len(s) > 0 {
			out := sets.DifferenceInto(c.getBuf(), cur, s)
			if curOwned {
				c.putBuf(cur)
			}
			cur = out
			curOwned = true
		}
		if owned {
			c.putBuf(s)
		}
	}
	c.releaseFrame(f)
	return cur, curOwned, nil
}
