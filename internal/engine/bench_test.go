package engine

import (
	"sync"
	"testing"

	"fastintersect/internal/invindex"
	"fastintersect/internal/workload"
)

// The mixed AND/OR workload shared by the serving benchmarks and the
// BENCH_serve.json trajectory: a scaled-down Real corpus queried with the
// default operator mix plus a heavier OR fraction, so both the conjunctive
// push-down and the k-way union paths are exercised.
var benchState struct {
	once    sync.Once
	real    *workload.Real
	queries []string
}

func benchWorkload(tb testing.TB) (*workload.Real, []string) {
	benchState.once.Do(func() {
		cfg := workload.SmallRealConfig()
		cfg.NumDocs = 200_000
		cfg.NumTerms = 2_000
		cfg.NumQueries = 128
		benchState.real = workload.NewReal(cfg)
		sc := workload.DefaultStreamConfig()
		sc.OrFrac = 0.30
		sc.NotFrac = 0.10
		benchState.queries = benchState.real.QueryStream(256, sc)
	})
	if benchState.real == nil {
		tb.Fatal("bench workload failed to build")
	}
	return benchState.real, benchState.queries
}

func buildBenchEngine(tb testing.TB, st invindex.Storage, cacheSize int) *Engine {
	return buildBenchEngineCfg(tb, Config{Shards: 2, CacheSize: cacheSize, Storage: st})
}

// buildBenchEngineCfg builds the shared bench corpus into an engine with an
// arbitrary configuration (the overhead guard compares instrumented vs.
// NoMetrics on otherwise identical engines).
func buildBenchEngineCfg(tb testing.TB, cfg Config) *Engine {
	real, _ := benchWorkload(tb)
	e := New(cfg)
	b := e.NewBuilder()
	for t, docs := range real.Postings {
		if err := b.AddPosting(workload.TermName(t), docs); err != nil {
			tb.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		tb.Fatal(err)
	}
	return e
}

// BenchmarkQueryMixed measures the steady-state serving path on the mixed
// AND/OR workload with the result cache disabled, so every iteration pays
// the full parse → plan → shard fan-out → merge pipeline. B/op and
// allocs/op here are the numbers the ExecContext pooling is accountable
// for; TestQueryAllocs pins them as a regression bound.
func BenchmarkQueryMixed(b *testing.B) {
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		b.Run(st.String(), func(b *testing.B) {
			e := buildBenchEngine(b, st, 0)
			_, queries := benchWorkload(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
