package engine

import (
	"errors"
	"fmt"
	"sync"

	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

// The mutable tier. Each shard is a segmented index:
//
//   - base: a frozen invindex.Index (raw or compressed), exactly the
//     structure Install produces — every preprocessed/compressed kernel of
//     the read path keeps running against it unchanged.
//   - delta: a small in-memory segment (term → sorted docIDs plus a
//     docID → terms reverse map) absorbing AddDocument calls.
//   - tombs: a sorted docID tombstone set suppressing base postings.
//
// The invariant that makes boolean evaluation decomposable is that every
// document lives entirely in ONE segment: AddDocument always tombstones the
// docID (suppressing any copy the base may hold) while writing the new
// version into the delta. Deleted-then-re-added documents are therefore
// visible again (the delta wins over the tombstone), and updated documents
// never match on stale terms. Since the per-segment universes are disjoint,
// any AND/OR/NOT expression f satisfies
//
//	f(shard) = (f(base) − tombs) ∪ f(delta)
//
// — the base half runs the paper's kernels, the delta half a linear-merge
// evaluator over the small sorted delta lists (see evalDelta), and the union
// is one sets.UnionInto. All scratch comes from the pooled execCtx, so the
// zero-allocation discipline of the read path survives; with an empty delta
// and no tombstones the only added cost is one RLock.
//
// Compaction freezes the active delta, rebuilds a base off-lock from
// (base − tombs) ∪ frozen via the same BuildParallel path Install uses, and
// swaps it in. Mutations arriving mid-compaction land in a fresh active
// delta; their tombstones are recorded twice (tombs for the old base,
// newTombs for the frozen segment and the next base), so the swap keeps
// exactly the tombstones the new base has not folded in:
//
//	f(shard) = (f(base) − tombs) ∪ (f(frozen) − newTombs) ∪ f(delta)
//
// The visible document set is unchanged by a swap, which is why compaction
// does not bump the cache generation.
type shard struct {
	mu       sync.RWMutex
	base     *invindex.Index
	baseDocs []uint32  // sorted distinct docIDs of base (= base.DocIDs())
	delta    *deltaSeg // active delta segment
	frozen   *deltaSeg // delta being compacted; nil when idle
	tombs    []uint32  // sorted; suppresses base postings
	newTombs []uint32  // sorted; tombstones since the freeze; nil when idle
	live     int       // distinct visible documents

	compacting bool // claimed by at most one compaction goroutine
	retired    bool // set (before the swap) by Install replacing this shard
}

func newShard(ix *invindex.Index) *shard {
	return &shard{
		base:     ix,
		baseDocs: ix.DocIDs(),
		delta:    newDeltaSeg(),
		live:     len(ix.DocIDs()),
	}
}

// deltaSeg is the small mutable in-memory segment of one shard. All access
// is guarded by the owning shard's mutex (a frozen segment is read-only and
// additionally readable by the compaction goroutine off-lock).
type deltaSeg struct {
	terms    map[string][]uint32 // term → sorted docIDs
	docs     map[uint32][]string // docID → its distinct terms
	postings int                 // total postings across terms
}

func newDeltaSeg() *deltaSeg {
	return &deltaSeg{terms: map[string][]uint32{}, docs: map[uint32][]string{}}
}

// addDoc records terms (already deduplicated, no empties) for docID,
// replacing any previous delta version of the document.
func (d *deltaSeg) addDoc(docID uint32, terms []string) {
	d.removeDoc(docID)
	d.docs[docID] = terms
	for _, t := range terms {
		s, inserted := sets.InsertSorted(d.terms[t], docID)
		d.terms[t] = s
		if inserted {
			d.postings++
		}
	}
}

// removeDoc drops docID from the segment, returning whether it was present.
func (d *deltaSeg) removeDoc(docID uint32) bool {
	terms, ok := d.docs[docID]
	if !ok {
		return false
	}
	for _, t := range terms {
		s, removed := sets.RemoveSorted(d.terms[t], docID)
		if removed {
			d.postings--
		}
		if len(s) == 0 {
			delete(d.terms, t)
		} else {
			d.terms[t] = s
		}
	}
	delete(d.docs, docID)
	return true
}

// visibleLocked reports whether docID is currently visible in this shard.
// Caller holds s.mu (read or write).
func (s *shard) visibleLocked(docID uint32) bool {
	if _, ok := s.delta.docs[docID]; ok {
		return true
	}
	if s.frozen != nil {
		if _, ok := s.frozen.docs[docID]; ok && !sets.Contains(s.newTombs, docID) {
			return true
		}
	}
	return sets.Contains(s.baseDocs, docID) && !sets.Contains(s.tombs, docID)
}

// addTombLocked tombstones docID against the base (and, mid-compaction,
// against the frozen segment and the next base). Caller holds s.mu.
func (s *shard) addTombLocked(docID uint32) {
	s.tombs, _ = sets.InsertSorted(s.tombs, docID)
	if s.newTombs != nil {
		s.newTombs, _ = sets.InsertSorted(s.newTombs, docID)
	}
}

// dedupTerms filters empties and duplicates, preserving first-seen order.
func dedupTerms(terms []string) []string {
	out := make([]string, 0, len(terms))
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

// ErrNoTerms rejects AddDocument calls whose term list is empty after
// dropping empty strings and duplicates: a termless document would be
// "live" yet unreachable by any query, and would silently vanish from the
// doc count at the next compaction. Delete the document instead.
var ErrNoTerms = errors.New("engine: AddDocument requires at least one non-empty term")

// AddDocument makes a document queryable without a rebuild: its terms are
// written to the home shard's delta segment and any previously indexed
// version (base or delta) is superseded. Duplicate and empty terms are
// ignored; a list with no usable term at all returns ErrNoTerms. The index
// generation is bumped, so stale cached results are never served. Returns
// ErrNotBuilt before the first Install.
func (e *Engine) AddDocument(docID uint32, terms []string) error {
	terms = dedupTerms(terms)
	if len(terms) == 0 {
		return ErrNoTerms
	}
	s, err := e.lockShard(docID)
	if err != nil {
		return err
	}
	was := s.visibleLocked(docID)
	s.delta.addDoc(docID, terms)
	// Suppress any base/frozen copy; the delta version wins. This keeps the
	// one-segment-per-document invariant evalSegments relies on.
	s.addTombLocked(docID)
	if !was {
		s.live++
	}
	spawn := e.wantsCompactLocked(s)
	s.mu.Unlock()
	e.met.mutations.Inc()
	e.gen.Add(1)
	if spawn {
		go e.compactShard(s) //nolint:errcheck // failure restores the delta; retried on the next trigger
	}
	return nil
}

// DeleteDocument removes a document from query results immediately: the
// delta version (if any) is dropped and the docID is tombstoned against the
// base. It reports whether the document was visible before the call. The
// index generation is bumped, so cached results containing the document are
// never served again. Returns ErrNotBuilt before the first Install.
func (e *Engine) DeleteDocument(docID uint32) (bool, error) {
	s, err := e.lockShard(docID)
	if err != nil {
		return false, err
	}
	was := s.visibleLocked(docID)
	if !was {
		// Nothing is visible to suppress: any base/frozen copy is already
		// tombstoned. Skipping the tombstone and the generation bump keeps
		// no-op deletes (retries, probes of unknown IDs) from invalidating
		// the result cache and growing the tombstone set.
		s.mu.Unlock()
		return false, nil
	}
	s.delta.removeDoc(docID)
	s.addTombLocked(docID)
	s.live--
	spawn := e.wantsCompactLocked(s)
	s.mu.Unlock()
	e.met.mutations.Inc()
	e.gen.Add(1)
	if spawn {
		go e.compactShard(s) //nolint:errcheck
	}
	return true, nil
}

// lockShard returns docID's home shard with its write lock held, retrying
// when a concurrent Install retires the snapshotted shard set — this is what
// makes a mutation acknowledged to the caller land in the shard set that
// serves subsequent queries rather than in a discarded snapshot. Returns
// ErrNotBuilt (without a lock) before the first Install.
func (e *Engine) lockShard(docID uint32) (*shard, error) {
	for {
		shards := e.snapshot()
		if shards == nil {
			return nil, ErrNotBuilt
		}
		s := shards[shardOf(docID, len(shards))]
		s.mu.Lock()
		if !s.retired {
			return s, nil
		}
		// Install marked this shard retired just before swapping the set;
		// re-snapshot (briefly spinning until the swap lands).
		s.mu.Unlock()
	}
}

// wantsCompactLocked claims a background compaction for s when the
// configured threshold is crossed. Caller holds s.mu; when it returns true
// the caller must spawn compactShard(s) after unlocking.
func (e *Engine) wantsCompactLocked(s *shard) bool {
	if e.cfg.CompactThreshold <= 0 || s.compacting || s.retired {
		return false
	}
	if s.delta.postings < e.cfg.CompactThreshold && len(s.tombs) < e.cfg.CompactThreshold {
		return false
	}
	s.compacting = true
	return true
}

// Compact synchronously folds every shard's delta segment and tombstones
// into a fresh frozen base (the same parallel build path Install uses) and
// swaps it in per shard. Queries keep running throughout — they see the
// frozen delta until the swap — and the visible document set is unchanged,
// so the result cache stays valid. Shards already being compacted in the
// background are skipped. Returns ErrNotBuilt before the first Install.
func (e *Engine) Compact() error {
	shards := e.snapshot()
	if shards == nil {
		return ErrNotBuilt
	}
	var firstErr error
	for _, s := range shards {
		s.mu.Lock()
		if s.compacting || s.retired ||
			(s.delta.postings == 0 && len(s.delta.docs) == 0 && len(s.tombs) == 0) {
			s.mu.Unlock()
			continue
		}
		s.compacting = true
		s.mu.Unlock()
		if err := e.compactShard(s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// compactShard rebuilds s's base from (base − tombs) ∪ delta and swaps it
// in. The caller must have claimed s.compacting under s.mu. The shard lock
// is held only to freeze the delta and to swap — the rebuild itself runs
// off-lock against the immutable old base and the frozen segment. On build
// failure the frozen documents are folded back into the active delta (newer
// versions win) so no mutation is lost and a later compaction can retry.
func (e *Engine) compactShard(s *shard) error {
	s.mu.Lock()
	if s.retired {
		// An Install replaced this shard between the claim and now; a
		// rebuild of a discarded shard would be pure wasted work.
		s.compacting = false
		s.mu.Unlock()
		return nil
	}
	frozen := s.delta
	s.delta = newDeltaSeg()
	s.frozen = frozen
	s.newTombs = make([]uint32, 0, 8)
	frozenTombs := sets.Clone(s.tombs)
	base := s.base
	s.mu.Unlock()

	perShard := e.cfg.Workers / e.cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	nb, err := e.rebuildBase(base, frozen, frozenTombs, perShard)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = nil
	s.compacting = false
	if s.retired {
		// Replaced mid-build: the shard will never serve again, so neither
		// the new base nor a rollback matters. Just drop the frozen state.
		s.newTombs = nil
		return nil
	}
	if err != nil {
		s.rollbackFrozenLocked(frozen)
		return fmt.Errorf("engine: compaction: %w", err)
	}
	s.base = nb
	s.baseDocs = nb.DocIDs()
	// Tombstones recorded before the freeze are folded into the new base;
	// only the ones since the freeze still apply.
	s.tombs = s.newTombs
	s.newTombs = nil
	// Recount live documents: base documents not tombstoned since the
	// freeze, plus the active delta (whose documents are all tombstoned, so
	// there is no double count).
	live := len(s.delta.docs)
	for _, id := range s.baseDocs {
		if !sets.Contains(s.tombs, id) {
			live++
		}
	}
	s.live = live
	// The swap can re-encode any list in this shard (a dense delta folding
	// into the base may flip a term from Gamma to Bitseg, say), so plans
	// priced against the old shapes must be rebuilt: bump the stats epoch,
	// invalidating every plan-cache entry (see plancache.go).
	e.statsEpoch.Add(1)
	e.met.compactions.Inc()
	return nil
}

// rollbackFrozenLocked restores a frozen delta after a failed compaction
// build: its documents fold back into the active delta so no mutation is
// lost and a later compaction can retry. Documents re-added during the
// failed build are newer, so they win, and documents deleted during it
// (tombstoned in newTombs) must stay dead — the delta would otherwise
// override their tombstone and resurrect them. Their tombstones are still
// in s.tombs (compaction never removes any before the swap), so base
// suppression stays correct. Caller holds s.mu.
func (s *shard) rollbackFrozenLocked(frozen *deltaSeg) {
	for id, terms := range frozen.docs {
		if _, ok := s.delta.docs[id]; ok {
			continue
		}
		if sets.Contains(s.newTombs, id) {
			continue
		}
		s.delta.addDoc(id, terms)
	}
	s.newTombs = nil
}

// rebuildBase materializes (base − tombs) ∪ delta term by term into a fresh
// index and builds it. base is immutable and delta is frozen, so no lock is
// needed.
func (e *Engine) rebuildBase(base *invindex.Index, delta *deltaSeg, tombs []uint32, workers int) (*invindex.Index, error) {
	nb := invindex.NewWithStorage(e.cfg.Storage, e.cfg.IndexOptions...)
	var scratch []uint32
	for _, term := range base.Terms() {
		var postings []uint32
		if base.Storage() == invindex.StorageCompressed {
			postings = base.Stored(term).Decode()
		} else {
			postings = base.Postings(term).Set()
		}
		scratch = sets.DifferenceInto(scratch[:0], postings, tombs)
		merged := scratch
		if add := delta.terms[term]; len(add) > 0 {
			merged = sets.Union(scratch, add)
		}
		if len(merged) == 0 {
			continue
		}
		if err := nb.AddPosting(term, merged); err != nil {
			return nil, err
		}
	}
	for term, add := range delta.terms {
		if base.DocFreq(term) > 0 || len(add) == 0 {
			continue // already merged above
		}
		if err := nb.AddPosting(term, add); err != nil {
			return nil, err
		}
	}
	if err := nb.BuildParallel(workers); err != nil {
		return nil, err
	}
	return nb, nil
}

// evalSegments evaluates a physical plan against one shard's segmented
// index: the base through the preprocessed/compressed kernels (evalOp), the
// delta segments through the plan-driven pairwise-merge delta evaluator,
// composed as (f(base) − tombs) ∪ (f(frozen) − newTombs) ∪ f(delta).
// Ownership rules match evalOp: the returned slice either aliases
// index/delta memory (owned = false, read-only) or is backed by a context
// buffer (owned = true).
//
// The shard read lock is held for the whole evaluation; mutations and
// compaction swaps therefore see shard state atomically, and the immutable
// base plus frozen delta make the off-lock compaction rebuild safe.
func (e *Engine) evalSegments(c *execCtx, s *shard, p *plan.Plan) ([]uint32, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs, owned, err := e.evalOp(c, s.base, p, p.Root())
	if err != nil {
		if owned {
			c.putBuf(docs)
		}
		return nil, false, err
	}
	if len(s.tombs) > 0 && len(docs) > 0 {
		out := sets.DifferenceInto(c.getBuf(), docs, s.tombs)
		if owned {
			c.putBuf(docs)
		}
		docs, owned = out, true
	}
	if s.frozen != nil && len(s.frozen.docs) > 0 {
		docs, owned = e.unionDeltaEval(c, docs, owned, s.frozen, s.newTombs, p)
	}
	if len(s.delta.docs) > 0 {
		docs, owned = e.unionDeltaEval(c, docs, owned, s.delta, nil, p)
	}
	return docs, owned, nil
}

// unionDeltaEval evaluates the plan over one delta segment, subtracts tombs
// (the post-freeze tombstones, for a frozen segment), and unions the outcome
// into docs under the execCtx ownership protocol.
func (e *Engine) unionDeltaEval(c *execCtx, docs []uint32, owned bool, d *deltaSeg, tombs []uint32, p *plan.Plan) ([]uint32, bool) {
	res, resOwned := e.evalDelta(c, d, p, p.Root())
	if !resOwned && len(res) > 0 {
		// An unowned result aliases a live delta list, which a mutation may
		// shift in place the moment the shard lock is released — unlike base
		// postings, which stay immutable even after a compaction swap. Copy
		// into a context buffer while still under the lock.
		res, resOwned = append(c.getBuf(), res...), true
	}
	if len(tombs) > 0 && len(res) > 0 {
		out := sets.DifferenceInto(c.getBuf(), res, tombs)
		if resOwned {
			c.putBuf(res)
		}
		res, resOwned = out, true
	}
	if len(res) == 0 {
		if resOwned {
			c.putBuf(res)
		}
		return docs, owned
	}
	if len(docs) == 0 {
		if owned {
			c.putBuf(docs)
		}
		return res, resOwned
	}
	out := sets.UnionInto(c.getBuf(), docs, res)
	if owned {
		c.putBuf(docs)
	}
	if resOwned {
		c.putBuf(res)
	}
	return out, true
}

// evalDelta evaluates physical operator i against one delta segment with
// pairwise sorted-set kernels — delta lists are small by construction, so
// the preprocessed structures would not pay for themselves here, but the
// merge-vs-gallop choice still goes through the planner's cost model
// (plan.ChoosePair) on the actual delta list sizes. Ownership rules match
// evalOp: owned = false aliases a delta list and is read-only. The
// expression cannot fail against a map of sorted lists, so no error is
// returned.
func (e *Engine) evalDelta(c *execCtx, d *deltaSeg, p *plan.Plan, i int32) ([]uint32, bool) {
	op := &p.Ops[i]
	switch op.Kind {
	case plan.OpTerm:
		return d.terms[op.Term], false

	case plan.OpOr:
		f := c.frame()
		for _, ki := range p.KidOps(op) {
			s, kidOwned := e.evalDelta(c, d, p, ki)
			f.kids = append(f.kids, s)
			f.kidsOwned = append(f.kidsOwned, kidOwned)
		}
		out := sets.UnionKInto(c.getBuf(), f.kids...)
		c.releaseFrame(f)
		return out, true

	case plan.OpAnd:
		var cur []uint32
		curOwned, haveBase := false, false
		// Positive operands in plan order: the term pushdown first, then the
		// composite kids.
		step := func(s []uint32, owned bool) bool {
			if len(s) == 0 {
				if owned {
					c.putBuf(s)
				}
				if curOwned {
					c.putBuf(cur)
				}
				return false // empty operand: whole conjunction is empty
			}
			if !haveBase {
				cur, curOwned, haveBase = s, owned, true
				return true
			}
			out := e.intersectPair(c, p.Policy.Kernels, cur, s)
			if curOwned {
				c.putBuf(cur)
			}
			if owned {
				c.putBuf(s)
			}
			cur, curOwned = out, true
			if len(cur) == 0 {
				c.putBuf(cur)
				return false
			}
			return true
		}
		for _, ti := range p.TermOps(op) {
			if !step(d.terms[p.Ops[ti].Term], false) {
				return nil, false
			}
		}
		for _, ki := range p.KidOps(op) {
			s, owned := e.evalDelta(c, d, p, ki)
			if !step(s, owned) {
				return nil, false
			}
		}
		// plan.Bounded guarantees at least one positive operand, so cur is set.
		for _, ni := range p.NegOps(op) {
			if len(cur) == 0 {
				break
			}
			s, owned := e.evalDelta(c, d, p, ni)
			if len(s) > 0 {
				out := sets.DifferenceInto(c.getBuf(), cur, s)
				if curOwned {
					c.putBuf(cur)
				}
				cur, curOwned = out, true
			}
			if owned {
				c.putBuf(s)
			}
		}
		return cur, curOwned
	}
	return nil, false
}
