package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/segment"
	"fastintersect/internal/sets"
)

// The mutable tier. Each shard is a tiered segmented index:
//
//   - base: a frozen invindex.Index (raw or compressed), exactly the
//     structure Install produces — every preprocessed/compressed kernel of
//     the read path keeps running against it unchanged — plus baseTombs,
//     its tombstone filter.
//   - frozen: zero or more immutable segment.Frozen segments, each with its
//     own tombstone filter and per-term document frequencies. Produced by
//     freezing the active segment (a map move, no copying) and coalesced by
//     size-tiered merges.
//   - active: one segment.Mutable write head absorbing AddDocument calls.
//
// The invariant that makes boolean evaluation decomposable is that every
// document is VISIBLE in exactly one segment: a mutation tombstones the
// docID in every older segment that holds a copy while writing the new
// version into the active segment. Deleted-then-re-added documents are
// therefore visible again, updated documents never match on stale terms, and
// since the per-segment visible universes are disjoint, any AND/OR/NOT
// expression f satisfies
//
//	f(shard) = ∪ over segments s of (f(s) − s.tombs)
//
// — the base runs the paper's kernels, each in-memory segment a linear-merge
// evaluator over its small sorted lists (see evalSeg), and the results
// combine with one sets.UnionKInto. Order independence is what permits
// size-tiered merging: any subset of frozen segments coalesces into one
// without consulting the rest. All scratch comes from the pooled execCtx, so
// the zero-allocation discipline of the read path survives; with no frozen
// segments and an empty active segment the only added cost is one RLock.
//
// Compaction is tiered (Config.CompactPolicy):
//
//   - A freeze moves the active segment into the frozen tier under the shard
//     lock — O(docs) for the docID set, zero posting copies, no pause for
//     readers beyond the lock handoff.
//   - When the tier exceeds Config.MaxSegments, a size-tiered merge
//     coalesces only the smallest segments, off-lock, against tombstone
//     snapshots; tombstones added mid-merge are re-applied at swap time.
//     Write amplification is bounded by merge fan-in instead of corpus size.
//   - A full rebuild (Compact, or the background escalation once baseTombs
//     crosses rebuildTombFactor × CompactThreshold) folds everything into a
//     fresh base via the same BuildParallel path Install uses. Only this
//     step re-encodes lists, so only it (and Install) bumps the stats epoch.
//
// The visible document set is unchanged by freezes, merges and rebuilds,
// which is why none of them bump the cache generation.
type shard struct {
	mu        sync.RWMutex
	base      *invindex.Index
	baseDocs  []uint32 // sorted distinct docIDs of base (= base.DocIDs())
	baseTombs []uint32 // sorted, ⊆ baseDocs; suppresses base postings
	frozen    []*segment.Frozen
	active    *segment.Mutable

	compacting bool // claimed by at most one compaction goroutine
	retired    bool // set (before the swap) by Install replacing this shard
}

func newShard(ix *invindex.Index) *shard {
	return &shard{
		base:     ix,
		baseDocs: ix.DocIDs(),
		active:   segment.NewMutable(),
	}
}

// liveLocked counts the distinct visible documents of the shard. The
// one-visible-segment invariant makes this exact arithmetic: every segment's
// tombstone filter is a subset of its own document set. Caller holds s.mu.
func (s *shard) liveLocked() int {
	live := len(s.baseDocs) - len(s.baseTombs) + s.active.NumDocs()
	for _, f := range s.frozen {
		live += f.LiveDocs()
	}
	return live
}

// visibleLocked reports whether docID is currently visible in this shard.
// Caller holds s.mu (read or write).
func (s *shard) visibleLocked(docID uint32) bool {
	if s.active.HasDoc(docID) {
		return true
	}
	for _, f := range s.frozen {
		if f.Visible(docID) {
			return true
		}
	}
	return sets.Contains(s.baseDocs, docID) && !sets.Contains(s.baseTombs, docID)
}

// addTombLocked tombstones docID in every segment below the active one that
// holds a copy, preserving the one-visible-segment invariant. Caller holds
// s.mu.
func (s *shard) addTombLocked(docID uint32) {
	for _, f := range s.frozen {
		f.AddTomb(docID)
	}
	if sets.Contains(s.baseDocs, docID) {
		s.baseTombs, _ = sets.InsertSorted(s.baseTombs, docID)
	}
}

// dedupTerms filters empties and duplicates, preserving first-seen order.
func dedupTerms(terms []string) []string {
	out := make([]string, 0, len(terms))
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

// ErrNoTerms rejects AddDocument calls whose term list is empty after
// dropping empty strings and duplicates: a termless document would be
// "live" yet unreachable by any query, and would silently vanish from the
// doc count at the next compaction. Delete the document instead.
var ErrNoTerms = errors.New("engine: AddDocument requires at least one non-empty term")

// AddDocument makes a document queryable without a rebuild: its terms are
// written to the home shard's active segment and any previously indexed
// version (base, frozen or active) is superseded. Duplicate and empty terms
// are ignored; a list with no usable term at all returns ErrNoTerms. The
// index generation is bumped, so stale cached results are never served.
// Returns ErrNotBuilt before the first Install.
func (e *Engine) AddDocument(docID uint32, terms []string) error {
	terms = dedupTerms(terms)
	if len(terms) == 0 {
		return ErrNoTerms
	}
	s, err := e.lockShard(docID)
	if err != nil {
		return err
	}
	s.active.AddDoc(docID, terms)
	// Suppress every older copy; the active version wins. This keeps the
	// one-visible-segment invariant evalSegments relies on.
	s.addTombLocked(docID)
	spawn := e.wantsCompactLocked(s)
	s.mu.Unlock()
	e.met.mutations.Inc()
	e.gen.Add(1)
	if spawn {
		go e.compactShard(s) //nolint:errcheck // state is untouched on failure; retried on the next trigger
	}
	return nil
}

// DeleteDocument removes a document from query results immediately: the
// active version (if any) is dropped and the docID is tombstoned in every
// segment holding a copy. It reports whether the document was visible before
// the call. The index generation is bumped, so cached results containing the
// document are never served again. Returns ErrNotBuilt before the first
// Install.
func (e *Engine) DeleteDocument(docID uint32) (bool, error) {
	s, err := e.lockShard(docID)
	if err != nil {
		return false, err
	}
	if !s.visibleLocked(docID) {
		// Nothing is visible to suppress: any base/frozen copy is already
		// tombstoned. Skipping the tombstone and the generation bump keeps
		// no-op deletes (retries, probes of unknown IDs) from invalidating
		// the result cache and growing the tombstone sets.
		s.mu.Unlock()
		return false, nil
	}
	s.active.RemoveDoc(docID)
	s.addTombLocked(docID)
	spawn := e.wantsCompactLocked(s)
	s.mu.Unlock()
	e.met.mutations.Inc()
	e.gen.Add(1)
	if spawn {
		go e.compactShard(s) //nolint:errcheck
	}
	return true, nil
}

// lockShard returns docID's home shard with its write lock held, retrying
// when a concurrent Install retires the snapshotted shard set — this is what
// makes a mutation acknowledged to the caller land in the shard set that
// serves subsequent queries rather than in a discarded snapshot. Returns
// ErrNotBuilt (without a lock) before the first Install.
func (e *Engine) lockShard(docID uint32) (*shard, error) {
	for {
		shards := e.snapshot()
		if shards == nil {
			return nil, ErrNotBuilt
		}
		s := shards[shardOf(docID, len(shards))]
		s.mu.Lock()
		if !s.retired {
			return s, nil
		}
		// Install marked this shard retired just before swapping the set;
		// re-snapshot (briefly spinning until the swap lands).
		s.mu.Unlock()
	}
}

// rebuildTombFactor escalates a tiered compaction to a full rebuild once the
// base tombstone filter reaches this multiple of the compaction threshold:
// base tombstones are only purged by a rebuild, and past this point the
// per-query subtraction outweighs the rebuild's amortized cost.
const rebuildTombFactor = 4

// defaultMaxSegments bounds the frozen tier when Config.MaxSegments is 0.
const defaultMaxSegments = 4

func (e *Engine) maxSegments() int {
	if e.cfg.MaxSegments > 0 {
		return e.cfg.MaxSegments
	}
	return defaultMaxSegments
}

// tombTrigger is the base-tombstone count that triggers a background
// compaction. Under the rebuild policy any threshold crossing warrants the
// rebuild that purges them; under the tiered policy a rebuild is the only
// step that purges base tombstones, so the trigger sits at the escalation
// point — triggering earlier would just spawn freeze-only no-ops on every
// mutation.
func (e *Engine) tombTrigger() int {
	if e.cfg.CompactPolicy == CompactRebuild {
		return e.cfg.CompactThreshold
	}
	return rebuildTombFactor * e.cfg.CompactThreshold
}

// wantsCompactLocked claims a background compaction for s when the
// configured threshold is crossed. Caller holds s.mu; when it returns true
// the caller must spawn compactShard(s) after unlocking.
func (e *Engine) wantsCompactLocked(s *shard) bool {
	if e.cfg.CompactThreshold <= 0 || s.compacting || s.retired {
		return false
	}
	if s.active.NumPostings() < e.cfg.CompactThreshold &&
		len(s.baseTombs) < e.tombTrigger() &&
		len(s.frozen) <= e.maxSegments() {
		return false
	}
	s.compacting = true
	return true
}

// Compact synchronously folds every shard's whole tier (frozen segments,
// active segment, tombstones) into a fresh frozen base — the same parallel
// build path Install uses — and swaps it in per shard. Queries keep running
// throughout and the visible document set is unchanged, so the result cache
// stays valid. Shards already being compacted in the background, and shards
// whose tier is already empty (no frozen segments, empty active segment, no
// tombstones — a no-op rebuild), are skipped. Returns ErrNotBuilt before the
// first Install.
func (e *Engine) Compact() error {
	shards := e.snapshot()
	if shards == nil {
		return ErrNotBuilt
	}
	var firstErr error
	for _, s := range shards {
		s.mu.Lock()
		if s.compacting || s.retired ||
			(s.active.NumDocs() == 0 && len(s.frozen) == 0 && len(s.baseTombs) == 0) {
			s.mu.Unlock()
			continue
		}
		s.compacting = true
		s.mu.Unlock()
		if err := e.rebuildShard(s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FreezeActive moves every shard's non-empty active segment into its frozen
// tier — a map move under the shard lock, no postings copied. Exposed so
// tests and operational tooling can force multi-segment tiers
// deterministically; the background compaction path freezes on its own.
// Returns ErrNotBuilt before the first Install.
func (e *Engine) FreezeActive() error {
	shards := e.snapshot()
	if shards == nil {
		return ErrNotBuilt
	}
	for _, s := range shards {
		s.mu.Lock()
		if !s.retired {
			e.freezeActiveLocked(s)
		}
		s.mu.Unlock()
	}
	return nil
}

// freezeActiveLocked freezes s's active segment if non-empty. Caller holds
// s.mu.
func (e *Engine) freezeActiveLocked(s *shard) {
	if s.active.NumDocs() == 0 {
		return
	}
	s.frozen = append(s.frozen, s.active.Freeze())
	s.active = segment.NewMutable()
	e.met.segmentFreezes.Inc()
}

// MergeSegments synchronously runs size-tiered merge passes on every shard
// until its frozen tier is within Config.MaxSegments (shards with a claimed
// background compaction are skipped). Exposed for tests and tooling; the
// background compaction path merges on its own. Returns ErrNotBuilt before
// the first Install.
func (e *Engine) MergeSegments() error {
	shards := e.snapshot()
	if shards == nil {
		return ErrNotBuilt
	}
	for _, s := range shards {
		for {
			s.mu.Lock()
			if s.compacting || s.retired || len(s.frozen) <= e.maxSegments() {
				s.mu.Unlock()
				break
			}
			s.compacting = true
			victims, snaps := s.pickMergeLocked(e.maxSegments())
			s.mu.Unlock()
			e.mergeSegments(s, victims, snaps)
		}
	}
	return nil
}

// compactShard is the background compaction job: it freezes the active
// segment, then either runs a size-tiered merge (tier over MaxSegments), a
// full rebuild (tombstone escalation, or Config.CompactPolicy ==
// CompactRebuild), or stops after the freeze. The caller must have claimed
// s.compacting under s.mu; the claim is released on every path.
func (e *Engine) compactShard(s *shard) error {
	if e.cfg.CompactPolicy == CompactRebuild {
		return e.rebuildShard(s)
	}
	s.mu.Lock()
	if s.retired {
		s.compacting = false
		s.mu.Unlock()
		return nil
	}
	e.freezeActiveLocked(s)
	if e.cfg.CompactThreshold > 0 && len(s.baseTombs) >= e.tombTrigger() {
		s.mu.Unlock()
		return e.rebuildShard(s) // claim carries over
	}
	var victims []*segment.Frozen
	var snaps [][]uint32
	if len(s.frozen) > e.maxSegments() {
		victims, snaps = s.pickMergeLocked(e.maxSegments())
	}
	s.mu.Unlock()
	if victims == nil {
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
		e.met.compactions.Inc()
		return nil
	}
	e.mergeSegments(s, victims, snaps)
	e.met.compactions.Inc()
	return nil
}

// pickMergeLocked selects the merge victims of one size-tiered pass: the
// smallest segments first — enough to bring the tier back under maxSegs —
// extended while the next-larger segment is no bigger than twice the
// payload merged so far. Merging small-into-small is what bounds write
// amplification: a large segment is only rewritten when its peers have
// grown to its scale. Returns the victims plus a snapshot of each one's
// tombstone filter (the merge runs off-lock against the snapshots).
// Caller holds s.mu and has claimed s.compacting.
func (s *shard) pickMergeLocked(maxSegs int) ([]*segment.Frozen, [][]uint32) {
	bySize := make([]*segment.Frozen, len(s.frozen))
	copy(bySize, s.frozen)
	sort.Slice(bySize, func(i, j int) bool { return bySize[i].NumPostings() < bySize[j].NumPostings() })
	need := len(s.frozen) - maxSegs + 1
	if need < 2 {
		need = 2
	}
	if need > len(bySize) {
		need = len(bySize)
	}
	cum := 0
	n := 0
	for ; n < len(bySize); n++ {
		if n >= need && bySize[n].NumPostings() > 2*cum {
			break
		}
		cum += bySize[n].NumPostings()
	}
	victims := bySize[:n]
	snaps := make([][]uint32, len(victims))
	for i, v := range victims {
		snaps[i] = sets.Clone(v.Tombs())
	}
	return victims, snaps
}

// mergeSegments coalesces victims into one segment off-lock and swaps it
// into s's tier, re-applying tombstones recorded after the snapshots and
// releasing the compaction claim. Victims keep serving queries until the
// swap; their postings are immutable, so the off-lock merge reads them
// safely against the tombstone snapshots.
func (e *Engine) mergeSegments(s *shard, victims []*segment.Frozen, snaps [][]uint32) {
	merged := segment.Merge(victims, snaps)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.compacting = false
	if s.retired {
		return // replaced mid-merge: the shard will never serve again
	}
	isVictim := func(f *segment.Frozen) bool {
		for _, v := range victims {
			if v == f {
				return true
			}
		}
		return false
	}
	kept := s.frozen[:0]
	for _, f := range s.frozen {
		if !isVictim(f) {
			kept = append(kept, f)
		}
	}
	// Deletes that landed between snapshot and swap tombstoned the victims;
	// re-apply them to the merged segment (AddTomb skips documents the merge
	// already dropped).
	for i, v := range victims {
		for _, id := range sets.Difference(v.Tombs(), snaps[i]) {
			merged.AddTomb(id)
		}
	}
	if merged.NumDocs() > 0 {
		kept = append(kept, merged)
	}
	for i := len(kept); i < len(s.frozen); i++ {
		s.frozen[i] = nil // drop trailing refs so filtered-out segments free
	}
	s.frozen = kept
	e.met.segmentMerges.Inc()
	e.met.compactionBytes.Add(4 * uint64(merged.NumPostings()))
	// No stats-epoch bump: a merge moves postings between in-memory segments
	// without touching the base encodings, so every memoized plan stays
	// correctly priced. Only rebuilds and installs re-encode lists.
}

// rebuildShard folds s's entire tier — (base − baseTombs) and every frozen
// segment minus its tombstones — into a fresh base index and swaps it in.
// The caller must have claimed s.compacting under s.mu. The shard lock is
// held only to freeze the active segment and to swap — the rebuild itself
// runs off-lock against the immutable base and frozen segments, with
// tombstones recorded mid-build re-applied at swap time. On build failure
// the tier is untouched (frozen segments are only dropped at a successful
// swap), so no mutation is lost and a later compaction retries.
func (e *Engine) rebuildShard(s *shard) error {
	s.mu.Lock()
	if s.retired {
		// An Install replaced this shard between the claim and now; a
		// rebuild of a discarded shard would be pure wasted work.
		s.compacting = false
		s.mu.Unlock()
		return nil
	}
	e.freezeActiveLocked(s)
	base := s.base
	baseTombsSnap := sets.Clone(s.baseTombs)
	inputs := make([]*segment.Frozen, len(s.frozen))
	copy(inputs, s.frozen)
	snaps := make([][]uint32, len(inputs))
	for i, f := range inputs {
		snaps[i] = sets.Clone(f.Tombs())
	}
	s.mu.Unlock()

	perShard := e.cfg.Workers / e.cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	nb, err := e.rebuildBase(base, inputs, baseTombsSnap, snaps, perShard)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.compacting = false
	if s.retired {
		return nil // replaced mid-build: neither the new base nor the old tier matters
	}
	if err != nil {
		return fmt.Errorf("engine: compaction: %w", err)
	}
	// Tombstones recorded during the build apply to documents the new base
	// has folded in; carry exactly those forward.
	newTombs := sets.Difference(s.baseTombs, baseTombsSnap)
	for i, f := range inputs {
		newTombs = sets.Union(newTombs, sets.Difference(f.Tombs(), snaps[i]))
	}
	s.base = nb
	s.baseDocs = nb.DocIDs()
	s.baseTombs = newTombs
	// Segments frozen after the snapshot (e.g. by a concurrent FreezeActive)
	// were not folded in; keep them.
	kept := s.frozen[:0]
	for _, f := range s.frozen {
		folded := false
		for _, in := range inputs {
			if in == f {
				folded = true
				break
			}
		}
		if !folded {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(s.frozen); i++ {
		s.frozen[i] = nil
	}
	s.frozen = kept
	// The swap can re-encode any list in this shard (a dense segment folding
	// into the base may flip a term from Gamma to Bitseg, say), so plans
	// priced against the old shapes must be rebuilt: bump the stats epoch,
	// invalidating every plan-cache entry (see plancache.go).
	e.statsEpoch.Add(1)
	e.met.compactions.Inc()
	e.met.compactionBytes.Add(4 * uint64(nb.MemStats().Postings))
	return nil
}

// rebuildBase materializes (base − baseTombs) ∪ (segments − their tombstone
// snapshots) term by term into a fresh index and builds it. base and the
// frozen segments' postings are immutable, so no lock is needed.
func (e *Engine) rebuildBase(base *invindex.Index, segs []*segment.Frozen, baseTombs []uint32, snaps [][]uint32, workers int) (*invindex.Index, error) {
	nb := invindex.NewWithStorage(e.cfg.Storage, e.cfg.IndexOptions...)
	var scratch, scratch2 []uint32
	segTerm := func(term string) []uint32 {
		var merged []uint32
		for i, f := range segs {
			ps := f.Postings(term)
			if len(ps) == 0 {
				continue
			}
			scratch2 = sets.DifferenceInto(scratch2[:0], ps, snaps[i])
			merged = sets.Union(merged, scratch2)
		}
		return merged
	}
	for _, term := range base.Terms() {
		var postings []uint32
		if base.Storage() == invindex.StorageCompressed {
			postings = base.Stored(term).Decode()
		} else {
			postings = base.Postings(term).Set()
		}
		scratch = sets.DifferenceInto(scratch[:0], postings, baseTombs)
		merged := scratch
		if add := segTerm(term); len(add) > 0 {
			merged = sets.Union(scratch, add)
		}
		if len(merged) == 0 {
			continue
		}
		if err := nb.AddPosting(term, merged); err != nil {
			return nil, err
		}
	}
	seen := map[string]bool{}
	for _, f := range segs {
		for _, term := range f.Terms() {
			if seen[term] || base.DocFreq(term) > 0 {
				continue // already merged above
			}
			seen[term] = true
			if add := segTerm(term); len(add) > 0 {
				if err := nb.AddPosting(term, add); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := nb.BuildParallel(workers); err != nil {
		return nil, err
	}
	return nb, nil
}

// evalSegments evaluates a physical plan against one shard's tier: the base
// through the preprocessed/compressed kernels (evalOp), each in-memory
// segment through the plan-driven pairwise-merge evaluator (evalSeg), each
// result minus its segment's tombstone filter, all combined with one k-way
// union. Ownership rules match evalOp: the returned slice either aliases
// index/segment memory (owned = false, read-only) or is backed by a context
// buffer (owned = true).
//
// The shard read lock is held for the whole evaluation; mutations, freezes
// and merge/rebuild swaps therefore see shard state atomically. Frozen
// postings are immutable, so per-segment results may alias them even after
// the lock is released; active-segment results are copied under the lock.
func (e *Engine) evalSegments(c *execCtx, s *shard, p *plan.Plan) ([]uint32, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs, owned, err := e.evalOp(c, s.base, p, p.Root())
	if err != nil {
		if owned {
			c.putBuf(docs)
		}
		return nil, false, err
	}
	if len(s.baseTombs) > 0 && len(docs) > 0 {
		out := sets.DifferenceInto(c.getBuf(), docs, s.baseTombs)
		if owned {
			c.putBuf(docs)
		}
		docs, owned = out, true
	}
	if len(s.frozen) == 0 && s.active.NumDocs() == 0 {
		// Single-segment tier: the base result is the shard result. This is
		// the steady-state fast path that keeps pure-base queries
		// allocation-free.
		return docs, owned, nil
	}
	f := c.frame()
	push := func(res []uint32, resOwned bool) {
		if len(res) == 0 {
			if resOwned {
				c.putBuf(res)
			}
			return
		}
		f.kids = append(f.kids, res)
		f.kidsOwned = append(f.kidsOwned, resOwned)
	}
	push(docs, owned)
	for _, fz := range s.frozen {
		res, resOwned := e.evalSeg(c, fz, p, p.Root())
		if tombs := fz.Tombs(); len(tombs) > 0 && len(res) > 0 {
			out := sets.DifferenceInto(c.getBuf(), res, tombs)
			if resOwned {
				c.putBuf(res)
			}
			res, resOwned = out, true
		}
		push(res, resOwned)
	}
	if s.active.NumDocs() > 0 {
		res, resOwned := e.evalSeg(c, s.active, p, p.Root())
		if !resOwned && len(res) > 0 {
			// An unowned active-segment result aliases a live list, which a
			// mutation may shift in place the moment the shard lock is
			// released — unlike base and frozen postings, which stay
			// immutable. Copy into a context buffer while still under the
			// lock.
			res, resOwned = append(c.getBuf(), res...), true
		}
		push(res, resOwned)
	}
	switch len(f.kids) {
	case 0:
		c.releaseFrame(f)
		return nil, false, nil
	case 1:
		res, resOwned := f.kids[0], f.kidsOwned[0]
		f.kidsOwned[0] = false // detach: ownership moves to the caller
		c.releaseFrame(f)
		return res, resOwned, nil
	}
	out := sets.UnionKInto(c.getBuf(), f.kids...)
	c.releaseFrame(f)
	return out, true, nil
}

// evalSeg evaluates physical operator i against one in-memory segment with
// pairwise sorted-set kernels — segment lists are small by construction, so
// the preprocessed structures would not pay for themselves here, but the
// merge-vs-gallop choice still goes through the planner's cost model
// (plan.ChoosePair) on the actual list sizes. Ownership rules match evalOp:
// owned = false aliases a segment list and is read-only. The expression
// cannot fail against a map of sorted lists, so no error is returned.
func (e *Engine) evalSeg(c *execCtx, src segment.TermSource, p *plan.Plan, i int32) ([]uint32, bool) {
	op := &p.Ops[i]
	switch op.Kind {
	case plan.OpTerm:
		return src.Postings(op.Term), false

	case plan.OpOr:
		f := c.frame()
		for _, ki := range p.KidOps(op) {
			s, kidOwned := e.evalSeg(c, src, p, ki)
			f.kids = append(f.kids, s)
			f.kidsOwned = append(f.kidsOwned, kidOwned)
		}
		out := sets.UnionKInto(c.getBuf(), f.kids...)
		c.releaseFrame(f)
		return out, true

	case plan.OpAnd:
		var cur []uint32
		curOwned, haveBase := false, false
		// Positive operands in plan order: the term pushdown first, then the
		// composite kids.
		step := func(s []uint32, owned bool) bool {
			if len(s) == 0 {
				if owned {
					c.putBuf(s)
				}
				if curOwned {
					c.putBuf(cur)
				}
				return false // empty operand: whole conjunction is empty
			}
			if !haveBase {
				cur, curOwned, haveBase = s, owned, true
				return true
			}
			out := e.intersectPair(c, p.Policy.Kernels, cur, s)
			if curOwned {
				c.putBuf(cur)
			}
			if owned {
				c.putBuf(s)
			}
			cur, curOwned = out, true
			if len(cur) == 0 {
				c.putBuf(cur)
				return false
			}
			return true
		}
		for _, ti := range p.TermOps(op) {
			if !step(src.Postings(p.Ops[ti].Term), false) {
				return nil, false
			}
		}
		for _, ki := range p.KidOps(op) {
			s, owned := e.evalSeg(c, src, p, ki)
			if !step(s, owned) {
				return nil, false
			}
		}
		// plan.Bounded guarantees at least one positive operand, so cur is set.
		for _, ni := range p.NegOps(op) {
			if len(cur) == 0 {
				break
			}
			s, owned := e.evalSeg(c, src, p, ni)
			if len(s) > 0 {
				out := sets.DifferenceInto(c.getBuf(), cur, s)
				if curOwned {
					c.putBuf(cur)
				}
				cur, curOwned = out, true
			}
			if owned {
				c.putBuf(s)
			}
		}
		return cur, curOwned
	}
	return nil, false
}
