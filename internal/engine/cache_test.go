package engine

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", []uint32{1}, c.generation())
	c.put("b", []uint32{2}, c.generation())
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []uint32{3}, c.generation()) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be present")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheCounters(t *testing.T) {
	c := newCache(8)
	if _, ok := c.get("x"); ok {
		t.Fatal("unexpected hit")
	}
	c.put("x", []uint32{9}, c.generation())
	if v, ok := c.get("x"); !ok || len(v) != 1 || v[0] != 9 {
		t.Fatalf("get = %v, %v", v, ok)
	}
	c.put("x", []uint32{9, 10}, c.generation()) // overwrite updates in place
	if v, _ := c.get("x"); len(v) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.purge()
	if _, ok := c.get("x"); ok {
		t.Fatal("purge did not clear")
	}
	if st := c.stats(); st.Purges != 1 || st.Entries != 0 {
		t.Fatalf("after purge: %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(0) // nil
	c.put("a", []uint32{1}, c.generation())
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	c.purge()
	if st := c.stats(); st != (CacheStats{}) {
		t.Fatalf("disabled stats = %+v", st)
	}
}

// TestCacheStalePutDropped pins the rebuild-invalidation guarantee: a put
// carrying a generation from before a purge must not land.
func TestCacheStalePutDropped(t *testing.T) {
	c := newCache(8)
	gen := c.generation() // snapshot, as Query does before evaluating
	c.purge()             // rebuild happens mid-flight
	c.put("q", []uint32{1}, gen)
	if _, ok := c.get("q"); ok {
		t.Fatal("stale put survived a purge")
	}
	c.put("q", []uint32{2}, c.generation())
	if v, ok := c.get("q"); !ok || v[0] != 2 {
		t.Fatal("fresh put after purge rejected")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%100)
				if v, ok := c.get(key); ok && v[0] != uint32(i%100) {
					t.Errorf("corrupt value for %s: %v", key, v)
					return
				}
				c.put(key, []uint32{uint32(i % 100)}, c.generation())
			}
		}(g)
	}
	wg.Wait()
}
