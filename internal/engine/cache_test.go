package engine

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", []uint32{1}, 1)
	c.put("b", []uint32{2}, 1)
	if _, ok := c.get("a", 1); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []uint32{3}, 1) // evicts b
	if _, ok := c.get("b", 1); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a", 1); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get("c", 1); !ok {
		t.Fatal("c should be present")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheCounters(t *testing.T) {
	c := newCache(8)
	if _, ok := c.get("x", 1); ok {
		t.Fatal("unexpected hit")
	}
	c.put("x", []uint32{9}, 1)
	if v, ok := c.get("x", 1); !ok || len(v) != 1 || v[0] != 9 {
		t.Fatalf("get = %v, %v", v, ok)
	}
	c.put("x", []uint32{9, 10}, 1) // overwrite updates in place
	if v, _ := c.get("x", 1); len(v) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(0) // nil
	c.put("a", []uint32{1}, 1)
	if _, ok := c.get("a", 1); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if st := c.stats(); st != (CacheStats{}) {
		t.Fatalf("disabled stats = %+v", st)
	}
}

// TestCacheGenerationInvalidation pins the mutation-invalidation guarantee:
// an entry stamped with an older index generation is dropped on lookup, and
// a put carrying a generation from before a mutation never shadows a newer
// entry.
func TestCacheGenerationInvalidation(t *testing.T) {
	c := newCache(8)
	c.put("q", []uint32{1}, 1)
	if _, ok := c.get("q", 1); !ok {
		t.Fatal("fresh entry missed")
	}
	// The index moved to generation 2 (a mutation landed): the entry must
	// be dropped, not served.
	if _, ok := c.get("q", 2); ok {
		t.Fatal("stale entry served after a generation bump")
	}
	if st := c.stats(); st.Stale != 1 || st.Entries != 0 {
		t.Fatalf("after stale drop: %+v", st)
	}
	// A slow query that snapshotted generation 1 must not overwrite the
	// entry a generation-2 query installed.
	c.put("q", []uint32{2}, 2)
	c.put("q", []uint32{1}, 1)
	if v, ok := c.get("q", 2); !ok || v[0] != 2 {
		t.Fatalf("stale put shadowed a fresh entry: %v %v", v, ok)
	}
	// Entries stamped with a stale generation are unservable even if they
	// land: they miss on the next current-generation lookup.
	c.put("r", []uint32{1}, 1)
	if _, ok := c.get("r", 2); ok {
		t.Fatal("entry computed at a stale generation was served")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%100)
				if v, ok := c.get(key, 1); ok && v[0] != uint32(i%100) {
					t.Errorf("corrupt value for %s: %v", key, v)
					return
				}
				c.put(key, []uint32{uint32(i % 100)}, 1)
			}
		}(g)
	}
	wg.Wait()
}
