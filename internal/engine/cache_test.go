package engine

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", []uint32{1}, 1)
	c.put("b", []uint32{2}, 1)
	if _, ok := c.get("a", 1); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []uint32{3}, 1) // evicts b
	if _, ok := c.get("b", 1); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a", 1); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get("c", 1); !ok {
		t.Fatal("c should be present")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheCounters(t *testing.T) {
	c := newCache(8)
	if _, ok := c.get("x", 1); ok {
		t.Fatal("unexpected hit")
	}
	c.put("x", []uint32{9}, 1)
	if v, ok := c.get("x", 1); !ok || len(v) != 1 || v[0] != 9 {
		t.Fatalf("get = %v, %v", v, ok)
	}
	c.put("x", []uint32{9, 10}, 1) // overwrite updates in place
	if v, _ := c.get("x", 1); len(v) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(0) // nil
	c.put("a", []uint32{1}, 1)
	if _, ok := c.get("a", 1); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if st := c.stats(); st != (CacheStats{}) {
		t.Fatalf("disabled stats = %+v", st)
	}
}

// TestCacheGenerationInvalidation pins the mutation-invalidation guarantee:
// an entry stamped with an older index generation is dropped on lookup, and
// a put carrying a generation from before a mutation never shadows a newer
// entry.
func TestCacheGenerationInvalidation(t *testing.T) {
	c := newCache(8)
	c.put("q", []uint32{1}, 1)
	if _, ok := c.get("q", 1); !ok {
		t.Fatal("fresh entry missed")
	}
	// The index moved to generation 2 (a mutation landed): the entry must
	// be dropped, not served.
	if _, ok := c.get("q", 2); ok {
		t.Fatal("stale entry served after a generation bump")
	}
	if st := c.stats(); st.Stale != 1 || st.Entries != 0 {
		t.Fatalf("after stale drop: %+v", st)
	}
	// A slow query that snapshotted generation 1 must not overwrite the
	// entry a generation-2 query installed.
	c.put("q", []uint32{2}, 2)
	c.put("q", []uint32{1}, 1)
	if v, ok := c.get("q", 2); !ok || v[0] != 2 {
		t.Fatalf("stale put shadowed a fresh entry: %v %v", v, ok)
	}
	// Entries stamped with a stale generation are unservable even if they
	// land: they miss on the next current-generation lookup.
	c.put("r", []uint32{1}, 1)
	if _, ok := c.get("r", 2); ok {
		t.Fatal("entry computed at a stale generation was served")
	}
}

// TestCacheKeyCanonicalForm pins the cache-key satellite end to end: the
// cache is keyed on the normalizer's canonical form, so commuted,
// reassociated and duplicated spellings of one query occupy ONE entry and
// hit each other. Only the first spelling may miss.
func TestCacheKeyCanonicalForm(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 64}, 5_000)
	spellings := []string{
		"m2 AND m3 AND NOT m5",
		"m3 AND m2 AND NOT m5",                  // commuted
		"NOT m5 AND (m3 AND (m2))",              // reassociated
		"m2 m3 AND m2 AND NOT m5",               // implicit AND + duplicate operand
		"m2 AND (m3 AND NOT NOT m3) AND NOT m5", // double negation folds away
	}
	first, err := e.Query(spellings[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first spelling unexpectedly cached")
	}
	for _, q := range spellings[1:] {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		if !res.Cached {
			t.Errorf("Query(%q) missed the cache; canonical form %q", q, res.Normalized)
		}
		if res.Normalized != first.Normalized {
			t.Errorf("Query(%q) keyed as %q, want %q", q, res.Normalized, first.Normalized)
		}
	}
	if st := e.cache.stats(); st.Entries != 1 {
		t.Errorf("spellings occupy %d cache entries, want 1", st.Entries)
	}
}

// TestCacheGenerationCounters pins the accounting satellite: every
// generation-related miss is counted in Stale (both mismatch directions),
// generation-discarded inserts are counted in DroppedPuts, and
// Hits+Misses stays the total lookup count throughout.
func TestCacheGenerationCounters(t *testing.T) {
	c := newCache(8)
	lookups := 0
	get := func(key string, gen uint64) bool {
		lookups++
		_, ok := c.get(key, gen)
		return ok
	}
	c.put("q", []uint32{1}, 1)
	if !get("q", 1) {
		t.Fatal("fresh entry missed")
	}
	// Entry older than the lookup: dropped and stale.
	if get("q", 2) {
		t.Fatal("superseded entry served")
	}
	st := c.stats()
	if st.Stale != 1 || st.Entries != 0 {
		t.Fatalf("after old-entry drop: %+v", st)
	}
	// Entry newer than the lookup (the lookup snapshotted its generation
	// before a mutation landed): a stale miss too, but the entry stays
	// servable for current-generation lookups.
	c.put("q", []uint32{2}, 2)
	if get("q", 1) {
		t.Fatal("newer entry served to an older-generation lookup")
	}
	st = c.stats()
	if st.Stale != 2 {
		t.Fatalf("newer-direction mismatch not counted stale: %+v", st)
	}
	if st.Entries != 1 {
		t.Fatalf("newer entry should survive an older lookup: %+v", st)
	}
	if !get("q", 2) {
		t.Fatal("current-generation lookup should still hit")
	}

	// Puts from behind the newest seen generation are discarded — and now
	// counted, so sustained-mutation workloads can see why entries never
	// materialize.
	c.put("r", []uint32{1}, 1) // maxGen is 2: dropped
	if st = c.stats(); st.DroppedPuts != 1 {
		t.Fatalf("behind-maxGen put not counted: %+v", st)
	}
	c.put("q", []uint32{3}, 1) // behind the existing entry's generation too
	if st = c.stats(); st.DroppedPuts != 2 {
		t.Fatalf("behind-entry put not counted: %+v", st)
	}
	if st.Hits+st.Misses != uint64(lookups) {
		t.Fatalf("Hits(%d)+Misses(%d) != lookups(%d)", st.Hits, st.Misses, lookups)
	}
	if st.Stale > st.Misses {
		t.Fatalf("Stale(%d) must be a subset of Misses(%d)", st.Stale, st.Misses)
	}
}

// TestCacheCountersUnderMutation drives the real engine query/mutation path
// and checks the generation accounting surfaces there: mutations between
// repeated queries must show up as stale lookups, never as phantom hits.
func TestCacheCountersUnderMutation(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 64}, 5_000)
	q := "m2 AND m3"
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(q)
	if err != nil || !res.Cached {
		t.Fatalf("second query should hit: %v %v", res, err)
	}
	if err := e.AddDocument(1_000_001, []string{"m2", "m3"}); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("query after a mutation served a stale cached result")
	}
	st := e.cache.stats()
	if st.Stale == 0 {
		t.Fatalf("mutation-invalidated lookup not counted stale: %+v", st)
	}
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1: %+v", st.Hits, st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%100)
				if v, ok := c.get(key, 1); ok && v[0] != uint32(i%100) {
					t.Errorf("corrupt value for %s: %v", key, v)
					return
				}
				c.put(key, []uint32{uint32(i % 100)}, 1)
			}
		}(g)
	}
	wg.Wait()
}
