package engine

import (
	"testing"

	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
)

// TestEngineCompressedStorageParity runs the whole boolean-query matrix
// (AND/OR/NOT, parens, unknown terms) against a compressed-storage engine:
// every result must be byte-identical to the first-principles reference,
// i.e. to what the raw-slice path produces.
func TestEngineCompressedStorageParity(t *testing.T) {
	const numDocs = 5000
	for _, shards := range []int{1, 4} {
		e := buildTestEngine(t, Config{
			Shards:    shards,
			CacheSize: 32,
			Storage:   invindex.StorageCompressed,
		}, numDocs)
		for _, tc := range testQueries {
			checkQuery(t, e, numDocs, tc.q, tc.pred)
		}
	}
}

func TestEngineCompressedMatchesRaw(t *testing.T) {
	const numDocs = 4000
	raw := buildTestEngine(t, Config{Shards: 3}, numDocs)
	comp := buildTestEngine(t, Config{Shards: 3, Storage: invindex.StorageCompressed}, numDocs)
	for _, tc := range testQueries {
		if tc.pred == nil {
			continue
		}
		rr, err := raw.Query(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := comp.Query(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !sets.Equal(rr.Docs, cr.Docs) {
			t.Fatalf("storage changed result of %q: raw %d docs, compressed %d docs",
				tc.q, len(rr.Docs), len(cr.Docs))
		}
	}
}

func TestStatsPostings(t *testing.T) {
	const numDocs = 5000
	raw := buildTestEngine(t, Config{Shards: 2}, numDocs)
	comp := buildTestEngine(t, Config{Shards: 2, Storage: invindex.StorageCompressed}, numDocs)

	rs := raw.Stats()
	if rs.Storage != "raw" {
		t.Fatalf("raw Storage = %q", rs.Storage)
	}
	if rs.Postings.Total == 0 || rs.Postings.StoredBytes != rs.Postings.RawBytes {
		t.Fatalf("raw postings accounting: %+v", rs.Postings)
	}
	if rs.Postings.BytesPerPosting != 4 {
		t.Fatalf("raw bytes/posting = %v, want 4", rs.Postings.BytesPerPosting)
	}

	cs := comp.Stats()
	if cs.Storage != "compressed" {
		t.Fatalf("compressed Storage = %q", cs.Storage)
	}
	if cs.Postings.Total != rs.Postings.Total {
		t.Fatalf("posting totals differ: %d vs %d", cs.Postings.Total, rs.Postings.Total)
	}
	// The divisibility corpus is dense; compression must shrink it.
	if cs.Postings.StoredBytes >= cs.Postings.RawBytes/2 {
		t.Fatalf("compressed %d B not well under half of raw %d B",
			cs.Postings.StoredBytes, cs.Postings.RawBytes)
	}
	if cs.Postings.BytesPerPosting <= 0 || cs.Postings.BytesPerPosting >= 4 {
		t.Fatalf("compressed bytes/posting = %v", cs.Postings.BytesPerPosting)
	}
	if len(cs.Postings.Encodings) < 2 {
		t.Fatalf("expected multiple encodings in use, got %v", cs.Postings.Encodings)
	}
	var sum uint64
	for enc, es := range cs.Postings.Encodings {
		if es.Lists == 0 || es.Postings == 0 || es.BytesPerPosting <= 0 {
			t.Fatalf("empty encoding stat %q: %+v", enc, es)
		}
		sum += es.Bytes
	}
	if sum != cs.Postings.StoredBytes {
		t.Fatalf("per-encoding bytes sum %d != total %d", sum, cs.Postings.StoredBytes)
	}
}
