package engine

import (
	"testing"

	"fastintersect/internal/invindex"
)

func TestReproEmptyConjWithUnion(t *testing.T) {
	for _, storage := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		eng := New(Config{Shards: 1, CacheSize: 0, Storage: storage})
		b := eng.NewBuilder()
		var as, bs []uint32
		for i := uint32(0); i < 20000; i++ {
			if i%2 == 0 {
				as = append(as, i)
			} else {
				bs = append(bs, i)
			}
		}
		b.AddPosting("a", as)
		b.AddPosting("b", bs)
		b.AddPosting("c", []uint32{2, 4, 6})
		if err := eng.Install(b); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query("a b (c|a)")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Docs) != 0 {
			n := len(res.Docs)
			if n > 5 {
				n = 5
			}
			t.Errorf("storage=%v: a AND b = empty but query returned %d docs (first %v)", storage, len(res.Docs), res.Docs[:n])
		}
	}
}
