package engine

import (
	"strconv"
	"sync"

	"fastintersect/internal/obs"
	"fastintersect/internal/plan"
)

// engineMetrics is the engine's observability surface: sharded counters for
// the operation mix, log₂ histograms for end-to-end and per-stage latency,
// and per-kernel execution counters fed by sampled traces. Every engine
// owns a private obs.Registry (exposed via Engine.Metrics), so two engines
// in one process never mix series and tests need no global reset.
//
// The counters are always live — they are one sharded atomic add each.
// The histograms and the trace sampler are disabled by Config.NoMetrics,
// which is what the CI overhead guard benchmarks against.
type engineMetrics struct {
	reg     *obs.Registry
	enabled bool
	sampler *obs.Sampler

	queries         *obs.Counter
	queryErrors     *obs.Counter
	batches         *obs.Counter
	mutations       *obs.Counter
	compactions     *obs.Counter
	rebuilds        *obs.Counter
	segmentFreezes  *obs.Counter
	segmentMerges   *obs.Counter
	compactionBytes *obs.Counter
	planHits        *obs.Counter
	planMisses      *obs.Counter

	latency *obs.Histogram
	stages  [obs.NumStages]*obs.Histogram

	kernelExecs [plan.KernelCount]*obs.Counter
	kernelRows  [plan.KernelCount]*obs.Counter
	kernelNs    [plan.KernelCount]*obs.Counter
}

// defaultTraceSample traces 1 in 64 queries: frequent enough that the
// stage/kernel series move within seconds under load, rare enough that the
// tracing cost disappears into the <2% overhead budget.
const defaultTraceSample = 64

func newEngineMetrics(e *Engine, cfg Config) *engineMetrics {
	sample := cfg.TraceSample
	if sample <= 0 {
		sample = defaultTraceSample
	}
	r := obs.NewRegistry()
	m := &engineMetrics{
		reg:         r,
		enabled:     !cfg.NoMetrics,
		sampler:     obs.NewSampler(sample),
		queries:     r.Counter("fsi_queries_total", "Queries accepted (including parse failures and cache hits)."),
		queryErrors: r.Counter("fsi_query_errors_total", "Queries that returned an error."),
		batches:     r.Counter("fsi_batches_total", "QueryBatch calls."),
		mutations:   r.Counter("fsi_mutations_total", "Effective AddDocument/DeleteDocument mutations."),
		compactions: r.Counter("fsi_compactions_total", "Completed shard compactions."),
		rebuilds:    r.Counter("fsi_rebuilds_total", "Index installs."),
		segmentFreezes: r.Counter("fsi_segment_freezes_total",
			"Active segments frozen into the tier (map move, no postings copied)."),
		segmentMerges: r.Counter("fsi_segment_merges_total",
			"Size-tiered merges of frozen segments."),
		compactionBytes: r.Counter("fsi_compaction_bytes_total",
			"Posting bytes written by segment merges and base rebuilds (the write-amplification numerator)."),
		planHits:   r.Counter("fsi_plan_cache_hits_total", "Queries served a memoized physical plan."),
		planMisses: r.Counter("fsi_plan_cache_misses_total", "Queries that built a plan (cold key or stale stats epoch)."),
		latency:    r.Histogram("fsi_query_latency_seconds", "End-to-end Query latency."),
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		m.stages[s] = r.Histogram(`fsi_query_stage_seconds{stage="`+s.String()+`"}`,
			"Per-stage latency of sampled queries.")
	}
	for k := 1; k < plan.KernelCount; k++ { // skip KernelNone
		name := plan.Kernel(k).String()
		m.kernelExecs[k] = r.Counter(`fsi_kernel_executions_total{kernel="`+name+`"}`,
			"Conjunction-kernel executions observed in sampled queries.")
		m.kernelRows[k] = r.Counter(`fsi_kernel_rows_total{kernel="`+name+`"}`,
			"Output rows produced by each kernel in sampled queries.")
		m.kernelNs[k] = r.Counter(`fsi_kernel_ns_total{kernel="`+name+`"}`,
			"Wall nanoseconds spent in each kernel in sampled queries (inclusive of operand fetch).")
	}
	r.CounterFunc("fsi_cache_hits_total", "Result-cache hits.",
		func() uint64 { return e.cache.stats().Hits })
	r.CounterFunc("fsi_cache_misses_total", "Result-cache misses (including stale drops).",
		func() uint64 { return e.cache.stats().Misses })
	r.CounterFunc("fsi_cache_evictions_total", "Result-cache capacity evictions.",
		func() uint64 { return e.cache.stats().Evictions })
	r.CounterFunc("fsi_cache_stale_total", "Result-cache probes invalidated by a generation mismatch.",
		func() uint64 { return e.cache.stats().Stale })
	r.CounterFunc("fsi_cache_dropped_puts_total", "Result-cache inserts discarded because their generation was superseded.",
		func() uint64 { return e.cache.stats().DroppedPuts })
	r.GaugeFunc("fsi_cache_entries", "Result-cache resident entries.",
		func() float64 { return float64(e.cache.stats().Entries) })
	r.GaugeFunc("fsi_index_generation", "Index generation (bumped by every install and effective mutation).",
		func() float64 { return float64(e.gen.Load()) })
	r.GaugeFunc("fsi_stats_epoch", "Statistics epoch (bumped by installs and compaction swaps; invalidates the plan cache).",
		func() float64 { return float64(e.statsEpoch.Load()) })
	r.GaugeFunc("fsi_plan_cache_entries", "Plan-cache resident entries.",
		func() float64 { return float64(e.plans.entries()) })
	if e.fb != nil {
		fb := e.fb
		r.GaugeFunc("fsi_plan_est_rows_error",
			"Relative cardinality-estimate error of the last feedback window (Σ|act−est|/Σact).",
			fb.RowsError)
		r.CounterFunc("fsi_plan_refits_total", "Feedback re-fit passes run.", fb.Refits)
		r.CounterFunc("fsi_plan_feedback_observations_total",
			"Sampled per-operator actuals harvested into the feedback store.", fb.Observations)
		r.GaugeFunc("fsi_plan_feedback_epoch",
			"Published correction snapshots (each re-prices every cached plan).",
			func() float64 { return float64(fb.Epoch()) })
		for k := 1; k < plan.KernelCount; k++ {
			k := plan.Kernel(k)
			r.GaugeFunc(`fsi_plan_kernel_correction{kernel="`+k.String()+`"}`,
				"Live multiplicative cost correction for the kernel (1 = calibration trusted as-is).",
				func() float64 { return fb.Correction(k) })
		}
	}
	shardCount := cfg.Shards
	if shardCount <= 0 {
		shardCount = 1
	}
	for i := 0; i < shardCount; i++ {
		i := i
		r.GaugeFunc(`fsi_segments{shard="`+strconv.Itoa(i)+`"}`,
			"Segments in the shard's tier (1 base + frozen in-memory segments).",
			func() float64 {
				shards := e.snapshot()
				if i >= len(shards) {
					return 0
				}
				s := shards[i]
				s.mu.RLock()
				n := 1 + len(s.frozen)
				s.mu.RUnlock()
				return float64(n)
			})
	}
	return m
}

// sampleTrace decides whether this query gets a stage trace.
func (m *engineMetrics) sampleTrace() bool {
	return m.enabled && m.sampler.Sample()
}

// recordKernels folds one traced query's per-operator actuals into the
// per-kernel counters: only conjunctions that ran a real multi-operand
// kernel contribute, and their time is inclusive of operand fetch (that is
// what the kernel tier is accountable for end to end).
func (m *engineMetrics) recordKernels(pp *plan.Plan, agg *traceRec) {
	if !m.enabled {
		return
	}
	for i := range pp.Ops {
		op := &pp.Ops[i]
		if op.Kind != plan.OpAnd || op.Kernel == plan.KernelNone {
			continue
		}
		a := &agg.ops[i]
		if a.execs == 0 {
			continue
		}
		// Prefer the kernel the shards actually ran; the plan-level pick is
		// the fallback for paths that don't re-price (fixed Config.Algorithm,
		// single-operand degenerations).
		k := a.kernel
		if k == plan.KernelNone {
			k = op.Kernel
		}
		m.kernelExecs[k].Add(uint64(a.execs))
		m.kernelRows[k].Add(uint64(a.rows))
		m.kernelNs[k].Add(uint64(a.ns))
	}
}

// harvestFeedback folds one traced query's per-operator actuals into the
// adaptive-planning store — the same walk as recordKernels, but pairing
// each actual with the estimate the cost model made for it, so the re-fit
// can compare what was promised against what execution delivered.
//
// The pairing is execution-level when available: evalAndOp re-prices every
// conjunction on the shard's actual sizes and spans, and records both the
// kernel that ran and the corrected cost that pricing promised (summed
// across shards, like the actual ns — the two sides are commensurable).
// The logical plan's Op.Kernel/Op.Cost, priced at the universe span, is
// only the fallback for paths that never re-price; attributing a merge's
// nanoseconds to whichever kernel looked cheap at plan time would teach
// the loop to correct a kernel that never ran.
func harvestFeedback(fb *plan.Feedback, pp *plan.Plan, agg *traceRec) {
	for i := range pp.Ops {
		op := &pp.Ops[i]
		if op.Kind != plan.OpAnd || op.Kernel == plan.KernelNone {
			continue
		}
		a := &agg.ops[i]
		if a.execs == 0 {
			continue
		}
		k, est := a.kernel, a.estNs
		if k == plan.KernelNone {
			k, est = op.Kernel, op.Cost
		}
		fb.Observe(k, op.Rows, est, a.execs, a.rows, a.ns)
	}
}

// opAcc accumulates one plan operator's executions during a traced query.
// kernel and estNs are the execution-level truth for conjunctions: the
// kernel the shard's re-pricing actually ran (the logical plan's pick can
// differ — it prices every operand at the universe span) and the corrected
// cost that re-pricing promised, summed across shards like ns.
type opAcc struct {
	execs  int64
	rows   int64
	ns     int64
	kernel plan.Kernel
	estNs  float64
}

// traceRec is the per-execution-context recording arena of a traced query:
// one opAcc per plan operator (indexed parallel to plan.Ops) plus the
// shard-level span. It rides on execCtx.rec — evalOp records into it only
// when it is non-nil, so untraced queries pay a single nil check per
// operator. Pooled, like every other per-query structure.
type traceRec struct {
	ops       []opAcc
	shardRows int64
	shardNs   int64
}

var traceRecPool = sync.Pool{New: func() any { return new(traceRec) }}

// getTraceRec returns a zeroed recording arena sized for n plan operators.
func getTraceRec(n int) *traceRec {
	r := traceRecPool.Get().(*traceRec)
	if cap(r.ops) < n {
		r.ops = make([]opAcc, n)
	} else {
		r.ops = r.ops[:n]
		for i := range r.ops {
			r.ops[i] = opAcc{}
		}
	}
	r.shardRows = 0
	r.shardNs = 0
	return r
}

// putTraceRec recycles r. Nil-safe.
func putTraceRec(r *traceRec) {
	if r != nil {
		traceRecPool.Put(r)
	}
}

// merge folds another shard's recording into r (the query-level aggregate).
func (r *traceRec) merge(o *traceRec) {
	for i := range o.ops {
		r.ops[i].execs += o.ops[i].execs
		r.ops[i].rows += o.ops[i].rows
		r.ops[i].ns += o.ops[i].ns
		r.ops[i].estNs += o.ops[i].estNs
		if o.ops[i].kernel != plan.KernelNone {
			// Shards re-price independently but over statistically identical
			// halves, so they almost always agree; any shard's pick stands in
			// for the operator.
			r.ops[i].kernel = o.ops[i].kernel
		}
	}
}
