package engine_test

import (
	"fmt"

	"fastintersect/internal/engine"
)

// ExampleEngine_Query stands up a two-shard engine, installs a small
// corpus, and runs a boolean query end to end — the same path
// cmd/fsiserve exposes over HTTP.
func ExampleEngine_Query() {
	eng := engine.New(engine.Config{Shards: 2, CacheSize: 16})
	b := eng.NewBuilder()
	_ = b.Add(1, []string{"go", "fast", "sets"})
	_ = b.Add(2, []string{"go", "slow"})
	_ = b.Add(3, []string{"go", "fast", "maps"})
	_ = b.Add(4, []string{"rust", "fast"})
	if err := eng.Install(b); err != nil {
		panic(err)
	}
	res, _ := eng.Query("go AND fast AND NOT maps")
	fmt.Println(res.Docs, res.Normalized)
	// Output: [1] ((NOT maps) AND fast AND go)
}
