package engine

import (
	"fmt"
	"testing"

	"fastintersect/internal/compress"
	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
)

// TestQueryCountSemantics pins the count-only contract against the
// materializing path: QueryCount returns the same cardinality Query would
// materialize, never returns docs, and serves result-cache hits (populated
// by a prior materializing query) without re-executing.
func TestQueryCountSemantics(t *testing.T) {
	const numDocs = 10_000
	for _, storage := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/shards=%d", storage, shards), func(t *testing.T) {
				e := buildTestEngine(t, Config{Shards: shards, Storage: storage, CacheSize: 32}, numDocs)
				for _, tq := range testQueries {
					if tq.pred == nil {
						if _, err := e.QueryCount(tq.q); err == nil {
							t.Fatalf("QueryCount(%q) accepted, want error", tq.q)
						}
						continue
					}
					want := refEval(numDocs, tq.pred)
					// Cold count: executes without materializing.
					c1, err := e.QueryCount(tq.q)
					if err != nil {
						t.Fatalf("QueryCount(%q): %v", tq.q, err)
					}
					if c1.Docs != nil {
						t.Fatalf("QueryCount(%q) materialized %d docs", tq.q, len(c1.Docs))
					}
					if c1.Count != len(want) {
						t.Fatalf("QueryCount(%q) = %d, want %d", tq.q, c1.Count, len(want))
					}
					// (No Cached assertion here: queries that normalize to an
					// earlier canonical form legitimately hit the cache.)
					// Materializing query agrees and fills the result cache.
					r, err := e.Query(tq.q)
					if err != nil {
						t.Fatalf("Query(%q): %v", tq.q, err)
					}
					if !sets.Equal(r.Docs, want) || r.Count != len(want) {
						t.Fatalf("Query(%q) = %d docs (Count=%d), want %d", tq.q, len(r.Docs), r.Count, len(want))
					}
					// Warm count: served from the materialized cache entry.
					c2, err := e.QueryCount(tq.q)
					if err != nil {
						t.Fatalf("warm QueryCount(%q): %v", tq.q, err)
					}
					if !c2.Cached {
						t.Fatalf("QueryCount(%q) missed the cache right after Query populated it", tq.q)
					}
					if c2.Count != len(want) || c2.Docs != nil {
						t.Fatalf("cached QueryCount(%q) = %d docs, Count=%d, want Count=%d and nil docs",
							tq.q, len(c2.Docs), c2.Count, len(want))
					}
				}
			})
		}
	}
}

// TestQueryBatchCount checks the batched count path: per-entry counts match
// the materializing batch, docs are never returned, rejected queries keep
// their per-entry error, and duplicate queries coalesce onto one result.
func TestQueryBatchCount(t *testing.T) {
	const numDocs = 8000
	e := buildTestEngine(t, Config{Shards: 2, Storage: invindex.StorageCompressed, CacheSize: 8}, numDocs)
	var qs []string
	for _, tq := range testQueries {
		qs = append(qs, tq.q)
	}
	qs = append(qs, "m3 AND m2") // duplicate canonical form, must coalesce

	counts := e.QueryBatchCount(qs)
	full := e.QueryBatch(qs)
	if len(counts) != len(qs) || len(full) != len(qs) {
		t.Fatalf("batch sizes: counts=%d full=%d want %d", len(counts), len(full), len(qs))
	}
	for i, tq := range qs {
		var pred func(uint32) bool
		for _, cand := range testQueries {
			if cand.q == tq {
				pred = cand.pred
				break
			}
		}
		if i == len(qs)-1 {
			pred = func(d uint32) bool { return d%6 == 0 }
		}
		if pred == nil {
			if counts[i].Err == nil {
				t.Fatalf("count batch accepted %q, want error", tq)
			}
			continue
		}
		if counts[i].Err != nil {
			t.Fatalf("count batch %q: %v", tq, counts[i].Err)
		}
		want := refEval(numDocs, pred)
		if got := counts[i].Result.Count; got != len(want) {
			t.Fatalf("count batch %q = %d, want %d", tq, got, len(want))
		}
		if counts[i].Result.Docs != nil {
			t.Fatalf("count batch %q materialized docs", tq)
		}
		if fc := full[i].Result.Count; fc != len(want) {
			t.Fatalf("full batch %q Count = %d, want %d", tq, fc, len(want))
		}
	}
}

// TestPutExecCtxResetsMemoToScanMode is the regression test for the pooled
// context's decoded-term memo: after one wide evaluation pushes the memo
// past memoScanLimit (growing the map index), putExecCtx must reclaim the
// decode buffers and drop the map entirely — resetting the context to
// linear-scan mode instead of retaining (and re-clearing) a
// thousands-of-buckets map for its pooled lifetime.
func TestPutExecCtxResetsMemoToScanMode(t *testing.T) {
	c := getExecCtx()
	// Simulate a post-batch context: memo past the scan limit, map built.
	n := memoScanLimit + 1
	c.memoM = make(map[*compress.Stored][]uint32, 2*memoScanLimit)
	for i := 0; i < n; i++ {
		k := new(compress.Stored)
		v := make([]uint32, 4, 8)
		c.memoK = append(c.memoK, k)
		c.memoV = append(c.memoV, v)
		c.memoM[k] = v
	}
	free := len(c.free)
	putExecCtx(c)
	// The test still holds the only other reference; nothing else draws from
	// the pool between Put and these reads.
	if c.memoM != nil {
		t.Fatalf("putExecCtx retained the memo map (%d entries); context must reset to scan mode", len(c.memoM))
	}
	if len(c.memoK) != 0 || len(c.memoV) != 0 {
		t.Fatalf("memo keys/values not reset: %d/%d", len(c.memoK), len(c.memoV))
	}
	if got := len(c.free); got != free+n {
		t.Fatalf("decode buffers not reclaimed: free list %d, want %d", got, free+n)
	}
}

// TestBatchMemoMapRebuild drives the real crossing twice through the query
// path: a batch over >memoScanLimit distinct compressed terms builds the
// map index, putExecCtx resets it, and a second identical batch must
// rebuild it from scratch with correct results.
func TestBatchMemoMapRebuild(t *testing.T) {
	const terms = 2*memoScanLimit + 8
	const numDocs = 2000
	e := New(Config{Shards: 1, Storage: invindex.StorageCompressed})
	b := e.NewBuilder()
	for d := uint32(0); d < numDocs; d++ {
		var ts []string
		ts = append(ts, "all")
		for k := 0; k < terms; k++ {
			if d%uint32(k+2) == 0 {
				ts = append(ts, fmt.Sprintf("t%d", k))
			}
		}
		if err := b.Add(d, ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	var qs []string
	for k := 0; k < terms; k++ {
		// Each query touches "all" plus one distinct term: the batch's shared
		// context decodes every distinct term once, crossing memoScanLimit.
		qs = append(qs, fmt.Sprintf("all AND t%d", k))
	}
	for round := 0; round < 2; round++ {
		for i, br := range e.QueryBatch(qs) {
			if br.Err != nil {
				t.Fatalf("round %d: %q: %v", round, qs[i], br.Err)
			}
			want := refEval(numDocs, func(d uint32) bool { return d%uint32(i+2) == 0 })
			if !sets.Equal(br.Result.Docs, want) {
				t.Fatalf("round %d: %q = %d docs, want %d", round, qs[i], len(br.Result.Docs), len(want))
			}
		}
	}
}
