package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"fastintersect"
	"fastintersect/internal/sets"
)

// buildTestEngine indexes numDocs documents where doc d carries term "m<k>"
// iff d is divisible by k (k in 2..13), plus "all" on every doc and "rare"
// on multiples of 97. Divisibility makes reference results trivial to
// derive independently.
func buildTestEngine(t testing.TB, cfg Config, numDocs uint32) *Engine {
	t.Helper()
	e := New(cfg)
	b := e.NewBuilder()
	for d := uint32(0); d < numDocs; d++ {
		terms := []string{"all"}
		for k := uint32(2); k <= 13; k++ {
			if d%k == 0 {
				terms = append(terms, fmt.Sprintf("m%d", k))
			}
		}
		if d%97 == 0 {
			terms = append(terms, "rare")
		}
		if err := b.Add(d, terms); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	return e
}

// refEval answers the same queries from first principles.
func refEval(numDocs uint32, pred func(d uint32) bool) []uint32 {
	var out []uint32
	for d := uint32(0); d < numDocs; d++ {
		if pred(d) {
			out = append(out, d)
		}
	}
	return out
}

var testQueries = []struct {
	q    string
	pred func(d uint32) bool
}{
	{"m2", func(d uint32) bool { return d%2 == 0 }},
	{"m2 AND m3", func(d uint32) bool { return d%6 == 0 }},
	{"m3 AND m2", func(d uint32) bool { return d%6 == 0 }},
	{"m2 m3 m5", func(d uint32) bool { return d%30 == 0 }},
	{"m2 OR m3", func(d uint32) bool { return d%2 == 0 || d%3 == 0 }},
	{"(m2 OR m3) AND m5", func(d uint32) bool { return (d%2 == 0 || d%3 == 0) && d%5 == 0 }},
	{"m2 AND NOT m3", func(d uint32) bool { return d%2 == 0 && d%3 != 0 }},
	{"all AND NOT m2 AND NOT m3", func(d uint32) bool { return d%2 != 0 && d%3 != 0 }},
	{"rare AND m2", func(d uint32) bool { return d%97 == 0 && d%2 == 0 }},
	{"m11 AND m13", func(d uint32) bool { return d%143 == 0 }},
	{"m2 AND (m3 OR NOT m5) AND m7", nil}, // rejected: NOT under OR
	{"nosuchterm", func(d uint32) bool { return false }},
	{"m2 AND nosuchterm", func(d uint32) bool { return false }},
	{"nosuchterm OR m11", func(d uint32) bool { return d%11 == 0 }},
	{"m2 AND NOT nosuchterm", func(d uint32) bool { return d%2 == 0 }},
}

func checkQuery(t *testing.T, e *Engine, numDocs uint32, q string, pred func(d uint32) bool) {
	t.Helper()
	res, err := e.Query(q)
	if pred == nil {
		if err == nil {
			t.Fatalf("Query(%q) accepted, want error", q)
		}
		return
	}
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	want := refEval(numDocs, pred)
	if !sets.Equal(res.Docs, want) {
		t.Fatalf("Query(%q) = %d docs, want %d (got %v..., want %v...)",
			q, len(res.Docs), len(want), head(res.Docs), head(want))
	}
}

func head(s []uint32) []uint32 {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

func TestEngineQueryCorrectness(t *testing.T) {
	const numDocs = 5000
	for _, shards := range []int{1, 4, 7} {
		e := buildTestEngine(t, Config{Shards: shards, CacheSize: 32}, numDocs)
		for _, tc := range testQueries {
			checkQuery(t, e, numDocs, tc.q, tc.pred)
		}
	}
}

func TestEngineShardCountInvariance(t *testing.T) {
	const numDocs = 3000
	e1 := buildTestEngine(t, Config{Shards: 1}, numDocs)
	e5 := buildTestEngine(t, Config{Shards: 5}, numDocs)
	for _, tc := range testQueries {
		if tc.pred == nil {
			continue
		}
		r1, err := e1.Query(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		r5, err := e5.Query(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !sets.Equal(r1.Docs, r5.Docs) {
			t.Fatalf("shard-count changed result of %q: %d vs %d docs", tc.q, len(r1.Docs), len(r5.Docs))
		}
	}
}

func TestEngineEveryAlgorithmAgrees(t *testing.T) {
	const numDocs = 2000
	want := refEval(numDocs, func(d uint32) bool { return d%6 == 0 })
	algos := append([]fastintersect.Algorithm{fastintersect.Auto}, fastintersect.Algorithms()...)
	for _, algo := range algos {
		e := buildTestEngine(t, Config{Shards: 4, Algorithm: algo}, numDocs)
		res, err := e.Query("m2 AND m3")
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !sets.Equal(res.Docs, want) {
			t.Fatalf("%v: wrong result (%d docs, want %d)", algo, len(res.Docs), len(want))
		}
		// Wider than IntGroup's 2-set limit: must fall back, not fail.
		if _, err := e.Query("m2 AND m3 AND m5"); err != nil {
			t.Fatalf("%v: 3-term conjunction: %v", algo, err)
		}
	}
}

func TestEngineCacheHitsAndNormalization(t *testing.T) {
	const numDocs = 1000
	e := buildTestEngine(t, Config{Shards: 4, CacheSize: 16}, numDocs)
	r1, err := e.Query("m2 AND m3")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first query reported cached")
	}
	// Different spelling, same canonical query: must hit.
	r2, err := e.Query("m3 and (m2)")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("normalized-equal query missed the cache")
	}
	if r1.Normalized != r2.Normalized {
		t.Fatalf("keys differ: %q vs %q", r1.Normalized, r2.Normalized)
	}
	if !sets.Equal(r1.Docs, r2.Docs) {
		t.Fatal("cached result differs")
	}
	st := e.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.Queries != 2 {
		t.Fatalf("queries = %d", st.Queries)
	}
}

func TestEngineRebuildInvalidatesCache(t *testing.T) {
	e := New(Config{Shards: 3, CacheSize: 16})
	b := e.NewBuilder()
	for d := uint32(0); d < 100; d++ {
		if err := b.Add(d, []string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	r, err := e.Query("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Docs) != 100 {
		t.Fatalf("got %d docs", len(r.Docs))
	}
	// Rebuild with half the docs; the cached "x" result must not survive.
	b2 := e.NewBuilder()
	for d := uint32(0); d < 50; d++ {
		if err := b2.Add(d, []string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Install(b2); err != nil {
		t.Fatal(err)
	}
	r, err = e.Query("x")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached || len(r.Docs) != 50 {
		t.Fatalf("after rebuild: cached=%v docs=%d, want fresh 50", r.Cached, len(r.Docs))
	}
	if st := e.Stats(); st.Rebuilds != 2 || st.Cache.Stale != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineAddPostingMatchesAdd(t *testing.T) {
	const numDocs = 2000
	eDoc := buildTestEngine(t, Config{Shards: 4}, numDocs)
	ePost := New(Config{Shards: 4})
	b := ePost.NewBuilder()
	post := map[string][]uint32{}
	for d := uint32(0); d < numDocs; d++ {
		post["all"] = append(post["all"], d)
		for k := uint32(2); k <= 13; k++ {
			if d%k == 0 {
				term := fmt.Sprintf("m%d", k)
				post[term] = append(post[term], d)
			}
		}
		if d%97 == 0 {
			post["rare"] = append(post["rare"], d)
		}
	}
	for term, ids := range post {
		if err := b.AddPosting(term, ids); err != nil {
			t.Fatal(err)
		}
	}
	if err := ePost.Install(b); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"m2 AND m3", "m5 OR m7", "all AND NOT m2", "rare"} {
		r1, err := eDoc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ePost.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sets.Equal(r1.Docs, r2.Docs) {
			t.Fatalf("AddPosting build differs on %q", q)
		}
	}
}

func TestEngineQueryBeforeInstall(t *testing.T) {
	e := New(Config{Shards: 2})
	if _, err := e.Query("a"); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("err = %v, want ErrNotBuilt", err)
	}
}

// TestEngineConcurrentQueries hammers a shared sharded engine from many
// goroutines; run under -race this is the concurrency acceptance test.
func TestEngineConcurrentQueries(t *testing.T) {
	const numDocs = 4000
	e := buildTestEngine(t, Config{Shards: 5, Workers: 4, CacheSize: 8}, numDocs)
	wants := make(map[string][]uint32)
	for _, tc := range testQueries {
		if tc.pred != nil {
			wants[tc.q] = refEval(numDocs, tc.pred)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				tc := testQueries[(g+i)%len(testQueries)]
				res, err := e.Query(tc.q)
				if tc.pred == nil {
					if err == nil {
						t.Errorf("Query(%q) accepted", tc.q)
					}
					continue
				}
				if err != nil {
					t.Errorf("Query(%q): %v", tc.q, err)
					return
				}
				if !sets.Equal(res.Docs, wants[tc.q]) {
					t.Errorf("Query(%q) wrong under concurrency", tc.q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := e.Stats(); st.Queries != 16*40 {
		t.Fatalf("queries = %d, want %d", st.Queries, 16*40)
	}
}

// TestEngineConcurrentRebuild races queries against Install swaps.
func TestEngineConcurrentRebuild(t *testing.T) {
	const numDocs = 500
	e := buildTestEngine(t, Config{Shards: 4, CacheSize: 8}, numDocs)
	want := refEval(numDocs, func(d uint32) bool { return d%6 == 0 })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			b := e.NewBuilder()
			for d := uint32(0); d < numDocs; d++ {
				terms := []string{"all"}
				if d%2 == 0 {
					terms = append(terms, "m2")
				}
				if d%3 == 0 {
					terms = append(terms, "m3")
				}
				b.Add(d, terms)
			}
			if err := e.Install(b); err != nil {
				t.Errorf("Install: %v", err)
				return
			}
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Query("m2 AND m3")
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if !sets.Equal(res.Docs, want) {
					t.Errorf("rebuild changed result: %d docs", len(res.Docs))
					return
				}
			}
		}()
	}
	wg.Wait()
}
