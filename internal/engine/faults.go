package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastintersect/internal/plan"
)

// Fault injection and the shard-evaluation safety barrier.
//
// FaultPlan is the config-gated hook the overload experiments and the
// robustness tests use to make shard evaluation deterministically slow,
// failing or panicking — the saturation harness injects latency to pin the
// engine's capacity, and the cancellation/panic tests inject errors and
// panics to drive the abort paths. Production engines leave Config.Faults
// nil and pay one pointer check per shard evaluation.
//
// evalShard is the single entry point every execution path (Query fan-out,
// single-shard inline, QueryBatch) uses to evaluate one shard: it applies
// the fault plan, checks the request context at shard entry, and converts a
// worker panic into a query error instead of killing the process. The
// recover barrier runs after evalSegments' own deferred unlocks, so a
// panicking evaluation releases its shard lock normally; buffers parked in
// un-released frames are abandoned to the GC (never recycled), so a pooled
// context can not be corrupted by an abandoned evaluation.

// ErrInjected is the error produced by FaultPlan.ErrEvery injections.
var ErrInjected = errors.New("engine: injected fault")

// FaultPlan injects deterministic faults into shard evaluation. All
// injections apply before the evaluation proper, and "every Nth" counts
// affected evaluations process-wide (one shared atomic), so concurrent
// queries see an exact injection rate.
type FaultPlan struct {
	// Shard restricts injection to one shard index; -1 (or any negative
	// value) affects every shard.
	Shard int
	// Delay is added to every affected shard evaluation. The sleep is
	// cancellable: an expired request context cuts it short and the
	// evaluation returns the context's error.
	Delay time.Duration
	// ErrEvery makes every Nth affected evaluation fail with ErrInjected
	// (0 = never).
	ErrEvery int
	// PanicEvery makes every Nth affected evaluation panic (0 = never) —
	// exercised by the panic-barrier tests; the panic is converted into a
	// query error by evalShard.
	PanicEvery int
}

// injectFault applies the configured fault plan to one shard evaluation.
func (e *Engine) injectFault(ctx context.Context, shardIdx int) error {
	f := e.cfg.Faults
	if f == nil {
		return nil
	}
	if f.Shard >= 0 && f.Shard != shardIdx {
		return nil
	}
	n := e.faultCtr.Add(1)
	if f.PanicEvery > 0 && n%uint64(f.PanicEvery) == 0 {
		panic(fmt.Sprintf("engine: injected panic (evaluation %d, shard %d)", n, shardIdx))
	}
	if f.ErrEvery > 0 && n%uint64(f.ErrEvery) == 0 {
		return ErrInjected
	}
	if f.Delay > 0 {
		return sleepCtx(ctx, f.Delay)
	}
	return nil
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// evalShard evaluates one shard under the safety barrier: fault injection,
// the per-shard cancellation check, and panic-to-error conversion. Every
// execution path routes through it, so a panicking kernel (or injected
// panic) fails the one query that hit it — with the worker slot released
// and the pooled context recycled by the caller's normal error path — and
// never takes the process down.
func (e *Engine) evalShard(c *execCtx, s *shard, shardIdx int, p *plan.Plan) (docs []uint32, owned bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			docs, owned = nil, false
			err = fmt.Errorf("engine: shard %d: panic during evaluation: %v", shardIdx, r)
		}
	}()
	if err := c.cancelled(); err != nil {
		return nil, false, err
	}
	if err := e.injectFault(c.ctx, shardIdx); err != nil {
		return nil, false, err
	}
	return e.evalSegments(c, s, p)
}
