package engine

import (
	"errors"
	"testing"
)

func TestParseNormalization(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"a", "a"},
		{"a AND b", "(a AND b)"},
		{"b AND a", "(a AND b)"},
		{"a b", "(a AND b)"}, // implicit AND
		{"a and b AND c", "(a AND b AND c)"},
		{"a AND (b AND c)", "(a AND b AND c)"}, // flattening
		{"a OR b OR a", "(a OR b)"},            // dedup
		{"a AND a", "a"},                       // collapse to single child
		{"a AND NOT b", "((NOT b) AND a)"},
		{"a AND NOT NOT b", "(a AND b)"}, // double negation
		{"(a)", "a"},
		{"((a OR b)) AND c", "((a OR b) AND c)"},
		{"a OR b AND c", "((b AND c) OR a)"}, // AND binds tighter
		{"not x AND y", "((NOT x) AND y)"},   // case-insensitive keywords
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseEquivalentQueriesShareKeys(t *testing.T) {
	groups := [][]string{
		{"a AND b", "b AND a", "a b", "b AND (a)", "a AND b AND a"},
		{"a OR (b AND c)", "(c AND b) OR a"},
		{"x AND NOT y", "NOT y AND x"},
	}
	for _, g := range groups {
		first, err := Parse(g[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range g[1:] {
			n, err := Parse(q)
			if err != nil {
				t.Fatalf("Parse(%q): %v", q, err)
			}
			if n.String() != first.String() {
				t.Errorf("Parse(%q) = %q, want same key as %q (%q)", q, n.String(), g[0], first.String())
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error // nil = any error
	}{
		{"", ErrEmptyQuery},
		{"   ", ErrEmptyQuery},
		{"NOT a", ErrUnbounded},
		{"NOT NOT NOT a", ErrUnbounded},
		{"a OR NOT b", ErrUnbounded},
		{"NOT a AND NOT b", ErrUnbounded},
		{"a AND (b OR NOT c)", ErrUnbounded}, // NOT must be a direct AND operand
		{"(a", nil},
		{"a)", nil},
		{"()", nil},
		{"a AND", nil},
		{"AND a", nil},
		{"a OR", nil},
		{"NOT", nil},
		{"a (", nil},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) accepted, want error", c.in)
			continue
		}
		if c.wantErr != nil && !errors.Is(err, c.wantErr) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, err, c.wantErr)
		}
	}
}

func TestTerms(t *testing.T) {
	n, err := Parse("a AND (b OR c) AND NOT d AND a")
	if err != nil {
		t.Fatal(err)
	}
	got := Terms(n)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Terms = %v, want %v", got, want)
		}
	}
}

// FuzzParseQuery checks that Parse never panics and that the normalized
// rendering is a fixed point: it reparses successfully to the same string.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"a", "a AND b", "a OR b", "a AND NOT b", "(a OR b) AND c",
		"a b c", "NOT a", "((x))", "a AND (b OR (c AND d))", "()", "a )(",
		"AND OR NOT", "ümlaut AND 漢字", "a\tAND\nb",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		n, err := Parse(q)
		if err != nil {
			return
		}
		key := n.String()
		n2, err := Parse(key)
		if err != nil {
			t.Fatalf("normalized form %q (of %q) does not reparse: %v", key, q, err)
		}
		if n2.String() != key {
			t.Fatalf("normalization not a fixed point: %q -> %q -> %q", q, key, n2.String())
		}
	})
}
