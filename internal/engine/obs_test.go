package engine

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"fastintersect/internal/invindex"
	"fastintersect/internal/obs"
	"fastintersect/internal/race"
)

// TestExplainAnalyze pins the planner-feedback surface: the rendered plan
// must carry measured rows and time per operator next to the estimates,
// under both storage modes and both shard shapes.
func TestExplainAnalyze(t *testing.T) {
	const numDocs = 20_000
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s-%dshard", st, shards), func(t *testing.T) {
				e := buildTestEngine(t, Config{Shards: shards, Storage: st, CacheSize: 64}, numDocs)
				res, expl, err := e.ExplainAnalyze("(m2 AND m3) OR m11 AND NOT m13")
				if err != nil {
					t.Fatal(err)
				}
				for _, want := range []string{
					"est_rows=", "act_rows=", "act_time=", "est_cost=", "stages:", "shard 0:",
				} {
					if !strings.Contains(expl, want) {
						t.Errorf("analyze output missing %q:\n%s", want, expl)
					}
				}
				if strings.Contains(expl, "(not executed)") {
					t.Errorf("fully-executed plan rendered unexecuted operators:\n%s", expl)
				}
				// The engine has no deltas or tombstones here, so the root's
				// measured rows (base segments, summed over shards) must equal
				// the final result exactly.
				rootWant := fmt.Sprintf("act_rows=%d", len(res.Docs))
				if !strings.Contains(expl, rootWant) {
					t.Errorf("no operator reports the result cardinality %s:\n%s", rootWant, expl)
				}
				if shards > 1 && !strings.Contains(expl, fmt.Sprintf("shard %d:", shards-1)) {
					t.Errorf("missing per-shard span for shard %d:\n%s", shards-1, expl)
				}
			})
		}
	}
}

// TestExplainAnalyzeBypassesCache: analyze must re-execute even when the
// result is cached (otherwise every operator would read "(not executed)"),
// and its result must still land in the cache.
func TestExplainAnalyzeBypassesCache(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 64}, 10_000)
	q := "m2 AND m5"
	if _, err := e.Query(q); err != nil { // warm the cache
		t.Fatal(err)
	}
	res, expl, err := e.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("analyze served the cached result instead of executing")
	}
	if strings.Contains(expl, "(not executed)") {
		t.Fatalf("analyze did not execute the plan:\n%s", expl)
	}
	res2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("query after analyze should hit the cache")
	}
}

// TestTraceSampling checks the 1-in-N gate: stage histograms accumulate
// only sampled queries, and NoMetrics turns them off entirely.
func TestTraceSampling(t *testing.T) {
	const numDocs, queries = 5_000, 64
	e := buildTestEngine(t, Config{Shards: 2, TraceSample: 4}, numDocs)
	for i := 0; i < queries; i++ {
		if _, err := e.Query("m2 AND m3"); err != nil {
			t.Fatal(err)
		}
	}
	got := e.met.stages[obs.StageParse].Snapshot().Count
	if got != queries/4 {
		t.Errorf("stage histogram holds %d samples, want %d (1 in 4 of %d)", got, queries/4, queries)
	}
	if lat := e.met.latency.Snapshot().Count; lat != queries {
		t.Errorf("latency histogram holds %d, want every query (%d)", lat, queries)
	}

	off := buildTestEngine(t, Config{Shards: 2, NoMetrics: true}, numDocs)
	for i := 0; i < queries; i++ {
		if _, err := off.Query("m2 AND m3"); err != nil {
			t.Fatal(err)
		}
	}
	if n := off.met.latency.Snapshot().Count; n != 0 {
		t.Errorf("NoMetrics engine observed %d latencies, want 0", n)
	}
	if n := off.met.stages[obs.StageParse].Snapshot().Count; n != 0 {
		t.Errorf("NoMetrics engine sampled %d traces, want 0", n)
	}
	// Counters stay on regardless: they are the Stats() source of truth.
	if st := off.Stats(); st.Queries != queries {
		t.Errorf("NoMetrics engine counted %d queries, want %d", st.Queries, queries)
	}
}

// TestEngineMetricsEndToEnd scrapes the per-engine registry and checks the
// series the ISSUE promises are present and move with traffic.
func TestEngineMetricsEndToEnd(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 8, TraceSample: 1}, 5_000)
	for i := 0; i < 8; i++ {
		if _, err := e.Query("m2 AND m3"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Query("zzz OR"); err == nil {
		t.Fatal("malformed query should error")
	}
	if err := e.AddDocument(10_001, []string{"m2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeleteDocument(10_001); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"fsi_queries_total 9",
		"fsi_query_errors_total 1",
		"fsi_mutations_total 2",
		"fsi_rebuilds_total 1",
		"fsi_cache_hits_total",
		"fsi_cache_dropped_puts_total",
		"fsi_index_generation 3", // install + 2 mutations
		"fsi_query_latency_seconds_count 9",
		`fsi_query_stage_seconds_bucket{stage="parse",le=`,
		`fsi_kernel_executions_total{kernel=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
	// TraceSample=1 traces everything; the AND ran a real kernel each time,
	// so some kernel counter must be non-zero.
	hot := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "fsi_kernel_executions_total{") && !strings.HasSuffix(line, " 0") {
			hot = true
		}
	}
	if !hot {
		t.Errorf("no kernel execution recorded with TraceSample=1:\n%s", text)
	}
}

// TestQueryAllocsTraced extends the allocation guard to the instrumented
// path: with tracing sampled OFF the bounds of TestQueryAllocs must hold
// unchanged (the default configuration differs only by a nil check per
// operator), and with every query traced the pooled trace machinery may
// add only a small constant.
func TestQueryAllocsTraced(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; the allocation bounds cannot hold")
	}
	const numDocs = 20_000
	cases := []struct {
		name   string
		cfg    Config
		shards int
		max    float64
	}{
		// TraceSample beyond any loop below: tracing never fires, bounds
		// match TestQueryAllocs exactly.
		{"sampled-off-1shard", Config{Shards: 1, TraceSample: 1 << 30}, 1, 30},
		{"sampled-off-4shard", Config{Shards: 4, TraceSample: 1 << 30}, 4, 70},
		// Every query traced: trace, stage stamps and per-op recording all
		// ride pooled arenas.
		{"traced-1shard", Config{Shards: 1, TraceSample: 1}, 1, 40},
		{"traced-4shard", Config{Shards: 4, TraceSample: 1}, 4, 85},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := buildTestEngine(t, tc.cfg, numDocs)
			const q = "m2 AND m3"
			for i := 0; i < 5; i++ { // warm pools
				if _, err := e.Query(q); err != nil {
					t.Fatal(err)
				}
			}
			var err error
			n := testing.AllocsPerRun(50, func() {
				_, err = e.Query(q)
			})
			if err != nil {
				t.Fatal(err)
			}
			if n > tc.max {
				t.Fatalf("Query(%q) allocates %.1f times per op, want ≤ %v", q, n, tc.max)
			}
		})
	}
}

// TestMetricsOverheadGuard is the CI overhead gate: the default
// instrumented configuration must stay within 5% of NoMetrics on the mixed
// workload. Gated behind FSI_OVERHEAD_GUARD because wall-clock comparisons
// are too noisy for the ordinary -race matrix; CI runs it on a dedicated
// step with repetitions.
func TestMetricsOverheadGuard(t *testing.T) {
	if os.Getenv("FSI_OVERHEAD_GUARD") == "" {
		t.Skip("set FSI_OVERHEAD_GUARD=1 to run the instrumentation overhead gate")
	}
	base := benchEngineNs(t, Config{Shards: 2, NoMetrics: true})
	inst := benchEngineNs(t, Config{Shards: 2}) // default: metrics on, 1-in-64 tracing
	ratio := float64(inst) / float64(base)
	t.Logf("uninstrumented %d ns/op, instrumented %d ns/op, ratio %.3f", base, inst, ratio)
	if ratio > 1.05 {
		t.Fatalf("instrumentation overhead %.1f%% exceeds the 5%% budget", (ratio-1)*100)
	}
}

// benchEngineNs runs the BenchmarkQueryMixed workload under cfg a few times
// and returns the fastest ns/op (minimum-of-reps rejects scheduler noise).
func benchEngineNs(t *testing.T, cfg Config) int64 {
	t.Helper()
	e := buildBenchEngineCfg(t, cfg)
	_, queries := benchWorkload(t)
	best := int64(0)
	for rep := 0; rep < 5; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		if ns := r.NsPerOp(); best == 0 || ns < best {
			best = ns
		}
	}
	return best
}
