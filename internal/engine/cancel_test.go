package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fastintersect/internal/race"
)

// numGoroutineSettled samples runtime.NumGoroutine after giving transient
// runtime goroutines a moment to exit, retrying until the count stops
// shrinking toward the baseline or the budget runs out.
func numGoroutineSettled(baseline int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100 && n > baseline; i++ {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestQueryContextDeadlineMidFanout is the tentpole cancellation test: a
// deadline expiring while shard workers are mid-evaluation must surface
// context.DeadlineExceeded and must not leak the fan-out goroutines —
// workers abort at their next poll and the fan-out always rejoins.
func TestQueryContextDeadlineMidFanout(t *testing.T) {
	e := buildTestEngine(t, Config{
		Shards:    4,
		CacheSize: 0,
		Faults:    &FaultPlan{Shard: -1, Delay: 50 * time.Millisecond},
	}, 2000)
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		res, err := e.QueryContext(ctx, "m2 AND m3")
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iter %d: err = %v, want context.DeadlineExceeded", i, err)
		}
		if res != nil {
			t.Fatalf("iter %d: res = %v, want nil on abort", i, res)
		}
	}

	if after := numGoroutineSettled(before); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}

	// The engine must stay fully usable after aborts: pooled contexts were
	// returned clean.
	e2 := buildTestEngine(t, Config{Shards: 4, CacheSize: 0}, 2000)
	_ = e2 // fresh engine sanity path
	eNoFault := buildTestEngine(t, Config{Shards: 4, CacheSize: 0}, 2000)
	res, err := eNoFault.Query("m2 AND m3")
	if err != nil || len(res.Docs) == 0 {
		t.Fatalf("post-abort query: res=%v err=%v", res, err)
	}
}

// TestQueryContextPreCancelled: an already-cancelled context never reaches
// the shard fan-out.
func TestQueryContextPreCancelled(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 0}, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, "m2"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryContextNilAndBackground: nil and background contexts behave
// exactly like Query.
func TestQueryContextNilAndBackground(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2}, 500)
	want, err := e.Query("m2 AND m3")
	if err != nil {
		t.Fatal(err)
	}
	for name, ctx := range map[string]context.Context{"nil": nil, "background": context.Background()} {
		got, err := e.QueryContext(ctx, "m2 AND m3")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Docs) != len(want.Docs) {
			t.Fatalf("%s: %d docs, want %d", name, len(got.Docs), len(want.Docs))
		}
	}
}

// TestFaultPanicBarrier: an injected worker panic becomes a query error —
// the process survives, the error names the shard, and the engine keeps
// serving afterwards. Covers the single-shard inline path and the
// multi-shard fan-out.
func TestFaultPanicBarrier(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := buildTestEngine(t, Config{
				Shards:    shards,
				CacheSize: 0,
				Faults:    &FaultPlan{Shard: -1, PanicEvery: 1},
			}, 1000)
			_, err := e.Query("m2 AND m3")
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Fatalf("err = %v, want panic conversion", err)
			}
			// Disarm the faults; the engine must still work.
			e.cfg.Faults = nil
			res, err := e.Query("m2 AND m3")
			if err != nil || len(res.Docs) == 0 {
				t.Fatalf("post-panic query: res=%v err=%v", res, err)
			}
		})
	}
}

// TestFaultErrInjection: ErrEvery faults surface as ErrInjected query
// errors at the configured rate.
func TestFaultErrInjection(t *testing.T) {
	e := buildTestEngine(t, Config{
		Shards:    1,
		CacheSize: 0,
		Faults:    &FaultPlan{Shard: -1, ErrEvery: 1},
	}, 1000)
	if _, err := e.Query("m2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// TestFaultShardFilter: a fault plan pinned to one shard leaves the others
// untouched.
func TestFaultShardFilter(t *testing.T) {
	e := buildTestEngine(t, Config{
		Shards:    1,
		CacheSize: 0,
		Faults:    &FaultPlan{Shard: 7, ErrEvery: 1}, // shard 7 does not exist
	}, 1000)
	res, err := e.Query("m2")
	if err != nil || len(res.Docs) == 0 {
		t.Fatalf("filtered fault hit the wrong shard: res=%v err=%v", res, err)
	}
}

// TestQueryBatchContextCancelled: an expired context fails every
// non-cache-hit query in the batch with the context error.
func TestQueryBatchContextCancelled(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 0}, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := e.QueryBatchContext(ctx, []string{"m2", "m3 AND m5", "m2 OR m7"})
	for i, br := range out {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("result %d: err = %v, want context.Canceled", i, br.Err)
		}
	}
}

// TestQueryContextAllocs guards the acceptance criterion that context
// plumbing is free on the uncontended fast path: QueryContext with a
// non-cancellable context must allocate exactly what Query does.
func TestQueryContextAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation bounds are not meaningful under -race")
	}
	e := buildTestEngine(t, Config{Shards: 2, CacheSize: 0}, 2000)
	const q = "m2 AND m3"
	if _, err := e.Query(q); err != nil { // warm pools
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(50, func() {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	ctx := context.Background()
	withCtx := testing.AllocsPerRun(50, func() {
		if _, err := e.QueryContext(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	if withCtx > base {
		t.Fatalf("QueryContext allocs %.1f > Query allocs %.1f; context plumbing must be free", withCtx, base)
	}
}

// TestChurnCancellationShutdown exercises the whole robustness surface at
// once under the race detector (the CI race step runs every test whose
// name contains "Churn"): concurrent queries with aggressive deadlines,
// live add/delete churn, explicit compactions, injected faults, and batch
// traffic, all against one engine.
func TestChurnCancellationShutdown(t *testing.T) {
	e := buildTestEngine(t, Config{
		Shards:           4,
		CacheSize:        64,
		CompactThreshold: 256,
		Faults:           &FaultPlan{Shard: -1, Delay: 100 * time.Microsecond, ErrEvery: 97},
	}, 2000)
	before := runtime.NumGoroutine()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	queries := []string{"m2 AND m3", "m5 OR m7", "m2 AND NOT m13", "(m3 AND m5) OR m11"}

	// Query workers with rotating tight deadlines.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(50+i%200)*time.Microsecond)
				_, err := e.QueryContext(ctx, queries[(w+i)%len(queries)])
				cancel()
				if err != nil && !errors.Is(err, context.DeadlineExceeded) &&
					!errors.Is(err, context.Canceled) && !errors.Is(err, ErrInjected) {
					t.Errorf("query worker %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	// Batch worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
			e.QueryBatchContext(ctx, queries)
			cancel()
		}
	}()
	// Mutation churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := 10_000 + i%512
			if err := e.AddDocument(id, []string{"m2", "churn"}); err != nil {
				t.Errorf("add: %v", err)
				return
			}
			if i%3 == 0 {
				if _, err := e.DeleteDocument(id); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}
	}()
	// Compaction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop) // "shutdown": stop offering work, then verify nothing leaked
	wg.Wait()

	if after := numGoroutineSettled(before); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
	// A clean final query proves pooled state survived the churn.
	e.cfg.Faults = nil
	res, err := e.Query("m2 AND m3")
	if err != nil || len(res.Docs) == 0 {
		t.Fatalf("post-churn query: res=%v err=%v", res, err)
	}
}
