package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"fastintersect/internal/invindex"
	"fastintersect/internal/segment"
	"fastintersect/internal/sets"
)

// Snapshot persistence: a serialized image of the engine's whole tier, one
// file per shard plus a JSON manifest, for instant restart (fsiserve
// -snapshot-dir) and — down the road — segment shipping between nodes.
//
// Shard file layout (see internal/segment codec.go for the section format):
//
//	u32 magic "FSNP"   u16 version   u8 storage
//	section: base       (terms extracted from the index, tombs = baseTombs)
//	uvarint frozenCount
//	frozenCount × section: frozen segment (terms + its tombstone filter)
//	section: active     (terms, no tombs)
//	u32 CRC-32 (IEEE) of everything above
//
// Posting payloads are varint delta-encoded by the segment codec; on load
// the base is rebuilt through AddPosting + BuildParallel (so the stored
// encodings are re-chosen for the configured storage), while frozen and
// active segments load directly with no preprocessing — that asymmetry is
// the point of serializable segments: only the base pays a build.

const (
	snapMagic    = 0x46534E50 // "FSNP"
	snapVersion  = 1
	manifestName = "MANIFEST.json"
)

// snapManifest describes one snapshot directory.
type snapManifest struct {
	Version    int    `json:"version"`
	Shards     int    `json:"shards"`
	Storage    string `json:"storage"`
	Generation uint64 `json:"generation"`
}

// SnapshotExists reports whether dir holds a snapshot manifest.
func SnapshotExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// SaveSnapshot serializes the engine's current tier — every shard's base,
// base tombstones, frozen segments and active segment — into dir (created if
// missing), one file per shard plus a manifest. Each shard is written under
// its read lock, so the file is an atomic cut of that shard; queries and
// mutations on other shards proceed concurrently. Files are written to a
// temp name and renamed, and the manifest is written last, so a crash
// mid-save never leaves a loadable-looking partial snapshot. Returns
// ErrNotBuilt before the first Install.
func (e *Engine) SaveSnapshot(dir string) error {
	shards := e.snapshot()
	if shards == nil {
		return ErrNotBuilt
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	gen := e.gen.Load()
	for i, s := range shards {
		if err := saveShard(filepath.Join(dir, shardFile(i)), s); err != nil {
			return fmt.Errorf("engine: snapshot shard %d: %w", i, err)
		}
	}
	man := snapManifest{
		Version:    snapVersion,
		Shards:     len(shards),
		Storage:    e.cfg.Storage.String(),
		Generation: gen,
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	return nil
}

func shardFile(i int) string { return fmt.Sprintf("shard-%04d.seg", i) }

func saveShard(path string, s *shard) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) //nolint:errcheck // no-op after the rename below
	crc := crc32.NewIEEE()
	w := bufio.NewWriter(io.MultiWriter(f, crc))

	s.mu.RLock()
	err = writeShardLocked(w, s)
	s.mu.RUnlock()
	if err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := f.Write(sum[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeShardLocked streams one shard's tier. Caller holds s.mu (read).
func writeShardLocked(w *bufio.Writer, s *shard) error {
	var hdr [7]byte
	binary.BigEndian.PutUint32(hdr[0:], snapMagic)
	binary.BigEndian.PutUint16(hdr[4:], snapVersion)
	hdr[6] = byte(s.base.Storage())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// Base: terms extracted from the index (decoded when compressed), with
	// the base tombstone filter riding in the section's tombs slot.
	basePostings := func(term string) []uint32 {
		if s.base.Storage() == invindex.StorageCompressed {
			return s.base.Stored(term).Decode()
		}
		return s.base.Postings(term).Set()
	}
	if err := segment.WriteSection(w, s.base.Terms(), basePostings, s.baseTombs); err != nil {
		return fmt.Errorf("base: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(s.frozen)))
	if _, err := w.Write(scratch[:n]); err != nil {
		return err
	}
	for i, fz := range s.frozen {
		if err := fz.WriteFrozen(w); err != nil {
			return fmt.Errorf("frozen %d: %w", i, err)
		}
	}
	if err := s.active.WriteMutable(w); err != nil {
		return fmt.Errorf("active: %w", err)
	}
	return nil
}

// LoadSnapshot restores a snapshot written by SaveSnapshot into the engine,
// replacing any installed index (the same retire-then-swap handshake Install
// uses, so concurrent mutations land in the restored shard set). The
// manifest's shard count and storage must match the engine's configuration —
// a snapshot is an image of a specific partitioning. Bases are rebuilt
// through the parallel build path (encodings re-chosen); frozen and active
// segments load directly with no preprocessing.
func (e *Engine) LoadSnapshot(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	var man snapManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("engine: snapshot manifest: %w", err)
	}
	if man.Version != snapVersion {
		return fmt.Errorf("engine: snapshot version %d not supported (want %d)", man.Version, snapVersion)
	}
	if man.Shards != e.cfg.Shards {
		return fmt.Errorf("engine: snapshot has %d shards, engine is configured for %d", man.Shards, e.cfg.Shards)
	}
	if man.Storage != e.cfg.Storage.String() {
		return fmt.Errorf("engine: snapshot storage %q, engine is configured for %q", man.Storage, e.cfg.Storage)
	}
	perShard := e.cfg.Workers / e.cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	shards := make([]*shard, man.Shards)
	errs := make([]error, man.Shards)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shards[i], errs[i] = e.loadShard(filepath.Join(dir, shardFile(i)), perShard)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: snapshot shard %d: %w", i, err)
		}
	}
	e.mu.Lock()
	old := e.shards
	for _, s := range old {
		s.mu.Lock()
		s.retired = true
		s.mu.Unlock()
	}
	e.shards = shards
	e.mu.Unlock()
	e.gen.Add(1)
	e.statsEpoch.Add(1) // restored bases may encode terms differently
	e.met.rebuilds.Inc()
	return nil
}

func (e *Engine) loadShard(path string, workers int) (*shard, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 11 { // header + CRC
		return nil, fmt.Errorf("truncated file (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("checksum mismatch (file %08x, computed %08x)", sum, got)
	}
	if m := binary.BigEndian.Uint32(payload[0:]); m != snapMagic {
		return nil, fmt.Errorf("bad magic %08x", m)
	}
	if v := binary.BigEndian.Uint16(payload[4:]); v != snapVersion {
		return nil, fmt.Errorf("unsupported shard version %d", v)
	}
	if st := invindex.Storage(payload[6]); st != e.cfg.Storage {
		return nil, fmt.Errorf("shard storage %v, engine configured for %v", st, e.cfg.Storage)
	}
	r := bufio.NewReader(bytes.NewReader(payload[7:]))
	baseTerms, baseTombs, err := segment.ReadSection(r)
	if err != nil {
		return nil, fmt.Errorf("base: %w", err)
	}
	ix := invindex.NewWithStorage(e.cfg.Storage, e.cfg.IndexOptions...)
	for term, ps := range baseTerms {
		if err := ix.AddPosting(term, ps); err != nil {
			return nil, fmt.Errorf("base term %q: %w", term, err)
		}
	}
	if err := ix.BuildParallel(workers); err != nil {
		return nil, fmt.Errorf("base build: %w", err)
	}
	s := newShard(ix)
	// Keep only tombstones for documents the base actually holds, preserving
	// the baseTombs ⊆ baseDocs invariant liveLocked depends on.
	for _, id := range baseTombs {
		if sets.Contains(s.baseDocs, id) {
			s.baseTombs, _ = sets.InsertSorted(s.baseTombs, id)
		}
	}
	frozenCount, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("frozen count: %w", err)
	}
	if frozenCount > 1<<16 {
		return nil, fmt.Errorf("implausible frozen segment count %d", frozenCount)
	}
	for i := uint64(0); i < frozenCount; i++ {
		fz, err := segment.ReadFrozen(r)
		if err != nil {
			return nil, fmt.Errorf("frozen %d: %w", i, err)
		}
		s.frozen = append(s.frozen, fz)
	}
	active, err := segment.ReadMutable(r)
	if err != nil {
		return nil, fmt.Errorf("active: %w", err)
	}
	s.active = active
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trailing bytes after active segment")
	}
	return s, nil
}
