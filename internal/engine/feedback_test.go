package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

// feedbackTestCosts returns a deliberately mis-calibrated base: the
// per-probe kernels priced far too cheap, the way a stale startup
// calibration looks after the index drifts. The feedback loop must learn
// corrections on top of it without ever changing results.
func feedbackTestCosts() *plan.Costs {
	c := plan.DefaultCosts()
	c.GallopProbe /= 16
	c.HashProbe /= 16
	return c
}

// TestFeedbackLoopEndToEnd drives the adaptive loop through the real query
// path: every query is traced (TraceSample 1) and uncached (CacheSize 0),
// so each conjunction is harvested into the feedback store; after enough
// traffic the re-fit must have run, corrections must sit inside their
// clamps, the stats/metrics surfaces must report the loop — and every
// result along the way must equal the reference, because feedback is
// perf-only by construction.
func TestFeedbackLoopEndToEnd(t *testing.T) {
	const numDocs = 20_000
	e := buildTestEngine(t, Config{
		Shards:       2,
		PlanFeedback: true,
		TraceSample:  1,
		PlanCosts:    feedbackTestCosts(),
	}, numDocs)

	type expectation struct {
		q    string
		want []uint32
	}
	var exps []expectation
	for _, tq := range testQueries {
		if tq.pred == nil {
			continue
		}
		exps = append(exps, expectation{tq.q, refEval(numDocs, tq.pred)})
	}
	// Enough traffic for several refit windows (one observation per
	// conjunction per query).
	for rep := 0; rep < 80; rep++ {
		for _, exp := range exps {
			res, err := e.Query(exp.q)
			if err != nil {
				t.Fatalf("Query(%q): %v", exp.q, err)
			}
			if !sets.Equal(res.Docs, exp.want) {
				t.Fatalf("rep %d: Query(%q) diverged with feedback on: %d docs, want %d",
					rep, exp.q, len(res.Docs), len(exp.want))
			}
		}
	}

	st := e.Stats()
	if !st.PlanFeedback {
		t.Fatal("Stats().PlanFeedback = false on a feedback engine")
	}
	if st.FeedbackObservations == 0 {
		t.Fatal("no observations harvested despite TraceSample=1")
	}
	if st.FeedbackRefits == 0 {
		t.Fatalf("no refit after %d observations", st.FeedbackObservations)
	}
	for k, c := range st.KernelCorrections {
		if c < 1.0/16 || c > 16 {
			t.Fatalf("correction for %s out of clamp: %v", k, c)
		}
	}
	// The mis-calibration under-prices the probe kernels 16×, so at least
	// one correction should have moved and published an epoch.
	if st.FeedbackEpoch == 0 {
		t.Fatalf("no correction snapshot published; corrections=%v rows_err=%v",
			st.KernelCorrections, st.EstRowsError)
	}

	// The metric series exist and render.
	var sb strings.Builder
	e.Metrics().WritePrometheus(&sb)
	out := sb.String()
	for _, name := range []string{
		"fsi_plan_est_rows_error",
		"fsi_plan_refits_total",
		"fsi_plan_feedback_observations_total",
		"fsi_plan_feedback_epoch",
		`fsi_plan_kernel_correction{kernel="Gallop"}`,
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("metrics output missing %s", name)
		}
	}
}

// TestFeedbackEpochInvalidatesPlanCache pins the cache interaction: a
// published feedback epoch must force cached plans to re-price (via the
// statsEpoch+feedbackEpoch sum), visible as plan-cache misses after a
// refit that publishes.
func TestFeedbackEpochInvalidatesPlanCache(t *testing.T) {
	const numDocs = 20_000
	e := buildTestEngine(t, Config{
		Shards:       1,
		PlanFeedback: true,
		TraceSample:  1,
		PlanCosts:    feedbackTestCosts(),
	}, numDocs)
	const q = "m2 AND m3"
	// Warm the plan cache, then hammer until an epoch publishes.
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000 && e.fb.Epoch() == 0; i++ {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if e.fb.Epoch() == 0 {
		t.Skip("no epoch published under this machine's timings; covered by TestFeedbackLoopEndToEnd")
	}
	missesBefore := e.met.planMisses.Value()
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := e.met.planMisses.Value(); got == missesBefore {
		t.Fatal("plan served from cache across a feedback epoch bump; cached plan was not re-priced")
	}
}

// TestFeedbackRefitRaceUnderChurn exercises Observe/refit/Costs/Stats from
// many goroutines while the index churns — the CI race gate runs it with
// -race -count=2. Correctness of results is not asserted mid-churn (the
// corpus is moving); the invariants are: no error, no race, corrections
// always inside their clamps.
func TestFeedbackRefitRaceUnderChurn(t *testing.T) {
	const numDocs = 4000
	e := buildTestEngine(t, Config{
		Shards:           2,
		PlanFeedback:     true,
		TraceSample:      1,
		CacheSize:        16,
		CompactThreshold: 512,
		PlanCosts:        feedbackTestCosts(),
	}, numDocs)

	var wg sync.WaitGroup
	// Queriers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				tq := testQueries[(g+i)%len(testQueries)]
				if tq.pred == nil {
					continue
				}
				if _, err := e.Query(tq.q); err != nil {
					t.Errorf("Query(%q): %v", tq.q, err)
					return
				}
				if _, err := e.QueryCount(tq.q); err != nil {
					t.Errorf("QueryCount(%q): %v", tq.q, err)
					return
				}
			}
		}(g)
	}
	// Mutator: adds fresh documents, deletes half of them again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			d := uint32(numDocs + i)
			terms := []string{"all", fmt.Sprintf("m%d", 2+i%12)}
			if err := e.AddDocument(d, terms); err != nil {
				t.Errorf("AddDocument(%d): %v", d, err)
				return
			}
			if i%2 == 0 {
				if _, err := e.DeleteDocument(d); err != nil {
					t.Errorf("DeleteDocument(%d): %v", d, err)
					return
				}
			}
		}
	}()
	// Stats/metrics scraper racing the refits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			st := e.Stats()
			for k, c := range st.KernelCorrections {
				if c < 1.0/16 || c > 16 {
					t.Errorf("correction for %s out of clamp mid-churn: %v", k, c)
					return
				}
			}
			var sb strings.Builder
			e.Metrics().WritePrometheus(&sb)
		}
	}()
	wg.Wait()

	// Post-churn: a fresh query must still be answerable and corrections
	// must remain bounded.
	if _, err := e.Query("m2 AND m3"); err != nil {
		t.Fatal(err)
	}
	for k := plan.Kernel(1); int(k) < plan.KernelCount; k++ {
		if c := e.fb.Correction(k); c < 1.0/16 || c > 16 {
			t.Fatalf("kernel %v correction out of clamp after churn: %v", k, c)
		}
	}
}
