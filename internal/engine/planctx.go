package engine

import (
	"sync"

	"fastintersect/internal/compress"
	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/segment"
)

// planStats aggregates a shard snapshot into the statistics the physical
// planner consumes: document frequencies summed across shards, the dominant
// encoding per term, and the live document count. Shards hash-partition
// documents uniformly, so per-shard list sizes are proportional to the
// aggregates and ONE physical plan (operand order, decode decisions) serves
// every shard of a query; the kernel itself is re-priced per shard on the
// actual sizes (see exec.go).
type planStats struct {
	bases []*invindex.Index
	segs  []*segment.Frozen
	docs  int
}

// fill snapshots each shard's base segment, frozen in-memory tier and
// live-document count. Bases and frozen segments are immutable (only their
// tombstone filters grow), so they stay safe to read after the per-shard
// locks are dropped — which is what lets TermLen fold frozen-segment df into
// the estimates without re-locking per term. The active segments are
// deliberately excluded: they are bounded by the compaction threshold and
// would need the shard lock per term lookup.
func (ps *planStats) fill(shards []*shard) {
	ps.bases = ps.bases[:0]
	ps.segs = ps.segs[:0]
	ps.docs = 0
	for _, s := range shards {
		s.mu.RLock()
		ps.bases = append(ps.bases, s.base)
		ps.segs = append(ps.segs, s.frozen...)
		ps.docs += s.liveLocked()
		s.mu.RUnlock()
	}
}

func (ps *planStats) NumDocs() int { return ps.docs }

// TermLen is the planner's cardinality estimate for one term: base df plus
// frozen-segment df, so cost-based operand ordering stays honest under churn
// between merges. (Tombstoned postings are still counted — they are
// suppressed at query time, not purged, so they still cost kernel work.)
func (ps *planStats) TermLen(term string) int {
	total := 0
	for _, ix := range ps.bases {
		total += ix.DocFreq(term)
	}
	for _, f := range ps.segs {
		total += f.DocFreq(term)
	}
	return total
}

func (ps *planStats) TermShape(term string) plan.Shape {
	shape, bestDF := plan.ShapeRawStored, -1
	for _, ix := range ps.bases {
		enc, ok := ix.Encoding(term)
		if !ok {
			continue
		}
		if df := ix.DocFreq(term); df > bestDF {
			bestDF = df
			shape = encodingShape(enc)
		}
	}
	return shape
}

func encodingShape(enc compress.Encoding) plan.Shape {
	switch enc {
	case compress.EncGamma:
		return plan.ShapeGamma
	case compress.EncDelta:
		return plan.ShapeDelta
	case compress.EncLowbits:
		return plan.ShapeLowbits
	case compress.EncBitseg:
		return plan.ShapeBitseg
	default:
		return plan.ShapeRawStored
	}
}

// planCtx pairs one pooled physical plan with its statistics snapshot, so
// plan construction allocates nothing steady-state (the arenas inside
// plan.Plan and the base snapshot grow once and are reused).
type planCtx struct {
	plan  plan.Plan
	stats planStats
	// actuals is the ExplainAnalyze rendering arena (one OpActual per plan
	// operator), pooled with the context like the plan's own arenas.
	actuals []plan.OpActual
}

var planCtxPool = sync.Pool{New: func() any { return new(planCtx) }}

func getPlanCtx() *planCtx { return planCtxPool.Get().(*planCtx) }

// putPlanCtx drops the base-index references so a pooled plan context never
// pins a swapped-out shard set, then recycles it. Nil-safe: a plan-cache
// hit never acquires a context.
func putPlanCtx(pc *planCtx) {
	if pc == nil {
		return
	}
	clear(pc.stats.bases)
	pc.stats.bases = pc.stats.bases[:0]
	clear(pc.stats.segs)
	pc.stats.segs = pc.stats.segs[:0]
	pc.stats.docs = 0
	planCtxPool.Put(pc)
}
