package engine

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
	"fastintersect/internal/xhash"
)

// churnToTier drives an engine and its reference model into a genuinely
// tiered state: an installed base, several frozen segments (forced by
// FreezeActive between mutation batches), tombstones in base and frozen
// segments (deletes + overwrites), and a non-empty active segment.
func churnToTier(t *testing.T, e *Engine, m *refModel, batches int) {
	t.Helper()
	rng := xhash.NewRNG(0x5E6)
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	sample := func() []string {
		n := 1 + int(rng.Intn(3))
		out := make([]string, 0, n)
		for len(out) < n {
			out = append(out, vocab[rng.Intn(len(vocab))])
		}
		return out
	}
	for d := uint32(0); d < 400; d++ {
		m.add(d, sample())
	}
	installRef(t, e, m)
	nextID := uint32(400)
	for batch := 0; batch < batches; batch++ {
		for i := 0; i < 60; i++ {
			switch r := rng.Float64(); {
			case r < 0.5:
				terms := sample()
				if err := e.AddDocument(nextID, terms); err != nil {
					t.Fatal(err)
				}
				m.add(nextID, terms)
				nextID++
			case r < 0.7: // overwrite: tombstones the older copy wherever it lives
				id := uint32(rng.Intn(int(nextID)))
				terms := sample()
				if err := e.AddDocument(id, terms); err != nil {
					t.Fatal(err)
				}
				m.add(id, terms)
			default:
				id := uint32(rng.Intn(int(nextID)))
				if _, err := e.DeleteDocument(id); err != nil {
					t.Fatal(err)
				}
				m.del(id)
			}
		}
		if batch < batches-1 { // leave the last batch in the active segment
			if err := e.FreezeActive(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

var tierQueries = []struct {
	q        string
	pos, neg []string
}{
	{"a", []string{"a"}, nil},
	{"a AND b", []string{"a", "b"}, nil},
	{"c AND d", []string{"c", "d"}, nil},
	{"a OR e", nil, nil}, // checked via scan below
	{"a AND NOT b", []string{"a"}, []string{"b"}},
}

func checkTierQueries(t *testing.T, e *Engine, m *refModel, step string) {
	t.Helper()
	for _, tc := range tierQueries {
		res, err := e.Query(tc.q)
		if err != nil {
			t.Fatalf("%s: Query(%q): %v", step, tc.q, err)
		}
		var want []uint32
		if tc.q == "a OR e" {
			want = sets.Union(m.eval([]string{"a"}, nil), m.eval([]string{"e"}, nil))
		} else {
			want = m.eval(tc.pos, tc.neg)
		}
		if !sets.Equal(res.Docs, want) {
			t.Fatalf("%s: Query(%q) = %d docs, want %d", step, tc.q, len(res.Docs), len(want))
		}
	}
}

// TestMultiSegmentTierMatchesReference forces a 4-deep tier (3+ frozen
// segments plus an active one), checks every query shape against the
// scan-based reference, then runs a size-tiered merge mid-stream and
// re-checks — the merge must be invisible to results, must not bump the
// stats epoch (no base re-encoding), and must bound the tier.
func TestMultiSegmentTierMatchesReference(t *testing.T) {
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(st.String(), func(t *testing.T) {
			e := New(Config{Shards: 2, Storage: st, MaxSegments: 2})
			m := newRefModel()
			churnToTier(t, e, m, 5)

			stBefore := e.Stats()
			if stBefore.Delta.Segments < 4 { // 4 freezes × 2 shards, some may be empty
				t.Fatalf("tier not multi-segment: %d frozen segments", stBefore.Delta.Segments)
			}
			if stBefore.SegmentFreezes == 0 {
				t.Fatal("no freezes counted")
			}
			checkTierQueries(t, e, m, "pre-merge")

			if err := e.MergeSegments(); err != nil {
				t.Fatal(err)
			}
			stAfter := e.Stats()
			if stAfter.SegmentMerges == 0 {
				t.Fatal("MergeSegments ran no merge")
			}
			for i, n := range stAfter.ShardSegments {
				if n > 1+2 { // base + MaxSegments
					t.Fatalf("shard %d tier has %d segments after merge, want ≤ 3", i, n)
				}
			}
			if stAfter.StatsEpoch != stBefore.StatsEpoch {
				t.Fatalf("tiered merge bumped the stats epoch %d → %d (only rebuilds re-encode)",
					stBefore.StatsEpoch, stAfter.StatsEpoch)
			}
			if stAfter.CompactionBytes == stBefore.CompactionBytes {
				t.Fatal("merge wrote no bytes to the write-amplification counter")
			}
			checkTierQueries(t, e, m, "post-merge")

			// Full rebuild drains the tier and re-checks once more.
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			final := e.Stats()
			if final.Delta.Docs != 0 || final.Delta.Segments != 0 || final.Delta.Tombstones != 0 {
				t.Fatalf("tier not drained by Compact: %+v", final.Delta)
			}
			if final.StatsEpoch == stAfter.StatsEpoch {
				t.Fatal("full rebuild did not bump the stats epoch")
			}
			if int(final.Docs) != len(m.docs) {
				t.Fatalf("Docs = %d, reference holds %d", final.Docs, len(m.docs))
			}
			checkTierQueries(t, e, m, "post-rebuild")
		})
	}
}

// TestFreezeIsCheap pins the map-move freeze: freezing must not copy
// posting lists (the frozen segment serves the same backing arrays) and
// must not count compaction bytes.
func TestFreezeIsCheap(t *testing.T) {
	e := New(Config{Shards: 1})
	b := e.NewBuilder()
	if err := b.Add(0, []string{"seed"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(b); err != nil {
		t.Fatal(err)
	}
	for d := uint32(1); d <= 100; d++ {
		if err := e.AddDocument(d, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.snapshot()[0]
	s.mu.RLock()
	before := s.active.Postings("hot")
	s.mu.RUnlock()
	if err := e.FreezeActive(); err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	after := s.frozen[len(s.frozen)-1].Postings("hot")
	s.mu.RUnlock()
	if len(after) != 100 || &after[0] != &before[0] {
		t.Fatal("freeze copied the posting list")
	}
	if st := e.Stats(); st.CompactionBytes != 0 {
		t.Fatalf("freeze counted %d compaction bytes, want 0", st.CompactionBytes)
	}
}

// TestSnapshotRoundTrip is the serialize→restart→parity acceptance test: a
// multi-segment engine saved to disk and loaded into a FRESH engine must
// answer every query identically, preserve the tier shape (frozen and active
// segments restored without a rebuild), and keep accepting mutations.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(st.String(), func(t *testing.T) {
			cfg := Config{Shards: 2, Storage: st, MaxSegments: 3}
			e := New(cfg)
			m := newRefModel()
			churnToTier(t, e, m, 4)
			checkTierQueries(t, e, m, "pre-save")
			stBefore := e.Stats()

			dir := filepath.Join(t.TempDir(), "snap")
			if SnapshotExists(dir) {
				t.Fatal("SnapshotExists before anything was saved")
			}
			if err := e.SaveSnapshot(dir); err != nil {
				t.Fatal(err)
			}
			if !SnapshotExists(dir) {
				t.Fatal("SnapshotExists = false after SaveSnapshot")
			}

			// The "restart": a brand-new engine, same config.
			e2 := New(cfg)
			if err := e2.LoadSnapshot(dir); err != nil {
				t.Fatal(err)
			}
			stAfter := e2.Stats()
			if stAfter.Docs != stBefore.Docs {
				t.Fatalf("restored Docs = %d, want %d", stAfter.Docs, stBefore.Docs)
			}
			if fmt.Sprint(stAfter.ShardSegments) != fmt.Sprint(stBefore.ShardSegments) {
				t.Fatalf("restored tier shape %v, want %v", stAfter.ShardSegments, stBefore.ShardSegments)
			}
			if stAfter.Delta.Docs != stBefore.Delta.Docs || stAfter.Delta.Postings != stBefore.Delta.Postings ||
				stAfter.Delta.Tombstones != stBefore.Delta.Tombstones {
				t.Fatalf("restored mutable tier %+v, want %+v", stAfter.Delta, stBefore.Delta)
			}
			checkTierQueries(t, e2, m, "post-load")

			// The restored engine is fully live: mutate and re-check.
			if err := e2.AddDocument(900_000, []string{"a", "fresh-post-load"}); err != nil {
				t.Fatal(err)
			}
			m.add(900_000, []string{"a", "fresh-post-load"})
			checkTierQueries(t, e2, m, "post-load-mutation")
			if err := e2.Compact(); err != nil {
				t.Fatal(err)
			}
			checkTierQueries(t, e2, m, "post-load-compaction")
		})
	}
}

// TestSnapshotRejectsMismatch pins the manifest validation: a snapshot is an
// image of a specific partitioning and storage, and loading it into a
// differently configured engine must fail loudly, not mis-route documents.
func TestSnapshotRejectsMismatch(t *testing.T) {
	e := buildTestEngine(t, Config{Shards: 2}, 200)
	dir := t.TempDir()
	if err := e.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if err := New(Config{Shards: 3}).LoadSnapshot(dir); err == nil {
		t.Fatal("LoadSnapshot accepted a shard-count mismatch")
	}
	if err := New(Config{Shards: 2, Storage: invindex.StorageCompressed}).LoadSnapshot(dir); err == nil {
		t.Fatal("LoadSnapshot accepted a storage mismatch")
	}
	if err := New(Config{Shards: 2}).LoadSnapshot(t.TempDir()); err == nil {
		t.Fatal("LoadSnapshot accepted a directory with no manifest")
	}
}

// TestChurnMultiSegmentConcurrent is the race acceptance test for the
// tiered lifecycle: queries race against mutations, background freezes,
// size-tiered merges (MaxSegments=2 keeps merges constant) and snapshot
// saves. Results are checked for internal sanity while racing; after the
// churn quiesces, a saved snapshot loaded into a fresh engine and a full
// compaction must both agree with the final engine exactly. Run under -race
// in CI ("churn smoke" + the multi-segment gate).
func TestChurnMultiSegmentConcurrent(t *testing.T) {
	const maxDoc = 3000
	for _, stor := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		t.Run(stor.String(), func(t *testing.T) {
			e := New(Config{Shards: 2, CacheSize: 16, Storage: stor, CompactThreshold: 96, MaxSegments: 2})
			b := e.NewBuilder()
			docTerms := func(d uint32) []string {
				terms := []string{"all"}
				if d%2 == 0 {
					terms = append(terms, "even")
				}
				if d%5 == 0 {
					terms = append(terms, "fifth")
				}
				return terms
			}
			for d := uint32(0); d < maxDoc/2; d++ {
				if err := b.Add(d, docTerms(d)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Install(b); err != nil {
				t.Fatal(err)
			}
			queries := []string{"all AND even", "even AND fifth", "all AND NOT even", "all OR even"}
			snapDir := filepath.Join(t.TempDir(), "snap")
			var next atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := uint32(next.Add(1)) - 1
						if i >= 4000 {
							return
						}
						switch {
						case i%4 == 0:
							d := maxDoc/2 + i/4
							if err := e.AddDocument(d, docTerms(d)); err != nil {
								t.Errorf("AddDocument(%d): %v", d, err)
								return
							}
						case i%16 == 1:
							if _, err := e.DeleteDocument(i % (maxDoc / 2)); err != nil {
								t.Errorf("DeleteDocument: %v", err)
								return
							}
						case i%512 == 2: // snapshot saves race the tier too
							if err := e.SaveSnapshot(snapDir); err != nil {
								t.Errorf("SaveSnapshot: %v", err)
								return
							}
						default:
							res, err := e.Query(queries[i%uint32(len(queries))])
							if err != nil {
								t.Errorf("Query: %v", err)
								return
							}
							if err := sets.Validate(res.Docs); err != nil {
								t.Errorf("Query returned a non-set: %v", err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			waitForIdleCompaction(t, e)
			st := e.Stats()
			if st.SegmentFreezes == 0 || st.SegmentMerges == 0 {
				t.Fatalf("churn exercised no tier lifecycle: freezes=%d merges=%d",
					st.SegmentFreezes, st.SegmentMerges)
			}
			// Quiesced: the deterministic churn outcome is checkable exactly.
			// Adds covered docs maxDoc/2 .. maxDoc/2+999 exactly once; deletes
			// hit seed doc i % (maxDoc/2) for every tick i ≡ 1 (mod 16).
			deleted := map[uint32]bool{}
			for i := uint32(1); i < 4000; i += 16 {
				deleted[i%(maxDoc/2)] = true
			}
			refFor := func(pred func(d uint32) bool) []uint32 {
				return refEval(maxDoc/2+1000, func(d uint32) bool { return pred(d) && !deleted[d] })
			}
			check := func(tag string, eng *Engine) {
				t.Helper()
				for _, tc := range []struct {
					q    string
					pred func(d uint32) bool
				}{
					{"all AND even", func(d uint32) bool { return d%2 == 0 }},
					{"even AND fifth", func(d uint32) bool { return d%10 == 0 }},
					{"all AND NOT even", func(d uint32) bool { return d%2 != 0 }},
				} {
					res, err := eng.Query(tc.q)
					if err != nil {
						t.Fatal(err)
					}
					if want := refFor(tc.pred); !sets.Equal(res.Docs, want) {
						t.Fatalf("%s: Query(%q) = %d docs, want %d", tag, tc.q, len(res.Docs), len(want))
					}
				}
			}
			check("quiesced", e)
			// Serialize → restart → parity on the quiesced state.
			if err := e.SaveSnapshot(snapDir); err != nil {
				t.Fatal(err)
			}
			e2 := New(Config{Shards: 2, Storage: stor, MaxSegments: 2})
			if err := e2.LoadSnapshot(snapDir); err != nil {
				t.Fatal(err)
			}
			check("restored", e2)
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			check("compacted", e)
		})
	}
}
