package engine

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Purges    uint64 `json:"purges"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// cache is a mutex-guarded LRU of query results keyed by the normalized
// query string. Values are treated as immutable: Get returns the cached
// slice without copying, so callers must not modify it.
type cache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	gen       uint64 // bumped by purge; stale puts are dropped
	hits      uint64
	misses    uint64
	evictions uint64
	purges    uint64
}

type cacheEntry struct {
	key  string
	docs []uint32
}

// newCache returns an LRU holding at most capacity entries, or nil when
// capacity <= 0 (caching disabled; the engine treats a nil cache as a
// permanent miss).
func newCache(capacity int) *cache {
	if capacity <= 0 {
		return nil
	}
	return &cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

func (c *cache) get(key string) ([]uint32, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).docs, true
}

// generation returns the current purge generation. A caller that snapshots
// it BEFORE reading the index and passes it to put cannot install results
// computed against a shard set that a later purge invalidated.
func (c *cache) generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// put stores a result computed at purge generation gen; it is dropped if a
// purge has happened since (the result may reflect a replaced index).
func (c *cache) put(key string, docs []uint32, gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).docs = docs
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, docs: docs})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// purge drops every entry (used on index rebuild) and counts the
// invalidation.
func (c *cache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.cap)
	c.gen++
	c.purges++
}

func (c *cache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Purges:    c.purges,
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
	}
}
