package engine

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Stale counts lookups that found an entry but could not serve it
	// because of a generation mismatch in either direction: the entry was
	// computed before the lookup's generation (a mutation or rebuild
	// superseded it; the entry is dropped) or after it (the lookup raced a
	// mutation and snapshotted early; the entry stays). Every stale lookup
	// is also counted as a miss — Hits+Misses is the total lookup count and
	// Stale ⊆ Misses tells mutation-driven misses apart from capacity ones.
	Stale uint64 `json:"stale"`
	// DroppedPuts counts inserts discarded because their generation was
	// superseded before the put landed (the computation raced a mutation).
	// Under sustained mutation load this is why entries never materialize;
	// without it those puts are silently indistinguishable from successful
	// ones that were then evicted.
	DroppedPuts uint64 `json:"dropped_puts"`
	Entries     int    `json:"entries"`
	Capacity    int    `json:"capacity"`
}

// cache is a mutex-guarded LRU of query results keyed by the normalized
// query string. Values are treated as immutable: get returns the cached
// slice without copying, so callers must not modify it.
//
// Every entry is stamped with the engine's index generation at the time the
// result was computed (snapshotted BEFORE the shard state was read). A
// lookup presents the current generation; an entry from an older generation
// is deleted and reported as a miss — this is what guarantees that a cached
// result can never resurrect a deleted document: any mutation bumps the
// generation, so results computed against pre-mutation shard state become
// unservable the moment the mutation lands.
type cache struct {
	mu          sync.Mutex
	cap         int
	ll          *list.List // front = most recently used
	items       map[string]*list.Element
	hits        uint64
	misses      uint64
	evictions   uint64
	stale       uint64
	droppedPuts uint64
	// maxGen is the newest index generation this cache has seen (every
	// lookup presents the current one). Inserts stamped older are dropped:
	// they could never be served, and at capacity they would evict a
	// servable entry.
	maxGen uint64
}

type cacheEntry struct {
	key  string
	docs []uint32
	gen  uint64 // index generation the result was computed at
}

// newCache returns an LRU holding at most capacity entries, or nil when
// capacity <= 0 (caching disabled; the engine treats a nil cache as a
// permanent miss).
func newCache(capacity int) *cache {
	if capacity <= 0 {
		return nil
	}
	return &cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// get returns the cached result for key if it was computed at the current
// index generation gen. An entry from an older generation is deleted and
// counted as stale.
func (c *cache) get(key string, gen uint64) ([]uint32, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.maxGen {
		c.maxGen = gen
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		// Older than the lookup's generation: unservable forever, drop it.
		// Newer (the lookup raced a mutation and snapshotted early): still
		// servable to current-generation lookups, so keep it. Both
		// directions are generation staleness, not capacity misses.
		if e.gen < gen {
			c.ll.Remove(el)
			delete(c.items, key)
		}
		c.stale++
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return e.docs, true
}

// put stores a result computed at index generation gen. A put from behind
// the newest generation any lookup has presented is dropped — the entry
// could never be served, and inserting it at capacity would evict a
// servable one. Remaining staleness (a mutation landing after the last
// lookup) is resolved lazily at get time.
func (c *cache) put(key string, docs []uint32, gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.maxGen {
		c.maxGen = gen
	}
	if gen < c.maxGen {
		c.droppedPuts++
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		if gen < e.gen {
			c.droppedPuts++
			return
		}
		e.docs = docs
		e.gen = gen
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, docs: docs, gen: gen})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *cache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Stale:       c.stale,
		DroppedPuts: c.droppedPuts,
		Entries:     c.ll.Len(),
		Capacity:    c.cap,
	}
}
