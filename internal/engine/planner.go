package engine

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"strings"

	"fastintersect"
	"fastintersect/internal/compress"
	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
)

// The engine's query language:
//
//	query   := or
//	or      := and ( "OR" and )*
//	and     := unary ( "AND"? unary )*          // adjacency is implicit AND
//	unary   := "NOT" unary | term | "(" query ")"
//
// Keywords are case-insensitive; terms are any other whitespace- and
// paren-free token and are matched case-sensitively against the index.
// Every query must select a bounded set: "NOT a" alone (or "a OR NOT b")
// is rejected because its result is the complement of a posting list.

// Node is a parsed query expression. Its String method renders the
// normalized form used as the cache key.
type Node interface {
	String() string
}

// Composite nodes memoize their canonical rendering: normalize fills str
// bottom-up, so the sorts inside normalization and the cache-key render
// reuse one string per node instead of re-rendering per comparison (the
// parser's dominant allocation cost before memoization).
type termNode string

type notNode struct {
	kid Node
	str string
}

type andNode struct {
	kids []Node
	str  string
}

type orNode struct {
	kids []Node
	str  string
}

func (t termNode) String() string { return string(t) }

func (n notNode) String() string {
	if n.str != "" {
		return n.str
	}
	return "(NOT " + n.kid.String() + ")"
}

func (n andNode) String() string {
	if n.str != "" {
		return n.str
	}
	return joinKids(n.kids, " AND ")
}

func (n orNode) String() string {
	if n.str != "" {
		return n.str
	}
	return joinKids(n.kids, " OR ")
}

func joinKids(kids []Node, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Parse errors.
var (
	ErrEmptyQuery = errors.New("engine: empty query")
	// ErrUnbounded rejects queries whose result is the complement of a
	// posting set (e.g. "NOT a", "a OR NOT b", "a AND (b OR NOT c)"):
	// evaluating them would require materializing the whole document
	// universe. NOT is only valid as a direct operand of a conjunction that
	// also has a positive operand.
	ErrUnbounded = errors.New("engine: query selects an unbounded set; NOT is only valid inside a conjunction with a positive term (e.g. \"a AND NOT b\")")
)

type syntaxError struct {
	pos int
	msg string
}

func (e *syntaxError) Error() string {
	return fmt.Sprintf("engine: syntax error at offset %d: %s", e.pos, e.msg)
}

type tokKind int

const (
	tokTerm tokKind = iota
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(q string) []token {
	var toks []token
	i := 0
	for i < len(q) {
		c := q[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		default:
			start := i
			for i < len(q) && !strings.ContainsRune(" \t\n\r()", rune(q[i])) {
				i++
			}
			word := q[start:i]
			switch {
			case strings.EqualFold(word, "AND"):
				toks = append(toks, token{tokAnd, word, start})
			case strings.EqualFold(word, "OR"):
				toks = append(toks, token{tokOr, word, start})
			case strings.EqualFold(word, "NOT"):
				toks = append(toks, token{tokNot, word, start})
			default:
				toks = append(toks, token{tokTerm, word, start})
			}
		}
	}
	return toks
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() (token, bool) {
	if p.i < len(p.toks) {
		return p.toks[p.i], true
	}
	return token{}, false
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.i++
	}
	return t, ok
}

// Parse parses, normalizes and validates a query. The returned Node's
// String is the canonical cache key: AND/OR operands are flattened, sorted
// and deduplicated, and double negations are eliminated, so semantically
// identical queries share a cache entry.
func Parse(q string) (Node, error) {
	toks := lex(q)
	if len(toks) == 0 {
		return nil, ErrEmptyQuery
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok {
		return nil, &syntaxError{t.pos, fmt.Sprintf("unexpected %q", t.text)}
	}
	n = normalize(n)
	if !bounded(n) {
		return nil, ErrUnbounded
	}
	return n, nil
}

func (p *parser) parseOr() (Node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOr {
			break
		}
		p.i++
		k, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return orNode{kids: kids}, nil
}

func (p *parser) parseAnd() (Node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch t.kind {
		case tokAnd:
			p.i++
		case tokTerm, tokNot, tokLParen:
			// adjacency: implicit AND
		default:
			if len(kids) == 1 {
				return first, nil
			}
			return andNode{kids: kids}, nil
		}
		k, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return andNode{kids: kids}, nil
}

func (p *parser) parseUnary() (Node, error) {
	t, ok := p.next()
	if !ok {
		end := 0
		if n := len(p.toks); n > 0 {
			end = p.toks[n-1].pos + len(p.toks[n-1].text)
		}
		return nil, &syntaxError{end, "unexpected end of query"}
	}
	switch t.kind {
	case tokNot:
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{kid: kid}, nil
	case tokTerm:
		return termNode(t.text), nil
	case tokLParen:
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		rp, ok := p.next()
		if !ok || rp.kind != tokRParen {
			return nil, &syntaxError{t.pos, "unclosed parenthesis"}
		}
		return n, nil
	default:
		return nil, &syntaxError{t.pos, fmt.Sprintf("unexpected %q", t.text)}
	}
}

// normalize canonicalizes an expression: nested same-operator nodes are
// flattened, operands sorted and deduplicated, single-child connectives
// collapsed, and NOT(NOT x) reduced to x.
func normalize(n Node) Node {
	switch n := n.(type) {
	case termNode:
		return n
	case notNode:
		kid := normalize(n.kid)
		if inner, ok := kid.(notNode); ok {
			return inner.kid
		}
		return notNode{kid: kid, str: "(NOT " + kid.String() + ")"}
	case andNode:
		return normalizeKids(n.kids, true)
	case orNode:
		return normalizeKids(n.kids, false)
	}
	panic("engine: unknown node type")
}

func normalizeKids(kids []Node, isAnd bool) Node {
	var flat []Node
	for _, k := range kids {
		k = normalize(k)
		if isAnd {
			if a, ok := k.(andNode); ok {
				flat = append(flat, a.kids...)
				continue
			}
		} else {
			if o, ok := k.(orNode); ok {
				flat = append(flat, o.kids...)
				continue
			}
		}
		flat = append(flat, k)
	}
	slices.SortStableFunc(flat, func(a, b Node) int { return strings.Compare(a.String(), b.String()) })
	dedup := flat[:0]
	for i, k := range flat {
		if i > 0 && k.String() == flat[i-1].String() {
			continue
		}
		dedup = append(dedup, k)
	}
	if len(dedup) == 1 {
		return dedup[0]
	}
	if isAnd {
		return andNode{kids: dedup, str: joinKids(dedup, " AND ")}
	}
	return orNode{kids: dedup, str: joinKids(dedup, " OR ")}
}

// bounded reports whether n is evaluable as a subset of materialized
// posting lists. NOT is only allowed as a direct operand of a conjunction
// that has at least one positive operand (`a AND NOT b`), never standalone
// or under OR — anything else would require complementing over the whole
// document universe.
func bounded(n Node) bool {
	switch n := n.(type) {
	case termNode:
		return true
	case notNode:
		return false
	case andNode:
		positive := false
		for _, k := range n.kids {
			if nk, ok := k.(notNode); ok {
				if !bounded(nk.kid) {
					return false
				}
				continue
			}
			if !bounded(k) {
				return false
			}
			positive = true
		}
		return positive
	case orNode:
		for _, k := range n.kids {
			if !bounded(k) {
				return false
			}
		}
		return true
	}
	return false
}

// Terms returns the distinct positive and negated terms referenced by n.
func Terms(n Node) []string {
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch n := n.(type) {
		case termNode:
			seen[string(n)] = true
		case notNode:
			walk(n.kid)
		case andNode:
			for _, k := range n.kids {
				walk(k)
			}
		case orNode:
			for _, k := range n.kids {
				walk(k)
			}
		}
	}
	walk(n)
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// evalShard evaluates a normalized, bounded expression against one shard's
// index, returning sorted docIDs. All transient memory comes from c; the
// returned slice either aliases index memory or the context's memo (owned =
// false; read-only) or is backed by a context buffer (owned = true; the
// caller recycles it with c.putBuf once consumed). Either way it is only
// valid until the context is released.
//
// Conjunctions of plain terms are pushed down with the operand lists
// cost-ordered by ascending document frequency — the planner move that lets
// the paper's algorithms (whose cost is driven by the smallest list and the
// intersection size) do the heavy lifting. Under raw storage they run
// fastintersect.IntersectInto over the context's kernel scratch; under
// compressed storage they run compress.IntersectStoredInto directly over
// the stored representations (γ/δ buckets decoded on the fly, Lowbits
// groups filtered by their image words and decoded by concatenation), and
// a compressed term decoded outside a conjunction goes through the
// context's memo so repeated references decode once. Unions are a single
// k-way heap merge over the sorted sub-results; negations are linear
// difference merges.
func evalShard(c *execCtx, ix *invindex.Index, n Node, algo fastintersect.Algorithm) (docs []uint32, owned bool, err error) {
	switch n := n.(type) {
	case termNode:
		if ix.Storage() == invindex.StorageCompressed {
			s := ix.Stored(string(n))
			if s == nil {
				return nil, false, nil
			}
			if s.Encoding() == compress.EncRaw {
				return s.Decode(), false, nil // aliases the stored slice, no copy
			}
			return c.decodeStored(s), false, nil
		}
		l := ix.Postings(string(n))
		if l == nil {
			return nil, false, nil
		}
		return l.Set(), false, nil

	case orNode:
		f := c.frame()
		for _, k := range n.kids {
			s, kidOwned, err := evalShard(c, ix, k, algo)
			if err != nil {
				c.releaseFrame(f)
				return nil, false, err
			}
			f.kids = append(f.kids, s)
			f.kidsOwned = append(f.kidsOwned, kidOwned)
		}
		out := sets.UnionKInto(c.getBuf(), f.kids...)
		c.releaseFrame(f)
		return out, true, nil

	case andNode:
		return evalAnd(c, ix, n, algo)

	case notNode:
		return nil, false, ErrUnbounded // unreachable after validation
	}
	return nil, false, fmt.Errorf("engine: unknown node %T", n)
}

// evalAnd evaluates one conjunction node under evalShard's ownership rules.
func evalAnd(c *execCtx, ix *invindex.Index, n andNode, algo fastintersect.Algorithm) ([]uint32, bool, error) {
	f := c.frame()
	compressed := ix.Storage() == invindex.StorageCompressed
	for _, k := range n.kids {
		switch k := k.(type) {
		case termNode:
			if compressed {
				s := ix.Stored(string(k))
				if s == nil || s.Len() == 0 {
					c.releaseFrame(f)
					return nil, false, nil // empty operand: whole conjunction is empty
				}
				f.stored = append(f.stored, s)
				continue
			}
			l := ix.Postings(string(k))
			if l == nil || l.Len() == 0 {
				c.releaseFrame(f)
				return nil, false, nil // empty operand: whole conjunction is empty
			}
			f.lists = append(f.lists, l)
		case notNode:
			f.negs = append(f.negs, k.kid)
		default:
			s, owned, err := evalShard(c, ix, k, algo)
			if err != nil {
				c.releaseFrame(f)
				return nil, false, err
			}
			if len(s) == 0 {
				if owned {
					c.putBuf(s)
				}
				c.releaseFrame(f)
				return nil, false, nil
			}
			f.others = append(f.others, s)
			f.othersOwned = append(f.othersOwned, owned)
		}
	}
	var cur []uint32
	curOwned := false
	haveBase := false // distinguishes "no term operands" from an empty base intersection
	switch {
	case len(f.stored) > 0:
		// IntersectStoredInto cost-orders its operands internally and
		// appends ascending IDs.
		cur = compress.IntersectStoredInto(c.getBuf(), f.stored...)
		curOwned = true
		haveBase = true
	case len(f.lists) >= 2:
		slices.SortStableFunc(f.lists, func(a, b *fastintersect.List) int { return cmp.Compare(a.Len(), b.Len()) })
		a := algo
		if mx := a.MaxSets(); mx > 0 && len(f.lists) > mx {
			a = fastintersect.Auto
		}
		out, err := fastintersect.IntersectInto(&c.fi, c.getBuf(), a, f.lists...)
		if err != nil {
			c.releaseFrame(f)
			return nil, false, err
		}
		if !a.Sorted() {
			sets.SortU32(out)
		}
		cur = out
		curOwned = true
		haveBase = true
	case len(f.lists) == 1:
		cur = f.lists[0].Set()
		haveBase = true
	}
	if haveBase && len(cur) == 0 {
		// The term conjunction is already empty; ANDing anything else in
		// cannot resurrect it.
		if curOwned {
			c.putBuf(cur)
		}
		c.releaseFrame(f)
		return nil, false, nil
	}
	for i, o := range f.others {
		if !haveBase {
			cur = o
			curOwned = f.othersOwned[i]
			f.othersOwned[i] = false // ownership moves to cur
			haveBase = true
			continue
		}
		out := sets.IntersectInto(c.getBuf(), cur, o)
		if curOwned {
			c.putBuf(cur)
		}
		if f.othersOwned[i] {
			c.putBuf(o)
			f.othersOwned[i] = false
		}
		cur = out
		curOwned = true
		if len(cur) == 0 {
			c.putBuf(cur)
			c.releaseFrame(f)
			return nil, false, nil
		}
	}
	// cur is non-nil here: bounded() guarantees at least one positive
	// operand, and empty positives short-circuited above.
	for _, neg := range f.negs {
		if len(cur) == 0 {
			break
		}
		s, owned, err := evalShard(c, ix, neg, algo)
		if err != nil {
			if curOwned {
				c.putBuf(cur)
			}
			c.releaseFrame(f)
			return nil, false, err
		}
		if len(s) > 0 {
			out := sets.DifferenceInto(c.getBuf(), cur, s)
			if curOwned {
				c.putBuf(cur)
			}
			cur = out
			curOwned = true
		}
		if owned {
			c.putBuf(s)
		}
	}
	c.releaseFrame(f)
	return cur, curOwned, nil
}
