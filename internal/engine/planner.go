package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fastintersect"
	"fastintersect/internal/compress"
	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
)

// The engine's query language:
//
//	query   := or
//	or      := and ( "OR" and )*
//	and     := unary ( "AND"? unary )*          // adjacency is implicit AND
//	unary   := "NOT" unary | term | "(" query ")"
//
// Keywords are case-insensitive; terms are any other whitespace- and
// paren-free token and are matched case-sensitively against the index.
// Every query must select a bounded set: "NOT a" alone (or "a OR NOT b")
// is rejected because its result is the complement of a posting list.

// Node is a parsed query expression. Its String method renders the
// normalized form used as the cache key.
type Node interface {
	String() string
}

type termNode string

type notNode struct{ kid Node }

type andNode struct{ kids []Node }

type orNode struct{ kids []Node }

func (t termNode) String() string { return string(t) }

func (n notNode) String() string { return "(NOT " + n.kid.String() + ")" }

func (n andNode) String() string { return joinKids(n.kids, " AND ") }

func (n orNode) String() string { return joinKids(n.kids, " OR ") }

func joinKids(kids []Node, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Parse errors.
var (
	ErrEmptyQuery = errors.New("engine: empty query")
	// ErrUnbounded rejects queries whose result is the complement of a
	// posting set (e.g. "NOT a", "a OR NOT b", "a AND (b OR NOT c)"):
	// evaluating them would require materializing the whole document
	// universe. NOT is only valid as a direct operand of a conjunction that
	// also has a positive operand.
	ErrUnbounded = errors.New("engine: query selects an unbounded set; NOT is only valid inside a conjunction with a positive term (e.g. \"a AND NOT b\")")
)

type syntaxError struct {
	pos int
	msg string
}

func (e *syntaxError) Error() string {
	return fmt.Sprintf("engine: syntax error at offset %d: %s", e.pos, e.msg)
}

type tokKind int

const (
	tokTerm tokKind = iota
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(q string) []token {
	var toks []token
	i := 0
	for i < len(q) {
		c := q[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		default:
			start := i
			for i < len(q) && !strings.ContainsRune(" \t\n\r()", rune(q[i])) {
				i++
			}
			word := q[start:i]
			switch {
			case strings.EqualFold(word, "AND"):
				toks = append(toks, token{tokAnd, word, start})
			case strings.EqualFold(word, "OR"):
				toks = append(toks, token{tokOr, word, start})
			case strings.EqualFold(word, "NOT"):
				toks = append(toks, token{tokNot, word, start})
			default:
				toks = append(toks, token{tokTerm, word, start})
			}
		}
	}
	return toks
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() (token, bool) {
	if p.i < len(p.toks) {
		return p.toks[p.i], true
	}
	return token{}, false
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.i++
	}
	return t, ok
}

// Parse parses, normalizes and validates a query. The returned Node's
// String is the canonical cache key: AND/OR operands are flattened, sorted
// and deduplicated, and double negations are eliminated, so semantically
// identical queries share a cache entry.
func Parse(q string) (Node, error) {
	toks := lex(q)
	if len(toks) == 0 {
		return nil, ErrEmptyQuery
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok {
		return nil, &syntaxError{t.pos, fmt.Sprintf("unexpected %q", t.text)}
	}
	n = normalize(n)
	if !bounded(n) {
		return nil, ErrUnbounded
	}
	return n, nil
}

func (p *parser) parseOr() (Node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOr {
			break
		}
		p.i++
		k, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return orNode{kids}, nil
}

func (p *parser) parseAnd() (Node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch t.kind {
		case tokAnd:
			p.i++
		case tokTerm, tokNot, tokLParen:
			// adjacency: implicit AND
		default:
			if len(kids) == 1 {
				return first, nil
			}
			return andNode{kids}, nil
		}
		k, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return andNode{kids}, nil
}

func (p *parser) parseUnary() (Node, error) {
	t, ok := p.next()
	if !ok {
		end := 0
		if n := len(p.toks); n > 0 {
			end = p.toks[n-1].pos + len(p.toks[n-1].text)
		}
		return nil, &syntaxError{end, "unexpected end of query"}
	}
	switch t.kind {
	case tokNot:
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{kid}, nil
	case tokTerm:
		return termNode(t.text), nil
	case tokLParen:
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		rp, ok := p.next()
		if !ok || rp.kind != tokRParen {
			return nil, &syntaxError{t.pos, "unclosed parenthesis"}
		}
		return n, nil
	default:
		return nil, &syntaxError{t.pos, fmt.Sprintf("unexpected %q", t.text)}
	}
}

// normalize canonicalizes an expression: nested same-operator nodes are
// flattened, operands sorted and deduplicated, single-child connectives
// collapsed, and NOT(NOT x) reduced to x.
func normalize(n Node) Node {
	switch n := n.(type) {
	case termNode:
		return n
	case notNode:
		kid := normalize(n.kid)
		if inner, ok := kid.(notNode); ok {
			return inner.kid
		}
		return notNode{kid}
	case andNode:
		return normalizeKids(n.kids, true)
	case orNode:
		return normalizeKids(n.kids, false)
	}
	panic("engine: unknown node type")
}

func normalizeKids(kids []Node, isAnd bool) Node {
	var flat []Node
	for _, k := range kids {
		k = normalize(k)
		if isAnd {
			if a, ok := k.(andNode); ok {
				flat = append(flat, a.kids...)
				continue
			}
		} else {
			if o, ok := k.(orNode); ok {
				flat = append(flat, o.kids...)
				continue
			}
		}
		flat = append(flat, k)
	}
	sort.SliceStable(flat, func(i, j int) bool { return flat[i].String() < flat[j].String() })
	dedup := flat[:0]
	for i, k := range flat {
		if i > 0 && k.String() == flat[i-1].String() {
			continue
		}
		dedup = append(dedup, k)
	}
	if len(dedup) == 1 {
		return dedup[0]
	}
	if isAnd {
		return andNode{dedup}
	}
	return orNode{dedup}
}

// bounded reports whether n is evaluable as a subset of materialized
// posting lists. NOT is only allowed as a direct operand of a conjunction
// that has at least one positive operand (`a AND NOT b`), never standalone
// or under OR — anything else would require complementing over the whole
// document universe.
func bounded(n Node) bool {
	switch n := n.(type) {
	case termNode:
		return true
	case notNode:
		return false
	case andNode:
		positive := false
		for _, k := range n.kids {
			if nk, ok := k.(notNode); ok {
				if !bounded(nk.kid) {
					return false
				}
				continue
			}
			if !bounded(k) {
				return false
			}
			positive = true
		}
		return positive
	case orNode:
		for _, k := range n.kids {
			if !bounded(k) {
				return false
			}
		}
		return true
	}
	return false
}

// Terms returns the distinct positive and negated terms referenced by n.
func Terms(n Node) []string {
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch n := n.(type) {
		case termNode:
			seen[string(n)] = true
		case notNode:
			walk(n.kid)
		case andNode:
			for _, k := range n.kids {
				walk(k)
			}
		case orNode:
			for _, k := range n.kids {
				walk(k)
			}
		}
	}
	walk(n)
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// evalShard evaluates a normalized, bounded expression against one shard's
// index, returning sorted docIDs. The returned slice may alias a posting
// list; callers must treat it as read-only.
//
// Conjunctions of plain terms are pushed down with the operand lists
// cost-ordered by ascending document frequency — the planner move that lets
// the paper's algorithms (whose cost is driven by the smallest list and the
// intersection size) do the heavy lifting. Under raw storage they run
// fastintersect.IntersectWith; under compressed storage they run
// compress.IntersectStored directly over the stored representations (γ/δ
// buckets decoded on the fly, Lowbits groups filtered by their image words
// and decoded by concatenation). Unions and negations are evaluated as
// linear merges over the sorted sub-results either way.
func evalShard(ix *invindex.Index, n Node, algo fastintersect.Algorithm) ([]uint32, error) {
	switch n := n.(type) {
	case termNode:
		if ix.Storage() == invindex.StorageCompressed {
			s := ix.Stored(string(n))
			if s == nil {
				return nil, nil
			}
			return s.Decode(), nil
		}
		l := ix.Postings(string(n))
		if l == nil {
			return nil, nil
		}
		return l.Set(), nil

	case orNode:
		var out []uint32
		for _, k := range n.kids {
			s, err := evalShard(ix, k, algo)
			if err != nil {
				return nil, err
			}
			out = sets.Union(out, s)
		}
		return out, nil

	case andNode:
		var (
			lists  []*fastintersect.List
			stored []*compress.Stored
			others [][]uint32
			negs   []Node
		)
		compressed := ix.Storage() == invindex.StorageCompressed
		for _, k := range n.kids {
			switch k := k.(type) {
			case termNode:
				if compressed {
					s := ix.Stored(string(k))
					if s == nil || s.Len() == 0 {
						return nil, nil // empty operand: whole conjunction is empty
					}
					stored = append(stored, s)
					continue
				}
				l := ix.Postings(string(k))
				if l == nil || l.Len() == 0 {
					return nil, nil // empty operand: whole conjunction is empty
				}
				lists = append(lists, l)
			case notNode:
				negs = append(negs, k.kid)
			default:
				s, err := evalShard(ix, k, algo)
				if err != nil {
					return nil, err
				}
				if len(s) == 0 {
					return nil, nil
				}
				others = append(others, s)
			}
		}
		var cur []uint32
		switch {
		case len(stored) > 0:
			// IntersectStored cost-orders its operands internally and
			// returns ascending IDs.
			cur = compress.IntersectStored(stored...)
		case len(lists) >= 2:
			sort.SliceStable(lists, func(i, j int) bool { return lists[i].Len() < lists[j].Len() })
			a := algo
			if mx := a.MaxSets(); mx > 0 && len(lists) > mx {
				a = fastintersect.Auto
			}
			out, err := fastintersect.IntersectWith(a, lists...)
			if err != nil {
				return nil, err
			}
			if !a.Sorted() {
				sets.SortU32(out)
			}
			cur = out
		case len(lists) == 1:
			cur = lists[0].Set()
		}
		for _, o := range others {
			if cur == nil {
				cur = o
				continue
			}
			cur = sets.IntersectReference(cur, o)
			if len(cur) == 0 {
				return nil, nil
			}
		}
		// cur is non-nil here: bounded() guarantees at least one positive
		// operand, and empty positives short-circuited above.
		for _, neg := range negs {
			if len(cur) == 0 {
				return nil, nil
			}
			s, err := evalShard(ix, neg, algo)
			if err != nil {
				return nil, err
			}
			if len(s) > 0 {
				cur = sets.Difference(cur, s)
			}
		}
		return cur, nil

	case notNode:
		return nil, ErrUnbounded // unreachable after validation
	}
	return nil, fmt.Errorf("engine: unknown node %T", n)
}
