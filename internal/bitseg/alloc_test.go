package bitseg

import (
	"math/rand"
	"testing"

	"fastintersect/internal/sets"
)

// benchSets builds a dense/dense/sparse trio over a shared universe.
func benchSets(n, span int) (a, b, c []uint32) {
	rng := rand.New(rand.NewSource(0xA110C))
	a = genSorted(rng, n, span)
	b = genSorted(rng, n, span)
	c = genSorted(rng, n/16, span)
	return
}

// TestBitsegAllocs locks in the zero-steady-state-allocation contract of
// every kernel when dst capacity is sufficient.
func TestBitsegAllocs(t *testing.T) {
	a, b, c := benchSets(40000, 8*ChunkWidth)
	la, lb, lc := mustList(t, a), mustList(t, b), mustList(t, c)
	dst := make([]uint32, 0, len(a)+len(b))
	cases := []struct {
		name string
		fn   func()
	}{
		{"IntersectInto", func() { dst = IntersectInto(dst[:0], la, lb) }},
		{"IntersectKInto", func() { dst = IntersectKInto(dst[:0], la, lb, lc) }},
		{"UnionInto", func() { dst = UnionInto(dst[:0], la, lb) }},
		{"DifferenceInto", func() { dst = DifferenceInto(dst[:0], la, lb) }},
		{"DecodeInto", func() { dst = la.DecodeInto(dst[:0]) }},
		{"FilterInto", func() { dst = la.FilterInto(c, dst[:0]) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(20, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// BenchmarkIntersectBitseg measures the word-parallel kernel against the
// scalar merge on the dense regime it is built for.
func BenchmarkIntersectBitseg(b *testing.B) {
	sa, sb, sc := benchSets(40000, 8*ChunkWidth)
	la, _ := FromSorted(sa)
	lb, _ := FromSorted(sb)
	lc, _ := FromSorted(sc)
	dst := make([]uint32, 0, len(sa))
	b.Run("pair/dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = IntersectInto(dst[:0], la, lb)
		}
	})
	// Selective regime: chunks just past the DenseMin threshold, so both
	// sides are bitmaps but the AND leaves most words empty. Tracked
	// alongside the full-density case above so word-loop changes are
	// measured in both regimes (full density is bounded by result
	// enumeration, this one by the word loop itself).
	ssa := genSorted(rand.New(rand.NewSource(1)), 8*2*DenseMin, 8*ChunkWidth)
	ssb := genSorted(rand.New(rand.NewSource(2)), 8*2*DenseMin, 8*ChunkWidth)
	sla, _ := FromSorted(ssa)
	slb, _ := FromSorted(ssb)
	b.Run("pair/dense-selective", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = IntersectInto(dst[:0], sla, slb)
		}
	})
	b.Run("pair/dense-sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = IntersectInto(dst[:0], la, lc)
		}
	})
	b.Run("kway3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = IntersectKInto(dst[:0], la, lb, lc)
		}
	})
	b.Run("scalar-merge-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = sets.IntersectInto(dst[:0], sa, sb)
		}
	})
}
