package bitseg

import (
	"math/rand"
	"testing"

	"fastintersect/internal/sets"
)

// genSorted draws an ascending set of roughly n docIDs from [0, span).
func genSorted(rng *rand.Rand, n, span int) []uint32 {
	if n <= 0 || span <= 0 {
		return nil
	}
	s := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, uint32(rng.Intn(span)))
	}
	return sets.SortDedup(s)
}

// shapes returns a deterministic sweep of set shapes covering the
// density regimes and the chunk-boundary adversarial cases.
func shapes() map[string][]uint32 {
	rng := rand.New(rand.NewSource(0xB17))
	dense := make([]uint32, 0, 3*ChunkWidth)
	for i := 0; i < 3*ChunkWidth; i += 2 {
		dense = append(dense, uint32(i))
	}
	full := make([]uint32, 2*ChunkWidth)
	for i := range full {
		full[i] = uint32(i)
	}
	straddle := []uint32{ChunkWidth - 2, ChunkWidth - 1, ChunkWidth, ChunkWidth + 1, 3*ChunkWidth - 1, 3 * ChunkWidth}
	altA := make([]uint32, 0, 4*DenseMin)
	altB := make([]uint32, 0, 4*DenseMin)
	for c := 0; c < 8; c++ {
		base := uint32(c * ChunkWidth)
		tgt := &altA
		if c%2 == 1 {
			tgt = &altB
		}
		for i := 0; i < 2*DenseMin; i++ {
			*tgt = append(*tgt, base+uint32(i*13%ChunkWidth))
		}
	}
	return map[string][]uint32{
		"empty":        nil,
		"singleton0":   {0},
		"singletonEnd": {ChunkWidth - 1},
		"singletonB1":  {ChunkWidth},
		"nearMax":      {^uint32(0) - 2, ^uint32(0) - 1, ^uint32(0)},
		"dense":        dense,
		"fullChunks":   full,
		"straddle":     straddle,
		"altChunksA":   sets.SortDedup(altA),
		"altChunksB":   sets.SortDedup(altB),
		"sparseWide":   genSorted(rng, 200, 1<<20),
		"sparseTight":  genSorted(rng, 200, 4*ChunkWidth),
		"midDensity":   genSorted(rng, 2000, 8*ChunkWidth),
		"heavy":        genSorted(rng, 30000, 16*ChunkWidth),
		"boundary129":  genSorted(rng, DenseMin+1, ChunkWidth),
		"boundary128":  genSorted(rng, DenseMin, ChunkWidth),
	}
}

func mustList(t *testing.T, set []uint32) *List {
	t.Helper()
	l, err := FromSorted(set)
	if err != nil {
		t.Fatalf("FromSorted: %v", err)
	}
	return l
}

func TestFromSortedRejectsInvalid(t *testing.T) {
	if _, err := FromSorted([]uint32{3, 2}); err == nil {
		t.Fatal("descending input accepted")
	}
	if _, err := FromSorted([]uint32{2, 2}); err == nil {
		t.Fatal("duplicate input accepted")
	}
}

func TestRoundTripAndAccessors(t *testing.T) {
	for name, set := range shapes() {
		t.Run(name, func(t *testing.T) {
			l := mustList(t, set)
			if l.Len() != len(set) {
				t.Fatalf("Len = %d, want %d", l.Len(), len(set))
			}
			wantSpan := 0
			if len(set) > 0 {
				wantSpan = int(set[len(set)-1]) + 1
			}
			if l.Span() != wantSpan {
				t.Fatalf("Span = %d, want %d", l.Span(), wantSpan)
			}
			got := l.DecodeInto(nil)
			if !equal(got, set) {
				t.Fatalf("DecodeInto mismatch: got %d elems, want %d", len(got), len(set))
			}
			if wb := int(EncodedBits(set) / 8); wb != l.SizeBytes() {
				t.Fatalf("EncodedBits/8 = %d, SizeBytes = %d", wb, l.SizeBytes())
			}
			// SizeBytes never exceeds raw by more than the directory of a
			// single chunk per occupied chunk.
			if l.Chunks() > 0 && l.SizeBytes() > 4*len(set)+8*l.Chunks()+ChunkWidth/8 {
				t.Fatalf("SizeBytes = %d implausibly large for n=%d chunks=%d", l.SizeBytes(), len(set), l.Chunks())
			}
		})
	}
}

func TestContains(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0))
	for name, set := range shapes() {
		t.Run(name, func(t *testing.T) {
			l := mustList(t, set)
			for _, x := range set {
				if !l.Contains(x) {
					t.Fatalf("Contains(%d) = false for a member", x)
				}
			}
			for i := 0; i < 200; i++ {
				x := uint32(rng.Int63())
				if l.Contains(x) != sets.Contains(set, x) {
					t.Fatalf("Contains(%d) disagrees with oracle", x)
				}
			}
		})
	}
}

func TestDenseSparsePartition(t *testing.T) {
	full := make([]uint32, ChunkWidth)
	for i := range full {
		full[i] = uint32(i)
	}
	l := mustList(t, full)
	if l.Chunks() != 1 || l.DenseChunks() != 1 {
		t.Fatalf("full chunk: chunks=%d dense=%d, want 1/1", l.Chunks(), l.DenseChunks())
	}
	l = mustList(t, full[:DenseMin]) // exactly DenseMin stays sparse
	if l.DenseChunks() != 0 {
		t.Fatalf("%d-element chunk went dense", DenseMin)
	}
	l = mustList(t, full[:DenseMin+1])
	if l.DenseChunks() != 1 {
		t.Fatalf("%d-element chunk stayed sparse", DenseMin+1)
	}
}

func TestPairKernelsMatchOracle(t *testing.T) {
	sh := shapes()
	names := make([]string, 0, len(sh))
	for n := range sh {
		names = append(names, n)
	}
	for _, an := range names {
		for _, bn := range names {
			a, b := sh[an], sh[bn]
			la, lb := mustList(t, a), mustList(t, b)
			if got, want := IntersectInto(nil, la, lb), sets.IntersectReference(a, b); !equal(got, want) {
				t.Fatalf("Intersect(%s,%s): got %d elems, want %d", an, bn, len(got), len(want))
			}
			if got, want := UnionInto(nil, la, lb), sets.UnionInto(nil, a, b); !equal(got, want) {
				t.Fatalf("Union(%s,%s): got %d elems, want %d", an, bn, len(got), len(want))
			}
			if got, want := DifferenceInto(nil, la, lb), sets.DifferenceInto(nil, a, b); !equal(got, want) {
				t.Fatalf("Difference(%s,%s): got %d elems, want %d", an, bn, len(got), len(want))
			}
		}
	}
}

func TestIntersectKMatchesOracle(t *testing.T) {
	sh := shapes()
	groups := [][]string{
		{"dense", "midDensity", "heavy"},
		{"dense", "sparseTight", "fullChunks"},
		{"altChunksA", "altChunksB", "dense"},
		{"empty", "dense", "heavy"},
		{"straddle", "dense", "fullChunks", "midDensity"},
		{"heavy", "midDensity", "dense", "fullChunks", "boundary129"},
	}
	for _, g := range groups {
		lists := make([]*List, len(g))
		raws := make([][]uint32, len(g))
		for i, n := range g {
			raws[i] = sh[n]
			lists[i] = mustList(t, sh[n])
		}
		got := IntersectKInto(nil, lists...)
		want := sets.IntersectReference(raws...)
		if !equal(got, want) {
			t.Fatalf("IntersectK(%v): got %d elems, want %d", g, len(got), len(want))
		}
	}
	// Degenerate arities.
	d := sh["dense"]
	if got := IntersectKInto(nil); len(got) != 0 {
		t.Fatal("IntersectK() non-empty")
	}
	if got := IntersectKInto(nil, mustList(t, d)); !equal(got, d) {
		t.Fatal("IntersectK(single) is not identity")
	}
	// Wide conjunction exercises the heap-cursor fallback (k > kStack).
	wide := make([]*List, kStack+2)
	wraw := make([][]uint32, kStack+2)
	for i := range wide {
		wide[i] = mustList(t, d)
		wraw[i] = d
	}
	if got, want := IntersectKInto(nil, wide...), sets.IntersectReference(wraw...); !equal(got, want) {
		t.Fatalf("IntersectK wide: got %d elems, want %d", len(got), len(want))
	}
}

func TestFilterInto(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF1))
	for name, set := range shapes() {
		t.Run(name, func(t *testing.T) {
			l := mustList(t, set)
			probe := genSorted(rng, 500, 1<<20)
			// Mix in guaranteed members so the hit path is exercised.
			if len(set) > 0 {
				probe = sets.SortDedup(append(probe, set[0], set[len(set)/2], set[len(set)-1]))
			}
			got := l.FilterInto(probe, nil)
			want := sets.IntersectReference(probe, set)
			if !equal(got, want) {
				t.Fatalf("FilterInto: got %d elems, want %d", len(got), len(want))
			}
		})
	}
}

func equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
