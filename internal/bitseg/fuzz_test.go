package bitseg

import (
	"testing"

	"fastintersect/internal/sets"
)

// bytesToSet reinterprets fuzz bytes as a sorted, deduplicated docID set.
func bytesToSet(data []byte) []uint32 {
	s := make([]uint32, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		// 24-bit values keep the universe small enough that fuzz inputs
		// actually collide across chunks.
		s = append(s, uint32(data[i])<<16|uint32(data[i+1])<<8|uint32(data[i+2]))
	}
	return sets.SortDedup(s)
}

// FuzzBitsegRoundTrip checks encode/decode identity plus the exact size
// estimator against arbitrary doc sets.
func FuzzBitsegRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 0, 2, 0, 16, 0})
	f.Add([]byte{0, 15, 255, 0, 16, 0, 0, 16, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		set := bytesToSet(data)
		l, err := FromSorted(set)
		if err != nil {
			t.Fatalf("FromSorted on validated input: %v", err)
		}
		got := l.DecodeInto(nil)
		if len(got) != len(set) {
			t.Fatalf("round trip length: got %d, want %d", len(got), len(set))
		}
		for i := range got {
			if got[i] != set[i] {
				t.Fatalf("round trip at %d: got %d, want %d", i, got[i], set[i])
			}
		}
		if want := int(EncodedBits(set) / 8); want != l.SizeBytes() {
			t.Fatalf("EncodedBits/8 = %d, SizeBytes = %d", want, l.SizeBytes())
		}
	})
}

// FuzzBitsegIntersect checks every bitseg set operation against the scalar
// merge oracle on a pair of arbitrary doc sets.
func FuzzBitsegIntersect(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 2}, []byte{0, 0, 2, 0, 0, 3})
	f.Add([]byte{0, 15, 255, 0, 16, 0}, []byte{0, 16, 0, 0, 16, 1})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		a, b := bytesToSet(da), bytesToSet(db)
		la, err := FromSorted(a)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := FromSorted(b)
		if err != nil {
			t.Fatal(err)
		}
		check := func(op string, got, want []uint32) {
			if len(got) != len(want) {
				t.Fatalf("%s length: got %d, want %d", op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s at %d: got %d, want %d", op, i, got[i], want[i])
				}
			}
		}
		check("intersect", IntersectInto(nil, la, lb), sets.IntersectReference(a, b))
		check("intersectK", IntersectKInto(nil, la, lb, la), sets.IntersectReference(a, b, a))
		check("union", UnionInto(nil, la, lb), sets.UnionInto(nil, a, b))
		check("difference", DifferenceInto(nil, la, lb), sets.DifferenceInto(nil, a, b))
		check("filter", lb.FilterInto(a, nil), sets.IntersectReference(a, b))
	})
}
