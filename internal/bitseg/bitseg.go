// Package bitseg is the word-parallel bitmap tier of the posting-list
// kernels: a density-partitioned representation that packs dense docID
// ranges into 64-bit bitmap segments and keeps sparse ranges as plain
// sorted runs, so intersections over dense lists collapse into AND +
// bits.OnesCount-style word operations instead of per-element scalar work
// (the FESIA/roaring hybrid applied to the paper's w(A) word images, §3.1).
//
// The docID space is cut into fixed ChunkWidth-wide ranges. Each occupied
// range becomes one chunk, stored either as a ChunkWords-long bitmap (when
// more than DenseMin elements fall in the range — the point where 4-byte
// elements outweigh the fixed 512-byte bitmap) or as the sorted elements
// themselves. The representation is chosen per range at build time, so one
// list freely mixes dense and sparse regions.
//
// All kernels follow the repository's *Into discipline: they append to the
// caller's dst and touch only stack scratch, so steady-state calls allocate
// only when the result outgrows dst.
package bitseg

import (
	"math/bits"

	"fastintersect/internal/sets"
)

const (
	// ChunkBits is log₂ of the chunk width.
	ChunkBits = 12
	// ChunkWidth is the docID range covered by one chunk (4096).
	ChunkWidth = 1 << ChunkBits
	// ChunkWords is the 64-bit word count of a dense chunk's bitmap (64,
	// i.e. 512 bytes).
	ChunkWords = ChunkWidth / 64
	// DenseMin is the occupancy above which a chunk goes dense: past 128
	// elements the 512-byte bitmap is smaller than the 4-byte-per-element
	// run, and the word kernels win on speed well before that.
	DenseMin = ChunkWords * 64 / 32
)

// chunk is one occupied ChunkWidth-wide docID range. Exactly one of words
// and run is non-nil: words is the dense bitmap (bit r set ⇔ base+r
// present), run holds the sorted absolute docIDs of a sparse range.
type chunk struct {
	base  uint32
	words []uint64
	run   []uint32
}

// List is an immutable density-partitioned posting list. Safe for
// concurrent use after construction.
type List struct {
	n      int
	span   int
	size   int
	dense  int
	chunks []chunk
}

// chunkBase returns the chunk-aligned base of docID x.
func chunkBase(x uint32) uint32 { return x &^ (ChunkWidth - 1) }

// FromSorted builds the hybrid representation of a strictly increasing
// docID set. The input is not retained. Dense bitmaps and sparse runs are
// carved from two shared arenas, so a build allocates O(1) slices
// regardless of chunk count.
func FromSorted(set []uint32) (*List, error) {
	if err := sets.Validate(set); err != nil {
		return nil, err
	}
	l := &List{n: len(set)}
	if len(set) == 0 {
		return l, nil
	}
	nChunks, dense, sparseElems := 0, 0, 0
	for i := 0; i < len(set); {
		base := chunkBase(set[i])
		j := i
		for j < len(set) && set[j]-base < ChunkWidth {
			j++
		}
		nChunks++
		if j-i > DenseMin {
			dense++
		} else {
			sparseElems += j - i
		}
		i = j
	}
	l.chunks = make([]chunk, 0, nChunks)
	words := make([]uint64, 0, dense*ChunkWords) // zeroed arena
	runs := make([]uint32, 0, sparseElems)
	for i := 0; i < len(set); {
		base := chunkBase(set[i])
		j := i
		for j < len(set) && set[j]-base < ChunkWidth {
			j++
		}
		c := chunk{base: base}
		if j-i > DenseMin {
			off := len(words)
			words = words[:off+ChunkWords]
			w := words[off : off+ChunkWords : off+ChunkWords]
			for _, x := range set[i:j] {
				r := x - base
				w[r>>6] |= 1 << (r & 63)
			}
			c.words = w
		} else {
			off := len(runs)
			runs = append(runs, set[i:j]...)
			c.run = runs[off:len(runs):len(runs)]
		}
		l.chunks = append(l.chunks, c)
		i = j
	}
	l.dense = dense
	l.span = int(set[len(set)-1]) + 1
	l.size = int(EncodedBits(set) / 8)
	return l, nil
}

// EncodedBits returns the exact encoded size in bits FromSorted would
// produce for a sorted set — payload plus a 64-bit per-chunk directory
// entry — without building it. compress.ChooseEncoding prices the bitmap
// tier with this.
func EncodedBits(set []uint32) uint64 {
	var b uint64
	for i := 0; i < len(set); {
		base := chunkBase(set[i])
		j := i
		for j < len(set) && set[j]-base < ChunkWidth {
			j++
		}
		b += 64 // directory entry
		if j-i > DenseMin {
			b += ChunkWidth
		} else {
			b += 32 * uint64(j-i)
		}
		i = j
	}
	return b
}

// Len returns the number of postings.
func (l *List) Len() int { return l.n }

// Span returns one past the largest docID (0 for an empty list) — the
// universe extent the cost model turns into a chunk count.
func (l *List) Span() int { return l.span }

// Chunks returns the number of occupied chunks.
func (l *List) Chunks() int { return len(l.chunks) }

// DenseChunks returns how many chunks are stored as bitmaps.
func (l *List) DenseChunks() int { return l.dense }

// SizeBytes returns the payload footprint: bitmaps, runs and the per-chunk
// directory, excluding only the fixed-size struct header.
func (l *List) SizeBytes() int { return l.size }

// Contains reports whether docID x is present.
func (l *List) Contains(x uint32) bool {
	base := chunkBase(x)
	lo, hi := 0, len(l.chunks)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.chunks[mid].base < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(l.chunks) || l.chunks[lo].base != base {
		return false
	}
	c := &l.chunks[lo]
	if c.words != nil {
		r := x - base
		return c.words[r>>6]&(1<<(r&63)) != 0
	}
	return sets.Contains(c.run, x)
}

// DecodeInto appends the sorted docIDs to dst.
func (l *List) DecodeInto(dst []uint32) []uint32 {
	for i := range l.chunks {
		dst = appendChunk(dst, &l.chunks[i])
	}
	return dst
}

// appendWord appends the set bits of w as docIDs base+bit to dst.
func appendWord(dst []uint32, base uint32, w uint64) []uint32 {
	for w != 0 {
		dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
		w &= w - 1
	}
	return dst
}

// appendChunk appends every docID of c to dst.
func appendChunk(dst []uint32, c *chunk) []uint32 {
	if c.words == nil {
		return append(dst, c.run...)
	}
	for w, v := range c.words {
		if v != 0 {
			dst = appendWord(dst, c.base+uint32(w<<6), v)
		}
	}
	return dst
}

// filterRunDense appends the members of run whose bit is set in words
// (a bitmap based at base) to dst.
func filterRunDense(dst, run []uint32, words []uint64, base uint32) []uint32 {
	for _, x := range run {
		r := x - base
		if words[r>>6]&(1<<(r&63)) != 0 {
			dst = append(dst, x)
		}
	}
	return dst
}

// intersectRuns appends the intersection of two sorted runs to dst — a
// local two-pointer merge so the k-way kernel's stack buffers never leak
// into another package's escape analysis.
func intersectRuns(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// intersectChunk appends the intersection of two same-base chunks to dst.
func intersectChunk(dst []uint32, ca, cb *chunk) []uint32 {
	switch {
	case ca.words != nil && cb.words != nil:
		aw, bw := ca.words, cb.words
		_, _ = aw[ChunkWords-1], bw[ChunkWords-1] // hoist the bounds checks
		// Four words per iteration: quarters the loop-counter overhead and
		// lets the independent AND+test pairs pipeline. (A combined
		// v0|v1|v2|v3 skip test measured slower here — the per-word branch
		// is almost always not-taken and predicts near-perfectly, while a
		// group test at realistic overlap densities does not.)
		for w := 0; w < ChunkWords; w += 4 {
			base := ca.base + uint32(w<<6)
			if v := aw[w] & bw[w]; v != 0 {
				dst = appendWord(dst, base, v)
			}
			if v := aw[w+1] & bw[w+1]; v != 0 {
				dst = appendWord(dst, base+64, v)
			}
			if v := aw[w+2] & bw[w+2]; v != 0 {
				dst = appendWord(dst, base+128, v)
			}
			if v := aw[w+3] & bw[w+3]; v != 0 {
				dst = appendWord(dst, base+192, v)
			}
		}
		return dst
	case ca.words != nil:
		return filterRunDense(dst, cb.run, ca.words, ca.base)
	case cb.words != nil:
		return filterRunDense(dst, ca.run, cb.words, cb.base)
	default:
		return intersectRuns(dst, ca.run, cb.run)
	}
}

// IntersectInto appends the intersection of a and b to dst: a linear merge
// over the chunk directories, then per matching chunk either a 64-word AND
// (dense×dense), a bit-test filter (dense×sparse) or a run merge
// (sparse×sparse). The result is ascending. dst must not alias either
// operand's storage.
func IntersectInto(dst []uint32, a, b *List) []uint32 {
	i, j := 0, 0
	for i < len(a.chunks) && j < len(b.chunks) {
		ca, cb := &a.chunks[i], &b.chunks[j]
		switch {
		case ca.base < cb.base:
			i++
		case cb.base < ca.base:
			j++
		default:
			dst = intersectChunk(dst, ca, cb)
			i++
			j++
		}
	}
	return dst
}

// kStack bounds the stack-allocated cursor arrays of IntersectKInto;
// conjunctions wider than this (vanishingly rare — the planner bounds
// query width well below it) fall back to heap cursors.
const kStack = 16

// IntersectKInto appends the intersection of k lists to dst, ascending.
// The chunk directories advance in lockstep (only ranges every list
// occupies are visited); an all-dense chunk group runs the word-AND across
// all k bitmaps, and a group with sparse members filters the shortest
// sparse run through the rest via O(1) bit tests and run merges, inside
// two fixed stack buffers — zero allocations for k ≤ 16.
func IntersectKInto(dst []uint32, lists ...*List) []uint32 {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return lists[0].DecodeInto(dst)
	case 2:
		return IntersectInto(dst, lists[0], lists[1])
	}
	k := len(lists)
	var idxArr [kStack]int
	var chArr [kStack]*chunk
	idx, chs := idxArr[:], chArr[:]
	if k > kStack {
		idx, chs = make([]int, k), make([]*chunk, k)
	}
	idx = idx[:k]
	chs = chs[:k]
	for {
		var maxBase uint32
		for i, l := range lists {
			if idx[i] >= len(l.chunks) {
				return dst
			}
			if b := l.chunks[idx[i]].base; i == 0 || b > maxBase {
				maxBase = b
			}
		}
		aligned := true
		for i, l := range lists {
			for idx[i] < len(l.chunks) && l.chunks[idx[i]].base < maxBase {
				idx[i]++
			}
			if idx[i] >= len(l.chunks) {
				return dst
			}
			if l.chunks[idx[i]].base != maxBase {
				aligned = false
			}
		}
		if !aligned {
			continue
		}
		for i, l := range lists {
			chs[i] = &l.chunks[idx[i]]
			idx[i]++
		}
		dst = intersectChunkK(dst, chs)
	}
}

// intersectChunkK appends the intersection of k same-base chunks to dst.
func intersectChunkK(dst []uint32, chs []*chunk) []uint32 {
	var sp *chunk
	for _, c := range chs {
		if c.words == nil && (sp == nil || len(c.run) < len(sp.run)) {
			sp = c
		}
	}
	if sp == nil { // all dense: k-way word AND, four words per iteration
		base := chs[0].base
		w0 := chs[0].words
		_ = w0[ChunkWords-1] // hoist the bounds check
		for w := 0; w < ChunkWords; w += 4 {
			v0, v1, v2, v3 := w0[w], w0[w+1], w0[w+2], w0[w+3]
			for _, c := range chs[1:] {
				cw := c.words
				_ = cw[ChunkWords-1]
				v0 &= cw[w]
				v1 &= cw[w+1]
				v2 &= cw[w+2]
				v3 &= cw[w+3]
				if v0|v1|v2|v3 == 0 {
					break // span already empty; skip the remaining operands
				}
			}
			if v0|v1|v2|v3 == 0 {
				continue
			}
			b := base + uint32(w<<6)
			if v0 != 0 {
				dst = appendWord(dst, b, v0)
			}
			if v1 != 0 {
				dst = appendWord(dst, b+64, v1)
			}
			if v2 != 0 {
				dst = appendWord(dst, b+128, v2)
			}
			if v3 != 0 {
				dst = appendWord(dst, b+192, v3)
			}
		}
		return dst
	}
	// Probe the shortest sparse run through every other chunk. Sparse runs
	// hold at most DenseMin elements, so two fixed stack buffers suffice.
	var b0, b1 [DenseMin]uint32
	cur := append(b0[:0], sp.run...)
	spare := b1[:0]
	for _, c := range chs {
		if c == sp {
			continue
		}
		if len(cur) == 0 {
			break
		}
		if c.words != nil {
			spare = filterRunDense(spare[:0], cur, c.words, c.base)
		} else {
			spare = intersectRuns(spare[:0], cur, c.run)
		}
		cur, spare = spare, cur
	}
	return append(dst, cur...)
}

// UnionInto appends the union of a and b to dst, ascending. dst must not
// alias either operand's storage.
func UnionInto(dst []uint32, a, b *List) []uint32 {
	i, j := 0, 0
	for i < len(a.chunks) && j < len(b.chunks) {
		ca, cb := &a.chunks[i], &b.chunks[j]
		switch {
		case ca.base < cb.base:
			dst = appendChunk(dst, ca)
			i++
		case cb.base < ca.base:
			dst = appendChunk(dst, cb)
			j++
		default:
			dst = unionChunk(dst, ca, cb)
			i++
			j++
		}
	}
	for ; i < len(a.chunks); i++ {
		dst = appendChunk(dst, &a.chunks[i])
	}
	for ; j < len(b.chunks); j++ {
		dst = appendChunk(dst, &b.chunks[j])
	}
	return dst
}

// unionChunk appends the union of two same-base chunks to dst.
func unionChunk(dst []uint32, ca, cb *chunk) []uint32 {
	if ca.words == nil && cb.words == nil {
		return sets.UnionInto(dst, ca.run, cb.run)
	}
	// At least one bitmap: OR into a stack accumulator and enumerate.
	var acc [ChunkWords]uint64
	for _, c := range [2]*chunk{ca, cb} {
		if c.words != nil {
			for w, v := range c.words {
				acc[w] |= v
			}
		} else {
			for _, x := range c.run {
				r := x - c.base
				acc[r>>6] |= 1 << (r & 63)
			}
		}
	}
	for w, v := range acc {
		if v != 0 {
			dst = appendWord(dst, ca.base+uint32(w<<6), v)
		}
	}
	return dst
}

// DifferenceInto appends a − b to dst, ascending. dst must not alias
// either operand's storage.
func DifferenceInto(dst []uint32, a, b *List) []uint32 {
	i, j := 0, 0
	for i < len(a.chunks) {
		ca := &a.chunks[i]
		for j < len(b.chunks) && b.chunks[j].base < ca.base {
			j++
		}
		if j == len(b.chunks) || b.chunks[j].base != ca.base {
			dst = appendChunk(dst, ca)
			i++
			continue
		}
		dst = differenceChunk(dst, ca, &b.chunks[j])
		i++
		j++
	}
	return dst
}

// differenceChunk appends ca − cb for two same-base chunks to dst.
func differenceChunk(dst []uint32, ca, cb *chunk) []uint32 {
	switch {
	case ca.words != nil && cb.words != nil:
		aw, bw := ca.words, cb.words
		_, _ = aw[ChunkWords-1], bw[ChunkWords-1] // hoist the bounds checks
		// Mirrors intersectChunk's 4-word unroll, with ANDNOT.
		for w := 0; w < ChunkWords; w += 4 {
			base := ca.base + uint32(w<<6)
			if v := aw[w] &^ bw[w]; v != 0 {
				dst = appendWord(dst, base, v)
			}
			if v := aw[w+1] &^ bw[w+1]; v != 0 {
				dst = appendWord(dst, base+64, v)
			}
			if v := aw[w+2] &^ bw[w+2]; v != 0 {
				dst = appendWord(dst, base+128, v)
			}
			if v := aw[w+3] &^ bw[w+3]; v != 0 {
				dst = appendWord(dst, base+192, v)
			}
		}
		return dst
	case ca.words != nil:
		var acc [ChunkWords]uint64
		copy(acc[:], ca.words)
		for _, x := range cb.run {
			r := x - cb.base
			acc[r>>6] &^= 1 << (r & 63)
		}
		for w, v := range acc {
			if v != 0 {
				dst = appendWord(dst, ca.base+uint32(w<<6), v)
			}
		}
		return dst
	case cb.words != nil:
		for _, x := range ca.run {
			r := x - cb.base
			if cb.words[r>>6]&(1<<(r&63)) == 0 {
				dst = append(dst, x)
			}
		}
		return dst
	default:
		return sets.DifferenceInto(dst, ca.run, cb.run)
	}
}

// FilterInto appends the members of probe (ascending docIDs) present in l
// to out — the stored-tier probe filter. A chunk cursor advances with the
// probes, so a pass over p probes costs O(p + chunks) with an O(1) bit
// test per probe on dense chunks.
func (l *List) FilterInto(probe, out []uint32) []uint32 {
	ci, ri := 0, 0
	curBase := ^uint32(0)
	for _, x := range probe {
		base := chunkBase(x)
		if base != curBase {
			for ci < len(l.chunks) && l.chunks[ci].base < base {
				ci++
			}
			if ci == len(l.chunks) {
				break
			}
			curBase = base
			ri = 0
		}
		c := &l.chunks[ci]
		if c.base != base {
			continue
		}
		if c.words != nil {
			r := x - base
			if c.words[r>>6]&(1<<(r&63)) != 0 {
				out = append(out, x)
			}
			continue
		}
		for ri < len(c.run) && c.run[ri] < x {
			ri++
		}
		if ri < len(c.run) && c.run[ri] == x {
			out = append(out, x)
		}
	}
	return out
}
