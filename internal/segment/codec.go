package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fastintersect/internal/sets"
)

// The segment wire format. One "section" serializes one term map plus one
// tombstone set — the shape shared by a frozen segment, the active segment
// (empty tombstones) and the base (terms extracted from the index, with the
// shard's base tombstones riding along):
//
//	uvarint termCount
//	termCount × { uvarint len(term), term bytes,
//	              uvarint df, df × uvarint docID-delta }
//	uvarint tombCount, tombCount × uvarint docID-delta
//
// Posting lists and tombstone sets are strictly increasing, so they are
// delta-encoded: the first value raw, then gaps (≥ 1). Terms are written in
// sorted order, making the encoding deterministic — byte-identical snapshots
// for identical segments. Framing (magic, version, checksum) is the
// caller's concern: the engine's snapshot files wrap several sections under
// one header and a trailing CRC (see engine/snapshot.go).

// WriteSection serializes one (terms, tombs) pair to w. Terms must map to
// strictly sorted docID lists; tombs must be strictly sorted.
func WriteSection(w *bufio.Writer, termList []string, postings func(term string) []uint32, tombs []uint32) error {
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	writeSet := func(s []uint32) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		prev := uint32(0)
		for i, v := range s {
			gap := uint64(v)
			if i > 0 {
				gap = uint64(v - prev)
			}
			if err := putUvarint(gap); err != nil {
				return err
			}
			prev = v
		}
		return nil
	}
	if err := putUvarint(uint64(len(termList))); err != nil {
		return err
	}
	for _, t := range termList {
		if err := putUvarint(uint64(len(t))); err != nil {
			return err
		}
		if _, err := w.WriteString(t); err != nil {
			return err
		}
		if err := writeSet(postings(t)); err != nil {
			return err
		}
	}
	return writeSet(tombs)
}

// maxSectionSet bounds a single decoded list so a corrupt length prefix
// cannot drive an arbitrarily large allocation before the checksum is even
// reached.
const maxSectionSet = 1 << 28

// ReadSection decodes one section written by WriteSection, returning the
// term map and tombstone set. Every decoded list is validated as a strictly
// sorted set.
func ReadSection(r *bufio.Reader) (map[string][]uint32, []uint32, error) {
	readSet := func() ([]uint32, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if n > maxSectionSet {
			return nil, fmt.Errorf("segment: list length %d exceeds limit", n)
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]uint32, n)
		prev := uint64(0)
		for i := range out {
			gap, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			v := gap
			if i > 0 {
				v = prev + gap
				if gap == 0 {
					return nil, fmt.Errorf("segment: zero gap (duplicate docID)")
				}
			}
			if v > 1<<32-1 {
				return nil, fmt.Errorf("segment: docID %d overflows uint32", v)
			}
			out[i] = uint32(v)
			prev = v
		}
		return out, nil
	}
	termCount, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if termCount > maxSectionSet {
		return nil, nil, fmt.Errorf("segment: term count %d exceeds limit", termCount)
	}
	terms := make(map[string][]uint32, termCount)
	nameBuf := make([]byte, 0, 64)
	for i := uint64(0); i < termCount; i++ {
		nameLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, nil, err
		}
		if nameLen > 1<<20 {
			return nil, nil, fmt.Errorf("segment: term length %d exceeds limit", nameLen)
		}
		if uint64(cap(nameBuf)) < nameLen {
			nameBuf = make([]byte, nameLen)
		}
		nameBuf = nameBuf[:nameLen]
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, nil, err
		}
		ps, err := readSet()
		if err != nil {
			return nil, nil, fmt.Errorf("segment: term %q postings: %w", nameBuf, err)
		}
		if len(ps) == 0 {
			return nil, nil, fmt.Errorf("segment: term %q has no postings", nameBuf)
		}
		terms[string(nameBuf)] = ps
	}
	tombs, err := readSet()
	if err != nil {
		return nil, nil, fmt.Errorf("segment: tombstones: %w", err)
	}
	if err := sets.Validate(tombs); err != nil {
		return nil, nil, fmt.Errorf("segment: tombstones: %w", err)
	}
	return terms, tombs, nil
}

// WriteFrozen serializes f as one section.
func (f *Frozen) WriteFrozen(w *bufio.Writer) error {
	return WriteSection(w, f.Terms(), f.Postings, f.tombs)
}

// ReadFrozen decodes one section into a Frozen segment.
func ReadFrozen(r *bufio.Reader) (*Frozen, error) {
	terms, tombs, err := ReadSection(r)
	if err != nil {
		return nil, err
	}
	return FrozenFromParts(terms, tombs)
}

// WriteMutable serializes the active segment as one section (with an empty
// tombstone set — an active segment has none).
func (m *Mutable) WriteMutable(w *bufio.Writer) error {
	return WriteSection(w, m.Terms(), m.Postings, nil)
}

// ReadMutable decodes one section into a Mutable segment, rebuilding the
// docID → terms reverse map.
func ReadMutable(r *bufio.Reader) (*Mutable, error) {
	terms, tombs, err := ReadSection(r)
	if err != nil {
		return nil, err
	}
	if len(tombs) != 0 {
		return nil, fmt.Errorf("segment: active segment carries tombstones")
	}
	m := NewMutable()
	postings := 0
	for t, ps := range terms {
		if err := sets.Validate(ps); err != nil {
			return nil, fmt.Errorf("segment: term %q: %w", t, err)
		}
		postings += len(ps)
		for _, id := range ps {
			m.docs[id] = append(m.docs[id], t)
		}
	}
	m.terms = terms
	m.postings = postings
	return m, nil
}
