package segment

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"

	"fastintersect/internal/sets"
)

func TestFreezeMovesPostings(t *testing.T) {
	m := NewMutable()
	m.AddDoc(3, []string{"a", "b"})
	m.AddDoc(1, []string{"a"})
	m.AddDoc(2, []string{"b", "c"})
	if m.NumDocs() != 3 || m.NumPostings() != 5 {
		t.Fatalf("mutable: docs=%d postings=%d, want 3/5", m.NumDocs(), m.NumPostings())
	}
	aList := m.Postings("a")
	f := m.Freeze()
	if m.NumDocs() != 0 || m.NumPostings() != 0 {
		t.Fatalf("mutable not drained by Freeze: docs=%d postings=%d", m.NumDocs(), m.NumPostings())
	}
	if f.NumDocs() != 3 || f.NumPostings() != 5 || f.LiveDocs() != 3 {
		t.Fatalf("frozen: docs=%d postings=%d live=%d, want 3/5/3", f.NumDocs(), f.NumPostings(), f.LiveDocs())
	}
	if !sets.Equal(f.DocIDs(), []uint32{1, 2, 3}) {
		t.Fatalf("frozen docIDs = %v", f.DocIDs())
	}
	// The freeze must move, not copy: same backing array.
	if got := f.Postings("a"); len(got) != 2 || &got[0] != &aList[0] {
		t.Fatalf("Freeze copied postings (len=%d, moved=%v)", len(got), len(got) == 2 && &got[0] == &aList[0])
	}
}

func TestAddTombEnforcesSubset(t *testing.T) {
	m := NewMutable()
	m.AddDoc(1, []string{"a"})
	m.AddDoc(5, []string{"a"})
	f := m.Freeze()
	if f.AddTomb(3) {
		t.Fatal("AddTomb accepted a docID the segment does not hold")
	}
	if !f.AddTomb(5) || f.AddTomb(5) {
		t.Fatal("AddTomb: first insert must succeed, repeat must not")
	}
	if f.LiveDocs() != 1 || f.Visible(5) || !f.Visible(1) {
		t.Fatalf("after tombstoning 5: live=%d visible(5)=%v visible(1)=%v", f.LiveDocs(), f.Visible(5), f.Visible(1))
	}
}

// buildFrozen makes a frozen segment from doc → terms pairs.
func buildFrozen(t *testing.T, docs map[uint32][]string) *Frozen {
	t.Helper()
	m := NewMutable()
	for id, terms := range docs {
		m.AddDoc(id, terms)
	}
	return m.Freeze()
}

func TestMergeDropsSnapshotTombs(t *testing.T) {
	a := buildFrozen(t, map[uint32][]string{1: {"x"}, 2: {"x", "y"}})
	b := buildFrozen(t, map[uint32][]string{3: {"y"}, 4: {"z"}})
	a.AddTomb(2) // superseded before the merge was scheduled
	merged := Merge([]*Frozen{a, b}, [][]uint32{sets.Clone(a.Tombs()), nil})
	if !sets.Equal(merged.DocIDs(), []uint32{1, 3, 4}) {
		t.Fatalf("merged docIDs = %v, want [1 3 4]", merged.DocIDs())
	}
	if !sets.Equal(merged.Postings("x"), []uint32{1}) {
		t.Fatalf(`merged["x"] = %v, want [1] (doc 2 tombstoned at snapshot)`, merged.Postings("x"))
	}
	if !sets.Equal(merged.Postings("y"), []uint32{3}) {
		t.Fatalf(`merged["y"] = %v, want [3]`, merged.Postings("y"))
	}
	if merged.NumPostings() != 3 || len(merged.Tombs()) != 0 {
		t.Fatalf("merged postings=%d tombs=%d, want 3/0", merged.NumPostings(), len(merged.Tombs()))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMutable()
	terms := []string{"alpha", "beta", "gamma", "δ-unicode", ""}
	for id := uint32(0); id < 500; id++ {
		var ts []string
		for _, term := range terms[:4] {
			if rng.Intn(3) == 0 {
				ts = append(ts, term)
			}
		}
		if len(ts) == 0 {
			ts = []string{"alpha"}
		}
		m.AddDoc(id*7, ts)
	}
	f := m.Freeze()
	for id := uint32(0); id < 100; id++ {
		f.AddTomb(id * 21)
	}

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := f.WriteFrozen(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrozen(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != f.NumDocs() || got.NumPostings() != f.NumPostings() || got.LiveDocs() != f.LiveDocs() {
		t.Fatalf("round trip: docs %d→%d postings %d→%d live %d→%d",
			f.NumDocs(), got.NumDocs(), f.NumPostings(), got.NumPostings(), f.LiveDocs(), got.LiveDocs())
	}
	for _, term := range f.Terms() {
		if !sets.Equal(got.Postings(term), f.Postings(term)) {
			t.Fatalf("term %q: %v → %v", term, f.Postings(term), got.Postings(term))
		}
	}
	if !sets.Equal(got.Tombs(), f.Tombs()) {
		t.Fatalf("tombs: %v → %v", f.Tombs(), got.Tombs())
	}

	// Determinism: a second encode is byte-identical.
	var buf2 bytes.Buffer
	w2 := bufio.NewWriter(&buf2)
	if err := got.WriteFrozen(w2); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestCodecMutableRoundTrip(t *testing.T) {
	m := NewMutable()
	m.AddDoc(10, []string{"a", "b"})
	m.AddDoc(20, []string{"b"})
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := m.WriteMutable(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMutable(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 2 || got.NumPostings() != 3 {
		t.Fatalf("round trip: docs=%d postings=%d, want 2/3", got.NumDocs(), got.NumPostings())
	}
	// The reverse map must be rebuilt: RemoveDoc has to work.
	if !got.RemoveDoc(10) || got.NumPostings() != 1 || len(got.Postings("a")) != 0 {
		t.Fatalf("reverse map broken after decode: postings=%d a=%v", got.NumPostings(), got.Postings("a"))
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	f := buildFrozen(t, map[uint32][]string{1: {"a"}, 2: {"a", "b"}})
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := f.WriteFrozen(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Truncations at every prefix must error, never panic or mis-decode.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := ReadFrozen(bufio.NewReader(bytes.NewReader(valid[:cut]))); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(valid))
		}
	}
}
