// Package segment holds the building blocks of the engine's tiered mutable
// tier: the small in-memory segments a shard stacks on top of its frozen
// base index.
//
// A shard's tier is
//
//	base (invindex.Index) + k frozen segments + 1 active mutable segment
//
// where every segment carries its own tombstone filter and per-term document
// frequencies. The invariant the engine maintains (see engine/mutable.go) is
// that each document is VISIBLE in exactly one segment: writing a document
// tombstones every older copy, so for any boolean expression f
//
//	f(shard) = ∪ over segments s of (f(s) − s.tombs)
//
// and the per-segment results can be combined with one k-way union,
// independent of segment order. That order independence is what makes
// size-tiered merging possible: any subset of frozen segments can be
// coalesced into one without consulting the others.
//
// Mutable is the active write head (map-backed, cheap point updates); Freeze
// converts it into a Frozen segment by MOVING its maps — no postings are
// copied, which is why freezing the active segment is a near-zero-cost
// compaction step. Frozen segments are immutable except for their tombstone
// filter, which only grows and is guarded by the owning shard's lock.
package segment

import (
	"fmt"
	"sort"

	"fastintersect/internal/sets"
)

// TermSource is the read interface the engine's in-memory segment evaluator
// needs: term → sorted docIDs. Both Mutable and Frozen implement it, so one
// evaluator serves the whole tier above the base.
type TermSource interface {
	// Postings returns the sorted docID list of term, or nil. The returned
	// slice must be treated as read-only; for a Mutable it may be shifted in
	// place by the next mutation, so callers that outlive the shard lock
	// must copy it.
	Postings(term string) []uint32
}

// Mutable is the active write head of one shard: a term → sorted docIDs map
// plus a docID → terms reverse map so deletes and overwrites are exact.
// All access is guarded by the owning shard's mutex.
type Mutable struct {
	terms    map[string][]uint32 // term → sorted docIDs
	docs     map[uint32][]string // docID → its distinct terms
	postings int                 // total postings across terms
}

// NewMutable returns an empty active segment.
func NewMutable() *Mutable {
	return &Mutable{terms: map[string][]uint32{}, docs: map[uint32][]string{}}
}

// AddDoc records terms (already deduplicated, no empties) for docID,
// replacing any previous version of the document in this segment.
func (m *Mutable) AddDoc(docID uint32, terms []string) {
	m.RemoveDoc(docID)
	m.docs[docID] = terms
	for _, t := range terms {
		s, inserted := sets.InsertSorted(m.terms[t], docID)
		m.terms[t] = s
		if inserted {
			m.postings++
		}
	}
}

// RemoveDoc drops docID from the segment, reporting whether it was present.
func (m *Mutable) RemoveDoc(docID uint32) bool {
	terms, ok := m.docs[docID]
	if !ok {
		return false
	}
	for _, t := range terms {
		s, removed := sets.RemoveSorted(m.terms[t], docID)
		if removed {
			m.postings--
		}
		if len(s) == 0 {
			delete(m.terms, t)
		} else {
			m.terms[t] = s
		}
	}
	delete(m.docs, docID)
	return true
}

// Postings implements TermSource. The result aliases live map state.
func (m *Mutable) Postings(term string) []uint32 { return m.terms[term] }

// HasDoc reports whether docID is present in the segment.
func (m *Mutable) HasDoc(docID uint32) bool {
	_, ok := m.docs[docID]
	return ok
}

// NumDocs returns the number of documents held.
func (m *Mutable) NumDocs() int { return len(m.docs) }

// NumPostings returns the total posting count across terms.
func (m *Mutable) NumPostings() int { return m.postings }

// Terms returns the segment's distinct terms, sorted (serialization and
// rebuild folds want deterministic order).
func (m *Mutable) Terms() []string {
	out := make([]string, 0, len(m.terms))
	for t := range m.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Freeze converts the active segment into a Frozen one by MOVING the term
// map — no posting is copied, so a freeze is O(docs) for the docID set and
// nothing else. The Mutable must not be used afterwards.
func (m *Mutable) Freeze() *Frozen {
	docIDs := make([]uint32, 0, len(m.docs))
	for id := range m.docs {
		docIDs = append(docIDs, id)
	}
	sets.SortU32(docIDs)
	f := &Frozen{terms: m.terms, docIDs: docIDs, postings: m.postings}
	m.terms = nil
	m.docs = nil
	m.postings = 0
	return f
}

// Frozen is an immutable in-memory segment: its postings never change after
// construction. Only the tombstone filter grows, and exclusively under the
// owning shard's write lock — which is what lets query results alias frozen
// posting lists after the shard lock is released, and lets merges read
// victim postings off-lock against a tombstone snapshot.
type Frozen struct {
	terms    map[string][]uint32 // term → sorted docIDs; immutable
	docIDs   []uint32            // sorted distinct docIDs; immutable
	postings int
	tombs    []uint32 // sorted, ⊆ docIDs; guarded by the owning shard's lock
}

// FrozenFromParts assembles a Frozen from a decoded term map (codec /
// snapshot load path). Postings and docIDs are derived; tombs is filtered to
// the segment's own documents so LiveDocs stays exact.
func FrozenFromParts(terms map[string][]uint32, tombs []uint32) (*Frozen, error) {
	postings := 0
	var docIDs []uint32
	for t, ps := range terms {
		if err := sets.Validate(ps); err != nil {
			return nil, fmt.Errorf("segment: term %q: %w", t, err)
		}
		postings += len(ps)
		docIDs = sets.Union(docIDs, ps)
	}
	f := &Frozen{terms: terms, docIDs: docIDs, postings: postings}
	for _, id := range tombs {
		f.AddTomb(id)
	}
	return f, nil
}

// Postings implements TermSource. The result is immutable and remains valid
// after the shard lock is released.
func (f *Frozen) Postings(term string) []uint32 { return f.terms[term] }

// DocFreq returns the document frequency of term in this segment.
func (f *Frozen) DocFreq(term string) int { return len(f.terms[term]) }

// DocIDs returns the segment's sorted document set (including tombstoned
// documents). Read-only.
func (f *Frozen) DocIDs() []uint32 { return f.docIDs }

// HasDoc reports whether docID is in the segment's document set (it may
// still be tombstoned).
func (f *Frozen) HasDoc(docID uint32) bool { return sets.Contains(f.docIDs, docID) }

// NumDocs returns the document count including tombstoned documents.
func (f *Frozen) NumDocs() int { return len(f.docIDs) }

// LiveDocs returns the visible document count (tombs ⊆ docIDs, which AddTomb
// enforces).
func (f *Frozen) LiveDocs() int { return len(f.docIDs) - len(f.tombs) }

// NumPostings returns the total posting count across terms (tombstoned
// documents included — they are suppressed at query time, not purged).
func (f *Frozen) NumPostings() int { return f.postings }

// Tombs returns the tombstone filter. Guarded by the owning shard's lock.
func (f *Frozen) Tombs() []uint32 { return f.tombs }

// AddTomb tombstones docID, reporting whether the filter changed. Inserts
// are skipped for documents the segment does not hold, preserving the
// tombs ⊆ docIDs invariant LiveDocs depends on. Caller holds the owning
// shard's write lock.
func (f *Frozen) AddTomb(docID uint32) bool {
	if !sets.Contains(f.docIDs, docID) {
		return false
	}
	var inserted bool
	f.tombs, inserted = sets.InsertSorted(f.tombs, docID)
	return inserted
}

// Visible reports whether docID is in the segment and not tombstoned.
func (f *Frozen) Visible(docID uint32) bool {
	return sets.Contains(f.docIDs, docID) && !sets.Contains(f.tombs, docID)
}

// Terms returns the segment's distinct terms, sorted.
func (f *Frozen) Terms() []string {
	out := make([]string, 0, len(f.terms))
	for t := range f.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Merge coalesces several frozen segments into one, dropping the documents
// each input had tombstoned at snapshot time. tombSnaps[i] is the snapshot
// of inputs[i].Tombs() taken under the shard lock when the merge was
// scheduled; the merge itself runs off-lock (inputs' postings are immutable,
// and tombstones added after the snapshot are re-applied by the caller at
// swap time via AddTomb). The result has an empty tombstone filter and its
// NumPostings is exactly the number of postings written — the merge's write
// amplification numerator.
func Merge(inputs []*Frozen, tombSnaps [][]uint32) *Frozen {
	terms := map[string][]uint32{}
	var scratch []uint32
	postings := 0
	var docIDs []uint32
	for i, in := range inputs {
		docIDs = sets.Union(docIDs, sets.Difference(in.docIDs, tombSnaps[i]))
	}
	for i, in := range inputs {
		for t, ps := range in.terms {
			scratch = sets.DifferenceInto(scratch[:0], ps, tombSnaps[i])
			if len(scratch) == 0 {
				continue
			}
			prev := terms[t]
			postings -= len(prev)
			merged := sets.Union(prev, scratch)
			terms[t] = merged
			postings += len(merged)
		}
	}
	return &Frozen{terms: terms, docIDs: docIDs, postings: postings}
}
