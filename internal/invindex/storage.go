package invindex

import (
	"fmt"
	"strings"
)

// Storage selects how a built index holds its posting lists: the pluggable
// representation tier of the serving path.
type Storage int

const (
	// StorageRaw keeps every posting list as a sorted []uint32 wrapped in
	// a fastintersect.List, with the per-algorithm structures built lazily:
	// 32 bits per posting, zero decode cost, every algorithm available.
	StorageRaw Storage = iota
	// StorageCompressed holds each posting list under the encoding
	// compress.ChooseEncoding picks from its length and density — raw for
	// short lists, γ/δ gap-coded buckets for dense/sparse lists, and the
	// Lowbits-grouped RanGroupScan structure (Appendix B) for the long
	// lists that dominate query time. Queries intersect directly over the
	// compressed representations; the explicit-algorithm selection of
	// QueryWith applies only to raw storage.
	StorageCompressed
)

// storageNames in declaration order.
var storageNames = [...]string{"raw", "compressed"}

// String names the storage mode.
func (s Storage) String() string {
	if int(s) < len(storageNames) {
		return storageNames[s]
	}
	return "Storage(?)"
}

// ParseStorage parses a storage-mode name, case-insensitively, inverting
// Storage.String.
func ParseStorage(name string) (Storage, error) {
	for i, n := range storageNames {
		if strings.EqualFold(n, name) {
			return Storage(i), nil
		}
	}
	return 0, fmt.Errorf("invindex: unknown storage mode %q (known: %s)",
		name, strings.Join(storageNames[:], ", "))
}

// EncodingStats aggregates the posting lists stored under one encoding.
type EncodingStats struct {
	// Lists is the number of posting lists under this encoding.
	Lists int `json:"lists"`
	// Postings is the total number of postings they hold.
	Postings uint64 `json:"postings"`
	// Bytes is their exact payload footprint (element storage plus
	// directories; struct headers and the lazily built per-algorithm
	// structures of raw lists are not counted).
	Bytes uint64 `json:"bytes"`
}

// MemStats is the exact posting-payload accounting of a built index.
type MemStats struct {
	// Postings is the total posting count across all terms.
	Postings uint64 `json:"postings"`
	// RawBytes is the uncompressed footprint those postings would occupy
	// (4 bytes each) — the baseline compression is measured against.
	RawBytes uint64 `json:"raw_bytes"`
	// StoredBytes is the footprint actually held.
	StoredBytes uint64 `json:"stored_bytes"`
	// Encodings breaks the footprint down per encoding name.
	Encodings map[string]EncodingStats `json:"encodings"`
}

// MemStats returns the index's posting-payload accounting. Before Build it
// reports zero values.
func (ix *Index) MemStats() MemStats {
	st := MemStats{Encodings: map[string]EncodingStats{}}
	add := func(enc string, postings, bytes uint64) {
		e := st.Encodings[enc]
		e.Lists++
		e.Postings += postings
		e.Bytes += bytes
		st.Encodings[enc] = e
		st.Postings += postings
		st.RawBytes += 4 * postings
		st.StoredBytes += bytes
	}
	for _, l := range ix.built {
		add("Raw", uint64(l.Len()), 4*uint64(l.Len()))
	}
	for _, s := range ix.stored {
		add(s.Encoding().String(), uint64(s.Len()), uint64(s.SizeBytes()))
	}
	return st
}
