package invindex

import (
	"errors"
	"testing"

	"fastintersect"
	"fastintersect/internal/sets"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	ix := New()
	docs := []struct {
		id    uint32
		terms []string
	}{
		{1, []string{"fast", "set", "intersection"}},
		{2, []string{"set", "theory"}},
		{3, []string{"fast", "set", "union"}},
		{4, []string{"fast", "cars"}},
		{5, []string{"intersection", "set", "fast"}},
	}
	for _, d := range docs {
		if err := ix.Add(d.id, d.terms); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexQuery(t *testing.T) {
	ix := buildTestIndex(t)
	got, err := ix.Query("fast", "set")
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(got, []uint32{1, 3, 5}) {
		t.Fatalf(`fast ∧ set = %v`, got)
	}
	got, err = ix.Query("fast", "set", "intersection")
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(got, []uint32{1, 5}) {
		t.Fatalf(`three-term query = %v`, got)
	}
	got, err = ix.Query("set")
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(got, []uint32{1, 2, 3, 5}) {
		t.Fatalf(`single-term query = %v`, got)
	}
}

func TestIndexQueryWithEveryAlgorithm(t *testing.T) {
	ix := buildTestIndex(t)
	want, _ := ix.Query("fast", "set")
	for _, algo := range fastintersect.Algorithms() {
		got, err := ix.QueryWith(algo, "fast", "set")
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !sets.Equal(got, want) {
			t.Fatalf("%v: got %v, want %v", algo, got, want)
		}
	}
}

func TestIndexErrors(t *testing.T) {
	ix := New()
	if _, err := ix.Query("a"); err == nil {
		t.Fatal("query before build accepted")
	}
	_ = ix.Add(1, []string{"a"})
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err == nil {
		t.Fatal("double build accepted")
	}
	if err := ix.Add(2, []string{"b"}); err == nil {
		t.Fatal("add after build accepted")
	}
	if _, err := ix.Query(); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := ix.Query("nope"); !errors.Is(err, ErrUnknownTerm) {
		t.Fatalf("unknown term error = %v", err)
	}
}

func TestIndexDuplicateTermsInDoc(t *testing.T) {
	ix := New()
	_ = ix.Add(7, []string{"x", "x", "", "y"})
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if df := ix.DocFreq("x"); df != 1 {
		t.Fatalf("DocFreq(x) = %d", df)
	}
	if df := ix.DocFreq(""); df != 0 {
		t.Fatal("empty term indexed")
	}
}

func TestIndexAddPostingAndTerms(t *testing.T) {
	ix := New()
	_ = ix.AddPosting("alpha", []uint32{3, 1, 3})
	_ = ix.AddPosting("beta", []uint32{1, 2})
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddPosting("gamma", nil); err == nil {
		t.Fatal("AddPosting after build accepted")
	}
	terms := ix.Terms()
	if len(terms) != 2 || terms[0] != "alpha" || terms[1] != "beta" {
		t.Fatalf("Terms = %v", terms)
	}
	if !sets.Equal(ix.Postings("alpha").Set(), []uint32{1, 3}) {
		t.Fatal("posting not deduplicated/sorted")
	}
	got, err := ix.Query("alpha", "beta")
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(got, []uint32{1}) {
		t.Fatalf("query = %v", got)
	}
}

func TestIndexAddPostingAfterBuild(t *testing.T) {
	ix := buildTestIndex(t)
	if err := ix.AddPosting("late", []uint32{1, 2}); err == nil {
		t.Fatal("AddPosting after Build accepted")
	}
}

func TestIndexDocsAndTermCount(t *testing.T) {
	ix := New()
	if ix.Docs() != 0 || ix.TermCount() != 0 {
		t.Fatalf("empty index: docs=%d terms=%d", ix.Docs(), ix.TermCount())
	}
	_ = ix.Add(1, []string{"a", "b"})
	_ = ix.Add(2, []string{"b"})
	if ix.Docs() != 2 || ix.TermCount() != 2 {
		t.Fatalf("pending: docs=%d terms=%d", ix.Docs(), ix.TermCount())
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if ix.Docs() != 2 || ix.TermCount() != 2 {
		t.Fatalf("built: docs=%d terms=%d", ix.Docs(), ix.TermCount())
	}
}

// TestBuildParallelMatchesSerial checks the shard-friendly build path
// produces an identical index.
func TestBuildParallelMatchesSerial(t *testing.T) {
	mk := func() *Index {
		ix := New()
		for d := uint32(0); d < 500; d++ {
			terms := []string{"all"}
			if d%2 == 0 {
				terms = append(terms, "even")
			}
			if d%3 == 0 {
				terms = append(terms, "triple")
			}
			if err := ix.Add(d, terms); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	serial, parallel := mk(), mk()
	if err := serial.Build(); err != nil {
		t.Fatal(err)
	}
	if err := parallel.BuildParallel(8); err != nil {
		t.Fatal(err)
	}
	for _, term := range []string{"all", "even", "triple"} {
		a, err := serial.Query(term)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Query(term)
		if err != nil {
			t.Fatal(err)
		}
		if !sets.Equal(a, b) {
			t.Fatalf("term %q: serial %d docs, parallel %d", term, len(a), len(b))
		}
	}
	got, err := parallel.Query("even", "triple")
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Query("even", "triple")
	if err != nil {
		t.Fatal(err)
	}
	if !sets.Equal(got, want) {
		t.Fatal("conjunctive query differs between build paths")
	}
}

func TestBuildParallelErrors(t *testing.T) {
	ix := New()
	_ = ix.Add(1, []string{"a"})
	if err := ix.BuildParallel(4); err != nil {
		t.Fatal(err)
	}
	if err := ix.BuildParallel(4); err == nil {
		t.Fatal("double BuildParallel accepted")
	}
	// Invalid options surface as a build error, not a panic.
	bad := New(fastintersect.WithHashImages(99))
	_ = bad.Add(1, []string{"a"})
	if err := bad.BuildParallel(4); err == nil {
		t.Fatal("invalid preprocess options accepted")
	}
}

// TestDocIDsDistinct pins the derived distinct-document accounting: Docs()
// and DocIDs() after Build must reflect the union of the posting lists, so
// duplicate Add calls and term-major AddPosting input are counted once.
func TestDocIDsDistinct(t *testing.T) {
	ix := New()
	_ = ix.Add(5, []string{"a", "b"})
	_ = ix.Add(5, []string{"b", "c"}) // duplicate add of doc 5
	_ = ix.Add(1, []string{"a"})
	_ = ix.AddPosting("d", []uint32{1, 9, 5})
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if got := ix.DocIDs(); !sets.Equal(got, []uint32{1, 5, 9}) {
		t.Fatalf("DocIDs = %v, want [1 5 9]", got)
	}
	if ix.Docs() != 3 {
		t.Fatalf("Docs = %d, want 3", ix.Docs())
	}

	empty := New()
	if err := empty.Build(); err != nil {
		t.Fatal(err)
	}
	if len(empty.DocIDs()) != 0 || empty.Docs() != 0 {
		t.Fatalf("empty built index: DocIDs=%v Docs=%d", empty.DocIDs(), empty.Docs())
	}
}
