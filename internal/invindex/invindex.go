// Package invindex is a small in-memory inverted index — the substrate the
// paper's motivating applications (enterprise/web search, conjunctive
// predicate evaluation) sit on. Documents are added as (docID, terms)
// pairs; Build freezes the index, preprocessing every posting list for
// conjunctive queries.
//
// The posting-list representation is pluggable (see Storage): StorageRaw
// wraps each list in the fastintersect public API so queries run any of the
// paper's algorithms; StorageCompressed stores each list under the encoding
// compress.ChooseEncoding picks from its length and density (raw, Elias
// γ/δ gap codes, or the paper's Lowbits grouping of Appendix B) and
// intersects directly over the compressed representations. MemStats
// reports the exact per-encoding payload footprint.
package invindex

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fastintersect"
	"fastintersect/internal/compress"
	"fastintersect/internal/core"
	"fastintersect/internal/sets"
)

// Index maps terms to preprocessed posting lists.
type Index struct {
	opts    []fastintersect.Option
	storage Storage
	fam     *core.Family // shared family of compressed grouped structures
	pending map[string][]uint32
	built   map[string]*fastintersect.List // StorageRaw
	stored  map[string]*compress.Stored    // StorageCompressed
	frozen  bool
	docs    int
	docIDs  []uint32 // sorted distinct docIDs across all postings (set by Build)
}

// New creates an empty raw-storage index; opts are forwarded to
// fastintersect.Preprocess for every posting list.
func New(opts ...fastintersect.Option) *Index {
	return NewWithStorage(StorageRaw, opts...)
}

// NewWithStorage creates an empty index holding its built posting lists
// under the given storage mode. Compressed grouped structures share the
// hash family the option seed selects, so they remain intersectable with
// raw lists preprocessed under the same options.
func NewWithStorage(st Storage, opts ...fastintersect.Option) *Index {
	return &Index{
		opts:    opts,
		storage: st,
		pending: map[string][]uint32{},
	}
}

// Storage returns the index's posting-storage mode.
func (ix *Index) Storage() Storage { return ix.storage }

// Add records a document. Duplicate terms within a document are fine.
// Add must not be called after Build.
func (ix *Index) Add(docID uint32, terms []string) error {
	if ix.frozen {
		return errors.New("invindex: Add after Build")
	}
	seen := map[string]bool{}
	for _, t := range terms {
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		ix.pending[t] = append(ix.pending[t], docID)
	}
	ix.docs++
	return nil
}

// AddPosting records a whole posting list for a term (builder-style input,
// used when the caller already has term → docIDs data).
func (ix *Index) AddPosting(term string, docIDs []uint32) error {
	if ix.frozen {
		return errors.New("invindex: AddPosting after Build")
	}
	ix.pending[term] = append(ix.pending[term], docIDs...)
	return nil
}

// Build freezes the index: posting lists are sorted, deduplicated and
// preprocessed into the configured storage representation. After Build the
// index is read-only and safe for concurrent queries.
func (ix *Index) Build() error {
	return ix.BuildParallel(1)
}

// BuildParallel is Build with posting-list preprocessing spread across
// workers goroutines (0 = GOMAXPROCS). This is the shard-friendly build
// path: a sharded engine builds many independent indexes concurrently, and
// each can additionally parallelize over its own terms.
func (ix *Index) BuildParallel(workers int) error {
	if ix.frozen {
		return errors.New("invindex: Build called twice")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ix.storage == StorageCompressed {
		ix.fam = core.NewFamily(fastintersect.OptionsSeed(ix.opts...), compress.StoredHashImages)
	}
	terms := make([]string, 0, len(ix.pending))
	for t := range ix.pending {
		terms = append(terms, t)
	}
	built := make(map[string]*fastintersect.List)
	stored := make(map[string]*compress.Stored)
	rawSets := make([][]uint32, 0, len(terms)) // per-term sorted sets, for the docID union
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
	)
	for _, term := range terms {
		wg.Add(1)
		sem <- struct{}{}
		go func(term string) {
			defer wg.Done()
			defer func() { <-sem }()
			set := sets.SortDedup(ix.pending[term])
			var (
				l   *fastintersect.List
				s   *compress.Stored
				err error
			)
			if ix.storage == StorageCompressed {
				s, err = compress.NewStoredAdaptive(ix.fam, set)
			} else {
				l, err = fastintersect.Preprocess(set, ix.opts...)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("invindex: term %q: %w", term, err)
				}
				return
			}
			rawSets = append(rawSets, set)
			if s != nil {
				stored[term] = s
			} else {
				built[term] = l
			}
		}(term)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Distinct documents = the union of every posting list, computed here
	// while the sorted raw sets are still in hand (under compressed storage
	// they are garbage once encoded). This is what makes doc counts exact
	// regardless of how documents arrived (Add, duplicate Add, AddPosting).
	ix.docIDs = sets.UnionKInto(make([]uint32, 0, 64), rawSets...)
	if ix.storage == StorageCompressed {
		ix.stored = stored
	} else {
		ix.built = built
	}
	ix.frozen = true
	ix.pending = nil
	return nil
}

// Terms returns the indexed terms, sorted.
func (ix *Index) Terms() []string {
	var out []string
	switch {
	case !ix.frozen:
		for t := range ix.pending {
			out = append(out, t)
		}
	case ix.storage == StorageCompressed:
		for t := range ix.stored {
			out = append(out, t)
		}
	default:
		for t := range ix.built {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Postings returns the preprocessed posting list of a term, or nil if the
// term is unknown, the index is not built, or the index uses compressed
// storage (see Stored).
func (ix *Index) Postings(term string) *fastintersect.List {
	if ix.built == nil {
		return nil
	}
	return ix.built[term]
}

// Stored returns the compressed representation of a term's posting list,
// or nil if the term is unknown, the index is not built, or the index uses
// raw storage (see Postings).
func (ix *Index) Stored(term string) *compress.Stored {
	if ix.stored == nil {
		return nil
	}
	return ix.stored[term]
}

// Docs returns the number of distinct indexed documents. After Build it is
// exact — the size of the union of every posting list — no matter how
// documents arrived (Add, duplicate Add, or term-major AddPosting). Before
// Build it counts Add calls, so duplicate adds and AddPosting input are not
// reflected until the index is built.
func (ix *Index) Docs() int {
	if ix.frozen {
		return len(ix.docIDs)
	}
	return ix.docs
}

// DocIDs returns the sorted distinct docIDs appearing in any posting list,
// or nil before Build. The slice is owned by the index; callers must not
// modify it. It is the membership structure the engine's mutable tier uses
// to account for deletions against the frozen base segment.
func (ix *Index) DocIDs() []uint32 { return ix.docIDs }

// TermCount returns the number of distinct indexed terms.
func (ix *Index) TermCount() int {
	switch {
	case !ix.frozen:
		return len(ix.pending)
	case ix.storage == StorageCompressed:
		return len(ix.stored)
	default:
		return len(ix.built)
	}
}

// Encoding returns the compressed encoding a term's posting list is stored
// under. ok is false for unknown terms, for unbuilt indexes, and under raw
// storage — the planner's metadata accessor, alongside DocFreq.
func (ix *Index) Encoding(term string) (enc compress.Encoding, ok bool) {
	s := ix.Stored(term)
	if s == nil {
		return 0, false
	}
	return s.Encoding(), true
}

// DocFreq returns the document frequency of a term (0 if unknown).
func (ix *Index) DocFreq(term string) int {
	if l := ix.Postings(term); l != nil {
		return l.Len()
	}
	if s := ix.Stored(term); s != nil {
		return s.Len()
	}
	return 0
}

// ErrUnknownTerm is returned by Query for terms with no postings.
var ErrUnknownTerm = errors.New("invindex: unknown term")

// Query returns the sorted documents containing every term, using the Auto
// algorithm (raw storage) or the compressed kernels (compressed storage).
func (ix *Index) Query(terms ...string) ([]uint32, error) {
	return ix.QueryWith(fastintersect.Auto, terms...)
}

// QueryWith runs a conjunctive query with a specific algorithm. Results
// are sorted ascending. Under compressed storage the intersection runs
// directly over the stored representations (γ/δ buckets decoded on the
// fly, Lowbits groups filtered and concatenated) and algo is ignored.
func (ix *Index) QueryWith(algo fastintersect.Algorithm, terms ...string) ([]uint32, error) {
	if !ix.frozen {
		return nil, errors.New("invindex: Query before Build")
	}
	if len(terms) == 0 {
		return nil, errors.New("invindex: empty query")
	}
	if ix.storage == StorageCompressed {
		ss := make([]*compress.Stored, len(terms))
		for i, t := range terms {
			s := ix.stored[t]
			if s == nil {
				return nil, fmt.Errorf("%w: %q", ErrUnknownTerm, t)
			}
			ss[i] = s
		}
		return compress.IntersectStored(ss...), nil
	}
	lists := make([]*fastintersect.List, len(terms))
	for i, t := range terms {
		l := ix.built[t]
		if l == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTerm, t)
		}
		lists[i] = l
	}
	out, err := fastintersect.IntersectWith(algo, lists...)
	if err != nil {
		return nil, err
	}
	sets.SortU32(out)
	return out, nil
}
