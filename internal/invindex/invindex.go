// Package invindex is a small in-memory inverted index — the substrate the
// paper's motivating applications (enterprise/web search, conjunctive
// predicate evaluation) sit on. Documents are added as (docID, terms)
// pairs; Build freezes the index, preprocessing every posting list with the
// fastintersect public API so conjunctive queries run any of the paper's
// algorithms.
package invindex

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fastintersect"
	"fastintersect/internal/sets"
)

// Index maps terms to preprocessed posting lists.
type Index struct {
	opts    []fastintersect.Option
	pending map[string][]uint32
	built   map[string]*fastintersect.List
	docs    int
}

// New creates an empty index; opts are forwarded to
// fastintersect.Preprocess for every posting list.
func New(opts ...fastintersect.Option) *Index {
	return &Index{opts: opts, pending: map[string][]uint32{}}
}

// Add records a document. Duplicate terms within a document are fine.
// Add must not be called after Build.
func (ix *Index) Add(docID uint32, terms []string) error {
	if ix.built != nil {
		return errors.New("invindex: Add after Build")
	}
	seen := map[string]bool{}
	for _, t := range terms {
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		ix.pending[t] = append(ix.pending[t], docID)
	}
	ix.docs++
	return nil
}

// AddPosting records a whole posting list for a term (builder-style input,
// used when the caller already has term → docIDs data).
func (ix *Index) AddPosting(term string, docIDs []uint32) error {
	if ix.built != nil {
		return errors.New("invindex: AddPosting after Build")
	}
	ix.pending[term] = append(ix.pending[term], docIDs...)
	return nil
}

// Build freezes the index: posting lists are sorted, deduplicated and
// preprocessed. After Build the index is read-only and safe for concurrent
// queries.
func (ix *Index) Build() error {
	return ix.BuildParallel(1)
}

// BuildParallel is Build with posting-list preprocessing spread across
// workers goroutines (0 = GOMAXPROCS). This is the shard-friendly build
// path: a sharded engine builds many independent indexes concurrently, and
// each can additionally parallelize over its own terms.
func (ix *Index) BuildParallel(workers int) error {
	if ix.built != nil {
		return errors.New("invindex: Build called twice")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	terms := make([]string, 0, len(ix.pending))
	for t := range ix.pending {
		terms = append(terms, t)
	}
	built := make(map[string]*fastintersect.List, len(terms))
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
	)
	for _, term := range terms {
		wg.Add(1)
		sem <- struct{}{}
		go func(term string) {
			defer wg.Done()
			defer func() { <-sem }()
			l, err := fastintersect.Preprocess(sets.SortDedup(ix.pending[term]), ix.opts...)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("invindex: term %q: %w", term, err)
				}
				return
			}
			built[term] = l
		}(term)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	ix.built = built
	ix.pending = nil
	return nil
}

// Terms returns the indexed terms, sorted.
func (ix *Index) Terms() []string {
	var m map[string][]uint32
	if ix.built == nil {
		m = ix.pending
	}
	var out []string
	if m != nil {
		for t := range m {
			out = append(out, t)
		}
	} else {
		for t := range ix.built {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Postings returns the preprocessed posting list of a term, or nil if the
// term is unknown or the index is not built.
func (ix *Index) Postings(term string) *fastintersect.List {
	if ix.built == nil {
		return nil
	}
	return ix.built[term]
}

// Docs returns the number of documents recorded via Add. Postings added
// with AddPosting are not counted.
func (ix *Index) Docs() int { return ix.docs }

// TermCount returns the number of distinct indexed terms.
func (ix *Index) TermCount() int {
	if ix.built != nil {
		return len(ix.built)
	}
	return len(ix.pending)
}

// DocFreq returns the document frequency of a term (0 if unknown).
func (ix *Index) DocFreq(term string) int {
	if l := ix.Postings(term); l != nil {
		return l.Len()
	}
	return 0
}

// ErrUnknownTerm is returned by Query for terms with no postings.
var ErrUnknownTerm = errors.New("invindex: unknown term")

// Query returns the sorted documents containing every term, using the Auto
// algorithm.
func (ix *Index) Query(terms ...string) ([]uint32, error) {
	return ix.QueryWith(fastintersect.Auto, terms...)
}

// QueryWith runs a conjunctive query with a specific algorithm. Results
// are sorted ascending.
func (ix *Index) QueryWith(algo fastintersect.Algorithm, terms ...string) ([]uint32, error) {
	if ix.built == nil {
		return nil, errors.New("invindex: Query before Build")
	}
	if len(terms) == 0 {
		return nil, errors.New("invindex: empty query")
	}
	lists := make([]*fastintersect.List, len(terms))
	for i, t := range terms {
		l := ix.built[t]
		if l == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTerm, t)
		}
		lists[i] = l
	}
	out, err := fastintersect.IntersectWith(algo, lists...)
	if err != nil {
		return nil, err
	}
	sets.SortU32(out)
	return out, nil
}
