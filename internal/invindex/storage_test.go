package invindex

import (
	"errors"
	"fmt"
	"testing"

	"fastintersect/internal/sets"
)

// buildCorpusPair builds the same synthetic corpus under raw and compressed
// storage: doc d carries term "m<k>" iff d%k == 0, so every query result is
// derivable from first principles and posting densities span the encoding
// heuristic's regimes.
func buildCorpusPair(t *testing.T, numDocs uint32) (raw, comp *Index) {
	t.Helper()
	raw = New()
	comp = NewWithStorage(StorageCompressed)
	for _, ix := range []*Index{raw, comp} {
		for d := uint32(0); d < numDocs; d++ {
			terms := []string{"all"}
			for k := uint32(2); k <= 13; k++ {
				if d%k == 0 {
					terms = append(terms, fmt.Sprintf("m%d", k))
				}
			}
			if d%97 == 0 {
				terms = append(terms, "rare")
			}
			if err := ix.Add(d, terms); err != nil {
				t.Fatal(err)
			}
		}
		if err := ix.BuildParallel(4); err != nil {
			t.Fatal(err)
		}
	}
	return raw, comp
}

func TestCompressedQueryParity(t *testing.T) {
	const numDocs = 6000
	raw, comp := buildCorpusPair(t, numDocs)
	queries := [][]string{
		{"all"},
		{"rare"},
		{"m2"},
		{"m2", "m3"},
		{"m2", "m3", "m5", "m7"},
		{"rare", "m13"},
		{"all", "m11"},
	}
	for _, q := range queries {
		want, err := raw.Query(q...)
		if err != nil {
			t.Fatalf("raw %v: %v", q, err)
		}
		got, err := comp.Query(q...)
		if err != nil {
			t.Fatalf("compressed %v: %v", q, err)
		}
		if !sets.Equal(got, want) {
			t.Fatalf("query %v: compressed %d docs, raw %d docs", q, len(got), len(want))
		}
	}
}

func TestCompressedIndexAccessors(t *testing.T) {
	raw, comp := buildCorpusPair(t, 3000)
	if comp.Storage() != StorageCompressed || raw.Storage() != StorageRaw {
		t.Fatal("Storage() wrong")
	}
	if got, want := comp.TermCount(), raw.TermCount(); got != want {
		t.Fatalf("TermCount = %d, want %d", got, want)
	}
	ct, rt := comp.Terms(), raw.Terms()
	if len(ct) != len(rt) {
		t.Fatalf("Terms mismatch: %v vs %v", ct, rt)
	}
	for i := range ct {
		if ct[i] != rt[i] {
			t.Fatalf("Terms mismatch at %d: %q vs %q", i, ct[i], rt[i])
		}
	}
	for _, term := range []string{"all", "m2", "m13", "rare", "nosuch"} {
		if got, want := comp.DocFreq(term), raw.DocFreq(term); got != want {
			t.Fatalf("DocFreq(%q) = %d, want %d", term, got, want)
		}
	}
	// Representation accessors are mode-specific.
	if comp.Postings("m2") != nil {
		t.Fatal("compressed index returned a raw posting list")
	}
	if raw.Stored("m2") != nil {
		t.Fatal("raw index returned a stored representation")
	}
	if comp.Stored("m2") == nil {
		t.Fatal("compressed index has no stored representation for m2")
	}
	if _, err := comp.Query("nosuch"); !errors.Is(err, ErrUnknownTerm) {
		t.Fatalf("unknown term error = %v", err)
	}
}

func TestMemStats(t *testing.T) {
	raw, comp := buildCorpusPair(t, 6000)
	rs, cs := raw.MemStats(), comp.MemStats()
	if rs.Postings == 0 || rs.Postings != cs.Postings {
		t.Fatalf("postings: raw %d, compressed %d", rs.Postings, cs.Postings)
	}
	if rs.StoredBytes != rs.RawBytes {
		t.Fatalf("raw storage stored %d B, raw footprint %d B", rs.StoredBytes, rs.RawBytes)
	}
	// The divisibility corpus is dense (gaps ≤ 13), so compression must
	// shrink it substantially.
	if cs.StoredBytes >= cs.RawBytes/2 {
		t.Fatalf("compressed storage %d B not well under half of raw %d B", cs.StoredBytes, cs.RawBytes)
	}
	if len(cs.Encodings) < 2 {
		t.Fatalf("expected multiple encodings in use, got %v", cs.Encodings)
	}
	var sum uint64
	for _, es := range cs.Encodings {
		sum += es.Bytes
	}
	if sum != cs.StoredBytes {
		t.Fatalf("per-encoding bytes sum %d != total %d", sum, cs.StoredBytes)
	}
	if _, ok := rs.Encodings["Raw"]; !ok || len(rs.Encodings) != 1 {
		t.Fatalf("raw index encodings = %v", rs.Encodings)
	}
}

func TestParseStorageRoundtrip(t *testing.T) {
	for _, st := range []Storage{StorageRaw, StorageCompressed} {
		got, err := ParseStorage(st.String())
		if err != nil || got != st {
			t.Fatalf("ParseStorage(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseStorage("mmap"); err == nil {
		t.Fatal("unknown storage mode accepted")
	}
	if Storage(9).String() != "Storage(?)" {
		t.Fatal("unknown stringer wrong")
	}
}
