package invindex_test

import (
	"fmt"

	"fastintersect/internal/invindex"
)

// ExampleNew builds a tiny inverted index and runs a conjunctive query:
// the documented entry point of the serving substrate.
func ExampleNew() {
	ix := invindex.New()
	_ = ix.Add(1, []string{"fast", "set"})
	_ = ix.Add(2, []string{"fast", "intersection"})
	_ = ix.Add(3, []string{"set", "intersection", "fast"})
	if err := ix.Build(); err != nil {
		panic(err)
	}
	docs, _ := ix.Query("fast", "intersection")
	fmt.Println(docs)
	// Output: [2 3]
}

// ExampleNewWithStorage builds the same index under compressed storage:
// each posting list is stored under the encoding ChooseEncoding picks from
// its density, and queries intersect directly over the compressed
// representations.
func ExampleNewWithStorage() {
	ix := invindex.NewWithStorage(invindex.StorageCompressed)
	for d := uint32(0); d < 1000; d++ {
		terms := []string{"all"}
		if d%2 == 0 {
			terms = append(terms, "even")
		}
		if d%3 == 0 {
			terms = append(terms, "triple")
		}
		_ = ix.Add(d, terms)
	}
	if err := ix.Build(); err != nil {
		panic(err)
	}
	docs, _ := ix.Query("even", "triple")
	ms := ix.MemStats()
	fmt.Println(len(docs), docs[:3], ms.StoredBytes < ms.RawBytes)
	// Output: 167 [0 6 12] true
}
