package compress

import (
	"fmt"

	"fastintersect/internal/sets"
)

// MergeList is a γ/δ gap-compressed posting list intersected by sequential
// decode-and-merge: the compressed counterpart of the Merge baseline
// (Merge_Gamma / Merge_Delta in Figure 8). Decompression cannot be skipped,
// which is exactly why the paper's RanGroupScan_Lowbits beats it.
type MergeList struct {
	words  []uint64
	coding Coding
	n      int
}

// NewMergeList compresses a sorted set.
func NewMergeList(set []uint32, coding Coding) (*MergeList, error) {
	if err := sets.Validate(set); err != nil {
		return nil, fmt.Errorf("compress: merge list: %w", err)
	}
	var w BitWriter
	writeGaps(&w, coding, set, 0)
	return &MergeList{words: w.Words(), coding: coding, n: len(set)}, nil
}

// Len returns the number of elements.
func (l *MergeList) Len() int { return l.n }

// SizeWords returns the compressed size in 64-bit words.
func (l *MergeList) SizeWords() int { return len(l.words) }

// SizeBytes returns the exact payload footprint in bytes.
func (l *MergeList) SizeBytes() int { return 8 * len(l.words) }

// Decode reconstructs the full posting list.
func (l *MergeList) Decode() []uint32 {
	out := make([]uint32, 0, l.n)
	d := newGapDecoder(l.words, 0, l.coding, 0, l.n)
	for {
		x, ok := d.next()
		if !ok {
			return out
		}
		out = append(out, x)
	}
}

// IntersectMerge intersects k ≥ 1 compressed lists by decoding all streams
// in lockstep with a parallel scan. The result is sorted.
func IntersectMerge(lists ...*MergeList) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0].Decode()
	}
	k := len(lists)
	decs := make([]gapDecoder, k)
	heads := make([]uint32, k)
	for i, l := range lists {
		decs[i] = newGapDecoder(l.words, 0, l.coding, 0, l.n)
		x, ok := decs[i].next()
		if !ok {
			return nil
		}
		heads[i] = x
	}
	var out []uint32
	for {
		// Candidate: the maximum of the heads; advance everyone to it.
		max := heads[0]
		for _, h := range heads[1:] {
			if h > max {
				max = h
			}
		}
		agreed := true
		for i := range heads {
			for heads[i] < max {
				x, ok := decs[i].next()
				if !ok {
					return out
				}
				heads[i] = x
			}
			if heads[i] != max {
				agreed = false
			}
		}
		if agreed {
			out = append(out, max)
			for i := range heads {
				x, ok := decs[i].next()
				if !ok {
					return out
				}
				heads[i] = x
			}
		}
	}
}
