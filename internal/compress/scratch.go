package compress

import (
	"sync"

	"fastintersect/internal/bitseg"
	"fastintersect/internal/bitword"
	"fastintersect/internal/plan"
)

// scratch is the pooled per-call workspace of the stored-list kernels:
// operand orderings and the decode/merge buffers that IntersectStored,
// IntersectLookup, IntersectRGS and the filter paths previously allocated
// fresh on every call. One scratch serves one call at a time; the package
// pool hands them out so concurrent queries each get their own.
type scratch struct {
	ord   []*Stored
	lls   []*LookupList // intersectLookupInto's cost-ordered "others"
	llsIn []*LookupList // IntersectStoredInto's assembled operand list
	bits  []*bitseg.List
	ops   []plan.Operand
	bufA  []uint32
	bufB  []uint32
	bufC  []uint32
}

// scratchBufCap sizes the decode buffers for the common shapes: a γ/δ
// bucket holds ≈ DefaultStoredBucket elements and an RGS group ≈ √w, so a
// few of either fit without growth.
const scratchBufCap = 4 * (bitword.SqrtW + DefaultStoredBucket)

var scratchPool = sync.Pool{New: func() any {
	return &scratch{
		bufA: make([]uint32, 0, scratchBufCap),
		bufB: make([]uint32, 0, scratchBufCap),
		bufC: make([]uint32, 0, scratchBufCap),
	}
}}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

// putScratch returns sc to the pool, dropping operand references so a
// pooled scratch never pins stored lists (or a swapped-out index
// generation) in memory.
func putScratch(sc *scratch) {
	clear(sc.ord)
	clear(sc.lls)
	clear(sc.llsIn)
	clear(sc.bits)
	scratchPool.Put(sc)
}
