package compress

import "math/bits"

// Coding selects a variable-length integer code for positive values.
type Coding int

const (
	// Gamma is Elias γ: unary length, then the value without its top bit.
	Gamma Coding = iota
	// Delta is Elias δ: γ-coded length, then the value without its top bit.
	Delta
)

// String names the coding.
func (c Coding) String() string {
	switch c {
	case Gamma:
		return "Gamma"
	case Delta:
		return "Delta"
	default:
		return "Coding(?)"
	}
}

// writeGamma appends γ(v), v ≥ 1.
func writeGamma(w *BitWriter, v uint64) {
	if v == 0 {
		panic("compress: gamma code of zero")
	}
	l := uint(bits.Len64(v))
	w.WriteUnary(l - 1)
	w.WriteBits(v, l-1) // low l-1 bits; the implicit top bit is dropped
}

// readGamma consumes γ⁻¹.
func readGamma(r *BitReader) uint64 {
	l := r.ReadUnary() + 1
	return r.ReadBits(l-1) | 1<<(l-1)
}

// writeDelta appends δ(v), v ≥ 1.
func writeDelta(w *BitWriter, v uint64) {
	if v == 0 {
		panic("compress: delta code of zero")
	}
	l := uint(bits.Len64(v))
	writeGamma(w, uint64(l))
	w.WriteBits(v, l-1)
}

// readDelta consumes δ⁻¹.
func readDelta(r *BitReader) uint64 {
	l := uint(readGamma(r))
	return r.ReadBits(l-1) | 1<<(l-1)
}

// writeCode appends v under the chosen coding.
func writeCode(w *BitWriter, c Coding, v uint64) {
	if c == Gamma {
		writeGamma(w, v)
	} else {
		writeDelta(w, v)
	}
}

// readCode consumes one value under the chosen coding.
func readCode(r *BitReader, c Coding) uint64 {
	if c == Gamma {
		return readGamma(r)
	}
	return readDelta(r)
}

// writeGaps appends the standard gap encoding of a strictly increasing
// sequence relative to base: first x0−base+1, then the successive
// differences (all ≥ 1).
func writeGaps(w *BitWriter, c Coding, set []uint32, base uint32) {
	prev := uint64(base)
	first := true
	for _, x := range set {
		gap := uint64(x) - prev
		if first {
			gap++
			first = false
		}
		writeCode(w, c, gap)
		prev = uint64(x)
	}
}

// gapDecoder streams a gap-encoded sequence back out.
type gapDecoder struct {
	r      BitReader
	c      Coding
	cur    uint64
	first  bool
	remain int
}

// newGapDecoder starts decoding count elements at bit offset pos.
func newGapDecoder(words []uint64, pos uint64, c Coding, base uint32, count int) gapDecoder {
	return gapDecoder{r: NewBitReader(words, pos), c: c, cur: uint64(base), first: true, remain: count}
}

// next returns the next element; ok is false when the sequence is done.
func (d *gapDecoder) next() (uint32, bool) {
	if d.remain == 0 {
		return 0, false
	}
	d.remain--
	gap := readCode(&d.r, d.c)
	if d.first {
		gap--
		d.first = false
	}
	d.cur += gap
	return uint32(d.cur), true
}

// pos returns the current bit offset of the underlying reader.
func (d *gapDecoder) pos() uint64 { return d.r.Pos() }
