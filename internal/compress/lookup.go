package compress

import (
	"fmt"

	"fastintersect/internal/baseline"
	"fastintersect/internal/sets"
)

// LookupList is the compressed Sanders–Transier structure (Lookup_Gamma /
// Lookup_Delta in Figure 8): an uncompressed bucket directory of 32-bit bit
// offsets over the γ/δ-coded posting stream, so any bucket of B consecutive
// IDs can be decoded independently (gaps are coded relative to the bucket
// base q·B, and a bucket's stream ends where the next bucket's begins).
type LookupList struct {
	words  []uint64
	dir    []uint32 // dir[q] = bit offset of bucket q's stream; len buckets+1
	coding Coding
	b      uint32
	n      int
}

// NewLookupListAuto compresses a sorted set with the bucket width chosen so
// buckets hold ≈ bucketSize elements on average (the paper's B = 32).
func NewLookupListAuto(set []uint32, coding Coding, bucketSize int) (*LookupList, error) {
	var maxID uint32
	if len(set) > 0 {
		maxID = set[len(set)-1]
	}
	return NewLookupList(set, coding, baseline.AutoBucketWidth(maxID, len(set), bucketSize))
}

// NewLookupList compresses a sorted set with the given bucket width (a
// power of two). The compressed stream must stay under 2³² bits, which
// holds for any realistic in-memory posting list.
func NewLookupList(set []uint32, coding Coding, bucketWidth uint32) (*LookupList, error) {
	if err := sets.Validate(set); err != nil {
		return nil, fmt.Errorf("compress: lookup list: %w", err)
	}
	if bucketWidth == 0 || bucketWidth&(bucketWidth-1) != 0 {
		return nil, fmt.Errorf("compress: bucket width %d not a power of two", bucketWidth)
	}
	var maxID uint32
	if len(set) > 0 {
		maxID = set[len(set)-1]
	}
	buckets := maxID/bucketWidth + 1
	l := &LookupList{
		dir:    make([]uint32, buckets+1),
		coding: coding,
		b:      bucketWidth,
		n:      len(set),
	}
	var w BitWriter
	i := 0
	for q := uint32(0); q < buckets; q++ {
		l.dir[q] = uint32(w.Len())
		j := i
		for j < len(set) && set[j]/bucketWidth == q {
			j++
		}
		writeGaps(&w, coding, set[i:j], q*bucketWidth)
		i = j
	}
	if w.Len() >= 1<<32 {
		return nil, fmt.Errorf("compress: stream of %d bits exceeds 32-bit directory", w.Len())
	}
	l.dir[buckets] = uint32(w.Len())
	l.words = w.Words()
	return l, nil
}

// Len returns the number of elements.
func (l *LookupList) Len() int { return l.n }

// SizeWords returns the compressed size in 64-bit words, directory included.
func (l *LookupList) SizeWords() int {
	return len(l.words) + (len(l.dir)+1)/2
}

// SizeBytes returns the exact payload footprint in bytes: the bit stream
// plus the 32-bit directory.
func (l *LookupList) SizeBytes() int {
	return 8*len(l.words) + 4*len(l.dir)
}

// decodeBucket appends bucket q's elements to dst.
func (l *LookupList) decodeBucket(q uint32, dst []uint32) []uint32 {
	if q >= uint32(len(l.dir))-1 {
		return dst
	}
	end := uint64(l.dir[q+1])
	r := NewBitReader(l.words, uint64(l.dir[q]))
	cur := uint64(q * l.b)
	first := true
	for r.Pos() < end {
		gap := readCode(&r, l.coding)
		if first {
			gap--
			first = false
		}
		cur += gap
		dst = append(dst, uint32(cur))
	}
	return dst
}

// Decode reconstructs the full posting list.
func (l *LookupList) Decode() []uint32 {
	return l.DecodeInto(make([]uint32, 0, l.n))
}

// DecodeInto appends the full posting list to dst. Beyond growing dst it
// performs no allocations.
func (l *LookupList) DecodeInto(dst []uint32) []uint32 {
	for q := uint32(0); q < uint32(len(l.dir))-1; q++ {
		dst = l.decodeBucket(q, dst)
	}
	return dst
}

// IntersectLookup intersects compressed Lookup structures: the smallest
// list is decoded bucket by bucket (sequential); for each non-empty bucket
// the matching buckets of the other lists are decoded through the directory
// and merged. The result is sorted.
func IntersectLookup(lists ...*LookupList) []uint32 {
	sc := getScratch()
	defer putScratch(sc)
	return intersectLookupInto(nil, sc, lists)
}

// intersectLookupInto is IntersectLookup appending into dst with bucket
// workspace drawn from sc.
func intersectLookupInto(dst []uint32, sc *scratch, lists []*LookupList) []uint32 {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return lists[0].DecodeInto(dst)
	}
	probe := lists[0]
	sc.lls = sc.lls[:0]
	for _, l := range lists[1:] {
		if l.Len() < probe.Len() {
			sc.lls = append(sc.lls, probe)
			probe = l
		} else {
			sc.lls = append(sc.lls, l)
		}
	}
	others := sc.lls
	out := dst
	bufP := sc.bufA[:0]
	bufO := sc.bufB[:0]
	bufT := sc.bufC[:0]
	for q := uint32(0); q < uint32(len(probe.dir))-1; q++ {
		if probe.dir[q] == probe.dir[q+1] {
			continue
		}
		cur := probe.decodeBucket(q, bufP[:0])
		bufP = cur // retain decode growth: cur may rotate into bufT below
		for _, o := range others {
			if len(cur) == 0 {
				break
			}
			// Decode the other list's buckets covering this bucket's ID
			// range (widths may differ between lists).
			lo, hi := cur[0], cur[len(cur)-1]
			ob := bufO[:0]
			for oq := lo / o.b; oq <= hi/o.b; oq++ {
				ob = o.decodeBucket(oq, ob)
			}
			merged := bufT[:0]
			i, j := 0, 0
			for i < len(cur) && j < len(ob) {
				switch {
				case cur[i] < ob[j]:
					i++
				case cur[i] > ob[j]:
					j++
				default:
					merged = append(merged, cur[i])
					i++
					j++
				}
			}
			bufO = ob[:0] // reclaim any growth for the next bucket
			bufT = merged
			cur, bufT = bufT, cur
		}
		out = append(out, cur...)
	}
	// Retain buffer growth for the next user of the scratch. bufO's chain is
	// independent of the others and always safe to keep, as is bufP (updated
	// after every probe decode). bufT may alias bufP's array (the cur/bufT
	// rotation starts from it); only keep it when it is provably a different
	// array — equal capacity means either the same array or no growth worth
	// keeping, so skipping loses nothing.
	sc.bufA = bufP
	sc.bufB = bufO
	if cap(bufT) != cap(bufP) {
		sc.bufC = bufT
	}
	return out
}
