package compress

import (
	"testing"

	"fastintersect/internal/race"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// TestDecodeIntoMatchesDecode checks the appending decode against the
// allocating one for every encoding and edge shape, including prefix
// preservation.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	fam := storedFam()
	prefix := []uint32{1 << 31, 7}
	for _, set := range edgeSets() {
		for _, enc := range Encodings() {
			s, err := NewStored(fam, set, enc)
			if err != nil {
				t.Fatalf("%v: %v", enc, err)
			}
			got := s.DecodeInto(nil)
			if !sets.Equal(got, set) {
				t.Fatalf("%v on %d elems: DecodeInto(nil) mismatch", enc, len(set))
			}
			got = s.DecodeInto(sets.Clone(prefix))
			if !sets.Equal(got[:2], prefix) || !sets.Equal(got[2:], set) {
				t.Fatalf("%v on %d elems: DecodeInto with prefix mismatch", enc, len(set))
			}
			if enc == EncRaw && len(set) > 0 {
				if &s.Decode()[0] == &got[2] {
					t.Fatalf("DecodeInto(EncRaw) must copy, not alias the stored slice")
				}
			}
		}
	}
}

// TestIntersectStoredIntoMatches checks the appending intersection against
// IntersectStored and the reference merge for every encoding pair and a
// 3-way mixed case.
func TestIntersectStoredIntoMatches(t *testing.T) {
	fam := storedFam()
	rng := xhash.NewRNG(0x17054)
	a, b := workload.PairWithIntersection(1<<22, 3000, 9000, 150, rng)
	c := workload.RandomSets(1<<22, []int{5000}, rng)[0]
	want2 := sets.IntersectReference(a, b)
	want3 := sets.IntersectReference(a, b, c)
	prefix := []uint32{5}
	for _, encA := range Encodings() {
		for _, encB := range Encodings() {
			sa, err := NewStored(fam, a, encA)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := NewStored(fam, b, encB)
			if err != nil {
				t.Fatal(err)
			}
			if got := IntersectStored(sa, sb); !sets.Equal(got, want2) {
				t.Fatalf("%v∩%v: IntersectStored mismatch", encA, encB)
			}
			got := IntersectStoredInto(sets.Clone(prefix), sa, sb)
			if !sets.Equal(got[:1], prefix) || !sets.Equal(got[1:], want2) {
				t.Fatalf("%v∩%v: IntersectStoredInto mismatch", encA, encB)
			}
			for _, encC := range Encodings() {
				sc, err := NewStored(fam, c, encC)
				if err != nil {
					t.Fatal(err)
				}
				if got := IntersectStoredInto(nil, sa, sb, sc); !sets.Equal(got, want3) {
					t.Fatalf("%v∩%v∩%v: 3-way IntersectStoredInto mismatch", encA, encB, encC)
				}
			}
		}
	}
}

// TestIntersectStoredAllocs pins the steady-state allocation budget of the
// stored-intersection paths: with a warm scratch pool and a caller-provided
// destination, every kernel shape runs without per-op allocations. This is
// the compressed serving path's half of the zero-allocation contract.
func TestIntersectStoredAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool drops Puts under -race; zero-allocation bounds cannot hold")
	}
	fam := storedFam()
	rng := xhash.NewRNG(0xA110C2)
	a, b := workload.PairWithIntersection(1<<22, 4000, 12000, 200, rng)
	pairs := []struct {
		name       string
		encA, encB Encoding
		max        float64
	}{
		{"lowbits-pair", EncLowbits, EncLowbits, 0},
		{"gamma-pair", EncGamma, EncGamma, 0},
		{"mixed-gamma-lowbits", EncGamma, EncLowbits, 0},
		{"raw-delta", EncRaw, EncDelta, 0},
		{"bitseg-pair", EncBitseg, EncBitseg, 0},
		{"mixed-bitseg-gamma", EncBitseg, EncGamma, 0},
	}
	for _, tc := range pairs {
		t.Run(tc.name, func(t *testing.T) {
			sa, err := NewStored(fam, a, tc.encA)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := NewStored(fam, b, tc.encB)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]uint32, 0, len(a))
			for i := 0; i < 3; i++ { // warm the scratch pool
				IntersectStoredInto(dst[:0], sa, sb)
			}
			n := testing.AllocsPerRun(100, func() {
				IntersectStoredInto(dst[:0], sa, sb)
			})
			if n > tc.max {
				t.Fatalf("IntersectStoredInto(%s) allocates %.2f times per op, want ≤ %v", tc.name, n, tc.max)
			}
		})
	}
}
