package compress

import (
	"fmt"
	"math/bits"
	"strings"

	"fastintersect/internal/baseline"
	"fastintersect/internal/bitseg"
	"fastintersect/internal/core"
)

// Encoding names a posting-list storage representation of the serving tier
// (internal/invindex, internal/engine). It extends Coding/RGSCoding — which
// select a code within one compressed structure — with the raw
// representation, so a whole index can mix representations per list.
type Encoding int

const (
	// EncRaw keeps the sorted []uint32 as-is: 32 bits per posting, zero
	// decode cost. The right choice for short lists and for lists so sparse
	// that gap codes would expand them.
	EncRaw Encoding = iota
	// EncGamma gap-codes the list with Elias γ behind a bucket directory
	// (the Lookup layout of §4.1), decoded bucket-by-bucket on the fly.
	// Smallest for dense lists, whose gaps are short.
	EncGamma
	// EncDelta is EncGamma with Elias δ: wins once average gaps exceed
	// roughly 32, i.e. on sparse lists.
	EncDelta
	// EncLowbits stores the list as a Lowbits-grouped RanGroupScan
	// structure (Appendix B): per element only the low w−t bits of g(x),
	// decoded by a single bit concatenation, plus one image word per group
	// so intersections skip non-matching groups without decoding.
	EncLowbits
	// EncBitseg stores the list density-partitioned (internal/bitseg):
	// 64-bit bitmap segments over dense docID ranges, sorted runs over
	// sparse ones. Dense lists shrink below raw AND intersect word-at-a-time
	// — 64 docIDs per AND instruction — without any decode.
	EncBitseg
)

// encodingNames in declaration order.
var encodingNames = [...]string{"Raw", "Gamma", "Delta", "Lowbits", "Bitseg"}

// String names the encoding.
func (e Encoding) String() string {
	if int(e) < len(encodingNames) {
		return encodingNames[e]
	}
	return "Encoding(?)"
}

// ParseEncoding parses an encoding name, case-insensitively, inverting
// Encoding.String.
func ParseEncoding(name string) (Encoding, error) {
	for i, n := range encodingNames {
		if strings.EqualFold(n, name) {
			return Encoding(i), nil
		}
	}
	return 0, fmt.Errorf("compress: unknown encoding %q (known: %s)",
		name, strings.Join(encodingNames[:], ", "))
}

// Encodings lists every storage encoding in declaration order.
func Encodings() []Encoding {
	return []Encoding{EncRaw, EncGamma, EncDelta, EncLowbits, EncBitseg}
}

// The encoding-selection heuristic. ChooseEncoding compares the exact γ/δ
// gap-coded sizes against the raw footprint and a Lowbits estimate, granting
// Lowbits a space allowance because its decode — a single bit concatenation —
// makes intersections 5.7–9.1× faster than decode-and-merge over gap codes
// in the paper's real-workload experiment (§4.1), at 1.3–1.9× the space.
const (
	// MinCompressLen is the shortest list worth compressing: below it the
	// directory and decode overheads exceed the few hundred bytes saved, so
	// the list stays raw.
	MinCompressLen = 64
	// LowbitsMinLen is the shortest list for which EncLowbits is
	// considered. Short lists are cheap to intersect under any
	// representation, so there is nothing to buy with the extra space.
	LowbitsMinLen = 4096
	// LowbitsSpaceFactor is the space multiple of the best gap code that
	// EncLowbits is allowed to cost. The paper pays 1.3–1.9× for its
	// fastest compressed variant; 2 keeps that trade available across
	// densities.
	LowbitsSpaceFactor = 2.0
	// BitsegSpaceFactor is the space multiple of the best gap code that
	// EncBitseg is allowed to cost, on the same rationale: the word-parallel
	// kernels are the fastest intersection in the repertoire, so dense lists
	// may pay up to 2× the gap-coded size for them (they still undercut
	// raw — that is a hard gate).
	BitsegSpaceFactor = 2.0
)

// GapCodeBits returns the exact bit counts of the standard gap encoding of
// a sorted set (writeGaps' layout: x0+1, then the successive differences)
// under Elias γ and δ.
func GapCodeBits(set []uint32) (gamma, delta uint64) {
	prev := uint64(0)
	for i, x := range set {
		gap := uint64(x) - prev
		if i == 0 {
			gap++
		}
		l := uint64(bits.Len64(gap)) // γ(gap) = 2l−1 bits
		ll := uint64(bits.Len64(l))  // δ(gap) = γ(l) + l−1 bits
		gamma += 2*l - 1
		delta += (2*ll - 1) + l - 1
		prev = uint64(x)
	}
	return gamma, delta
}

// LowbitsBitsEstimate estimates the bit-stream size of the Lowbits RGS
// structure for an n-element list (directory excluded, matching Appendix
// B's accounting): n low halves of g at 32−t bits each, the per-group unary
// counts, and StoredHashImages image words per group, assuming every group
// is occupied (at n ≥ 8·2^t they almost all are).
func LowbitsBitsEstimate(n int) uint64 {
	if n == 0 {
		return 0
	}
	t := core.TForSize(n)
	groups := uint64(1) << t
	return uint64(n)*uint64(32-t) + uint64(n) + groups + 64*StoredHashImages*groups
}

// lookupDirBits is the exact 32-bit-per-bucket directory cost a stored γ/δ
// list pays on top of its gap-coded stream (the buckets NewLookupListAuto
// will allocate for this set).
func lookupDirBits(set []uint32) uint64 {
	if len(set) == 0 {
		return 0
	}
	maxID := set[len(set)-1]
	width := baseline.AutoBucketWidth(maxID, len(set), DefaultStoredBucket)
	return 32 * (uint64(maxID/width) + 2)
}

// ChooseEncoding picks a storage representation from the list's length and
// density:
//
//  1. lists shorter than MinCompressLen stay raw;
//  2. otherwise the exact γ and δ sizes — gap-coded stream plus the bucket
//     directory they are stored behind — are computed from the gaps: γ
//     wins on dense lists (short gaps), δ on sparse ones;
//  3. lists of at least LowbitsMinLen take EncLowbits when its estimated
//     size beats raw and stays within LowbitsSpaceFactor of the best gap
//     code — buying the paper's fastest compressed intersections for the
//     lists that dominate query time. The estimate uses Appendix B's
//     stream-only accounting; the probe directory the stored structure
//     adds (~1 bit/element) can push the realized footprint of marginal
//     densities to roughly raw's, a documented cost of the speed trade;
//  4. if even the best gap code would not beat raw (pathologically sparse
//     lists), the list stays raw.
func ChooseEncoding(set []uint32) Encoding {
	n := len(set)
	if n < MinCompressLen {
		return EncRaw
	}
	rawBits := 32 * uint64(n)
	gamma, delta := GapCodeBits(set)
	dir := lookupDirBits(set)
	gamma += dir
	delta += dir
	best, enc := gamma, EncGamma
	if delta < best {
		best, enc = delta, EncDelta
	}
	// Dense lists take the bitmap tier when its exact size beats raw and
	// stays within BitsegSpaceFactor of the best gap code: the word kernels
	// are the fastest intersection available, and bitseg bits undercut raw
	// only when bitmap segments dominate (density ≳ 1/32 per chunk), so the
	// size gate doubles as the density gate.
	if bb := bitseg.EncodedBits(set); bb < rawBits && float64(bb) <= BitsegSpaceFactor*float64(best) {
		return EncBitseg
	}
	if n >= LowbitsMinLen {
		lb := LowbitsBitsEstimate(n)
		if lb < rawBits && float64(lb) <= LowbitsSpaceFactor*float64(best) {
			return EncLowbits
		}
	}
	if best >= rawBits {
		return EncRaw
	}
	return enc
}
