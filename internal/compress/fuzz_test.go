package compress

import (
	"encoding/binary"
	"testing"

	"fastintersect/internal/core"
	"fastintersect/internal/sets"
)

// FuzzCodesRoundtrip checks γ/δ roundtrips on arbitrary positive values.
func FuzzCodesRoundtrip(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		var vals []uint64
		for len(data) >= 8 {
			v := binary.LittleEndian.Uint64(data[:8])
			if v == 0 {
				v = 1
			}
			vals = append(vals, v)
			data = data[8:]
		}
		if len(vals) > 4096 {
			vals = vals[:4096]
		}
		var w BitWriter
		for _, v := range vals {
			writeGamma(&w, v)
			writeDelta(&w, v)
		}
		r := NewBitReader(w.Words(), 0)
		for _, want := range vals {
			if got := readGamma(&r); got != want {
				t.Fatalf("gamma: got %d, want %d", got, want)
			}
			if got := readDelta(&r); got != want {
				t.Fatalf("delta: got %d, want %d", got, want)
			}
		}
	})
}

// FuzzCompressedIntersection cross-checks every compressed variant against
// the reference on byte-derived sets.
func FuzzCompressedIntersection(f *testing.F) {
	f.Add([]byte{3, 1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 9, 0, 0, 0})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 1<<13 {
			return
		}
		split := int(data[0])
		rest := data[1:]
		var raw []uint32
		for len(rest) >= 4 {
			raw = append(raw, binary.LittleEndian.Uint32(rest[:4]))
			rest = rest[4:]
		}
		if split > len(raw) {
			split = len(raw)
		}
		a := sets.SortDedup(append([]uint32(nil), raw[:split]...))
		b := sets.SortDedup(append([]uint32(nil), raw[split:]...))
		want := sets.IntersectReference(a, b)
		fam := core.NewFamily(1, 2)

		for _, coding := range []Coding{Gamma, Delta} {
			ma, _ := NewMergeList(a, coding)
			mb, _ := NewMergeList(b, coding)
			if got := IntersectMerge(ma, mb); !sets.Equal(got, want) {
				t.Fatalf("Merge_%v: got %v, want %v", coding, got, want)
			}
			la, _ := NewLookupListAuto(a, coding, 32)
			lb, _ := NewLookupListAuto(b, coding, 32)
			if got := IntersectLookup(la, lb); !sets.Equal(got, want) {
				t.Fatalf("Lookup_%v: got %v, want %v", coding, got, want)
			}
		}
		for _, coding := range []RGSCoding{RGSGamma, RGSDelta, RGSLowbits} {
			ra, _ := NewRGSList(fam, a, 2, coding)
			rb, _ := NewRGSList(fam, b, 2, coding)
			got := IntersectRGS(ra, rb)
			sets.SortU32(got)
			if !sets.Equal(got, want) {
				t.Fatalf("RGS_%v: got %v, want %v", coding, got, want)
			}
		}
	})
}
