package compress

import (
	"fmt"

	"fastintersect/internal/bitseg"
	"fastintersect/internal/bitword"
	"fastintersect/internal/core"
	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

// StoredHashImages is the m used by EncLowbits stored lists: the paper's
// compressed experiments run RanGroupScan with a single image word per
// group (§4.1), and one word already filters the overwhelming majority of
// non-matching group pairs.
const StoredHashImages = 1

// Stored is one posting list held under a serving-tier Encoding: the
// pluggable representation behind invindex's compressed storage mode.
// A Stored is immutable after construction and safe for concurrent use.
//
// Each encoding keeps exactly one structure:
//
//	EncRaw      the sorted []uint32 itself (shared with the caller)
//	EncGamma/δ  a LookupList — gap-coded buckets behind a directory, so
//	            intersections decode only the buckets they visit
//	EncLowbits  an RGSList — the Appendix B grouped structure whose decode
//	            is a single bit concatenation
//	EncBitseg   a bitseg.List — density-partitioned bitmap segments and
//	            sorted runs, intersected word-at-a-time with no decode
type Stored struct {
	enc    Encoding
	n      int
	span   int
	raw    []uint32
	lookup *LookupList
	rgs    *RGSList
	bits   *bitseg.List
}

// NewStored stores a sorted set under the given encoding. EncLowbits needs
// fam (with at least StoredHashImages provisioned images); the other
// encodings ignore it. For EncRaw the set slice is retained, not copied.
func NewStored(fam *core.Family, set []uint32, enc Encoding) (*Stored, error) {
	s := &Stored{enc: enc, n: len(set)}
	var err error
	switch enc {
	case EncRaw:
		if err = sets.Validate(set); err == nil {
			s.raw = set
		}
	case EncGamma:
		s.lookup, err = NewLookupListAuto(set, Gamma, DefaultStoredBucket)
	case EncDelta:
		s.lookup, err = NewLookupListAuto(set, Delta, DefaultStoredBucket)
	case EncLowbits:
		s.rgs, err = NewRGSList(fam, set, StoredHashImages, RGSLowbits)
	case EncBitseg:
		s.bits, err = bitseg.FromSorted(set)
	default:
		err = fmt.Errorf("compress: unknown encoding %d", int(enc))
	}
	if err != nil {
		return nil, err
	}
	if len(set) > 0 {
		s.span = int(set[len(set)-1]) + 1
	}
	return s, nil
}

// DefaultStoredBucket is the average bucket population of the γ/δ lookup
// directories: the paper's B = 32.
const DefaultStoredBucket = 32

// NewStoredAdaptive stores a sorted set under the encoding ChooseEncoding
// picks from its length and density.
func NewStoredAdaptive(fam *core.Family, set []uint32) (*Stored, error) {
	return NewStored(fam, set, ChooseEncoding(set))
}

// Encoding returns the representation the list is stored under.
func (s *Stored) Encoding() Encoding { return s.enc }

// Len returns the number of postings.
func (s *Stored) Len() int { return s.n }

// Span returns one past the largest stored docID (0 for an empty list) —
// the extent the planner's bitmap-tier costing needs.
func (s *Stored) Span() int { return s.span }

// SizeBytes returns the exact payload footprint: element storage plus any
// directory, excluding only the fixed-size struct headers.
func (s *Stored) SizeBytes() int {
	switch s.enc {
	case EncRaw:
		return 4 * len(s.raw)
	case EncGamma, EncDelta:
		return s.lookup.SizeBytes()
	case EncLowbits:
		return s.rgs.SizeBytes()
	case EncBitseg:
		return s.bits.SizeBytes()
	}
	return 0
}

// Decode materializes the sorted posting list. For EncRaw the returned
// slice is the stored one — treat it as read-only; the compressed encodings
// return a fresh slice.
func (s *Stored) Decode() []uint32 {
	if s.enc == EncRaw {
		return s.raw
	}
	return s.DecodeInto(make([]uint32, 0, s.n))
}

// DecodeInto appends the sorted posting list to dst. Unlike Decode it
// always copies, so the result never aliases stored memory — the form the
// engine's pooled execution contexts rely on. Beyond growing dst (and the
// one-time warm-up of the package's scratch pool) it does not allocate.
func (s *Stored) DecodeInto(dst []uint32) []uint32 {
	switch s.enc {
	case EncRaw:
		return append(dst, s.raw...)
	case EncGamma, EncDelta:
		return s.lookup.DecodeInto(dst)
	case EncLowbits:
		return s.rgs.DecodeDocsInto(dst)
	case EncBitseg:
		return s.bits.DecodeInto(dst)
	}
	return dst
}

// Shape maps the list's encoding onto the planner's operand vocabulary.
func (s *Stored) Shape() plan.Shape {
	switch s.enc {
	case EncGamma:
		return plan.ShapeGamma
	case EncDelta:
		return plan.ShapeDelta
	case EncLowbits:
		return plan.ShapeLowbits
	case EncBitseg:
		return plan.ShapeBitseg
	default:
		return plan.ShapeRawStored
	}
}

// IntersectStored intersects k ≥ 1 stored lists directly over their
// representations, returning ascending document IDs. Operands are
// cost-ordered by length and the kernel is chosen by the planner's
// calibrated cost model (plan.ChooseStored) over the shapes at hand:
// Algorithm 5 over a Lowbits pair, bucket-directory probes for γ/δ,
// decode-and-filter chains or full decode-and-merge for mixed shapes (see
// the Kernel docs in internal/plan).
//
// The result may share memory with an EncRaw operand when only one list was
// given; callers must treat it as read-only. IntersectStoredInto never
// shares.
func IntersectStored(ss ...*Stored) []uint32 {
	if len(ss) == 1 {
		return ss[0].Decode()
	}
	return IntersectStoredInto(nil, ss...)
}

// IntersectStoredInto is IntersectStored appending into dst. All per-call
// workspace comes from the package's scratch pool, so steady-state calls
// allocate only when the result outgrows dst. The result never aliases
// stored memory.
func IntersectStoredInto(dst []uint32, ss ...*Stored) []uint32 {
	switch len(ss) {
	case 0:
		return dst
	case 1:
		return ss[0].DecodeInto(dst)
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.ord = append(sc.ord[:0], ss...)
	ord := sc.ord
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && ord[j].n < ord[j-1].n; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	sc.ops = sc.ops[:0]
	for _, s := range ord {
		sc.ops = append(sc.ops, plan.Operand{Len: s.n, Shape: s.Shape(), Span: s.span})
	}
	strat := plan.ChooseStored(plan.Calibrated(), plan.KernelsCost, sc.ops)
	return execStored(dst, sc, strat, ord)
}

// IntersectStoredStrategy executes a planner-chosen strategy over operands
// in the caller's order (ss[0] is the probe side — callers pass their
// plan's cost order). A strategy the operand shapes cannot satisfy (e.g.
// KernelRGSPair without two Lowbits lists) falls back to the filter chain,
// so a plan built from aggregate statistics stays executable on a shard
// whose local encodings differ.
func IntersectStoredStrategy(dst []uint32, strat plan.Kernel, ss ...*Stored) []uint32 {
	switch len(ss) {
	case 0:
		return dst
	case 1:
		return ss[0].DecodeInto(dst)
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.ord = append(sc.ord[:0], ss...)
	return execStored(dst, sc, strat, sc.ord)
}

// execStored runs one stored-intersection strategy over ord (ord[0] is the
// probe side). It validates applicability and downgrades to the filter
// chain — always executable — when the shapes do not support the request.
func execStored(dst []uint32, sc *scratch, strat plan.Kernel, ord []*Stored) []uint32 {
	if ord[0].n == 0 {
		return dst
	}
	switch strat {
	case plan.KernelBitsegAnd:
		ok := true
		for _, s := range ord {
			if s.enc != EncBitseg {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		sc.bits = sc.bits[:0]
		for _, s := range ord {
			sc.bits = append(sc.bits, s.bits)
		}
		return bitseg.IntersectKInto(dst, sc.bits...)
	case plan.KernelRGSPair:
		if len(ord) != 2 || ord[0].enc != EncLowbits || ord[1].enc != EncLowbits {
			break
		}
		start := len(dst)
		dst = intersectRGSInto(dst, sc, ord[0].rgs, ord[1].rgs)
		sets.SortU32(dst[start:])
		return dst
	case plan.KernelLookupProbe:
		ok := true
		for _, s := range ord {
			if s.enc != EncGamma && s.enc != EncDelta {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		sc.llsIn = sc.llsIn[:0]
		for _, s := range ord {
			sc.llsIn = append(sc.llsIn, s.lookup)
		}
		return intersectLookupInto(dst, sc, sc.llsIn)
	case plan.KernelDecodeAll:
		// Materialize every operand and intersect with linear merges —
		// cheapest when probing the encoded forms costs more than decoding
		// them outright.
		cur := ord[0].DecodeInto(sc.bufC[:0])
		spare := sc.bufB
		for _, s := range ord[1:] {
			if len(cur) == 0 {
				break
			}
			dec := s.DecodeInto(sc.bufA[:0])
			sc.bufA = dec[:0]
			out := sets.IntersectInto(spare[:0], cur, dec)
			cur, spare = out, cur
		}
		sc.bufB, sc.bufC = cur, spare
		return append(dst, cur...)
	}
	// Filter chain (and the fallback for inapplicable strategies): decode
	// the probe side once, then filter it through each remaining operand,
	// ping-ponging between two scratch buffers (bufA stays free as the
	// per-probe bucket/group buffer).
	cur := ord[0].DecodeInto(sc.bufC[:0])
	spare := sc.bufB
	for _, s := range ord[1:] {
		if len(cur) == 0 {
			break
		}
		out := s.filterSortedInto(cur, spare[:0], sc)
		cur, spare = out, cur
	}
	sc.bufB, sc.bufC = cur, spare // retain growth; the two chains stay disjoint
	return append(dst, cur...)
}

// filterSortedInto appends the members of probe (ascending document IDs)
// that s contains to out, using sc.bufA as bucket/group decode space.
// probe is never modified.
func (s *Stored) filterSortedInto(probe, out []uint32, sc *scratch) []uint32 {
	switch s.enc {
	case EncRaw:
		return sets.IntersectInto(out, probe, s.raw)
	case EncGamma, EncDelta:
		return s.lookup.filterSorted(probe, out, &sc.bufA)
	case EncLowbits:
		return s.rgs.filterDocs(probe, out, &sc.bufA)
	case EncBitseg:
		return s.bits.FilterInto(probe, out)
	}
	return out
}

// filterSorted appends the members of probe (ascending) present in l to
// out. Consecutive probes share a bucket decode: ascending probes visit
// buckets in order, so each occupied bucket is decoded at most once.
// bucketBuf provides (and retains) the bucket decode buffer.
func (l *LookupList) filterSorted(probe, out []uint32, bucketBuf *[]uint32) []uint32 {
	buckets := uint32(len(l.dir)) - 1
	curQ := ^uint32(0)
	bucket := (*bucketBuf)[:0]
	i := 0
	for _, x := range probe {
		q := x / l.b
		if q >= buckets {
			break
		}
		if q != curQ {
			curQ = q
			bucket = l.decodeBucket(q, bucket[:0])
			i = 0
		}
		for i < len(bucket) && bucket[i] < x {
			i++
		}
		if i < len(bucket) && bucket[i] == x {
			out = append(out, x)
		}
	}
	*bucketBuf = bucket
	return out
}

// filterDocs appends the members of probe (ascending document IDs) present
// in l to out. Each probe hashes to its group, the group's image words are
// checked first (the Algorithm 5 filter, rejecting most absent candidates
// from the header alone), and only survivors pay an element decode.
// groupBuf provides (and retains) the group decode buffer.
func (l *RGSList) filterDocs(probe, out []uint32, groupBuf *[]uint32) []uint32 {
	var imgs [core.MaxImageCount]bitword.Word
	buf := (*groupBuf)[:0]
	lowWidth := uint(32) - l.t
	for _, x := range probe {
		g := l.fam.Perm.Apply(x)
		z := int(g >> lowWidth)
		cnt, pos := l.groupHeader(z, imgs[:l.m])
		if cnt == 0 {
			continue
		}
		alive := true
		for j := 0; j < l.m; j++ {
			if !imgs[j].Contains(uint(l.fam.Images[j].Hash(x))) {
				alive = false
				break
			}
		}
		if !alive {
			continue
		}
		target := x
		if l.coding == RGSLowbits {
			target = g // Lowbits groups hold g-values, not document IDs
		}
		buf = l.groupElems(z, cnt, pos, buf)
		for _, v := range buf {
			if v == target {
				out = append(out, x)
				break
			}
		}
	}
	*groupBuf = buf
	return out
}

// DecodeDocs reconstructs the sorted document IDs of the whole structure
// (Lowbits groups hold g-values, which are mapped back through g⁻¹).
func (l *RGSList) DecodeDocs() []uint32 {
	return l.DecodeDocsInto(make([]uint32, 0, l.n))
}

// DecodeDocsInto appends the sorted document IDs of the whole structure to
// dst, drawing group-decode space from the package's scratch pool.
func (l *RGSList) DecodeDocsInto(dst []uint32) []uint32 {
	sc := getScratch()
	defer putScratch(sc)
	start := len(dst)
	var imgs [core.MaxImageCount]bitword.Word
	buf := sc.bufA[:0]
	groups := 1 << l.t
	for z := 0; z < groups; z++ {
		buf = l.group(z, imgs[:l.m], buf)
		if l.coding == RGSLowbits {
			for _, g := range buf {
				dst = append(dst, l.fam.Perm.Invert(g))
			}
		} else {
			dst = append(dst, buf...)
		}
	}
	sc.bufA = buf
	sets.SortU32(dst[start:])
	return dst
}
