// Package compress implements the compressed posting structures of §4.1 and
// Appendix B: Elias γ- and δ-coded gap lists (the standard IR codes of [23]
// p.116) for Merge, Lookup and RanGroupScan, plus the paper's own Lowbits
// scheme — store only the low w−t bits of g(x) per element, since the high
// t bits are the group identifier — whose decoding is a single concatenation
// (Appendix B).
//
// Beyond reproducing the paper's Figure 8 variants, the package is the
// storage tier of the serving path: Stored holds one posting list under one
// Encoding (raw, γ, δ, or Lowbits), ChooseEncoding picks the encoding per
// list from its length and density (exact γ/δ bit counts from the gaps,
// with a bounded space allowance that buys Lowbits' concatenation decode
// for long lists), and IntersectStored intersects directly over the stored
// representations without materializing raw slices. internal/invindex and
// internal/engine build on these under StorageCompressed.
//
// Bit streams are LSB-first within 64-bit words, so unary runs are scanned
// with a single TrailingZeros instruction.
package compress

import "math/bits"

// BitWriter appends bit fields to a []uint64 stream, LSB-first.
type BitWriter struct {
	words []uint64
	nbits uint64
}

// WriteBits appends the low n bits of v (n ≤ 64).
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	off := w.nbits & 63
	idx := int(w.nbits >> 6)
	for idx+2 > len(w.words) {
		w.words = append(w.words, 0)
	}
	w.words[idx] |= v << off
	if off+uint64(n) > 64 {
		w.words[idx+1] |= v >> (64 - off)
	}
	w.nbits += uint64(n)
}

// WriteUnary appends n zero bits followed by a one bit: the unary code of n.
func (w *BitWriter) WriteUnary(n uint) {
	for n >= 63 {
		w.WriteBits(0, 63)
		n -= 63
	}
	w.WriteBits(1<<n, n+1)
}

// Len returns the number of bits written.
func (w *BitWriter) Len() uint64 { return w.nbits }

// Words returns the underlying stream, trimmed to the written length.
func (w *BitWriter) Words() []uint64 {
	need := int((w.nbits + 63) / 64)
	if need == 0 {
		return nil
	}
	return w.words[:need]
}

// BitReader reads bit fields from a stream produced by BitWriter.
type BitReader struct {
	words []uint64
	pos   uint64
}

// NewBitReader positions a reader at bit offset pos.
func NewBitReader(words []uint64, pos uint64) BitReader {
	return BitReader{words: words, pos: pos}
}

// Pos returns the current bit offset.
func (r *BitReader) Pos() uint64 { return r.pos }

// Seek repositions the reader.
func (r *BitReader) Seek(pos uint64) { r.pos = pos }

// Skip advances by n bits without decoding.
func (r *BitReader) Skip(n uint64) { r.pos += n }

// ReadBits consumes and returns the next n bits (n ≤ 64).
func (r *BitReader) ReadBits(n uint) uint64 {
	if n == 0 {
		return 0
	}
	off := r.pos & 63
	idx := r.pos >> 6
	v := r.words[idx] >> off
	if off+uint64(n) > 64 && int(idx+1) < len(r.words) {
		v |= r.words[idx+1] << (64 - off)
	}
	r.pos += uint64(n)
	if n < 64 {
		v &= (1 << n) - 1
	}
	return v
}

// ReadUnary consumes a unary code and returns its value (the zero-run
// length).
func (r *BitReader) ReadUnary() uint {
	n := uint(0)
	for {
		off := r.pos & 63
		idx := r.pos >> 6
		rest := r.words[idx] >> off
		if rest != 0 {
			tz := uint(bits.TrailingZeros64(rest))
			r.pos += uint64(tz) + 1
			return n + tz
		}
		n += 64 - uint(off)
		r.pos += 64 - off
	}
}
