package compress

import (
	"testing"
	"testing/quick"

	"fastintersect/internal/core"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func storedFam() *core.Family { return core.NewFamily(0x5708ED, StoredHashImages) }

// edgeSets are the shapes most likely to break an encoder: empty,
// singletons at the extremes, dense runs starting at zero, a dense run with
// a far outlier, and adjacent values around word boundaries.
func edgeSets() [][]uint32 {
	denseRun := make([]uint32, 500)
	for i := range denseRun {
		denseRun[i] = uint32(i)
	}
	offsetRun := make([]uint32, 300)
	for i := range offsetRun {
		offsetRun[i] = 1<<30 + uint32(i)
	}
	return [][]uint32{
		nil,
		{0},
		{42},
		{1<<32 - 1},
		{0, 1<<32 - 1},
		{0, 1, 2, 3},
		denseRun,
		append(append([]uint32(nil), denseRun...), 1<<31),
		offsetRun,
	}
}

func TestStoredRoundtripEdges(t *testing.T) {
	fam := storedFam()
	for _, set := range edgeSets() {
		for _, enc := range Encodings() {
			s, err := NewStored(fam, set, enc)
			if err != nil {
				t.Fatalf("%v on %d elems: %v", enc, len(set), err)
			}
			if s.Len() != len(set) {
				t.Fatalf("%v: Len = %d, want %d", enc, s.Len(), len(set))
			}
			if got := s.Decode(); !sets.Equal(got, set) {
				t.Fatalf("%v on %d elems: decode mismatch (got %d elems)", enc, len(set), len(got))
			}
		}
	}
}

func TestStoredRoundtripProperty(t *testing.T) {
	fam := storedFam()
	f := func(raw []uint32) bool {
		set := sets.SortDedup(append([]uint32(nil), raw...))
		for _, enc := range Encodings() {
			s, err := NewStored(fam, set, enc)
			if err != nil {
				return false
			}
			if !sets.Equal(s.Decode(), set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Stored-intersection parity coverage (every encoding uniformly, mixed
// encodings, the adaptive chooser and every forced strategy — including the
// shape-mismatch downgrade paths — vs the scalar reference) lives in the
// shared cross-kernel harness: internal/kerneltest.TestStoredKernelParity.
// This file keeps only the representation contracts local to the package:
// round-trips, size accounting, the encoding chooser's regimes, and the
// degenerate-input behavior of IntersectStored.

func TestIntersectStoredDegenerate(t *testing.T) {
	fam := storedFam()
	if got := IntersectStored(); got != nil {
		t.Fatalf("no lists: %v", got)
	}
	one, _ := NewStored(fam, []uint32{3, 7, 11}, EncGamma)
	if got := IntersectStored(one); !sets.Equal(got, []uint32{3, 7, 11}) {
		t.Fatalf("single list: %v", got)
	}
	empty, _ := NewStored(fam, nil, EncLowbits)
	if got := IntersectStored(one, empty); len(got) != 0 {
		t.Fatalf("∩ empty: %v", got)
	}
	single, _ := NewStored(fam, []uint32{7}, EncRaw)
	if got := IntersectStored(one, single); !sets.Equal(got, []uint32{7}) {
		t.Fatalf("∩ singleton: %v", got)
	}
}

func TestChooseEncodingRegimes(t *testing.T) {
	rng := xhash.NewRNG(0xD44)
	cases := []struct {
		name     string
		n        int
		universe uint32
		want     Encoding
	}{
		{"tiny", 32, 1 << 16, EncRaw},
		{"small-dense", 2048, 1 << 13, EncBitseg},
		{"small-sparse", 2048, 1 << 26, EncDelta},
		{"mid-dense", 2048, 40 * 1024, EncGamma},
		{"large-dense", 1 << 16, 1 << 18, EncBitseg},
		{"large-mid", 1 << 16, 1 << 26, EncLowbits},
	}
	for _, c := range cases {
		set := workload.RandomSets(c.universe, []int{c.n}, rng)[0]
		if got := ChooseEncoding(set); got != c.want {
			t.Errorf("%s (n=%d, u=%d): chose %v, want %v", c.name, c.n, c.universe, got, c.want)
		}
	}
}

func TestGapCodeBitsMatchesWriter(t *testing.T) {
	rng := xhash.NewRNG(0xE55)
	for _, n := range []int{0, 1, 100, 5000} {
		set := workload.RandomSets(1<<24, []int{n}, rng)[0]
		if n == 0 {
			set = nil
		}
		gamma, delta := GapCodeBits(set)
		var wg, wd BitWriter
		writeGaps(&wg, Gamma, set, 0)
		writeGaps(&wd, Delta, set, 0)
		if gamma != wg.Len() || delta != wd.Len() {
			t.Fatalf("n=%d: GapCodeBits = (%d, %d), writer wrote (%d, %d)",
				n, gamma, delta, wg.Len(), wd.Len())
		}
	}
}

func TestStoredSizeBytes(t *testing.T) {
	fam := storedFam()
	rng := xhash.NewRNG(0xF66)
	set := workload.RandomSets(1<<15, []int{8192}, rng)[0] // dense: gaps ≈ 4
	raw, _ := NewStored(fam, set, EncRaw)
	if raw.SizeBytes() != 4*len(set) {
		t.Fatalf("raw SizeBytes = %d, want %d", raw.SizeBytes(), 4*len(set))
	}
	for _, enc := range []Encoding{EncGamma, EncDelta} {
		s, _ := NewStored(fam, set, enc)
		if s.SizeBytes() >= raw.SizeBytes() {
			t.Fatalf("%v (%d B) not smaller than raw (%d B) on a dense list",
				enc, s.SizeBytes(), raw.SizeBytes())
		}
	}
}

func TestParseEncodingRoundtrip(t *testing.T) {
	for _, enc := range Encodings() {
		got, err := ParseEncoding(enc.String())
		if err != nil || got != enc {
			t.Fatalf("ParseEncoding(%q) = %v, %v", enc.String(), got, err)
		}
	}
	if _, err := ParseEncoding("zstd"); err == nil {
		t.Fatal("unknown encoding accepted")
	}
	if Encoding(99).String() != "Encoding(?)" {
		t.Fatal("unknown stringer wrong")
	}
}
