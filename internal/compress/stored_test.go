package compress

import (
	"testing"
	"testing/quick"

	"fastintersect/internal/core"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func storedFam() *core.Family { return core.NewFamily(0x5708ED, StoredHashImages) }

// edgeSets are the shapes most likely to break an encoder: empty,
// singletons at the extremes, dense runs starting at zero, a dense run with
// a far outlier, and adjacent values around word boundaries.
func edgeSets() [][]uint32 {
	denseRun := make([]uint32, 500)
	for i := range denseRun {
		denseRun[i] = uint32(i)
	}
	offsetRun := make([]uint32, 300)
	for i := range offsetRun {
		offsetRun[i] = 1<<30 + uint32(i)
	}
	return [][]uint32{
		nil,
		{0},
		{42},
		{1<<32 - 1},
		{0, 1<<32 - 1},
		{0, 1, 2, 3},
		denseRun,
		append(append([]uint32(nil), denseRun...), 1<<31),
		offsetRun,
	}
}

func TestStoredRoundtripEdges(t *testing.T) {
	fam := storedFam()
	for _, set := range edgeSets() {
		for _, enc := range Encodings() {
			s, err := NewStored(fam, set, enc)
			if err != nil {
				t.Fatalf("%v on %d elems: %v", enc, len(set), err)
			}
			if s.Len() != len(set) {
				t.Fatalf("%v: Len = %d, want %d", enc, s.Len(), len(set))
			}
			if got := s.Decode(); !sets.Equal(got, set) {
				t.Fatalf("%v on %d elems: decode mismatch (got %d elems)", enc, len(set), len(got))
			}
		}
	}
}

func TestStoredRoundtripProperty(t *testing.T) {
	fam := storedFam()
	f := func(raw []uint32) bool {
		set := sets.SortDedup(append([]uint32(nil), raw...))
		for _, enc := range Encodings() {
			s, err := NewStored(fam, set, enc)
			if err != nil {
				return false
			}
			if !sets.Equal(s.Decode(), set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectStoredAllEncodingPairs(t *testing.T) {
	fam := storedFam()
	rng := xhash.NewRNG(0xA11)
	for trial := 0; trial < 8; trial++ {
		n1 := 200 + rng.Intn(2000)
		n2 := 200 + rng.Intn(5000)
		maxR := n1
		if n2 < maxR {
			maxR = n2
		}
		a, b := workload.PairWithIntersection(1<<22, n1, n2, rng.Intn(maxR), rng)
		want := sets.IntersectReference(a, b)
		for _, ea := range Encodings() {
			sa, err := NewStored(fam, a, ea)
			if err != nil {
				t.Fatal(err)
			}
			for _, eb := range Encodings() {
				sb, err := NewStored(fam, b, eb)
				if err != nil {
					t.Fatal(err)
				}
				if got := IntersectStored(sa, sb); !sets.Equal(got, want) {
					t.Fatalf("trial %d %v∩%v: got %d, want %d", trial, ea, eb, len(got), len(want))
				}
				// Operand order must not matter.
				if got := IntersectStored(sb, sa); !sets.Equal(got, want) {
					t.Fatalf("trial %d %v∩%v swapped: got %d, want %d", trial, eb, ea, len(got), len(want))
				}
			}
		}
	}
}

func TestIntersectStoredKWayMixed(t *testing.T) {
	fam := storedFam()
	rng := xhash.NewRNG(0xB22)
	for trial := 0; trial < 6; trial++ {
		lists := workload.KWithIntersection(1<<20, []int{400, 900, 1500, 2500}, 50+rng.Intn(200), rng)
		want := sets.IntersectReference(lists...)
		encs := Encodings()
		ss := make([]*Stored, len(lists))
		for i, l := range lists {
			var err error
			ss[i], err = NewStored(fam, l, encs[(trial+i)%len(encs)])
			if err != nil {
				t.Fatal(err)
			}
		}
		if got := IntersectStored(ss...); !sets.Equal(got, want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestIntersectStoredAdaptiveMatchesReference(t *testing.T) {
	fam := storedFam()
	rng := xhash.NewRNG(0xC33)
	// Spans the heuristic's regimes so adaptive intersections cross
	// encodings (raw tiny ∩ lowbits large, γ dense ∩ δ sparse, ...).
	shapes := []struct {
		n1, n2   int
		universe uint32
	}{
		{16, 5000, 1 << 24},
		{2048, 2048, 1 << 13},
		{2048, 8192, 1 << 26},
		{300, 70000, 1 << 26},
		{70000, 70000, 1 << 26},
	}
	for _, sh := range shapes {
		r := sh.n1 / 10
		if r < 1 {
			r = 1
		}
		a, b := workload.PairWithIntersection(sh.universe, sh.n1, sh.n2, r, rng)
		want := sets.IntersectReference(a, b)
		sa, err := NewStoredAdaptive(fam, a)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewStoredAdaptive(fam, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := IntersectStored(sa, sb); !sets.Equal(got, want) {
			t.Fatalf("n1=%d n2=%d u=%d (%v∩%v): got %d, want %d",
				sh.n1, sh.n2, sh.universe, sa.Encoding(), sb.Encoding(), len(got), len(want))
		}
	}
}

func TestIntersectStoredDegenerate(t *testing.T) {
	fam := storedFam()
	if got := IntersectStored(); got != nil {
		t.Fatalf("no lists: %v", got)
	}
	one, _ := NewStored(fam, []uint32{3, 7, 11}, EncGamma)
	if got := IntersectStored(one); !sets.Equal(got, []uint32{3, 7, 11}) {
		t.Fatalf("single list: %v", got)
	}
	empty, _ := NewStored(fam, nil, EncLowbits)
	if got := IntersectStored(one, empty); len(got) != 0 {
		t.Fatalf("∩ empty: %v", got)
	}
	single, _ := NewStored(fam, []uint32{7}, EncRaw)
	if got := IntersectStored(one, single); !sets.Equal(got, []uint32{7}) {
		t.Fatalf("∩ singleton: %v", got)
	}
}

func TestChooseEncodingRegimes(t *testing.T) {
	rng := xhash.NewRNG(0xD44)
	cases := []struct {
		name     string
		n        int
		universe uint32
		want     Encoding
	}{
		{"tiny", 32, 1 << 16, EncRaw},
		{"small-dense", 2048, 1 << 13, EncGamma},
		{"small-sparse", 2048, 1 << 26, EncDelta},
		{"large-dense", 1 << 16, 1 << 18, EncGamma},
		{"large-mid", 1 << 16, 1 << 26, EncLowbits},
	}
	for _, c := range cases {
		set := workload.RandomSets(c.universe, []int{c.n}, rng)[0]
		if got := ChooseEncoding(set); got != c.want {
			t.Errorf("%s (n=%d, u=%d): chose %v, want %v", c.name, c.n, c.universe, got, c.want)
		}
	}
}

func TestGapCodeBitsMatchesWriter(t *testing.T) {
	rng := xhash.NewRNG(0xE55)
	for _, n := range []int{0, 1, 100, 5000} {
		set := workload.RandomSets(1<<24, []int{n}, rng)[0]
		if n == 0 {
			set = nil
		}
		gamma, delta := GapCodeBits(set)
		var wg, wd BitWriter
		writeGaps(&wg, Gamma, set, 0)
		writeGaps(&wd, Delta, set, 0)
		if gamma != wg.Len() || delta != wd.Len() {
			t.Fatalf("n=%d: GapCodeBits = (%d, %d), writer wrote (%d, %d)",
				n, gamma, delta, wg.Len(), wd.Len())
		}
	}
}

func TestStoredSizeBytes(t *testing.T) {
	fam := storedFam()
	rng := xhash.NewRNG(0xF66)
	set := workload.RandomSets(1<<15, []int{8192}, rng)[0] // dense: gaps ≈ 4
	raw, _ := NewStored(fam, set, EncRaw)
	if raw.SizeBytes() != 4*len(set) {
		t.Fatalf("raw SizeBytes = %d, want %d", raw.SizeBytes(), 4*len(set))
	}
	for _, enc := range []Encoding{EncGamma, EncDelta} {
		s, _ := NewStored(fam, set, enc)
		if s.SizeBytes() >= raw.SizeBytes() {
			t.Fatalf("%v (%d B) not smaller than raw (%d B) on a dense list",
				enc, s.SizeBytes(), raw.SizeBytes())
		}
	}
}

func TestParseEncodingRoundtrip(t *testing.T) {
	for _, enc := range Encodings() {
		got, err := ParseEncoding(enc.String())
		if err != nil || got != enc {
			t.Fatalf("ParseEncoding(%q) = %v, %v", enc.String(), got, err)
		}
	}
	if _, err := ParseEncoding("zstd"); err == nil {
		t.Fatal("unknown encoding accepted")
	}
	if Encoding(99).String() != "Encoding(?)" {
		t.Fatal("unknown stringer wrong")
	}
}
