package compress

import (
	"testing"

	"fastintersect/internal/core"
)

func TestReproIntersectStoredNil(t *testing.T) {
	fam := core.NewFamily(1, StoredHashImages)
	var as, bs []uint32
	for i := uint32(0); i < 20000; i++ {
		if i%2 == 0 {
			as = append(as, i)
		} else {
			bs = append(bs, i)
		}
	}
	sa, err := NewStoredAdaptive(fam, as)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStoredAdaptive(fam, bs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("enc a=%v b=%v", sa.Encoding(), sb.Encoding())
	out := IntersectStored(sa, sb)
	t.Logf("out=%v nil=%v len=%d", out, out == nil, len(out))
}
