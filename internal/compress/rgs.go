package compress

import (
	"fmt"

	"fastintersect/internal/bitword"
	"fastintersect/internal/core"
	"fastintersect/internal/sets"
)

// RGSCoding selects the element encoding of a compressed RanGroupScan
// structure (§4.1 / Appendix B).
type RGSCoding int

const (
	// RGSGamma gap-codes each group's elements with Elias γ.
	RGSGamma RGSCoding = iota
	// RGSDelta gap-codes each group's elements with Elias δ.
	RGSDelta
	// RGSLowbits stores, per element, only the low w−t bits of g(x); the
	// high t bits are the group identifier z, so decoding is a single
	// concatenation (Appendix B's scheme, the paper's fastest compressed
	// variant).
	RGSLowbits
)

// String names the coding.
func (c RGSCoding) String() string {
	switch c {
	case RGSGamma:
		return "Gamma"
	case RGSDelta:
		return "Delta"
	case RGSLowbits:
		return "Lowbits"
	default:
		return "RGSCoding(?)"
	}
}

// RGSList is the compressed RanGroupScan structure: per group, the block of
// Appendix B — |L^z| in unary, then (if non-empty) the m hash-image words,
// then the encoded elements. Blocks are laid out consecutively in one bit
// stream with a word-aligned directory every dirStride groups to allow the
// two-list intersection to walk both streams without decoding skipped
// groups' elements (γ/δ variants pay a decode per surviving group — the
// cost Figure 8 charges them for).
type RGSList struct {
	fam    *core.Family
	coding RGSCoding
	m      int
	t      uint
	n      int
	stream []uint64
	dir    []uint32 // bit offset of every group's block start; len 2^t+1
}

// NewRGSList compresses a sorted set with m hash images.
func NewRGSList(fam *core.Family, set []uint32, m int, coding RGSCoding) (*RGSList, error) {
	if err := sets.Validate(set); err != nil {
		return nil, fmt.Errorf("compress: RGS list: %w", err)
	}
	if m < 1 || m > fam.M() {
		return nil, fmt.Errorf("compress: m = %d out of range [1, %d]", m, fam.M())
	}
	l := &RGSList{fam: fam, coding: coding, m: m, n: len(set)}
	l.t = core.TForSize(len(set))
	// Order elements by g; group by t-bit prefix.
	keys := make([]uint32, len(set))
	elems := append([]uint32(nil), set...)
	for i, x := range elems {
		keys[i] = fam.Perm.Apply(x)
	}
	core.RadixSortPairs(keys, elems)
	groups := int(1) << l.t
	lowWidth := uint(32) - l.t
	var w BitWriter
	l.dir = make([]uint32, groups+1)
	start := 0
	for z := 0; z < groups; z++ {
		l.dir[z] = uint32(w.Len())
		end := start
		for end < len(keys) && keys[end]>>(32-l.t) == uint32(z) {
			end++
		}
		cnt := end - start
		w.WriteUnary(uint(cnt))
		if cnt > 0 {
			grpElems := elems[start:end]
			grpKeys := keys[start:end]
			for j := 0; j < m; j++ {
				var img bitword.Word
				for _, x := range grpElems {
					img = img.Add(uint(fam.Images[j].Hash(x)))
				}
				w.WriteBits(uint64(img), 64)
			}
			switch coding {
			case RGSLowbits:
				// g-ascending order; store the low bits of g(x).
				for _, g := range grpKeys {
					w.WriteBits(uint64(g)&(1<<lowWidth-1), lowWidth)
				}
			default:
				// Value order within the group, gap-coded.
				grp := append([]uint32(nil), grpElems...)
				sets.SortU32(grp)
				var cd Coding
				if coding == RGSGamma {
					cd = Gamma
				} else {
					cd = Delta
				}
				writeGaps(&w, cd, grp, 0)
			}
		}
		start = end
	}
	if w.Len() >= 1<<32 {
		return nil, fmt.Errorf("compress: stream of %d bits exceeds 32-bit directory", w.Len())
	}
	l.dir[groups] = uint32(w.Len())
	l.stream = w.Words()
	return l, nil
}

// Len returns the number of elements.
func (l *RGSList) Len() int { return l.n }

// T returns the partition resolution.
func (l *RGSList) T() uint { return l.t }

// SizeWords returns the compressed size in 64-bit words, directory included.
func (l *RGSList) SizeWords() int { return len(l.stream) + (len(l.dir)+1)/2 }

// SizeWordsNoDir returns the bit-stream size alone, matching Appendix B's
// accounting (the paper's structure is scanned sequentially and needs no
// directory).
func (l *RGSList) SizeWordsNoDir() int { return len(l.stream) }

// SizeBytes returns the exact payload footprint in bytes: the bit stream
// plus the 32-bit directory.
func (l *RGSList) SizeBytes() int {
	return 8*len(l.stream) + 4*len(l.dir)
}

// group decodes group z in full (header + elements): used by tests and
// one-shot callers. For Lowbits the returned elements are g-values
// (ascending); for γ/δ they are document IDs (ascending). The images slice
// must have length ≥ m.
func (l *RGSList) group(z int, images []bitword.Word, dst []uint32) []uint32 {
	cnt, pos := l.groupHeader(z, images)
	if cnt == 0 {
		return dst[:0]
	}
	return l.groupElems(z, cnt, pos, dst)
}

// groupHeader decodes the count and image words of group z without touching
// the elements (the skip path of Algorithm 5) and returns the bit position
// of the element payload.
func (l *RGSList) groupHeader(z int, images []bitword.Word) (cnt int, elemPos uint64) {
	r := NewBitReader(l.stream, uint64(l.dir[z]))
	cnt = int(r.ReadUnary())
	if cnt == 0 {
		return 0, r.Pos()
	}
	for j := 0; j < l.m; j++ {
		images[j] = bitword.Word(r.ReadBits(64))
	}
	return cnt, r.Pos()
}

// groupElems decodes cnt elements starting at the payload position returned
// by groupHeader.
func (l *RGSList) groupElems(z int, cnt int, pos uint64, dst []uint32) []uint32 {
	dst = dst[:0]
	switch l.coding {
	case RGSLowbits:
		r := NewBitReader(l.stream, pos)
		lowWidth := uint(32) - l.t
		hi := uint32(z) << lowWidth
		for i := 0; i < cnt; i++ {
			dst = append(dst, hi|uint32(r.ReadBits(lowWidth)))
		}
	default:
		var cd Coding
		if l.coding == RGSGamma {
			cd = Gamma
		} else {
			cd = Delta
		}
		d := newGapDecoder(l.stream, pos, cd, 0, cnt)
		for {
			x, ok := d.next()
			if !ok {
				break
			}
			dst = append(dst, x)
		}
	}
	return dst
}

// IntersectRGS intersects two compressed RanGroupScan structures with
// Algorithm 5: groups are matched by prefix, filtered by the m image words
// (decoded from the stream, elements untouched), and surviving pairs are
// decoded and merged. Results are document IDs in (prefix, order-of-merge)
// order, like the uncompressed algorithm.
func IntersectRGS(a, b *RGSList) []uint32 {
	sc := getScratch()
	defer putScratch(sc)
	return intersectRGSInto(nil, sc, a, b)
}

// intersectRGSInto is IntersectRGS appending into dst with group-decode
// buffers drawn from sc.
func intersectRGSInto(dst []uint32, sc *scratch, a, b *RGSList) []uint32 {
	if a.Len() == 0 || b.Len() == 0 {
		return dst
	}
	if !core.SameFamily(a.fam, b.fam) {
		panic("compress: intersecting lists from different families")
	}
	if a.Len() > b.Len() {
		a, b = b, a
	}
	m := a.m
	if b.m < m {
		m = b.m
	}
	var imgA, imgB [core.MaxImageCount]bitword.Word
	bufA := sc.bufA[:0]
	bufB := sc.bufB[:0]
	out := dst
	d := b.t - a.t
	g1 := 1 << a.t
	lowA := uint(32) - a.t
	lowB := uint(32) - b.t
	for z1 := 0; z1 < g1; z1++ {
		cntA, posA := a.groupHeader(z1, imgA[:a.m])
		if cntA == 0 {
			continue
		}
		decodedA := false
		z2end := (z1 + 1) << d
		for z2 := z1 << d; z2 < z2end; z2++ {
			cntB, posB := b.groupHeader(z2, imgB[:b.m])
			if cntB == 0 {
				continue
			}
			alive := true
			for j := 0; j < m; j++ {
				if imgA[j].And(imgB[j]).Empty() {
					alive = false
					break
				}
			}
			if !alive {
				continue
			}
			if !decodedA {
				bufA = a.groupElems(z1, cntA, posA, bufA)
				decodedA = true
			}
			bufB = b.groupElems(z2, cntB, posB, bufB)
			out = mergeCompressed(out, a, b, bufA, bufB, lowA, lowB, z2)
		}
	}
	sc.bufA, sc.bufB = bufA, bufB // keep decode-buffer growth for reuse
	return out
}

// mergeCompressed merges one pair of decoded groups. For Lowbits the
// streams hold g-values: bufA covers the whole prefix z1 while bufB covers
// the finer prefix z2, so when the resolutions differ bufA is first
// narrowed to the g-range of z2; the matched g-values are mapped back
// through g⁻¹. For γ/δ both buffers hold document IDs and merge directly.
// The inner loops are branch-reduced like the Merge baseline's.
func mergeCompressed(out []uint32, a, b *RGSList, bufA, bufB []uint32, lowA, lowB uint, z2 int) []uint32 {
	if a.coding != RGSLowbits {
		i, j := 0, 0
		for i < len(bufA) && j < len(bufB) {
			va, vb := bufA[i], bufB[j]
			if va == vb {
				out = append(out, va)
				i++
				j++
				continue
			}
			if va < vb {
				i++
			}
			if vb < va {
				j++
			}
		}
		return out
	}
	// Lowbits: g-space merge.
	if lowA != lowB {
		// Narrow bufA to [z2<<lowB, (z2+1)<<lowB); bufB is already exact.
		loG := uint64(z2) << lowB
		hiG := uint64(z2+1) << lowB
		lo := 0
		for lo < len(bufA) && uint64(bufA[lo]) < loG {
			lo++
		}
		hi := lo
		for hi < len(bufA) && uint64(bufA[hi]) < hiG {
			hi++
		}
		bufA = bufA[lo:hi]
	}
	i, j := 0, 0
	for i < len(bufA) && j < len(bufB) {
		va, vb := bufA[i], bufB[j]
		if va == vb {
			out = append(out, a.fam.Perm.Invert(va))
			i++
			j++
			continue
		}
		if va < vb {
			i++
		}
		if vb < va {
			j++
		}
	}
	return out
}
