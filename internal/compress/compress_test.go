package compress

import (
	"testing"
	"testing/quick"

	"fastintersect/internal/core"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func TestBitWriterReaderRoundtrip(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(0, 1)
	w.WriteBits(1<<63|5, 64)
	w.WriteUnary(0)
	w.WriteUnary(7)
	w.WriteUnary(200) // crosses several words
	r := NewBitReader(w.Words(), 0)
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("bits3 = %b", got)
	}
	if got := r.ReadBits(16); got != 0xFFFF {
		t.Fatalf("bits16 = %x", got)
	}
	if got := r.ReadBits(1); got != 0 {
		t.Fatalf("bit = %d", got)
	}
	if got := r.ReadBits(64); got != 1<<63|5 {
		t.Fatalf("bits64 = %x", got)
	}
	for _, want := range []uint{0, 7, 200} {
		if got := r.ReadUnary(); got != want {
			t.Fatalf("unary = %d, want %d", got, want)
		}
	}
	if r.Pos() != w.Len() {
		t.Fatalf("reader at %d, writer wrote %d", r.Pos(), w.Len())
	}
}

func TestBitIOProperty(t *testing.T) {
	f := func(vals []uint32, widths []uint8) bool {
		var w BitWriter
		var expect []uint64
		var ws []uint
		for i, v := range vals {
			if i >= len(widths) {
				break
			}
			n := uint(widths[i]%32) + 1
			val := uint64(v) & (1<<n - 1)
			w.WriteBits(val, n)
			expect = append(expect, val)
			ws = append(ws, n)
		}
		r := NewBitReader(w.Words(), 0)
		for i, want := range expect {
			if got := r.ReadBits(ws[i]); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaDeltaRoundtrip(t *testing.T) {
	vals := []uint64{1, 2, 3, 4, 7, 8, 255, 256, 1 << 20, 1<<32 - 1, 1 << 32}
	for _, coding := range []Coding{Gamma, Delta} {
		var w BitWriter
		for _, v := range vals {
			writeCode(&w, coding, v)
		}
		r := NewBitReader(w.Words(), 0)
		for _, want := range vals {
			if got := readCode(&r, coding); got != want {
				t.Fatalf("%v roundtrip: got %d, want %d", coding, got, want)
			}
		}
	}
}

func TestGammaDeltaProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var w BitWriter
		var vals []uint64
		for _, v := range raw {
			val := uint64(v) + 1 // positive
			vals = append(vals, val)
			writeGamma(&w, val)
			writeDelta(&w, val)
		}
		r := NewBitReader(w.Words(), 0)
		for _, want := range vals {
			if readGamma(&r) != want {
				return false
			}
			if readDelta(&r) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodePanicsOnZero(t *testing.T) {
	for name, f := range map[string]func(){
		"gamma": func() { var w BitWriter; writeGamma(&w, 0) },
		"delta": func() { var w BitWriter; writeDelta(&w, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s(0) did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDeltaShorterThanGammaForLarge(t *testing.T) {
	var wg, wd BitWriter
	for v := uint64(1 << 10); v < 1<<20; v += 9999 {
		writeGamma(&wg, v)
		writeDelta(&wd, v)
	}
	if wd.Len() >= wg.Len() {
		t.Fatalf("delta (%d bits) not shorter than gamma (%d bits) on large values", wd.Len(), wg.Len())
	}
}

func TestMergeListRoundtrip(t *testing.T) {
	rng := xhash.NewRNG(1)
	for _, coding := range []Coding{Gamma, Delta} {
		for _, n := range []int{0, 1, 10, 1000} {
			set := workload.RandomSets(1<<22, []int{n}, rng)[0]
			if n == 0 {
				set = nil
			}
			l, err := NewMergeList(set, coding)
			if err != nil {
				t.Fatal(err)
			}
			if got := l.Decode(); !sets.Equal(got, set) {
				t.Fatalf("%v n=%d: decode mismatch", coding, n)
			}
		}
	}
}

func TestMergeListRejectsInvalid(t *testing.T) {
	if _, err := NewMergeList([]uint32{2, 1}, Delta); err == nil {
		t.Fatal("unsorted accepted")
	}
}

func TestMergeListZeroFirstElement(t *testing.T) {
	l, err := NewMergeList([]uint32{0, 1, 2}, Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Decode(); !sets.Equal(got, []uint32{0, 1, 2}) {
		t.Fatalf("decode = %v", got)
	}
}

func TestIntersectMerge(t *testing.T) {
	rng := xhash.NewRNG(2)
	for trial := 0; trial < 20; trial++ {
		a, b := workload.PairWithIntersection(1<<20, 500+rng.Intn(500), 500+rng.Intn(2000), rng.Intn(300), rng)
		want := sets.IntersectReference(a, b)
		for _, coding := range []Coding{Gamma, Delta} {
			ca, _ := NewMergeList(a, coding)
			cb, _ := NewMergeList(b, coding)
			if got := IntersectMerge(ca, cb); !sets.Equal(got, want) {
				t.Fatalf("%v trial %d: got %d, want %d", coding, trial, len(got), len(want))
			}
		}
	}
}

func TestIntersectMergeKWay(t *testing.T) {
	rng := xhash.NewRNG(3)
	lists := workload.RandomSets(1<<14, []int{300, 400, 500}, rng)
	want := sets.IntersectReference(lists...)
	var cs []*MergeList
	for _, l := range lists {
		c, _ := NewMergeList(l, Delta)
		cs = append(cs, c)
	}
	if got := IntersectMerge(cs...); !sets.Equal(got, want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	if got := IntersectMerge(cs[0]); !sets.Equal(got, lists[0]) {
		t.Fatal("single-list decode wrong")
	}
	if got := IntersectMerge(); got != nil {
		t.Fatal("no-list result not nil")
	}
}

func TestLookupListRoundtrip(t *testing.T) {
	rng := xhash.NewRNG(4)
	set := workload.RandomSets(1<<18, []int{3000}, rng)[0]
	for _, coding := range []Coding{Gamma, Delta} {
		l, err := NewLookupList(set, coding, 32)
		if err != nil {
			t.Fatal(err)
		}
		if got := l.Decode(); !sets.Equal(got, set) {
			t.Fatalf("%v: decode mismatch", coding)
		}
	}
}

func TestLookupListRejects(t *testing.T) {
	if _, err := NewLookupList([]uint32{2, 1}, Delta, 32); err == nil {
		t.Fatal("unsorted accepted")
	}
	if _, err := NewLookupList([]uint32{1}, Delta, 33); err == nil {
		t.Fatal("non-power-of-two width accepted")
	}
}

func TestIntersectLookup(t *testing.T) {
	rng := xhash.NewRNG(5)
	for trial := 0; trial < 15; trial++ {
		a, b := workload.PairWithIntersection(1<<20, 400+rng.Intn(800), 400+rng.Intn(3000), rng.Intn(200), rng)
		want := sets.IntersectReference(a, b)
		ca, _ := NewLookupList(a, Delta, 32)
		cb, _ := NewLookupList(b, Delta, 32)
		if got := IntersectLookup(ca, cb); !sets.Equal(got, want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		// Order must not matter.
		if got := IntersectLookup(cb, ca); !sets.Equal(got, want) {
			t.Fatalf("trial %d (swapped): got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestRGSListAllCodings(t *testing.T) {
	fam := core.NewFamily(0xC0DE, 2)
	rng := xhash.NewRNG(6)
	for trial := 0; trial < 12; trial++ {
		n1 := 100 + rng.Intn(1500)
		n2 := 100 + rng.Intn(3000)
		maxR := n1
		if n2 < maxR {
			maxR = n2
		}
		a, b := workload.PairWithIntersection(1<<22, n1, n2, rng.Intn(maxR), rng)
		want := sets.IntersectReference(a, b)
		for _, coding := range []RGSCoding{RGSGamma, RGSDelta, RGSLowbits} {
			ca, err := NewRGSList(fam, a, 2, coding)
			if err != nil {
				t.Fatal(err)
			}
			cb, err := NewRGSList(fam, b, 2, coding)
			if err != nil {
				t.Fatal(err)
			}
			got := IntersectRGS(ca, cb)
			sets.SortU32(got)
			if !sets.Equal(got, want) {
				t.Fatalf("%v trial %d (n1=%d n2=%d): got %d, want %d",
					coding, trial, n1, n2, len(got), len(want))
			}
		}
	}
}

func TestRGSListEdges(t *testing.T) {
	fam := core.NewFamily(0xC0DE, 2)
	empty, err := NewRGSList(fam, nil, 1, RGSLowbits)
	if err != nil {
		t.Fatal(err)
	}
	one, err := NewRGSList(fam, []uint32{42}, 1, RGSLowbits)
	if err != nil {
		t.Fatal(err)
	}
	if got := IntersectRGS(empty, one); len(got) != 0 {
		t.Fatalf("empty ∩ {42} = %v", got)
	}
	two, _ := NewRGSList(fam, []uint32{42, 100}, 1, RGSLowbits)
	got := IntersectRGS(one, two)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("{42} ∩ {42,100} = %v", got)
	}
}

func TestRGSListRejects(t *testing.T) {
	fam := core.NewFamily(0xC0DE, 2)
	if _, err := NewRGSList(fam, []uint32{2, 1}, 1, RGSDelta); err == nil {
		t.Fatal("unsorted accepted")
	}
	if _, err := NewRGSList(fam, []uint32{1}, 9, RGSDelta); err == nil {
		t.Fatal("m beyond family accepted")
	}
}

func TestCompressedSizesOrdering(t *testing.T) {
	// On dense postings the compressed index must be much smaller than raw;
	// Lowbits sits between the δ-coded index and the uncompressed structure
	// (Figure 8's space chart).
	fam := core.NewFamily(0xC0DE, 1)
	rng := xhash.NewRNG(7)
	// The paper's regime: postings sparse in a 2×10⁸ universe.
	set := workload.RandomSets(workload.DefaultUniverse, []int{200_000}, rng)[0]
	rawWords := len(set) / 2
	md, _ := NewMergeList(set, Delta)
	ld, _ := NewLookupListAuto(set, Delta, 32)
	rd, _ := NewRGSList(fam, set, 1, RGSDelta)
	rl, _ := NewRGSList(fam, set, 1, RGSLowbits)
	if md.SizeWords() >= rawWords {
		t.Fatalf("Merge_Delta (%d) not smaller than raw (%d)", md.SizeWords(), rawWords)
	}
	if ld.SizeWords() >= 2*rawWords {
		t.Fatalf("Lookup_Delta (%d) grossly above raw (%d)", ld.SizeWords(), rawWords)
	}
	if rl.SizeWordsNoDir() <= md.SizeWords() {
		t.Fatalf("Lowbits (%d) unexpectedly smaller than Merge_Delta (%d)", rl.SizeWordsNoDir(), md.SizeWords())
	}
	// Paper: RGS_Lowbits is 1.3–1.9× the compressed inverted index.
	ratio := float64(rl.SizeWordsNoDir()) / float64(md.SizeWords())
	if ratio < 1.0 || ratio > 2.5 {
		t.Fatalf("Lowbits/MergeDelta ratio %.2f outside the paper's 1.3-1.9 neighbourhood", ratio)
	}
	_ = rd
}

func TestStringers(t *testing.T) {
	if Gamma.String() != "Gamma" || Delta.String() != "Delta" {
		t.Fatal("Coding.String wrong")
	}
	if RGSGamma.String() != "Gamma" || RGSDelta.String() != "Delta" || RGSLowbits.String() != "Lowbits" {
		t.Fatal("RGSCoding.String wrong")
	}
	if Coding(9).String() != "Coding(?)" || RGSCoding(9).String() != "RGSCoding(?)" {
		t.Fatal("unknown stringers wrong")
	}
}

func TestRGSLowbitsSkewedResolutions(t *testing.T) {
	// Strongly skewed sizes force t1 < t2, exercising the Lowbits
	// narrowing path where one decoded group of the small list spans many
	// groups of the large one.
	fam := core.NewFamily(0xC0DE, 2)
	rng := xhash.NewRNG(0x51E4)
	a, b := workload.PairWithIntersection(1<<24, 200, 60_000, 150, rng)
	ca, err := NewRGSList(fam, a, 2, RGSLowbits)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewRGSList(fam, b, 2, RGSLowbits)
	if err != nil {
		t.Fatal(err)
	}
	if ca.T() >= cb.T() {
		t.Fatalf("expected t1 < t2, got %d vs %d", ca.T(), cb.T())
	}
	want := sets.IntersectReference(a, b)
	got := IntersectRGS(ca, cb)
	sets.SortU32(got)
	if !sets.Equal(got, want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	// Argument order must not matter.
	got = IntersectRGS(cb, ca)
	sets.SortU32(got)
	if !sets.Equal(got, want) {
		t.Fatalf("swapped: got %d, want %d", len(got), len(want))
	}
}
