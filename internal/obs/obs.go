// Package obs is the query-path observability layer: the measurement
// machinery every scaling decision in this repo leans on — the planner
// feedback loop (estimated vs. actual rows per operator), the kernel-tier
// cost anchors (per-kernel timing counters), and the serving surfaces
// (latency percentiles, slow queries, per-endpoint request accounting).
//
// It provides four pieces, all free of external dependencies and all safe
// for concurrent use:
//
//   - Counter / Gauge: lock-free counters sharded across cache-line-padded
//     per-stripe slots, merged on read, so the hot path of a many-core
//     server never serializes on one cache line (see stripe).
//   - Histogram: log₂-bucketed latency histograms. Observe is one sharded
//     bucket increment plus a sum add — allocation-free — and Snapshot
//     merges the stripes for quantile estimation (p50/p90/p99/p999 within
//     a factor-of-two bucket resolution, linearly interpolated inside the
//     bucket).
//   - Registry: named metrics rendered in Prometheus text exposition
//     format (counters, gauges, callback metrics, histograms with
//     cumulative le buckets), served by fsiserve's GET /metrics.
//   - Trace / SlowLog / Sampler (trace.go): the pooled per-query stage
//     trace the engine carries through its execution contexts, the
//     slow-query ring buffer behind GET /debug/slowlog, and the 1-in-N
//     sampler that keeps steady-state tracing overhead negligible.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// ---------------------------------------------------------------------------
// Striping

// maxStripes bounds the per-metric memory: a counter is one padded word per
// stripe, a histogram one bucket array per stripe.
const maxStripes = 64

var (
	numStripes = computeStripes()
	stripeMask = uintptr(numStripes - 1)
)

// computeStripes rounds GOMAXPROCS up to a power of two (capped) so stripe
// selection is a mask, not a modulo.
func computeStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxStripes {
		n = maxStripes
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// stripe picks the calling goroutine's slot. Go exposes neither
// goroutine-local storage nor a stable P identity outside the runtime, so
// the slot is derived from the address of a stack local: distinct
// goroutines occupy distinct stacks, so concurrent writers spread across
// stripes and the padded slots keep them on distinct cache lines. The
// address is hashed (Fibonacci multiplier), never dereferenced or retained,
// and it does not matter that a goroutine may map to different stripes at
// different call depths — any stripe is correct, stripes only spread
// contention.
func stripe() uintptr {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) * 0x9E3779B97F4A7C15
	return uintptr(h>>33) & stripeMask
}

// slot is one cache-line-padded counter cell. 64 bytes is the line size of
// every mainstream 64-bit core this repo targets; the padding prevents
// false sharing between adjacent stripes.
type slot struct {
	v atomic.Uint64
	_ [56]byte
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing counter sharded across padded
// per-stripe slots: Add touches one stripe's cache line, Value merges all
// stripes. The zero value is not usable; get one from a Registry.
type Counter struct {
	slots []slot
}

func newCounter() *Counter { return &Counter{slots: make([]slot, numStripes)} }

// Inc adds one.
func (c *Counter) Inc() { c.slots[stripe()].v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.slots[stripe()].v.Add(n) }

// Value merges the stripes. Concurrent Adds may or may not be included —
// the usual monotonic-read guarantee of a statistics counter.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.slots {
		total += c.slots[i].v.Load()
	}
	return total
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a last-writer-wins float64 (set-dominated, so a single atomic
// word — sharding would make Value ambiguous).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

func floatBits(f float64) uint64 { return *(*uint64)(unsafe.Pointer(&f)) }
func bitsFloat(b uint64) float64 { return *(*float64)(unsafe.Pointer(&b)) }

// ---------------------------------------------------------------------------
// Histogram

// histBuckets covers every int64 nanosecond duration: bucket 0 holds exact
// zeros and bucket b (1 ≤ b ≤ 63) holds durations in [2^(b-1), 2^b) ns.
const histBuckets = 64

// histStripe is one stripe's bucket array. The trailing pad keeps the next
// stripe's first buckets off this stripe's last cache line.
type histStripe struct {
	count [histBuckets]atomic.Uint64
	sum   atomic.Uint64 // total observed ns
	_     [56]byte
}

// Histogram is a log₂-bucketed duration histogram sharded like Counter.
// Observe is allocation-free: one bucket increment and one sum add on the
// caller's stripe. Percentile resolution is the bucket width — a factor of
// two — which is exactly the precision a latency SLO dashboard needs and
// cheap enough to sit on the unsampled hot path.
type Histogram struct {
	stripes []histStripe
}

func newHistogram() *Histogram { return &Histogram{stripes: make([]histStripe, numStripes)} }

// Observe records one duration. Negative durations (clock steps) count as
// zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) // 0 for ns == 0, else 1 + floor(log₂ ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	s := &h.stripes[stripe()]
	s.count[b].Add(1)
	s.sum.Add(uint64(ns))
}

// HistSnapshot is a merged point-in-time view of a Histogram.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	Count  uint64
	SumNs  uint64
}

// Snapshot merges the stripes. Like Value, concurrent Observes may be
// partially included.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.count {
			c := st.count[b].Load()
			s.Counts[b] += c
			s.Count += c
		}
		s.SumNs += st.sum.Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by walking the
// cumulative bucket counts and interpolating linearly inside the landing
// bucket. The estimate is exact to within the bucket's factor-of-two
// bounds. Returns 0 for an empty histogram.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if b == 0 {
				return 0
			}
			lo := int64(1) << (b - 1)
			hi := int64(1) << b
			before := float64(cum - c)
			frac := (rank - before) / float64(c)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
	}
	return time.Duration(int64(1) << (histBuckets - 2)) // top bucket's lower bound
}

// bucketUpperNs is bucket b's inclusive upper bound in ns (every value in
// the bucket is ≤ 2^b − 1 < 2^b, so 2^b is a valid Prometheus `le`).
func bucketUpperNs(b int) uint64 {
	if b == 0 {
		return 0
	}
	return uint64(1) << b
}

// ---------------------------------------------------------------------------
// Registry

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// series is one named time series (family name plus an optional fixed
// label set baked into the name).
type series struct {
	name   string // full series name, e.g. `fsi_http_requests_total{path="/query"}`
	labels string // the {...} part without braces, "" when unlabeled
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() uint64
	gf     func() float64
}

// family groups the series sharing one metric name, so HELP/TYPE render
// once per family as the exposition format requires.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge" or "histogram"
	series []*series
}

// Registry is a set of named metrics rendered in Prometheus text format.
// Metric names may embed a fixed label set — Counter(`x_total{path="/q"}`)
// — and series of one family (same name before the brace) share one
// HELP/TYPE header. Registration is idempotent: asking for an existing
// series of the same kind returns the same metric object; a kind conflict
// panics (it is a programming error, like a duplicate flag).
type Registry struct {
	mu       sync.Mutex
	families []*family
	famIdx   map[string]*family
	seriesIx map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{famIdx: map[string]*family{}, seriesIx: map[string]*series{}}
}

// Counter registers (or returns) the named sharded counter.
func (r *Registry) Counter(name, help string) *Counter {
	s := r.register(name, help, "counter", kindCounter)
	if s.c == nil {
		s.c = newCounter()
	}
	return s.c
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := r.register(name, help, "gauge", kindGauge)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or returns) the named log₂ histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	s := r.register(name, help, "histogram", kindHistogram)
	if s.h == nil {
		s.h = newHistogram()
	}
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for counters that already live elsewhere (the result cache's
// mutex-guarded hit/miss counters, say) and would be silly to double-count.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	s := r.register(name, help, "counter", kindCounterFunc)
	s.cf = fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	s := r.register(name, help, "gauge", kindGaugeFunc)
	s.gf = fn
}

func (r *Registry) register(name, help, typ string, kind metricKind) *series {
	famName, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.seriesIx[name]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return s
	}
	f, ok := r.famIdx[famName]
	if !ok {
		f = &family{name: famName, help: help, typ: typ}
		r.famIdx[famName] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric family %q re-registered as %s (was %s)", famName, typ, f.typ))
	}
	s := &series{name: name, labels: labels, kind: kind}
	f.series = append(f.series, s)
	r.seriesIx[name] = s
	return s
}

// splitName separates `family{labels}` into its parts.
func splitName(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus renders every registered metric in the text exposition
// format (version 0.0.4): one HELP/TYPE header per family, counters and
// gauges as single samples, histograms as cumulative `le` buckets plus
// _sum and _count. Bucket lines span only the occupied range of the log₂
// buckets (plus +Inf), keeping the page compact.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var sb strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(&sb, "%s %d\n", s.name, s.c.Value())
			case kindCounterFunc:
				fmt.Fprintf(&sb, "%s %d\n", s.name, s.cf())
			case kindGauge:
				fmt.Fprintf(&sb, "%s %s\n", s.name, formatFloat(s.g.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(&sb, "%s %s\n", s.name, formatFloat(s.gf()))
			case kindHistogram:
				writeHistogram(&sb, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeHistogram(sb *strings.Builder, fam string, s *series) {
	snap := s.h.Snapshot()
	lo, hi := 0, -1
	for b, c := range snap.Counts {
		if c == 0 {
			continue
		}
		if hi < 0 {
			lo = b
		}
		hi = b
	}
	var cum uint64
	for b := 0; b <= hi; b++ {
		cum += snap.Counts[b]
		if b < lo {
			continue
		}
		le := formatFloat(float64(bucketUpperNs(b)) / 1e9)
		fmt.Fprintf(sb, "%s_bucket{%sle=%q} %d\n", fam, labelPrefix(s.labels), le, cum)
	}
	fmt.Fprintf(sb, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, labelPrefix(s.labels), snap.Count)
	fmt.Fprintf(sb, "%s_sum%s %s\n", fam, labelSuffix(s.labels), formatFloat(float64(snap.SumNs)/1e9))
	fmt.Fprintf(sb, "%s_count%s %d\n", fam, labelSuffix(s.labels), snap.Count)
}

// labelPrefix renders a series' fixed labels for merging with `le`.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// labelSuffix renders a series' fixed labels for the _sum/_count samples.
func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
