package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of query execution for per-stage timing.
// The stages mirror the engine's execute pipeline in order.
type Stage uint8

const (
	StageParse     Stage = iota // query text → AST
	StageNormalize              // AST flatten/sort/dedup → canonical form
	StagePlan                   // physical plan build (cost model)
	StageCache                  // result-cache probe
	StageExec                   // per-shard evaluation (fan-out included)
	StageMerge                  // k-way union of shard results
	NumStages
)

var stageNames = [NumStages]string{"parse", "normalize", "plan", "cache", "exec", "merge"}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// ShardSpan records one shard's contribution to a traced query.
type ShardSpan struct {
	Shard int
	Rows  int
	Ns    int64
}

// Trace is a per-query record of stage timings and per-shard spans. Traces
// are pooled (GetTrace/PutTrace) and carried through the engine's pooled
// execution contexts, so a sampled query costs no steady-state allocations.
type Trace struct {
	Query   string
	Cached  bool
	Err     bool
	TotalNs int64
	Stages  [NumStages]int64 // ns per stage; 0 = not reached
	Shards  []ShardSpan
}

var tracePool = sync.Pool{New: func() any { return &Trace{} }}

// GetTrace returns a reset Trace from the pool.
func GetTrace() *Trace {
	t := tracePool.Get().(*Trace)
	t.Query = ""
	t.Cached = false
	t.Err = false
	t.TotalNs = 0
	for i := range t.Stages {
		t.Stages[i] = 0
	}
	t.Shards = t.Shards[:0]
	return t
}

// PutTrace returns t to the pool. Nil-safe.
func PutTrace(t *Trace) {
	if t != nil {
		tracePool.Put(t)
	}
}

// Sampler admits every Nth event. every <= 1 admits everything. The
// counter is a single shared atomic — one uncontended-in-practice Add per
// query is far cheaper than the trace it gates, and exact spacing is not
// required, only the 1/N rate.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler admitting one in every `every` calls.
func NewSampler(every int) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this event is admitted.
func (s *Sampler) Sample() bool {
	if s.every == 1 {
		return true
	}
	return s.n.Add(1)%s.every == 0
}

// SlowEntry is one slow-query record.
type SlowEntry struct {
	Time       time.Time `json:"time"`
	Query      string    `json:"query"`
	Normalized string    `json:"normalized,omitempty"`
	DurationUS int64     `json:"duration_us"`
	Rows       int       `json:"rows"`
	Cached     bool      `json:"cached"`
	Error      string    `json:"error,omitempty"`
	// Reason classifies admission/overload outcomes ("rejected_quota",
	// "shed_queue_full", "deadline", ...). A non-empty Reason makes the
	// entry threshold-exempt: a request shed in microseconds is exactly the
	// diagnostic signal the slowlog exists to surface under overload.
	Reason string `json:"reason,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of queries slower than a
// threshold. Record is called once per request on the serving path, so it
// takes a plain mutex — the threshold gate means the lock is touched only
// by already-slow queries' bookkeeping, never the fast path's critical
// section. A nil SlowLog ignores records, so callers need no gating.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	entries   []SlowEntry
	next      int
	total     uint64
	wrapped   bool
}

// NewSlowLog returns a ring holding the most recent capacity entries with
// duration ≥ threshold.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, entries: make([]SlowEntry, 0, capacity)}
}

// Threshold returns the slow-query cutoff.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record adds e if it is at or over the threshold; entries with a Reason
// bypass the threshold (see SlowEntry.Reason). Nil-safe.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil {
		return
	}
	if e.Reason == "" && time.Duration(e.DurationUS)*time.Microsecond < l.threshold {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) < cap(l.entries) {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % cap(l.entries)
	l.wrapped = true
}

// Snapshot returns the retained entries, newest first. Nil-safe.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.entries))
	if l.wrapped {
		for i := 0; i < cap(l.entries); i++ {
			out = append(out, l.entries[(l.next-1-i+2*cap(l.entries))%cap(l.entries)])
		}
		return out
	}
	for i := len(l.entries) - 1; i >= 0; i-- {
		out = append(out, l.entries[i])
	}
	return out
}

// Total returns how many entries have ever been recorded (including ones
// evicted from the ring). Nil-safe.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
