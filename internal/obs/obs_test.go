package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "test")
	const workers, perWorker = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%3 == 0 {
					c.Add(2)
				} else {
					c.Inc()
				}
			}
		}()
	}
	wg.Wait()
	// per worker: ceil(10000/3)=3334 Adds of 2 plus 6666 Incs.
	want := uint64(workers * (3334*2 + 6666))
	if got := c.Value(); got != want {
		t.Fatalf("counter value = %d, want %d", got, want)
	}
}

func TestCounterIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registering the same counter returned a different object")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2.0)
	if v := g.Value(); v != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", v)
	}
	g.Set(-1)
	if v := g.Value(); v != -1 {
		t.Fatalf("gauge = %v, want -1", v)
	}
}

func TestHistogramMergeConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency")
	const workers, perWorker = 8, 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(1+(w*perWorker+i)%1000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
	if s.SumNs == 0 {
		t.Fatal("histogram sum is zero after observations")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q")
	// 1000 observations spread uniformly over (0, 1ms].
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := s.Quantile(tc.q)
		// log2 buckets are exact only to a factor of two.
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("p%v = %v, want within 2x of %v", tc.q*100, got, tc.want)
		}
	}
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m_seconds", "m")
	for _, d := range []time.Duration{0, time.Nanosecond, 10 * time.Microsecond, time.Millisecond, 50 * time.Millisecond} {
		for i := 0; i < 20; i++ {
			h.Observe(d)
		}
	}
	s := h.Snapshot()
	prev := time.Duration(-1)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999, 1.0} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%v gave %v after %v", q, v, prev)
		}
		prev = v
	}
}

func TestWritePrometheusShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_queries_total", "queries served").Add(7)
	r.Counter(`app_http_requests_total{path="/query"}`, "http requests").Add(3)
	r.Counter(`app_http_requests_total{path="/stats"}`, "http requests").Add(1)
	g := r.Gauge("app_temperature", "temp")
	g.Set(2.5)
	r.CounterFunc("app_cache_hits_total", "cache hits", func() uint64 { return 42 })
	r.GaugeFunc("app_generation", "index generation", func() float64 { return 9 })
	h := r.Histogram("app_latency_seconds", "latency")
	h.Observe(100 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# TYPE app_queries_total counter",
		"app_queries_total 7",
		`app_http_requests_total{path="/query"} 3`,
		`app_http_requests_total{path="/stats"} 1`,
		"# TYPE app_temperature gauge",
		"app_temperature 2.5",
		"app_cache_hits_total 42",
		"app_generation 9",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in output:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE app_http_requests_total counter"); n != 1 {
		t.Errorf("TYPE header for labeled family appears %d times, want 1", n)
	}

	// Histogram buckets must be cumulative and end at count.
	var lastCum uint64
	var les []float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "app_latency_seconds_bucket") {
			continue
		}
		var le string
		var cum uint64
		if _, err := parseBucketLine(line, &le, &cum); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < lastCum {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		lastCum = cum
		if le != "+Inf" {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", le, err)
			}
			if len(les) > 0 && v <= les[len(les)-1] {
				t.Fatalf("le values not increasing at %q", line)
			}
			les = append(les, v)
		}
	}
	if lastCum != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", lastCum)
	}
	if len(les) == 0 {
		t.Fatal("no finite le buckets rendered")
	}
}

func parseBucketLine(line string, le *string, cum *uint64) (int, error) {
	i := strings.Index(line, `le="`)
	j := strings.Index(line[i+4:], `"`)
	*le = line[i+4 : i+4+j]
	var err error
	*cum, err = strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
	return 0, err
}

func TestSampler(t *testing.T) {
	s := NewSampler(4)
	var admitted int
	for i := 0; i < 400; i++ {
		if s.Sample() {
			admitted++
		}
	}
	if admitted != 100 {
		t.Fatalf("sampler(4) admitted %d of 400, want 100", admitted)
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("sampler(1) must admit everything")
		}
	}
	if NewSampler(0).every != 1 {
		t.Fatal("sampler(0) should clamp to 1")
	}
}

func TestTracePool(t *testing.T) {
	tr := GetTrace()
	tr.Query = "a AND b"
	tr.Cached = true
	tr.Stages[StageParse] = 123
	tr.Shards = append(tr.Shards, ShardSpan{Shard: 1, Rows: 10, Ns: 50})
	PutTrace(tr)
	tr2 := GetTrace()
	if tr2.Query != "" || tr2.Cached || tr2.Stages[StageParse] != 0 || len(tr2.Shards) != 0 {
		t.Fatal("pooled trace not reset")
	}
	PutTrace(tr2)
	PutTrace(nil) // must not panic
}

func TestStageString(t *testing.T) {
	want := []string{"parse", "normalize", "plan", "cache", "exec", "merge"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if NumStages.String() != "unknown" {
		t.Fatal("out-of-range stage should stringify as unknown")
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 3)
	l.Record(SlowEntry{Query: "fast", DurationUS: 500}) // under threshold, dropped
	for i := 1; i <= 5; i++ {
		l.Record(SlowEntry{Query: "q" + strconv.Itoa(i), DurationUS: int64(10_000 + i)})
	}
	if got := l.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, want := range []string{"q5", "q4", "q3"} {
		if snap[i].Query != want {
			t.Fatalf("snapshot[%d] = %q, want %q (newest first)", i, snap[i].Query, want)
		}
	}
	if l.Threshold() != 10*time.Millisecond {
		t.Fatal("threshold accessor mismatch")
	}

	var nilLog *SlowLog
	nilLog.Record(SlowEntry{Query: "x", DurationUS: 1 << 30})
	if nilLog.Snapshot() != nil || nilLog.Total() != 0 || nilLog.Threshold() != 0 {
		t.Fatal("nil slowlog must be inert")
	}
}

func TestSlowLogPartial(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 8)
	l.Record(SlowEntry{Query: "a", DurationUS: 2000})
	l.Record(SlowEntry{Query: "b", DurationUS: 2000})
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Query != "b" || snap[1].Query != "a" {
		t.Fatalf("partial snapshot wrong: %+v", snap)
	}
}

// TestSlowLogReasonBypassesThreshold: shed/rejected/timed-out requests are
// recorded no matter how fast they failed — a request shed in microseconds
// is the overload diagnostic, not noise.
func TestSlowLogReasonBypassesThreshold(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 4)
	l.Record(SlowEntry{Query: "fast-ok", DurationUS: 5}) // under threshold, no reason: dropped
	l.Record(SlowEntry{Query: "shed", DurationUS: 5, Reason: "shed_queue_full"})
	snap := l.Snapshot()
	if len(snap) != 1 || snap[0].Query != "shed" || snap[0].Reason != "shed_queue_full" {
		t.Fatalf("snapshot = %+v, want only the reasoned entry", snap)
	}
}
