// Package kerneltest is the cross-kernel parity corpus: one generator of
// adversarial and randomized set families that every intersection tier is
// checked against the scalar reference on — the public fastintersect
// algorithms, the compressed stored strategies (including forced,
// shape-mismatched ones, which must downgrade rather than miscompute), and
// the engine's planned execution under both kernel policies.
//
// Per-kernel parity tests used to be scattered across the packages they
// tested (fastintersect, compress, plan), each with its own small workload;
// a kernel was only as covered as its package's local test happened to be.
// This package centralizes the corpus so every tier runs the SAME shapes —
// in particular the boundary shapes that break word-parallel bitmap
// kernels (chunk-edge values, dense/sparse flips at the partition
// threshold, near-2³² IDs) — and a new kernel is covered by construction
// the moment its tier's enumeration includes it. The tests live in
// kerneltest_test.go; this file is only the generator, so harness code can
// reuse the corpus too.
package kerneltest

import (
	"fmt"

	"fastintersect/internal/bitseg"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// Case is one parity input: k sorted duplicate-free sets whose intersection
// every kernel must agree on.
type Case struct {
	Name string
	Sets [][]uint32
}

// seqRange returns [lo, hi).
func seqRange(lo, hi uint32) []uint32 {
	out := make([]uint32, 0, hi-lo)
	for v := lo; v < hi; v++ {
		out = append(out, v)
	}
	return out
}

// strided returns {lo, lo+step, ...} with n elements.
func strided(lo, step uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = lo + uint32(i)*step
	}
	return out
}

// adversarial are the fixed boundary shapes: chunk-edge straddles, full and
// alternating chunks, the dense/sparse partition threshold, IDs at the top
// of the uint32 range, and the degenerate set relations (empty, singleton,
// identical, nested).
func adversarial() []Case {
	const cw = bitseg.ChunkWidth
	top := ^uint32(0)
	var cases []Case
	add := func(name string, ss ...[]uint32) {
		cases = append(cases, Case{Name: name, Sets: ss})
	}
	add("empty-operand", nil, seqRange(0, 64))
	add("both-empty", nil, nil)
	add("singleton-hit", []uint32{cw}, []uint32{0, cw, 10 * cw})
	add("singleton-miss", []uint32{cw + 1}, []uint32{0, cw, 10 * cw})
	add("chunk-edge-straddle",
		[]uint32{cw - 2, cw - 1, cw, cw + 1},
		[]uint32{cw - 1, cw, 2*cw - 1, 2 * cw})
	add("full-chunk-overlap", seqRange(0, 2*cw), seqRange(cw, 3*cw))
	add("alternating-chunks",
		append(seqRange(0, cw/2), seqRange(2*cw, 2*cw+cw/2)...),
		append(seqRange(cw, cw+cw/2), seqRange(2*cw, 2*cw+cw/2)...))
	add("disjoint-ranges", seqRange(0, cw), seqRange(8*cw, 9*cw))
	add("identical-dense", seqRange(3*cw, 5*cw), seqRange(3*cw, 5*cw))
	add("near-max", []uint32{top - 3, top - 2, top - 1, top}, []uint32{top - 2, top})
	// Exactly DenseMin elements in a chunk stays a sparse run; one more
	// flips it to a bitmap — both sides of the partition threshold, against
	// a dense chunk and against each other.
	add("partition-threshold",
		strided(0, uint32(cw/bitseg.DenseMin), bitseg.DenseMin),
		seqRange(0, cw))
	add("partition-threshold+1",
		strided(0, uint32(cw/(bitseg.DenseMin+1)), bitseg.DenseMin+1),
		strided(0, uint32(cw/bitseg.DenseMin), bitseg.DenseMin))
	add("nested-subsets",
		strided(0, 8, cw/8),
		strided(0, 4, cw/4),
		seqRange(0, cw))
	add("wide-kway",
		seqRange(0, cw), strided(0, 2, cw), strided(0, 3, cw),
		strided(0, 5, cw), strided(0, 7, cw))
	return cases
}

// Cases returns the full corpus for one seed: the fixed adversarial shapes
// plus randomized density, skew, k-way and run-structured sweeps. Every set
// is sorted and duplicate-free (Preprocess-ready).
func Cases(seed uint64) []Case {
	cases := adversarial()
	rng := xhash.NewRNG(seed)
	// Density sweep: balanced pairs from near-empty to quarter-full over a
	// 64Ki universe, with a forced shared core so results are non-trivial.
	for _, n := range []int{16, 256, 4096, 16384} {
		r := n / 8
		if r < 1 {
			r = 1
		}
		a, b := workload.PairWithIntersection(1<<16, n, n, r, rng)
		cases = append(cases, Case{Name: fmt.Sprintf("density-%d", n), Sets: [][]uint32{a, b}})
	}
	// Skew: the galloping/hash regime.
	small, big := workload.PairWithIntersection(1<<20, 12, 60_000, 4, rng)
	cases = append(cases, Case{Name: "skew-12v60k", Sets: [][]uint32{small, big}})
	// K-way with mixed sizes.
	cases = append(cases, Case{Name: "kway-mixed",
		Sets: workload.KWithIntersection(1<<18, []int{300, 2_000, 9_000, 30_000}, 64, rng)})
	// Run-structured: contiguous bursts separated by gaps, the shape gap
	// codes and bitmap chunks both specialize for.
	cases = append(cases, Case{Name: "bursty", Sets: [][]uint32{
		bursts(rng, 40, 200, 1<<18), bursts(rng, 60, 120, 1<<18),
	}})
	return cases
}

// bursts generates nRuns runs of up to runLen consecutive IDs below max.
func bursts(rng *xhash.RNG, nRuns, runLen int, max uint32) []uint32 {
	var out []uint32
	for i := 0; i < nRuns; i++ {
		lo := uint32(rng.Intn(int(max)))
		out = append(out, seqRange(lo, lo+uint32(1+rng.Intn(runLen)))...)
	}
	return sets.SortDedup(out)
}
