package kerneltest

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"fastintersect"
	"fastintersect/internal/compress"
	"fastintersect/internal/core"
	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

const corpusSeed = 0x517E57

// TestListKernelParity runs every public algorithm — including Auto, whose
// pick rides the calibrated cost model — over the whole corpus against the
// scalar reference. Algorithms with a set-count limit must reject wider
// inputs rather than miscompute.
func TestListKernelParity(t *testing.T) {
	for _, c := range Cases(corpusSeed) {
		want := sets.IntersectReference(c.Sets...)
		lists := make([]*fastintersect.List, len(c.Sets))
		for i, s := range c.Sets {
			l, err := fastintersect.Preprocess(s)
			if err != nil {
				t.Fatalf("%s: set %d: %v", c.Name, i, err)
			}
			lists[i] = l
		}
		for _, algo := range append([]fastintersect.Algorithm{fastintersect.Auto}, fastintersect.Algorithms()...) {
			if mx := algo.MaxSets(); mx > 0 && len(lists) > mx {
				if _, err := fastintersect.IntersectWith(algo, lists...); err == nil {
					t.Errorf("%s/%v: accepted %d sets (limit %d)", c.Name, algo, len(lists), mx)
				}
				continue
			}
			got, err := fastintersect.IntersectWith(algo, lists...)
			if err != nil {
				t.Fatalf("%s/%v: %v", c.Name, algo, err)
			}
			if !algo.Sorted() {
				sets.SortU32(got)
			}
			if !sets.Equal(got, want) {
				t.Errorf("%s/%v: %d results, want %d", c.Name, algo, len(got), len(want))
			}
		}
	}
}

// storedStrategies are every stored-intersection strategy the planner can
// emit; forcing each over every encoding combination also exercises the
// downgrade path (a strategy the shapes cannot satisfy must fall back to
// the filter chain, not miscompute).
var storedStrategies = []plan.Kernel{
	plan.KernelBitsegAnd,
	plan.KernelRGSPair,
	plan.KernelLookupProbe,
	plan.KernelFilterChain,
	plan.KernelDecodeAll,
}

// TestStoredKernelParity covers the compressed tier: every encoding
// uniformly, rotated mixed encodings, the adaptive chooser, and every
// forced strategy over both the adaptive and the uniform-bitseg layouts.
func TestStoredKernelParity(t *testing.T) {
	fam := core.NewFamily(0x517E, compress.StoredHashImages)
	mk := func(name string, set []uint32, enc compress.Encoding) *compress.Stored {
		t.Helper()
		s, err := compress.NewStored(fam, set, enc)
		if err != nil {
			t.Fatalf("%s/%v: %v", name, enc, err)
		}
		return s
	}
	for _, c := range Cases(corpusSeed) {
		want := sets.IntersectReference(c.Sets...)
		encs := compress.Encodings()
		// Uniform: all operands under the same encoding.
		for _, enc := range encs {
			ss := make([]*compress.Stored, len(c.Sets))
			for i, set := range c.Sets {
				ss[i] = mk(c.Name, set, enc)
			}
			if got := compress.IntersectStored(ss...); !sets.Equal(got, want) {
				t.Errorf("%s/uniform-%v: %d results, want %d", c.Name, enc, len(got), len(want))
			}
		}
		// Mixed: rotate encodings across operands.
		for rot := 0; rot < len(encs); rot++ {
			ss := make([]*compress.Stored, len(c.Sets))
			for i, set := range c.Sets {
				ss[i] = mk(c.Name, set, encs[(i+rot)%len(encs)])
			}
			if got := compress.IntersectStored(ss...); !sets.Equal(got, want) {
				t.Errorf("%s/mixed-rot%d: %d results, want %d", c.Name, rot, len(got), len(want))
			}
		}
		// Adaptive layout plus every forced strategy over it; then the
		// uniform bitseg layout under the same forcing (the word-parallel
		// kernel on-path, the others downgrading).
		adaptive := make([]*compress.Stored, len(c.Sets))
		allBitseg := make([]*compress.Stored, len(c.Sets))
		for i, set := range c.Sets {
			s, err := compress.NewStoredAdaptive(fam, set)
			if err != nil {
				t.Fatalf("%s: adaptive: %v", c.Name, err)
			}
			adaptive[i] = s
			allBitseg[i] = mk(c.Name, set, compress.EncBitseg)
		}
		if got := compress.IntersectStored(adaptive...); !sets.Equal(got, want) {
			t.Errorf("%s/adaptive: %d results, want %d", c.Name, len(got), len(want))
		}
		for _, strat := range storedStrategies {
			for layout, ss := range map[string][]*compress.Stored{"adaptive": adaptive, "bitseg": allBitseg} {
				if len(ss) < 2 {
					continue
				}
				if got := compress.IntersectStoredStrategy(nil, strat, ss...); !sets.Equal(got, want) {
					t.Errorf("%s/%s forced %v: %d results, want %d", c.Name, layout, strat, len(got), len(want))
				}
			}
		}
	}
}

// TestEngineParity drives the corpus through the full serving path: each
// case's sets become posting lists, the conjunction of all terms is planned
// and executed across two shards, and the merged result must equal the
// reference — for both storages crossed with both kernel policies, so the
// cost-based plans (which may pick the bitmap kernels) and the heuristic
// baseline (which never does) are held to the same answers.
func TestEngineParity(t *testing.T) {
	policies := []struct {
		name string
		pol  plan.Policy
	}{
		{"cost", plan.Policy{}},
		{"heuristic", plan.Policy{Order: plan.OrderDF, Kernels: plan.KernelsHeuristic}},
	}
	for _, storage := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, pc := range policies {
			t.Run(fmt.Sprintf("%v-%s", storage, pc.name), func(t *testing.T) {
				for _, c := range Cases(corpusSeed) {
					e := engine.New(engine.Config{Shards: 2, Storage: storage, PlanPolicy: pc.pol, NoMetrics: true})
					b := e.NewBuilder()
					terms := make([]string, len(c.Sets))
					for i, set := range c.Sets {
						terms[i] = fmt.Sprintf("t%d", i)
						if len(set) == 0 {
							continue
						}
						if err := b.AddPosting(terms[i], set); err != nil {
							t.Fatalf("%s: %v", c.Name, err)
						}
					}
					if err := e.Install(b); err != nil {
						t.Fatalf("%s: %v", c.Name, err)
					}
					res, err := e.Query(strings.Join(terms, " AND "))
					if err != nil {
						t.Fatalf("%s: %v", c.Name, err)
					}
					want := sets.IntersectReference(c.Sets...)
					if !sets.Equal(res.Docs, want) {
						t.Errorf("%s: %d results, want %d", c.Name, len(res.Docs), len(want))
					}
				}
			})
		}
	}
}

// TestCorpusWellFormed pins the generator's contract: stable under a seed,
// sorted duplicate-free sets, and the boundary families present.
func TestCorpusWellFormed(t *testing.T) {
	cases := Cases(corpusSeed)
	if len(cases) < 15 {
		t.Fatalf("corpus has only %d cases", len(cases))
	}
	names := map[string]bool{}
	for _, c := range cases {
		if names[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		if len(c.Sets) < 2 {
			t.Errorf("%s: %d sets, want ≥ 2", c.Name, len(c.Sets))
		}
		for i, s := range c.Sets {
			if err := sets.Validate(s); err != nil {
				t.Errorf("%s: set %d: %v", c.Name, i, err)
			}
		}
	}
	for _, want := range []string{"partition-threshold", "near-max", "chunk-edge-straddle", "wide-kway"} {
		if !names[want] {
			t.Errorf("missing boundary family %q", want)
		}
	}
	again := Cases(corpusSeed)
	for i := range cases {
		if cases[i].Name != again[i].Name || len(cases[i].Sets) != len(again[i].Sets) {
			t.Fatalf("corpus not deterministic at case %d", i)
		}
		for j := range cases[i].Sets {
			if !sets.Equal(cases[i].Sets[j], again[i].Sets[j]) {
				t.Fatalf("corpus not deterministic: %s set %d", cases[i].Name, j)
			}
		}
	}
}

// TestEngineParityMultiSegment re-runs the corpus through the serving path
// with the shard tier forced into its general shape: each case's sets are
// inverted into documents, most installed as the base, the rest streamed in
// as three frozen-segment batches, and a slice of documents deleted and
// re-added so every tombstone filter (base and frozen) is non-empty. The
// final visible corpus is byte-identical to the original sets, so the same
// reference intersection must come back (a) from the multi-segment tier,
// (b) after a size-tiered merge, and (c) from a fresh engine restored from a
// snapshot of the tier — the serialize→restart→parity round trip over the
// whole corpus. Runs under -race in CI's multi-segment gate.
func TestEngineParityMultiSegment(t *testing.T) {
	policies := []struct {
		name string
		pol  plan.Policy
	}{
		{"cost", plan.Policy{}},
		{"heuristic", plan.Policy{Order: plan.OrderDF, Kernels: plan.KernelsHeuristic}},
	}
	for _, storage := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, pc := range policies {
			t.Run(fmt.Sprintf("%v-%s", storage, pc.name), func(t *testing.T) {
				snapRoot := t.TempDir()
				totalFrozen := 0
				for ci, c := range Cases(corpusSeed) {
					// Invert term → postings into doc → terms.
					docTerms := map[uint32][]string{}
					terms := make([]string, len(c.Sets))
					for i, set := range c.Sets {
						terms[i] = fmt.Sprintf("t%d", i)
						for _, d := range set {
							docTerms[d] = append(docTerms[d], terms[i])
						}
					}
					docs := make([]uint32, 0, len(docTerms))
					for d := range docTerms {
						docs = append(docs, d)
					}
					sets.SortU32(docs)
					// Every 7th document (capped) arrives late, in three
					// frozen batches; the rest are the installed base.
					var late []uint32
					for i := 0; i < len(docs) && len(late) < 600; i += 7 {
						late = append(late, docs[i])
					}
					isLate := map[uint32]bool{}
					for _, d := range late {
						isLate[d] = true
					}
					cfg := engine.Config{Shards: 2, Storage: storage, PlanPolicy: pc.pol,
						MaxSegments: 2, NoMetrics: true}
					e := engine.New(cfg)
					b := e.NewBuilder()
					for _, d := range docs {
						if !isLate[d] {
							if err := b.Add(d, docTerms[d]); err != nil {
								t.Fatalf("%s: %v", c.Name, err)
							}
						}
					}
					if err := e.Install(b); err != nil {
						t.Fatalf("%s: %v", c.Name, err)
					}
					for bi := 0; bi < 3; bi++ {
						for j := bi; j < len(late); j += 3 {
							if err := e.AddDocument(late[j], docTerms[late[j]]); err != nil {
								t.Fatalf("%s: %v", c.Name, err)
							}
						}
						if err := e.FreezeActive(); err != nil {
							t.Fatalf("%s: %v", c.Name, err)
						}
					}
					// Delete and re-add every 8th document (capped): base and
					// frozen tombstone filters go non-empty, the re-added copy
					// lands in the active segment, and the visible corpus ends
					// exactly where it started.
					for i, n := 0, 0; i < len(docs) && n < 400; i, n = i+8, n+1 {
						if _, err := e.DeleteDocument(docs[i]); err != nil {
							t.Fatalf("%s: %v", c.Name, err)
						}
						if err := e.AddDocument(docs[i], docTerms[docs[i]]); err != nil {
							t.Fatalf("%s: %v", c.Name, err)
						}
					}
					totalFrozen += e.Stats().Delta.Segments
					want := sets.IntersectReference(c.Sets...)
					check := func(tag string, eng *engine.Engine) {
						t.Helper()
						res, err := eng.Query(strings.Join(terms, " AND "))
						if err != nil {
							t.Fatalf("%s/%s: %v", c.Name, tag, err)
						}
						if !sets.Equal(res.Docs, want) {
							t.Errorf("%s/%s: %d results, want %d", c.Name, tag, len(res.Docs), len(want))
						}
					}
					check("tiered", e)
					if err := e.MergeSegments(); err != nil {
						t.Fatalf("%s: merge: %v", c.Name, err)
					}
					check("merged", e)
					dir := filepath.Join(snapRoot, fmt.Sprintf("c%d", ci))
					if err := e.SaveSnapshot(dir); err != nil {
						t.Fatalf("%s: save: %v", c.Name, err)
					}
					restored := engine.New(cfg)
					if err := restored.LoadSnapshot(dir); err != nil {
						t.Fatalf("%s: load: %v", c.Name, err)
					}
					check("restored", restored)
				}
				if totalFrozen == 0 {
					t.Fatal("no case produced a frozen segment; the tier was never multi-segment")
				}
			})
		}
	}
}
