package kerneltest

import (
	"fmt"
	"strings"
	"testing"

	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/sets"
)

// TestFeedbackPerfOnly is the adaptive planner's parity gate: feedback may
// change which kernel a plan picks, never what a query returns. One engine
// pair per storage×policy cell shares the whole corpus; the feedback engine
// traces every query (TraceSample 1) on top of a deliberately mis-calibrated
// base, so corrections are learned and published mid-run — re-planning
// queries the baseline engine keeps serving from its original plans — while
// every answer from both engines must stay equal to the scalar reference.
// Runs under -race in CI's feedback gate.
func TestFeedbackPerfOnly(t *testing.T) {
	policies := []struct {
		name string
		pol  plan.Policy
	}{
		{"cost", plan.Policy{}},
		{"heuristic", plan.Policy{Order: plan.OrderDF, Kernels: plan.KernelsHeuristic}},
	}
	// Mis-calibrated anchors: the probe kernels priced 8× too cheap, so the
	// re-fit has real corrections to find.
	miscal := plan.DefaultCosts()
	miscal.GallopProbe /= 8
	miscal.HashProbe /= 8

	cases := Cases(corpusSeed)
	for _, storage := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, pc := range policies {
			t.Run(fmt.Sprintf("%v-%s", storage, pc.name), func(t *testing.T) {
				build := func(feedback bool) *engine.Engine {
					e := engine.New(engine.Config{
						Shards:       2,
						Storage:      storage,
						PlanPolicy:   pc.pol,
						PlanFeedback: feedback,
						TraceSample:  1,
						PlanCosts:    miscal,
					})
					b := e.NewBuilder()
					for ci, c := range cases {
						for i, set := range c.Sets {
							if len(set) == 0 {
								continue
							}
							if err := b.AddPosting(fmt.Sprintf("c%dt%d", ci, i), set); err != nil {
								t.Fatal(err)
							}
						}
					}
					if err := e.Install(b); err != nil {
						t.Fatal(err)
					}
					return e
				}
				on, off := build(true), build(false)

				queries := make([]string, len(cases))
				wants := make([][]uint32, len(cases))
				for ci, c := range cases {
					terms := make([]string, len(c.Sets))
					for i := range c.Sets {
						terms[i] = fmt.Sprintf("c%dt%d", ci, i)
					}
					queries[ci] = strings.Join(terms, " AND ")
					wants[ci] = sets.IntersectReference(c.Sets...)
				}
				// Enough repeats for several refit windows (one observation
				// per conjunction per query across the corpus).
				for rep := 0; rep < 20; rep++ {
					for ci := range cases {
						resOn, err := on.Query(queries[ci])
						if err != nil {
							t.Fatalf("feedback engine: %s: %v", cases[ci].Name, err)
						}
						resOff, err := off.Query(queries[ci])
						if err != nil {
							t.Fatalf("baseline engine: %s: %v", cases[ci].Name, err)
						}
						if !sets.Equal(resOn.Docs, wants[ci]) {
							t.Fatalf("rep %d: %s: feedback engine returned %d results, want %d",
								rep, cases[ci].Name, len(resOn.Docs), len(wants[ci]))
						}
						if !sets.Equal(resOff.Docs, wants[ci]) {
							t.Fatalf("rep %d: %s: baseline engine returned %d results, want %d",
								rep, cases[ci].Name, len(resOff.Docs), len(wants[ci]))
						}
					}
				}
				st := on.Stats()
				if st.FeedbackObservations == 0 {
					t.Fatal("feedback engine harvested no observations; the loop never engaged")
				}
				if st.FeedbackRefits == 0 {
					t.Fatalf("no refit after %d observations; parity was never tested against corrected plans",
						st.FeedbackObservations)
				}
			})
		}
	}
}
