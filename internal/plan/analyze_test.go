package plan

import (
	"strings"
	"testing"
)

func TestExplainAnalyze(t *testing.T) {
	st := &fakeStats{docs: 10_000, lens: map[string]int{"a": 100, "b": 2_000, "c": 500}}
	var p Plan
	Build(&p, mustParse(t, "a AND b OR c"), "(a & b) | c", st, DefaultCosts(), Policy{}, false)

	actuals := make([]OpActual, len(p.Ops))
	for i := range p.Ops {
		o := &p.Ops[i]
		switch o.Kind {
		case OpTerm:
			actuals[i] = OpActual{Execs: 1, Rows: int64(o.Rows)}
		case OpAnd:
			actuals[i] = OpActual{Execs: 1, Rows: 37, Ns: 12_000}
		case OpOr:
			actuals[i] = OpActual{Execs: 1, Rows: 520, Ns: 40_000}
		}
	}
	out := p.ExplainAnalyze(actuals)
	for _, want := range []string{
		"act_time=",
		"act_rows=37",
		"act_rows=520",
		"act_rows=100", // term operand input length
		"est_rows=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", want, out)
		}
	}
	// The OR's exclusive time is its span minus the AND child's.
	if !strings.Contains(out, "OR merge") {
		t.Fatalf("missing OR line:\n%s", out)
	}
	orLine := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "OR merge") {
			orLine = l
		}
	}
	if !strings.Contains(orLine, "act_time=28.0µs") {
		t.Errorf("OR exclusive time should be 40µs-12µs=28µs, got line %q", orLine)
	}
}

func TestExplainAnalyzeNotExecuted(t *testing.T) {
	st := &fakeStats{docs: 10_000, lens: map[string]int{"a": 100, "b": 200}}
	var p Plan
	Build(&p, mustParse(t, "a AND b"), "a & b", st, DefaultCosts(), Policy{}, false)
	actuals := make([]OpActual, len(p.Ops)) // all zero: nothing ran
	out := p.ExplainAnalyze(actuals)
	if n := strings.Count(out, "(not executed)"); n != len(p.Ops) {
		t.Fatalf("want %d '(not executed)' markers, got %d:\n%s", len(p.Ops), n, out)
	}
}

func TestExplainAnalyzeMultiExec(t *testing.T) {
	st := &fakeStats{docs: 10_000, lens: map[string]int{"a": 100, "b": 200}}
	var p Plan
	Build(&p, mustParse(t, "a AND b"), "a & b", st, DefaultCosts(), Policy{}, false)
	actuals := make([]OpActual, len(p.Ops))
	for i := range actuals {
		actuals[i] = OpActual{Execs: 4, Rows: 80, Ns: 8_000}
	}
	out := p.ExplainAnalyze(actuals)
	if !strings.Contains(out, "execs=4") {
		t.Fatalf("missing execs=4 marker:\n%s", out)
	}
}

func TestKernelCountMatchesNames(t *testing.T) {
	if KernelCount != len(kernelNames) {
		t.Fatal("KernelCount out of sync with kernelNames")
	}
	if Kernel(KernelCount-1).String() == "Kernel(?)" {
		t.Fatal("last kernel has no name")
	}
}
