package plan

import (
	"fmt"
	"strings"
)

// OpActual is what actually happened at one plan operator during an
// executed query, indexed parallel to Plan.Ops. The engine fills one per
// operator while evaluating a traced query; multi-shard executions sum the
// shards. It is the measured half of the planner feedback loop — the
// estimate half lives in Op.Rows/Op.Cost.
type OpActual struct {
	// Execs is how many times the operator ran (once per shard it was
	// evaluated on; 0 if a short-circuit skipped it).
	Execs int64
	// Rows is the total output cardinality across executions. For term
	// operands consumed inside an AND kernel pushdown this is the operand's
	// input length (the kernel never materializes per-term output).
	Rows int64
	// Ns is the total wall time across executions, inclusive of children.
	// Term operands fetched inside a parent's evaluation record 0 — their
	// time is accounted to the parent.
	Ns int64
}

// ExplainAnalyze renders the executed plan like Explain, with each
// operator's measured rows and time alongside the estimates. actuals must
// be indexed parallel to p.Ops (the engine's trace arena); operators the
// execution never reached render as "(not executed)". Reported times are
// exclusive: each operator's span minus its children's, clamped at zero,
// so the per-operator costs sum to roughly the plan total and compare
// directly against Op.Cost.
func (p *Plan) ExplainAnalyze(actuals []OpActual) string {
	var sb strings.Builder
	var totalNs int64
	for i := range actuals {
		a := &actuals[i]
		totalNs += a.Ns - p.childNs(int32(i), actuals)
	}
	fmt.Fprintf(&sb, "plan for %s (storage=%s, est_cost=%s, act_time=%s)\n",
		p.Canon, storageName(p.Stored), fmtCost(p.CostEstimate()), fmtCost(float64(totalNs)))
	p.analyzeOp(&sb, p.Root(), "", "", actuals)
	return sb.String()
}

// childNs sums the inclusive spans of i's children (term operands record 0
// themselves, so only composite kids and negations contribute).
func (p *Plan) childNs(i int32, actuals []OpActual) int64 {
	o := &p.Ops[i]
	var ns int64
	for _, t := range p.TermOps(o) {
		ns += actuals[t].Ns
	}
	for _, k := range p.KidOps(o) {
		ns += actuals[k].Ns
	}
	for _, n := range p.NegOps(o) {
		ns += actuals[n].Ns
	}
	return ns
}

func (p *Plan) analyzeOp(sb *strings.Builder, i int32, prefix, childPrefix string, actuals []OpActual) {
	o := &p.Ops[i]
	a := &actuals[i]
	sb.WriteString(prefix)
	if o.Kind == OpTerm {
		fmt.Fprintf(sb, "term %s (df=%d, %s", o.Term, o.Rows, o.Shape)
		if o.Decode {
			sb.WriteString(", decode")
		}
		sb.WriteString(")")
		writeActuals(sb, o, a, p.childNs(i, actuals))
		sb.WriteString("\n")
		return
	}
	switch o.Kind {
	case OpAnd:
		sb.WriteString("AND")
		if o.Kernel != KernelNone {
			fmt.Fprintf(sb, " kernel=%s", o.Kernel)
		}
	case OpOr:
		sb.WriteString("OR merge")
	}
	fmt.Fprintf(sb, " est_rows=%d est_cost=%s", o.Rows, fmtCost(o.Cost))
	writeActuals(sb, o, a, p.childNs(i, actuals))
	sb.WriteString("\n")

	type child struct {
		idx int32
		neg bool
	}
	var kids []child
	for _, t := range p.TermOps(o) {
		kids = append(kids, child{t, false})
	}
	for _, k := range p.KidOps(o) {
		kids = append(kids, child{k, false})
	}
	for _, n := range p.NegOps(o) {
		kids = append(kids, child{n, true})
	}
	for j, k := range kids {
		last := j == len(kids)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		pre := childPrefix + branch
		if k.neg {
			pre += "NOT "
		}
		p.analyzeOp(sb, k.idx, pre, childPrefix+cont, actuals)
	}
}

// writeActuals appends the measured half of one operator line. rows are
// averaged per execution so a 4-shard run reads on the same scale as the
// single-plan estimate; the exclusive time is the operator's own span.
func writeActuals(sb *strings.Builder, o *Op, a *OpActual, childNs int64) {
	if a.Execs == 0 {
		sb.WriteString(" (not executed)")
		return
	}
	own := a.Ns - childNs
	if own < 0 {
		own = 0
	}
	fmt.Fprintf(sb, " | act_rows=%d", a.Rows)
	if o.Kind != OpTerm || a.Ns > 0 {
		fmt.Fprintf(sb, " act_time=%s", fmtCost(float64(own)))
	}
	if a.Execs > 1 {
		fmt.Fprintf(sb, " execs=%d", a.Execs)
	}
}
