package plan

import "testing"

// FuzzParseQuery checks that Parse never panics and that the normalized
// rendering is a fixed point: it reparses successfully to the same string.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"a", "a AND b", "a OR b", "a AND NOT b", "(a OR b) AND c",
		"a b c", "NOT a", "((x))", "a AND (b OR (c AND d))", "()", "a )(",
		"AND OR NOT", "ümlaut AND 漢字", "a\tAND\nb",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		n, err := Parse(q)
		if err != nil {
			return
		}
		key := n.String()
		n2, err := Parse(key)
		if err != nil {
			t.Fatalf("normalized form %q (of %q) does not reparse: %v", key, q, err)
		}
		if n2.String() != key {
			t.Fatalf("normalization not a fixed point: %q -> %q -> %q", q, key, n2.String())
		}
	})
}

// evalMembership evaluates a (possibly un-normalized) tree against a
// synthetic membership oracle: doc d contains term t iff a hash of (t, d)
// has its low bit set. NOT is full complement within the test universe, so
// unbounded trees are evaluable here too — exactly what comparing pre- and
// post-normalization semantics needs.
func evalMembership(n Node, doc uint32) bool {
	switch n := n.(type) {
	case Term:
		h := uint32(2166136261)
		for i := 0; i < len(n); i++ {
			h = (h ^ uint32(n[i])) * 16777619
		}
		h = (h ^ doc) * 16777619
		return h&1 == 1
	case Not:
		return !evalMembership(n.Kid, doc)
	case And:
		for _, k := range n.Kids {
			if !evalMembership(k, doc) {
				return false
			}
		}
		return true
	case Or:
		for _, k := range n.Kids {
			if evalMembership(k, doc) {
				return true
			}
		}
		return false
	}
	return false
}

// FuzzNormalize checks the normalizer's two contracts on every parseable
// input: idempotence (normalize∘normalize renders identically to normalize)
// and semantics preservation (the raw parse tree and its normalized form
// select the same documents under a synthetic membership oracle).
func FuzzNormalize(f *testing.F) {
	seeds := []string{
		"a", "b AND a", "a OR b OR a", "a AND (b AND (c AND d))",
		"NOT NOT a", "NOT (a OR b)", "x AND NOT y AND NOT NOT z",
		"(a OR b) AND (b OR a)", "a a a", "a AND (b OR (c AND d)) OR e",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		raw, err := ParseTree(q)
		if err != nil {
			return
		}
		n1 := Normalize(raw)
		n2 := Normalize(n1)
		if n1.String() != n2.String() {
			t.Fatalf("normalize not idempotent: %q -> %q -> %q", q, n1.String(), n2.String())
		}
		for doc := uint32(0); doc < 64; doc++ {
			if evalMembership(raw, doc) != evalMembership(n1, doc) {
				t.Fatalf("normalize changed semantics of %q (normal form %q) at doc %d", q, n1.String(), doc)
			}
		}
	})
}
