package plan

import (
	"fmt"
	"strings"
)

// Stats is what the physical planner knows about an index: per-term
// cardinality and storage shape, and the universe size for selectivity
// estimates. The engine implements it by aggregating its shards, so one
// physical plan serves every shard of a query.
type Stats interface {
	// NumDocs is the number of live documents (0 if unknown; estimates then
	// degrade gracefully to min-based bounds).
	NumDocs() int
	// TermLen is the term's document frequency (0 for unknown terms).
	TermLen(term string) int
	// TermShape is the term's storage representation.
	TermShape(term string) Shape
}

// OpKind discriminates physical operators.
type OpKind uint8

const (
	// OpTerm fetches one posting list (decoding it if Decode is set).
	OpTerm OpKind = iota
	// OpAnd intersects its ordered term operands with Kernel, then its
	// composite kids ascending by estimated size, then subtracts its
	// negated kids.
	OpAnd
	// OpOr unions its kids with one k-way merge.
	OpOr
)

// span references a range of p.idx — the arena holding every operator's
// child lists, so plans recycle without per-node slice allocations.
type span struct{ off, n int32 }

// Op is one physical operator. Operators are stored post-order in
// Plan.Ops; children always precede parents.
type Op struct {
	Kind   OpKind
	Kernel Kernel // OpAnd with ≥ 2 term operands: the chosen kernel
	Shape  Shape  // OpTerm: storage representation
	Decode bool   // OpTerm: stored list must be decoded (memoized) vs aliased
	Term   string // OpTerm
	// Rows is the operator's estimated output cardinality: the df for
	// OpTerm, a selectivity estimate for composites.
	Rows int
	// Cost is the operator's own estimated ns (children not included).
	Cost float64

	terms span // OpAnd: ordered OpTerm children (the kernel pushdown)
	kids  span // OpAnd: composite positive children; OpOr: all children
	negs  span // OpAnd: negated children (the subtree under each NOT)
}

// Plan is a pooled physical plan: a post-order operator arena plus the
// child-index arena. Build fills it without allocating once the backing
// slices have grown to a query's size, which keeps planning off the
// per-query allocation budget.
type Plan struct {
	// Canon is the canonical (normalized) query string the plan was built
	// from — the same string the result cache keys on.
	Canon string
	// Stored reports whether term operands are compressed stored lists
	// (invindex.StorageCompressed) rather than preprocessed raw lists.
	Stored bool
	// Policy the plan was built under.
	Policy Policy
	// Ops holds the operators post-order; the root is Ops[len(Ops)-1].
	Ops []Op

	idx []int32 // child-index arena, referenced by spans
	tmp []int32 // build-time child stack
	buf []int   // scratch sizes for kernel choice
	ops []Operand
}

// Root returns the root operator's index.
func (p *Plan) Root() int32 { return int32(len(p.Ops) - 1) }

// TermOps returns o's ordered term-operand indexes (OpAnd).
func (p *Plan) TermOps(o *Op) []int32 { return p.idx[o.terms.off : o.terms.off+o.terms.n] }

// KidOps returns o's composite child indexes (OpAnd positives, OpOr kids).
func (p *Plan) KidOps(o *Op) []int32 { return p.idx[o.kids.off : o.kids.off+o.kids.n] }

// NegOps returns o's negated child indexes (OpAnd).
func (p *Plan) NegOps(o *Op) []int32 { return p.idx[o.negs.off : o.negs.off+o.negs.n] }

// Reset clears the plan for reuse, keeping capacity.
func (p *Plan) Reset() {
	p.Canon = ""
	p.Ops = p.Ops[:0]
	p.idx = p.idx[:0]
	p.tmp = p.tmp[:0]
}

// Build lowers a normalized, bounded logical tree to a physical plan
// against the given index statistics: term operands of every conjunction
// are ordered per pol.Order, kernels chosen per pol.Kernels through the
// cost model, and stored terms get their decode-vs-probe decision. The
// plan is rebuilt in place (dst is reset first) and returned.
func Build(dst *Plan, n Node, canon string, st Stats, c *Costs, pol Policy, stored bool) *Plan {
	dst.Reset()
	dst.Canon = canon
	dst.Stored = stored
	dst.Policy = pol
	b := builder{p: dst, st: st, c: c, pol: pol, stored: stored}
	b.build(n)
	return dst
}

type builder struct {
	p      *Plan
	st     Stats
	c      *Costs
	pol    Policy
	stored bool
}

// emit appends op and returns its index.
func (b *builder) emit(op Op) int32 {
	b.p.Ops = append(b.p.Ops, op)
	return int32(len(b.p.Ops) - 1)
}

// seal copies the child indexes pushed since mark into the arena and
// returns their span.
func (b *builder) seal(mark int) span {
	s := span{off: int32(len(b.p.idx)), n: int32(len(b.p.tmp) - mark)}
	b.p.idx = append(b.p.idx, b.p.tmp[mark:]...)
	b.p.tmp = b.p.tmp[:mark]
	return s
}

func (b *builder) build(n Node) int32 {
	switch n := n.(type) {
	case Term:
		return b.buildTerm(n)
	case Or:
		return b.buildOr(n)
	case And:
		return b.buildAnd(n)
	case Not:
		// Unreachable for bounded trees: negations are lowered by buildAnd.
		return b.build(n.Kid)
	}
	panic(fmt.Sprintf("plan: unknown node %T", n))
}

func (b *builder) buildTerm(t Term) int32 {
	term := string(t)
	df := b.st.TermLen(term)
	shape := ShapeList
	if b.stored {
		shape = b.st.TermShape(term)
	}
	op := Op{Kind: OpTerm, Shape: shape, Term: term, Rows: df}
	if b.stored && shape != ShapeRawStored {
		// A compressed list referenced outside a kernel pushdown must be
		// materialized; raw stored lists alias their payload for free.
		op.Decode = true
		op.Cost = decodeCost(b.c, Operand{Len: df, Shape: shape})
	}
	return b.emit(op)
}

func (b *builder) buildOr(n Or) int32 {
	mark := len(b.p.tmp)
	total := 0
	for _, k := range n.Kids {
		ci := b.build(k)
		b.p.tmp = append(b.p.tmp, ci)
		total += b.p.Ops[ci].Rows
	}
	kids := b.seal(mark)
	rows := total
	if u := b.st.NumDocs(); u > 0 && rows > u {
		rows = u
	}
	op := Op{Kind: OpOr, Rows: rows, Cost: b.c.Scan * float64(total)}
	op.kids = kids
	return b.emit(op)
}

func (b *builder) buildAnd(n And) int32 {
	p := b.p
	termMark := len(p.tmp)
	// Term operands first: they form the kernel pushdown.
	for _, k := range n.Kids {
		if t, ok := k.(Term); ok {
			p.tmp = append(p.tmp, b.buildTerm(t))
		}
	}
	b.orderByRows(p.tmp[termMark:], b.pol.Order)
	terms := b.seal(termMark)

	kidMark := len(p.tmp)
	for _, k := range n.Kids {
		switch k.(type) {
		case Term, Not:
		default:
			p.tmp = append(p.tmp, b.build(k))
		}
	}
	if b.pol.Order == OrderCost {
		// Cheapest composite first: an empty kid short-circuits the rest.
		b.orderByRows(p.tmp[kidMark:], OrderCost)
	}
	kids := b.seal(kidMark)

	negMark := len(p.tmp)
	for _, k := range n.Kids {
		if nk, ok := k.(Not); ok {
			p.tmp = append(p.tmp, b.build(nk.Kid))
		}
	}
	negs := b.seal(negMark)

	op := Op{Kind: OpAnd, Kernel: KernelNone}
	op.terms, op.kids, op.negs = terms, kids, negs

	// Kernel choice and estimates over the ordered term operands.
	u := b.st.NumDocs()
	rows, haveRows := 0, false
	if terms.n > 0 {
		p.ops = p.ops[:0]
		p.buf = p.buf[:0]
		for _, ti := range p.TermOps(&op) {
			to := &p.Ops[ti]
			p.buf = append(p.buf, to.Rows)
			// The planner knows no per-term extent, so the universe stands in
			// as every operand's span; the engine re-prices per shard with the
			// real spans.
			p.ops = append(p.ops, Operand{Len: to.Rows, Shape: to.Shape, Span: u})
		}
		if terms.n >= 2 {
			if b.stored {
				op.Kernel = ChooseStored(b.c, b.pol.Kernels, p.ops)
				op.Cost = storedCost(b.c, op.Kernel, p.ops)
				// Inside the pushdown the strategy decides who decodes: the
				// probe side for the chains, everyone for DecodeAll, no one
				// for the all-compressed kernels.
				for j, ti := range p.TermOps(&op) {
					switch op.Kernel {
					case KernelFilterChain, KernelLookupProbe:
						p.Ops[ti].Decode = j == 0 && p.Ops[ti].Shape != ShapeRawStored
					case KernelDecodeAll:
						p.Ops[ti].Decode = p.Ops[ti].Shape != ShapeRawStored
					default:
						p.Ops[ti].Decode = false
					}
				}
			} else {
				op.Kernel = ChooseListKernel(b.c, b.pol.Kernels, p.buf, u)
				op.Cost = listKernelCost(b.c, op.Kernel, p.buf, u)
			}
		}
		rows, haveRows = estAnd(p.buf, u), true
	}
	for _, ki := range p.KidOps(&op) {
		kr := p.Ops[ki].Rows
		if !haveRows {
			rows, haveRows = kr, true
			continue
		}
		rows = shrink(rows, kr, u)
		op.Cost += b.c.Scan * float64(min32(rows, kr)+kr)
	}
	op.Rows = rows
	for _, ni := range p.NegOps(&op) {
		op.Cost += b.c.Scan * float64(rows+p.Ops[ni].Rows)
	}
	return b.emit(op)
}

// orderByRows sorts operand indexes by estimated cardinality in place — a
// stable insertion sort, since operand lists are small and the hot path
// must not allocate (a sort-func closure would).
func (b *builder) orderByRows(idxs []int32, ord Order) {
	ops := b.p.Ops
	desc := ord == OrderWorst // OrderCost and OrderDF both ascend
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0; j-- {
			before := ops[idxs[j]].Rows < ops[idxs[j-1]].Rows
			if desc {
				before = ops[idxs[j]].Rows > ops[idxs[j-1]].Rows
			}
			if !before {
				break
			}
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
}

// estAnd estimates a conjunction's cardinality from its operand sizes under
// independence — U·Π(nᵢ/U) — capped at the smallest operand.
func estAnd(sizes []int, u int) int {
	minN := sizes[0]
	for _, n := range sizes {
		if n < minN {
			minN = n
		}
	}
	if u <= 0 {
		return minN
	}
	est := float64(u)
	for _, n := range sizes {
		est *= float64(n) / float64(u)
	}
	if int(est) < minN {
		return int(est)
	}
	return minN
}

// shrink folds one more conjunct of size n into the running estimate est
// under independence, capped at min(est, n).
func shrink(est, n, u int) int {
	if n < est {
		est, n = n, est
	}
	if u <= 0 {
		return est
	}
	if r := int(float64(est) * float64(n) / float64(u)); r < est {
		return r
	}
	return est
}

func min32(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CostEstimate returns the plan's total estimated ns (the sum over all
// operators).
func (p *Plan) CostEstimate() float64 {
	var total float64
	for i := range p.Ops {
		total += p.Ops[i].Cost
	}
	return total
}

// Explain renders the physical plan as an indented operator tree: one line
// per operator with its kernel, ordered operands, storage shapes, and
// cardinality/cost estimates — the form fsiserve returns for explain=1 and
// fsi -explain prints.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for %s (storage=%s, est_cost=%s)\n",
		p.Canon, storageName(p.Stored), fmtCost(p.CostEstimate()))
	p.explainOp(&sb, p.Root(), "", "")
	return sb.String()
}

func storageName(stored bool) string {
	if stored {
		return "compressed"
	}
	return "raw"
}

func fmtCost(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func (p *Plan) explainOp(sb *strings.Builder, i int32, prefix, childPrefix string) {
	o := &p.Ops[i]
	sb.WriteString(prefix)
	switch o.Kind {
	case OpTerm:
		fmt.Fprintf(sb, "term %s (df=%d, %s", o.Term, o.Rows, o.Shape)
		if o.Decode {
			sb.WriteString(", decode")
		}
		sb.WriteString(")\n")
		return
	case OpAnd:
		sb.WriteString("AND")
		if o.Kernel != KernelNone {
			fmt.Fprintf(sb, " kernel=%s", o.Kernel)
		}
	case OpOr:
		sb.WriteString("OR merge")
	}
	fmt.Fprintf(sb, " est_rows=%d est_cost=%s\n", o.Rows, fmtCost(o.Cost))

	type child struct {
		idx int32
		neg bool
	}
	var kids []child
	for _, t := range p.TermOps(o) {
		kids = append(kids, child{t, false})
	}
	for _, k := range p.KidOps(o) {
		kids = append(kids, child{k, false})
	}
	for _, n := range p.NegOps(o) {
		kids = append(kids, child{n, true})
	}
	for j, k := range kids {
		last := j == len(kids)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		pre := childPrefix + branch
		if k.neg {
			pre += "NOT "
		}
		p.explainOp(sb, k.idx, pre, childPrefix+cont)
	}
}
