package plan

import (
	"strings"
	"testing"
)

// fakeStats is a hand-set statistics source for planner tests.
type fakeStats struct {
	docs   int
	lens   map[string]int
	shapes map[string]Shape
}

func (f *fakeStats) NumDocs() int         { return f.docs }
func (f *fakeStats) TermLen(t string) int { return f.lens[t] }
func (f *fakeStats) TermShape(t string) Shape {
	if s, ok := f.shapes[t]; ok {
		return s
	}
	return ShapeRawStored
}

func mustParse(t *testing.T, q string) Node {
	t.Helper()
	n, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return n
}

func TestChooseListKernel(t *testing.T) {
	c := DefaultCosts()
	cases := []struct {
		name  string
		sizes []int
		span  int
		want  Kernel
	}{
		{"balanced", []int{50_000, 60_000}, 0, KernelGroupScan},
		{"heavy-skew", []int{10, 100_000}, 0, KernelGallop},
		{"empty-operand", []int{0, 5_000}, 0, KernelMerge},
		// Dense over a known universe: the word-parallel tier wins.
		{"dense-span", []int{50_000, 60_000}, 100_000, KernelBitsegAnd},
		// Sparse lists over the same universe still pay full chunk ANDs —
		// the scalar group scan stays cheaper.
		{"sparse-span", []int{1_000, 1_200}, 100_000, KernelGroupScan},
		// Heavy skew: galloping beats even the bitmap walk.
		{"skew-span", []int{10, 100_000}, 100_000, KernelGallop},
	}
	for _, tc := range cases {
		if got := ChooseListKernel(c, KernelsCost, tc.sizes, tc.span); got != tc.want {
			t.Errorf("%s: ChooseListKernel(%v, span=%d) = %v, want %v", tc.name, tc.sizes, tc.span, got, tc.want)
		}
	}
	// The heuristic policy reproduces the Auto skew rule exactly — and never
	// picks the bitmap tier, keeping the baseline policy pre-bitseg.
	if got := ChooseListKernel(c, KernelsHeuristic, []int{100, 100 * heuristicSkew}, 100_000); got != KernelHashBin {
		t.Errorf("heuristic at threshold = %v, want HashBin", got)
	}
	if got := ChooseListKernel(c, KernelsHeuristic, []int{100, 100*heuristicSkew - 1}, 100_000); got != KernelGroupScan {
		t.Errorf("heuristic below threshold = %v, want GroupScan", got)
	}
	if got := ChooseListKernel(c, KernelsHeuristic, []int{50_000, 60_000}, 100_000); got != KernelGroupScan {
		t.Errorf("heuristic dense = %v, want GroupScan (bitseg is cost-model-only)", got)
	}
}

func TestChooseStored(t *testing.T) {
	c := DefaultCosts()
	lowPair := []Operand{{Len: 1000, Shape: ShapeLowbits}, {Len: 1200, Shape: ShapeLowbits}}
	if got := ChooseStored(c, KernelsCost, lowPair); got != KernelRGSPair {
		t.Errorf("lowbits pair = %v, want RGSPair", got)
	}
	gammas := []Operand{{Len: 500, Shape: ShapeGamma}, {Len: 5000, Shape: ShapeDelta}, {Len: 9000, Shape: ShapeGamma}}
	if got := ChooseStored(c, KernelsCost, gammas); got != KernelLookupProbe {
		t.Errorf("all-γ/δ = %v, want LookupProbe", got)
	}
	mixed := []Operand{{Len: 500, Shape: ShapeRawStored}, {Len: 5000, Shape: ShapeGamma}}
	if got := ChooseStored(c, KernelsHeuristic, mixed); got != KernelFilterChain {
		t.Errorf("heuristic mixed = %v, want FilterChain", got)
	}
	if got := ChooseStored(c, KernelsCost, mixed); got != KernelFilterChain && got != KernelDecodeAll {
		t.Errorf("cost mixed = %v, want a chain/decode strategy", got)
	}
	// All-bitseg dense operands run the k-way word kernel in place.
	bsegs := []Operand{
		{Len: 50_000, Shape: ShapeBitseg, Span: 100_000},
		{Len: 60_000, Shape: ShapeBitseg, Span: 100_000},
	}
	if got := ChooseStored(c, KernelsCost, bsegs); got != KernelBitsegAnd {
		t.Errorf("dense bitseg pair = %v, want BitsegAnd", got)
	}
	if got := ChooseStored(c, KernelsHeuristic, bsegs); got != KernelFilterChain {
		t.Errorf("heuristic bitseg pair = %v, want FilterChain (bitseg is cost-model-only)", got)
	}
	// Without a span the bitmap strategy is never considered.
	noSpan := []Operand{{Len: 50_000, Shape: ShapeBitseg}, {Len: 60_000, Shape: ShapeBitseg}}
	if got := ChooseStored(c, KernelsCost, noSpan); got == KernelBitsegAnd {
		t.Error("span-less bitseg operands chose BitsegAnd")
	}
}

func TestChoosePair(t *testing.T) {
	c := DefaultCosts()
	if got := ChoosePair(c, KernelsCost, 5, 1_000_000); got != KernelGallop {
		t.Errorf("5 vs 1M = %v, want Gallop", got)
	}
	if got := ChoosePair(c, KernelsCost, 40_000, 50_000); got != KernelMerge {
		t.Errorf("balanced = %v, want Merge", got)
	}
	if got := ChoosePair(c, KernelsHeuristic, 5, 1_000_000); got != KernelMerge {
		t.Errorf("heuristic = %v, want Merge (the pre-planner behavior)", got)
	}
}

// termOrder extracts the term names of the root conjunction in plan order.
func termOrder(p *Plan) []string {
	root := &p.Ops[p.Root()]
	var out []string
	for _, ti := range p.TermOps(root) {
		out = append(out, p.Ops[ti].Term)
	}
	return out
}

func TestBuildOrdering(t *testing.T) {
	st := &fakeStats{docs: 100_000, lens: map[string]int{"a": 1000, "b": 10, "c": 100}}
	n := mustParse(t, "a AND b AND c")
	c := DefaultCosts()

	var p Plan
	Build(&p, n, n.String(), st, c, Policy{Order: OrderCost}, false)
	if got := termOrder(&p); got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Errorf("OrderCost = %v, want [b c a]", got)
	}
	Build(&p, n, n.String(), st, c, Policy{Order: OrderWorst}, false)
	if got := termOrder(&p); got[0] != "a" || got[1] != "c" || got[2] != "b" {
		t.Errorf("OrderWorst = %v, want [a c b]", got)
	}
}

func TestBuildEstimates(t *testing.T) {
	st := &fakeStats{docs: 10_000, lens: map[string]int{"a": 1000, "b": 100}}
	n := mustParse(t, "a AND b")
	var p Plan
	Build(&p, n, n.String(), st, DefaultCosts(), Policy{}, false)
	root := &p.Ops[p.Root()]
	// Independence: 10000 · (1000/10000) · (100/10000) = 10.
	if root.Rows != 10 {
		t.Errorf("AND est_rows = %d, want 10", root.Rows)
	}
	n = mustParse(t, "a OR b")
	Build(&p, n, n.String(), st, DefaultCosts(), Policy{}, false)
	if root := &p.Ops[p.Root()]; root.Rows != 1100 {
		t.Errorf("OR est_rows = %d, want 1100", root.Rows)
	}
}

func TestBuildStoredDecodeFlags(t *testing.T) {
	st := &fakeStats{
		docs:   100_000,
		lens:   map[string]int{"g1": 200, "g2": 5000},
		shapes: map[string]Shape{"g1": ShapeGamma, "g2": ShapeGamma},
	}
	n := mustParse(t, "g1 AND g2")
	var p Plan
	Build(&p, n, n.String(), st, DefaultCosts(), Policy{}, true)
	root := &p.Ops[p.Root()]
	if root.Kernel != KernelLookupProbe && root.Kernel != KernelFilterChain && root.Kernel != KernelDecodeAll {
		t.Fatalf("stored kernel = %v, want a stored strategy", root.Kernel)
	}
	terms := p.TermOps(root)
	if p.Ops[terms[0]].Term != "g1" {
		t.Fatalf("probe side = %q, want g1 (the smaller list)", p.Ops[terms[0]].Term)
	}
	if root.Kernel != KernelDecodeAll && p.Ops[terms[1]].Decode {
		t.Errorf("probed operand marked decode under %v", root.Kernel)
	}
}

func TestExplain(t *testing.T) {
	st := &fakeStats{docs: 100_000, lens: map[string]int{"a": 50, "b": 40_000, "c": 100, "d": 60}}
	n := mustParse(t, "a AND b AND (c OR d) AND NOT c")
	var p Plan
	Build(&p, n, n.String(), st, DefaultCosts(), Policy{}, false)
	out := p.Explain()
	for _, want := range []string{
		"plan for", "AND kernel=", "OR merge", "NOT ",
		"term a (df=50, list)", "term b (df=40000, list)", "est_rows=", "est_cost=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
}

// TestBuildAllocs pins the planner's hot-path contract: once a pooled plan
// has grown to a query's size, rebuilding it allocates nothing — plan
// construction rides the per-query allocation budget for free.
func TestBuildAllocs(t *testing.T) {
	st := &fakeStats{docs: 100_000, lens: map[string]int{
		"a": 1000, "b": 10, "c": 100, "d": 40_000, "e": 7,
	}}
	n := mustParse(t, "a AND b AND (c OR d OR (a AND e)) AND NOT e")
	key := n.String()
	c := DefaultCosts()
	var p Plan
	Build(&p, n, key, st, c, Policy{}, false) // warm the arenas
	allocs := testing.AllocsPerRun(100, func() {
		Build(&p, n, key, st, c, Policy{}, false)
	})
	if allocs != 0 {
		t.Errorf("Build allocates %.1f times per op, want 0", allocs)
	}
}
