// Package plan is the engine's query planner: the logical AND/OR/NOT tree
// and its normalizer (the canonical form the result cache keys on), a
// calibrated cost model over the paper's intersection kernels, and a
// physical planner that lowers a normalized tree to explicit operators —
// kernel choice, operand order, decode-vs-stored decisions — shared by the
// raw, compressed and delta-segment execution paths.
//
// The package is deliberately a leaf: it knows set sizes and storage shapes
// (Operand), not posting lists, so internal/engine and internal/compress can
// both consult the same cost model without an import cycle. Calibration
// (cost.go) measures the per-element price of the primitive operations the
// kernels are built from via internal/core's cost hooks.
package plan

import (
	"errors"
	"fmt"
	"slices"
	"strings"
)

// The query language:
//
//	query   := or
//	or      := and ( "OR" and )*
//	and     := unary ( "AND"? unary )*          // adjacency is implicit AND
//	unary   := "NOT" unary | term | "(" query ")"
//
// Keywords are case-insensitive; terms are any other whitespace- and
// paren-free token and are matched case-sensitively against the index.
// Every query must select a bounded set: "NOT a" alone (or "a OR NOT b")
// is rejected because its result is the complement of a posting list.

// Node is a parsed query expression. Its String method renders the
// normalized form used as the cache key.
type Node interface {
	String() string
}

// Composite nodes memoize their canonical rendering: Normalize fills str
// bottom-up, so the sorts inside normalization and the cache-key render
// reuse one string per node instead of re-rendering per comparison (the
// parser's dominant allocation cost before memoization).

// Term is a leaf: one index term.
type Term string

// Not negates its child. After Parse it appears only as a direct operand of
// an And that also has a positive operand (see Bounded).
type Not struct {
	Kid Node
	str string
}

// And is a conjunction. After Parse its operands are flattened, sorted and
// deduplicated.
type And struct {
	Kids []Node
	str  string
}

// Or is a disjunction. After Parse its operands are flattened, sorted and
// deduplicated.
type Or struct {
	Kids []Node
	str  string
}

func (t Term) String() string { return string(t) }

func (n Not) String() string {
	if n.str != "" {
		return n.str
	}
	return "(NOT " + n.Kid.String() + ")"
}

func (n And) String() string {
	if n.str != "" {
		return n.str
	}
	return joinKids(n.Kids, " AND ")
}

func (n Or) String() string {
	if n.str != "" {
		return n.str
	}
	return joinKids(n.Kids, " OR ")
}

func joinKids(kids []Node, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Parse errors.
var (
	ErrEmptyQuery = errors.New("plan: empty query")
	// ErrUnbounded rejects queries whose result is the complement of a
	// posting set (e.g. "NOT a", "a OR NOT b", "a AND (b OR NOT c)"):
	// evaluating them would require materializing the whole document
	// universe. NOT is only valid as a direct operand of a conjunction that
	// also has a positive operand.
	ErrUnbounded = errors.New("plan: query selects an unbounded set; NOT is only valid inside a conjunction with a positive term (e.g. \"a AND NOT b\")")
)

// SyntaxError reports a malformed query together with the byte offset of
// the offending token, so callers (e.g. fsiserve's 400 responses) can point
// at the position in the original query string.
type SyntaxError struct {
	Pos int    // byte offset into the query string
	Msg string // what was wrong at that offset
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("plan: syntax error at offset %d: %s", e.Pos, e.Msg)
}

type tokKind int

const (
	tokTerm tokKind = iota
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset of the token's first byte
}

func lex(q string) []token {
	var toks []token
	i := 0
	for i < len(q) {
		c := q[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		default:
			start := i
			for i < len(q) && !strings.ContainsRune(" \t\n\r()", rune(q[i])) {
				i++
			}
			word := q[start:i]
			switch {
			case strings.EqualFold(word, "AND"):
				toks = append(toks, token{tokAnd, word, start})
			case strings.EqualFold(word, "OR"):
				toks = append(toks, token{tokOr, word, start})
			case strings.EqualFold(word, "NOT"):
				toks = append(toks, token{tokNot, word, start})
			default:
				toks = append(toks, token{tokTerm, word, start})
			}
		}
	}
	return toks
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() (token, bool) {
	if p.i < len(p.toks) {
		return p.toks[p.i], true
	}
	return token{}, false
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.i++
	}
	return t, ok
}

// Parse parses, normalizes and validates a query. The returned Node's
// String is the canonical cache key: AND/OR operands are flattened, sorted
// and deduplicated, and double negations are eliminated, so semantically
// identical queries share a cache entry.
func Parse(q string) (Node, error) {
	n, err := ParseTree(q)
	if err != nil {
		return nil, err
	}
	n = Normalize(n)
	if !Bounded(n) {
		return nil, ErrUnbounded
	}
	return n, nil
}

// ParseTree parses a query into its raw (un-normalized, un-validated)
// logical tree. Most callers want Parse; ParseTree exists so the normalizer
// can be tested and fuzzed against the tree the grammar actually produced.
func ParseTree(q string) (Node, error) {
	toks := lex(q)
	if len(toks) == 0 {
		return nil, ErrEmptyQuery
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok {
		return nil, &SyntaxError{t.pos, fmt.Sprintf("unexpected %q", t.text)}
	}
	return n, nil
}

func (p *parser) parseOr() (Node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOr {
			break
		}
		p.i++
		k, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return Or{Kids: kids}, nil
}

func (p *parser) parseAnd() (Node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch t.kind {
		case tokAnd:
			p.i++
		case tokTerm, tokNot, tokLParen:
			// adjacency: implicit AND
		default:
			if len(kids) == 1 {
				return first, nil
			}
			return And{Kids: kids}, nil
		}
		k, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return And{Kids: kids}, nil
}

func (p *parser) parseUnary() (Node, error) {
	t, ok := p.next()
	if !ok {
		end := 0
		if n := len(p.toks); n > 0 {
			end = p.toks[n-1].pos + len(p.toks[n-1].text)
		}
		return nil, &SyntaxError{end, "unexpected end of query"}
	}
	switch t.kind {
	case tokNot:
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{Kid: kid}, nil
	case tokTerm:
		return Term(t.text), nil
	case tokLParen:
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		rp, ok := p.next()
		if !ok || rp.kind != tokRParen {
			return nil, &SyntaxError{t.pos, "unclosed parenthesis"}
		}
		return n, nil
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("unexpected %q", t.text)}
	}
}

// Normalize canonicalizes an expression: nested same-operator nodes are
// flattened, operands sorted and deduplicated, single-child connectives
// collapsed, and NOT(NOT x) reduced to x. It is idempotent —
// Normalize(Normalize(n)) renders identically to Normalize(n) — and
// preserves semantics.
func Normalize(n Node) Node {
	switch n := n.(type) {
	case Term:
		return n
	case Not:
		kid := Normalize(n.Kid)
		if inner, ok := kid.(Not); ok {
			return inner.Kid
		}
		return Not{Kid: kid, str: "(NOT " + kid.String() + ")"}
	case And:
		return normalizeKids(n.Kids, true)
	case Or:
		return normalizeKids(n.Kids, false)
	}
	panic("plan: unknown node type")
}

func normalizeKids(kids []Node, isAnd bool) Node {
	var flat []Node
	for _, k := range kids {
		k = Normalize(k)
		if isAnd {
			if a, ok := k.(And); ok {
				flat = append(flat, a.Kids...)
				continue
			}
		} else {
			if o, ok := k.(Or); ok {
				flat = append(flat, o.Kids...)
				continue
			}
		}
		flat = append(flat, k)
	}
	slices.SortStableFunc(flat, func(a, b Node) int { return strings.Compare(a.String(), b.String()) })
	dedup := flat[:0]
	for i, k := range flat {
		if i > 0 && k.String() == flat[i-1].String() {
			continue
		}
		dedup = append(dedup, k)
	}
	if len(dedup) == 1 {
		return dedup[0]
	}
	if isAnd {
		return And{Kids: dedup, str: joinKids(dedup, " AND ")}
	}
	return Or{Kids: dedup, str: joinKids(dedup, " OR ")}
}

// Bounded reports whether n is evaluable as a subset of materialized
// posting lists. NOT is only allowed as a direct operand of a conjunction
// that has at least one positive operand (`a AND NOT b`), never standalone
// or under OR — anything else would require complementing over the whole
// document universe.
func Bounded(n Node) bool {
	switch n := n.(type) {
	case Term:
		return true
	case Not:
		return false
	case And:
		positive := false
		for _, k := range n.Kids {
			if nk, ok := k.(Not); ok {
				if !Bounded(nk.Kid) {
					return false
				}
				continue
			}
			if !Bounded(k) {
				return false
			}
			positive = true
		}
		return positive
	case Or:
		for _, k := range n.Kids {
			if !Bounded(k) {
				return false
			}
		}
		return true
	}
	return false
}

// Terms returns the distinct positive and negated terms referenced by n.
func Terms(n Node) []string {
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch n := n.(type) {
		case Term:
			seen[string(n)] = true
		case Not:
			walk(n.Kid)
		case And:
			for _, k := range n.Kids {
				walk(k)
			}
		case Or:
			for _, k := range n.Kids {
				walk(k)
			}
		}
	}
	walk(n)
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}
