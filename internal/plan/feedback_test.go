package plan

import (
	"math"
	"sync"
	"testing"
)

// feedObserve pushes enough identical observations through f to guarantee
// at least one refit (fbRefitEvery observations, each carrying execs execs).
func feedObserve(f *Feedback, k Kernel, estRows int, estNs float64, execs, rows, ns int64) {
	for i := 0; i < fbRefitEvery; i++ {
		f.Observe(k, estRows, estNs, execs, rows, ns)
	}
}

func TestFeedbackCorrectionConverges(t *testing.T) {
	f := NewFeedback(DefaultCosts())
	// Gallop consistently runs 8× its estimate. One refit steps the
	// correction by at most fbStepMax; iterate until it converges.
	for round := 0; round < 4; round++ {
		c := f.Correction(KernelGallop)
		feedObserve(f, KernelGallop, 100, 1000*c, 1, 100, 8000)
	}
	got := f.Correction(KernelGallop)
	if got < 7.9 || got > 8.1 {
		t.Fatalf("correction did not converge to 8: got %v", got)
	}
	if f.Refits() == 0 {
		t.Fatalf("no refit ran")
	}
	if f.Epoch() == 0 {
		t.Fatalf("epoch never bumped despite an 8× correction")
	}
	if f.Costs() == DefaultCosts() || f.Costs().Corr[KernelGallop] == 0 {
		t.Fatalf("published snapshot missing correction: %+v", f.Costs().Corr)
	}
}

func TestFeedbackClamps(t *testing.T) {
	f := NewFeedback(DefaultCosts())
	// Absurd 1000× blowup: per-refit step is clamped at fbStepMax and the
	// total correction at fbCorrMax.
	feedObserve(f, KernelHashBin, 10, 100, 1, 10, 100_000)
	if got := f.Correction(KernelHashBin); got > fbStepMax {
		t.Fatalf("single refit stepped past the clamp: %v", got)
	}
	for round := 0; round < 10; round++ {
		feedObserve(f, KernelHashBin, 10, 100, 1, 10, 100_000)
	}
	if got := f.Correction(KernelHashBin); got != fbCorrMax {
		t.Fatalf("correction should rail at %v, got %v", fbCorrMax, got)
	}
	// And the floor, on a kernel estimated far too expensive.
	for round := 0; round < 10; round++ {
		feedObserve(f, KernelMerge, 10, 1_000_000, 1, 10, 100)
	}
	if got := f.Correction(KernelMerge); got != fbCorrMin {
		t.Fatalf("correction should floor at %v, got %v", fbCorrMin, got)
	}
}

func TestFeedbackNoiseFloorAndUntouchedKernels(t *testing.T) {
	f := NewFeedback(DefaultCosts())
	// Fewer than fbMinExecs executions in the window: correction must not
	// move even though the ratio is huge. Observe fbRefitEvery times with
	// execs on a DIFFERENT kernel to trigger the refit.
	for i := 0; i < fbMinExecs-1; i++ {
		f.Observe(KernelGroupScan, 10, 100, 1, 10, 100_000)
	}
	feedObserve(f, KernelMerge, 100, 100, 1, 100, 100)
	if got := f.Correction(KernelGroupScan); got != 1 {
		t.Fatalf("noise-floor kernel moved: %v", got)
	}
	if got := f.Correction(KernelBitsegAnd); got != 1 {
		t.Fatalf("unobserved kernel moved: %v", got)
	}
}

func TestFeedbackRowsError(t *testing.T) {
	f := NewFeedback(DefaultCosts())
	// Estimated 50 rows, actually 100: relative error 0.5.
	feedObserve(f, KernelGallop, 50, 1000, 1, 100, 1000)
	got := f.RowsError()
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("rows error = %v, want 0.5", got)
	}
}

func TestFeedbackDeadband(t *testing.T) {
	f := NewFeedback(DefaultCosts())
	// Actual ≈ estimate: refits run but no snapshot publishes, so cached
	// plans are not invalidated by jitter.
	feedObserve(f, KernelGallop, 100, 1000, 1, 100, 1050)
	if f.Refits() == 0 {
		t.Fatalf("refit did not run")
	}
	if f.Epoch() != 0 {
		t.Fatalf("epoch bumped inside the deadband (corr=%v)", f.Correction(KernelGallop))
	}
}

func TestFeedbackCorrectionFlipsChoosers(t *testing.T) {
	c := DefaultCosts()
	// A shape where gallop wins by default — but by less than the fbCorrMax
	// clamp, so a railed correction can still flip it.
	if got := ChoosePair(c, KernelsCost, 1024, 65536); got != KernelGallop {
		t.Fatalf("baseline ChoosePair = %v, want Gallop", got)
	}
	c.Corr[KernelGallop] = 16
	if got := ChoosePair(c, KernelsCost, 1024, 65536); got != KernelMerge {
		t.Fatalf("corrected ChoosePair = %v, want Merge", got)
	}
	// And the list chooser: same story via ChooseListKernel.
	sizes := []int{1024, 65536}
	base := DefaultCosts()
	if got := ChooseListKernel(base, KernelsCost, sizes, 0); got == KernelMerge {
		t.Fatalf("baseline ChooseListKernel already merges; pick a different shape")
	}
	skew := DefaultCosts()
	skew.Corr[KernelGallop] = 16
	skew.Corr[KernelHashBin] = 16
	skew.Corr[KernelGroupScan] = 16
	if got := ChooseListKernel(skew, KernelsCost, sizes, 0); got != KernelMerge {
		t.Fatalf("corrected ChooseListKernel = %v, want Merge", got)
	}
	// Heuristic policy must ignore corrections entirely.
	if got := ChooseListKernel(skew, KernelsHeuristic, sizes, 0); got != ChooseListKernel(base, KernelsHeuristic, sizes, 0) {
		t.Fatalf("heuristic policy affected by corrections")
	}
}

func TestFeedbackConcurrentObserve(t *testing.T) {
	f := NewFeedback(DefaultCosts())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := Kernel(1 + g%(KernelCount-1))
			for i := 0; i < 4*fbRefitEvery; i++ {
				f.Observe(k, 100, 1000, 2, 200, 4000)
				_ = f.Costs()
				_ = f.Correction(k)
				_ = f.RowsError()
			}
		}(g)
	}
	wg.Wait()
	if f.Observations() != 8*4*fbRefitEvery {
		t.Fatalf("lost observations: %d", f.Observations())
	}
	if f.Refits() == 0 {
		t.Fatalf("no refit under concurrency")
	}
	for k := Kernel(1); int(k) < KernelCount; k++ {
		if c := f.Correction(k); c < fbCorrMin || c > fbCorrMax {
			t.Fatalf("kernel %v correction out of bounds: %v", k, c)
		}
	}
}
