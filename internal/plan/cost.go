package plan

import (
	"math"
	"sync"
	"time"

	"fastintersect/internal/core"
	"fastintersect/internal/sets"
)

// Costs are the calibrated coefficients of the cost model, in nanoseconds.
//
// The four kernel anchors are measured against the REAL kernels at a
// reference shape (4096-element lists, reference skew ratio 16), so machine
// idiosyncrasies — a slow hash unit, a vectorized merge, cache behavior —
// move the crossovers exactly as they move the kernels. The physical
// planner scales them with the paper's complexity bounds:
//
//	Merge          MergeElem · Σnᵢ
//	Gallop (SvS)   GallopProbe · n₀ · Σ max(1, log₂(2+nᵢ/n₀)/refDepth)
//	HashBin §3.4   HashProbe  · n₀ · Σ max(1, log₂(2+nᵢ/n₀)/refDepth)
//	GroupScan §3.3 GroupElem · Σnᵢ
//
// The primitive coefficients price the compressed tier's decode-vs-probe
// decisions (see storedCost). All coefficients are measured once per
// process by Calibrate; Config.PlanCosts overrides them.
type Costs struct {
	// MergeElem is the ns per element of a two-pointer linear merge.
	MergeElem float64
	// GallopProbe is the ns per probe of SvS galloping at the reference
	// skew ratio.
	GallopProbe float64
	// HashProbe is the ns per probe of HashBin's hash + per-bin search at
	// the reference skew ratio.
	HashProbe float64
	// GroupElem is the ns per element of RanGroupScan on balanced lists.
	GroupElem float64

	// Scan is the ns per element of a sequential scan (decode copy,
	// union merge step).
	Scan float64
	// Probe is the ns per binary-search halving (directory lookups).
	Probe float64
	// Hash is the ns per hash application (permutation + image hash).
	Hash float64
	// Filter is the ns per word-image containment test (the stored Lowbits
	// probe filter).
	Filter float64
	// GapDecode is the ns per element decoded from a γ/δ gap-coded bucket.
	GapDecode float64
}

// DefaultCosts returns hand-set coefficients in the measured ballpark of a
// modern x86-64/arm64 core — the fallback when calibration is skipped and
// the sanity floor/ceiling for implausible calibration readings.
func DefaultCosts() *Costs {
	return &Costs{
		MergeElem: 4.0, GallopProbe: 15.0, HashProbe: 40.0, GroupElem: 1.5,
		Scan: 0.6, Probe: 2.0, Hash: 2.0, Filter: 0.8, GapDecode: 2.5,
	}
}

// sqrtW mirrors bitword.SqrtW for the grouped kernels' 1/√w factor.
const sqrtW = 8

// storedBucket mirrors compress.DefaultStoredBucket (the paper's B = 32):
// the γ/δ probe cost decodes at most one B-sized bucket per probe.
const storedBucket = 32

// Calibration reference shape: two calibSize-element lists, and a probe
// side of calibSize/calibRatio for the skewed kernels. refDepth is the
// search depth log₂(2+calibRatio) the per-probe anchors embed.
const (
	calibSize  = 1 << 12
	calibRatio = 16
)

var refDepth = math.Log2(2 + calibRatio)

// Calibrate measures the cost coefficients by timing the actual core
// kernels (Merge, SvS galloping, HashBin, RanGroupScan) at the reference
// shape, plus internal/core's primitive hooks for the compressed tier — a
// few milliseconds, once per process. Readings that come out implausible
// (a preempted loop, structure build failure, a coarse clock) fall back to
// DefaultCosts values.
func Calibrate() *Costs {
	a := core.CalibrationSet(calibSize)
	b := core.CalibrationSetSeeded(0xCA11_DA7B, calibSize)
	small := make([]uint32, 0, calibSize/calibRatio)
	for i := 0; i < len(b); i += calibRatio {
		small = append(small, b[i])
	}
	needles := core.CalibrationSet(1 << 10)
	fam := core.NewFamily(0xCA11_B8A7E, 4) // the library's default m = 4
	img := core.CalibrationImage(fam, a)

	def := DefaultCosts()
	c := &Costs{
		Scan:      timePerOp(func() { calibrationSink += uint64(core.ScanStep(a)) }, len(a)),
		Probe:     timePerOp(func() { calibrationSink += uint64(core.ProbeStep(a, needles)) }, len(needles)*12), // log₂(4k) = 12 halvings per search
		Hash:      timePerOp(func() { calibrationSink += uint64(fam.HashStep(a)) }, len(a)),
		Filter:    timePerOp(func() { calibrationSink += uint64(fam.FilterStep(img, a)) }, len(a)),
		GapDecode: timePerOp(func() { calibrationSink += uint64(core.GapStep(a)) }, len(a)),
	}
	buf := make([]uint32, 0, calibSize)
	c.MergeElem = timePerOp(func() {
		buf = sets.IntersectInto(buf[:0], a, b)
		calibrationSink += uint64(len(buf))
	}, 2*calibSize)
	c.GallopProbe = timePerOp(func() {
		buf = sets.IntersectGallopInto(buf[:0], small, b)
		calibrationSink += uint64(len(buf))
	}, len(small))
	var sc core.Scratch
	if rgsA, err1 := core.NewRanGroupScanList(fam, a, 4); err1 == nil {
		if rgsB, err2 := core.NewRanGroupScanList(fam, b, 4); err2 == nil {
			c.GroupElem = timePerOp(func() {
				buf = core.IntersectRanGroupScanInto(buf[:0], &sc, rgsA, rgsB)
				calibrationSink += uint64(len(buf))
			}, 2*calibSize)
		}
	}
	if hbS, err1 := core.NewHashBinList(fam, small); err1 == nil {
		if hbB, err2 := core.NewHashBinList(fam, b); err2 == nil {
			c.HashProbe = timePerOp(func() {
				buf = core.IntersectHashBinInto(buf[:0], &sc, hbS, hbB)
				calibrationSink += uint64(len(buf))
			}, len(small))
		}
	}
	sanitize(&c.MergeElem, def.MergeElem)
	sanitize(&c.GallopProbe, def.GallopProbe)
	sanitize(&c.HashProbe, def.HashProbe)
	sanitize(&c.GroupElem, def.GroupElem)
	sanitize(&c.Scan, def.Scan)
	sanitize(&c.Probe, def.Probe)
	sanitize(&c.Hash, def.Hash)
	sanitize(&c.Filter, def.Filter)
	sanitize(&c.GapDecode, def.GapDecode)
	return c
}

// calibrationSink keeps the timed loops observable so the compiler cannot
// eliminate them.
var calibrationSink uint64

// sanitize replaces implausible calibration readings (≤ 0, NaN, or further
// than 50× from the reference value in either direction) with the default.
func sanitize(v *float64, def float64) {
	if !(*v > def/50 && *v < def*50) { // also catches NaN
		*v = def
	}
}

// timePerOp times f (which performs ops primitive operations per call) and
// returns the minimum observed ns per operation across a handful of runs.
func timePerOp(f func(), ops int) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		f()
		if d := float64(time.Since(start).Nanoseconds()) / float64(ops); d < best {
			best = d
		}
	}
	return best
}

var (
	calibrateOnce sync.Once
	calibrated    *Costs
)

// Calibrated returns the process-wide calibrated coefficients, measuring
// them on first use.
func Calibrated() *Costs {
	calibrateOnce.Do(func() { calibrated = Calibrate() })
	return calibrated
}

// Kernel identifies the physical operator chosen for an intersection: the
// list kernels map 1:1 onto the paper's algorithms (executed by
// fastintersect over preprocessed lists), the Stored* strategies onto the
// compressed-tier kernels of internal/compress, and Merge/Gallop double as
// the delta-segment pairwise kernels.
type Kernel uint8

const (
	// KernelNone marks operators that need no intersection kernel (a single
	// posting list, a union, a term fetch).
	KernelNone Kernel = iota
	// KernelMerge is the linear parallel scan over sorted lists.
	KernelMerge
	// KernelGallop gallops the smallest list through the others (SvS).
	KernelGallop
	// KernelHashBin is §3.4's per-bucket binary search for skewed sizes.
	KernelHashBin
	// KernelGroupScan is Algorithm 5 (§3.3), the word-image grouped scan.
	KernelGroupScan
	// KernelRGSPair runs Algorithm 5 directly over two stored Lowbits lists.
	KernelRGSPair
	// KernelLookupProbe intersects γ/δ lists through their bucket
	// directories, decoding only the buckets the smallest list occupies.
	KernelLookupProbe
	// KernelFilterChain decodes the smallest stored list once and filters it
	// through each remaining stored list in cost order.
	KernelFilterChain
	// KernelDecodeAll decodes every stored list and merges the sorted
	// results — cheapest when the lists are small and probing is expensive.
	KernelDecodeAll
)

var kernelNames = [...]string{
	"None", "Merge", "Gallop", "HashBin", "GroupScan",
	"RGSPair", "LookupProbe", "FilterChain", "DecodeAll",
}

// KernelCount is the number of kernel values, for per-kernel metric arrays.
const KernelCount = len(kernelNames)

func (k Kernel) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return "Kernel(?)"
}

// KernelPolicy selects how kernels are chosen.
type KernelPolicy uint8

const (
	// KernelsCost picks the cheapest kernel under the calibrated cost model
	// (the default).
	KernelsCost KernelPolicy = iota
	// KernelsHeuristic reproduces the pre-planner fixed rules — the Auto
	// skew-ratio switch for lists, the shape dispatch for stored lists, and
	// always-merge for pairs — as the baseline the plan-quality experiment
	// compares against.
	KernelsHeuristic
)

// Order selects how AND operands are ordered.
type Order uint8

const (
	// OrderCost orders term operands by ascending size and composite
	// operands by ascending estimated cardinality, so cheap short-circuits
	// come first (the default).
	OrderCost Order = iota
	// OrderDF orders term operands by ascending document frequency and
	// leaves composite operands in query order — the pre-planner baseline.
	OrderDF
	// OrderWorst orders term operands by DESCENDING size: the adversarial
	// ordering the plan-quality experiment uses to bound the value of
	// ordering at all.
	OrderWorst
)

// Policy bundles the planner's tunables. The zero value is the cost-based
// default; the other combinations exist for the harness's plan-quality
// experiment and for debugging.
type Policy struct {
	Order   Order
	Kernels KernelPolicy
}

// heuristicSkew mirrors fastintersect.AutoSkewThreshold for the baseline
// kernel policy.
const heuristicSkew = 100

// logRatio is log₂(2 + a/b), the recurring search-depth term.
func logRatio(a, b int) float64 {
	if b <= 0 {
		return 1
	}
	return math.Log2(2 + float64(a)/float64(b))
}

// probeDepth scales a per-probe anchor by the search depth relative to the
// calibration shape, floored at 1: shallower-than-reference searches still
// pay the anchor's fixed per-probe overhead (a near-balanced gallop steps
// by one with a search each time — it never undercuts the reference probe).
func probeDepth(n, n0 int) float64 {
	d := logRatio(n, n0) / refDepth
	if d < 1 {
		return 1
	}
	return d
}

// ChooseListKernel picks the intersection kernel for k ≥ 2 preprocessed
// lists with the given sizes (ascending order not required; only the
// multiset of sizes matters). Under KernelsHeuristic it reproduces the Auto
// rule: HashBin past the skew threshold, GroupScan otherwise.
func ChooseListKernel(c *Costs, pol KernelPolicy, sizes []int) Kernel {
	minN, maxN, total := sizes[0], sizes[0], 0
	for _, n := range sizes {
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
		total += n
	}
	if pol == KernelsHeuristic {
		if minN > 0 && maxN >= heuristicSkew*minN {
			return KernelHashBin
		}
		return KernelGroupScan
	}
	if minN == 0 {
		return KernelMerge // trivially empty; avoid touching structures
	}
	best, k := listKernelCost(c, KernelMerge, sizes), KernelMerge
	for _, cand := range [...]Kernel{KernelGallop, KernelHashBin, KernelGroupScan} {
		if cost := listKernelCost(c, cand, sizes); cost < best {
			best, k = cost, cand
		}
	}
	return k
}

// listKernelCost prices one list kernel on the given operand sizes.
func listKernelCost(c *Costs, k Kernel, sizes []int) float64 {
	minN, total := sizes[0], 0
	for _, n := range sizes {
		if n < minN {
			minN = n
		}
		total += n
	}
	var cost float64
	switch k {
	case KernelMerge:
		cost = c.MergeElem * float64(total)
	case KernelGallop, KernelHashBin:
		perProbe := c.GallopProbe
		if k == KernelHashBin {
			perProbe = c.HashProbe
		}
		probeSide := true // the smallest list probes; every other list is a partner
		for _, n := range sizes {
			if probeSide && n == minN {
				probeSide = false
				continue
			}
			cost += perProbe * float64(minN) * probeDepth(n, minN)
		}
	case KernelGroupScan:
		cost = c.GroupElem * float64(total)
	}
	return cost
}

// Shape is the storage representation of one operand, as far as the cost
// model cares: a preprocessed raw list, or one of the stored encodings.
type Shape uint8

const (
	// ShapeList is a preprocessed (uncompressed) posting list.
	ShapeList Shape = iota
	// ShapeRawStored is a stored list under the identity encoding.
	ShapeRawStored
	// ShapeGamma and ShapeDelta are gap-coded bucket directories.
	ShapeGamma
	ShapeDelta
	// ShapeLowbits is the grouped Appendix-B structure.
	ShapeLowbits
)

var shapeNames = [...]string{"list", "raw", "gamma", "delta", "lowbits"}

func (s Shape) String() string {
	if int(s) < len(shapeNames) {
		return shapeNames[s]
	}
	return "shape(?)"
}

// Operand describes one intersection operand to the stored-strategy chooser.
type Operand struct {
	Len   int
	Shape Shape
}

// decodeCost prices materializing one stored operand as sorted []uint32.
func decodeCost(c *Costs, op Operand) float64 {
	n := float64(op.Len)
	switch op.Shape {
	case ShapeGamma, ShapeDelta:
		return c.GapDecode * n
	case ShapeLowbits:
		// Group concat + inverse permutation per element, then the sort.
		return (c.Hash + c.Scan) * n * (1 + logRatio(op.Len, 4)/8)
	default:
		return c.Scan * n // copy
	}
}

// probeCost prices filtering p ascending probes through one stored operand.
func probeCost(c *Costs, op Operand, p int) float64 {
	pf := float64(p)
	switch op.Shape {
	case ShapeGamma, ShapeDelta:
		visited := op.Len
		if m := p * storedBucket; m < visited {
			visited = m
		}
		return c.GapDecode*float64(visited) + c.Scan*pf
	case ShapeLowbits:
		// Per probe: permutation + image filter, plus the occasional
		// surviving group decode (≈ √w elements for a vanishing fraction).
		return (c.Hash + c.Filter + 2*c.Scan) * pf
	default:
		return c.MergeElem * (pf + float64(op.Len)) // linear merge
	}
}

// ChooseStored picks the compressed-tier strategy for k ≥ 2 stored operands
// given in ascending length order (ops[0] is the probe side). Under
// KernelsHeuristic it reproduces the pre-planner shape dispatch.
func ChooseStored(c *Costs, pol KernelPolicy, ops []Operand) Kernel {
	allLookup := true
	for _, op := range ops {
		if op.Shape != ShapeGamma && op.Shape != ShapeDelta {
			allLookup = false
			break
		}
	}
	pairRGS := len(ops) == 2 && ops[0].Shape == ShapeLowbits && ops[1].Shape == ShapeLowbits
	if pol == KernelsHeuristic {
		switch {
		case pairRGS:
			return KernelRGSPair
		case allLookup:
			return KernelLookupProbe
		default:
			return KernelFilterChain
		}
	}
	n0 := ops[0].Len
	chain := decodeCost(c, ops[0])
	decodeAll := decodeCost(c, ops[0])
	for _, op := range ops[1:] {
		chain += probeCost(c, op, n0)
		decodeAll += decodeCost(c, op) + c.MergeElem*float64(op.Len+n0)
	}
	best, k := chain, KernelFilterChain
	if decodeAll < best {
		best, k = decodeAll, KernelDecodeAll
	}
	if allLookup && chain <= best {
		// Same bucket probes as the chain, but consecutive probes share
		// bucket decodes; prefer it on ties.
		best, k = chain, KernelLookupProbe
	}
	if pairRGS {
		// The stored RGS kernel is the calibrated group scan plus the final
		// result sort (the groups emit permutation order).
		total := float64(ops[0].Len + ops[1].Len)
		rgs := c.GroupElem*total + c.Probe*float64(n0)
		if rgs < best {
			k = KernelRGSPair
		}
	}
	return k
}

// storedCost prices the chosen strategy for Explain.
func storedCost(c *Costs, k Kernel, ops []Operand) float64 {
	if len(ops) == 0 {
		return 0
	}
	n0 := ops[0].Len
	switch k {
	case KernelRGSPair:
		total := float64(ops[0].Len + ops[1].Len)
		return c.GroupElem*total + c.Probe*float64(n0)
	case KernelDecodeAll:
		cost := decodeCost(c, ops[0])
		for _, op := range ops[1:] {
			cost += decodeCost(c, op) + c.MergeElem*float64(op.Len+n0)
		}
		return cost
	default: // FilterChain, LookupProbe
		cost := decodeCost(c, ops[0])
		for _, op := range ops[1:] {
			cost += probeCost(c, op, n0)
		}
		return cost
	}
}

// ChoosePair picks merge vs gallop for one pairwise sorted-set operation
// (the delta-segment evaluator and the composite-result intersections):
// galloping wins once the size ratio covers its per-probe overhead. Under
// KernelsHeuristic it always merges (the pre-planner behavior).
func ChoosePair(c *Costs, pol KernelPolicy, small, large int) Kernel {
	if pol == KernelsHeuristic {
		return KernelMerge
	}
	if small > large {
		small, large = large, small
	}
	merge := c.MergeElem * float64(small+large)
	gallop := c.GallopProbe * float64(small) * probeDepth(large, small)
	if gallop < merge {
		return KernelGallop
	}
	return KernelMerge
}
