package plan

import (
	"math"
	"sync"
	"time"

	"fastintersect/internal/bitseg"
	"fastintersect/internal/core"
	"fastintersect/internal/sets"
)

// Costs are the calibrated coefficients of the cost model, in nanoseconds.
//
// The five kernel anchors are measured against the REAL kernels at a
// reference shape (4096-element lists, reference skew ratio 16), so machine
// idiosyncrasies — a slow hash unit, a vectorized merge, cache behavior —
// move the crossovers exactly as they move the kernels. The physical
// planner scales them with the paper's complexity bounds:
//
//	Merge          MergeElem · Σnᵢ
//	Gallop (SvS)   GallopProbe · n₀ · Σ max(1, log₂(2+nᵢ/n₀)/refDepth)
//	HashBin §3.4   HashProbe  · n₀ · Σ max(1, log₂(2+nᵢ/n₀)/refDepth)
//	GroupScan §3.3 GroupElem · Σnᵢ
//	BitsegAnd      BitsegWord · 64 words · E[aligned chunks] · (k−1) + Scan · E[|out|]
//
// The primitive coefficients price the compressed tier's decode-vs-probe
// decisions (see storedCost). All coefficients are measured once per
// process by Calibrate; Config.PlanCosts overrides them.
type Costs struct {
	// MergeElem is the ns per element of a two-pointer linear merge.
	MergeElem float64
	// GallopProbe is the ns per probe of SvS galloping at the reference
	// skew ratio.
	GallopProbe float64
	// HashProbe is the ns per probe of HashBin's hash + per-bin search at
	// the reference skew ratio.
	HashProbe float64
	// GroupElem is the ns per element of RanGroupScan on balanced lists.
	GroupElem float64
	// BitsegWord is the ns per 64-bit word ANDed by the bitseg kernel at
	// the reference density (including its share of result enumeration).
	BitsegWord float64

	// Scan is the ns per element of a sequential scan (decode copy,
	// union merge step).
	Scan float64
	// Probe is the ns per binary-search halving (directory lookups).
	Probe float64
	// Hash is the ns per hash application (permutation + image hash).
	Hash float64
	// Filter is the ns per word-image containment test (the stored Lowbits
	// probe filter).
	Filter float64
	// GapDecode is the ns per element decoded from a γ/δ gap-coded bucket.
	GapDecode float64

	// Corr holds per-kernel multiplicative correction factors learned from
	// runtime feedback (see feedback.go): the priced cost of kernel k is
	// scaled by Corr[k] wherever the choosers compare candidates. A zero
	// entry means "no correction" (factor 1), so the zero value of Costs —
	// and every calibrated/default instance — prices exactly as before the
	// feedback loop existed. Corrections never change results, only which
	// (parity-identical) kernel wins a comparison.
	Corr [KernelCount]float64
}

// corr returns the correction factor for kernel k (1 when unset).
func (c *Costs) corr(k Kernel) float64 {
	if v := c.Corr[k]; v > 0 {
		return v
	}
	return 1
}

// DefaultCosts returns hand-set coefficients in the measured ballpark of a
// modern x86-64/arm64 core — the fallback when calibration is skipped and
// the sanity floor/ceiling for implausible calibration readings.
func DefaultCosts() *Costs {
	return &Costs{
		MergeElem: 4.0, GallopProbe: 15.0, HashProbe: 40.0, GroupElem: 1.5,
		BitsegWord: 4.0,
		Scan:       0.6, Probe: 2.0, Hash: 2.0, Filter: 0.8, GapDecode: 2.5,
	}
}

// sqrtW mirrors bitword.SqrtW for the grouped kernels' 1/√w factor.
const sqrtW = 8

// storedBucket mirrors compress.DefaultStoredBucket (the paper's B = 32):
// the γ/δ probe cost decodes at most one B-sized bucket per probe.
const storedBucket = 32

// Calibration reference shape: two calibSize-element lists, and a probe
// side of calibSize/calibRatio for the skewed kernels. refDepth is the
// search depth log₂(2+calibRatio) the per-probe anchors embed.
const (
	calibSize  = 1 << 12
	calibRatio = 16
)

var refDepth = math.Log2(2 + calibRatio)

// Calibrate measures the cost coefficients by timing the actual core
// kernels (Merge, SvS galloping, HashBin, RanGroupScan) at the reference
// shape, plus internal/core's primitive hooks for the compressed tier — a
// few milliseconds, once per process. Readings that come out implausible
// (a preempted loop, structure build failure, a coarse clock) fall back to
// DefaultCosts values.
func Calibrate() *Costs {
	a := core.CalibrationSet(calibSize)
	b := core.CalibrationSetSeeded(0xCA11_DA7B, calibSize)
	small := make([]uint32, 0, calibSize/calibRatio)
	for i := 0; i < len(b); i += calibRatio {
		small = append(small, b[i])
	}
	needles := core.CalibrationSet(1 << 10)
	fam := core.NewFamily(0xCA11_B8A7E, 4) // the library's default m = 4
	img := core.CalibrationImage(fam, a)

	def := DefaultCosts()
	c := &Costs{
		Scan:      timePerOp(func() { calibrationSink += uint64(core.ScanStep(a)) }, len(a)),
		Probe:     timePerOp(func() { calibrationSink += uint64(core.ProbeStep(a, needles)) }, len(needles)*12), // log₂(4k) = 12 halvings per search
		Hash:      timePerOp(func() { calibrationSink += uint64(fam.HashStep(a)) }, len(a)),
		Filter:    timePerOp(func() { calibrationSink += uint64(fam.FilterStep(img, a)) }, len(a)),
		GapDecode: timePerOp(func() { calibrationSink += uint64(core.GapStep(a)) }, len(a)),
	}
	buf := make([]uint32, 0, calibSize)
	c.MergeElem = timePerOp(func() {
		buf = sets.IntersectInto(buf[:0], a, b)
		calibrationSink += uint64(len(buf))
	}, 2*calibSize)
	c.GallopProbe = timePerOp(func() {
		buf = sets.IntersectGallopInto(buf[:0], small, b)
		calibrationSink += uint64(len(buf))
	}, len(small))
	var sc core.Scratch
	if rgsA, err1 := core.NewRanGroupScanList(fam, a, 4); err1 == nil {
		if rgsB, err2 := core.NewRanGroupScanList(fam, b, 4); err2 == nil {
			c.GroupElem = timePerOp(func() {
				buf = core.IntersectRanGroupScanInto(buf[:0], &sc, rgsA, rgsB)
				calibrationSink += uint64(len(buf))
			}, 2*calibSize)
		}
	}
	if hbS, err1 := core.NewHashBinList(fam, small); err1 == nil {
		if hbB, err2 := core.NewHashBinList(fam, b); err2 == nil {
			c.HashProbe = timePerOp(func() {
				buf = core.IntersectHashBinInto(buf[:0], &sc, hbS, hbB)
				calibrationSink += uint64(len(buf))
			}, len(small))
		}
	}
	if bsA, err1 := bitseg.FromSorted(a); err1 == nil {
		if bsB, err2 := bitseg.FromSorted(b); err2 == nil {
			words := bsA.Chunks()
			if bsB.Chunks() < words {
				words = bsB.Chunks()
			}
			words *= bitseg.ChunkWords
			c.BitsegWord = timePerOp(func() {
				buf = bitseg.IntersectInto(buf[:0], bsA, bsB)
				calibrationSink += uint64(len(buf))
			}, words)
		}
	}
	sanitize(&c.MergeElem, def.MergeElem)
	sanitize(&c.GallopProbe, def.GallopProbe)
	sanitize(&c.HashProbe, def.HashProbe)
	sanitize(&c.GroupElem, def.GroupElem)
	sanitize(&c.BitsegWord, def.BitsegWord)
	sanitize(&c.Scan, def.Scan)
	sanitize(&c.Probe, def.Probe)
	sanitize(&c.Hash, def.Hash)
	sanitize(&c.Filter, def.Filter)
	sanitize(&c.GapDecode, def.GapDecode)
	return c
}

// calibrationSink keeps the timed loops observable so the compiler cannot
// eliminate them.
var calibrationSink uint64

// sanitize replaces implausible calibration readings (≤ 0, NaN, or further
// than 50× from the reference value in either direction) with the default.
func sanitize(v *float64, def float64) {
	if !(*v > def/50 && *v < def*50) { // also catches NaN
		*v = def
	}
}

// timePerOp times f (which performs ops primitive operations per call) and
// returns the minimum observed ns per operation across a handful of runs.
func timePerOp(f func(), ops int) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		f()
		if d := float64(time.Since(start).Nanoseconds()) / float64(ops); d < best {
			best = d
		}
	}
	return best
}

var (
	calibrateOnce sync.Once
	calibrated    *Costs
)

// Calibrated returns the process-wide calibrated coefficients, measuring
// them on first use.
func Calibrated() *Costs {
	calibrateOnce.Do(func() { calibrated = Calibrate() })
	return calibrated
}

// Kernel identifies the physical operator chosen for an intersection: the
// list kernels map 1:1 onto the paper's algorithms (executed by
// fastintersect over preprocessed lists), the Stored* strategies onto the
// compressed-tier kernels of internal/compress, and Merge/Gallop double as
// the delta-segment pairwise kernels.
type Kernel uint8

const (
	// KernelNone marks operators that need no intersection kernel (a single
	// posting list, a union, a term fetch).
	KernelNone Kernel = iota
	// KernelMerge is the linear parallel scan over sorted lists.
	KernelMerge
	// KernelGallop gallops the smallest list through the others (SvS).
	KernelGallop
	// KernelHashBin is §3.4's per-bucket binary search for skewed sizes.
	KernelHashBin
	// KernelGroupScan is Algorithm 5 (§3.3), the word-image grouped scan.
	KernelGroupScan
	// KernelBitsegAnd is the word-parallel bitmap tier: density-partitioned
	// lists intersected 64 docIDs per AND over their dense ranges.
	KernelBitsegAnd
	// KernelRGSPair runs Algorithm 5 directly over two stored Lowbits lists.
	KernelRGSPair
	// KernelLookupProbe intersects γ/δ lists through their bucket
	// directories, decoding only the buckets the smallest list occupies.
	KernelLookupProbe
	// KernelFilterChain decodes the smallest stored list once and filters it
	// through each remaining stored list in cost order.
	KernelFilterChain
	// KernelDecodeAll decodes every stored list and merges the sorted
	// results — cheapest when the lists are small and probing is expensive.
	KernelDecodeAll
)

var kernelNames = [...]string{
	"None", "Merge", "Gallop", "HashBin", "GroupScan", "BitsegAnd",
	"RGSPair", "LookupProbe", "FilterChain", "DecodeAll",
}

// KernelCount is the number of kernel values, for per-kernel metric arrays.
const KernelCount = len(kernelNames)

func (k Kernel) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return "Kernel(?)"
}

// KernelPolicy selects how kernels are chosen.
type KernelPolicy uint8

const (
	// KernelsCost picks the cheapest kernel under the calibrated cost model
	// (the default).
	KernelsCost KernelPolicy = iota
	// KernelsHeuristic reproduces the pre-planner fixed rules — the Auto
	// skew-ratio switch for lists, the shape dispatch for stored lists, and
	// always-merge for pairs — as the baseline the plan-quality experiment
	// compares against.
	KernelsHeuristic
)

// Order selects how AND operands are ordered.
type Order uint8

const (
	// OrderCost orders term operands by ascending size and composite
	// operands by ascending estimated cardinality, so cheap short-circuits
	// come first (the default).
	OrderCost Order = iota
	// OrderDF orders term operands by ascending document frequency and
	// leaves composite operands in query order — the pre-planner baseline.
	OrderDF
	// OrderWorst orders term operands by DESCENDING size: the adversarial
	// ordering the plan-quality experiment uses to bound the value of
	// ordering at all.
	OrderWorst
)

// Policy bundles the planner's tunables. The zero value is the cost-based
// default; the other combinations exist for the harness's plan-quality
// experiment and for debugging.
type Policy struct {
	Order   Order
	Kernels KernelPolicy
}

// heuristicSkew mirrors fastintersect.AutoSkewThreshold for the baseline
// kernel policy.
const heuristicSkew = 100

// logRatio is log₂(2 + a/b), the recurring search-depth term.
func logRatio(a, b int) float64 {
	if b <= 0 {
		return 1
	}
	return math.Log2(2 + float64(a)/float64(b))
}

// probeDepth scales a per-probe anchor by the search depth relative to the
// calibration shape, floored at 1: shallower-than-reference searches still
// pay the anchor's fixed per-probe overhead (a near-balanced gallop steps
// by one with a search each time — it never undercuts the reference probe).
func probeDepth(n, n0 int) float64 {
	d := logRatio(n, n0) / refDepth
	if d < 1 {
		return 1
	}
	return d
}

// ChooseListKernel picks the intersection kernel for k ≥ 2 preprocessed
// lists with the given sizes (ascending order not required; only the
// multiset of sizes matters). span is one past the largest docID across
// the operands' shared universe (0 when unknown), which prices the bitmap
// tier; with span 0 the bitseg candidate is skipped. Under KernelsHeuristic
// it reproduces the Auto rule: HashBin past the skew threshold, GroupScan
// otherwise — the bitmap tier is a cost-model-only candidate, keeping the
// baseline policy byte-for-byte what shipped before it.
func ChooseListKernel(c *Costs, pol KernelPolicy, sizes []int, span int) Kernel {
	minN, maxN, total := sizes[0], sizes[0], 0
	for _, n := range sizes {
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
		total += n
	}
	if pol == KernelsHeuristic {
		if minN > 0 && maxN >= heuristicSkew*minN {
			return KernelHashBin
		}
		return KernelGroupScan
	}
	if minN == 0 {
		return KernelMerge // trivially empty; avoid touching structures
	}
	best, k := listKernelCost(c, KernelMerge, sizes, span), KernelMerge
	cands := [...]Kernel{KernelGallop, KernelHashBin, KernelGroupScan, KernelBitsegAnd}
	for _, cand := range cands {
		if cand == KernelBitsegAnd && span <= 0 {
			continue
		}
		if cost := listKernelCost(c, cand, sizes, span); cost < best {
			best, k = cost, cand
		}
	}
	return k
}

// bitsegCost prices the bitmap kernel: the chunk directories advance in
// lockstep, so word ANDs are paid only on chunks every operand occupies —
// chunks·Π min(1, nᵢ/chunks) in expectation under independence — and the
// enumeration pays Scan per expected output element.
func bitsegCost(c *Costs, sizes []int, span int) float64 {
	chunks := float64(span/bitseg.ChunkWidth + 1)
	aligned := chunks
	out := float64(span)
	for _, n := range sizes {
		if f := float64(n) / chunks; f < 1 {
			aligned *= f
		}
		out *= float64(n) / float64(span)
	}
	words := c.BitsegWord * bitseg.ChunkWords * aligned * float64(len(sizes)-1)
	return words + c.Scan*out
}

// listKernelCost prices one list kernel on the given operand sizes; span
// (universe extent) feeds only the bitseg candidate.
func listKernelCost(c *Costs, k Kernel, sizes []int, span int) float64 {
	minN, total := sizes[0], 0
	for _, n := range sizes {
		if n < minN {
			minN = n
		}
		total += n
	}
	var cost float64
	switch k {
	case KernelMerge:
		cost = c.MergeElem * float64(total)
	case KernelGallop, KernelHashBin:
		perProbe := c.GallopProbe
		if k == KernelHashBin {
			perProbe = c.HashProbe
		}
		probeSide := true // the smallest list probes; every other list is a partner
		for _, n := range sizes {
			if probeSide && n == minN {
				probeSide = false
				continue
			}
			cost += perProbe * float64(minN) * probeDepth(n, minN)
		}
	case KernelGroupScan:
		cost = c.GroupElem * float64(total)
	case KernelBitsegAnd:
		if span <= 0 {
			return math.Inf(1)
		}
		cost = bitsegCost(c, sizes, span)
	}
	return cost * c.corr(k)
}

// PriceListKernel prices kernel k over the operand sizes with the live
// corrections applied — the figure ChooseListKernel compared when it picked
// k. The engine uses it at execution time to pair each re-priced kernel run
// with the estimate the feedback loop should hold it to.
func PriceListKernel(c *Costs, k Kernel, sizes []int, span int) float64 {
	if len(sizes) == 0 {
		return 0
	}
	return listKernelCost(c, k, sizes, span)
}

// PriceStored is PriceListKernel for the compressed tier's strategies.
func PriceStored(c *Costs, k Kernel, ops []Operand) float64 {
	return storedCost(c, k, ops)
}

// Shape is the storage representation of one operand, as far as the cost
// model cares: a preprocessed raw list, or one of the stored encodings.
type Shape uint8

const (
	// ShapeList is a preprocessed (uncompressed) posting list.
	ShapeList Shape = iota
	// ShapeRawStored is a stored list under the identity encoding.
	ShapeRawStored
	// ShapeGamma and ShapeDelta are gap-coded bucket directories.
	ShapeGamma
	ShapeDelta
	// ShapeLowbits is the grouped Appendix-B structure.
	ShapeLowbits
	// ShapeBitseg is the density-partitioned bitmap/run hybrid.
	ShapeBitseg
)

var shapeNames = [...]string{"list", "raw", "gamma", "delta", "lowbits", "bitseg"}

func (s Shape) String() string {
	if int(s) < len(shapeNames) {
		return shapeNames[s]
	}
	return "shape(?)"
}

// Operand describes one intersection operand to the stored-strategy chooser.
// Span is one past the operand's largest docID (0 when unknown); only the
// bitseg strategy consults it.
type Operand struct {
	Len   int
	Shape Shape
	Span  int
}

// decodeCost prices materializing one stored operand as sorted []uint32.
func decodeCost(c *Costs, op Operand) float64 {
	n := float64(op.Len)
	switch op.Shape {
	case ShapeGamma, ShapeDelta:
		return c.GapDecode * n
	case ShapeLowbits:
		// Group concat + inverse permutation per element, then the sort.
		return (c.Hash + c.Scan) * n * (1 + logRatio(op.Len, 4)/8)
	case ShapeBitseg:
		// Word enumeration via TrailingZeros plus the run copies.
		return 2 * c.Scan * n
	default:
		return c.Scan * n // copy
	}
}

// probeCost prices filtering p ascending probes through one stored operand.
func probeCost(c *Costs, op Operand, p int) float64 {
	pf := float64(p)
	switch op.Shape {
	case ShapeGamma, ShapeDelta:
		visited := op.Len
		if m := p * storedBucket; m < visited {
			visited = m
		}
		return c.GapDecode*float64(visited) + c.Scan*pf
	case ShapeLowbits:
		// Per probe: permutation + image filter, plus the occasional
		// surviving group decode (≈ √w elements for a vanishing fraction).
		return (c.Hash + c.Filter + 2*c.Scan) * pf
	case ShapeBitseg:
		// O(1) bit test per probe on dense chunks, short run walk on sparse,
		// plus the chunk-cursor advance.
		return (c.Filter + c.Scan) * pf
	default:
		return c.MergeElem * (pf + float64(op.Len)) // linear merge
	}
}

// ChooseStored picks the compressed-tier strategy for k ≥ 2 stored operands
// given in ascending length order (ops[0] is the probe side). Under
// KernelsHeuristic it reproduces the pre-planner shape dispatch.
func ChooseStored(c *Costs, pol KernelPolicy, ops []Operand) Kernel {
	allLookup, allBitseg := true, true
	span := 0
	for _, op := range ops {
		if op.Shape != ShapeGamma && op.Shape != ShapeDelta {
			allLookup = false
		}
		if op.Shape != ShapeBitseg {
			allBitseg = false
		}
		if op.Span > 0 && (span == 0 || op.Span < span) {
			span = op.Span
		}
	}
	pairRGS := len(ops) == 2 && ops[0].Shape == ShapeLowbits && ops[1].Shape == ShapeLowbits
	if pol == KernelsHeuristic {
		switch {
		case pairRGS:
			return KernelRGSPair
		case allLookup:
			return KernelLookupProbe
		default:
			return KernelFilterChain
		}
	}
	n0 := ops[0].Len
	chain := decodeCost(c, ops[0])
	decodeAll := decodeCost(c, ops[0])
	for _, op := range ops[1:] {
		chain += probeCost(c, op, n0)
		decodeAll += decodeCost(c, op) + c.MergeElem*float64(op.Len+n0)
	}
	best, k := chain*c.corr(KernelFilterChain), KernelFilterChain
	if da := decodeAll * c.corr(KernelDecodeAll); da < best {
		best, k = da, KernelDecodeAll
	}
	if lp := chain * c.corr(KernelLookupProbe); allLookup && lp <= best {
		// Same bucket probes as the chain, but consecutive probes share
		// bucket decodes; prefer it on ties.
		best, k = lp, KernelLookupProbe
	}
	if allBitseg && span > 0 {
		// The lists already carry the hybrid representation: run the k-way
		// word kernel directly, no decode at all.
		if bc := storedBitsegCost(c, ops, span) * c.corr(KernelBitsegAnd); bc < best {
			best, k = bc, KernelBitsegAnd
		}
	}
	if pairRGS {
		// The stored RGS kernel is the calibrated group scan plus the final
		// result sort (the groups emit permutation order).
		total := float64(ops[0].Len + ops[1].Len)
		rgs := (c.GroupElem*total + c.Probe*float64(n0)) * c.corr(KernelRGSPair)
		if rgs < best {
			k = KernelRGSPair
		}
	}
	return k
}

// storedBitsegCost prices the direct k-way bitmap intersection of stored
// bitseg operands — bitsegCost's formula, restated over Operands so the
// per-query path stays allocation-free.
func storedBitsegCost(c *Costs, ops []Operand, span int) float64 {
	chunks := float64(span/bitseg.ChunkWidth + 1)
	aligned := chunks
	out := float64(span)
	for _, op := range ops {
		if f := float64(op.Len) / chunks; f < 1 {
			aligned *= f
		}
		out *= float64(op.Len) / float64(span)
	}
	words := c.BitsegWord * bitseg.ChunkWords * aligned * float64(len(ops)-1)
	return words + c.Scan*out
}

// storedCost prices the chosen strategy for Explain.
func storedCost(c *Costs, k Kernel, ops []Operand) float64 {
	if len(ops) == 0 {
		return 0
	}
	n0 := ops[0].Len
	switch k {
	case KernelRGSPair:
		total := float64(ops[0].Len + ops[1].Len)
		return (c.GroupElem*total + c.Probe*float64(n0)) * c.corr(k)
	case KernelBitsegAnd:
		span := 0
		for _, op := range ops {
			if op.Span > 0 && (span == 0 || op.Span < span) {
				span = op.Span
			}
		}
		if span == 0 {
			span = 1
		}
		return storedBitsegCost(c, ops, span) * c.corr(k)
	case KernelDecodeAll:
		cost := decodeCost(c, ops[0])
		for _, op := range ops[1:] {
			cost += decodeCost(c, op) + c.MergeElem*float64(op.Len+n0)
		}
		return cost * c.corr(k)
	default: // FilterChain, LookupProbe
		cost := decodeCost(c, ops[0])
		for _, op := range ops[1:] {
			cost += probeCost(c, op, n0)
		}
		return cost * c.corr(k)
	}
}

// ChoosePair picks merge vs gallop for one pairwise sorted-set operation
// (the delta-segment evaluator and the composite-result intersections):
// galloping wins once the size ratio covers its per-probe overhead. Under
// KernelsHeuristic it always merges (the pre-planner behavior).
func ChoosePair(c *Costs, pol KernelPolicy, small, large int) Kernel {
	if pol == KernelsHeuristic {
		return KernelMerge
	}
	if small > large {
		small, large = large, small
	}
	merge := c.MergeElem * float64(small+large) * c.corr(KernelMerge)
	gallop := c.GallopProbe * float64(small) * probeDepth(large, small) * c.corr(KernelGallop)
	if gallop < merge {
		return KernelGallop
	}
	return KernelMerge
}
