package plan

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Feedback closes the loop between the calibrated cost model and what
// execution actually measured. The engine feeds it sampled per-operator
// actuals (OpActual harvested from the trace arena) tagged with the plan's
// estimates (Op.Rows, Op.Cost); every fbRefitEvery observations a re-fit
// compares accumulated actual ns against accumulated estimated ns per
// kernel and nudges that kernel's multiplicative correction factor. When a
// correction moves materially, a fresh Costs snapshot (base coefficients +
// corrections) is published and the feedback epoch bumps, invalidating the
// cross-query plan cache so cached plans re-price.
//
// The store is lock-free on the hot path: Observe does a handful of atomic
// adds into per-(kernel, size-bucket) cells, and the refit itself is
// single-flighted behind a CAS and costs microseconds (KernelCount ×
// fbBuckets atomic swaps). Because estimates already include the current
// correction, the update c′ = clamp(c · Σactual/Σestimated) is a
// fixed-point iteration that converges to the true anchor error and tracks
// it as the index drifts (cells reset every refit, so each window sees
// only fresh traffic).
type Feedback struct {
	base  *Costs
	costs atomic.Pointer[Costs]

	epoch  atomic.Uint64
	refits atomic.Uint64
	obs    atomic.Uint64

	pending   atomic.Int64
	refitting atomic.Bool

	// rowsErr is the last window's Σ|rows−estRows| / Σrows, as Float64bits.
	rowsErr atomic.Uint64

	// corr holds the live correction per kernel, as Float64bits.
	corr [KernelCount]atomic.Uint64

	cells [KernelCount][fbBuckets]fbCell
}

// fbCell accumulates one (kernel, log₂-size-bucket) window of actuals and
// the estimates they were planned under.
type fbCell struct {
	execs   atomic.Int64
	rows    atomic.Int64
	ns      atomic.Int64
	estRows atomic.Int64
	estNs   atomic.Int64
}

const (
	// fbBuckets partitions observations by log₂(rows per exec) so a refit
	// window mixing tiny and huge operators still weighs them sanely.
	fbBuckets = 16
	// fbRefitEvery is how many harvested operators trigger a re-fit.
	fbRefitEvery = 256
	// fbMinExecs is the minimum operator executions a kernel needs in a
	// window before its correction moves (noise floor).
	fbMinExecs = 32
	// fbStepMin/fbStepMax clamp one refit's multiplicative step, so a
	// single pathological window cannot swing a correction to its rail.
	fbStepMin = 0.25
	fbStepMax = 4.0
	// fbCorrMin/fbCorrMax bound the total correction: feedback can re-rank
	// kernels, not price one into (or out of) existence.
	fbCorrMin = 1.0 / 16
	fbCorrMax = 16.0
	// fbDeadband is the relative movement some correction must exceed for
	// the refit to publish a new snapshot and bump the epoch — tiny jitter
	// must not thrash the plan cache.
	fbDeadband = 0.10
)

// NewFeedback returns a store layered over the given base coefficients
// (typically the startup-calibrated Costs). Until the first effective
// refit, Costs() returns base unchanged.
func NewFeedback(base *Costs) *Feedback {
	f := &Feedback{base: base}
	f.costs.Store(base)
	one := math.Float64bits(1)
	for k := range f.corr {
		f.corr[k].Store(one)
	}
	return f
}

// Costs returns the current corrected coefficient snapshot. The pointer is
// immutable once published; callers may hold it across a whole query.
func (f *Feedback) Costs() *Costs { return f.costs.Load() }

// Epoch returns the number of published correction snapshots. It is summed
// with the engine's stats epoch to key the plan cache, so a bump re-prices
// every cached plan.
func (f *Feedback) Epoch() uint64 { return f.epoch.Load() }

// Refits returns the number of re-fit passes run (published or not).
func (f *Feedback) Refits() uint64 { return f.refits.Load() }

// Observations returns the number of harvested operator samples.
func (f *Feedback) Observations() uint64 { return f.obs.Load() }

// Correction returns the live multiplicative correction for kernel k.
func (f *Feedback) Correction(k Kernel) float64 {
	if int(k) >= KernelCount {
		return 1
	}
	return math.Float64frombits(f.corr[k].Load())
}

// RowsError returns the last refit window's relative cardinality-estimate
// error, Σ|actual−estimated| / Σactual (0 until the first refit).
func (f *Feedback) RowsError() float64 {
	return math.Float64frombits(f.rowsErr.Load())
}

// Observe records one sampled operator: the plan estimated estRows output
// rows at estNs total cost, execution ran it execs times (once per shard)
// producing rows total output rows in ns total nanoseconds. Estimates are
// per-operator totals, matching the summed per-shard actuals. Safe for
// concurrent use; a refit may run inline every fbRefitEvery calls.
func (f *Feedback) Observe(k Kernel, estRows int, estNs float64, execs, rows, ns int64) {
	if k == KernelNone || int(k) >= KernelCount || execs <= 0 {
		return
	}
	per := rows / execs
	b := bits.Len64(uint64(per))
	if b >= fbBuckets {
		b = fbBuckets - 1
	}
	c := &f.cells[k][b]
	c.execs.Add(execs)
	c.rows.Add(rows)
	c.ns.Add(ns)
	c.estRows.Add(int64(estRows))
	e := int64(estNs + 0.5)
	if e < 1 {
		e = 1
	}
	c.estNs.Add(e)
	f.obs.Add(1)
	if f.pending.Add(1) >= fbRefitEvery && f.refitting.CompareAndSwap(false, true) {
		f.pending.Store(0)
		f.refit()
		f.refitting.Store(false)
	}
}

// refit drains every cell, updates per-kernel corrections from the
// actual/estimated ns ratio, and publishes a new Costs snapshot when a
// correction moved past the deadband. Single-flighted by the caller.
func (f *Feedback) refit() {
	var newCorr [KernelCount]float64
	var totRows, totAbsErr int64
	changed := false
	for k := 1; k < KernelCount; k++ {
		old := math.Float64frombits(f.corr[k].Load())
		newCorr[k] = old
		var execs, rows, ns, estRows, estNs int64
		for b := range f.cells[k] {
			c := &f.cells[k][b]
			execs += c.execs.Swap(0)
			rows += c.rows.Swap(0)
			ns += c.ns.Swap(0)
			estRows += c.estRows.Swap(0)
			estNs += c.estNs.Swap(0)
		}
		if rows > 0 || estRows > 0 {
			totRows += rows
			if d := rows - estRows; d >= 0 {
				totAbsErr += d
			} else {
				totAbsErr -= d
			}
		}
		if execs < fbMinExecs || estNs <= 0 || ns <= 0 {
			continue
		}
		step := float64(ns) / float64(estNs)
		if step < fbStepMin {
			step = fbStepMin
		} else if step > fbStepMax {
			step = fbStepMax
		}
		nc := old * step
		if nc < fbCorrMin {
			nc = fbCorrMin
		} else if nc > fbCorrMax {
			nc = fbCorrMax
		}
		newCorr[k] = nc
		f.corr[k].Store(math.Float64bits(nc))
		if nc > old*(1+fbDeadband) || nc < old/(1+fbDeadband) {
			changed = true
		}
	}
	if totRows > 0 || totAbsErr > 0 {
		den := totRows
		if den < 1 {
			den = 1
		}
		f.rowsErr.Store(math.Float64bits(float64(totAbsErr) / float64(den)))
	}
	f.refits.Add(1)
	if changed {
		snap := *f.base
		snap.Corr = newCorr
		f.costs.Store(&snap)
		f.epoch.Add(1)
	}
}
