package plan

import (
	"errors"
	"testing"
)

func TestParseNormalization(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"a", "a"},
		{"a AND b", "(a AND b)"},
		{"b AND a", "(a AND b)"},
		{"a b", "(a AND b)"}, // implicit AND
		{"a and b AND c", "(a AND b AND c)"},
		{"a AND (b AND c)", "(a AND b AND c)"}, // flattening
		{"a OR b OR a", "(a OR b)"},            // dedup
		{"a AND a", "a"},                       // collapse to single child
		{"a AND NOT b", "((NOT b) AND a)"},
		{"a AND NOT NOT b", "(a AND b)"}, // double negation
		{"(a)", "a"},
		{"((a OR b)) AND c", "((a OR b) AND c)"},
		{"a OR b AND c", "((b AND c) OR a)"}, // AND binds tighter
		{"not x AND y", "((NOT x) AND y)"},   // case-insensitive keywords
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseEquivalentQueriesShareKeys(t *testing.T) {
	groups := [][]string{
		{"a AND b", "b AND a", "a b", "b AND (a)", "a AND b AND a"},
		{"a OR (b AND c)", "(c AND b) OR a"},
		{"x AND NOT y", "NOT y AND x"},
	}
	for _, g := range groups {
		first, err := Parse(g[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range g[1:] {
			n, err := Parse(q)
			if err != nil {
				t.Fatalf("Parse(%q): %v", q, err)
			}
			if n.String() != first.String() {
				t.Errorf("Parse(%q) = %q, want same key as %q (%q)", q, n.String(), g[0], first.String())
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error // nil = any error
	}{
		{"", ErrEmptyQuery},
		{"   ", ErrEmptyQuery},
		{"NOT a", ErrUnbounded},
		{"NOT NOT NOT a", ErrUnbounded},
		{"a OR NOT b", ErrUnbounded},
		{"NOT a AND NOT b", ErrUnbounded},
		{"a AND (b OR NOT c)", ErrUnbounded}, // NOT must be a direct AND operand
		{"(a", nil},
		{"a)", nil},
		{"()", nil},
		{"a AND", nil},
		{"AND a", nil},
		{"a OR", nil},
		{"NOT", nil},
		{"a (", nil},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) accepted, want error", c.in)
			continue
		}
		if c.wantErr != nil && !errors.Is(err, c.wantErr) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, err, c.wantErr)
		}
	}
}

// TestSyntaxErrorOffsets pins the byte offsets syntax errors report: the
// lexer records each token's position and the parser threads it into
// SyntaxError, so error messages (and fsiserve's 400 bodies) can point at
// the offending byte of the original query string.
func TestSyntaxErrorOffsets(t *testing.T) {
	cases := []struct {
		in      string
		wantPos int
		wantMsg string
	}{
		{"a AND", 5, "unexpected end of query"},    // after the 3-byte AND at offset 2
		{"a AND  ", 5, "unexpected end of query"},  // trailing spaces don't move the offset
		{"AND a", 0, `unexpected "AND"`},           // operator in term position
		{"a ) b", 2, `unexpected ")"`},             // stray close paren
		{"a OR or b", 5, `unexpected "or"`},        // doubled operator, case-insensitive
		{"(a AND b", 0, "unclosed parenthesis"},    // points at the open paren
		{"x (y", 2, "unclosed parenthesis"},        // ... also mid-query
		{"a (", 3, "unexpected end of query"},      // open paren then nothing
		{"ab NOT", 6, "unexpected end of query"},   // NOT with no operand
		{"(a OR b)) c", 8, `unexpected ")"`},       // balanced prefix, surplus close
		{"ümlaut AND AND", 12, `unexpected "AND"`}, // offsets are bytes, not runes: ü is 2 bytes
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q) = %v, want *SyntaxError", c.in, err)
			continue
		}
		if se.Pos != c.wantPos || se.Msg != c.wantMsg {
			t.Errorf("Parse(%q) = offset %d %q, want offset %d %q", c.in, se.Pos, se.Msg, c.wantPos, c.wantMsg)
		}
	}
}

func TestTerms(t *testing.T) {
	n, err := Parse("a AND (b OR c) AND NOT d AND a")
	if err != nil {
		t.Fatal(err)
	}
	got := Terms(n)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Terms = %v, want %v", got, want)
		}
	}
}
