package harness

import (
	"fmt"
	"testing"

	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
)

// The feedback-drift experiment measures what the adaptive planning loop is
// for: a cost model whose calibration has gone stale. Two identical engines
// start from the same deliberately mis-calibrated anchors — the merge anchor
// priced feedbackDistortion× too cheap, the way a model calibrated on tiny
// cache-resident lists misjudges memory-bound merges — over a corpus where
// the mispricing is harmless: balanced dense conjunctions, a regime where
// the linear merge genuinely wins no matter what it costs on paper. Then
// the corpus drifts: the "sel" term becomes selective, galloping it into
// its partners is now an order of magnitude cheaper, but the frozen engine
// keeps planning merges because its anchors still say merging is nearly
// free. The feedback engine has been comparing estimated to observed
// nanoseconds all along; its learned corrections re-price the merge to its
// true cost and its plans flip. The oracle — a fresh engine with
// machine-calibrated anchors on the post-drift corpus — bounds how much of
// the gap corrections recover.
//
// The distortion rides on plan.DefaultCosts (fixed coefficients), not the
// per-machine calibration, so the frozen engine's picks are deterministic
// across machines; only the learned corrections and the measured
// nanoseconds are machine-dependent, which is the point.

// feedbackDistortion is the factor the merge anchor is under-priced by. It
// must keep the distorted merge below every truthful candidate at the
// post-drift shape (so the frozen model keeps picking it) and stay inside
// the feedback store's correction clamp (16×, so the loop can fully undo
// it).
const feedbackDistortion = 12

func init() {
	register(Experiment{
		ID:    "feedback-drift",
		Title: "Adaptive planning under cost-model drift: frozen vs feedback-corrected vs oracle",
		Paper: "§4 cost-model motivation; engine tier (no paper artifact); seeds BENCH_feedback.json",
		Run:   runFeedbackBench,
	})
}

// FeedbackScenario is one (phase, engine) measurement cell.
type FeedbackScenario struct {
	Phase   string  `json:"phase"`  // "pre-drift" | "post-drift"
	Engine  string  `json:"engine"` // "frozen" | "feedback" | "oracle"
	Queries int     `json:"queries"`
	NsPerOp int64   `json:"ns_per_op"`
	QPS     float64 `json:"qps"`
	// MergeExecShare is the fraction of sampled conjunction-kernel
	// executions during the measurement window that ran the under-priced
	// merge (from the engine's executed-kernel counters, so it reflects the
	// shard-level re-pricing that actually dispatches kernels). Pre-drift
	// merging is the right call for everyone; post-drift it is the mispick
	// signature — the frozen engine keeps merging, the corrected and oracle
	// engines should not.
	MergeExecShare float64 `json:"merge_exec_share"`
	// MergeCorrection is the engine's live multiplicative correction on the
	// merge anchor (1 = none; the feedback engine should learn roughly the
	// distortion factor, modulo the gap between the default and true
	// per-element cost).
	MergeCorrection float64 `json:"merge_correction"`
	Refits          uint64  `json:"refits"`
	Observations    uint64  `json:"observations"`
}

// FeedbackReport is the BENCH_feedback.json artifact.
type FeedbackReport struct {
	Schema     string             `json:"schema"`
	Scale      string             `json:"scale"`
	Seed       uint64             `json:"seed"`
	Distortion float64            `json:"distortion"`
	Scenarios  []FeedbackScenario `json:"scenarios"`
	// PreDriftRatio is feedback/frozen ns/op before drift — the price of the
	// loop when the (mis)calibration happens to pick the right plans anyway.
	// Target: ≤ 1.05.
	PreDriftRatio float64 `json:"pre_drift_ratio"`
	// PostDriftRatio is feedback/frozen ns/op after drift — below 1 means
	// the corrected plans beat the frozen ones. Target: < 1.
	PostDriftRatio float64 `json:"post_drift_ratio"`
	// OracleRatio is feedback/oracle ns/op after drift — how close learned
	// corrections get to a fresh, truthfully calibrated engine.
	OracleRatio float64 `json:"oracle_ratio"`
}

// strideList returns every stride-th docID in [offset, span).
func strideList(span, stride, offset int) []uint32 {
	out := make([]uint32, 0, span/stride+1)
	for d := offset; d < span; d += stride {
		out = append(out, uint32(d))
	}
	return out
}

// feedbackCorpus builds the experiment's posting lists over a sparse
// universe (span ≫ list sizes, so the bitmap tier prices itself out): four
// balanced dense lists and one "sel" list whose stride is the phase's
// variable — matching the others pre-drift, 16× sparser post-drift.
func feedbackCorpus(span, base, selStride int) map[string][]uint32 {
	postings := map[string][]uint32{
		"sel": strideList(span, selStride, 1),
	}
	for i := 0; i < 4; i++ {
		postings[fmt.Sprintf("big%d", i)] = strideList(span, base+i*base/4, 0)
	}
	return postings
}

func feedbackInstall(e *engine.Engine, postings map[string][]uint32) {
	b := e.NewBuilder()
	for term, docs := range postings {
		if err := b.AddPosting(term, docs); err != nil {
			panic(fmt.Sprintf("harness: feedback bench build: %v", err))
		}
	}
	if err := e.Install(b); err != nil {
		panic(fmt.Sprintf("harness: feedback bench install: %v", err))
	}
}

var feedbackQueries = []string{
	"sel AND big0", "sel AND big1", "sel AND big2", "sel AND big3",
}

// feedbackAdapt replays the query stream until the engine has run at least
// `refits` additional re-fit passes (or the query cap is hit). With refits
// 0 it is a plain warm-up loop — what the frozen and oracle engines get.
func feedbackAdapt(e *engine.Engine, refits uint64, cap int) {
	target := e.Stats().FeedbackRefits + refits
	for i := 0; i < cap; i++ {
		q := feedbackQueries[i%len(feedbackQueries)]
		if _, err := e.Query(q); err != nil {
			panic(fmt.Sprintf("harness: feedback adapt query %q: %v", q, err))
		}
		if i%64 == 0 && e.Stats().FeedbackRefits >= target {
			return
		}
	}
}

// kernelExecTotals sums an engine's sampled kernel-execution counters and
// returns (merge execs, all execs).
func kernelExecTotals(st engine.Stats) (uint64, uint64) {
	var total uint64
	for _, n := range st.KernelExecs {
		total += n
	}
	return st.KernelExecs[plan.KernelMerge.String()], total
}

// feedbackMeasure times the query mix (min over reps) and snapshots the
// engine's executed-kernel mix and feedback state into a scenario cell.
func feedbackMeasure(e *engine.Engine, phase, name string, reps int) FeedbackScenario {
	// The report's ratios divide two of these cells, so a single noisy
	// sample shows up directly in the gated numbers: always take the min
	// over at least two benchmark runs.
	if reps < 2 {
		reps = 2
	}
	mergeBefore, totalBefore := kernelExecTotals(e.Stats())
	var ns int64
	for rep := 0; rep < reps; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(feedbackQueries[i%len(feedbackQueries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		if rep == 0 || r.NsPerOp() < ns {
			ns = r.NsPerOp()
		}
	}
	st := e.Stats()
	mergeAfter, totalAfter := kernelExecTotals(st)
	share := 0.0
	if d := totalAfter - totalBefore; d > 0 {
		share = float64(mergeAfter-mergeBefore) / float64(d)
	}
	corr := 1.0
	if c, ok := st.KernelCorrections[plan.KernelMerge.String()]; ok {
		corr = c
	}
	qps := 0.0
	if ns > 0 {
		qps = 1e9 / float64(ns)
	}
	return FeedbackScenario{
		Phase:           phase,
		Engine:          name,
		Queries:         len(feedbackQueries),
		NsPerOp:         ns,
		QPS:             qps,
		MergeExecShare:  share,
		MergeCorrection: corr,
		Refits:          st.FeedbackRefits,
		Observations:    st.FeedbackObservations,
	}
}

// FeedbackBench runs the drift experiment and returns the machine-readable
// report (the BENCH_feedback.json artifact emitted by fsibench
// -feedback-json).
func FeedbackBench(cfg Config) *FeedbackReport {
	span, base := 1<<24, 512 // dense lists ≈ 23k–33k over a 16.7M universe
	adaptCap := 30_000
	if cfg.Full() {
		span, base = 1<<26, 512 // ≈ 93k–131k lists
		adaptCap = 60_000
	}
	// Both drifting engines share one mis-calibrated snapshot; the feedback
	// store copies it on publish, never mutates it.
	miscal := *plan.DefaultCosts()
	miscal.MergeElem /= feedbackDistortion
	mk := func(feedback bool, costs *plan.Costs) *engine.Engine {
		return engine.New(engine.Config{
			Shards:       2,
			Storage:      invindex.StorageRaw,
			PlanFeedback: feedback,
			// All engines trace 1-in-4 so the measured deltas isolate
			// planning, not tracing.
			TraceSample: 4,
			PlanCosts:   costs,
		})
	}
	frozen := mk(false, &miscal)
	adaptive := mk(true, &miscal)

	rep := &FeedbackReport{
		Schema:     "fsibench/feedback/v1",
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
		Distortion: feedbackDistortion,
	}

	// Phase 1 — pre-drift: "sel" is as dense as its partners, so the linear
	// merge the distorted anchors love is also the genuinely right plan.
	// The feedback engine learns its corrections here (the estimated-vs-
	// observed gap exists regardless of whether the pick is right) and must
	// end up planning the same merges — the loop is ~free when the plans
	// are already right.
	pre := feedbackCorpus(span, base, base)
	feedbackInstall(frozen, pre)
	feedbackInstall(adaptive, pre)
	feedbackAdapt(frozen, 0, 256) // warm-up only: no feedback store, no refits
	// The under-priced merge makes the model briefly explore GroupScan
	// (truthfully priced but genuinely slower here) until its correction is
	// learned too; give the loop enough re-fit rounds to settle back on the
	// merge before measuring.
	feedbackAdapt(adaptive, 12, adaptCap)
	fPre := feedbackMeasure(frozen, "pre-drift", "frozen", cfg.Reps)
	aPre := feedbackMeasure(adaptive, "pre-drift", "feedback", cfg.Reps)

	// Phase 2 — drift: "sel" becomes 16× sparser. Both engines replan (the
	// install bumps their stats epochs), but the frozen anchors still say
	// merging ~23k+2k elements is cheaper than ~2k probes, so the frozen
	// engine keeps merging; the feedback engine's ratcheted merge
	// correction prices the merge truthfully and its plans flip to gallop.
	post := feedbackCorpus(span, base, 16*base)
	feedbackInstall(frozen, post)
	feedbackInstall(adaptive, post)
	feedbackAdapt(frozen, 0, 256)
	feedbackAdapt(adaptive, 2, adaptCap)
	fPost := feedbackMeasure(frozen, "post-drift", "frozen", cfg.Reps)
	aPost := feedbackMeasure(adaptive, "post-drift", "feedback", cfg.Reps)

	// Oracle: a fresh engine with truthful (machine-calibrated) anchors on
	// the post-drift corpus.
	oracle := mk(false, nil)
	feedbackInstall(oracle, post)
	feedbackAdapt(oracle, 0, 256)
	oPost := feedbackMeasure(oracle, "post-drift", "oracle", cfg.Reps)

	rep.Scenarios = []FeedbackScenario{fPre, aPre, fPost, aPost, oPost}
	if fPre.NsPerOp > 0 {
		rep.PreDriftRatio = float64(aPre.NsPerOp) / float64(fPre.NsPerOp)
	}
	if fPost.NsPerOp > 0 {
		rep.PostDriftRatio = float64(aPost.NsPerOp) / float64(fPost.NsPerOp)
	}
	if oPost.NsPerOp > 0 {
		rep.OracleRatio = float64(aPost.NsPerOp) / float64(oPost.NsPerOp)
	}
	return rep
}

func runFeedbackBench(cfg Config) []*Table {
	rep := FeedbackBench(cfg)
	t := &Table{
		ID:    "feedback-drift",
		Title: "Query ns/op under cost-model drift (frozen anchors vs feedback corrections vs oracle)",
		Columns: []string{"phase", "engine", "ns/op", "qps", "merge share",
			"merge corr", "refits"},
		Notes: []string{
			fmt.Sprintf("both drifting engines start with the merge anchor under-priced %d×; the oracle is freshly calibrated on the post-drift corpus", feedbackDistortion),
			fmt.Sprintf("pre-drift feedback/frozen = %.3f (≤1.05 target: the loop is ~free when the plans are already right)", rep.PreDriftRatio),
			fmt.Sprintf("post-drift feedback/frozen = %.3f (<1 target: corrected plans stop merging around a selective term)", rep.PostDriftRatio),
			fmt.Sprintf("post-drift feedback/oracle = %.3f (how much of the oracle's advantage corrections recover)", rep.OracleRatio),
		},
	}
	for _, s := range rep.Scenarios {
		t.AddRow(s.Phase, s.Engine,
			fmt.Sprintf("%d", s.NsPerOp),
			fmt.Sprintf("%.0f", s.QPS),
			fmt.Sprintf("%.2f", s.MergeExecShare),
			fmt.Sprintf("%.2f", s.MergeCorrection),
			fmt.Sprintf("%d", s.Refits))
	}
	return []*Table{t}
}
