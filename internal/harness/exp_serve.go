package harness

import (
	"fmt"
	"testing"

	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "serve-bench",
		Title: "Serving-path throughput and allocation on a mixed AND/OR workload",
		Paper: "engine tier (no paper artifact); seeds the BENCH_serve.json trajectory",
		Run:   runServeBench,
	})
}

// ServeScenario is one (storage mode) measurement of the serving path.
type ServeScenario struct {
	Name        string  `json:"name"`
	Storage     string  `json:"storage"`
	Shards      int     `json:"shards"`
	Docs        uint64  `json:"docs"`
	Terms       int     `json:"terms"`
	Queries     int     `json:"queries"`
	NsPerOp     int64   `json:"ns_per_op"`
	QPS         float64 `json:"qps"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ServeReport is the machine-readable result of the serving benchmark: the
// BENCH_serve.json artifact emitted by fsibench -serve-json, tracking the
// engine's QPS and per-query allocation footprint across commits the same
// way BENCH_compress.json tracks the encoding kernels.
type ServeReport struct {
	Schema    string          `json:"schema"`
	Scale     string          `json:"scale"`
	Seed      uint64          `json:"seed"`
	Scenarios []ServeScenario `json:"scenarios"`
}

// ServeBench measures end-to-end Engine.Query throughput on a mixed
// AND/OR/NOT query stream over a simulated real corpus, once per storage
// mode. The result cache is disabled so every operation pays the full
// parse → plan → shard fan-out → merge pipeline; B/op and allocs/op are
// therefore the numbers the pooled ExecContext machinery is accountable
// for, measured with the standard testing.Benchmark harness.
func ServeBench(cfg Config) *ServeReport {
	rc := workload.SmallRealConfig()
	rc.NumDocs, rc.NumTerms, rc.NumQueries = 100_000, 2_000, 128
	if cfg.Full() {
		rc.NumDocs, rc.NumTerms, rc.NumQueries = 1_000_000, 20_000, 1_000
	}
	rc.Seed = cfg.Seed
	real := workload.NewReal(rc)
	sc := workload.DefaultStreamConfig()
	sc.OrFrac, sc.NotFrac = 0.30, 0.10 // heavier operator mix than the web default: exercise union + difference paths
	sc.Seed = cfg.Seed + 1
	queries := real.QueryStream(2*rc.NumQueries, sc)
	rep := &ServeReport{
		Schema: "fsibench/serve/v1",
		Scale:  cfg.Scale,
		Seed:   cfg.Seed,
	}
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		e := engine.New(engine.Config{Shards: 2, Storage: st})
		b := e.NewBuilder()
		for t, docs := range real.Postings {
			if err := b.AddPosting(workload.TermName(t), docs); err != nil {
				panic(fmt.Sprintf("harness: serve bench build: %v", err))
			}
		}
		if err := e.Install(b); err != nil {
			panic(fmt.Sprintf("harness: serve bench install: %v", err))
		}
		for _, q := range queries[:min(64, len(queries))] { // warm pools and structure caches
			if _, err := e.Query(q); err != nil {
				panic(fmt.Sprintf("harness: serve bench warm-up query %q: %v", q, err))
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := r.NsPerOp()
		qps := 0.0
		if ns > 0 {
			qps = 1e9 / float64(ns)
		}
		stats := e.Stats()
		rep.Scenarios = append(rep.Scenarios, ServeScenario{
			Name:        "mixed-" + stats.Storage,
			Storage:     stats.Storage,
			Shards:      stats.Shards,
			Docs:        stats.Docs,
			Terms:       stats.Terms,
			Queries:     len(queries),
			NsPerOp:     ns,
			QPS:         qps,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return rep
}

func runServeBench(cfg Config) []*Table {
	rep := ServeBench(cfg)
	t := &Table{
		ID:      "serve-bench",
		Title:   "Engine.Query on a mixed AND/OR workload (cache disabled)",
		Columns: []string{"scenario", "shards", "docs", "terms", "ns/op", "qps", "B/op", "allocs/op"},
		Notes: []string{
			"allocs/op is dominated by the query parser; execution runs in pooled contexts",
		},
	}
	for _, s := range rep.Scenarios {
		t.AddRow(s.Name, fmt.Sprintf("%d", s.Shards), fmt.Sprintf("%d", s.Docs),
			fmt.Sprintf("%d", s.Terms), fmt.Sprintf("%d", s.NsPerOp),
			fmt.Sprintf("%.0f", s.QPS), fmt.Sprintf("%d", s.BytesPerOp),
			fmt.Sprintf("%d", s.AllocsPerOp))
	}
	return []*Table{t}
}
