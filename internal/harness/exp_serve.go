package harness

import (
	"fmt"
	"testing"

	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "serve-bench",
		Title: "Serving-path throughput and allocation on a mixed AND/OR workload",
		Paper: "engine tier (no paper artifact); seeds the BENCH_serve.json trajectory",
		Run:   runServeBench,
	})
}

// ServeScenario is one (storage mode × batch size) measurement of the
// serving path. All numbers are per query: for Batch > 1 the benchmark op is
// one QueryBatch call of Batch queries and the measured cost is divided out,
// so rows compare directly against the single-query baseline.
type ServeScenario struct {
	Name    string `json:"name"`
	Storage string `json:"storage"`
	Shards  int    `json:"shards"`
	Docs    uint64 `json:"docs"`
	Terms   int    `json:"terms"`
	Queries int    `json:"queries"`
	// Batch is the QueryBatch size (1 = the plain Engine.Query path).
	Batch       int     `json:"batch"`
	NsPerOp     int64   `json:"ns_per_op"`
	QPS         float64 `json:"qps"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SpeedupVsSingle is the single-query ns/op divided by this scenario's
	// per-query ns/op — the batching delta (1.0 for the baseline itself).
	SpeedupVsSingle float64 `json:"speedup_vs_single,omitempty"`
}

// ServeReport is the machine-readable result of the serving benchmark: the
// BENCH_serve.json artifact emitted by fsibench -serve-json, tracking the
// engine's QPS and per-query allocation footprint across commits the same
// way BENCH_compress.json tracks the encoding kernels.
type ServeReport struct {
	Schema    string          `json:"schema"`
	Scale     string          `json:"scale"`
	Seed      uint64          `json:"seed"`
	Scenarios []ServeScenario `json:"scenarios"`
}

// ServeBench measures end-to-end Engine.Query throughput on a mixed
// AND/OR/NOT query stream over a simulated real corpus, once per storage
// mode. The result cache is disabled so every operation pays the full
// parse → plan → shard fan-out → merge pipeline; B/op and allocs/op are
// therefore the numbers the pooled ExecContext machinery is accountable
// for, measured with the standard testing.Benchmark harness.
func ServeBench(cfg Config) *ServeReport {
	rc := workload.SmallRealConfig()
	rc.NumDocs, rc.NumTerms, rc.NumQueries = 100_000, 2_000, 128
	if cfg.Full() {
		rc.NumDocs, rc.NumTerms, rc.NumQueries = 1_000_000, 20_000, 1_000
	}
	rc.Seed = cfg.Seed
	real := workload.NewReal(rc)
	sc := workload.DefaultStreamConfig()
	sc.OrFrac, sc.NotFrac = 0.30, 0.10 // heavier operator mix than the web default: exercise union + difference paths
	sc.Seed = cfg.Seed + 1
	queries := real.QueryStream(2*rc.NumQueries, sc)
	rep := &ServeReport{
		Schema: "fsibench/serve/v1",
		Scale:  cfg.Scale,
		Seed:   cfg.Seed,
	}
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		e := engine.New(engine.Config{Shards: 2, Storage: st})
		b := e.NewBuilder()
		for t, docs := range real.Postings {
			if err := b.AddPosting(workload.TermName(t), docs); err != nil {
				panic(fmt.Sprintf("harness: serve bench build: %v", err))
			}
		}
		if err := e.Install(b); err != nil {
			panic(fmt.Sprintf("harness: serve bench install: %v", err))
		}
		for _, q := range queries[:min(64, len(queries))] { // warm pools and structure caches
			if _, err := e.Query(q); err != nil {
				panic(fmt.Sprintf("harness: serve bench warm-up query %q: %v", q, err))
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		stats := e.Stats()
		base := ServeScenario{
			Name:        "mixed-" + stats.Storage,
			Storage:     stats.Storage,
			Shards:      stats.Shards,
			Docs:        stats.Docs,
			Terms:       stats.Terms,
			Queries:     len(queries),
			Batch:       1,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if base.NsPerOp > 0 {
			base.QPS = 1e9 / float64(base.NsPerOp)
		}
		rep.Scenarios = append(rep.Scenarios, base)
		// The batching delta: the same stream submitted through QueryBatch in
		// fixed-size chunks. Queries normalizing identically are planned once
		// and all misses in a chunk share execution contexts, so the per-query
		// cost should only ever drop; SpeedupVsSingle quantifies by how much.
		for _, n := range []int{16, 64} {
			if n > len(queries) {
				continue
			}
			var chunks [][]string
			for at := 0; at+n <= len(queries); at += n {
				chunks = append(chunks, queries[at:at+n])
			}
			rb := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, br := range e.QueryBatch(chunks[i%len(chunks)]) {
						if br.Err != nil {
							b.Fatal(br.Err)
						}
					}
				}
			})
			sc := ServeScenario{
				Name:        fmt.Sprintf("mixed-%s-batch%d", stats.Storage, n),
				Storage:     stats.Storage,
				Shards:      stats.Shards,
				Docs:        stats.Docs,
				Terms:       stats.Terms,
				Queries:     len(queries),
				Batch:       n,
				NsPerOp:     rb.NsPerOp() / int64(n),
				BytesPerOp:  rb.AllocedBytesPerOp() / int64(n),
				AllocsPerOp: rb.AllocsPerOp() / int64(n),
			}
			if sc.NsPerOp > 0 {
				sc.QPS = 1e9 / float64(sc.NsPerOp)
				sc.SpeedupVsSingle = float64(base.NsPerOp) / float64(sc.NsPerOp)
			}
			rep.Scenarios = append(rep.Scenarios, sc)
		}
	}
	return rep
}

func runServeBench(cfg Config) []*Table {
	rep := ServeBench(cfg)
	t := &Table{
		ID:      "serve-bench",
		Title:   "Engine.Query on a mixed AND/OR workload (cache disabled)",
		Columns: []string{"scenario", "shards", "docs", "terms", "batch", "ns/op", "qps", "B/op", "allocs/op", "speedup"},
		Notes: []string{
			"allocs/op is dominated by the query parser; execution runs in pooled contexts",
			"batch rows are per query: one op is a QueryBatch of that size, cost divided out",
		},
	}
	for _, s := range rep.Scenarios {
		speedup := "-"
		if s.SpeedupVsSingle > 0 {
			speedup = fmt.Sprintf("%.2fx", s.SpeedupVsSingle)
		}
		t.AddRow(s.Name, fmt.Sprintf("%d", s.Shards), fmt.Sprintf("%d", s.Docs),
			fmt.Sprintf("%d", s.Terms), fmt.Sprintf("%d", s.Batch), fmt.Sprintf("%d", s.NsPerOp),
			fmt.Sprintf("%.0f", s.QPS), fmt.Sprintf("%d", s.BytesPerOp),
			fmt.Sprintf("%d", s.AllocsPerOp), speedup)
	}
	return []*Table{t}
}
