package harness

import (
	"fmt"
	"strings"
	"testing"

	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/plan"
	"fastintersect/internal/workload"
)

// denseQueries conjoins the workload's head terms — the lists dense enough
// to store as word-parallel bitmaps — in pairs and triples. On this stream
// the cost model should select the bitseg kernel (the heuristic baseline
// never does), making it the measurement workload for the bitmap tier's
// end-to-end speedup.
func denseQueries() []string {
	var qs []string
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			qs = append(qs, workload.TermName(i)+" AND "+workload.TermName(j))
		}
	}
	for i := 0; i < 4; i++ {
		qs = append(qs, fmt.Sprintf("%s AND %s AND %s",
			workload.TermName(i), workload.TermName(i+1), workload.TermName(i+2)))
	}
	return qs
}

func init() {
	register(Experiment{
		ID:    "plan-quality",
		Title: "Cost-based physical plans vs the df-ordered baseline and the worst ordering",
		Paper: "§4 cost-model motivation; engine tier (no paper artifact); seeds BENCH_plan.json",
		Run:   runPlanBench,
	})
}

// planPolicies are the three planner configurations the experiment
// compares: the cost-based default, the pre-planner df-ordered baseline
// (ascending document frequency, fixed Auto-rule kernels), and the
// adversarial descending ordering that bounds the value of ordering at all.
var planPolicies = []struct {
	Name   string
	Policy plan.Policy
}{
	{"cost", plan.Policy{Order: plan.OrderCost, Kernels: plan.KernelsCost}},
	{"df", plan.Policy{Order: plan.OrderDF, Kernels: plan.KernelsHeuristic}},
	{"worst", plan.Policy{Order: plan.OrderWorst, Kernels: plan.KernelsHeuristic}},
}

// PlanScenario is one (workload shape, storage, policy) measurement.
type PlanScenario struct {
	Workload    string  `json:"workload"`
	Storage     string  `json:"storage"`
	Policy      string  `json:"policy"`
	Queries     int     `json:"queries"`
	NsPerOp     int64   `json:"ns_per_op"`
	QPS         float64 `json:"qps"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// BitsegPlans counts sampled queries whose physical plan selected the
	// word-parallel bitmap kernel — the evidence that a bitseg speedup came
	// from the cost model choosing it, not from forcing it (the heuristic
	// policy must always report 0 here).
	BitsegPlans int `json:"bitseg_plans"`
}

// PlanReport is the machine-readable result of the plan-quality experiment:
// the BENCH_plan.json artifact emitted by fsibench -plan-json. The headline
// comparison is cost vs df on each workload — cost-based planning must not
// lose to the baseline it replaced.
type PlanReport struct {
	Schema    string         `json:"schema"`
	Scale     string         `json:"scale"`
	Seed      uint64         `json:"seed"`
	Scenarios []PlanScenario `json:"scenarios"`
}

// PlanBench measures end-to-end Engine.Query throughput under each planner
// policy, per workload shape and storage mode, with the result cache
// disabled so every operation pays the full parse → plan → execute
// pipeline. All policies run against the same engine instances and query
// streams, so the deltas isolate the planner.
func PlanBench(cfg Config) *PlanReport {
	rc := workload.SmallRealConfig()
	rc.NumDocs, rc.NumTerms, rc.NumQueries = 100_000, 2_000, 128
	if cfg.Full() {
		rc.NumDocs, rc.NumTerms, rc.NumQueries = 1_000_000, 20_000, 1_000
	}
	rc.Seed = cfg.Seed
	real := workload.NewReal(rc)

	workloads := []struct {
		Name    string
		SC      workload.StreamConfig
		Queries []string // overrides the stream when non-nil
	}{
		{"and-heavy", workload.StreamConfig{OrFrac: 0, NotFrac: 0, Seed: cfg.Seed + 1}, nil},
		{"dense-and", workload.StreamConfig{}, denseQueries()},
		{"mixed", workload.StreamConfig{OrFrac: 0.30, NotFrac: 0.10, Seed: cfg.Seed + 2}, nil},
	}
	rep := &PlanReport{
		Schema: "fsibench/plan/v1",
		Scale:  cfg.Scale,
		Seed:   cfg.Seed,
	}
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, pol := range planPolicies {
			e := engine.New(engine.Config{Shards: 2, Storage: st, PlanPolicy: pol.Policy})
			b := e.NewBuilder()
			for t, docs := range real.Postings {
				if err := b.AddPosting(workload.TermName(t), docs); err != nil {
					panic(fmt.Sprintf("harness: plan bench build: %v", err))
				}
			}
			if err := e.Install(b); err != nil {
				panic(fmt.Sprintf("harness: plan bench install: %v", err))
			}
			for _, wl := range workloads {
				queries := wl.Queries
				if queries == nil {
					queries = real.QueryStream(2*rc.NumQueries, wl.SC)
				}
				for _, q := range queries[:min(64, len(queries))] { // warm pools and structure caches
					if _, err := e.Query(q); err != nil {
						panic(fmt.Sprintf("harness: plan bench warm-up query %q: %v", q, err))
					}
				}
				reps := cfg.Reps
				if reps < 1 {
					reps = 1
				}
				var r testing.BenchmarkResult
				var ns int64
				for rep := 0; rep < reps; rep++ { // min across reps: scheduler noise only ever adds time
					rr := testing.Benchmark(func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							if _, err := e.Query(queries[i%len(queries)]); err != nil {
								b.Fatal(err)
							}
						}
					})
					if rep == 0 || rr.NsPerOp() < ns {
						r, ns = rr, rr.NsPerOp()
					}
				}
				qps := 0.0
				if ns > 0 {
					qps = 1e9 / float64(ns)
				}
				bitsegPlans := 0
				for _, q := range queries[:min(32, len(queries))] {
					_, expl, err := e.Explain(q)
					if err != nil {
						panic(fmt.Sprintf("harness: plan bench explain %q: %v", q, err))
					}
					if strings.Contains(expl, "BitsegAnd") {
						bitsegPlans++
					}
				}
				rep.Scenarios = append(rep.Scenarios, PlanScenario{
					Workload:    wl.Name,
					Storage:     st.String(),
					Policy:      pol.Name,
					Queries:     len(queries),
					NsPerOp:     ns,
					QPS:         qps,
					BytesPerOp:  r.AllocedBytesPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
					BitsegPlans: bitsegPlans,
				})
			}
		}
	}
	return rep
}

func runPlanBench(cfg Config) []*Table {
	rep := PlanBench(cfg)
	byKey := map[string]map[string]PlanScenario{}
	for _, s := range rep.Scenarios {
		key := s.Workload + "/" + s.Storage
		if byKey[key] == nil {
			byKey[key] = map[string]PlanScenario{}
		}
		byKey[key][s.Policy] = s
	}
	t := &Table{
		ID:      "plan-quality",
		Title:   "Engine.Query ns/op per planner policy (cache disabled)",
		Columns: []string{"workload", "storage", "cost ns/op", "df ns/op", "worst ns/op", "cost/df", "bitseg plans"},
		Notes: []string{
			"cost = calibrated cost model (order + kernels); df = pre-planner baseline (ascending df, Auto-rule kernels); worst = descending df",
			"cost/df <= 1.0 means cost-based planning is no slower than the baseline it replaced",
			"bitseg plans = sampled queries whose cost-based plan selected the word-parallel bitmap kernel (the baseline never does)",
		},
	}
	for _, s := range rep.Scenarios {
		if s.Policy != "cost" {
			continue
		}
		row := byKey[s.Workload+"/"+s.Storage]
		ratio := float64(row["cost"].NsPerOp) / float64(row["df"].NsPerOp)
		t.AddRow(s.Workload, s.Storage,
			fmt.Sprintf("%d", row["cost"].NsPerOp),
			fmt.Sprintf("%d", row["df"].NsPerOp),
			fmt.Sprintf("%d", row["worst"].NsPerOp),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%d", row["cost"].BitsegPlans))
	}
	return []*Table{t}
}
