package harness

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"time"

	"fastintersect/internal/admission"
	"fastintersect/internal/engine"
	"fastintersect/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "overload",
		Title: "Saturation sweep: offered QPS vs accepted-latency percentiles and goodput, with and without shedding",
		Paper: "serving tier (no paper artifact); the paper's strict-latency-budget setting under overload",
		Run:   runOverloadBench,
	})
}

// Overload experiment: drive an engine whose per-shard service time is
// pinned by fault injection with an open-loop Poisson arrival stream at
// multiples of its measured capacity, once through a tight admission gate
// (shedding) and once through an effectively unbounded queue with no
// deadlines (the naive baseline). The claim under test is the classic
// load-shedding tradeoff: past saturation the gate keeps accepted-query
// latency flat and goodput at capacity by turning excess work into cheap
// rejections, while the unbounded queue accepts everything and finishes
// almost nothing inside its latency budget.

// overloadDeadline is each request's end-to-end budget in the shedding
// configuration (and the goodput cutoff in both).
const overloadDeadline = 50 * time.Millisecond

// overloadDelay is the injected per-shard service time: large enough to
// dwarf real evaluation cost, so measured capacity is deterministic.
const overloadDelay = 5 * time.Millisecond

// overloadInflight is the shedding gate's concurrency; the engine worker
// pool is sized above it so admission, not the engine, is the bottleneck.
const overloadInflight = 4

// OverloadPoint is one (mode, offered-rate) cell of the sweep.
type OverloadPoint struct {
	Mode       string  `json:"mode"`     // "shed" or "noshed"
	Multiple   float64 `json:"multiple"` // offered rate as a multiple of capacity
	OfferedQPS float64 `json:"offered_qps"`

	Offered  int `json:"offered"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`  // admission: quota/deadline-infeasible
	Shed     int `json:"shed"`      // admission: queue full/timeout/draining
	TimedOut int `json:"timed_out"` // admitted but failed with a context error
	Complete int `json:"complete"`  // admitted and finished successfully

	AcceptedP50US float64 `json:"accepted_p50_us"` // arrival→completion, completed requests
	AcceptedP99US float64 `json:"accepted_p99_us"`
	GoodputQPS    float64 `json:"goodput_qps"` // completions within the deadline / wall
}

// OverloadReport is the BENCH_overload.json artifact emitted by
// fsibench -overload-json.
type OverloadReport struct {
	Schema           string          `json:"schema"`
	Scale            string          `json:"scale"`
	Seed             uint64          `json:"seed"`
	CapacityQPS      float64         `json:"capacity_qps"`
	DeadlineMS       int64           `json:"deadline_ms"`
	ServiceDelayMS   int64           `json:"service_delay_ms"`
	MaxInflight      int             `json:"max_inflight"`
	UncontendedP99US float64         `json:"uncontended_p99_us"`
	Points           []OverloadPoint `json:"points"`
}

// OverloadBench measures capacity closed-loop, then sweeps offered load at
// {0.5, 1, 2, 3}× capacity in both admission modes. The uncontended p99 the
// acceptance bound references is the 0.5× shed point's accepted p99.
func OverloadBench(cfg Config) *OverloadReport {
	// The corpus is deliberately tiny: the injected delay must dwarf real
	// evaluation cost even on a single-core runner, or CPU contention at 3×
	// offered load pollutes the accepted-latency tail with scheduler noise
	// that has nothing to do with admission policy.
	rc := workload.SmallRealConfig()
	rc.NumDocs, rc.NumTerms, rc.NumQueries = 10_000, 1_000, 128
	window := 2 * time.Second
	if cfg.Full() {
		rc.NumDocs, rc.NumTerms, rc.NumQueries = 50_000, 2_000, 512
		window = 3 * time.Second
	}
	rc.Seed = cfg.Seed
	real := workload.NewReal(rc)
	sc := workload.DefaultStreamConfig()
	sc.Seed = cfg.Seed + 1

	e := engine.New(engine.Config{
		Shards:    1,
		Workers:   2 * overloadInflight, // engine never the bottleneck
		CacheSize: 0,                    // every query pays the injected service time
		Faults:    &engine.FaultPlan{Shard: -1, Delay: overloadDelay},
	})
	b := e.NewBuilder()
	for t, docs := range real.Postings {
		if err := b.AddPosting(workload.TermName(t), docs); err != nil {
			panic(fmt.Sprintf("harness: overload build: %v", err))
		}
	}
	if err := e.Install(b); err != nil {
		panic(fmt.Sprintf("harness: overload install: %v", err))
	}

	// Closed-loop capacity: overloadInflight workers querying back to back.
	// With the injected delay dominating, this lands near
	// overloadInflight/overloadDelay regardless of hardware.
	capQPS := measureCapacity(e, real.QueryStream(4096, sc))

	rep := &OverloadReport{
		Schema:         "fsibench/overload/v1",
		Scale:          cfg.Scale,
		Seed:           cfg.Seed,
		CapacityQPS:    capQPS,
		DeadlineMS:     overloadDeadline.Milliseconds(),
		ServiceDelayMS: overloadDelay.Milliseconds(),
		MaxInflight:    overloadInflight,
	}
	for _, mult := range []float64{0.5, 1, 2, 3} {
		for _, mode := range []string{"shed", "noshed"} {
			pt := runOverloadPoint(e, real, sc, mode, mult, capQPS, window, cfg.Seed)
			if mode == "shed" && mult == 0.5 {
				rep.UncontendedP99US = pt.AcceptedP99US
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep
}

// measureCapacity runs a short closed loop at the shedding concurrency and
// returns queries per second.
func measureCapacity(e *engine.Engine, stream []string) float64 {
	const dur = 300 * time.Millisecond
	var wg sync.WaitGroup
	var done [overloadInflight]int
	start := time.Now()
	for w := 0; w < overloadInflight; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Since(start) < dur; i += overloadInflight {
				if _, err := e.Query(stream[i%len(stream)]); err != nil {
					panic(fmt.Sprintf("harness: overload capacity query: %v", err))
				}
				done[w]++
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	n := 0
	for _, d := range done {
		n += d
	}
	return float64(n) / wall.Seconds()
}

// Per-request outcome codes written by the load goroutines (one slot per
// request, no shared mutable state).
const (
	ocComplete = iota
	ocRejected
	ocShed
	ocTimedOut
)

// runOverloadPoint offers one open-loop arrival schedule to a fresh gate in
// the given mode and accounts every request.
func runOverloadPoint(e *engine.Engine, real *workload.Real, sc workload.StreamConfig, mode string, mult, capQPS float64, window time.Duration, seed uint64) OverloadPoint {
	qps := mult * capQPS
	n := int(qps * window.Seconds())
	if n < 1 {
		n = 1
	}
	arrivals := workload.Arrivals(n, qps, seed+uint64(mult*1000))
	queries := real.QueryStream(n, sc)

	gcfg := admission.Config{MaxInflight: overloadInflight, QueueDepth: overloadInflight}
	useDeadline := true
	if mode == "noshed" {
		// The naive baseline: a queue deep enough to never shed, and no
		// deadlines anywhere — every request waits as long as it takes.
		gcfg.QueueDepth = 1 << 20
		useDeadline = false
	}
	gate := admission.NewGate(gcfg, nil)

	outcomes := make([]uint8, n)
	latencies := make([]time.Duration, n) // arrival→completion, valid when ocComplete
	var wg sync.WaitGroup
	start := time.Now()
	var lastDone atomic64Time
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(arrivals[i])))
			arrived := time.Now()
			ctx := context.Background()
			if useDeadline {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, overloadDeadline)
				defer cancel()
			}
			tk, err := gate.Acquire(ctx, "")
			if err != nil {
				switch err {
				case admission.ErrQuotaExceeded, admission.ErrDeadlineInfeasible:
					outcomes[i] = ocRejected
				default:
					outcomes[i] = ocShed
				}
				lastDone.set(time.Since(start))
				return
			}
			_, qerr := e.QueryContext(ctx, queries[i])
			gate.Release(tk)
			if qerr != nil {
				outcomes[i] = ocTimedOut
			} else {
				outcomes[i] = ocComplete
				latencies[i] = time.Since(arrived)
			}
			lastDone.set(time.Since(start))
		}(i)
	}
	wg.Wait()
	wall := lastDone.get()
	if wall <= 0 {
		wall = time.Since(start)
	}

	pt := OverloadPoint{Mode: mode, Multiple: mult, OfferedQPS: qps, Offered: n}
	var acc []time.Duration
	good := 0
	for i, oc := range outcomes {
		switch oc {
		case ocComplete:
			pt.Complete++
			pt.Accepted++
			acc = append(acc, latencies[i])
			if latencies[i] <= overloadDeadline {
				good++
			}
		case ocTimedOut:
			pt.TimedOut++
			pt.Accepted++
		case ocRejected:
			pt.Rejected++
		case ocShed:
			pt.Shed++
		}
	}
	// Cross-check our per-request accounting against the gate's counters —
	// the accepted+rejected+shed=offered invariant the CI smoke asserts.
	st := gate.Stats()
	if got := st.Accepted + st.Rejected + st.Shed; got != uint64(n) {
		panic(fmt.Sprintf("harness: overload gate accounting: accepted(%d)+rejected(%d)+shed(%d)=%d, offered %d",
			st.Accepted, st.Rejected, st.Shed, got, n))
	}
	slices.Sort(acc)
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	pt.AcceptedP50US = us(nearestRank(acc, 50))
	pt.AcceptedP99US = us(nearestRank(acc, 99))
	pt.GoodputQPS = float64(good) / wall.Seconds()
	return pt
}

// atomic64Time tracks the latest completion offset across goroutines.
type atomic64Time struct {
	mu sync.Mutex
	d  time.Duration
}

func (a *atomic64Time) set(d time.Duration) {
	a.mu.Lock()
	if d > a.d {
		a.d = d
	}
	a.mu.Unlock()
}

func (a *atomic64Time) get() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.d
}

func runOverloadBench(cfg Config) []*Table {
	rep := OverloadBench(cfg)
	t := &Table{
		ID:    "overload",
		Title: "Offered load vs accepted latency and goodput, shedding vs unbounded queue",
		Columns: []string{"mode", "x capacity", "offered", "accepted", "rejected", "shed", "timed out",
			"p50 µs", "p99 µs", "goodput qps"},
		Notes: []string{
			fmt.Sprintf("capacity %.0f qps (closed loop at %d inflight, %v injected service time); deadline %v",
				rep.CapacityQPS, rep.MaxInflight, overloadDelay, overloadDeadline),
			"goodput counts completions whose arrival→completion latency met the deadline, in both modes",
		},
	}
	for _, p := range rep.Points {
		t.AddRow(p.Mode, fmt.Sprintf("%.1f", p.Multiple),
			fmt.Sprintf("%d", p.Offered), fmt.Sprintf("%d", p.Accepted),
			fmt.Sprintf("%d", p.Rejected), fmt.Sprintf("%d", p.Shed), fmt.Sprintf("%d", p.TimedOut),
			fmt.Sprintf("%.0f", p.AcceptedP50US), fmt.Sprintf("%.0f", p.AcceptedP99US),
			fmt.Sprintf("%.0f", p.GoodputQPS))
	}
	return []*Table{t}
}
