package harness

import (
	"fmt"

	"fastintersect"
	"fastintersect/internal/core"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func init() {
	register(Experiment{
		ID:    "ablation-width",
		Title: "IntGroup group-width sweep (the √w choice of §A.1.1)",
		Paper: "Appendix A.1.1 (design-choice ablation)",
		Run:   runAblationWidth,
	})
	register(Experiment{
		ID:    "ablation-m",
		Title: "RanGroupScan hash-image count sweep",
		Paper: "§3.3 / Theorem 3.9 (m trade-off)",
		Run:   runAblationM,
	})
	register(Experiment{
		ID:    "ablation-parallel",
		Title: "RanGroupScan multi-core scaling",
		Paper: "§2 multi-core note (extension)",
		Run:   runAblationParallel,
	})
}

func runAblationWidth(cfg Config) []*Table {
	n := 1_000_000
	if cfg.Full() {
		n = 4_000_000
	}
	t := &Table{
		ID:      "ablation-width",
		Title:   fmt.Sprintf("IntGroup time (ms) by group width, 2 sets of %d, r = 1%%", n),
		Columns: []string{"width", "time ms"},
		Notes: []string{
			"the paper's analysis: E[collisions] stays O(1) while s1·s2 ≤ w, so √w = 8 balances scan length against collision work; expect a minimum near 8",
		},
	}
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	rng := xhash.NewRNG(cfg.Seed + 20)
	aSet, bSet := workload.PairWithIntersection(workload.DefaultUniverse, n, n, n/100, rng)
	a, _ := core.NewIntGroupList(fam, aSet, true)
	b, _ := core.NewIntGroupList(fam, bSet, true)
	for _, width := range []int32{2, 4, 8, 16, 32, 64} {
		core.IntersectIntGroupWidth(a, b, width) // warm
		d := timeIt(cfg.Reps, func() { core.IntersectIntGroupWidth(a, b, width) })
		t.AddRow(fmt.Sprintf("%d", width), ms(d))
	}
	return []*Table{t}
}

func runAblationM(cfg Config) []*Table {
	n := 1_000_000
	if cfg.Full() {
		n = 4_000_000
	}
	t := &Table{
		ID:      "ablation-m",
		Title:   fmt.Sprintf("RanGroupScan time and space by m, 2 sets of %d, r = 1%%", n),
		Columns: []string{"m", "time ms", "structure words (one set)"},
		Notes: []string{
			"more images filter more empty pairs but cost m words per group; the paper settles on m = 4 (two-set) and m = 2 (multi-set)",
		},
	}
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	rng := xhash.NewRNG(cfg.Seed + 21)
	aSet, bSet := workload.PairWithIntersection(workload.DefaultUniverse, n, n, n/100, rng)
	for _, m := range []int{1, 2, 4, 6, 8} {
		a, _ := core.NewRanGroupScanList(fam, aSet, m)
		b, _ := core.NewRanGroupScanList(fam, bSet, m)
		core.IntersectRanGroupScan(a, b) // warm
		d := timeIt(cfg.Reps, func() { core.IntersectRanGroupScan(a, b) })
		t.AddRow(fmt.Sprintf("%d", m), ms(d), fmt.Sprintf("%d", a.SizeWords()))
	}
	return []*Table{t}
}

func runAblationParallel(cfg Config) []*Table {
	n := 1_000_000
	if cfg.Full() {
		n = 4_000_000
	}
	t := &Table{
		ID:      "ablation-parallel",
		Title:   fmt.Sprintf("RanGroupScan parallel speedup, 4 sets of %d uniform IDs", n),
		Columns: []string{"workers", "time ms", "speedup"},
		Notes: []string{
			"the paper calls multi-core parallelization orthogonal; groups partition the work, so scaling tracks core count until memory bandwidth saturates",
		},
	}
	rng := xhash.NewRNG(cfg.Seed + 22)
	raw := workload.RandomSets(workload.DefaultUniverse, []int{n, n, n, n}, rng)
	lists := prepLists(cfg, 2, raw...)
	var base float64
	for _, workers := range []int{1, 2, 4} {
		if _, err := fastintersect.IntersectParallel(workers, lists...); err != nil {
			panic(err)
		}
		d := timeIt(cfg.Reps, func() { _, _ = fastintersect.IntersectParallel(workers, lists...) })
		if workers == 1 {
			base = float64(d)
		}
		t.AddRow(fmt.Sprintf("%d", workers), ms(d), fmt.Sprintf("%.2fx", base/float64(d)))
	}
	return []*Table{t}
}

func init() {
	register(Experiment{
		ID:    "ablation-thm35",
		Title: "Theorem 3.5: two-set optimal resolution vs per-set resolution",
		Paper: "§3.2 Theorem 3.5 vs Theorem 3.6 (multi-resolution structure)",
		Run:   runAblationThm35,
	})
}

func runAblationThm35(cfg Config) []*Table {
	n2 := 1_000_000
	if cfg.Full() {
		n2 = 4_000_000
	}
	t := &Table{
		ID:      "ablation-thm35",
		Title:   fmt.Sprintf("RanGroup time (ms), |L2| = %d, skewed |L1|", n2),
		Columns: []string{"sr", "|L1|", "per-set t (Thm 3.6)", "optimal t (Thm 3.5)"},
		Notes: []string{
			"Theorem 3.5's matched resolution t1 = t2 = ⌈log √(n1·n2/w)⌉ beats the per-set choice when sizes are skewed: O(√(n1n2)/√w) group pairs instead of O((n1+n2)/√w)",
		},
	}
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	rng := xhash.NewRNG(cfg.Seed + 35)
	for _, sr := range []int{1, 16, 64, 256} {
		n1 := n2 / sr
		aSet, bSet := workload.PairWithIntersection(workload.DefaultUniverse, n1, n2, n1/100, rng)
		ra, _ := core.NewRanGroupList(fam, aSet)
		rb, _ := core.NewRanGroupList(fam, bSet)
		ma, _ := core.NewRanGroupMulti(fam, aSet)
		mb, _ := core.NewRanGroupMulti(fam, bSet)
		core.IntersectRanGroup(ra, rb) // warm
		core.IntersectRanGroupPairOptimal(ma, mb)
		dPer := timeIt(cfg.Reps, func() { core.IntersectRanGroup(ra, rb) })
		dOpt := timeIt(cfg.Reps, func() { core.IntersectRanGroupPairOptimal(ma, mb) })
		t.AddRow(fmt.Sprintf("%d", sr), fmt.Sprintf("%d", n1), ms(dPer), ms(dOpt))
	}
	return []*Table{t}
}
