package harness

import (
	"fmt"
	"sync"
	"time"

	"fastintersect"
	"fastintersect/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Normalized execution time on the (simulated) real workload",
		Paper: "Figure 7",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Real-workload breakdown by query length",
		Paper: "Figure 12 (Appendix C.2)",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "intro-stats",
		Title: "Workload statistics vs the paper's reported query characteristics",
		Paper: "§1 Bing Shopping statistic and §4 query characteristics",
		Run:   runIntroStats,
	})
}

// realAlgorithms are the bars of Figure 7.
var realAlgorithms = []fastintersect.Algorithm{
	fastintersect.Merge, fastintersect.SkipList, fastintersect.Hash,
	fastintersect.SvS, fastintersect.Adaptive, fastintersect.BaezaYates,
	fastintersect.SmallAdaptive, fastintersect.Lookup, fastintersect.BPP,
	fastintersect.RanGroup, fastintersect.RanGroupScan, fastintersect.HashBin,
}

// realEnv caches the simulated corpus, preprocessed posting lists and the
// per-query timing matrix, shared between fig7 and fig12.
type realEnv struct {
	real  *workload.Real
	lists map[int]*fastintersect.List
	times [][]time.Duration // times[queryIdx][algoIdx]
}

var (
	realMu   sync.Mutex
	realEnvs = map[string]*realEnv{}
)

func realConfig(cfg Config) workload.RealConfig {
	rc := workload.SmallRealConfig()
	if cfg.Full() {
		rc = workload.FullRealConfig()
	} else {
		rc.NumQueries = 400 // enough queries for stable winner statistics
	}
	rc.Seed = cfg.Seed
	return rc
}

func getRealEnv(cfg Config) *realEnv {
	realMu.Lock()
	defer realMu.Unlock()
	key := fmt.Sprintf("%s-%d", cfg.Scale, cfg.Seed)
	if e, ok := realEnvs[key]; ok {
		return e
	}
	e := &realEnv{
		real:  workload.NewReal(realConfig(cfg)),
		lists: map[int]*fastintersect.List{},
	}
	e.measure(cfg)
	realEnvs[key] = e
	return e
}

// list returns the preprocessed list of a term, building it on first use.
func (e *realEnv) list(term int) *fastintersect.List {
	if l, ok := e.lists[term]; ok {
		return l
	}
	l, err := fastintersect.Preprocess(e.real.Postings[term],
		fastintersect.WithSeed(fastintersect.DefaultSeed), fastintersect.WithHashImages(4))
	if err != nil {
		panic(err)
	}
	e.lists[term] = l
	return l
}

// measure fills the per-query timing matrix.
func (e *realEnv) measure(cfg Config) {
	e.times = make([][]time.Duration, len(e.real.Queries))
	for qi, q := range e.real.Queries {
		lists := make([]*fastintersect.List, len(q.Terms))
		for i, term := range q.Terms {
			lists[i] = e.list(term)
		}
		row := make([]time.Duration, len(realAlgorithms))
		for ai, algo := range realAlgorithms {
			// Warm (builds lazy structures), then time.
			if _, err := fastintersect.IntersectWith(algo, lists...); err != nil {
				panic(err)
			}
			row[ai] = timeIt(cfg.Reps, func() {
				_, _ = fastintersect.IntersectWith(algo, lists...)
			})
		}
		e.times[qi] = row
	}
}

// aggregate sums times and counts wins over the query subset for which
// keep(qi) is true.
func (e *realEnv) aggregate(keep func(int) bool) (totals []time.Duration, wins []int, count int) {
	totals = make([]time.Duration, len(realAlgorithms))
	wins = make([]int, len(realAlgorithms))
	for qi, row := range e.times {
		if !keep(qi) {
			continue
		}
		count++
		best := 0
		for ai, d := range row {
			totals[ai] += d
			if d < row[best] {
				best = ai
			}
		}
		wins[best]++
	}
	return totals, wins, count
}

func realTable(id, title string, totals []time.Duration, wins []int, count int) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"algorithm", "total ms", "normalized vs Merge", "% queries fastest"},
	}
	mergeIdx := 0 // Merge is realAlgorithms[0]
	for ai, algo := range realAlgorithms {
		t.AddRow(algo.String(), ms(totals[ai]), ratio(totals[ai], totals[mergeIdx]),
			fmt.Sprintf("%.1f", 100*float64(wins[ai])/float64(count)))
	}
	return t
}

func runFig7(cfg Config) []*Table {
	e := getRealEnv(cfg)
	totals, wins, count := e.aggregate(func(int) bool { return true })
	t := realTable("fig7", fmt.Sprintf("All %d queries (Merge normalized to 1)", count), totals, wins, count)
	t.Notes = []string{
		"paper shape: RanGroupScan best overall (fastest on 61.6% of queries), RanGroup next (16%), HashBin 7.7%; Lookup best non-paper algorithm (6.4%), then SvS (3.6%)",
		"HashBin beats Merge even outside its design regime, as in the paper",
	}
	return []*Table{t}
}

func runFig12(cfg Config) []*Table {
	e := getRealEnv(cfg)
	var out []*Table
	for _, k := range []int{2, 3, 4, 5} {
		totals, wins, count := e.aggregate(func(qi int) bool {
			return len(e.real.Queries[qi].Terms) == k
		})
		if count == 0 {
			continue
		}
		t := realTable(fmt.Sprintf("fig12-k%d", k),
			fmt.Sprintf("%d-keyword queries (%d of them)", k, count), totals, wins, count)
		if k == 2 {
			t.Notes = []string{"paper shape: Merge degrades as k grows; Hash improves with k but stays near-worst; RanGroup ≈ RanGroupScan at k = 4"}
		}
		out = append(out, t)
	}
	return out
}

func runIntroStats(cfg Config) []*Table {
	e := getRealEnv(cfg)
	st := e.real.ComputeStats()
	t := &Table{
		ID:      "intro-stats",
		Title:   "Simulated workload statistics vs the paper's measurements",
		Columns: []string{"statistic", "paper", "simulated"},
	}
	add := func(name, paper string, val float64) {
		t.AddRow(name, paper, fmt.Sprintf("%.3f", val))
	}
	total := 0
	for _, c := range st.QueriesByK {
		total += c
	}
	for _, k := range sortedKeys(st.QueriesByK) {
		paper := map[int]string{2: "0.68", 3: "0.23", 4: "0.06", 5: "~0.03"}[k]
		add(fmt.Sprintf("fraction of %d-keyword queries", k), paper,
			float64(st.QueriesByK[k])/float64(total))
	}
	add("avg |L1|/|L2|, k=2", "0.21", st.AvgRatioL1L2[2])
	add("avg |L1|/|L2|, k=3", "0.31", st.AvgRatioL1L2[3])
	add("avg |L1|/|L3|, k=3", "0.09", st.AvgRatioL1Lk[3])
	add("avg |L1|/|L2|, k=4", "0.36", st.AvgRatioL1L2[4])
	add("avg |L1|/|L4|, k=4", "0.06", st.AvgRatioL1Lk[4])
	add("avg r/|L1|", "0.19", st.AvgInterOverL1)
	add("queries with r ≤ min-df/10", "0.94 (Bing Shopping)", st.Frac10xSmaller)
	add("queries with r ≤ min-df/100", "0.76 (Bing Shopping)", st.Frac100xSmaller)
	return []*Table{t}
}
