package harness

import (
	"fmt"

	"fastintersect/internal/compress"
	"fastintersect/internal/core"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func init() {
	register(Experiment{
		ID:    "storage-sweep",
		Title: "Adaptive posting storage: encoding choice, space and time per density",
		Paper: "§4.1/App. B applied to the serving tier",
		Run:   runStorageSweep,
	})
}

// StorageMeasure is one (workload, encoding) cell of the storage sweep.
type StorageMeasure struct {
	Encoding        string  `json:"encoding"`
	BytesPerPosting float64 `json:"bytes_per_posting"`
	NsPerOp         int64   `json:"ns_per_op"`
	// Chosen marks the encoding ChooseEncoding picks for this workload's
	// lists.
	Chosen bool `json:"chosen"`
	// ResultOK confirms the intersection over this encoding matched the
	// reference merge.
	ResultOK bool `json:"result_ok"`
}

// StorageWorkload is one synthetic density point of the storage sweep.
type StorageWorkload struct {
	Name      string           `json:"name"`
	N         int              `json:"n"`
	Universe  uint32           `json:"universe"`
	Chosen    string           `json:"chosen"`
	Encodings []StorageMeasure `json:"encodings"`
}

// CompressReport is the machine-readable result of the storage sweep: the
// BENCH_compress.json artifact emitted by fsibench -json, seeding the
// performance trajectory CI tracks across commits.
type CompressReport struct {
	Schema    string            `json:"schema"`
	Scale     string            `json:"scale"`
	Seed      uint64            `json:"seed"`
	Reps      int               `json:"reps"`
	Workloads []StorageWorkload `json:"workloads"`
}

// storageWorkloads spans the density regimes of the encoding heuristic:
// tiny lists stay raw, dense lists (≳1/16 of their span) take bitseg's
// word-parallel chunks, mid-density lists take γ, sparse lists take δ,
// and long lists take Lowbits once its space estimate is within
// LowbitsSpaceFactor of the best gap code.
func storageWorkloads(cfg Config) []StorageWorkload {
	ws := []StorageWorkload{
		{Name: "tiny", N: 32, Universe: 1 << 16},
		{Name: "small-dense", N: 2048, Universe: 1 << 13},
		{Name: "mid-dense", N: 2048, Universe: 40 * 1024},
		{Name: "small-sparse", N: 2048, Universe: 1 << 26},
		{Name: "large-dense", N: 1 << 16, Universe: 1 << 18},
		{Name: "large-mid", N: 1 << 16, Universe: 1 << 26},
	}
	if cfg.Full() {
		ws = append(ws, StorageWorkload{Name: "large-paper", N: 1 << 20, Universe: workload.DefaultUniverse})
	}
	return ws
}

// CompressBench measures every storage encoding on every sweep workload:
// bytes per posting (both lists, exact payload accounting) and the
// two-list intersection time over the stored representations.
func CompressBench(cfg Config) *CompressReport {
	fam := core.NewFamily(cfg.Seed, compress.StoredHashImages)
	rng := xhash.NewRNG(cfg.Seed + 121)
	rep := &CompressReport{
		Schema: "fsibench/compress/v1",
		Scale:  cfg.Scale,
		Seed:   cfg.Seed,
		Reps:   cfg.Reps,
	}
	for _, w := range storageWorkloads(cfg) {
		r := w.N / 100
		if r < 1 {
			r = 1
		}
		a, b := workload.PairWithIntersection(w.Universe, w.N, w.N, r, rng)
		want := sets.IntersectReference(a, b)
		chosen := compress.ChooseEncoding(a)
		w.Chosen = chosen.String()
		for _, enc := range compress.Encodings() {
			sa, err := compress.NewStored(fam, a, enc)
			if err != nil {
				panic(fmt.Sprintf("harness: storage sweep %s/%v: %v", w.Name, enc, err))
			}
			sb, err := compress.NewStored(fam, b, enc)
			if err != nil {
				panic(fmt.Sprintf("harness: storage sweep %s/%v: %v", w.Name, enc, err))
			}
			got := compress.IntersectStored(sa, sb) // warm + correctness
			d := timeIt(cfg.Reps, func() { compress.IntersectStored(sa, sb) })
			w.Encodings = append(w.Encodings, StorageMeasure{
				Encoding:        enc.String(),
				BytesPerPosting: float64(sa.SizeBytes()+sb.SizeBytes()) / float64(sa.Len()+sb.Len()),
				NsPerOp:         d.Nanoseconds(),
				Chosen:          enc == chosen,
				ResultOK:        sets.Equal(got, want),
			})
		}
		rep.Workloads = append(rep.Workloads, w)
	}
	return rep
}

func runStorageSweep(cfg Config) []*Table {
	rep := CompressBench(cfg)
	encNames := make([]string, 0, 4)
	for _, e := range compress.Encodings() {
		encNames = append(encNames, e.String())
	}
	tSpace := &Table{
		ID:      "storage-sweep-space",
		Title:   "Stored bytes/posting per encoding (pair of equal lists, r = 1%)",
		Columns: append([]string{"workload", "n", "universe", "chosen"}, encNames...),
		Notes: []string{
			"chosen = ChooseEncoding's pick: Raw for tiny lists, Bitseg for dense, Gamma for moderately dense, Delta for sparse, Lowbits for long mid-density lists",
		},
	}
	tTime := &Table{
		ID:      "storage-sweep-time",
		Title:   "Intersection time (ms) over the stored representations",
		Columns: append([]string{"workload", "n", "universe", "chosen"}, encNames...),
		Notes: []string{
			"Lowbits intersects without per-element decode (Appendix B); γ/δ pay a bucket decode per surviving probe",
		},
	}
	for _, w := range rep.Workloads {
		rowS := []string{w.Name, fmt.Sprintf("%d", w.N), fmt.Sprintf("%d", w.Universe), w.Chosen}
		rowT := []string{w.Name, fmt.Sprintf("%d", w.N), fmt.Sprintf("%d", w.Universe), w.Chosen}
		for _, m := range w.Encodings {
			rowS = append(rowS, fmt.Sprintf("%.2f", m.BytesPerPosting))
			cell := fmt.Sprintf("%.3f", float64(m.NsPerOp)/1e6)
			if !m.ResultOK {
				cell += " (WRONG RESULT)"
			}
			rowT = append(rowT, cell)
		}
		tSpace.AddRow(rowS...)
		tTime.AddRow(rowT...)
	}
	return []*Table{tSpace, tTime}
}
