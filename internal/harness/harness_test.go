package harness

import (
	"strings"
	"testing"
	"time"
)

// tinyConfig runs experiments at the small scale with single repetitions;
// the full experiment bodies are exercised by TestRegistrySmokes below on a
// few fast entries, and end-to-end by cmd/fsibench.
func tinyConfig() Config {
	return Config{Scale: "small", Seed: 42, Reps: 1}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure/table of the paper's evaluation must have an entry.
	want := []string{
		"fig4", "fig5", "fig6", "ratio", "sizes", "fig7", "fig8",
		"real-compressed", "fig9", "fig10", "fig11", "fig12", "intro-stats",
		"ablation-width", "ablation-m", "ablation-parallel", "storage-sweep",
		"serve-bench", "obs-bench", "overload",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Fatalf("registry has %d entries, want ≥ %d", len(IDs()), len(want))
	}
}

// TestServeBench pins the serving benchmark's guarantees: both storage
// modes are measured, every scenario carries non-degenerate throughput and
// allocation numbers, and the schema the CI artifact consumers rely on is
// stable.
func TestServeBench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a corpus and runs timed benchmarks")
	}
	rep := ServeBench(tinyConfig())
	if rep.Schema != "fsibench/serve/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Scenarios) != 6 {
		t.Fatalf("got %d scenarios, want 6 (raw + compressed, each ×{1,16,64} batch)", len(rep.Scenarios))
	}
	storages := map[string]bool{}
	batches := map[int]bool{}
	for _, s := range rep.Scenarios {
		storages[s.Storage] = true
		batches[s.Batch] = true
		if s.NsPerOp <= 0 || s.QPS <= 0 {
			t.Fatalf("%s: degenerate timing (ns/op=%d, qps=%f)", s.Name, s.NsPerOp, s.QPS)
		}
		if s.AllocsPerOp <= 0 || s.AllocsPerOp > 1000 {
			t.Fatalf("%s: implausible allocs/op %d", s.Name, s.AllocsPerOp)
		}
		if s.Docs == 0 || s.Terms == 0 || s.Queries == 0 {
			t.Fatalf("%s: empty corpus accounting", s.Name)
		}
		if s.Batch > 1 && s.SpeedupVsSingle <= 0 {
			t.Fatalf("%s: batch scenario missing the batching delta", s.Name)
		}
	}
	if !storages["raw"] || !storages["compressed"] {
		t.Fatalf("missing storage mode: %v", storages)
	}
	if !batches[1] || !batches[16] || !batches[64] {
		t.Fatalf("missing batch sizes: %v", batches)
	}
}

// TestObsBench is the acceptance check for the observability surface: the
// latency percentiles reconstructed from a /metrics scrape must agree with
// the percentiles the harness measures directly on the same replay, within
// the log2 histogram's bucket resolution. The scraped number is the bucket
// upper bound, so it can sit up to 2x above the measured value; a factor-4
// band on each side absorbs rank granularity and scheduler noise without
// ever letting a broken bucket mapping pass.
func TestObsBench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a corpus and replays thousands of queries")
	}
	rep := ObsBench(tinyConfig())
	if rep.Schema != "fsibench/obs/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("got %d phases, want 2 (replay + churn)", len(rep.Phases))
	}
	for _, p := range rep.Phases {
		if p.Queries == 0 || p.QueriesTotal == 0 {
			t.Fatalf("%s: no queries measured: %+v", p.Name, p)
		}
		checks := []struct {
			pct              string
			measured, scrape float64
		}{
			{"p50", p.MeasuredP50US, p.ScrapeP50US},
			{"p90", p.MeasuredP90US, p.ScrapeP90US},
			{"p99", p.MeasuredP99US, p.ScrapeP99US},
		}
		for _, c := range checks {
			if c.measured <= 0 || c.scrape <= 0 {
				t.Fatalf("%s %s: degenerate percentile (measured %.1f, scrape %.1f)",
					p.Name, c.pct, c.measured, c.scrape)
			}
			if r := c.scrape / c.measured; r < 0.25 || r > 4 {
				t.Errorf("%s %s: scraped %.1fµs vs measured %.1fµs (ratio %.2f, want within bucket resolution)",
					p.Name, c.pct, c.scrape, c.measured, r)
			}
		}
	}
	if rep.Phases[1].Mutations == 0 {
		t.Fatal("churn phase recorded no mutations")
	}
	if rep.Phases[1].MutationsTotal < uint64(rep.Phases[1].Mutations) {
		t.Fatalf("scraped fsi_mutations_total %d < %d mutations performed",
			rep.Phases[1].MutationsTotal, rep.Phases[1].Mutations)
	}
	if rep.Phases[1].QueriesTotal <= rep.Phases[0].QueriesTotal {
		t.Fatal("fsi_queries_total did not advance between phases")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown experiment found")
	}
}

func TestTablePrint(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var sb strings.Builder
	tb.Print(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "a    bee", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTimeIt(t *testing.T) {
	calls := 0
	d := timeIt(3, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 3 {
		t.Fatalf("f called %d times", calls)
	}
	if d < 500*time.Microsecond {
		t.Fatalf("implausible minimum %v", d)
	}
	if timeIt(0, func() {}) < 0 {
		t.Fatal("negative duration")
	}
}

func TestFormatters(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.500" {
		t.Fatalf("ms = %q", got)
	}
	if got := ratio(2*time.Second, time.Second); got != "2.00" {
		t.Fatalf("ratio = %q", got)
	}
	if got := ratio(time.Second, 0); got != "inf" {
		t.Fatalf("ratio/0 = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[int]string{3: "c", 1: "a", 2: "b"})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("sortedKeys = %v", got)
	}
}

// TestCompressBenchSweep pins the storage sweep's guarantees: every
// encoding's intersection is byte-identical to the reference, and the
// adaptive heuristic selects each of Raw, Gamma, Delta, Lowbits and
// Bitseg for at least one density regime.
func TestCompressBenchSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is not -short friendly")
	}
	rep := CompressBench(tinyConfig())
	if rep.Schema != "fsibench/compress/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	chosen := map[string]bool{}
	for _, w := range rep.Workloads {
		if len(w.Encodings) != 5 {
			t.Fatalf("%s: %d encodings measured", w.Name, len(w.Encodings))
		}
		chosen[w.Chosen] = true
		for _, m := range w.Encodings {
			if !m.ResultOK {
				t.Fatalf("%s/%s: intersection diverged from reference", w.Name, m.Encoding)
			}
			if m.BytesPerPosting <= 0 {
				t.Fatalf("%s/%s: bytes/posting = %v", w.Name, m.Encoding, m.BytesPerPosting)
			}
			if m.Chosen != (m.Encoding == w.Chosen) {
				t.Fatalf("%s/%s: chosen flag inconsistent with %q", w.Name, m.Encoding, w.Chosen)
			}
		}
	}
	for _, enc := range []string{"Raw", "Gamma", "Delta", "Lowbits", "Bitseg"} {
		if !chosen[enc] {
			t.Fatalf("no workload selects %s (chosen set: %v)", enc, chosen)
		}
	}
}

// TestExperimentSmokes runs the cheapest experiments end to end so the
// harness plumbing (workload generation, preprocessing, timing, table
// building) is covered by `go test`.
func TestExperimentSmokes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short friendly")
	}
	cfg := tinyConfig()
	for _, id := range []string{"sizes", "ablation-width", "ablation-m"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tables := e.Run(cfg)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: table %s has no rows", id, tb.ID)
			}
			var sb strings.Builder
			tb.Print(&sb)
			if !strings.Contains(sb.String(), tb.ID) {
				t.Fatalf("%s: print missing ID", id)
			}
		}
	}
}

// TestSegmentsBench is the acceptance check for the tiered segment
// lifecycle: replaying the same churn stream, the tiered policy must pay
// strictly less write amplification than rebuild-on-every-threshold while
// answering every query identically — and it must actually exercise the
// tier (freezes, and strictly fewer bytes, not merely fewer compactions).
func TestSegmentsBench(t *testing.T) {
	if testing.Short() {
		t.Skip("replays churn streams through four engines")
	}
	rep := SegmentsBench(tinyConfig())
	if rep.Schema != "fsibench/segments/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4 (2 storages × 2 policies)", len(rep.Scenarios))
	}
	byKey := map[string]SegmentsScenario{}
	for _, s := range rep.Scenarios {
		byKey[s.Storage+"/"+s.Policy] = s
		if s.Adds == 0 || s.Deletes == 0 || s.Queries == 0 {
			t.Fatalf("%s: degenerate replay %+v", s.Name, s)
		}
		if s.IngestedBytes == 0 {
			t.Fatalf("%s: no ingested bytes accounted", s.Name)
		}
	}
	for _, storage := range []string{"raw", "compressed"} {
		tiered, ok := byKey[storage+"/tiered"]
		if !ok {
			t.Fatalf("missing tiered scenario for %s", storage)
		}
		rebuild, ok := byKey[storage+"/rebuild"]
		if !ok {
			t.Fatalf("missing rebuild scenario for %s", storage)
		}
		if tiered.Freezes == 0 {
			t.Errorf("%s: tiered policy never froze a segment", storage)
		}
		if rebuild.Compactions == 0 {
			t.Errorf("%s: rebuild policy never compacted; the comparison is vacuous", storage)
		}
		if tiered.WriteAmp >= rebuild.WriteAmp {
			t.Errorf("%s: tiered write amplification %.2f is not strictly below rebuild's %.2f",
				storage, tiered.WriteAmp, rebuild.WriteAmp)
		}
	}
	if len(rep.Parity) != 2 {
		t.Fatalf("got %d parity entries, want 2", len(rep.Parity))
	}
	for _, p := range rep.Parity {
		if p.Queries == 0 {
			t.Fatalf("%s: parity checked no queries", p.Storage)
		}
		if !p.OK {
			t.Errorf("%s: tiered and rebuild engines disagree on query results", p.Storage)
		}
	}
}

// TestFeedbackBench is the acceptance check for the adaptive planning loop:
// under a drifted corpus the feedback engine's corrected plans must beat the
// frozen mis-calibrated engine, must stop running the under-priced merge
// kernel the frozen engine keeps dispatching, and must not have cost
// anything meaningful before the drift (when the mispriced plans happened
// to be right anyway).
func TestFeedbackBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs adaptation streams and timed benchmarks through five engine phases")
	}
	rep := FeedbackBench(tinyConfig())
	if rep.Schema != "fsibench/feedback/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Scenarios) != 5 {
		t.Fatalf("got %d scenarios, want 5 (frozen/feedback ×2 phases + oracle)", len(rep.Scenarios))
	}
	byKey := map[string]FeedbackScenario{}
	for _, s := range rep.Scenarios {
		byKey[s.Phase+"/"+s.Engine] = s
		if s.NsPerOp <= 0 || s.QPS <= 0 {
			t.Fatalf("%s/%s: degenerate timing (ns/op=%d)", s.Phase, s.Engine, s.NsPerOp)
		}
	}
	fb := byKey["post-drift/feedback"]
	if fb.Refits == 0 || fb.Observations == 0 {
		t.Fatalf("feedback engine never refit (refits=%d, obs=%d); the loop never engaged", fb.Refits, fb.Observations)
	}
	if fb.MergeCorrection <= 1.5 {
		t.Errorf("merge correction %.2f; want it learned well above 1 (the anchor was under-priced %v×)",
			fb.MergeCorrection, rep.Distortion)
	}
	frozen := byKey["post-drift/frozen"]
	if frozen.MergeExecShare < 0.5 {
		t.Errorf("frozen engine ran merges on only %.0f%% of sampled kernel executions post-drift; the mis-calibration scenario is vacuous",
			100*frozen.MergeExecShare)
	}
	if fb.MergeExecShare >= 0.5 {
		t.Errorf("feedback engine still ran merges on %.0f%% of sampled kernel executions post-drift (frozen: %.0f%%); corrections did not flip the plans",
			100*fb.MergeExecShare, 100*frozen.MergeExecShare)
	}
	if rep.PostDriftRatio >= 1.0 {
		t.Errorf("post-drift feedback/frozen ratio %.3f; corrected plans must beat the frozen mis-calibration", rep.PostDriftRatio)
	}
	// 1.05 is the design budget; CI boxes are noisy, so the hard gate allows
	// a little slack on top while still catching a loop that costs real time.
	if rep.PreDriftRatio > 1.10 {
		t.Errorf("pre-drift feedback/frozen ratio %.3f; the loop must be ~free when plans are already right", rep.PreDriftRatio)
	}
}
