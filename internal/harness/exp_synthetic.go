package harness

import (
	"fmt"
	"time"

	"fastintersect"
	"fastintersect/internal/core"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// prepLists preprocesses raw sets through the public API.
func prepLists(cfg Config, m int, raw ...[]uint32) []*fastintersect.List {
	out := make([]*fastintersect.List, len(raw))
	for i, s := range raw {
		l, err := fastintersect.Preprocess(s, fastintersect.WithSeed(cfg.Seed), fastintersect.WithHashImages(m))
		if err != nil {
			panic(err) // generator bug; cannot happen on generated sets
		}
		out[i] = l
	}
	return out
}

// timeAlgo warms the algorithm's structures (one untimed run builds every
// lazy structure) and returns the minimum intersection time over cfg.Reps
// runs, matching the paper's methodology of timing the online phase only.
func timeAlgo(cfg Config, algo fastintersect.Algorithm, lists []*fastintersect.List) time.Duration {
	if _, err := fastintersect.IntersectWith(algo, lists...); err != nil {
		panic(fmt.Sprintf("%v: %v", algo, err))
	}
	return timeIt(cfg.Reps, func() {
		_, _ = fastintersect.IntersectWith(algo, lists...)
	})
}

// fig4Algorithms are the techniques plotted in Figure 4 (BPP included; the
// paper drops it from later graphs for being off-scale).
var fig4Algorithms = []fastintersect.Algorithm{
	fastintersect.Merge, fastintersect.SkipList, fastintersect.Hash,
	fastintersect.IntGroup, fastintersect.BPP, fastintersect.Adaptive,
	fastintersect.SvS, fastintersect.Lookup,
	fastintersect.RanGroup, fastintersect.RanGroupScan,
}

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Varying the set size (2 sets, equal sizes, r = 1%)",
		Paper: "Figure 4",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Varying the intersection size",
		Paper: "Figure 5",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Varying the number of keywords (k = 2, 3, 4)",
		Paper: "Figure 6",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "ratio",
		Title: "Varying the set size ratio sr = |L2|/|L1|",
		Paper: "§4 'Varying the Sets Size Ratios' (text)",
		Run:   runRatio,
	})
	register(Experiment{
		ID:    "sizes",
		Title: "Size of the data structures",
		Paper: "§4 'Size of the Data Structure'",
		Run:   runSizes,
	})
}

func fig4Sizes(cfg Config) []int {
	if cfg.Full() {
		return []int{1_000_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000}
	}
	return []int{125_000, 250_000, 500_000, 1_000_000, 2_000_000}
}

func runFig4(cfg Config) []*Table {
	algos := cfg.FilterAlgos(fig4Algorithms)
	t := &Table{
		ID:      "fig4",
		Title:   "Intersection time (ms), 2 sets of equal size, |L1∩L2| = 1%",
		Columns: append([]string{"size"}, algoNames(algos)...),
		Notes: []string{
			"paper shape: RanGroupScan and IntGroup fastest (40-50% below Merge); Hash, SkipList, BPP worst; ordering stable across sizes",
		},
	}
	t.NoteEmptyFilter(cfg, algos)
	rng := xhash.NewRNG(cfg.Seed)
	for _, n := range fig4Sizes(cfg) {
		a, b := workload.PairWithIntersection(workload.DefaultUniverse, n, n, n/100, rng)
		lists := prepLists(cfg, 4, a, b)
		row := []string{fmt.Sprintf("%d", n)}
		for _, algo := range algos {
			row = append(row, ms(timeAlgo(cfg, algo, lists)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

var fig5Algorithms = []fastintersect.Algorithm{
	fastintersect.Merge, fastintersect.SkipList, fastintersect.Hash,
	fastintersect.Adaptive, fastintersect.SvS, fastintersect.Lookup,
	fastintersect.IntGroup, fastintersect.RanGroup, fastintersect.RanGroupScan,
}

func runFig5(cfg Config) []*Table {
	n := 1_000_000
	if cfg.Full() {
		n = 10_000_000
	}
	algos := cfg.FilterAlgos(fig5Algorithms)
	t := &Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("Intersection time (ms), 2 sets of %d elements, varying r", n),
		Columns: append([]string{"r"}, algoNames(algos)...),
		Notes: []string{
			"paper shape: RanGroupScan/IntGroup best for r < 0.7n; Merge best beyond, with RanGroupScan a close 2nd up to r = n",
		},
	}
	t.NoteEmptyFilter(cfg, algos)
	rng := xhash.NewRNG(cfg.Seed + 5)
	rs := []int{500, n / 100, n / 10, 3 * n / 10, n / 2, 7 * n / 10, 9 * n / 10, n}
	for _, r := range rs {
		a, b := workload.PairWithIntersection(workload.DefaultUniverse, n, n, r, rng)
		lists := prepLists(cfg, 4, a, b)
		row := []string{fmt.Sprintf("%d", r)}
		for _, algo := range algos {
			row = append(row, ms(timeAlgo(cfg, algo, lists)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

var fig6Algorithms = []fastintersect.Algorithm{
	fastintersect.Merge, fastintersect.SkipList, fastintersect.Hash,
	fastintersect.SvS, fastintersect.Adaptive, fastintersect.BaezaYates,
	fastintersect.SmallAdaptive, fastintersect.Lookup,
	fastintersect.RanGroup, fastintersect.RanGroupScan,
}

func runFig6(cfg Config) []*Table {
	n := 1_000_000
	if cfg.Full() {
		n = 10_000_000
	}
	algos := cfg.FilterAlgos(fig6Algorithms)
	t := &Table{
		ID:      "fig6",
		Title:   fmt.Sprintf("Intersection time (ms), k sets of %d uniform IDs, m = 2", n),
		Columns: append([]string{"k"}, algoNames(algos)...),
		Notes: []string{
			"paper shape: RanGroupScan fastest, margin growing with k; RanGroup next; Merge strong among the rest",
		},
	}
	t.NoteEmptyFilter(cfg, algos)
	rng := xhash.NewRNG(cfg.Seed + 6)
	for _, k := range []int{2, 3, 4} {
		ns := make([]int, k)
		for i := range ns {
			ns[i] = n
		}
		raw := workload.RandomSets(workload.DefaultUniverse, ns, rng)
		lists := prepLists(cfg, 2, raw...)
		row := []string{fmt.Sprintf("%d", k)}
		for _, algo := range algos {
			row = append(row, ms(timeAlgo(cfg, algo, lists)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

var ratioAlgorithms = []fastintersect.Algorithm{
	fastintersect.Merge, fastintersect.Hash, fastintersect.SvS,
	fastintersect.Lookup, fastintersect.RanGroup,
	fastintersect.RanGroupScan, fastintersect.HashBin,
}

func runRatio(cfg Config) []*Table {
	n2 := 1_000_000
	if cfg.Full() {
		n2 = 10_000_000
	}
	algos := cfg.FilterAlgos(ratioAlgorithms)
	t := &Table{
		ID:      "ratio",
		Title:   fmt.Sprintf("Intersection time (ms), |L2| = %d, varying sr = |L2|/|L1|, r = 1%%·|L1|", n2),
		Columns: append([]string{"sr", "|L1|"}, algoNames(algos)...),
		Notes: []string{
			"paper shape: RanGroupScan best for sr < 32; Hash/Lookup best for sr ≥ 100; HashBin and RanGroupScan close to the best everywhere",
		},
	}
	t.NoteEmptyFilter(cfg, algos)
	rng := xhash.NewRNG(cfg.Seed + 7)
	for _, sr := range []int{1, 4, 16, 32, 64, 128, 256, 625} {
		n1 := n2 / sr
		if n1 < 16 {
			n1 = 16
		}
		a, b := workload.PairWithIntersection(workload.DefaultUniverse, n1, n2, n1/100, rng)
		lists := prepLists(cfg, 4, a, b)
		row := []string{fmt.Sprintf("%d", sr), fmt.Sprintf("%d", n1)}
		for _, algo := range algos {
			row = append(row, ms(timeAlgo(cfg, algo, lists)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

func runSizes(cfg Config) []*Table {
	n := 1_000_000
	rng := xhash.NewRNG(cfg.Seed + 8)
	set := workload.RandomSets(workload.DefaultUniverse, []int{n}, rng)[0]
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	ig, _ := core.NewIntGroupList(fam, set, false)
	rg, _ := core.NewRanGroupList(fam, set)
	hb, _ := core.NewHashBinList(fam, set)
	rgs1, _ := core.NewRanGroupScanList(fam, set, 1)
	rgs2, _ := core.NewRanGroupScanList(fam, set, 2)
	rgs4, _ := core.NewRanGroupScanList(fam, set, 4)
	raw := n / 2 // 64-bit words of a raw uint32 posting list
	t := &Table{
		ID:      "sizes",
		Title:   fmt.Sprintf("Structure sizes for one set of %d elements (64-bit words)", n),
		Columns: []string{"structure", "words", "vs raw postings"},
		Notes: []string{
			"paper overheads vs an uncompressed posting list: RanGroupScan m=2 +37%, m=4 +63%, IntGroup +75%, RanGroup +87%",
			"the paper counts one machine word per posting; this table counts actual bytes (uint32 postings), so ratios differ by ≈2x on element storage",
		},
	}
	add := func(name string, words int) {
		t.AddRow(name, fmt.Sprintf("%d", words), fmt.Sprintf("%.2fx", float64(words)/float64(raw)))
	}
	add("raw postings", raw)
	add("RanGroupScan m=1", rgs1.SizeWords())
	add("RanGroupScan m=2", rgs2.SizeWords())
	add("RanGroupScan m=4", rgs4.SizeWords())
	add("IntGroup", ig.SizeWords())
	add("RanGroup", rg.SizeWords())
	add("HashBin", hb.SizeWords())
	return []*Table{t}
}

// algoNames renders algorithm column headers.
func algoNames(algos []fastintersect.Algorithm) []string {
	out := make([]string, len(algos))
	for i, a := range algos {
		out[i] = a.String()
	}
	return out
}
