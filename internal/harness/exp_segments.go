package harness

import (
	"fmt"
	"slices"
	"time"

	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "segments",
		Title: "Tiered segment lifecycle vs full rebuild: write amplification and pauses under churn",
		Paper: "mutable tier (no paper artifact); incremental maintenance of the §1 setting",
		Run:   runSegments,
	})
}

// SegmentsScenario is one (storage × compaction policy) replay of the churn
// stream through the segmented engine.
type SegmentsScenario struct {
	Name    string `json:"name"`
	Storage string `json:"storage"`
	Policy  string `json:"policy"`
	Ops     int    `json:"ops"`
	Adds    int    `json:"adds"`
	Deletes int    `json:"deletes"`
	Queries int    `json:"queries"`
	// IngestedBytes is the posting payload the stream wrote (4 bytes per
	// added term occurrence); CompactionBytes is what compaction re-wrote.
	// Their ratio is the write amplification the policy charges for keeping
	// the index queryable.
	IngestedBytes   uint64  `json:"ingested_bytes"`
	CompactionBytes uint64  `json:"compaction_bytes"`
	WriteAmp        float64 `json:"write_amp"`
	Compactions     uint64  `json:"compactions"`
	Freezes         uint64  `json:"segment_freezes"`
	Merges          uint64  `json:"segment_merges"`
	FinalSegments   int     `json:"final_segments"` // frozen segments left engine-wide
	FinalTombstones int     `json:"final_tombstones"`
	QueryP50US      int64   `json:"query_p50_us"`
	QueryP99US      int64   `json:"query_p99_us"`
	MutationP50US   int64   `json:"mutation_p50_us"`
	// MutationMaxUS is the pause proxy: the worst single mutation, which
	// under the rebuild policy absorbs the swap of a full re-encode and
	// under the tiered policy only ever waits on a freeze or merge swap.
	MutationMaxUS int64 `json:"mutation_max_us"`
}

// SegmentsParity records the cross-policy check: after both replays of one
// storage mode quiesce, every distinct query of the stream must return the
// same documents from the tiered engine and the rebuild engine.
type SegmentsParity struct {
	Storage string `json:"storage"`
	Queries int    `json:"queries"`
	OK      bool   `json:"ok"`
}

// SegmentsReport is the machine-readable result of the segments experiment:
// the BENCH_segments.json artifact emitted by fsibench -segments-json,
// comparing the tiered segment lifecycle against rebuild-on-every-threshold.
type SegmentsReport struct {
	Schema    string             `json:"schema"`
	Scale     string             `json:"scale"`
	Seed      uint64             `json:"seed"`
	Scenarios []SegmentsScenario `json:"scenarios"`
	Parity    []SegmentsParity   `json:"parity"`
}

// SegmentsBench replays one interleaved add/delete/query stream per
// (storage × compaction policy) combination — the SAME stream, so the two
// policies answer for identical work — and measures what each pays to stay
// queryable: bytes re-written by compaction against bytes ingested (write
// amplification), the worst mutation stall, and query latency over the tier
// each policy maintains. A cross-policy parity pass then confirms the tiered
// lifecycle is a pure cost change: every query agrees with the rebuild
// engine's answer.
func SegmentsBench(cfg Config) *SegmentsReport {
	rc := workload.SmallRealConfig()
	rc.NumDocs, rc.NumTerms, rc.NumQueries = 50_000, 2_000, 256
	ops := 20_000
	threshold := 2_000
	if cfg.Full() {
		rc.NumDocs, rc.NumTerms, rc.NumQueries = 500_000, 20_000, 1_000
		ops = 100_000
		threshold = 10_000
	}
	rc.Seed = cfg.Seed
	real := workload.NewReal(rc)
	ccfg := workload.DefaultChurnConfig()
	ccfg.AddFrac, ccfg.DeleteFrac = 0.25, 0.10
	ccfg.Seed = cfg.Seed + 2
	ccfg.Stream.Seed = cfg.Seed + 3
	stream := real.ChurnStream(ops, ccfg)

	rep := &SegmentsReport{Schema: "fsibench/segments/v1", Scale: cfg.Scale, Seed: cfg.Seed}
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		engines := map[engine.CompactPolicy]*engine.Engine{}
		for _, pol := range []engine.CompactPolicy{engine.CompactTiered, engine.CompactRebuild} {
			sc, e := runSegmentsScenario(real, stream, st, pol, threshold)
			rep.Scenarios = append(rep.Scenarios, sc)
			engines[pol] = e
		}
		rep.Parity = append(rep.Parity,
			segmentsParity(st, stream, engines[engine.CompactTiered], engines[engine.CompactRebuild]))
	}
	return rep
}

func runSegmentsScenario(real *workload.Real, stream []workload.ChurnOp, st invindex.Storage, pol engine.CompactPolicy, threshold int) (SegmentsScenario, *engine.Engine) {
	// MaxSegments 2 keeps the frozen tier tight so the replay exercises
	// size-tiered merges, not just free freezes — the tiered write
	// amplification below is real merge work, not a vacuous zero.
	e := engine.New(engine.Config{Shards: 2, Storage: st, CompactThreshold: threshold, CompactPolicy: pol, MaxSegments: 2})
	b := e.NewBuilder()
	for t, docs := range real.Postings {
		if err := b.AddPosting(workload.TermName(t), docs); err != nil {
			panic(fmt.Sprintf("harness: segments build: %v", err))
		}
	}
	if err := e.Install(b); err != nil {
		panic(fmt.Sprintf("harness: segments install: %v", err))
	}

	sc := SegmentsScenario{
		Name:    fmt.Sprintf("segments-%s-%s", st, pol),
		Storage: st.String(),
		Policy:  pol.String(),
		Ops:     len(stream),
	}
	var queryLat, mutLat []time.Duration
	for _, op := range stream {
		switch op.Kind {
		case workload.ChurnAdd:
			start := time.Now()
			if err := e.AddDocument(op.DocID, op.Terms); err != nil {
				panic(fmt.Sprintf("harness: segments add: %v", err))
			}
			mutLat = append(mutLat, time.Since(start))
			sc.Adds++
			sc.IngestedBytes += 4 * uint64(len(op.Terms))
		case workload.ChurnDelete:
			start := time.Now()
			if _, err := e.DeleteDocument(op.DocID); err != nil {
				panic(fmt.Sprintf("harness: segments delete: %v", err))
			}
			mutLat = append(mutLat, time.Since(start))
			sc.Deletes++
		default:
			start := time.Now()
			if _, err := e.Query(op.Query); err != nil {
				panic(fmt.Sprintf("harness: segments query %q: %v", op.Query, err))
			}
			queryLat = append(queryLat, time.Since(start))
			sc.Queries++
		}
	}
	// Drain in-flight background compactions so the counters are final and a
	// straggler does not burn CPU into the next scenario.
	fin := e.Stats()
	for fin.Delta.CompactingShards > 0 {
		time.Sleep(time.Millisecond)
		fin = e.Stats()
	}
	sc.CompactionBytes = fin.CompactionBytes
	if sc.IngestedBytes > 0 {
		sc.WriteAmp = float64(sc.CompactionBytes) / float64(sc.IngestedBytes)
	}
	sc.Compactions = fin.Compactions
	sc.Freezes = fin.SegmentFreezes
	sc.Merges = fin.SegmentMerges
	sc.FinalSegments = fin.Delta.Segments
	sc.FinalTombstones = fin.Delta.Tombstones
	slices.Sort(queryLat)
	slices.Sort(mutLat)
	sc.QueryP50US = pctUS(queryLat, 50)
	sc.QueryP99US = pctUS(queryLat, 99)
	sc.MutationP50US = pctUS(mutLat, 50)
	if n := len(mutLat); n > 0 {
		sc.MutationMaxUS = mutLat[n-1].Microseconds()
	}
	return sc, e
}

// segmentsParity replays every distinct query of the stream against the
// quiesced tiered and rebuild engines and reports whether all answers match.
func segmentsParity(st invindex.Storage, stream []workload.ChurnOp, tiered, rebuild *engine.Engine) SegmentsParity {
	p := SegmentsParity{Storage: st.String(), OK: true}
	seen := map[string]bool{}
	for _, op := range stream {
		if op.Kind != workload.ChurnQuery || seen[op.Query] {
			continue
		}
		seen[op.Query] = true
		p.Queries++
		a, err := tiered.Query(op.Query)
		if err != nil {
			panic(fmt.Sprintf("harness: segments parity %q: %v", op.Query, err))
		}
		b, err := rebuild.Query(op.Query)
		if err != nil {
			panic(fmt.Sprintf("harness: segments parity %q: %v", op.Query, err))
		}
		if !sets.Equal(a.Docs, b.Docs) {
			p.OK = false
		}
	}
	return p
}

func runSegments(cfg Config) []*Table {
	rep := SegmentsBench(cfg)
	summary := &Table{
		ID:      "segments",
		Title:   "Churn replay per storage × compaction policy (same stream, same work)",
		Columns: []string{"scenario", "write-amp", "compact-MB", "compactions", "freezes", "merges", "final-segs", "q-p50-ms", "q-p99-ms", "mut-max-ms"},
		Notes: []string{
			"write-amp = bytes re-written by compaction / posting bytes ingested by adds",
			"rebuild re-encodes the whole shard at every threshold crossing; tiered freezes (free) and merges only the smallest segments",
			"mut-max is the pause proxy: the worst single mutation stall observed",
		},
	}
	msf := func(us int64) string { return fmt.Sprintf("%.3f", float64(us)/1000) }
	for _, s := range rep.Scenarios {
		summary.AddRow(s.Name, fmt.Sprintf("%.2f", s.WriteAmp),
			fmt.Sprintf("%.1f", float64(s.CompactionBytes)/(1<<20)),
			fmt.Sprintf("%d", s.Compactions), fmt.Sprintf("%d", s.Freezes), fmt.Sprintf("%d", s.Merges),
			fmt.Sprintf("%d", s.FinalSegments),
			msf(s.QueryP50US), msf(s.QueryP99US), msf(s.MutationMaxUS))
	}
	parity := &Table{
		ID:      "segments-parity",
		Title:   "Cross-policy query parity after the replays quiesce",
		Columns: []string{"storage", "queries", "ok"},
	}
	for _, p := range rep.Parity {
		parity.AddRow(p.Storage, fmt.Sprintf("%d", p.Queries), fmt.Sprintf("%v", p.OK))
	}
	return []*Table{summary, parity}
}
