package harness

import (
	"fmt"
	"time"

	"fastintersect/internal/compress"
	"fastintersect/internal/core"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Compressed structures: intersection time and space",
		Paper: "Figure 8",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "real-compressed",
		Title: "Compressed structures on the (simulated) real workload",
		Paper: "§4.1 'Experiment on Real Data'",
		Run:   runRealCompressed,
	})
}

// compressedVariant bundles a compressed representation of one pair of sets
// with its intersection runner and size.
type compressedVariant struct {
	name      string
	intersect func() []uint32
	sizeWords int
}

// buildCompressedPair constructs every Figure 8 variant for a pair.
func buildCompressedPair(fam *core.Family, a, b []uint32) []compressedVariant {
	mdA, _ := compress.NewMergeList(a, compress.Delta)
	mdB, _ := compress.NewMergeList(b, compress.Delta)
	mgA, _ := compress.NewMergeList(a, compress.Gamma)
	mgB, _ := compress.NewMergeList(b, compress.Gamma)
	ldA, _ := compress.NewLookupListAuto(a, compress.Delta, 32)
	ldB, _ := compress.NewLookupListAuto(b, compress.Delta, 32)
	rdA, _ := compress.NewRGSList(fam, a, 1, compress.RGSDelta)
	rdB, _ := compress.NewRGSList(fam, b, 1, compress.RGSDelta)
	rlA, _ := compress.NewRGSList(fam, a, 1, compress.RGSLowbits)
	rlB, _ := compress.NewRGSList(fam, b, 1, compress.RGSLowbits)
	return []compressedVariant{
		{"Merge_Gamma", func() []uint32 { return compress.IntersectMerge(mgA, mgB) }, mgA.SizeWords() + mgB.SizeWords()},
		{"Merge_Delta", func() []uint32 { return compress.IntersectMerge(mdA, mdB) }, mdA.SizeWords() + mdB.SizeWords()},
		{"Lookup_Delta", func() []uint32 { return compress.IntersectLookup(ldA, ldB) }, ldA.SizeWords() + ldB.SizeWords()},
		{"RanGroupScan_Delta", func() []uint32 { return compress.IntersectRGS(rdA, rdB) }, rdA.SizeWords() + rdB.SizeWords()},
		{"RanGroupScan_Lowbits", func() []uint32 { return compress.IntersectRGS(rlA, rlB) }, rlA.SizeWords() + rlB.SizeWords()},
	}
}

func fig8Sizes(cfg Config) []int {
	if cfg.Full() {
		return []int{131_072, 262_144, 524_288, 1_048_576, 2_097_152, 4_194_304, 8_388_608}
	}
	return []int{131_072, 262_144, 524_288, 1_048_576, 2_097_152}
}

func runFig8(cfg Config) []*Table {
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	names := []string{"Merge_Gamma", "Merge_Delta", "Lookup_Delta", "RanGroupScan_Delta", "RanGroupScan_Lowbits"}
	tTime := &Table{
		ID:      "fig8-time",
		Title:   "Intersection time (ms), compressed structures, 2 equal sets, r = 1%, m = 1",
		Columns: append([]string{"postings"}, names...),
		Notes: []string{
			"paper shape: RanGroupScan_Lowbits fastest by 7-15x over compressed Merge/Lookup; γ ≈ δ for Merge; RanGroupScan_Delta between",
		},
	}
	tSpace := &Table{
		ID:      "fig8-space",
		Title:   "Structure size (64-bit words, both sets)",
		Columns: append([]string{"postings"}, names...),
		Notes: []string{
			"paper shape: Lowbits 1.3-1.9x the compressed inverted index",
		},
	}
	rng := xhash.NewRNG(cfg.Seed + 88)
	for _, n := range fig8Sizes(cfg) {
		a, b := workload.PairWithIntersection(workload.DefaultUniverse, n, n, n/100, rng)
		variants := buildCompressedPair(fam, a, b)
		rowT := []string{fmt.Sprintf("%d", n)}
		rowS := []string{fmt.Sprintf("%d", n)}
		for _, v := range variants {
			v.intersect() // warm
			rowT = append(rowT, ms(timeIt(cfg.Reps, func() { v.intersect() })))
			rowS = append(rowS, fmt.Sprintf("%d", v.sizeWords))
		}
		tTime.AddRow(rowT...)
		tSpace.AddRow(rowS...)
	}
	return []*Table{tTime, tSpace}
}

func runRealCompressed(cfg Config) []*Table {
	e := getRealEnv(cfg)
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	// Compressed structures per term, built on demand. The compressed RGS
	// intersection is two-list, so this experiment uses the 2-keyword
	// queries (68% of the workload), as noted in DESIGN.md.
	type termStructs struct {
		md, mg *compress.MergeList
		ld, lg *compress.LookupList
		rl     *compress.RGSList
	}
	cache := map[int]*termStructs{}
	get := func(term int) *termStructs {
		if s, ok := cache[term]; ok {
			return s
		}
		p := e.real.Postings[term]
		s := &termStructs{}
		s.md, _ = compress.NewMergeList(p, compress.Delta)
		s.mg, _ = compress.NewMergeList(p, compress.Gamma)
		s.ld, _ = compress.NewLookupListAuto(p, compress.Delta, 32)
		s.lg, _ = compress.NewLookupListAuto(p, compress.Gamma, 32)
		s.rl, _ = compress.NewRGSList(fam, p, 1, compress.RGSLowbits)
		cache[term] = s
		return s
	}
	names := []string{"RanGroupScan_Lowbits", "Merge_Delta", "Merge_Gamma", "Lookup_Delta", "Lookup_Gamma"}
	totals := make([]time.Duration, len(names))
	worst := make([]time.Duration, len(names))
	queries := 0
	var rawWords, usedWords [5]int
	seenTerm := map[int]bool{}
	for _, q := range e.real.Queries {
		if len(q.Terms) != 2 {
			continue
		}
		queries++
		a, b := get(q.Terms[0]), get(q.Terms[1])
		runs := []func() []uint32{
			func() []uint32 { return compress.IntersectRGS(a.rl, b.rl) },
			func() []uint32 { return compress.IntersectMerge(a.md, b.md) },
			func() []uint32 { return compress.IntersectMerge(a.mg, b.mg) },
			func() []uint32 { return compress.IntersectLookup(a.ld, b.ld) },
			func() []uint32 { return compress.IntersectLookup(a.lg, b.lg) },
		}
		for i, run := range runs {
			run() // warm
			d := timeIt(cfg.Reps, func() { run() })
			totals[i] += d
			if d > worst[i] {
				worst[i] = d
			}
		}
		for _, term := range q.Terms {
			if seenTerm[term] {
				continue
			}
			seenTerm[term] = true
			s := get(term)
			n := len(e.real.Postings[term])
			for i := range names {
				rawWords[i] += n / 2
			}
			usedWords[0] += s.rl.SizeWordsNoDir()
			usedWords[1] += s.md.SizeWords()
			usedWords[2] += s.mg.SizeWords()
			usedWords[3] += s.ld.SizeWords()
			usedWords[4] += s.lg.SizeWords()
		}
	}
	t := &Table{
		ID:      "real-compressed",
		Title:   fmt.Sprintf("Compressed variants over %d two-keyword queries", queries),
		Columns: []string{"variant", "total ms", "Lowbits speedup", "space %% of raw", "worst-case vs Lowbits"},
		Notes: []string{
			"paper: Lowbits 8.4x faster than Merge+δ, 9.1x vs Merge+γ, 5.7x vs Lookup+δ, 6.2x vs Lookup+γ",
			"paper space: Lowbits 66% of uncompressed vs Merge 26/28% and Lookup 35/37%",
			"paper worst-case latency: Merge+δ 5.2x, Merge+γ 5.6x, Lookup+δ 4.4x, Lookup+γ 4.9x of Lowbits",
		},
	}
	for i, name := range names {
		t.AddRow(name, ms(totals[i]),
			ratio(totals[i], totals[0]),
			fmt.Sprintf("%.0f%%", 100*float64(usedWords[i])/float64(rawWords[i])),
			ratio(worst[i], worst[0]))
	}
	return []*Table{t}
}
