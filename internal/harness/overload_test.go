package harness

import (
	"testing"
)

// TestOverloadBench is the CI saturation smoke: it runs the overload sweep
// at the small scale and asserts the shedding invariants the PR's
// acceptance criteria name — at ≥2× capacity offered load the shedding
// configuration holds accepted p99 within 3× of the uncontended p99 while
// the unbounded-queue baseline does not, and goodput with shedding is at
// least goodput without, with the gate's counters accounting for every
// offered request (the accounting identity is asserted inside
// runOverloadPoint, which panics on a mismatch).
func TestOverloadBench(t *testing.T) {
	if testing.Short() {
		t.Skip("offers multi-second open-loop load")
	}
	rep := OverloadBench(tinyConfig())
	if rep.Schema != "fsibench/overload/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.CapacityQPS <= 0 || rep.UncontendedP99US <= 0 {
		t.Fatalf("degenerate calibration: capacity=%.1f uncontended p99=%.1fus",
			rep.CapacityQPS, rep.UncontendedP99US)
	}
	points := map[string]map[float64]OverloadPoint{}
	for _, p := range rep.Points {
		if points[p.Mode] == nil {
			points[p.Mode] = map[float64]OverloadPoint{}
		}
		points[p.Mode][p.Multiple] = p
		if p.Accepted+p.Rejected+p.Shed != p.Offered {
			t.Errorf("%s x%.1f: accepted(%d)+rejected(%d)+shed(%d) != offered(%d)",
				p.Mode, p.Multiple, p.Accepted, p.Rejected, p.Shed, p.Offered)
		}
	}
	for _, mult := range []float64{2, 3} {
		shed, ok1 := points["shed"][mult]
		noshed, ok2 := points["noshed"][mult]
		if !ok1 || !ok2 {
			t.Fatalf("missing %gx points", mult)
		}
		// Bounded tail latency under overload: the 3× acceptance bound, with
		// the design headroom being ~2× (queue depth = inflight, so worst
		// accepted wait ≈ one extra service time).
		if shed.AcceptedP99US > 3*rep.UncontendedP99US {
			t.Errorf("shed x%.0f accepted p99 %.0fus exceeds 3x uncontended %.0fus",
				mult, shed.AcceptedP99US, rep.UncontendedP99US)
		}
		// The naive baseline must visibly blow the same bound — otherwise
		// the experiment isn't actually saturating and the shed numbers
		// prove nothing.
		if noshed.AcceptedP99US <= 3*rep.UncontendedP99US {
			t.Errorf("noshed x%.0f accepted p99 %.0fus unexpectedly within 3x uncontended %.0fus (not saturated?)",
				mult, noshed.AcceptedP99US, rep.UncontendedP99US)
		}
		// Shedding must not cost goodput.
		if shed.GoodputQPS < noshed.GoodputQPS {
			t.Errorf("shed x%.0f goodput %.0f < noshed %.0f",
				mult, shed.GoodputQPS, noshed.GoodputQPS)
		}
	}
}
