package harness

import (
	"fmt"

	"fastintersect/internal/compress"
	"fastintersect/internal/core"
	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Probability of successful filtering vs number of hash images m",
		Paper: "Figure 9 (Appendix A.5.2)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Preprocessing (construction) time vs set size",
		Paper: "Figure 10 (Appendix C.1)",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Preprocessing time with compression vs set size",
		Paper: "Figure 11 (Appendix C.1)",
		Run:   runFig11,
	})
}

func runFig9(cfg Config) []*Table {
	t := &Table{
		ID:      "fig9",
		Title:   "Measured Pr[empty group combination is filtered]",
		Columns: []string{"m", "synthetic", "real 2-keyword"},
		Notes: []string{
			"paper shape: ≈0.6-0.7 at m=1 rising towards 1 at m=8; real data slightly better than synthetic; all far above Lemma A.1's 0.3436 bound",
		},
	}
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	rng := xhash.NewRNG(cfg.Seed + 9)
	n := 100_000
	if cfg.Full() {
		n = 1_000_000
	}
	aSet, bSet := workload.PairWithIntersection(workload.DefaultUniverse, n, n, n/100, rng)
	e := getRealEnv(cfg)
	// Sample of real 2-keyword query posting pairs.
	type pair struct{ a, b []uint32 }
	var realPairs []pair
	for _, q := range e.real.Queries {
		if len(q.Terms) == 2 {
			realPairs = append(realPairs, pair{e.real.Postings[q.Terms[0]], e.real.Postings[q.Terms[1]]})
		}
		if len(realPairs) >= 50 {
			break
		}
	}
	for _, m := range []int{1, 2, 4, 6, 8} {
		sa, _ := core.NewRanGroupScanList(fam, aSet, m)
		sb, _ := core.NewRanGroupScanList(fam, bSet, m)
		_, synth := core.IntersectRanGroupScanStats(sa, sb)
		var agg core.FilterStats
		for _, p := range realPairs {
			ra, _ := core.NewRanGroupScanList(fam, p.a, m)
			rb, _ := core.NewRanGroupScanList(fam, p.b, m)
			_, st := core.IntersectRanGroupScanStats(ra, rb)
			agg.EmptyCombos += st.EmptyCombos
			agg.Filtered += st.Filtered
			agg.NonEmptyCombos += st.NonEmptyCombos
		}
		t.AddRow(fmt.Sprintf("%d", m),
			fmt.Sprintf("%.4f", synth.SuccessProbability()),
			fmt.Sprintf("%.4f", agg.SuccessProbability()))
	}
	return []*Table{t}
}

func fig10Sizes(cfg Config) []int {
	if cfg.Full() {
		return []int{1_000_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000}
	}
	return []int{250_000, 500_000, 1_000_000, 2_000_000}
}

func runFig10(cfg Config) []*Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Construction time (ms) from a sorted input set",
		Columns: []string{"size", "Sorting", "HashBin", "IntGroup", "RanGroup", "RanGroupScan m=4"},
		Notes: []string{
			"paper shape: construction is a small multiple of the sorting baseline for every structure",
			"Sorting = std sort of a shuffled copy (the pre-processing floor the paper plots for perspective)",
		},
	}
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	rng := xhash.NewRNG(cfg.Seed + 10)
	for _, n := range fig10Sizes(cfg) {
		set := workload.RandomSets(workload.DefaultUniverse, []int{n}, rng)[0]
		shuffled := make([]uint32, n)
		row := []string{fmt.Sprintf("%d", n)}
		row = append(row, ms(timeIt(cfg.Reps, func() {
			copy(shuffled, set)
			// Shuffle deterministically, then sort: the sorting baseline.
			r := xhash.NewRNG(1)
			for i := n - 1; i > 0; i-- {
				j := r.Intn(i + 1)
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			}
			sets.SortU32(shuffled)
		})))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = core.NewHashBinList(fam, set) })))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = core.NewIntGroupList(fam, set, false) })))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = core.NewRanGroupList(fam, set) })))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = core.NewRanGroupScanList(fam, set, 4) })))
		t.AddRow(row...)
	}
	return []*Table{t}
}

func fig11Sizes(cfg Config) []int {
	if cfg.Full() {
		return []int{65_536, 262_144, 1_048_576, 4_194_304, 8_388_608}
	}
	return []int{65_536, 262_144, 1_048_576, 2_097_152}
}

func runFig11(cfg Config) []*Table {
	t := &Table{
		ID:      "fig11",
		Title:   "Construction time (ms) for compressed structures",
		Columns: []string{"size", "Sorting", "RGS_Lowbits", "RGS_Gamma", "RGS_Delta", "Merge_Gamma", "Merge_Delta"},
		Notes: []string{
			"paper shape: all a small fraction above sorting; Lowbits cheapest of the RanGroupScan codecs",
		},
	}
	fam := core.NewFamily(cfg.Seed, core.MaxImageCount)
	rng := xhash.NewRNG(cfg.Seed + 11)
	for _, n := range fig11Sizes(cfg) {
		set := workload.RandomSets(workload.DefaultUniverse, []int{n}, rng)[0]
		shuffled := make([]uint32, n)
		row := []string{fmt.Sprintf("%d", n)}
		row = append(row, ms(timeIt(cfg.Reps, func() {
			copy(shuffled, set)
			r := xhash.NewRNG(1)
			for i := n - 1; i > 0; i-- {
				j := r.Intn(i + 1)
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			}
			sets.SortU32(shuffled)
		})))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = compress.NewRGSList(fam, set, 1, compress.RGSLowbits) })))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = compress.NewRGSList(fam, set, 1, compress.RGSGamma) })))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = compress.NewRGSList(fam, set, 1, compress.RGSDelta) })))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = compress.NewMergeList(set, compress.Gamma) })))
		row = append(row, ms(timeIt(cfg.Reps, func() { _, _ = compress.NewMergeList(set, compress.Delta) })))
		t.AddRow(row...)
	}
	return []*Table{t}
}
