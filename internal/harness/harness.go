// Package harness regenerates every table and figure of the paper's
// evaluation (Section 4 and Appendices A.5.2/C). Each experiment is a named
// entry in Registry producing one or more text tables; cmd/fsibench is the
// CLI front end and EXPERIMENTS.md records paper-vs-measured shapes.
//
// Experiments run at two scales: "small" (the default; minutes for the full
// registry) and "full" (paper-scale set sizes; tens of minutes). Absolute
// times differ from the paper's 2011 hardware — the comparisons of interest
// are relative: who wins, by what factor, and where the crossovers fall.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fastintersect"
)

// Config parameterizes a run.
type Config struct {
	Scale string // "small" or "full"
	Seed  uint64
	Reps  int // timing repetitions; the minimum is reported
	// Algos optionally restricts the algorithms an experiment times. Empty
	// means "the experiment's own default list". Experiments whose layout
	// depends on a fixed algorithm set (e.g. the Merge-relative speedups of
	// the real-workload tables) may ignore the filter.
	Algos []fastintersect.Algorithm
}

// NoteEmptyFilter appends a visible warning to a table when an -algos
// filter removed every one of an experiment's algorithms (the run would
// otherwise silently emit tables with no timing columns).
func (t *Table) NoteEmptyFilter(c Config, algos []fastintersect.Algorithm) {
	if len(c.Algos) > 0 && len(algos) == 0 {
		t.Notes = append(t.Notes, "warning: -algos filter matches none of this experiment's algorithms; no timings measured")
	}
}

// FilterAlgos restricts def to the members of c.Algos, preserving def's
// order. With no filter configured it returns def unchanged.
func (c Config) FilterAlgos(def []fastintersect.Algorithm) []fastintersect.Algorithm {
	if len(c.Algos) == 0 {
		return def
	}
	out := make([]fastintersect.Algorithm, 0, len(def))
	for _, a := range def {
		for _, want := range c.Algos {
			if a == want {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// DefaultConfig is the small-scale default.
func DefaultConfig() Config {
	return Config{Scale: "small", Seed: 0x5EED_F00D, Reps: 3}
}

// Full reports whether paper-scale sizes were requested.
func (c Config) Full() bool { return c.Scale == "full" }

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registry entry.
type Experiment struct {
	ID    string
	Title string
	Paper string // the paper artifact it reproduces
	Run   func(cfg Config) []*Table
}

// Registry holds all experiments in presentation order.
var Registry []Experiment

func register(e Experiment) { Registry = append(Registry, e) }

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// timeIt runs f reps times and returns the minimum duration (the standard
// way to suppress scheduling noise for deterministic workloads).
func timeIt(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// ms formats a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

// ratio formats a/b.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

// sortedKeys returns the sorted int keys of a map.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
