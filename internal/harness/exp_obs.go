package harness

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
	"time"

	"fastintersect/internal/engine"
	"fastintersect/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "obs-bench",
		Title: "Scraped latency-histogram percentiles vs directly measured replay latency",
		Paper: "engine tier (no paper artifact); validates the /metrics surface and seeds BENCH_obs.json",
		Run:   runObsBench,
	})
}

// ObsPhase is one replay phase of the observability experiment: the same
// query stream measured two ways — per-query wall clock on the caller
// side, and the engine's log2-bucketed latency histogram scraped in
// Prometheus text form before and after the phase. The scraped
// percentiles are bucket upper bounds, so they may sit up to one power of
// two above the measured values; agreement beyond that is a histogram or
// scrape bug.
type ObsPhase struct {
	Name      string `json:"name"`
	Queries   int    `json:"queries"`
	Mutations int    `json:"mutations"`

	MeasuredP50US float64 `json:"measured_p50_us"`
	MeasuredP90US float64 `json:"measured_p90_us"`
	MeasuredP99US float64 `json:"measured_p99_us"`

	ScrapeP50US float64 `json:"scrape_p50_us"`
	ScrapeP90US float64 `json:"scrape_p90_us"`
	ScrapeP99US float64 `json:"scrape_p99_us"`

	// Cumulative engine counters after the phase, read from the same
	// scrape that closed the histogram window.
	QueriesTotal   uint64 `json:"queries_total"`
	MutationsTotal uint64 `json:"mutations_total"`
}

// ObsReport is the machine-readable result of the observability
// experiment: the BENCH_obs.json artifact emitted by fsibench -obs-json.
type ObsReport struct {
	Schema      string     `json:"schema"`
	Scale       string     `json:"scale"`
	Seed        uint64     `json:"seed"`
	TraceSample int        `json:"trace_sample"`
	Phases      []ObsPhase `json:"phases"`
}

// ObsBench replays a mixed AND/OR/NOT stream through an instrumented
// engine (result cache disabled so every query pays the full pipeline),
// scraping /metrics-equivalent text between phases and folding the
// histogram-derived percentiles next to the directly measured ones. A
// second phase interleaves live mutations so the counter series move too.
func ObsBench(cfg Config) *ObsReport {
	const traceSample = 16
	rc := workload.SmallRealConfig()
	rc.NumDocs, rc.NumTerms, rc.NumQueries = 100_000, 2_000, 128
	n := 4_000
	if cfg.Full() {
		rc.NumDocs, rc.NumTerms, rc.NumQueries = 1_000_000, 20_000, 1_000
		n = 40_000
	}
	rc.Seed = cfg.Seed
	real := workload.NewReal(rc)
	sc := workload.DefaultStreamConfig()
	sc.OrFrac, sc.NotFrac = 0.30, 0.10
	sc.Seed = cfg.Seed + 1
	queries := real.QueryStream(n, sc)

	e := engine.New(engine.Config{Shards: 2, TraceSample: traceSample})
	b := e.NewBuilder()
	for t, docs := range real.Postings {
		if err := b.AddPosting(workload.TermName(t), docs); err != nil {
			panic(fmt.Sprintf("harness: obs bench build: %v", err))
		}
	}
	if err := e.Install(b); err != nil {
		panic(fmt.Sprintf("harness: obs bench install: %v", err))
	}
	for _, q := range queries[:min(64, len(queries))] { // warm pools before the measured window
		if _, err := e.Query(q); err != nil {
			panic(fmt.Sprintf("harness: obs bench warm-up query %q: %v", q, err))
		}
	}

	rep := &ObsReport{
		Schema:      "fsibench/obs/v1",
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		TraceSample: traceSample,
	}
	prev := promScrape(e)

	// Phase 1: pure replay.
	lat := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		t0 := time.Now()
		if _, err := e.Query(q); err != nil {
			panic(fmt.Sprintf("harness: obs bench query %q: %v", q, err))
		}
		lat = append(lat, time.Since(t0))
	}
	cur := promScrape(e)
	rep.Phases = append(rep.Phases, obsPhase("replay", lat, 0, prev, cur))
	prev = cur

	// Phase 2: the same stream with live mutations interleaved, so the
	// mutation/generation counters move inside the measured window.
	lat = lat[:0]
	muts := 0
	churn := queries[:min(n/4, len(queries))]
	for i, q := range churn {
		if i%8 == 0 {
			id := uint32(rc.NumDocs) + uint32(i)
			if err := e.AddDocument(id, []string{workload.TermName(i % rc.NumTerms)}); err != nil {
				panic(fmt.Sprintf("harness: obs bench add: %v", err))
			}
			muts++
		}
		t0 := time.Now()
		if _, err := e.Query(q); err != nil {
			panic(fmt.Sprintf("harness: obs bench churn query %q: %v", q, err))
		}
		lat = append(lat, time.Since(t0))
	}
	cur = promScrape(e)
	rep.Phases = append(rep.Phases, obsPhase("churn", lat, muts, prev, cur))
	return rep
}

// obsPhase builds one phase record from the measured latencies and the
// scrape texts bracketing the phase.
func obsPhase(name string, lat []time.Duration, muts int, before, after string) ObsPhase {
	sorted := slices.Clone(lat)
	slices.Sort(sorted)
	bles, bcounts := promBuckets(before, "fsi_query_latency_seconds_bucket")
	ales, acounts := promBuckets(after, "fsi_query_latency_seconds_bucket")
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return ObsPhase{
		Name:           name,
		Queries:        len(lat),
		Mutations:      muts,
		MeasuredP50US:  us(nearestRank(sorted, 50)),
		MeasuredP90US:  us(nearestRank(sorted, 90)),
		MeasuredP99US:  us(nearestRank(sorted, 99)),
		ScrapeP50US:    us(bucketQuantile(ales, acounts, bles, bcounts, 0.50)),
		ScrapeP90US:    us(bucketQuantile(ales, acounts, bles, bcounts, 0.90)),
		ScrapeP99US:    us(bucketQuantile(ales, acounts, bles, bcounts, 0.99)),
		QueriesTotal:   uint64(promValue(after, "fsi_queries_total")),
		MutationsTotal: uint64(promValue(after, "fsi_mutations_total")),
	}
}

// promScrape renders the engine's metrics registry exactly as GET
// /metrics would.
func promScrape(e *engine.Engine) string {
	var sb strings.Builder
	if err := e.Metrics().WritePrometheus(&sb); err != nil {
		panic(fmt.Sprintf("harness: scrape: %v", err))
	}
	return sb.String()
}

// promValue returns the sample for an exact series name, or 0 when the
// series is absent.
func promValue(text, series string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, _ := strconv.ParseFloat(rest, 64)
			return v
		}
	}
	return 0
}

// promBuckets parses one histogram's cumulative bucket series out of
// exposition text: parallel slices of upper bounds in seconds (+Inf last)
// and cumulative counts, in ascending le order.
func promBuckets(text, family string) (les []float64, counts []uint64) {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, family+`{le="`)
		if !ok {
			continue
		}
		leStr, valStr, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			if leStr != "+Inf" {
				continue
			}
			le = math.Inf(1)
		}
		c, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil {
			continue
		}
		les = append(les, le)
		counts = append(counts, c)
	}
	return les, counts
}

// cumAt evaluates a cumulative bucket series at bound x: the count of the
// largest le <= x (0 below the first emitted bucket — the registry only
// writes the occupied range, and everything below it is empty).
func cumAt(les []float64, counts []uint64, x float64) uint64 {
	c := uint64(0)
	for i, le := range les {
		if le > x {
			break
		}
		c = counts[i]
	}
	return c
}

// bucketQuantile estimates quantile q of the observations falling between
// two cumulative scrapes, returning the upper bound of the bucket holding
// the rank — the resolution the log2 histogram actually has.
func bucketQuantile(ales []float64, acounts []uint64, bles []float64, bcounts []uint64, q float64) time.Duration {
	if len(ales) == 0 {
		return 0
	}
	delta := make([]uint64, len(ales))
	for i := range ales {
		delta[i] = acounts[i] - cumAt(bles, bcounts, ales[i])
	}
	total := delta[len(delta)-1]
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	for i, d := range delta {
		if d >= rank {
			le := ales[i]
			if math.IsInf(le, 1) && i > 0 {
				le = 2 * ales[i-1] // +Inf bucket: all we know is "above the last bound"
			}
			return time.Duration(le * 1e9)
		}
	}
	return time.Duration(ales[len(ales)-1] * 1e9)
}

// nearestRank returns the p-th percentile (nearest-rank) of sorted
// latencies.
func nearestRank(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func runObsBench(cfg Config) []*Table {
	rep := ObsBench(cfg)
	t := &Table{
		ID:      "obs-bench",
		Title:   "Measured replay percentiles vs scraped histogram percentiles (µs)",
		Columns: []string{"phase", "queries", "mutations", "p50 meas", "p50 scrape", "p90 meas", "p90 scrape", "p99 meas", "p99 scrape"},
		Notes: []string{
			"scrape columns are log2-bucket upper bounds: at most 2x the measured value by construction",
			fmt.Sprintf("stage/operator tracing sampled 1 in %d; the latency histogram sees every query", rep.TraceSample),
		},
	}
	for _, p := range rep.Phases {
		t.AddRow(p.Name, fmt.Sprintf("%d", p.Queries), fmt.Sprintf("%d", p.Mutations),
			fmt.Sprintf("%.0f", p.MeasuredP50US), fmt.Sprintf("%.0f", p.ScrapeP50US),
			fmt.Sprintf("%.0f", p.MeasuredP90US), fmt.Sprintf("%.0f", p.ScrapeP90US),
			fmt.Sprintf("%.0f", p.MeasuredP99US), fmt.Sprintf("%.0f", p.ScrapeP99US))
	}
	return []*Table{t}
}
