package harness

import (
	"fmt"
	"slices"
	"time"

	"fastintersect/internal/engine"
	"fastintersect/internal/invindex"
	"fastintersect/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "churn",
		Title: "Live-update serving: query latency vs delta size and compaction cadence",
		Paper: "mutable tier (no paper artifact); the dynamic-corpus motivation of §1",
		Run:   runChurn,
	})
}

// ChurnBucket groups the query latencies observed while the engine's delta
// tier held at most MaxDeltaPostings postings (the last bucket is unbounded).
type ChurnBucket struct {
	MaxDeltaPostings int     `json:"max_delta_postings"` // -1 = unbounded
	Queries          int     `json:"queries"`
	AvgUS            float64 `json:"avg_us"`
	P99US            int64   `json:"p99_us"`
}

// ChurnScenario is one (storage, compaction-threshold) replay of the churn
// stream.
type ChurnScenario struct {
	Name             string        `json:"name"`
	Storage          string        `json:"storage"`
	CompactThreshold int           `json:"compact_threshold"` // 0 = never
	Ops              int           `json:"ops"`
	Adds             int           `json:"adds"`
	Deletes          int           `json:"deletes"`
	Queries          int           `json:"queries"`
	Compactions      uint64        `json:"compactions"`
	FinalDelta       int           `json:"final_delta_postings"`
	FinalTombstones  int           `json:"final_tombstones"`
	QueryP50US       int64         `json:"query_p50_us"`
	QueryP99US       int64         `json:"query_p99_us"`
	MutationP50US    int64         `json:"mutation_p50_us"`
	Buckets          []ChurnBucket `json:"buckets"`
}

// ChurnReport is the machine-readable result of the churn experiment: the
// BENCH_churn.json artifact emitted by fsibench -churn-json, tracking how
// the mutable tier's delta size and compaction cadence shape query latency.
type ChurnReport struct {
	Schema    string          `json:"schema"`
	Scale     string          `json:"scale"`
	Seed      uint64          `json:"seed"`
	Scenarios []ChurnScenario `json:"scenarios"`
}

// churnBucketEdges are the delta-postings sizes latencies are grouped under.
var churnBucketEdges = []int{0, 1_000, 5_000, 20_000}

// ChurnBench replays an interleaved add/delete/query stream through the
// segmented engine once per (storage × compaction threshold) combination.
// Threshold 0 never compacts — the delta grows for the whole stream and the
// latency-vs-delta-size buckets expose the cost of scanning it; the finite
// thresholds show background compaction pulling latency back down at the
// price of rebuild work.
func ChurnBench(cfg Config) *ChurnReport {
	rc := workload.SmallRealConfig()
	rc.NumDocs, rc.NumTerms, rc.NumQueries = 50_000, 2_000, 256
	ops := 20_000
	thresholds := []int{0, 2_000, 10_000}
	if cfg.Full() {
		rc.NumDocs, rc.NumTerms, rc.NumQueries = 500_000, 20_000, 1_000
		ops = 100_000
		thresholds = []int{0, 10_000, 50_000}
	}
	rc.Seed = cfg.Seed
	real := workload.NewReal(rc)
	ccfg := workload.DefaultChurnConfig()
	ccfg.AddFrac, ccfg.DeleteFrac = 0.25, 0.10
	ccfg.Seed = cfg.Seed + 2
	ccfg.Stream.Seed = cfg.Seed + 3
	stream := real.ChurnStream(ops, ccfg)

	rep := &ChurnReport{Schema: "fsibench/churn/v1", Scale: cfg.Scale, Seed: cfg.Seed}
	for _, st := range []invindex.Storage{invindex.StorageRaw, invindex.StorageCompressed} {
		for _, threshold := range thresholds {
			rep.Scenarios = append(rep.Scenarios, runChurnScenario(real, stream, st, threshold))
		}
	}
	return rep
}

func runChurnScenario(real *workload.Real, stream []workload.ChurnOp, st invindex.Storage, threshold int) ChurnScenario {
	e := engine.New(engine.Config{Shards: 2, Storage: st, CompactThreshold: threshold})
	b := e.NewBuilder()
	for t, docs := range real.Postings {
		if err := b.AddPosting(workload.TermName(t), docs); err != nil {
			panic(fmt.Sprintf("harness: churn build: %v", err))
		}
	}
	if err := e.Install(b); err != nil {
		panic(fmt.Sprintf("harness: churn install: %v", err))
	}

	sc := ChurnScenario{
		Name:             fmt.Sprintf("churn-%s-compact%d", st, threshold),
		Storage:          st.String(),
		CompactThreshold: threshold,
		Ops:              len(stream),
	}
	var queryLat, mutLat []time.Duration
	bucketLat := make([][]time.Duration, len(churnBucketEdges)+1)
	deltaPostings := 0 // sampled engine-wide delta size, refreshed periodically
	for i, op := range stream {
		if i%64 == 0 {
			deltaPostings = e.Stats().Delta.Postings
		}
		switch op.Kind {
		case workload.ChurnAdd:
			start := time.Now()
			if err := e.AddDocument(op.DocID, op.Terms); err != nil {
				panic(fmt.Sprintf("harness: churn add: %v", err))
			}
			mutLat = append(mutLat, time.Since(start))
			sc.Adds++
		case workload.ChurnDelete:
			start := time.Now()
			if _, err := e.DeleteDocument(op.DocID); err != nil {
				panic(fmt.Sprintf("harness: churn delete: %v", err))
			}
			mutLat = append(mutLat, time.Since(start))
			sc.Deletes++
		default:
			start := time.Now()
			if _, err := e.Query(op.Query); err != nil {
				panic(fmt.Sprintf("harness: churn query %q: %v", op.Query, err))
			}
			d := time.Since(start)
			queryLat = append(queryLat, d)
			bi := len(churnBucketEdges)
			for j, edge := range churnBucketEdges {
				if deltaPostings <= edge {
					bi = j
					break
				}
			}
			bucketLat[bi] = append(bucketLat[bi], d)
			sc.Queries++
		}
	}
	// Drain in-flight background compactions: the final counters must be
	// deterministic in the seed, and a straggling rebuild would burn CPU
	// into the next scenario's latency samples.
	fin := e.Stats()
	for fin.Delta.CompactingShards > 0 {
		time.Sleep(time.Millisecond)
		fin = e.Stats()
	}
	sc.Compactions = fin.Compactions
	sc.FinalDelta = fin.Delta.Postings
	sc.FinalTombstones = fin.Delta.Tombstones
	slices.Sort(queryLat)
	slices.Sort(mutLat)
	sc.QueryP50US = pctUS(queryLat, 50)
	sc.QueryP99US = pctUS(queryLat, 99)
	sc.MutationP50US = pctUS(mutLat, 50)
	for bi, lats := range bucketLat {
		if len(lats) == 0 {
			continue
		}
		slices.Sort(lats)
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		edge := -1
		if bi < len(churnBucketEdges) {
			edge = churnBucketEdges[bi]
		}
		sc.Buckets = append(sc.Buckets, ChurnBucket{
			MaxDeltaPostings: edge,
			Queries:          len(lats),
			AvgUS:            float64(sum.Microseconds()) / float64(len(lats)),
			P99US:            pctUS(lats, 99),
		})
	}
	return sc
}

// pctUS returns the p-th percentile (nearest rank) of sorted durations in
// microseconds.
func pctUS(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank].Microseconds()
}

func runChurn(cfg Config) []*Table {
	rep := ChurnBench(cfg)
	summary := &Table{
		ID:      "churn",
		Title:   "Interleaved add/delete/query replay per storage × compaction threshold",
		Columns: []string{"scenario", "threshold", "adds", "dels", "queries", "compactions", "final-delta", "q-p50-ms", "q-p99-ms", "mut-p50-ms"},
		Notes: []string{
			"threshold 0 never compacts: the delta grows unboundedly and query latency with it",
			"mutations are sub-lock sorted inserts; compaction runs in the background",
		},
	}
	msf := func(us int64) string { return fmt.Sprintf("%.3f", float64(us)/1000) }
	for _, s := range rep.Scenarios {
		summary.AddRow(s.Name, fmt.Sprintf("%d", s.CompactThreshold),
			fmt.Sprintf("%d", s.Adds), fmt.Sprintf("%d", s.Deletes), fmt.Sprintf("%d", s.Queries),
			fmt.Sprintf("%d", s.Compactions), fmt.Sprintf("%d", s.FinalDelta),
			msf(s.QueryP50US), msf(s.QueryP99US), msf(s.MutationP50US))
	}
	buckets := &Table{
		ID:      "churn-delta-latency",
		Title:   "Query latency vs delta size (average per delta-postings bucket)",
		Columns: []string{"scenario", "delta≤", "queries", "avg-ms", "p99-ms"},
	}
	for _, s := range rep.Scenarios {
		for _, b := range s.Buckets {
			edge := "∞"
			if b.MaxDeltaPostings >= 0 {
				edge = fmt.Sprintf("%d", b.MaxDeltaPostings)
			}
			buckets.AddRow(s.Name, edge, fmt.Sprintf("%d", b.Queries),
				fmt.Sprintf("%.3f", b.AvgUS/1000), msf(b.P99US))
		}
	}
	return []*Table{summary, buckets}
}
