package baseline

// SvS ("smallest vs. set") intersects k sorted sets by iterating over the
// smallest set and locating each of its elements in every other set with a
// galloping search that resumes from the previous position. It is the
// best-known member of the adaptive family on real IR data (the paper's §4
// reports it winning among the adaptive algorithms on the Bing/Wikipedia
// workload).
func SvS(lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint32(nil), lists[0]...)
	}
	ordered := sortBySize(lists)
	candidates := append([]uint32(nil), ordered[0]...)
	for _, l := range ordered[1:] {
		if len(candidates) == 0 {
			return candidates
		}
		out := candidates[:0]
		from := 0
		for _, x := range candidates {
			from = gallop(l, from, x)
			if from == len(l) {
				break
			}
			if l[from] == x {
				out = append(out, x)
			}
		}
		candidates = out
	}
	return candidates
}
