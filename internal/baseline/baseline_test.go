package baseline

import (
	"fmt"
	"testing"

	"fastintersect/internal/sets"
	"fastintersect/internal/workload"
	"fastintersect/internal/xhash"
)

// algorithms lists every baseline in its convenience form, so the same
// cross-check battery runs over all of them.
var algorithms = []struct {
	name string
	fn   func(...[]uint32) []uint32
	maxK int // 0 = unlimited
}{
	{"Merge", Merge, 0},
	{"Hash", Hash, 0},
	{"SkipList", SkipListIntersect, 0},
	{"SvS", SvS, 0},
	{"Adaptive", Adaptive, 0},
	{"BaezaYates", BaezaYates, 0},
	{"SmallAdaptive", SmallAdaptive, 0},
	{"Lookup", LookupAlg, 0},
	{"BPP", BPPAlg, 0},
}

// fixedCases are deterministic corner cases every algorithm must handle.
func fixedCases() [][][]uint32 {
	return [][][]uint32{
		{{}, {}},
		{{1}, {}},
		{{}, {1}},
		{{1}, {1}},
		{{1}, {2}},
		{{1, 2, 3}, {1, 2, 3}},
		{{1, 2, 3}, {4, 5, 6}},
		{{1, 3, 5, 7, 9}, {2, 3, 6, 7, 10}},
		{{0, 4294967295}, {0, 4294967295}},
		{{0}, {0}},
		{{5, 10, 15}, {10}, {10, 20}},
		{{1, 2, 3, 4}, {2, 3, 4, 5}, {3, 4, 5, 6}, {4, 5, 6, 7}},
		{{1, 100, 10000, 1000000}, {1, 2, 3, 100, 10000, 999999, 1000000}},
		// Paper Example 3.1's sets.
		{{1001, 1002, 1004, 1009, 1016, 1027, 1043},
			{1001, 1003, 1005, 1009, 1011, 1016, 1022, 1032, 1034, 1049}},
	}
}

func TestAlgorithmsFixedCases(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.name, func(t *testing.T) {
			for ci, lists := range fixedCases() {
				want := sets.IntersectReference(lists...)
				got := alg.fn(lists...)
				if !sets.Equal(got, want) {
					t.Fatalf("case %d: got %v, want %v (inputs %v)", ci, got, want, lists)
				}
			}
		})
	}
}

func TestAlgorithmsRandomizedPairs(t *testing.T) {
	rng := xhash.NewRNG(0xBA5E)
	for trial := 0; trial < 60; trial++ {
		universe := uint32(1 << (4 + rng.Intn(16))) // dense → sparse
		n1 := rng.Intn(512) + 1
		n2 := rng.Intn(2048) + 1
		if uint32(n1) > universe/2 {
			n1 = int(universe / 2)
		}
		if uint32(n2) > universe/2 {
			n2 = int(universe / 2)
		}
		maxR := n1
		if n2 < maxR {
			maxR = n2
		}
		r := rng.Intn(maxR + 1)
		if uint64(n1+n2-r) > uint64(universe) {
			continue
		}
		a, b := workload.PairWithIntersection(universe, n1, n2, r, rng)
		want := sets.IntersectReference(a, b)
		for _, alg := range algorithms {
			got := alg.fn(a, b)
			if !sets.Equal(got, want) {
				t.Fatalf("%s: trial %d (n1=%d n2=%d r=%d U=%d): got %d elems, want %d",
					alg.name, trial, n1, n2, r, universe, len(got), len(want))
			}
		}
	}
}

func TestAlgorithmsRandomizedKSets(t *testing.T) {
	rng := xhash.NewRNG(0x5EED)
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(4)
		ns := make([]int, k)
		for i := range ns {
			ns[i] = 1 + rng.Intn(600)
		}
		lists := workload.RandomSets(1<<14, ns, rng)
		want := sets.IntersectReference(lists...)
		for _, alg := range algorithms {
			got := alg.fn(lists...)
			if !sets.Equal(got, want) {
				t.Fatalf("%s: trial %d k=%d sizes=%v: got %d elems, want %d",
					alg.name, trial, k, ns, len(got), len(want))
			}
		}
	}
}

func TestAlgorithmsSingleList(t *testing.T) {
	in := []uint32{3, 1, 4}
	sets.SortU32(in)
	for _, alg := range algorithms {
		got := alg.fn(in)
		if !sets.Equal(got, in) {
			t.Fatalf("%s: single-list = %v", alg.name, got)
		}
		if got := alg.fn(); got != nil {
			t.Fatalf("%s: zero lists = %v", alg.name, got)
		}
	}
}

func TestGallop(t *testing.T) {
	a := []uint32{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	cases := []struct {
		from int
		x    uint32
		want int
	}{
		{0, 0, 0}, {0, 2, 0}, {0, 3, 1}, {0, 20, 9}, {0, 21, 10},
		{5, 12, 5}, {5, 13, 6}, {9, 20, 9}, {10, 99, 10},
	}
	for _, c := range cases {
		if got := gallop(a, c.from, c.x); got != c.want {
			t.Fatalf("gallop(from=%d, x=%d) = %d, want %d", c.from, c.x, got, c.want)
		}
	}
}

func TestGallopExhaustive(t *testing.T) {
	// Against a straightforward linear scan on small inputs.
	rng := xhash.NewRNG(77)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		a := make([]uint32, 0, n)
		cur := uint32(0)
		for i := 0; i < n; i++ {
			cur += uint32(rng.Intn(5) + 1)
			a = append(a, cur)
		}
		from := 0
		if n > 0 {
			from = rng.Intn(n + 1)
		}
		x := uint32(rng.Intn(int(cur) + 2))
		want := from
		for want < len(a) && a[want] < x {
			want++
		}
		if got := gallop(a, from, x); got != want {
			t.Fatalf("gallop(%v, from=%d, x=%d) = %d, want %d", a, from, x, got, want)
		}
	}
}

func TestHashSetBasics(t *testing.T) {
	h := NewHashSet([]uint32{0, 5, 4294967295})
	for _, x := range []uint32{0, 5, 4294967295} {
		if !h.Contains(x) {
			t.Fatalf("missing %d", x)
		}
	}
	for _, x := range []uint32{1, 4, 4294967294} {
		if h.Contains(x) {
			t.Fatalf("spurious %d", x)
		}
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if NewHashSet(nil).Contains(0) {
		t.Fatal("empty table contains 0")
	}
}

func TestHashSetDuplicateInsert(t *testing.T) {
	h := NewHashSet([]uint32{7, 7, 7})
	if h.Len() != 1 {
		t.Fatalf("Len = %d after duplicate inserts", h.Len())
	}
}

func TestHashSetDense(t *testing.T) {
	var in []uint32
	for i := uint32(0); i < 3000; i++ {
		in = append(in, i*3)
	}
	h := NewHashSet(in)
	for _, x := range in {
		if !h.Contains(x) {
			t.Fatalf("missing %d", x)
		}
	}
	miss := 0
	for i := uint32(1); i < 3000; i += 3 {
		if !h.Contains(i) {
			miss++
		}
	}
	if miss != 1000 {
		t.Fatalf("false positives: %d misses of 1000", miss)
	}
}

func TestSkipListStructure(t *testing.T) {
	var in []uint32
	for i := uint32(0); i < 5000; i++ {
		in = append(in, i*2)
	}
	sl := NewSkipList(in)
	if sl.Len() != 5000 {
		t.Fatalf("Len = %d", sl.Len())
	}
	// Every present element found, every absent element not.
	for _, x := range []uint32{0, 2, 4998, 9998} {
		at := sl.search(x)
		if at < 0 || sl.vals[at] != x {
			t.Fatalf("search(%d) missed", x)
		}
	}
	for _, x := range []uint32{1, 3, 9999} {
		at := sl.search(x)
		if at >= 0 && sl.vals[at] == x {
			t.Fatalf("search(%d) found absent element", x)
		}
	}
	if got := sl.search(10000); got != -1 {
		t.Fatalf("search past end = %d", got)
	}
}

func TestSkipListLevelsLinked(t *testing.T) {
	var in []uint32
	for i := uint32(0); i < 2000; i++ {
		in = append(in, i)
	}
	sl := NewSkipList(in)
	// Walking any level must visit strictly increasing values and reach nil.
	for l := 0; l < sl.maxLevel; l++ {
		cur := sl.head[l]
		var prev int32 = -1
		steps := 0
		for cur >= 0 {
			if prev >= 0 && sl.vals[cur] <= sl.vals[prev] {
				t.Fatalf("level %d not increasing", l)
			}
			prev = cur
			cur = sl.forward(cur, l)
			if steps++; steps > len(in)+1 {
				t.Fatalf("level %d has a cycle", l)
			}
		}
	}
}

func TestLookupStructure(t *testing.T) {
	set := []uint32{0, 1, 31, 32, 33, 64, 1000}
	l := NewLookup(set, 32)
	if l.Len() != len(set) {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.bucketRange(0); !sets.Equal(got, []uint32{0, 1, 31}) {
		t.Fatalf("bucket 0 = %v", got)
	}
	if got := l.bucketRange(1); !sets.Equal(got, []uint32{32, 33}) {
		t.Fatalf("bucket 1 = %v", got)
	}
	if got := l.bucketRange(2); !sets.Equal(got, []uint32{64}) {
		t.Fatalf("bucket 2 = %v", got)
	}
	if got := l.bucketRange(31); !sets.Equal(got, []uint32{1000}) {
		t.Fatalf("bucket 31 = %v", got)
	}
	if got := l.bucketRange(99); len(got) != 0 {
		t.Fatalf("past-end bucket = %v", got)
	}
}

func TestLookupPanicsOnBadWidth(t *testing.T) {
	for _, w := range []uint32{0, 3, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d did not panic", w)
				}
			}()
			NewLookup([]uint32{1}, w)
		}()
	}
}

func TestBPPStructure(t *testing.T) {
	rng := xhash.NewRNG(11)
	set := workload.RandomSets(1<<20, []int{4096}, rng)[0]
	b := NewBPP(set)
	if b.Len() != 4096 {
		t.Fatalf("Len = %d", b.Len())
	}
	// (H, x) order must be non-decreasing in H.
	for i := 1; i < len(b.hvals); i++ {
		if lessHX(b.hvals[i], b.elems[i], b.hvals[i-1], b.elems[i-1]) {
			t.Fatalf("(H,x) order violated at %d", i)
		}
	}
	// Directory consistency: every element's finest bucket contains it.
	for i, h := range b.hvals {
		y := h >> (32 - uint(b.maxJ))
		lo, hi := b.bucket(b.maxJ, y)
		if int32(i) < lo || int32(i) >= hi {
			t.Fatalf("element %d outside its bucket [%d,%d)", i, lo, hi)
		}
	}
}

func TestBPPSkewedSizes(t *testing.T) {
	rng := xhash.NewRNG(13)
	a, b := workload.PairWithIntersection(1<<22, 50, 50_000, 25, rng)
	got := BPPAlg(a, b)
	want := sets.IntersectReference(a, b)
	if !sets.Equal(got, want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func BenchmarkBaselinesPair(b *testing.B) {
	rng := xhash.NewRNG(99)
	a1, a2 := workload.PairWithIntersection(1<<24, 100_000, 100_000, 1000, rng)
	for _, alg := range algorithms {
		b.Run(alg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.fn(a1, a2)
			}
		})
	}
}

func ExampleMerge() {
	fmt.Println(Merge([]uint32{1, 3, 5}, []uint32{3, 4, 5}))
	// Output: [3 5]
}
