package baseline

// HashSet is the Hash baseline: a pre-built open-addressing (linear probing)
// hash table over a set, so intersection iterates the smallest set and looks
// every element up in the tables of the others — expected O(|L1|) per [6]'s
// discussion, but with an indirection cost per probe that makes it slow when
// set sizes are similar (the paper's Figure 4 shows Hash performing worst).
type HashSet struct {
	slots []uint32
	used  []uint64 // occupancy bitmap: valid keys include 0
	mask  uint32
	n     int
}

// hashSlot spreads x over the table with a Fibonacci multiplier.
func (h *HashSet) hashSlot(x uint32) uint32 {
	return (x * 2654435761) & h.mask
}

// NewHashSet builds a table at load factor ≤ 0.5 over a set (order is
// irrelevant; duplicates are tolerated and stored once).
func NewHashSet(set []uint32) *HashSet {
	capacity := 16
	for capacity < 2*len(set) {
		capacity <<= 1
	}
	h := &HashSet{
		slots: make([]uint32, capacity),
		used:  make([]uint64, (capacity+63)/64),
		mask:  uint32(capacity - 1),
	}
	for _, x := range set {
		h.insert(x)
	}
	return h
}

func (h *HashSet) insert(x uint32) {
	i := h.hashSlot(x)
	for {
		if h.used[i>>6]&(1<<(i&63)) == 0 {
			h.used[i>>6] |= 1 << (i & 63)
			h.slots[i] = x
			h.n++
			return
		}
		if h.slots[i] == x {
			return
		}
		i = (i + 1) & h.mask
	}
}

// Contains reports whether x is in the set.
func (h *HashSet) Contains(x uint32) bool {
	i := h.hashSlot(x)
	for {
		if h.used[i>>6]&(1<<(i&63)) == 0 {
			return false
		}
		if h.slots[i] == x {
			return true
		}
		i = (i + 1) & h.mask
	}
}

// Len returns the number of distinct elements stored.
func (h *HashSet) Len() int { return h.n }

// SizeWords returns the structure's size in 64-bit words, for the space
// accounting experiments.
func (h *HashSet) SizeWords() int {
	return len(h.slots)/2 + len(h.used)
}

// HashIntersect intersects the (sorted) probe set against pre-built tables:
// the online phase of the Hash baseline. The result is sorted because probe
// is scanned in order.
func HashIntersect(probe []uint32, tables ...*HashSet) []uint32 {
	var out []uint32
	for _, x := range probe {
		ok := true
		for _, t := range tables {
			if !t.Contains(x) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, x)
		}
	}
	return out
}

// Hash is the convenience form used by tests and the harness: it builds
// tables for all but the smallest list and probes with the smallest. The
// table construction is preprocessing in the paper's model; benchmark
// harnesses build the tables outside the timed section via NewHashSet.
func Hash(lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint32(nil), lists[0]...)
	}
	ordered := sortBySize(lists)
	tables := make([]*HashSet, len(ordered)-1)
	for i, l := range ordered[1:] {
		tables[i] = NewHashSet(l)
	}
	return HashIntersect(ordered[0], tables...)
}
