package baseline

// Adaptive implements the round-robin adaptive intersection of Demaine,
// López-Ortiz and Munro [12,13]: an eliminator element is searched for in
// the next list (cyclically) with galloping; a miss promotes the successor
// to the new eliminator. Its comparison count adapts to how interleaved the
// lists are, which is the measure those papers optimize.
func Adaptive(lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint32(nil), lists[0]...)
	}
	k := len(lists)
	pos := make([]int, k)
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	var out []uint32
	eliminator := lists[0][0]
	pos[0] = 1
	owner := 0 // list that produced the eliminator
	matched := 1
	li := 1 // next list to probe
	for {
		l := lists[li]
		i := gallop(l, pos[li], eliminator)
		if i == len(l) {
			return out
		}
		if l[i] == eliminator {
			matched++
			pos[li] = i + 1
			if matched == k {
				out = append(out, eliminator)
				// Pick a fresh eliminator from the next list.
				ni := (li + 1) % k
				if pos[ni] == len(lists[ni]) {
					return out
				}
				eliminator = lists[ni][pos[ni]]
				pos[ni]++
				owner = ni
				matched = 1
				li = (ni + 1) % k
				continue
			}
		} else {
			// Miss: l[i] > eliminator becomes the new eliminator.
			eliminator = l[i]
			pos[li] = i + 1
			owner = li
			matched = 1
		}
		li = (li + 1) % k
		if li == owner {
			li = (li + 1) % k
		}
	}
}
