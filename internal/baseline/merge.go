package baseline

// Merge2 intersects two sorted sets with the classic linear parallel scan —
// the "merge step" of merge sort, requiring O(|a|+|b|) operations. This is
// the paper's Merge baseline: simple, branch-light, cache-friendly, and — as
// the paper's Figure 4/5 show — surprisingly hard to beat.
func Merge2(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		va, vb := a[i], b[j]
		if va == vb {
			dst = append(dst, va)
			i++
			j++
			continue
		}
		// Branch-reduced advance: comparisons compile to conditional moves.
		if va < vb {
			i++
		}
		if vb < va {
			j++
		}
	}
	return dst
}

// Merge intersects k ≥ 1 sorted sets by a simultaneous parallel scan: keep a
// candidate (the maximum of the current heads) and advance every list to it;
// when all heads agree the candidate is emitted. For k = 2 it defers to
// Merge2.
func Merge(lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint32(nil), lists[0]...)
	case 2:
		return Merge2(nil, lists[0], lists[1])
	}
	pos := make([]int, len(lists))
	var out []uint32
	if len(lists[0]) == 0 {
		return out
	}
	candidate := lists[0][0]
scan:
	for {
		agreed := 0
		for li, l := range lists {
			i := pos[li]
			for i < len(l) && l[i] < candidate {
				i++
			}
			pos[li] = i
			if i == len(l) {
				break scan
			}
			if l[i] == candidate {
				agreed++
			} else {
				candidate = l[i]
				agreed = 1
			}
		}
		if agreed == len(lists) {
			out = append(out, candidate)
			// Advance past the emitted element.
			for li := range lists {
				pos[li]++
				if pos[li] == len(lists[li]) {
					break scan
				}
			}
			candidate = lists[0][pos[0]]
		}
	}
	return out
}
