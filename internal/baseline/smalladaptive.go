package baseline

// SmallAdaptive is the hybrid intersection of Barbay, López-Ortiz, Lu and
// Salinger [5]: at every step the algorithm re-selects the set with the
// smallest number of remaining elements, takes its first remaining element
// as the candidate, and galloping-searches it through the other sets in
// increasing order of remaining size; any miss makes the successor element
// in the missing set the basis for the next round. It combines SvS's
// probe-ordering with Adaptive's eliminator promotion.
func SmallAdaptive(lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint32(nil), lists[0]...)
	}
	k := len(lists)
	rem := make([][]uint32, k)
	copy(rem, lists)
	var out []uint32
	for {
		// Order by remaining length (cheap selection each round: k is tiny).
		for i := 1; i < k; i++ {
			for j := i; j > 0 && len(rem[j]) < len(rem[j-1]); j-- {
				rem[j], rem[j-1] = rem[j-1], rem[j]
			}
		}
		if len(rem[0]) == 0 {
			return out
		}
		candidate := rem[0][0]
		rem[0] = rem[0][1:]
		matched := true
		for i := 1; i < k; i++ {
			p := gallop(rem[i], 0, candidate)
			if p == len(rem[i]) {
				return out
			}
			if rem[i][p] == candidate {
				rem[i] = rem[i][p+1:]
				continue
			}
			// Miss: discard everything below the blocking element and
			// restart with a fresh smallest set.
			rem[i] = rem[i][p:]
			matched = false
			break
		}
		if matched {
			out = append(out, candidate)
		}
	}
}
