// Package baseline implements every competitor the paper evaluates against
// in Section 4:
//
//	Merge         — linear parallel scan of sorted lists (inverted-index merge)
//	Hash          — open-addressing hash tables, probe with the smallest set
//	SkipList      — static skip list per Pugh's cookbook [18]
//	SvS           — smallest-vs-set galloping search
//	Adaptive      — Demaine–López-Ortiz–Munro adaptive intersection [12,13]
//	BaezaYates    — median divide-and-conquer [1,2], k-set form per [5]
//	SmallAdaptive — Barbay et al. hybrid [5]
//	Lookup        — Sanders–Transier two-level bucket structure [19,21]
//	BPP           — simplified Bille–Pagh–Pagh hashed filtering [6]
//
// All functions treat sets as strictly increasing []uint32 and return sorted
// results. Every implementation here is cross-checked against
// sets.IntersectReference in the package tests.
package baseline

import (
	"slices"
	"sort"
)

// gallop returns the smallest index i ≥ from with a[i] >= x, using
// exponential probing followed by binary search. It is the standard
// "galloping" primitive of the adaptive algorithms: cost O(log d) where d is
// the distance skipped.
func gallop(a []uint32, from int, x uint32) int {
	if from >= len(a) || a[from] >= x {
		return from
	}
	step := 1
	lo := from
	hi := from + 1
	for hi < len(a) && a[hi] < x {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(a) {
		hi = len(a)
	}
	// Invariant: a[lo] < x, and (hi == len(a) or a[hi] >= x).
	return lo + sort.Search(hi-lo, func(i int) bool { return a[lo+i] >= x }) // lo+1 ≤ result ≤ hi
}

// sortBySize returns the lists ordered by ascending length without mutating
// the argument slice header the caller sees.
func sortBySize(lists [][]uint32) [][]uint32 {
	out := make([][]uint32, len(lists))
	copy(out, lists)
	slices.SortStableFunc(out, func(a, b []uint32) int { return len(a) - len(b) })
	return out
}
