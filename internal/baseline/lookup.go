package baseline

// Lookup is the two-level posting-list representation of Sanders and
// Transier [19,21] (the paper's Lookup baseline): the universe is divided
// into buckets of B consecutive IDs and a dense directory maps each bucket
// to its offset in the posting array, so an intersection can jump straight
// to the bucket of the other list that can contain a given element and scan
// at most B entries. The paper uses B = 32, the best value in both the
// authors' and the original paper's experience.
type Lookup struct {
	set []uint32
	dir []int32 // dir[q] = offset of the first element with id/B == q; len = buckets+1
	b   uint32
}

// DefaultBucketSize is the paper's B = 32: the average number of elements
// per bucket ("using B = 32 as the bucket-size, which is the best value in
// our and the authors' experience").
const DefaultBucketSize = 32

// AutoBucketWidth returns the power-of-two ID width giving ≈ n/bucketSize
// buckets over [0, maxID]: the directory stays O(n/B) regardless of how
// sparse the list is in its universe.
func AutoBucketWidth(maxID uint32, n, bucketSize int) uint32 {
	if n <= 0 {
		return 1 << 31
	}
	target := (uint64(maxID) + 1) * uint64(bucketSize) / uint64(n)
	w := uint32(1)
	for uint64(w) < target && w < 1<<31 {
		w <<= 1
	}
	return w
}

// NewLookup builds the structure over a sorted set. bucketWidth must be a
// positive power of two.
func NewLookup(set []uint32, bucketWidth uint32) *Lookup {
	if bucketWidth == 0 || bucketWidth&(bucketWidth-1) != 0 {
		panic("baseline: bucket width must be a power of two")
	}
	var maxID uint32
	if len(set) > 0 {
		maxID = set[len(set)-1]
	}
	buckets := maxID/bucketWidth + 1
	l := &Lookup{
		set: append([]uint32(nil), set...),
		dir: make([]int32, buckets+1),
		b:   bucketWidth,
	}
	q := uint32(0)
	for i, x := range l.set {
		for q <= x/bucketWidth {
			l.dir[q] = int32(i)
			q++
		}
	}
	for ; q <= buckets; q++ {
		l.dir[q] = int32(len(l.set))
	}
	return l
}

// Len returns the number of elements.
func (l *Lookup) Len() int { return len(l.set) }

// SizeWords returns the structure's size in 64-bit words (posting array +
// directory), for the space accounting experiments.
func (l *Lookup) SizeWords() int { return (len(l.set) + len(l.dir) + 1) / 2 }

// bucketRange returns the slice of elements in bucket q, or an empty slice
// if q is past the directory.
func (l *Lookup) bucketRange(q uint32) []uint32 {
	if q >= uint32(len(l.dir))-1 {
		return nil
	}
	return l.set[l.dir[q]:l.dir[q+1]]
}

// LookupIntersect intersects a sorted probe list against pre-built Lookup
// structures: for every run of probe elements falling into one bucket, the
// matching buckets of the other structures are merged. The result is sorted.
func LookupIntersect(probe []uint32, others ...*Lookup) []uint32 {
	if len(others) == 0 {
		return append([]uint32(nil), probe...)
	}
	current := probe
	var out []uint32
	for _, other := range others {
		out = nil
		b := other.b
		i := 0
		for i < len(current) {
			q := current[i] / b
			// Run of probe elements in bucket q.
			j := i + 1
			for j < len(current) && current[j]/b == q {
				j++
			}
			bucket := other.bucketRange(q)
			// Merge the ≤B-element runs.
			p, r := i, 0
			for p < j && r < len(bucket) {
				switch {
				case current[p] < bucket[r]:
					p++
				case current[p] > bucket[r]:
					r++
				default:
					out = append(out, current[p])
					p++
					r++
				}
			}
			i = j
		}
		current = out
		if len(current) == 0 {
			break
		}
	}
	return current
}

// LookupAlg is the convenience form: builds structures for all but the
// smallest set and probes with the smallest, using the default bucket width.
func LookupAlg(lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint32(nil), lists[0]...)
	}
	ordered := sortBySize(lists)
	others := make([]*Lookup, len(ordered)-1)
	for i, l := range ordered[1:] {
		var maxID uint32
		if len(l) > 0 {
			maxID = l[len(l)-1]
		}
		others[i] = NewLookup(l, AutoBucketWidth(maxID, len(l), DefaultBucketSize))
	}
	return LookupIntersect(ordered[0], others...)
}
