package baseline

import (
	"math/bits"
	"sort"

	"fastintersect/internal/sets"
	"fastintersect/internal/xhash"
)

// BPP is a simplified implementation of the Bille–Pagh–Pagh algorithm [6]
// ("Fast Evaluation of Union-Intersection Expressions"), the baseline the
// paper labels BPP. The idea: map each set through a hash function h into a
// smaller universe, intersect the (word-packed) hashed images cheaply, then
// recover the pre-images of the surviving hash values and discard false
// positives. The paper notes it simplified BPP's bit manipulation to make
// it faster for small w; we follow the same spirit:
//
//   - preprocessing sorts each set by a 32-bit hash H(x) and stores bitmaps
//     of the top-j bits of H for every resolution j (a power-of-two number
//     of buckets), plus a bucket-offset directory at the finest resolution;
//   - a query picks the resolution matching the smallest set, ANDs the k
//     bitmaps word by word, and for every surviving bucket merges the
//     candidate runs of all k sets in (H, x) order, emitting x only when it
//     appears in all k runs (false positives die here).
//
// The per-query constant work on bitmaps is what makes BPP slow in practice
// (Figure 4), and this implementation reproduces that behaviour.
type BPP struct {
	elems   []uint32 // set elements ordered by (H(x), x)
	hvals   []uint32 // H(x), same order
	bitmaps [][]uint64
	minJ    int     // coarsest resolution stored
	maxJ    int     // finest resolution stored; directory lives here
	dir     []int32 // bucket offsets at maxJ; len 2^maxJ+1
}

// bppSeed fixes H across all BPP structures so hashed orders are consistent
// between the sets of a query, as [6] requires.
const bppSeed = 0xB1117E

// bppHash is the shared 32-bit hash H.
func bppHash(x uint32) uint32 {
	z := (uint64(x) + bppSeed) * 0x9E3779B97F4A7C15
	return uint32(z >> 32)
}

// NewBPP preprocesses a sorted set.
func NewBPP(set []uint32) *BPP {
	n := len(set)
	b := &BPP{
		elems: append([]uint32(nil), set...),
		hvals: make([]uint32, n),
	}
	b.minJ = 5 // at least 32 buckets
	b.maxJ = int(xhash.CeilLog2(n))
	if b.maxJ < b.minJ {
		b.maxJ = b.minJ
	}
	for i, x := range b.elems {
		b.hvals[i] = bppHash(x)
	}
	sort.Sort(byHashThenValue{b})
	// Bitmaps for every resolution j: bit y set iff some H(x) has top-j
	// bits equal to y.
	b.bitmaps = make([][]uint64, b.maxJ-b.minJ+1)
	for j := b.minJ; j <= b.maxJ; j++ {
		bm := make([]uint64, (1<<j+63)/64)
		for _, h := range b.hvals {
			y := h >> (32 - uint(j))
			bm[y>>6] |= 1 << (y & 63)
		}
		b.bitmaps[j-b.minJ] = bm
	}
	// Directory at the finest resolution.
	b.dir = make([]int32, (1<<b.maxJ)+1)
	q := uint32(0)
	for i, h := range b.hvals {
		y := h >> (32 - uint(b.maxJ))
		for q <= y {
			b.dir[q] = int32(i)
			q++
		}
	}
	for ; q <= 1<<b.maxJ; q++ {
		b.dir[q] = int32(n)
	}
	return b
}

type byHashThenValue struct{ b *BPP }

func (s byHashThenValue) Len() int { return len(s.b.elems) }
func (s byHashThenValue) Less(i, j int) bool {
	if s.b.hvals[i] != s.b.hvals[j] {
		return s.b.hvals[i] < s.b.hvals[j]
	}
	return s.b.elems[i] < s.b.elems[j]
}
func (s byHashThenValue) Swap(i, j int) {
	s.b.elems[i], s.b.elems[j] = s.b.elems[j], s.b.elems[i]
	s.b.hvals[i], s.b.hvals[j] = s.b.hvals[j], s.b.hvals[i]
}

// Len returns the number of elements.
func (b *BPP) Len() int { return len(b.elems) }

// bucket returns the (H-ordered) run of elements whose top-j hash bits are y.
func (b *BPP) bucket(j int, y uint32) (lo, hi int32) {
	shift := uint(b.maxJ - j)
	return b.dir[y<<shift], b.dir[(y+1)<<shift]
}

// IntersectBPP intersects k ≥ 2 preprocessed sets. The result is sorted by
// document ID (the hashed-order output is re-sorted at the end, mirroring
// the recovery step of [6]).
func IntersectBPP(structs ...*BPP) []uint32 {
	if len(structs) == 0 {
		return nil
	}
	if len(structs) == 1 {
		out := append([]uint32(nil), structs[0].elems...)
		sets.SortU32(out)
		return out
	}
	// Resolution: match the smallest set, clamped so every structure has it.
	smallest := structs[0]
	j := 31
	for _, s := range structs {
		if s.Len() < smallest.Len() {
			smallest = s
		}
		if s.maxJ < j {
			j = s.maxJ
		}
	}
	if sj := int(xhash.CeilLog2(smallest.Len())); sj < j {
		j = sj
	}
	if j < structs[0].minJ {
		j = structs[0].minJ
	}
	// Word-parallel AND of the hashed images.
	words := (1<<j + 63) / 64
	acc := make([]uint64, words)
	copy(acc, structs[0].bitmaps[j-structs[0].minJ])
	for _, s := range structs[1:] {
		bm := s.bitmaps[j-s.minJ]
		for w := range acc {
			acc[w] &= bm[w]
		}
	}
	var out []uint32
	runs := make([][2]int32, len(structs))
	for w, word := range acc {
		for word != 0 {
			y := uint32(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
			for si, s := range structs {
				lo, hi := s.bucket(j, y)
				runs[si] = [2]int32{lo, hi}
			}
			out = mergeRunsBPP(out, structs, runs)
		}
	}
	sets.SortU32(out)
	return out
}

// mergeRunsBPP merges k candidate runs in (H, x) order, emitting elements
// present in all runs.
func mergeRunsBPP(dst []uint32, structs []*BPP, runs [][2]int32) []uint32 {
	pos := make([]int32, len(structs))
	for i, r := range runs {
		pos[i] = r[0]
	}
outer:
	for {
		if pos[0] >= runs[0][1] {
			return dst
		}
		ch, cx := structs[0].hvals[pos[0]], structs[0].elems[pos[0]]
		for si := 1; si < len(structs); si++ {
			s := structs[si]
			i := pos[si]
			for i < runs[si][1] && lessHX(s.hvals[i], s.elems[i], ch, cx) {
				i++
			}
			pos[si] = i
			if i >= runs[si][1] {
				return dst
			}
			if s.hvals[i] != ch || s.elems[i] != cx {
				// Candidate dead: advance the probe run and restart.
				pos[0]++
				continue outer
			}
		}
		dst = append(dst, cx)
		for si := range pos {
			pos[si]++
		}
	}
}

// lessHX orders by (hash, value).
func lessHX(h1 uint32, x1 uint32, h2 uint32, x2 uint32) bool {
	if h1 != h2 {
		return h1 < h2
	}
	return x1 < x2
}

// BPPAlg is the convenience form used by tests and the harness.
func BPPAlg(lists ...[]uint32) []uint32 {
	structs := make([]*BPP, len(lists))
	for i, l := range lists {
		structs[i] = NewBPP(l)
	}
	return IntersectBPP(structs...)
}
