package baseline

import "sort"

// BaezaYates intersects sorted sets with the divide-and-conquer algorithm of
// Baeza-Yates [1,2]: take the median of the smaller list, binary-search it
// in the larger list, and recurse on the two halves. For k > 2 sets it
// follows the generalization used in [5]: intersect the two smallest sets,
// then the (sorted) result with the next set, and so on.
func BaezaYates(lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint32(nil), lists[0]...)
	}
	ordered := sortBySize(lists)
	result := baezaYates2(nil, ordered[0], ordered[1])
	for _, l := range ordered[2:] {
		if len(result) == 0 {
			return result
		}
		result = baezaYates2(nil, result, l)
	}
	return result
}

// baezaYates2 appends a ∩ b to dst; a is the smaller ("probe") list.
// The recursion keeps output sorted because the left half is processed
// before the median and the median before the right half.
func baezaYates2(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	m := len(a) / 2
	med := a[m]
	i := sort.Search(len(b), func(i int) bool { return b[i] >= med })
	found := i < len(b) && b[i] == med
	dst = baezaYates2(dst, a[:m], b[:i])
	if found {
		dst = append(dst, med)
		i++
	}
	return baezaYates2(dst, a[m+1:], b[i:])
}
