package baseline

import "fastintersect/internal/xhash"

// SkipList is a static skip list following Pugh's cookbook [18], simplified
// for static data as the paper's implementation was: node heights are drawn
// with p = 1/4 at build time, towers are stored in one flat array, and no
// insertion/deletion machinery exists. Searches descend from a head tower;
// intersections iterate the smallest list and skip-search the others,
// resuming from the previous match position (a "finger" at level 0 raised
// back to the top of the finger node's tower).
type SkipList struct {
	vals []uint32
	// tower[towerOff[i] : towerOff[i+1]] are node i's forward pointers,
	// level 0 first; entry -1 means nil.
	tower    []int32
	towerOff []int32
	head     []int32 // forward pointers from the artificial head node
	maxLevel int
}

const skipListP = 4 // 1-in-4 promotion, Pugh's recommended p for big lists

// NewSkipList builds a skip list over a sorted set. Heights are drawn from
// the deterministic RNG seeded by the set length so builds are reproducible.
func NewSkipList(set []uint32) *SkipList {
	rng := xhash.NewRNG(uint64(len(set))*0x9E3779B9 + 1)
	n := len(set)
	heights := make([]uint8, n)
	maxLevel := 1
	for i := range heights {
		h := 1
		for h < 32 && rng.Intn(skipListP) == 0 {
			h++
		}
		heights[i] = uint8(h)
		if h > maxLevel {
			maxLevel = h
		}
	}
	s := &SkipList{
		vals:     append([]uint32(nil), set...),
		towerOff: make([]int32, n+1),
		head:     make([]int32, maxLevel),
		maxLevel: maxLevel,
	}
	total := int32(0)
	for i, h := range heights {
		s.towerOff[i] = total
		total += int32(h)
	}
	s.towerOff[n] = total
	s.tower = make([]int32, total)
	// Link levels: last[l] = most recent node at level l.
	last := make([]int32, maxLevel)
	for l := range last {
		last[l] = -1
		s.head[l] = -1
	}
	for i := n - 1; i >= 0; i-- { // link right-to-left so next pointers are ready
		for l := 0; l < int(heights[i]); l++ {
			s.tower[s.towerOff[i]+int32(l)] = last[l]
			last[l] = int32(i)
		}
	}
	copy(s.head, last)
	return s
}

// Len returns the number of elements.
func (s *SkipList) Len() int { return len(s.vals) }

// forward returns node i's forward pointer at level l, or -1.
func (s *SkipList) forward(i int32, l int) int32 {
	off := s.towerOff[i]
	if s.towerOff[i+1]-off <= int32(l) {
		return -1
	}
	return s.tower[off+int32(l)]
}

// height returns node i's tower height.
func (s *SkipList) height(i int32) int {
	return int(s.towerOff[i+1] - s.towerOff[i])
}

// search returns the index of the first node with value ≥ x, descending
// the head tower, or -1 if all values are smaller.
func (s *SkipList) search(x uint32) int32 {
	cur := int32(-1)
	for l := s.maxLevel - 1; l >= 0; l-- {
		for {
			var nxt int32
			if cur < 0 {
				nxt = s.head[l]
			} else {
				nxt = s.forward(cur, l)
			}
			if nxt < 0 || s.vals[nxt] >= x {
				break
			}
			cur = nxt
		}
	}
	// cur is the last node with value < x (or head).
	if cur < 0 {
		return s.head[0]
	}
	return s.forward(cur, 0)
}

// SkipIntersect intersects the (sorted) probe set against pre-built skip
// lists — the Hash-style online phase. Results are sorted. A level-0 finger
// provides a fast path when consecutive probes land on adjacent nodes;
// otherwise the search restarts from the head tower.
func SkipIntersect(probe []uint32, others ...*SkipList) []uint32 {
	var out []uint32
	fingers := make([]int32, len(others))
	for i := range fingers {
		fingers[i] = -1
	}
	for _, x := range probe {
		ok := true
		for i, sl := range others {
			var at int32
			if f := fingers[i]; f >= 0 {
				at = sl.forward(f, 0)
			} else {
				at = sl.head[0]
			}
			if at >= 0 && sl.vals[at] < x {
				at = sl.search(x)
			}
			if at < 0 {
				return out // list exhausted: nothing further can match
			}
			if sl.vals[at] != x {
				ok = false
				break
			}
			fingers[i] = at
		}
		if ok {
			out = append(out, x)
		}
	}
	return out
}

// SkipListIntersect is the convenience form: builds skip lists for all but
// the smallest set and probes with the smallest.
func SkipListIntersect(lists ...[]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint32(nil), lists[0]...)
	}
	ordered := sortBySize(lists)
	others := make([]*SkipList, len(ordered)-1)
	for i, l := range ordered[1:] {
		others[i] = NewSkipList(l)
	}
	return SkipIntersect(ordered[0], others...)
}
