// Package xhash provides the randomized mappings the paper's data structures
// are built from: 2-universal hash functions h : Σ → [w] (multiply-shift),
// a random permutation g : Σ → Σ realized as a Feistel network over 32 bits,
// and a small deterministic PRNG (splitmix64) used to derive all randomness
// from a single seed so every experiment is reproducible.
package xhash

import "math/bits"

// RNG is a splitmix64 pseudo-random generator. It is deterministic for a
// given seed and is the only source of randomness in this repository.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next pseudo-random 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xhash: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// WordHash is a 2-universal hash function h : Σ → [w] with w = 64,
// implemented as a multiply-shift hash over 64-bit arithmetic:
//
//	h(x) = (a·x + b) >> 58,  a odd.
//
// The paper uses 2-universal functions for h and the hj's of RanGroupScan.
type WordHash struct {
	a, b uint64
}

// NewWordHash draws a fresh hash function from rng.
func NewWordHash(rng *RNG) WordHash {
	return WordHash{a: rng.Uint64() | 1, b: rng.Uint64()}
}

// Hash maps x into [0, 64).
func (h WordHash) Hash(x uint32) uint8 {
	return uint8((h.a*uint64(x) + h.b) >> 58)
}

// NewWordHashes draws m independent hash functions h1..hm.
func NewWordHashes(rng *RNG, m int) []WordHash {
	hs := make([]WordHash, m)
	for i := range hs {
		hs[i] = NewWordHash(rng)
	}
	return hs
}

// Perm is the random permutation g : Σ → Σ of Section 3.2.1, realized as a
// 4-round Feistel network over the 32-bit universe. A Feistel construction
// is a bijection for any round functions, is invertible (required by the
// Lowbits compression of Appendix B, which reconstructs g(x) and must map it
// back), and needs O(1) space — unlike an explicit table over 2³² elements.
type Perm struct {
	keys [4]uint32
}

// NewPerm draws a fresh permutation from rng.
func NewPerm(rng *RNG) Perm {
	var p Perm
	for i := range p.keys {
		p.keys[i] = rng.Uint32()
	}
	return p
}

// feistelRound mixes a 16-bit half with a round key into 16 bits.
func feistelRound(half uint16, key uint32) uint16 {
	x := uint32(half) ^ key
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return uint16(x)
}

// Apply computes g(x).
func (p Perm) Apply(x uint32) uint32 {
	l, r := uint16(x>>16), uint16(x)
	for _, k := range p.keys {
		l, r = r, l^feistelRound(r, k)
	}
	return uint32(l)<<16 | uint32(r)
}

// Invert computes g⁻¹(y), the pre-image of y under the permutation.
func (p Perm) Invert(y uint32) uint32 {
	l, r := uint16(y>>16), uint16(y)
	for i := len(p.keys) - 1; i >= 0; i-- {
		l, r = r^feistelRound(l, p.keys[i]), l
	}
	return uint32(l)<<16 | uint32(r)
}

// Prefix returns gt(x): the t most significant bits of g(x), the group
// identifier z ∈ {0,1}^t of Section 3.2. t must be in [0, 32].
func (p Perm) Prefix(x uint32, t uint) uint32 {
	return PrefixOf(p.Apply(x), t)
}

// PrefixOf returns the t most significant bits of an (already permuted)
// 32-bit value. t must be in [0, 32].
func PrefixOf(g uint32, t uint) uint32 {
	if t == 0 {
		return 0
	}
	if t > 32 {
		panic("xhash: prefix length out of range")
	}
	return g >> (32 - t)
}

// CeilLog2 returns ⌈log2(n)⌉ for n ≥ 1, and 0 for n ≤ 1. The paper's group
// counts t_i = ⌈log(n_i/√w)⌉ are computed with it.
func CeilLog2(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len64(uint64(n - 1)))
}
