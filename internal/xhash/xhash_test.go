package xhash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestWordHashRange(t *testing.T) {
	rng := NewRNG(1)
	h := NewWordHash(rng)
	for i := 0; i < 10000; i++ {
		y := h.Hash(uint32(i * 2654435761))
		if y >= 64 {
			t.Fatalf("hash value %d out of [0,64)", y)
		}
	}
}

func TestWordHashUniformity(t *testing.T) {
	// Chi-squared style sanity: buckets of a multiply-shift hash over a
	// structured input should all be populated and roughly balanced.
	rng := NewRNG(2)
	h := NewWordHash(rng)
	var counts [64]int
	const n = 64 * 1000
	for i := 0; i < n; i++ {
		counts[h.Hash(uint32(i))]++
	}
	for y, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty", y)
		}
		if math.Abs(float64(c)-1000) > 400 {
			t.Fatalf("bucket %d badly skewed: %d", y, c)
		}
	}
}

func TestWordHashCollisionRate(t *testing.T) {
	// 2-universality: Pr[h(x)=h(x')] ≈ 1/64 for x ≠ x'.
	rng := NewRNG(3)
	const trials = 200
	collisions, pairs := 0, 0
	for tr := 0; tr < trials; tr++ {
		h := NewWordHash(rng)
		x, y := rng.Uint32(), rng.Uint32()
		if x == y {
			continue
		}
		pairs++
		if h.Hash(x) == h.Hash(y) {
			collisions++
		}
	}
	rate := float64(collisions) / float64(pairs)
	if rate > 0.08 {
		t.Fatalf("collision rate %v too high for 2-universal family", rate)
	}
}

func TestNewWordHashesIndependence(t *testing.T) {
	rng := NewRNG(4)
	hs := NewWordHashes(rng, 4)
	if len(hs) != 4 {
		t.Fatalf("got %d hashes", len(hs))
	}
	agree := 0
	for i := 0; i < 1000; i++ {
		x := rng.Uint32()
		if hs[0].Hash(x) == hs[1].Hash(x) {
			agree++
		}
	}
	if agree > 100 { // expect ~1000/64 ≈ 16
		t.Fatalf("h1 and h2 agree on %d/1000 inputs; not independent", agree)
	}
}

func TestPermBijection(t *testing.T) {
	rng := NewRNG(5)
	p := NewPerm(rng)
	f := func(x uint32) bool { return p.Invert(p.Apply(x)) == x }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint32{0, 1, math.MaxUint32, math.MaxUint32 - 1, 1 << 31} {
		if p.Invert(p.Apply(x)) != x {
			t.Fatalf("Invert(Apply(%d)) != %d", x, x)
		}
	}
}

func TestPermInjectiveOnSample(t *testing.T) {
	rng := NewRNG(6)
	p := NewPerm(rng)
	seen := make(map[uint32]uint32, 1<<16)
	for x := uint32(0); x < 1<<16; x++ {
		g := p.Apply(x)
		if prev, ok := seen[g]; ok {
			t.Fatalf("collision: Apply(%d) == Apply(%d) == %d", x, prev, g)
		}
		seen[g] = x
	}
}

func TestPermPrefixSpreads(t *testing.T) {
	// Consecutive inputs should land in different prefix buckets: this is
	// the property RanGroup's partitioning relies on.
	rng := NewRNG(7)
	p := NewPerm(rng)
	const tbits = 8
	var counts [1 << tbits]int
	const n = 1 << 14
	for x := uint32(0); x < n; x++ {
		counts[p.Prefix(x, tbits)]++
	}
	want := float64(n) / (1 << tbits)
	for z, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d elements, want ≈%v", z, c, want)
		}
	}
}

func TestPrefixOf(t *testing.T) {
	if got := PrefixOf(0xABCD1234, 0); got != 0 {
		t.Fatalf("t=0 prefix = %d", got)
	}
	if got := PrefixOf(0xABCD1234, 4); got != 0xA {
		t.Fatalf("t=4 prefix = %x", got)
	}
	if got := PrefixOf(0xABCD1234, 16); got != 0xABCD {
		t.Fatalf("t=16 prefix = %x", got)
	}
	if got := PrefixOf(0xABCD1234, 32); got != 0xABCD1234 {
		t.Fatalf("t=32 prefix = %x", got)
	}
}

func TestPrefixOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PrefixOf(t=33) did not panic")
		}
	}()
	PrefixOf(1, 33)
}

func TestPrefixConsistency(t *testing.T) {
	// z1 = t1-prefix of z2 whenever both come from the same g(x): the
	// correctness condition behind Algorithm 3/4's group matching.
	rng := NewRNG(8)
	p := NewPerm(rng)
	for i := 0; i < 1000; i++ {
		x := rng.Uint32()
		t1, t2 := uint(5), uint(11)
		z1, z2 := p.Prefix(x, t1), p.Prefix(x, t2)
		if z1 != z2>>(t2-t1) {
			t.Fatalf("prefix inconsistency for x=%d", x)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]uint{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Fatalf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}
