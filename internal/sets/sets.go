// Package sets holds the shared sorted-set plumbing: validation, sorting,
// deduplication, and a deliberately simple reference intersection used as
// the ground truth that every algorithm in this repository is tested
// against.
//
// Throughout the repository a set is a strictly increasing []uint32 of
// document IDs, matching the paper's posting-list model.
package sets

import (
	"fmt"
	"sort"
)

// IsSorted reports whether s is strictly increasing (sorted and duplicate
// free).
func IsSorted(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Validate returns an error describing the first violation of the set
// contract (strictly increasing order), or nil.
func Validate(s []uint32) error {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return fmt.Errorf("sets: not sorted at index %d (%d > %d)", i, s[i-1], s[i])
		}
		if s[i-1] == s[i] {
			return fmt.Errorf("sets: duplicate element %d at index %d", s[i], i)
		}
	}
	return nil
}

// SortDedup sorts s in place and removes duplicates, returning the
// (possibly shorter) slice. It is the canonical way to turn arbitrary IDs
// into a set.
func SortDedup(s []uint32) []uint32 {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Clone returns a copy of s.
func Clone(s []uint32) []uint32 {
	out := make([]uint32, len(s))
	copy(out, s)
	return out
}

// Equal reports whether a and b contain the same elements in the same order.
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Contains reports whether sorted set s contains x, by binary search.
func Contains(s []uint32, x uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// IntersectReference computes the intersection of k sorted sets with a
// straightforward pairwise merge. It makes no performance claims; it exists
// as an obviously-correct oracle for tests and as the seed of the Merge
// baseline's correctness checks.
func IntersectReference(lists ...[]uint32) []uint32 {
	if len(lists) == 0 {
		return nil
	}
	out := Clone(lists[0])
	for _, l := range lists[1:] {
		out = intersect2(out, l)
		if len(out) == 0 {
			return out
		}
	}
	return out
}

func intersect2(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Union returns the sorted union of two sorted sets.
func Union(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Difference returns the sorted elements of a that are not in b; both
// inputs must be sorted ascending.
func Difference(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// SortU32 sorts a []uint32 ascending in place. Shared helper so hot callers
// avoid the closure allocation of sort.Slice.
func SortU32(s []uint32) {
	sort.Sort(u32Slice(s))
}

type u32Slice []uint32

func (p u32Slice) Len() int           { return len(p) }
func (p u32Slice) Less(i, j int) bool { return p[i] < p[j] }
func (p u32Slice) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
