// Package sets holds the shared sorted-set plumbing: validation, sorting,
// deduplication, and a deliberately simple reference intersection used as
// the ground truth that every algorithm in this repository is tested
// against.
//
// Throughout the repository a set is a strictly increasing []uint32 of
// document IDs, matching the paper's posting-list model.
//
// The *Into variants append to a caller-provided destination slice and are
// the allocation-free building blocks of the query-execution hot path: they
// never retain dst and never allocate beyond growing it.
package sets

import (
	"fmt"
	"slices"
	"sort"
)

// IsSorted reports whether s is strictly increasing (sorted and duplicate
// free).
func IsSorted(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Validate returns an error describing the first violation of the set
// contract (strictly increasing order), or nil.
func Validate(s []uint32) error {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return fmt.Errorf("sets: not sorted at index %d (%d > %d)", i, s[i-1], s[i])
		}
		if s[i-1] == s[i] {
			return fmt.Errorf("sets: duplicate element %d at index %d", s[i], i)
		}
	}
	return nil
}

// SortDedup sorts s in place and removes duplicates, returning the
// (possibly shorter) slice. It is the canonical way to turn arbitrary IDs
// into a set.
func SortDedup(s []uint32) []uint32 {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Clone returns a copy of s.
func Clone(s []uint32) []uint32 {
	out := make([]uint32, len(s))
	copy(out, s)
	return out
}

// Equal reports whether a and b contain the same elements in the same order.
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Contains reports whether sorted set s contains x, by binary search.
func Contains(s []uint32, x uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// IntersectReference computes the intersection of k sorted sets with a
// straightforward pairwise merge. It makes no performance claims; it exists
// as an obviously-correct oracle for tests and as the seed of the Merge
// baseline's correctness checks.
func IntersectReference(lists ...[]uint32) []uint32 {
	if len(lists) == 0 {
		return nil
	}
	out := Clone(lists[0])
	for _, l := range lists[1:] {
		out = intersect2(out, l)
		if len(out) == 0 {
			return out
		}
	}
	return out
}

func intersect2(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// IntersectInto appends the intersection of two sorted sets to dst. Neither
// input may alias dst.
func IntersectInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectGallopInto appends the intersection of two sorted sets to dst,
// galloping the smaller set through the larger (exponential probe followed
// by a binary search, resuming where the last match left off). The planner
// picks it over the linear merge of IntersectInto when the size ratio
// covers the per-probe overhead. Neither input may alias dst.
func IntersectGallopInto(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	lo := 0
	for _, x := range a {
		// Exponential search for the first b[j] >= x, starting at lo.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search within (lo-1, hi].
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(b) {
			break
		}
		if b[lo] == x {
			dst = append(dst, x)
			lo++
		}
	}
	return dst
}

// Union returns the sorted union of two sorted sets as a fresh slice.
func Union(a, b []uint32) []uint32 {
	return UnionInto(make([]uint32, 0, len(a)+len(b)), a, b)
}

// UnionInto appends the sorted union of two sorted sets to dst. Neither
// input may alias dst.
func UnionInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// unionKStack bounds the stack-allocated k-way merge state; unions wider
// than this fall back to heap-allocated state (never seen in practice: the
// engine's OR fan-in and shard count are both small).
const unionKStack = 16

// UnionKInto appends the sorted union of k sorted sets to dst with a single
// k-way merge: a binary min-heap of list heads, O(N log k) for N total
// elements, versus the O(k·N) of a pairwise cascade. Duplicates across
// lists are emitted once. No input may alias dst. For k ≤ 16 it performs no
// allocations beyond growing dst.
func UnionKInto(dst []uint32, lists ...[]uint32) []uint32 {
	// Compact away empty operands without touching the caller's slice.
	var idxArr [unionKStack]int
	var posArr [unionKStack]int
	heap, pos := idxArr[:0], posArr[:unionKStack]
	if len(lists) > unionKStack {
		heap = make([]int, 0, len(lists))
		pos = make([]int, len(lists))
	}
	for i, l := range lists {
		if len(l) > 0 {
			heap = append(heap, i)
			pos[i] = 0
		}
	}
	switch len(heap) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[heap[0]]...)
	case 2:
		return UnionInto(dst, lists[heap[0]], lists[heap[1]])
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		unionSiftDown(lists, heap, pos, i)
	}
	first := true
	var last uint32
	for len(heap) > 0 {
		li := heap[0]
		v := lists[li][pos[li]]
		if first || v != last {
			dst = append(dst, v)
			last = v
			first = false
		}
		pos[li]++
		if pos[li] == len(lists[li]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			unionSiftDown(lists, heap, pos, 0)
		}
	}
	return dst
}

// unionSiftDown restores the min-heap property of heap (list indices ordered
// by their current head value) downward from position i.
func unionSiftDown(lists [][]uint32, heap, pos []int, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(heap) && lists[heap[l]][pos[heap[l]]] < lists[heap[min]][pos[heap[min]]] {
			min = l
		}
		if r < len(heap) && lists[heap[r]][pos[heap[r]]] < lists[heap[min]][pos[heap[min]]] {
			min = r
		}
		if min == i {
			return
		}
		heap[i], heap[min] = heap[min], heap[i]
		i = min
	}
}

// Difference returns the sorted elements of a that are not in b as a fresh
// slice; both inputs must be sorted ascending.
func Difference(a, b []uint32) []uint32 {
	return DifferenceInto(make([]uint32, 0, len(a)), a, b)
}

// DifferenceInto appends the sorted elements of a that are not in b to dst.
// Neither input may alias dst.
func DifferenceInto(dst, a, b []uint32) []uint32 {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		dst = append(dst, x)
	}
	return dst
}

// InsertSorted inserts x into sorted set s, returning the (possibly grown)
// slice and whether x was actually inserted (false: already present). It is
// the point-update primitive of the engine's delta segments, where sets stay
// small between compactions; cost is O(log n) search + O(n) shift.
func InsertSorted(s []uint32, x uint32) ([]uint32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s, true
}

// RemoveSorted removes x from sorted set s, returning the (possibly
// shortened) slice and whether x was present.
func RemoveSorted(s []uint32, x uint32) ([]uint32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i >= len(s) || s[i] != x {
		return s, false
	}
	return append(s[:i], s[i+1:]...), true
}

// SortU32 sorts a []uint32 ascending in place.
func SortU32(s []uint32) {
	slices.Sort(s)
}
