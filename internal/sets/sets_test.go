package sets

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestIsSorted(t *testing.T) {
	cases := []struct {
		s    []uint32
		want bool
	}{
		{nil, true},
		{[]uint32{}, true},
		{[]uint32{5}, true},
		{[]uint32{1, 2, 3}, true},
		{[]uint32{1, 1, 2}, false},
		{[]uint32{3, 2}, false},
		{[]uint32{0, 4294967295}, true},
	}
	for _, c := range cases {
		if got := IsSorted(c.s); got != c.want {
			t.Fatalf("IsSorted(%v) = %v", c.s, got)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]uint32{1, 2, 3}); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if err := Validate([]uint32{2, 2}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := Validate([]uint32{3, 1}); err == nil {
		t.Fatal("unsorted accepted")
	}
}

func TestSortDedup(t *testing.T) {
	got := SortDedup([]uint32{5, 1, 5, 3, 1, 0})
	want := []uint32{0, 1, 3, 5}
	if !Equal(got, want) {
		t.Fatalf("SortDedup = %v, want %v", got, want)
	}
	if got := SortDedup(nil); got != nil {
		t.Fatalf("SortDedup(nil) = %v", got)
	}
	one := []uint32{7}
	if got := SortDedup(one); !Equal(got, one) {
		t.Fatalf("SortDedup single = %v", got)
	}
}

func TestSortDedupProperty(t *testing.T) {
	f := func(in []uint32) bool {
		got := SortDedup(Clone(in))
		if !IsSorted(got) {
			return false
		}
		// Every input element present, nothing extra.
		m := map[uint32]bool{}
		for _, v := range in {
			m[v] = true
		}
		if len(got) != len(m) {
			return false
		}
		for _, v := range got {
			if !m[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(nil, nil) || !Equal([]uint32{}, nil) {
		t.Fatal("empty equality broken")
	}
	if Equal([]uint32{1}, []uint32{2}) || Equal([]uint32{1}, []uint32{1, 2}) {
		t.Fatal("inequality not detected")
	}
}

func TestContains(t *testing.T) {
	s := []uint32{2, 4, 8, 16}
	for _, x := range s {
		if !Contains(s, x) {
			t.Fatalf("Contains(%d) = false", x)
		}
	}
	for _, x := range []uint32{0, 3, 17} {
		if Contains(s, x) {
			t.Fatalf("Contains(%d) = true", x)
		}
	}
	if Contains(nil, 1) {
		t.Fatal("Contains on nil set")
	}
}

func TestIntersectReferenceBasic(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9}
	b := []uint32{3, 4, 5, 6, 7}
	c := []uint32{5, 7, 11}
	got := IntersectReference(a, b, c)
	if !Equal(got, []uint32{5, 7}) {
		t.Fatalf("got %v", got)
	}
	if got := IntersectReference(); got != nil {
		t.Fatalf("no-args intersection = %v", got)
	}
	if got := IntersectReference(a); !Equal(got, a) {
		t.Fatalf("single-set intersection = %v", got)
	}
	if got := IntersectReference(a, nil); len(got) != 0 {
		t.Fatalf("intersection with empty = %v", got)
	}
}

func TestIntersectReferenceAgainstMaps(t *testing.T) {
	f := func(xa, xb []uint32) bool {
		a := SortDedup(Clone(xa))
		b := SortDedup(Clone(xb))
		got := IntersectReference(a, b)
		m := map[uint32]bool{}
		for _, v := range a {
			m[v] = true
		}
		var want []uint32
		for _, v := range b {
			if m[v] {
				want = append(want, v)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	got := Union([]uint32{1, 3, 5}, []uint32{2, 3, 6})
	if !Equal(got, []uint32{1, 2, 3, 5, 6}) {
		t.Fatalf("Union = %v", got)
	}
	if got := Union(nil, []uint32{1}); !Equal(got, []uint32{1}) {
		t.Fatalf("Union nil = %v", got)
	}
}

func TestUnionProperty(t *testing.T) {
	f := func(xa, xb []uint32) bool {
		a := SortDedup(Clone(xa))
		b := SortDedup(Clone(xb))
		u := Union(a, b)
		if !IsSorted(u) {
			return false
		}
		for _, v := range a {
			if !Contains(u, v) {
				return false
			}
		}
		for _, v := range b {
			if !Contains(u, v) {
				return false
			}
		}
		return len(u) <= len(a)+len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortU32(t *testing.T) {
	s := []uint32{9, 1, 1, 0, 4294967295, 7}
	SortU32(s)
	if !reflect.DeepEqual(s, []uint32{0, 1, 1, 7, 9, 4294967295}) {
		t.Fatalf("SortU32 = %v", s)
	}
}

func TestDifference(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{[]uint32{1, 2, 3}, []uint32{2}, []uint32{1, 3}},
		{[]uint32{1, 2, 3}, nil, []uint32{1, 2, 3}},
		{nil, []uint32{1}, []uint32{}},
		{[]uint32{1, 2}, []uint32{1, 2}, []uint32{}},
		{[]uint32{5, 10, 15}, []uint32{0, 10, 20}, []uint32{5, 15}},
		{[]uint32{0, 4294967295}, []uint32{7}, []uint32{0, 4294967295}},
	}
	for _, c := range cases {
		got := Difference(c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("Difference(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Difference(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

// TestInsertRemoveSorted drives the delta-segment point-update primitives
// through a random operation sequence against a map-based reference.
func TestInsertRemoveSorted(t *testing.T) {
	var s []uint32
	ref := map[uint32]bool{}
	rng := uint64(0xABCD)
	next := func(n int) uint32 { rng = rng*6364136223846793005 + 1; return uint32(rng>>33) % uint32(n) }
	for i := 0; i < 2000; i++ {
		x := next(64)
		if next(2) == 0 {
			var inserted bool
			s, inserted = InsertSorted(s, x)
			if inserted == ref[x] {
				t.Fatalf("InsertSorted(%d) inserted=%v, ref has=%v", x, inserted, ref[x])
			}
			ref[x] = true
		} else {
			var removed bool
			s, removed = RemoveSorted(s, x)
			if removed != ref[x] {
				t.Fatalf("RemoveSorted(%d) removed=%v, ref has=%v", x, removed, ref[x])
			}
			delete(ref, x)
		}
		if err := Validate(s); err != nil {
			t.Fatalf("after op %d: %v", i, err)
		}
		if len(s) != len(ref) {
			t.Fatalf("after op %d: len %d, ref %d", i, len(s), len(ref))
		}
	}
	for _, x := range s {
		if !ref[x] {
			t.Fatalf("element %d not in reference", x)
		}
	}
}
