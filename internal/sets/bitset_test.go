package sets

import "testing"

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, x := range []uint32{0, 63, 64, 129} {
		if b.Get(x) {
			t.Fatalf("fresh bitset has %d set", x)
		}
		b.Set(x)
		if !b.Get(x) {
			t.Fatalf("Set(%d) not visible", x)
		}
	}
	b.Unset(64)
	if b.Get(64) {
		t.Fatal("Unset(64) not visible")
	}
	if !b.Get(63) || !b.Get(129) {
		t.Fatal("Unset cleared neighbours")
	}
	b.Reset()
	for _, x := range []uint32{0, 63, 129} {
		if b.Get(x) {
			t.Fatalf("Reset left %d set", x)
		}
	}
}

func TestBitsetPanics(t *testing.T) {
	b := NewBitset(10)
	for name, f := range map[string]func(){
		"Set":   func() { b.Set(10) },
		"Get":   func() { b.Get(10) },
		"Unset": func() { b.Unset(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}
