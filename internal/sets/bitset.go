package sets

// Bitset is a plain fixed-size bitmap over [0, n). It backs the rejection
// samplers in the workload generators and the candidate marking in the BPP
// baseline, where map[uint32]bool overhead would dominate.
type Bitset struct {
	words []uint64
	n     uint32
}

// NewBitset returns an empty bitset over the universe [0, n).
func NewBitset(n uint32) *Bitset {
	return &Bitset{words: make([]uint64, (uint64(n)+63)/64), n: n}
}

// Len returns the universe size n.
func (b *Bitset) Len() uint32 { return b.n }

// Set marks x. It panics if x ≥ n.
func (b *Bitset) Set(x uint32) {
	if x >= b.n {
		panic("sets: Bitset.Set out of range")
	}
	b.words[x>>6] |= 1 << (x & 63)
}

// Unset clears x.
func (b *Bitset) Unset(x uint32) {
	if x >= b.n {
		panic("sets: Bitset.Unset out of range")
	}
	b.words[x>>6] &^= 1 << (x & 63)
}

// Get reports whether x is marked.
func (b *Bitset) Get(x uint32) bool {
	if x >= b.n {
		panic("sets: Bitset.Get out of range")
	}
	return b.words[x>>6]&(1<<(x&63)) != 0
}

// Reset clears all bits, retaining the allocation.
func (b *Bitset) Reset() {
	clear(b.words)
}
