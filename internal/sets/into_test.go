package sets

import (
	"math/rand"
	"testing"
)

func randomSet(rng *rand.Rand, n int, universe uint32) []uint32 {
	m := map[uint32]bool{}
	for len(m) < n {
		m[rng.Uint32()%universe] = true
	}
	out := make([]uint32, 0, n)
	for v := range m {
		out = append(out, v)
	}
	return SortDedup(out)
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a := randomSet(rng, rng.Intn(200), 500)
		b := randomSet(rng, rng.Intn(200), 500)
		prefix := []uint32{7, 8, 9}
		if got := UnionInto(Clone(prefix), a, b); !Equal(got[:3], prefix) || !Equal(got[3:], Union(a, b)) {
			t.Fatalf("UnionInto mismatch (trial %d)", trial)
		}
		if got := DifferenceInto(Clone(prefix), a, b); !Equal(got[:3], prefix) || !Equal(got[3:], Difference(a, b)) {
			t.Fatalf("DifferenceInto mismatch (trial %d)", trial)
		}
		if got := IntersectInto(Clone(prefix), a, b); !Equal(got[:3], prefix) || !Equal(got[3:], IntersectReference(a, b)) {
			t.Fatalf("IntersectInto mismatch (trial %d)", trial)
		}
	}
}

// TestIntersectGallopInto drives the planner's skew kernel through random
// and adversarial shapes, checking it against the linear-merge reference:
// argument order must not matter, the prefix must survive, and runs of
// consecutive matches (where galloping resumes at distance 1) must all be
// found.
func TestIntersectGallopInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := randomSet(rng, rng.Intn(50), 2000)
		b := randomSet(rng, rng.Intn(1000), 2000)
		want := IntersectReference(a, b)
		prefix := []uint32{42}
		got := IntersectGallopInto(Clone(prefix), a, b)
		if !Equal(got[:1], prefix) || !Equal(got[1:], want) {
			t.Fatalf("trial %d: gallop(a,b) = %v, want %v", trial, got[1:], want)
		}
		if got := IntersectGallopInto(nil, b, a); !Equal(got, want) {
			t.Fatalf("trial %d: gallop(b,a) = %v, want %v", trial, got, want)
		}
	}
	cases := [][2][]uint32{
		{{}, {1, 2, 3}},
		{{1, 2, 3}, {1, 2, 3}},          // identical: every probe matches at distance 1
		{{5}, {1, 2, 3, 4, 5}},          // match at the far end
		{{9}, {1, 2, 3}},                // probe past the end
		{{0, 1, 2, 3}, {3}},             // larger side probes
		{{1, 3, 5, 7}, {0, 2, 4, 6, 8}}, // interleaved, empty result
		{{0, ^uint32(0)}, {^uint32(0)}}, // extremes
	}
	for i, c := range cases {
		want := IntersectReference(c[0], c[1])
		if got := IntersectGallopInto(nil, c[0], c[1]); !Equal(got, want) {
			t.Fatalf("case %d: gallop = %v, want %v", i, got, want)
		}
	}
}

// unionRef is the obviously-correct oracle: pairwise unions left to right.
func unionRef(lists ...[]uint32) []uint32 {
	var out []uint32
	for _, l := range lists {
		out = Union(out, l)
	}
	return out
}

// TestUnionKInto10Way is the dedicated satellite check: a single k-way heap
// merge over ten overlapping sets must equal the pairwise-union reference,
// with duplicates across lists emitted once.
func TestUnionKInto10Way(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lists := make([][]uint32, 10)
	for i := range lists {
		// Heavy overlap: small universe relative to total volume.
		lists[i] = randomSet(rng, 50+rng.Intn(100), 400)
	}
	want := unionRef(lists...)
	got := UnionKInto(nil, lists...)
	if !Equal(got, want) {
		t.Fatalf("10-way UnionKInto: got %d elements, want %d", len(got), len(want))
	}
	if err := Validate(got); err != nil {
		t.Fatalf("10-way UnionKInto result invalid: %v", err)
	}
}

func TestUnionKIntoShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][][]uint32{
		{},
		{{}},
		{{}, {}, {}},
		{{1, 2, 3}},
		{{1, 2, 3}, {}},
		{{1, 3, 5}, {2, 4, 6}},
		{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}},
	}
	// A wide case exceeding the stack bound (k > 16).
	wide := make([][]uint32, 20)
	for i := range wide {
		wide[i] = randomSet(rng, 30, 200)
	}
	cases = append(cases, wide)
	// Disjoint ranges (the engine's shard-merge shape).
	cases = append(cases, [][]uint32{{1, 2}, {10, 11}, {20, 21}, {5, 6}})
	for ci, lists := range cases {
		want := unionRef(lists...)
		got := UnionKInto(nil, lists...)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !Equal(got, want) {
			t.Fatalf("case %d: got %v, want %v", ci, got, want)
		}
	}
}

func TestUnionKIntoPreservesPrefix(t *testing.T) {
	dst := []uint32{99, 98}
	got := UnionKInto(dst, []uint32{1, 2}, []uint32{2, 3}, []uint32{0, 4})
	want := []uint32{99, 98, 0, 1, 2, 3, 4}
	if !Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestUnionKIntoAllocs pins the zero-allocation guarantee for k ≤ 16 when
// dst has capacity: the engine's OR path depends on it.
func TestUnionKIntoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lists := make([][]uint32, 10)
	total := 0
	for i := range lists {
		lists[i] = randomSet(rng, 100, 1000)
		total += len(lists[i])
	}
	dst := make([]uint32, 0, total)
	n := testing.AllocsPerRun(100, func() {
		UnionKInto(dst[:0], lists...)
	})
	if n != 0 {
		t.Fatalf("UnionKInto allocates %.1f times per op, want 0", n)
	}
}
