package fastintersect

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"fastintersect/internal/baseline"
	"fastintersect/internal/bitseg"
	"fastintersect/internal/core"
	"fastintersect/internal/sets"
)

// DefaultSeed derives the default hash family. All lists preprocessed with
// the same seed are mutually intersectable.
const DefaultSeed uint64 = 0xFA57_1D5E_C7AA_11CE

// DefaultHashImages is the default m for RanGroupScan (the paper's m = 4
// for two-set workloads; see WithHashImages to change it).
const DefaultHashImages = 4

// Options configures preprocessing.
type Options struct {
	seed      uint64
	m         int
	allWidths bool
}

// Option mutates preprocessing options.
type Option func(*Options)

// WithSeed selects the hash-family seed. Lists are intersectable iff their
// seeds match.
func WithSeed(seed uint64) Option { return func(o *Options) { o.seed = seed } }

// WithHashImages sets m, the number of word images per group used by
// RanGroupScan's filter (1 ≤ m ≤ 16). More images filter more empty group
// pairs at the cost of m words per group of space.
func WithHashImages(m int) Option { return func(o *Options) { o.m = m } }

// WithAllWidths additionally builds the power-of-two multi-resolution
// layers enabling IntGroupOpt (§A.1.1). Costs additional O(n) space.
func WithAllWidths() Option { return func(o *Options) { o.allWidths = true } }

// OptionsSeed resolves the hash-family seed an option list selects
// (DefaultSeed when none is set). The serving tier's compressed storage
// (internal/invindex with StorageCompressed) derives its grouped structures
// from the same seed so every representation of an index shares one family.
func OptionsSeed(opts ...Option) uint64 {
	o := Options{seed: DefaultSeed}
	for _, f := range opts {
		f(&o)
	}
	return o.seed
}

// families caches hash families so lists built independently with the same
// seed share pointer-identical functions.
var (
	familyMu sync.Mutex
	families = map[uint64]*core.Family{}
)

func familyFor(seed uint64) *core.Family {
	familyMu.Lock()
	defer familyMu.Unlock()
	if f, ok := families[seed]; ok {
		return f
	}
	f := core.NewFamily(seed, core.MaxImageCount)
	families[seed] = f
	return f
}

// List is a preprocessed set. The per-algorithm structures (RanGroupScan
// blocks, RanGroup index, HashBin permutation order, baseline structures)
// are built lazily on first use and cached; Preprocess itself only sorts
// and validates.
type List struct {
	set  []uint32
	opts Options
	fam  *core.Family

	mu     sync.Mutex
	ig     *core.IntGroupList
	igOpt  *core.IntGroupList
	rg     *core.RanGroupList
	rgs    *core.RanGroupScanList
	hb     *core.HashBinList
	hash   *baseline.HashSet
	skip   *baseline.SkipList
	lookup *baseline.Lookup
	bpp    *baseline.BPP
	bseg   *bitseg.List
}

// Preprocess validates and preprocesses a set of document IDs. The input
// must be strictly increasing; use PreprocessUnsorted for arbitrary input.
func Preprocess(set []uint32, opts ...Option) (*List, error) {
	o := Options{seed: DefaultSeed, m: DefaultHashImages}
	for _, f := range opts {
		f(&o)
	}
	if o.m < 1 || o.m > core.MaxImageCount {
		return nil, fmt.Errorf("fastintersect: m = %d out of range [1, %d]", o.m, core.MaxImageCount)
	}
	if err := sets.Validate(set); err != nil {
		return nil, fmt.Errorf("fastintersect: %w", err)
	}
	l := &List{set: append([]uint32(nil), set...), opts: o, fam: familyFor(o.seed)}
	return l, nil
}

// PreprocessUnsorted sorts and deduplicates ids before preprocessing.
func PreprocessUnsorted(ids []uint32, opts ...Option) (*List, error) {
	return Preprocess(sets.SortDedup(append([]uint32(nil), ids...)), opts...)
}

// Len returns the number of elements.
func (l *List) Len() int { return len(l.set) }

// Set returns the sorted elements. The slice is shared; do not modify.
func (l *List) Set() []uint32 { return l.set }

// Seed returns the hash-family seed the list was built with.
func (l *List) Seed() uint64 { return l.opts.seed }

// Span returns one past the largest document ID (0 for an empty list) —
// the universe extent the planner's bitmap-tier costing needs.
func (l *List) Span() int {
	if len(l.set) == 0 {
		return 0
	}
	return int(l.set[len(l.set)-1]) + 1
}

// Structure accessors: build-once, cached. Preprocessing failures cannot
// occur here because the set was validated in Preprocess.

func (l *List) ranGroupScan() *core.RanGroupScanList {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rgs == nil {
		l.rgs, _ = core.NewRanGroupScanList(l.fam, l.set, l.opts.m)
	}
	return l.rgs
}

func (l *List) ranGroup() *core.RanGroupList {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rg == nil {
		l.rg, _ = core.NewRanGroupList(l.fam, l.set)
	}
	return l.rg
}

func (l *List) intGroup() *core.IntGroupList {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ig == nil {
		l.ig, _ = core.NewIntGroupList(l.fam, l.set, false)
	}
	return l.ig
}

func (l *List) intGroupOpt() *core.IntGroupList {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.igOpt == nil {
		l.igOpt, _ = core.NewIntGroupList(l.fam, l.set, true)
	}
	return l.igOpt
}

func (l *List) hashBin() *core.HashBinList {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hb == nil {
		l.hb, _ = core.NewHashBinList(l.fam, l.set)
	}
	return l.hb
}

func (l *List) hashSet() *baseline.HashSet {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hash == nil {
		l.hash = baseline.NewHashSet(l.set)
	}
	return l.hash
}

func (l *List) skipList() *baseline.SkipList {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.skip == nil {
		l.skip = baseline.NewSkipList(l.set)
	}
	return l.skip
}

func (l *List) lookupStruct() *baseline.Lookup {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lookup == nil {
		var maxID uint32
		if len(l.set) > 0 {
			maxID = l.set[len(l.set)-1]
		}
		w := baseline.AutoBucketWidth(maxID, len(l.set), baseline.DefaultBucketSize)
		l.lookup = baseline.NewLookup(l.set, w)
	}
	return l.lookup
}

func (l *List) bppStruct() *baseline.BPP {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bpp == nil {
		l.bpp = baseline.NewBPP(l.set)
	}
	return l.bpp
}

func (l *List) bitsegStruct() *bitseg.List {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bseg == nil {
		l.bseg, _ = bitseg.FromSorted(l.set)
	}
	return l.bseg
}

// ErrNoLists is returned when Intersect is called without lists.
var ErrNoLists = errors.New("fastintersect: no lists given")

// Intersect computes the intersection with the Auto algorithm. The result
// order is algorithm-dependent; see IntersectSorted.
func Intersect(lists ...*List) ([]uint32, error) {
	return IntersectWith(Auto, lists...)
}

// IntersectSorted computes the intersection and returns ascending IDs.
func IntersectSorted(lists ...*List) ([]uint32, error) {
	out, err := IntersectWith(Auto, lists...)
	if err != nil {
		return nil, err
	}
	sets.SortU32(out)
	return out, nil
}

// IntersectWith computes the intersection with a specific algorithm. The
// result is always a fresh slice. Transient workspace comes from the
// package's ExecContext pool; callers issuing many queries can hold a
// context themselves and use IntersectInto / IntersectWithBuf to avoid
// allocating results too.
func IntersectWith(algo Algorithm, lists ...*List) ([]uint32, error) {
	ctx := GetExecContext()
	out, err := IntersectInto(ctx, nil, algo, lists...)
	ctx.Release()
	return out, err
}

// IntersectParallel computes the intersection with RanGroupScan split
// across `workers` goroutines (0 = GOMAXPROCS): the multi-core extension
// noted as orthogonal in the paper's §2.
func IntersectParallel(workers int, lists ...*List) ([]uint32, error) {
	if len(lists) == 0 {
		return nil, ErrNoLists
	}
	for _, l := range lists[1:] {
		if l.opts.seed != lists[0].opts.seed {
			return nil, fmt.Errorf("fastintersect: lists preprocessed with different seeds")
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rgs := make([]*core.RanGroupScanList, len(lists))
	for i, l := range lists {
		rgs[i] = l.ranGroupScan()
	}
	return core.IntersectRanGroupScanParallel(workers, rgs...), nil
}

// autoPick implements the Auto policy.
func autoPick(lists []*List) Algorithm {
	minN, maxN := lists[0].Len(), lists[0].Len()
	for _, l := range lists[1:] {
		if l.Len() < minN {
			minN = l.Len()
		}
		if l.Len() > maxN {
			maxN = l.Len()
		}
	}
	if minN == 0 {
		return Merge // trivially empty; avoid building structures
	}
	if maxN >= AutoSkewThreshold*minN {
		return HashBin
	}
	return RanGroupScan
}
